// Cross-module integration tests: each one exercises a path that spans
// several subsystems end to end (collectives over the instruction-level
// transport, benchmarks on alternative fabrics, assembly SPMD programs
// feeding the same machine model the runtime uses).
package xbgas_test

import (
	"strings"
	"testing"

	"xbgas/internal/asm"
	"xbgas/internal/bench"
	"xbgas/internal/core"
	"xbgas/internal/fabric"
	"xbgas/internal/sim"
	"xbgas/internal/xbrtime"
)

// TestCollectivesOverSpikeTransport runs the paper's binomial-tree
// broadcast and reduction with every remote transfer executed as real
// xBGAS instructions on the simulator — the full stack in one test:
// core → xbrtime → asm → sim → isa → olb → fabric → mem.
func TestCollectivesOverSpikeTransport(t *testing.T) {
	const nPEs = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs, Transport: xbrtime.TransportSpike})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	err = rt.Run(func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		buf, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		out, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8 * 4)
		if err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			for i := 0; i < 4; i++ {
				pe.Poke(dt, src+uint64(i*8), uint64(600+i))
			}
		}
		if err := core.Broadcast(pe, dt, buf, src, 4, 1, 1); err != nil {
			return err
		}
		for i := 0; i < 4; i++ {
			if got := pe.Peek(dt, buf+uint64(i*8)); got != uint64(600+i) {
				t.Errorf("PE %d broadcast elem %d = %d", pe.MyPE(), i, got)
			}
		}
		if err := core.Reduce(pe, dt, core.OpSum, out, buf, 4, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := 0; i < 4; i++ {
				want := uint64(nPEs * (600 + i))
				if got := pe.Peek(dt, out+uint64(i*8)); got != want {
					t.Errorf("reduce elem %d = %d, want %d", i, got, want)
				}
			}
		}
		if err := pe.Free(buf); err != nil {
			return err
		}
		return pe.Free(out)
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGUPSOnMessagePassingFabric checks the §3.1 claim end to end: the
// identical GUPS workload must be slower on a message-passing-style
// transport than on the xBGAS one-sided model.
func TestGUPSOnMessagePassingFabric(t *testing.T) {
	p := bench.DefaultGUPSParams()
	p.TableWords = 1 << 14
	p.UpdatesPerPE = 512
	p.Verify = false

	fast, err := bench.RunGUPS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.Runtime = xbrtime.Config{Fabric: fabric.MessageConfig()}
	slow, err := bench.RunGUPS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TotalMOPS() >= fast.TotalMOPS() {
		t.Errorf("message passing (%.2f MOPS) not slower than xBGAS (%.2f MOPS)",
			slow.TotalMOPS(), fast.TotalMOPS())
	}
}

// TestISOnRingTopology runs the full Integer Sort on a ring instead of
// the fully-connected fabric: topology independence at workload scale.
func TestISOnRingTopology(t *testing.T) {
	p := bench.DefaultISParams()
	p.TotalKeys = 1 << 12
	p.MaxKey = 1 << 8
	p.Iterations = 1
	p.Runtime = xbrtime.Config{Topology: fabric.Ring{N: 4}}
	r, err := bench.RunIS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("IS on ring failed verification: %d errors", r.Errors)
	}
}

// TestAssemblySPMDAllReduce implements a tiny all-reduce in bare xBGAS
// assembly (every core pushes its value to node 0, node 0 sums and
// broadcasts back through remote stores) and runs it with RunSPMD —
// the workflow a bare-metal xBGAS programmer would use.
func TestAssemblySPMDAllReduce(t *testing.T) {
	const n = 4
	m, err := sim.NewMachine(sim.DefaultConfig(n))
	if err != nil {
		t.Fatal(err)
	}
	src := `
		li   a7, 500
		ecall                # a0 = rank
		mv   s0, a0
		li   a7, 501
		ecall                # a0 = n
		mv   s1, a0

		# Deposit (rank+1)^2 into node 0's slot array at 0x9000+8*rank.
		addi t0, s0, 1
		mul  t0, t0, t0
		li   t1, 1           # object ID of node 0
		eaddie e30, t1, 0
		li   t5, 0x9000
		slli t2, s0, 3
		add  t5, t5, t2
		esd  t0, 0(t5)

		li   a7, 503
		ecall                # barrier: all deposits visible

		bnez s0, fetch
		# Node 0 sums the slots and stores the result at 0xA000 on
		# every node (including itself via object ID 0... use loop).
		li   t0, 0x9000
		li   t1, 0
		mv   t2, s1
	sumloop:
		ld   t3, 0(t0)
		add  t1, t1, t3
		addi t0, t0, 8
		addi t2, t2, -1
		bnez t2, sumloop
		# fan the sum out to every node
		li   t4, 0           # rank cursor
	fan:
		addi t6, t4, 1       # object ID = rank+1... but self is ID 0
		beq  t4, s0, self
		eaddie e30, t6, 0
		j    store
	self:
		eaddie e30, zero, 0
	store:
		li   t5, 0xA000
		esd  t1, 0(t5)
		addi t4, t4, 1
		blt  t4, s1, fan
	fetch:
		li   a7, 503
		ecall                # barrier: result visible everywhere
		li   t0, 0xA000
		ld   a0, 0(t0)
		li   a7, 93
		ecall
	`
	prog, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	results, err := m.RunSPMD(prog, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	want := uint64(1 + 4 + 9 + 16) // sum of (rank+1)^2
	for rank, r := range results {
		if r.Core.ExitCode != want {
			t.Errorf("core %d allreduce = %d, want %d", rank, r.Core.ExitCode, want)
		}
	}
}

// TestBenchCLIOutputShapes spot-checks that the report generators used
// by cmd/xbgas-bench produce the paper's row structure.
func TestBenchCLIOutputShapes(t *testing.T) {
	var b strings.Builder
	if err := bench.AblationBarrier(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "dissemination") {
		t.Errorf("barrier ablation:\n%s", b.String())
	}
	b.Reset()
	if err := bench.MicroPointToPoint(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "GB/s") || strings.Count(out, "\n") < 8 {
		t.Errorf("micro output:\n%s", out)
	}
}

// TestTeamCollectivesComposeWithWorld runs a reduction inside two
// disjoint teams followed by a world broadcast of the two partial
// results — the composition pattern subset collectives exist for.
func TestTeamCollectivesComposeWithWorld(t *testing.T) {
	const nPEs = 6
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	evens, err := rt.NewTeam([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	odds, err := rt.NewTeam([]int{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		src, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		work, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		partial, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		pe.Poke(dt, src, uint64(pe.MyPE()+1))
		if err := pe.Barrier(); err != nil {
			return err
		}
		team := evens
		if pe.MyPE()%2 == 1 {
			team = odds
		}
		if err := core.TeamReduce(pe, team, dt, core.OpSum, partial, src, work, 1, 1, 0); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		// Team roots are PEs 0 and 1; broadcast the even total from 0.
		if err := core.Broadcast(pe, dt, work, partial, 1, 1, 0); err != nil {
			return err
		}
		if got := int64(pe.Peek(dt, work)); got != 1+3+5 { // ranks 0,2,4 → values 1,3,5
			t.Errorf("PE %d even-team total = %d, want 9", pe.MyPE(), got)
		}
		// All PEs must finish checking before the next broadcast reuses
		// the symmetric work buffer.
		if err := pe.Barrier(); err != nil {
			return err
		}
		if err := core.Broadcast(pe, dt, work, partial, 1, 1, 1); err != nil {
			return err
		}
		if got := int64(pe.Peek(dt, work)); got != 2+4+6 {
			t.Errorf("PE %d odd-team total = %d, want 12", pe.MyPE(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestGUPSOverSpikeTransport runs a miniature GUPS with every transfer
// executed as xBGAS instructions on the simulator, verification on.
func TestGUPSOverSpikeTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("instruction-level GUPS is slow")
	}
	p := bench.DefaultGUPSParams()
	p.TableWords = 1 << 12
	p.UpdatesPerPE = 64
	p.Lookahead = 8
	p.Runtime = xbrtime.Config{Transport: xbrtime.TransportSpike}
	r, err := bench.RunGUPS(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Verified {
		t.Errorf("spike-transport GUPS verification failed: %d errors", r.Errors)
	}
	if r.Messages == 0 {
		t.Error("no fabric traffic recorded")
	}
}
