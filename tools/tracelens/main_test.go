package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbgas/internal/core"
	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// recordTrace runs a broadcast under tracing and writes the trace to a
// temp file, returning its path. meta overrides the recorder's model
// identity (to provoke mismatches).
func recordTrace(t *testing.T, meta obs.ModelMeta) string {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{Trace: true})
	rec.SetModelMeta(meta)
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 4, Deterministic: true, Obs: rec})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		const nelems = 64
		w := uint64(xbrtime.TypeLong.Width)
		dst, err := pe.Malloc(nelems * w)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(nelems * w)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		return core.BroadcastWith(core.AlgoBinomial, pe, xbrtime.TypeLong, dst, src, nelems, 1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := rec.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func matchingMeta() obs.ModelMeta {
	tn := core.CurrentTuning()
	return obs.ModelMeta{
		TuningVersion:      tn.Version,
		TuningFabric:       tn.Fabric,
		TuningCalibratedAt: tn.CalibratedAt,
		ChunkBytes:         core.ChunkBytes(),
	}
}

func TestTraceModeAnalyzesPlans(t *testing.T) {
	path := recordTrace(t, matchingMeta())
	var out, errb bytes.Buffer
	code := run([]string{"-trace", path}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	got := out.String()
	if !strings.Contains(got, "broadcast/binomial") {
		t.Errorf("output missing the plan cell:\n%s", got)
	}
	if !strings.Contains(got, "measured(cyc)") || !strings.Contains(got, "predicted(ns)") {
		t.Errorf("output missing table header:\n%s", got)
	}
}

func TestTraceModeJSONOutput(t *testing.T) {
	path := recordTrace(t, matchingMeta())
	jsonPath := filepath.Join(t.TempDir(), "lens.json")
	var out, errb bytes.Buffer
	if code := run([]string{"-trace", path, "-json", jsonPath}, &out, &errb); code != 0 {
		t.Fatalf("exit %d, stderr:\n%s", code, errb.String())
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"broadcast/binomial", "measured_cycles", "predicted_ns"} {
		if !strings.Contains(string(data), want) {
			t.Errorf("JSON output missing %q", want)
		}
	}
}

func TestTraceModeRefusesModelMismatch(t *testing.T) {
	bad := matchingMeta()
	bad.TuningVersion = 999
	path := recordTrace(t, bad)
	var out, errb bytes.Buffer
	if code := run([]string{"-trace", path}, &out, &errb); code == 0 {
		t.Fatal("mismatched trace was not refused")
	}
	if !strings.Contains(errb.String(), "REFUSING") {
		t.Errorf("refusal is not loud:\n%s", errb.String())
	}
	// -force downgrades the refusal to a warning.
	out.Reset()
	errb.Reset()
	if code := run([]string{"-trace", path, "-force"}, &out, &errb); code != 0 {
		t.Fatalf("-force still refused: exit %d, stderr:\n%s", code, errb.String())
	}
	if !strings.Contains(errb.String(), "warning") {
		t.Errorf("-force should warn:\n%s", errb.String())
	}
}

// auditFixture is a hand-built audit report with one cell inside and
// one outside a 25% threshold.
const auditFixture = `{
  "pes": 8, "lockstep": true, "tuning_version": 2, "tuning_fabric": "default",
  "cells": [
    {"collective": "broadcast", "algo": "binomial", "topo": "flat", "pes": 8,
     "nelems": 64, "bytes": 512, "predicted_ns": 100, "measured_cycles": 100,
     "rel_err": 0.0, "scaled_err": 0.05},
    {"collective": "allreduce", "algo": "ring", "topo": "flat", "pes": 8,
     "nelems": 1024, "bytes": 8192, "predicted_ns": 300, "measured_cycles": 200,
     "rel_err": 0.5, "scaled_err": 0.40}
  ],
  "series": []
}`

func TestAuditGateWarnAndStrict(t *testing.T) {
	path := filepath.Join(t.TempDir(), "audit.json")
	if err := os.WriteFile(path, []byte(auditFixture), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{"-audit", path, "-warn", "0.25"}, &out, &errb); code != 0 {
		t.Fatalf("warn mode must exit 0, got %d", code)
	}
	got := out.String()
	if !strings.Contains(got, "allreduce/ring") || strings.Contains(got, "broadcast/binomial") {
		t.Errorf("warn listing wrong cells:\n%s", got)
	}
	if !strings.Contains(got, "1 cells exceed the 25% threshold") {
		t.Errorf("missing threshold summary:\n%s", got)
	}

	out.Reset()
	if code := run([]string{"-audit", path, "-warn", "0.25", "-strict"}, &out, &errb); code == 0 {
		t.Error("strict mode must exit nonzero when a cell exceeds the threshold")
	}
	out.Reset()
	if code := run([]string{"-audit", path, "-warn", "0.5"}, &out, &errb); code != 0 {
		t.Errorf("no cell exceeds 50%%, want exit 0")
	}
	if !strings.Contains(out.String(), "no cell exceeds") {
		t.Errorf("missing all-clear line:\n%s", out.String())
	}
}

func TestNoModeUsage(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Errorf("no mode selected: exit %d, want 2", code)
	}
}
