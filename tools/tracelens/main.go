// Command tracelens replays recorded observability artifacts against
// the collective cost model.
//
// Trace mode re-prices a Perfetto timeline:
//
//	tracelens -trace trace.json [-tuning docs/TUNING.json] [-force] [-json out.json]
//
// Every collective span that carries a "plan" arg (the compiled plan
// identity xbgas-bench exports) is grouped per {run, plan, payload},
// the plan is recompiled for the run's recorded geometry, and the
// measured virtual cost is compared against PlanCostShape. The trace
// header's model identity (tuning version/fabric/calibration stamp,
// chunk override) must match the tuning table tracelens prices with;
// a mismatch is refused loudly unless -force, because comparing a
// trace against coefficients it was not recorded under produces
// numbers that look like model error but are just skew.
//
// Audit mode gates on an xbgas-bench -audit-json report:
//
//	tracelens -audit audit.json [-warn 0.25] [-strict]
//
// Cells whose scale-normalised error exceeds the -warn threshold are
// listed; the exit status stays 0 (a warn step, not a gate) unless
// -strict is given.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"xbgas/internal/bench"
	"xbgas/internal/core"
	"xbgas/internal/fabric"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("tracelens", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		tracePath = fs.String("trace", "", "Perfetto trace JSON to re-price against the cost model")
		tuning    = fs.String("tuning", "", "tuning table to price with (default "+core.DefaultTuningPath+" when present, else built-in)")
		force     = fs.Bool("force", false, "analyze even when the trace's model identity mismatches the tuning table")
		jsonOut   = fs.String("json", "", "write the trace analysis as JSON to `file`")
		auditPath = fs.String("audit", "", "xbgas-bench -audit-json report to threshold-check")
		warn      = fs.Float64("warn", 0.25, "audit mode: flag cells whose |scaled err| exceeds this fraction")
		strict    = fs.Bool("strict", false, "audit mode: exit nonzero when any cell exceeds -warn")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case *auditPath != "":
		return runAuditGate(*auditPath, *warn, *strict, stdout, stderr)
	case *tracePath != "":
		return runTraceLens(*tracePath, *tuning, *force, *jsonOut, stdout, stderr)
	}
	fs.Usage()
	return 2
}

// ---- audit gate mode ----

func runAuditGate(path string, warn float64, strict bool, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "tracelens: %v\n", err)
		return 1
	}
	var rep bench.AuditReport
	if err := json.Unmarshal(data, &rep); err != nil {
		fmt.Fprintf(stderr, "tracelens: parsing audit report %s: %v\n", path, err)
		return 1
	}
	var bad []bench.AuditCell
	for _, c := range rep.Cells {
		if math.Abs(c.ScaledErr) > warn {
			bad = append(bad, c)
		}
	}
	sort.Slice(bad, func(i, j int) bool {
		return math.Abs(bad[i].ScaledErr) > math.Abs(bad[j].ScaledErr)
	})
	fmt.Fprintf(stdout, "audit %s: %d PEs, %d cells, worst |scaled err| %.1f%%\n",
		path, rep.PEs, len(rep.Cells), 100*rep.MaxScaledErr())
	if len(bad) == 0 {
		fmt.Fprintf(stdout, "no cell exceeds the %.0f%% threshold\n", 100*warn)
		return 0
	}
	fmt.Fprintf(stdout, "%d cells exceed the %.0f%% threshold:\n", len(bad), 100*warn)
	for _, c := range bad {
		fmt.Fprintf(stdout, "  %s/%s on %s, %d B: scaled err %+.1f%% (raw %+.1f%%)\n",
			c.Collective, c.Algo, c.Topo, c.Bytes, 100*c.ScaledErr, 100*c.RelErr)
	}
	if strict {
		return 1
	}
	return 0
}

// ---- trace analysis mode ----

// traceIn mirrors the exporter's file format, loosely typed: tracelens
// only needs the span events with a "plan" arg, the per-run
// run_metadata records, and the otherData model identity.
type traceIn struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	OtherData map[string]any `json:"otherData"`
}

// runGeo is a run's recorded geometry from its run_metadata record.
type runGeo struct {
	pes  int
	topo string
}

// planCell aggregates the spans of one {run, plan label, payload}.
type planCell struct {
	Pid    int    `json:"pid"`
	Plan   string `json:"plan"`
	Topo   string `json:"topo"`
	PEs    int    `json:"pes"`
	Nelems int    `json:"nelems"`
	Spans  int    `json:"spans"`
	// MeasuredCycles is the per-invocation makespan estimate: the
	// per-rank mean span duration, maximised over ranks.
	MeasuredCycles float64 `json:"measured_cycles"`
	PredictedNs    float64 `json:"predicted_ns"`
	RelErr         float64 `json:"rel_err"`

	perRank map[int]*rankAgg
}

type rankAgg struct {
	cycles uint64
	n      int
}

type lensOut struct {
	Trace         string     `json:"trace"`
	TuningVersion int        `json:"tuning_version"`
	TuningFabric  string     `json:"tuning_fabric"`
	Cells         []planCell `json:"cells"`
}

func runTraceLens(path, tuningPath string, force bool, jsonOut string, stdout, stderr io.Writer) int {
	data, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintf(stderr, "tracelens: %v\n", err)
		return 1
	}
	var tf traceIn
	if err := json.Unmarshal(data, &tf); err != nil {
		fmt.Fprintf(stderr, "tracelens: parsing trace %s: %v\n", path, err)
		return 1
	}

	tn := core.CurrentTuning()
	if tuningPath != "" {
		if tn, err = core.LoadTuning(tuningPath); err != nil {
			fmt.Fprintf(stderr, "tracelens: %v\n", err)
			return 1
		}
	} else if t, err := core.LoadTuning(""); err == nil {
		tn = t
	}

	if msg := modelMismatch(tf.OtherData, tn); msg != "" {
		if !force {
			fmt.Fprintf(stderr, "tracelens: REFUSING to analyze %s: %s\n"+
				"tracelens: the trace was recorded under a different cost model; "+
				"re-record it, point -tuning at the matching table, or pass -force to override\n",
				path, msg)
			return 1
		}
		fmt.Fprintf(stderr, "tracelens: warning: %s (continuing under -force; errors below include model skew)\n", msg)
	}

	geos := map[int]runGeo{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "run_metadata" {
			geos[ev.Pid] = runGeo{
				pes:  asInt(ev.Args["pes"]),
				topo: asString(ev.Args["topo"]),
			}
		}
	}

	cells := map[string]*planCell{}
	var order []string
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		plan := asString(ev.Args["plan"])
		if plan == "" {
			continue
		}
		nelems := asInt(ev.Args["nelems"])
		key := fmt.Sprintf("%d|%s|%d", ev.Pid, plan, nelems)
		c, ok := cells[key]
		if !ok {
			geo := geos[ev.Pid]
			c = &planCell{
				Pid: ev.Pid, Plan: plan, Topo: geo.topo, PEs: geo.pes,
				Nelems: nelems, perRank: map[int]*rankAgg{},
			}
			cells[key] = c
			order = append(order, key)
		}
		rank := asInt(ev.Args["rank"])
		agg := c.perRank[rank]
		if agg == nil {
			agg = &rankAgg{}
			c.perRank[rank] = agg
		}
		agg.cycles += uint64(asInt(ev.Args["end_cycle"]) - asInt(ev.Args["start_cycle"]))
		agg.n++
		c.Spans++
	}
	if len(cells) == 0 {
		fmt.Fprintf(stderr, "tracelens: %s has no collective spans with a plan identity (record it with xbgas-bench -trace)\n", path)
		return 1
	}

	out := lensOut{Trace: path, TuningVersion: tn.Version, TuningFabric: tn.Fabric}
	for _, key := range order {
		c := cells[key]
		for _, agg := range c.perRank {
			if agg.n == 0 {
				continue
			}
			m := float64(agg.cycles) / float64(agg.n)
			if m > c.MeasuredCycles {
				c.MeasuredCycles = m
			}
		}
		c.PredictedNs = priceLabel(c.Plan, c.PEs, c.Nelems, c.Topo, tn)
		if c.MeasuredCycles > 0 && c.PredictedNs > 0 {
			c.RelErr = c.PredictedNs/c.MeasuredCycles - 1
		}
		c.perRank = nil
		out.Cells = append(out.Cells, *c)
	}

	fmt.Fprintf(stdout, "trace %s: %d plan cells (tuning v%d %q)\n",
		path, len(out.Cells), tn.Version, tn.Fabric)
	fmt.Fprintf(stdout, "%-36s %-16s %6s %8s %6s %14s %14s %9s\n",
		"plan", "topo", "pes", "nelems", "spans", "measured(cyc)", "predicted(ns)", "err")
	for _, c := range out.Cells {
		errCell := "-"
		if c.PredictedNs > 0 && c.MeasuredCycles > 0 {
			errCell = fmt.Sprintf("%+.1f%%", 100*c.RelErr)
		}
		fmt.Fprintf(stdout, "%-36s %-16s %6d %8d %6d %14.0f %14.0f %9s\n",
			c.Plan, c.Topo, c.PEs, c.Nelems, c.Spans, c.MeasuredCycles, c.PredictedNs, errCell)
	}

	if jsonOut != "" {
		f, err := os.Create(jsonOut)
		if err != nil {
			fmt.Fprintf(stderr, "tracelens: %v\n", err)
			return 1
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			f.Close() //nolint:errcheck // write error wins
			fmt.Fprintf(stderr, "tracelens: %v\n", err)
			return 1
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(stderr, "tracelens: %v\n", err)
			return 1
		}
	}
	return 0
}

// modelMismatch compares the trace header's model identity against the
// tuning table tracelens will price with; "" means compatible.
func modelMismatch(other map[string]any, tn core.Tuning) string {
	if other == nil {
		return "trace has no otherData model identity (recorded by an older exporter?)"
	}
	if v := asInt(other["tuning_version"]); v != tn.Version {
		return fmt.Sprintf("trace tuning_version %d != table version %d", v, tn.Version)
	}
	if f := asString(other["tuning_fabric"]); f != "" && tn.Fabric != "" && f != tn.Fabric {
		return fmt.Sprintf("trace tuning_fabric %q != table fabric %q", f, tn.Fabric)
	}
	if at := asString(other["tuning_calibrated_at"]); at != "" && tn.CalibratedAt != "" && at != tn.CalibratedAt {
		return fmt.Sprintf("trace calibrated_at %q != table calibrated_at %q", at, tn.CalibratedAt)
	}
	if cb := asInt(other["chunk_bytes"]); cb != core.ChunkBytes() {
		return fmt.Sprintf("trace chunk_bytes %d != current chunk override %d", cb, core.ChunkBytes())
	}
	return ""
}

// priceLabel recompiles the plan a span's identity names —
// "collective/algo" or "collective/algo[seg=N]" — for the recorded
// geometry and prices it; 0 when the label does not resolve (foreign
// plan name, geometry the planner refuses).
func priceLabel(label string, pes, nelems int, topo string, tn core.Tuning) float64 {
	base := label
	seg := 1
	if i := strings.Index(base, "[seg="); i >= 0 {
		if j := strings.Index(base[i:], "]"); j >= 0 {
			if v, err := strconv.Atoi(base[i+5 : i+j]); err == nil {
				seg = v
			}
			base = base[:i]
		}
	}
	slash := strings.Index(base, "/")
	if slash < 0 || pes <= 0 {
		return 0
	}
	collName, algoName := base[:slash], base[slash+1:]
	var coll core.Collective
	found := false
	for _, c := range core.Collectives() {
		if c.String() == collName {
			coll, found = c, true
			break
		}
	}
	if !found {
		return 0
	}
	p, err := core.CompilePlanFor(coll, core.Algorithm(algoName), pes, seg, shapeFor(topo, pes))
	if err != nil || p == nil {
		return 0
	}
	const width = 8 // every audited collective moves 8-byte elements
	return core.PlanCostShape(p, tn, shapeFor(topo, pes), nelems, width)
}

// shapeFor resolves the recorded topology name to a planner shape. The
// recorder stores the -topo spec when one was given (which ParseTopo
// round-trips); programmatic topologies store their display name,
// which may not parse — those price as flat.
func shapeFor(topo string, pes int) core.Shape {
	if topo == "" || topo == "flat" {
		return core.Shape{}
	}
	t, err := fabric.ParseTopo(topo, pes)
	if err != nil {
		return core.Shape{}
	}
	if g, ok := t.(fabric.NodeGrouper); ok {
		return core.Shape{PerNode: g.PEsPerNode()}
	}
	return core.Shape{}
}

func asInt(v any) int {
	switch x := v.(type) {
	case float64:
		return int(x)
	case int:
		return x
	case json.Number:
		n, _ := x.Int64()
		return int(n)
	}
	return 0
}

func asString(v any) string {
	s, _ := v.(string)
	return s
}
