package main

import (
	"bytes"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// scanRepo scans the real repository once per test binary.
func scanRepo(t *testing.T) *Surface {
	t.Helper()
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	s, err := Scan(root)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestScanAxes(t *testing.T) {
	s := scanRepo(t)
	if len(s.Types) != 24 {
		t.Fatalf("scanned %d types, want the 24 of Table 1", len(s.Types))
	}
	if s.Types[0].VarName != "TypeFloat" || s.Types[23].VarName != "TypePtrdiff" {
		t.Errorf("Types order lost: first %s last %s", s.Types[0].VarName, s.Types[23].VarName)
	}
	if got := s.Types[12]; got.Name != "ulonglong" || got.CName != "unsigned long long" ||
		got.Width != 8 || got.Kind != "KindUint" {
		t.Errorf("ulonglong literal decoded wrong: %+v", got)
	}
	if len(s.Ops) != 7 {
		t.Fatalf("scanned %d ops, want 7", len(s.Ops))
	}
	intOnly := 0
	for _, op := range s.Ops {
		if op.IntOnly {
			intOnly++
		}
	}
	if intOnly != 3 {
		t.Errorf("%d int-only ops, want the 3 bitwise ones", intOnly)
	}
	if s.Ops[0].GoID != "Sum" || s.Ops[4].GoID != "And" || s.Ops[4].ConstName != "OpBand" {
		t.Errorf("op naming drifted: %+v", s.Ops)
	}
}

func TestScanTargets(t *testing.T) {
	s := scanRepo(t)
	want := map[string]string{ // entry point → kind
		"Put": "transfer", "Get": "transfer", "PutNB": "transfer", "GetNB": "transfer",
		"Broadcast": "rooted", "Reduce": "reduce",
		"Scatter": "vector", "Gather": "vector",
		"AllReduce": "reduce", "ReduceScatter": "reduce",
		"AllGather": "vector", "Alltoall": "rootless",
	}
	got := map[string]string{}
	for _, tg := range s.Targets {
		got[tg.Name] = tg.Kind
	}
	for name, kind := range want {
		if got[name] != kind {
			t.Errorf("target %s: kind %q, want %q", name, got[name], kind)
		}
	}
	if len(got) != len(want) {
		t.Errorf("scanned %d targets, want %d: %v", len(got), len(want), got)
	}
}

func TestWrapperNaming(t *testing.T) {
	s := scanRepo(t)
	byName := map[string]*Target{}
	for i := range s.Targets {
		byName[s.Targets[i].Name] = &s.Targets[i]
	}
	ty := TypeInfo{GoID: "Int32", Name: "int32", CName: "int32_t"}
	sum := OpInfo{ConstName: "OpSum", Name: "sum", GoID: "Sum"}
	cases := []struct{ target, wrapper, cname string }{
		{"Put", "PutInt32", "xbrtime_int32_put"},
		{"PutNB", "PutInt32NB", "xbrtime_int32_put"},
		{"Broadcast", "BroadcastInt32", "xbrtime_int32_broadcast"},
		{"Reduce", "ReduceSumInt32", "xbrtime_int32_reduce_sum"},
		{"AllReduce", "AllReduceSumInt32", "xbrtime_int32_allreduce_sum"},
		{"ReduceScatter", "ReduceScatterSumInt32", "xbrtime_int32_reduce_scatter_sum"},
		{"AllGather", "AllGatherInt32", "xbrtime_int32_allgather"},
		{"Alltoall", "AlltoallInt32", "xbrtime_int32_alltoall"},
	}
	for _, c := range cases {
		tg := byName[c.target]
		if tg == nil {
			t.Fatalf("target %s not scanned", c.target)
		}
		if got := tg.WrapperName(sum, ty); got != c.wrapper {
			t.Errorf("%s wrapper name: %s, want %s", c.target, got, c.wrapper)
		}
		if got := tg.CName(sum, ty); got != c.cname {
			t.Errorf("%s C name: %s, want %s", c.target, got, c.cname)
		}
	}
}

// TestEmitReproducible pins the byte-reproducibility the CI drift gate
// relies on: emitting twice from one scan, and from two independent
// scans, must agree, and the checked-in files must match.
func TestEmitReproducible(t *testing.T) {
	root, err := repoRoot()
	if err != nil {
		t.Fatal(err)
	}
	s1 := scanRepo(t)
	s2 := scanRepo(t)
	for _, pkg := range []string{"xbrtime", "core"} {
		w1, err := EmitWrappers(s1, pkg)
		if err != nil {
			t.Fatal(err)
		}
		w2, err := EmitWrappers(s2, pkg)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1, w2) {
			t.Errorf("%s wrappers not reproducible across scans", pkg)
		}
		onDisk, err := os.ReadFile(filepath.Join(root, "internal", pkg, "typed_gen.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(w1, onDisk) {
			t.Errorf("internal/%s/typed_gen.go is stale — rerun go generate ./...", pkg)
		}
		r1, err := EmitRegistry(s1, pkg)
		if err != nil {
			t.Fatal(err)
		}
		onDisk, err = os.ReadFile(filepath.Join(root, "internal", pkg, "typed_registry_gen.go"))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(r1, onDisk) {
			t.Errorf("internal/%s/typed_registry_gen.go is stale — rerun go generate ./...", pkg)
		}
	}
	doc := EmitSurfaceDoc(s1)
	onDisk, err := os.ReadFile(filepath.Join(root, "docs", "API_SURFACE.md"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(doc, onDisk) {
		t.Errorf("docs/API_SURFACE.md is stale — rerun go generate ./...")
	}
}

func TestWrapperCounts(t *testing.T) {
	s := scanRepo(t)
	floatTypes := 0
	for _, ty := range s.Types {
		if ty.Float() {
			floatTypes++
		}
	}
	reduceCells := len(s.Types)*4 + (len(s.Types)-floatTypes)*3
	for _, tg := range s.Targets {
		want := len(s.Types)
		if tg.HasOp() {
			want = reduceCells
		}
		if got := wrapperCount(s, &tg); got != want {
			t.Errorf("%s expands to %d wrappers, want %d", tg.Name, got, want)
		}
	}
}

// scanSnippet runs target scanning over an in-memory file.
func scanSnippet(t *testing.T, src string) error {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "snippet.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	s := &Surface{}
	return s.scanTargets(fset, "core", parsedFile{name: "snippet.go", ast: f})
}

func TestAnnotationValidation(t *testing.T) {
	cases := []struct {
		name, src, wantErr string
	}{
		{"unknown kind",
			"package core\n//xbgas:typed frobnicate\nfunc F(dt DType) error { return nil }\n",
			"unknown annotation kind"},
		{"missing kind",
			"package core\n//xbgas:typed\nfunc F(dt DType) error { return nil }\n",
			"needs a kind"},
		{"reduce without op",
			"package core\n//xbgas:typed reduce\nfunc F(pe *PE, dt DType, n int) error { return nil }\n",
			"ReduceOp parameter"},
		{"rooted with op",
			"package core\n//xbgas:typed rooted\nfunc F(pe *PE, dt DType, op ReduceOp, n int) error { return nil }\n",
			"ReduceOp parameter"},
		{"no dtype",
			"package core\n//xbgas:typed rooted\nfunc F(pe *PE, n int) error { return nil }\n",
			"exactly one DType"},
		{"vector without slices",
			"package core\n//xbgas:typed vector\nfunc F(pe *PE, dt DType, n int) error { return nil }\n",
			"[]int"},
		{"bad argument",
			"package core\n//xbgas:typed rooted oops\nfunc F(pe *PE, dt DType, n int) error { return nil }\n",
			"not k=v"},
		{"method kind mismatch",
			"package core\n//xbgas:typed rooted\nfunc (pe *PE) F(dt DType, n int) error { return nil }\n",
			"receiver mismatch"},
		{"ok rooted",
			"package core\n//xbgas:typed rooted\nfunc F(pe *PE, dt DType, n int) error { return nil }\n",
			""},
		{"ok transfer method",
			"package core\n//xbgas:typed transfer\nfunc (pe *PE) F(dt DType, n int) error { return nil }\n",
			""},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := scanSnippet(t, c.src)
			if c.wantErr == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), c.wantErr) {
				t.Fatalf("error %v, want substring %q", err, c.wantErr)
			}
		})
	}
}

// TestParamAndArgLists pins signature surgery: dt/op parameters vanish
// from the wrapper signature but reappear as constants at the call.
func TestParamAndArgLists(t *testing.T) {
	tg := Target{
		Pkg: "core", Name: "AllReduce", Kind: "reduce", CSuffix: "allreduce",
		Params: []Param{
			{Names: []string{"pe"}, Type: "*xbrtime.PE", Role: "plain"},
			{Names: []string{"dt"}, Type: "xbrtime.DType", Role: "dt"},
			{Names: []string{"op"}, Type: "ReduceOp", Role: "op"},
			{Names: []string{"dest", "src"}, Type: "uint64", Role: "plain"},
			{Names: []string{"nelems"}, Type: "int", Role: "plain"},
			{Names: []string{"stride"}, Type: "int", Role: "plain"},
		},
		Results: "error",
	}
	if got, want := paramList(&tg), "pe *xbrtime.PE, dest, src uint64, nelems, stride int"; got != want {
		t.Errorf("paramList:\n got %q\nwant %q", got, want)
	}
	op := OpInfo{ConstName: "OpMax", Name: "max", GoID: "Max"}
	ty := TypeInfo{VarName: "TypeUInt", GoID: "UInt", Name: "uint", CName: "unsigned int"}
	if got, want := argList(&tg, op, ty, "xbrtime."),
		"pe, xbrtime.TypeUInt, OpMax, dest, src, nelems, stride"; got != want {
		t.Errorf("argList:\n got %q\nwant %q", got, want)
	}
	if got, want := tg.WrapperName(op, ty), "AllReduceMaxUInt"; got != want {
		t.Errorf("WrapperName: %q, want %q", got, want)
	}
}
