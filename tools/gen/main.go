// Command gen regenerates the typed API surface that reproduces the
// paper's per-type C function calls (Table 1, §4.7) in Go spelling.
//
// Unlike its string-template predecessor, the generator is AST-driven:
// it parses internal/xbrtime and internal/core with go/parser and
// derives the whole surface from three in-source declarations —
//
//   - //xbgas:typed annotations on the generic entry points (Put/Get
//     and the collectives) select what to expand; each wrapper's
//     signature is computed from the annotated function's own
//     signature by substituting the DType (and ReduceOp) parameters,
//   - the xbrtime.Types var block supplies the 24 data types,
//   - the core.ReduceOp const block (with //xbgas:intonly markers)
//     supplies the operators and their float validity.
//
// It writes, all gofmt'd via go/format:
//
//	internal/xbrtime/typed_gen.go           per-type Put/Get/NB methods
//	internal/xbrtime/typed_registry_gen.go  registry for mechanical tests
//	internal/core/typed_gen.go              per-type collective wrappers
//	internal/core/typed_registry_gen.go     registry for mechanical tests
//	docs/API_SURFACE.md                     generated surface inventory
//
// Run from anywhere inside the repository:
//
//	go generate ./...        (or: go run ./tools/gen)
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
)

func main() {
	log.SetFlags(0)
	root, err := repoRoot()
	if err != nil {
		log.Fatal(err)
	}
	if err := run(root); err != nil {
		log.Fatal(err)
	}
}

func run(root string) error {
	s, err := Scan(root)
	if err != nil {
		return err
	}
	outputs := map[string][]byte{}
	for _, pkg := range []string{"xbrtime", "core"} {
		w, err := EmitWrappers(s, pkg)
		if err != nil {
			return err
		}
		r, err := EmitRegistry(s, pkg)
		if err != nil {
			return err
		}
		outputs[filepath.Join("internal", pkg, "typed_gen.go")] = w
		outputs[filepath.Join("internal", pkg, "typed_registry_gen.go")] = r
	}
	outputs[filepath.Join("docs", "API_SURFACE.md")] = EmitSurfaceDoc(s)

	paths := make([]string, 0, len(outputs))
	for p := range outputs {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		abs := filepath.Join(root, p)
		old, _ := os.ReadFile(abs)
		if string(old) == string(outputs[p]) {
			fmt.Println("unchanged", p)
			continue
		}
		if err := os.WriteFile(abs, outputs[p], 0o644); err != nil {
			return err
		}
		fmt.Println("generated", p)
	}
	return nil
}

// repoRoot walks up from the working directory to the module root, so
// the generator runs identically from the repo root and from the
// //go:generate directives inside the packages.
func repoRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("gen: no go.mod above the working directory")
		}
		dir = parent
	}
}
