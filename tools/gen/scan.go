package main

// scan.go walks the annotated runtime sources with go/parser + go/ast
// and extracts the three axes of the typed API surface:
//
//   - the data types: the DType var declarations and the Types slice in
//     internal/xbrtime/dtype.go (paper Table 1),
//   - the reduction operators: the ReduceOp const block and the
//     reduceOpNames table in internal/core/reduceop.go, with
//     //xbgas:intonly marking operators undefined for floating point,
//   - the entry points: every function or *PE method carrying an
//     //xbgas:typed annotation in its doc comment.
//
// The scan is purely syntactic — it runs on sources that need not
// compile yet, so the generator can bootstrap a broken tree.

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// TypeInfo describes one Table 1 data type, read from the DType var
// declarations in internal/xbrtime/dtype.go.
type TypeInfo struct {
	VarName string // Go constant-like var, e.g. "TypeFloat"
	GoID    string // identifier fragment for wrapper names, e.g. "Float"
	Name    string // TYPENAME in the C function names, e.g. "float"
	CName   string // C TYPE, e.g. "unsigned long long"
	Width   int    // element width in bytes
	Kind    string // "KindInt" | "KindUint" | "KindFloat"
}

// Float reports whether the type reduces in the floating-point domain.
func (t TypeInfo) Float() bool { return t.Kind == "KindFloat" }

// OpInfo describes one reduction operator, read from the ReduceOp
// const block in internal/core/reduceop.go.
type OpInfo struct {
	ConstName string // "OpSum"
	Name      string // C suffix: "sum"
	GoID      string // wrapper-name fragment: "Sum"
	IntOnly   bool   // //xbgas:intonly — undefined for floats
}

// annotation is one parsed //xbgas:typed marker.
type annotation struct {
	Kind string            // transfer | rooted | vector | reduce | rootless
	Args map[string]string // k=v arguments, e.g. c=allreduce
}

// Param is one parameter group of an annotated signature.
type Param struct {
	Names []string
	Type  string // printed type expression
	Role  string // "dt" | "op" | "plain"
}

// Target is one annotated entry point to expand across the type (and,
// for reduce kinds, operator) axis.
type Target struct {
	Pkg     string // package name the wrappers live in
	File    string // basename of the defining file
	Name    string // entry point name, e.g. "AllReduce"
	Kind    string // annotation kind
	CSuffix string // C-name suffix, e.g. "allreduce"
	Recv    string // receiver name when the entry point is a *PE method
	Params  []Param
	Results string // printed result list, e.g. "error" or "(Handle, error)"
}

// HasOp reports whether the entry point takes a ReduceOp.
func (t *Target) HasOp() bool {
	for _, p := range t.Params {
		if p.Role == "op" {
			return true
		}
	}
	return false
}

// WrapperName names the per-type (and per-op) wrapper: the type
// fragment lands before a trailing NB suffix (PutFloatNB), and reduce
// kinds insert the operator fragment first (AllReduceSumFloat).
func (t *Target) WrapperName(op OpInfo, ty TypeInfo) string {
	base := t.Name
	if t.HasOp() {
		base += op.GoID
	}
	if nb := strings.TrimSuffix(t.Name, "NB"); nb != t.Name {
		return nb + ty.GoID + "NB"
	}
	return base + ty.GoID
}

// CName returns the paper-style C spelling of one wrapper cell, e.g.
// xbrtime_int32_allreduce_sum.
func (t *Target) CName(op OpInfo, ty TypeInfo) string {
	s := "xbrtime_" + ty.Name + "_" + t.CSuffix
	if t.HasOp() {
		s += "_" + op.Name
	}
	return s
}

// Surface is the complete scanned model of the typed API.
type Surface struct {
	Types   []TypeInfo
	Ops     []OpInfo
	Targets []Target // in (package, file, offset) scan order
}

// TargetsFor returns the targets whose wrappers belong in package pkg.
func (s *Surface) TargetsFor(pkg string) []Target {
	var out []Target
	for _, t := range s.Targets {
		if t.Pkg == pkg {
			out = append(out, t)
		}
	}
	return out
}

// OpsFor returns the operators valid for ty, in declaration order.
func (s *Surface) OpsFor(ty TypeInfo) []OpInfo {
	var out []OpInfo
	for _, op := range s.Ops {
		if op.IntOnly && ty.Float() {
			continue
		}
		out = append(out, op)
	}
	return out
}

// Scan parses the annotated packages under root (the repository root)
// and assembles the surface model.
func Scan(root string) (*Surface, error) {
	s := &Surface{}
	fset := token.NewFileSet()

	xbrtime, err := parseDir(fset, filepath.Join(root, "internal", "xbrtime"))
	if err != nil {
		return nil, err
	}
	core, err := parseDir(fset, filepath.Join(root, "internal", "core"))
	if err != nil {
		return nil, err
	}

	if err := s.scanTypes(xbrtime); err != nil {
		return nil, err
	}
	if err := s.scanOps(core); err != nil {
		return nil, err
	}
	for _, pkg := range []struct {
		name  string
		files []parsedFile
	}{{"xbrtime", xbrtime}, {"core", core}} {
		for _, f := range pkg.files {
			if err := s.scanTargets(fset, pkg.name, f); err != nil {
				return nil, err
			}
		}
	}
	if len(s.Types) == 0 {
		return nil, fmt.Errorf("gen: no DType declarations found in internal/xbrtime")
	}
	if len(s.Ops) == 0 {
		return nil, fmt.Errorf("gen: no ReduceOp declarations found in internal/core")
	}
	if len(s.Targets) == 0 {
		return nil, fmt.Errorf("gen: no //xbgas:typed annotations found")
	}
	return s, nil
}

type parsedFile struct {
	name string // basename
	ast  *ast.File
}

// parseDir parses every non-test, non-generated .go file of dir in
// lexical filename order, giving the scan a deterministic sequence.
func parseDir(fset *token.FileSet, dir string) ([]parsedFile, error) {
	names, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	sort.Strings(names)
	var out []parsedFile
	for _, name := range names {
		base := filepath.Base(name)
		if strings.HasSuffix(base, "_test.go") || strings.HasSuffix(base, "_gen.go") {
			continue
		}
		src, err := os.ReadFile(name)
		if err != nil {
			return nil, err
		}
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("gen: parse %s: %w", name, err)
		}
		out = append(out, parsedFile{name: base, ast: f})
	}
	return out, nil
}

// scanTypes reads the DType var declarations and the Types ordering
// slice.
func (s *Surface) scanTypes(files []parsedFile) error {
	byVar := map[string]TypeInfo{}
	var order []string
	for _, pf := range files {
		for _, decl := range pf.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				name := vs.Names[0].Name
				cl, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok {
					continue
				}
				switch lit := cl.Type.(type) {
				case *ast.Ident:
					if lit.Name == "DType" && strings.HasPrefix(name, "Type") {
						ti, err := typeFromLit(name, cl)
						if err != nil {
							return err
						}
						byVar[name] = ti
					}
				case *ast.ArrayType:
					if name == "Types" {
						for _, el := range cl.Elts {
							id, ok := el.(*ast.Ident)
							if !ok {
								return fmt.Errorf("gen: Types element is not an identifier")
							}
							order = append(order, id.Name)
						}
					}
				}
			}
		}
	}
	if len(order) == 0 {
		return fmt.Errorf("gen: xbrtime Types slice not found")
	}
	for _, v := range order {
		ti, ok := byVar[v]
		if !ok {
			return fmt.Errorf("gen: Types lists %s but no DType literal found for it", v)
		}
		s.Types = append(s.Types, ti)
	}
	return nil
}

// typeFromLit decodes DType{"float", "float", 4, KindFloat}.
func typeFromLit(varName string, cl *ast.CompositeLit) (TypeInfo, error) {
	bad := func(why string) (TypeInfo, error) {
		return TypeInfo{}, fmt.Errorf("gen: %s: malformed DType literal (%s)", varName, why)
	}
	if len(cl.Elts) != 4 {
		return bad("want 4 positional fields")
	}
	name, err := strconv.Unquote(litString(cl.Elts[0]))
	if err != nil {
		return bad("Name")
	}
	cname, err := strconv.Unquote(litString(cl.Elts[1]))
	if err != nil {
		return bad("CName")
	}
	width, err := strconv.Atoi(litString(cl.Elts[2]))
	if err != nil {
		return bad("Width")
	}
	kind, ok := cl.Elts[3].(*ast.Ident)
	if !ok {
		return bad("Kind")
	}
	return TypeInfo{
		VarName: varName,
		GoID:    strings.TrimPrefix(varName, "Type"),
		Name:    name,
		CName:   cname,
		Width:   width,
		Kind:    kind.Name,
	}, nil
}

func litString(e ast.Expr) string {
	if bl, ok := e.(*ast.BasicLit); ok {
		return bl.Value
	}
	return ""
}

// scanOps reads the ReduceOp const block (operator order and the
// //xbgas:intonly markers) and the reduceOpNames table.
func (s *Surface) scanOps(files []parsedFile) error {
	var consts []OpInfo
	var names []string
	for _, pf := range files {
		for _, decl := range pf.ast.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			switch gd.Tok {
			case token.CONST:
				if !constBlockOf(gd, "ReduceOp") {
					continue
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, n := range vs.Names {
						consts = append(consts, OpInfo{
							ConstName: n.Name,
							IntOnly:   hasMarker(vs.Comment, "xbgas:intonly"),
						})
					}
				}
			case token.VAR:
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok || len(vs.Names) != 1 || vs.Names[0].Name != "reduceOpNames" {
						continue
					}
					cl, ok := vs.Values[0].(*ast.CompositeLit)
					if !ok {
						return fmt.Errorf("gen: reduceOpNames is not a composite literal")
					}
					for _, el := range cl.Elts {
						n, err := strconv.Unquote(litString(el))
						if err != nil {
							return fmt.Errorf("gen: reduceOpNames element: %v", err)
						}
						names = append(names, n)
					}
				}
			}
		}
	}
	if len(consts) == 0 || len(names) == 0 {
		return fmt.Errorf("gen: ReduceOp consts (%d) or reduceOpNames (%d) not found",
			len(consts), len(names))
	}
	if len(consts) != len(names) {
		return fmt.Errorf("gen: %d ReduceOp consts but %d reduceOpNames entries — the iota block and the name table drifted",
			len(consts), len(names))
	}
	for i := range consts {
		consts[i].Name = names[i]
		consts[i].GoID = strings.ToUpper(names[i][:1]) + names[i][1:]
	}
	s.Ops = consts
	return nil
}

// constBlockOf reports whether the const block declares values of the
// named type (on its first typed spec — the iota anchor).
func constBlockOf(gd *ast.GenDecl, typeName string) bool {
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		if id, ok := vs.Type.(*ast.Ident); ok {
			return id.Name == typeName
		}
	}
	return false
}

func hasMarker(cg *ast.CommentGroup, marker string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		if strings.Contains(c.Text, marker) {
			return true
		}
	}
	return false
}

// scanTargets collects the //xbgas:typed entry points of one file.
func (s *Surface) scanTargets(fset *token.FileSet, pkg string, pf parsedFile) error {
	for _, decl := range pf.ast.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok {
			continue
		}
		ann, ok, err := typedAnnotation(fd.Doc)
		if err != nil {
			return fmt.Errorf("gen: %s: %s: %w", pf.name, fd.Name.Name, err)
		}
		if !ok {
			continue
		}
		t, err := targetFromDecl(pkg, pf.name, fd, ann)
		if err != nil {
			return fmt.Errorf("gen: %s: %s: %w", pf.name, fd.Name.Name, err)
		}
		s.Targets = append(s.Targets, t)
	}
	return nil
}

// typedAnnotation finds and parses an //xbgas:typed line in a doc
// comment.
func typedAnnotation(doc *ast.CommentGroup) (annotation, bool, error) {
	if doc == nil {
		return annotation{}, false, nil
	}
	for _, c := range doc.List {
		line := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if !strings.HasPrefix(line, "xbgas:typed") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return annotation{}, false, fmt.Errorf("annotation %q needs a kind", line)
		}
		ann := annotation{Kind: fields[1], Args: map[string]string{}}
		for _, f := range fields[2:] {
			k, v, ok := strings.Cut(f, "=")
			if !ok {
				return annotation{}, false, fmt.Errorf("annotation argument %q is not k=v", f)
			}
			ann.Args[k] = v
		}
		switch ann.Kind {
		case "transfer", "rooted", "vector", "reduce", "rootless":
		default:
			return annotation{}, false, fmt.Errorf("unknown annotation kind %q", ann.Kind)
		}
		return ann, true, nil
	}
	return annotation{}, false, nil
}

// targetFromDecl builds the Target model of one annotated declaration
// and cross-checks the signature against the annotation kind.
func targetFromDecl(pkg, file string, fd *ast.FuncDecl, ann annotation) (Target, error) {
	t := Target{
		Pkg:     pkg,
		File:    file,
		Name:    fd.Name.Name,
		Kind:    ann.Kind,
		CSuffix: ann.Args["c"],
	}
	if t.CSuffix == "" {
		t.CSuffix = strings.ToLower(strings.TrimSuffix(t.Name, "NB"))
	}
	if fd.Recv != nil {
		if len(fd.Recv.List) != 1 || len(fd.Recv.List[0].Names) != 1 {
			return t, fmt.Errorf("annotated method needs a named receiver")
		}
		if types.ExprString(fd.Recv.List[0].Type) != "*PE" {
			return t, fmt.Errorf("annotated method receiver must be *PE")
		}
		t.Recv = fd.Recv.List[0].Names[0].Name
	}
	for _, field := range fd.Type.Params.List {
		if len(field.Names) == 0 {
			return t, fmt.Errorf("annotated signature has unnamed parameters")
		}
		p := Param{Type: types.ExprString(field.Type), Role: "plain"}
		switch p.Type {
		case "DType", "xbrtime.DType":
			p.Role = "dt"
		case "ReduceOp", "core.ReduceOp":
			p.Role = "op"
		}
		for _, n := range field.Names {
			p.Names = append(p.Names, n.Name)
		}
		t.Params = append(t.Params, p)
	}
	t.Results = resultString(fd.Type.Results)

	// Kind ↔ signature cross-checks keep the annotations honest.
	nDT, nOp := 0, 0
	for _, p := range t.Params {
		switch p.Role {
		case "dt":
			nDT += len(p.Names)
		case "op":
			nOp += len(p.Names)
		}
	}
	if nDT != 1 {
		return t, fmt.Errorf("annotated entry point must take exactly one DType (got %d)", nDT)
	}
	wantOp := ann.Kind == "reduce"
	if (nOp == 1) != wantOp || nOp > 1 {
		return t, fmt.Errorf("kind %q expects %v ReduceOp parameter, got %d", ann.Kind, wantOp, nOp)
	}
	if (ann.Kind == "transfer") != (t.Recv != "") {
		return t, fmt.Errorf("kind %q / receiver mismatch", ann.Kind)
	}
	if ann.Kind == "vector" {
		found := false
		for _, p := range t.Params {
			if p.Type == "[]int" {
				found = true
			}
		}
		if !found {
			return t, fmt.Errorf("kind vector expects []int count/displacement parameters")
		}
	}
	return t, nil
}

func resultString(fl *ast.FieldList) string {
	if fl == nil || len(fl.List) == 0 {
		return ""
	}
	var parts []string
	for _, f := range fl.List {
		ts := types.ExprString(f.Type)
		n := len(f.Names)
		if n == 0 {
			n = 1
		}
		for i := 0; i < n; i++ {
			parts = append(parts, ts)
		}
	}
	if len(parts) == 1 {
		return parts[0]
	}
	return "(" + strings.Join(parts, ", ") + ")"
}
