package diff

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const oldOut = `goos: linux
goarch: amd64
pkg: xbgas/internal/bench
BenchmarkPutElem-8        	  100000	      1200.0 ns/op	       5 B/op	       2 allocs/op
BenchmarkPutStream4096-8  	     100	   1200000 ns/op	  27.31 MB/s	   65536 B/op	    4096 allocs/op
BenchmarkGUPS8PE-8        	      10	 100000000 ns/op	  500000 B/op	    9000 allocs/op
PASS
`

const newOut = `goos: linux
goarch: amd64
pkg: xbgas/internal/bench
BenchmarkPutElem-16       	  500000	       300.0 ns/op	       0 B/op	       0 allocs/op
BenchmarkPutStream4096-16 	     600	    400000 ns/op	  81.92 MB/s	     164 B/op	       0 allocs/op
BenchmarkGUPS8PE-16       	      30	  40000000 ns/op	  250000 B/op	    1000 allocs/op
BenchmarkGetElem-16       	  400000	       350.0 ns/op	       0 B/op	       0 allocs/op
PASS
`

func TestParse(t *testing.T) {
	got, err := Parse([]byte(newOut))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Fatalf("parsed %d benches, want 4", len(got))
	}
	b := got["BenchmarkPutStream4096"]
	if b.NsPerOp != 400000 || b.AllocsOp != 0 || b.BPerOp != 164 || b.MBPerSec != 81.92 {
		t.Fatalf("bad parse: %+v", b)
	}
}

func TestParseRejectsEmpty(t *testing.T) {
	if _, err := Parse([]byte("no benchmarks here\n")); err == nil {
		t.Fatal("want error for output without benchmark lines")
	}
}

func TestCompare(t *testing.T) {
	r, err := Compare([]byte(oldOut), []byte(newOut), "test")
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Entries) != 4 {
		t.Fatalf("got %d entries, want 4", len(r.Entries))
	}
	byName := map[string]Entry{}
	for _, e := range r.Entries {
		byName[e.Name] = e
	}
	e := byName["BenchmarkPutElem"]
	if e.Old == nil || e.Speedup < 3.99 || e.Speedup > 4.01 {
		t.Fatalf("PutElem speedup: %+v", e)
	}
	if d := *e.AllocDelta; d != -2 {
		t.Fatalf("PutElem alloc delta %v, want -2", d)
	}
	if g := byName["BenchmarkGetElem"]; g.Old != nil || g.Speedup != 0 {
		t.Fatalf("GetElem should have no baseline: %+v", g)
	}
}

func TestCompareWithoutBaseline(t *testing.T) {
	r, err := Compare(nil, []byte(newOut), "")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Entries {
		if e.Old != nil {
			t.Fatalf("unexpected baseline on %s", e.Name)
		}
	}
	if r.Label == "" {
		t.Fatal("label should default to the date")
	}
}

func TestParseBaselineJSON(t *testing.T) {
	// A BENCH_*.json report written by a prior run serves as the
	// baseline: its entries' "new" numbers are what we compare against.
	prior, err := Compare([]byte(oldOut), []byte(newOut), "prior")
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.MarshalIndent(prior, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	base, err := ParseBaseline(data)
	if err != nil {
		t.Fatal(err)
	}
	if b := base["BenchmarkGUPS8PE"]; b.NsPerOp != 40000000 {
		t.Fatalf("JSON baseline GUPS ns/op = %v, want the prior run's new value", b.NsPerOp)
	}
	// Raw bench output still parses through the same entry point.
	raw, err := ParseBaseline([]byte(oldOut))
	if err != nil {
		t.Fatal(err)
	}
	if b := raw["BenchmarkGUPS8PE"]; b.NsPerOp != 100000000 {
		t.Fatalf("raw baseline GUPS ns/op = %v", b.NsPerOp)
	}
	// And Compare accepts the JSON form directly on the old side.
	r, err := Compare(data, []byte(newOut), "vs-json")
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range r.Entries {
		if e.Name == "BenchmarkGUPS8PE" && (e.Old == nil || e.Speedup < 0.99 || e.Speedup > 1.01) {
			t.Fatalf("self-comparison should be ~1x: %+v", e)
		}
	}
	if _, err := ParseBaseline([]byte("{\"label\":\"x\",\"benches\":[]}")); err == nil {
		t.Fatal("empty JSON baseline must error")
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	r, err := Compare([]byte(oldOut), []byte(newOut), "rt")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := r.WriteJSON(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Label != "rt" || len(back.Entries) != len(r.Entries) {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestRegressions(t *testing.T) {
	const base = `BenchmarkGUPS8PE-8    10   100000000 ns/op
BenchmarkBcast1MB8PE-8    50    20000000 ns/op
`
	cases := []struct {
		name    string
		current string
		tol     float64
		want    []string
	}{
		{
			// 50% slower GUPS trips a 10% gate; Bcast within tolerance.
			name: "regression caught",
			current: `BenchmarkGUPS8PE-8    10   150000000 ns/op
BenchmarkBcast1MB8PE-8    50    21000000 ns/op
`,
			tol:  0.10,
			want: []string{"BenchmarkGUPS8PE"},
		},
		{
			// 5% slower sits inside the 10% band.
			name: "within tolerance",
			current: `BenchmarkGUPS8PE-8    10   105000000 ns/op
BenchmarkBcast1MB8PE-8    50    20000000 ns/op
`,
			tol:  0.10,
			want: nil,
		},
		{
			// A benchmark with no baseline can never fail the gate,
			// however slow — that is how new benchmarks get seeded.
			name: "new benchmark exempt",
			current: `BenchmarkGUPS8PE-8    10   100000000 ns/op
BenchmarkBrandNew-8    1   999000000000 ns/op
`,
			tol:  0.10,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r, err := Compare([]byte(base), []byte(tc.current), "gate")
			if err != nil {
				t.Fatal(err)
			}
			regs := r.Regressions(tc.tol)
			var got []string
			for _, e := range regs {
				got = append(got, e.Name)
			}
			if len(got) != len(tc.want) {
				t.Fatalf("regressions = %v, want %v", got, tc.want)
			}
			for i := range got {
				if got[i] != tc.want[i] {
					t.Fatalf("regressions = %v, want %v", got, tc.want)
				}
			}
		})
	}
}

func TestTableRenders(t *testing.T) {
	r, err := Compare([]byte(oldOut), []byte(newOut), "tbl")
	if err != nil {
		t.Fatal(err)
	}
	tab := r.Table()
	for _, want := range []string{"BenchmarkPutElem", "4.00x", "speedup"} {
		if !strings.Contains(tab, want) {
			t.Fatalf("table missing %q:\n%s", want, tab)
		}
	}
}

func TestScaleOf(t *testing.T) {
	cases := []struct {
		name string
		pes  int
		topo string
	}{
		{"BenchmarkGUPS8PE", 8, "flat"},
		{"BenchmarkAllreduce1MB8PEBinomial", 8, "flat"},
		{"BenchmarkAllreduce1MB64PEGrouped", 64, "grouped"},
		{"BenchmarkAllgather1MB256PETorus", 256, "torus"},
		{"BenchmarkAllreduce1MB8PERing", 8, "flat"}, // ring algorithm, flat fabric
		{"BenchmarkPutElem", 0, ""},
	}
	for _, c := range cases {
		pes, topo := scaleOf(c.name)
		if pes != c.pes || topo != c.topo {
			t.Errorf("scaleOf(%q) = %d/%q, want %d/%q", c.name, pes, topo, c.pes, c.topo)
		}
	}
}

func TestCompareScaleMismatch(t *testing.T) {
	// Same benchmark name, but the baseline JSON records it at another
	// scale: the comparison must be flagged, not silently averaged in.
	base := &Report{Label: "old", Entries: []Entry{{
		Name: "BenchmarkAllreduce1MBGrouped",
		New: Bench{Name: "BenchmarkAllreduce1MBGrouped", PEs: 64, Topo: "grouped",
			NsPerOp: 1000},
	}}}
	data, err := json.Marshal(base)
	if err != nil {
		t.Fatal(err)
	}
	// The current run's name carries no PE token, so it parses as a
	// different (unknown) scale.
	cur := "BenchmarkAllreduce1MBGrouped-8    100    3000 ns/op\n"
	r, err := Compare(data, []byte(cur), "mm")
	if err != nil {
		t.Fatal(err)
	}
	e := r.Entries[0]
	if e.ScaleMismatch == "" || e.Speedup != 0 {
		t.Fatalf("want scale mismatch, got %+v", e)
	}
	if regs := r.Regressions(0.10); len(regs) != 0 {
		t.Fatalf("mismatched scales must not gate: %+v", regs)
	}
	if tab := r.Table(); !strings.Contains(tab, "SCALE!") || !strings.Contains(tab, "not comparable") {
		t.Fatalf("table should flag the mismatch:\n%s", tab)
	}
}
