// Package diff parses `go test -bench` output and compares two runs.
package diff

import (
	"encoding/json"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Bench is one parsed benchmark line. PEs and Topo are the benchmark's
// scale, parsed from its name (see scaleOf) and persisted in the JSON so
// reports state what fabric each number was measured on.
type Bench struct {
	Name     string  `json:"name"`
	PEs      int     `json:"pes,omitempty"`
	Topo     string  `json:"topo,omitempty"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"b_per_op,omitempty"`
	AllocsOp float64 `json:"allocs_per_op,omitempty"`
	MBPerSec float64 `json:"mb_per_s,omitempty"`
}

// Entry is one benchmark's before/after record.
type Entry struct {
	Name       string   `json:"name"`
	Old        *Bench   `json:"old,omitempty"`
	New        Bench    `json:"new"`
	Speedup    float64  `json:"speedup,omitempty"` // old ns/op ÷ new ns/op
	AllocDelta *float64 `json:"alloc_delta,omitempty"`
	// ScaleMismatch flags a baseline recorded at a different PE count or
	// topology than the current run: the numbers are not comparable, so
	// no speedup is computed and the table says why.
	ScaleMismatch string `json:"scale_mismatch,omitempty"`
}

// topoTokens are the topology markers recognised in benchmark names, in
// matching order. "Ring" is deliberately absent: name suffixes like
// Allreduce1MB8PERing name the ring *algorithm*, not a ring fabric.
var topoTokens = []string{"Dragonfly", "Grouped", "Torus", "Hypercube"}

var peRe = regexp.MustCompile(`(\d+)PE`)

// scaleOf parses a benchmark's scale from its name: the last "<n>PE"
// token gives the PE count, a topology token (Grouped, Torus, ...)
// gives the fabric, defaulting to flat when a PE count is present.
func scaleOf(name string) (pes int, topo string) {
	if m := peRe.FindAllStringSubmatch(name, -1); len(m) > 0 {
		pes, _ = strconv.Atoi(m[len(m)-1][1])
	}
	for _, t := range topoTokens {
		if strings.Contains(name, t) {
			return pes, strings.ToLower(t)
		}
	}
	if pes > 0 {
		topo = "flat"
	}
	return pes, topo
}

// Report is the full comparison, serialised to BENCH_*.json.
type Report struct {
	Label   string  `json:"label"`
	Entries []Entry `json:"benches"`
}

// Parse extracts benchmark lines from `go test -bench` output. A line
// looks like:
//
//	BenchmarkPutStream4096-8   598   415030 ns/op   78.95 MB/s   164 B/op   0 allocs/op
//
// The -N GOMAXPROCS suffix is stripped so runs from different hosts
// compare by benchmark name.
func Parse(out []byte) (map[string]Bench, error) {
	res := make(map[string]Bench)
	for _, line := range strings.Split(string(out), "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		b := Bench{Name: name}
		b.PEs, b.Topo = scaleOf(name)
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				b.NsPerOp = v
				ok = true
			case "B/op":
				b.BPerOp = v
			case "allocs/op":
				b.AllocsOp = v
			case "MB/s":
				b.MBPerSec = v
			}
		}
		if ok {
			res[name] = b
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark lines found")
	}
	return res, nil
}

// ParseBaseline extracts benchmarks from a baseline in either format:
// raw `go test -bench` output, or a Report JSON written by a previous
// benchdiff run (a BENCH_*.json file — its entries' "new" numbers are
// the baseline). JSON is detected by a leading '{'.
func ParseBaseline(out []byte) (map[string]Bench, error) {
	trimmed := strings.TrimSpace(string(out))
	if !strings.HasPrefix(trimmed, "{") {
		return Parse(out)
	}
	var r Report
	if err := json.Unmarshal(out, &r); err != nil {
		return nil, fmt.Errorf("baseline JSON: %w", err)
	}
	if len(r.Entries) == 0 {
		return nil, fmt.Errorf("baseline JSON has no benchmark entries")
	}
	res := make(map[string]Bench, len(r.Entries))
	for _, e := range r.Entries {
		b := e.New
		// Baselines written before the scale fields existed derive them
		// from the name, same as a fresh parse.
		if b.PEs == 0 && b.Topo == "" {
			b.PEs, b.Topo = scaleOf(b.Name)
		}
		res[e.Name] = b
	}
	return res, nil
}

// Compare builds a report from a baseline (may be nil/empty; raw bench
// output or a prior Report JSON) and a current run. label defaults to
// today's date.
func Compare(oldOut, newOut []byte, label string) (*Report, error) {
	newB, err := Parse(newOut)
	if err != nil {
		return nil, fmt.Errorf("new output: %w", err)
	}
	var oldB map[string]Bench
	if len(oldOut) > 0 {
		oldB, err = ParseBaseline(oldOut)
		if err != nil {
			return nil, fmt.Errorf("old output: %w", err)
		}
	}
	if label == "" {
		label = time.Now().Format("2006-01-02")
	}
	r := &Report{Label: label}
	names := make([]string, 0, len(newB))
	for n := range newB {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		e := Entry{Name: n, New: newB[n]}
		if o, found := oldB[n]; found {
			oc := o
			e.Old = &oc
			if o.PEs != e.New.PEs || o.Topo != e.New.Topo {
				e.ScaleMismatch = fmt.Sprintf("baseline %dPE/%s vs current %dPE/%s",
					o.PEs, orDash(o.Topo), e.New.PEs, orDash(e.New.Topo))
			} else {
				if e.New.NsPerOp > 0 {
					e.Speedup = o.NsPerOp / e.New.NsPerOp
				}
				d := e.New.AllocsOp - o.AllocsOp
				e.AllocDelta = &d
			}
		}
		r.Entries = append(r.Entries, e)
	}
	return r, nil
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

// Table renders the report for terminals. Entries whose baseline was
// recorded at a different scale print SCALE! in the speedup column and
// the mismatch detail after the row.
func (r *Report) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %6s %10s %14s %14s %9s %12s %12s\n",
		"benchmark", "PEs", "topo", "old ns/op", "new ns/op", "speedup", "old allocs", "new allocs")
	for _, e := range r.Entries {
		oldNs, oldAllocs, speed := "-", "-", "-"
		if e.Old != nil {
			oldNs = fmt.Sprintf("%.0f", e.Old.NsPerOp)
			oldAllocs = fmt.Sprintf("%.0f", e.Old.AllocsOp)
			if e.ScaleMismatch != "" {
				speed = "SCALE!"
			} else {
				speed = fmt.Sprintf("%.2fx", e.Speedup)
			}
		}
		pes := "-"
		if e.New.PEs > 0 {
			pes = strconv.Itoa(e.New.PEs)
		}
		fmt.Fprintf(&b, "%-28s %6s %10s %14s %14.0f %9s %12s %12.0f\n",
			e.Name, pes, orDash(e.New.Topo), oldNs, e.New.NsPerOp, speed, oldAllocs, e.New.AllocsOp)
		if e.ScaleMismatch != "" {
			fmt.Fprintf(&b, "  ^ not comparable: %s\n", e.ScaleMismatch)
		}
	}
	return b.String()
}

// Regressions returns the entries whose ns/op worsened by more than
// tol (a fraction: 0.10 = 10%) against their baseline. Entries without
// a baseline never count — adding a new benchmark cannot fail a gate.
// The CI regression gate (-max-regress) is built on this.
func (r *Report) Regressions(tol float64) []Entry {
	var out []Entry
	for _, e := range r.Entries {
		if e.Old == nil || e.Old.NsPerOp <= 0 || e.ScaleMismatch != "" {
			continue
		}
		if e.New.NsPerOp > e.Old.NsPerOp*(1+tol) {
			out = append(out, e)
		}
	}
	return out
}

// WriteJSON writes the report to path, replacing any previous content.
func (r *Report) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
