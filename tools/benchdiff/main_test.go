package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

func touch(t *testing.T, path string, mtime time.Time) {
	t.Helper()
	if err := os.WriteFile(path, []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(path, mtime, mtime); err != nil {
		t.Fatal(err)
	}
}

func TestPickBaselineNewestByMtime(t *testing.T) {
	dir := t.TempDir()
	base := time.Now().Add(-time.Hour)
	touch(t, filepath.Join(dir, "BENCH_2026-08-05.json"), base)
	touch(t, filepath.Join(dir, "BENCH_2026-08-06-pr5.json"), base.Add(2*time.Minute))
	touch(t, filepath.Join(dir, "BENCH_2026-08-06.json"), base.Add(time.Minute))
	touch(t, filepath.Join(dir, "notes.json"), base.Add(time.Hour))

	got := pickBaseline(dir)
	want := filepath.Join(dir, "BENCH_2026-08-06-pr5.json")
	if got != want {
		t.Fatalf("pickBaseline = %q, want %q", got, want)
	}
}

func TestPickBaselineNameBreaksTies(t *testing.T) {
	dir := t.TempDir()
	// A fresh checkout stamps every baseline with the same mtime; the
	// lexically greatest (latest-dated) name must win.
	same := time.Now().Add(-time.Hour)
	touch(t, filepath.Join(dir, "BENCH_2026-08-05.json"), same)
	touch(t, filepath.Join(dir, "BENCH_2026-08-06.json"), same)

	got := pickBaseline(dir)
	want := filepath.Join(dir, "BENCH_2026-08-06.json")
	if got != want {
		t.Fatalf("pickBaseline = %q, want %q", got, want)
	}
}

func TestPickBaselineEmpty(t *testing.T) {
	if got := pickBaseline(t.TempDir()); got != "" {
		t.Fatalf("pickBaseline on empty dir = %q, want empty", got)
	}
}
