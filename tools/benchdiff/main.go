// Command benchdiff compares two `go test -bench` outputs and records
// the result as JSON, giving performance PRs a durable trajectory.
//
// Usage:
//
//	benchdiff -old old.txt -new new.txt [-json BENCH_2026-08-05.json]
//	benchdiff -new new.txt -json BENCH_2026-08-05.json
//	benchdiff -old BENCH_2026-08-05.json -new new.txt -max-regress 0.10
//
// With both inputs it prints a per-benchmark table of old/new ns/op,
// the speedup factor, and allocs/op, and writes (or updates) the JSON
// file when -json is given. When -old is omitted the newest
// BENCH_*.json in the working directory (by modification time, name as
// tiebreak) is used as the baseline, so `benchdiff -new new.txt` from
// the repo root always compares against the latest checked-in record.
// Pass `-old none` to record without a comparison. With -max-regress
// the exit status becomes the CI gate: any benchmark present in the
// baseline whose ns/op worsened by more than the given fraction fails
// the run (benchmarks new to this run never fail the gate).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"xbgas/tools/benchdiff/internal/diff"
)

// pickBaseline returns the newest BENCH_*.json in dir — newest by
// modification time, lexically greatest name breaking ties (fresh
// checkouts stamp every file alike). Empty when none exist.
func pickBaseline(dir string) string {
	matches, err := filepath.Glob(filepath.Join(dir, "BENCH_*.json"))
	if err != nil || len(matches) == 0 {
		return ""
	}
	sort.Slice(matches, func(i, j int) bool {
		fi, ei := os.Stat(matches[i])
		fj, ej := os.Stat(matches[j])
		if ei != nil || ej != nil {
			return matches[i] < matches[j]
		}
		if !fi.ModTime().Equal(fj.ModTime()) {
			return fi.ModTime().Before(fj.ModTime())
		}
		return matches[i] < matches[j]
	})
	return matches[len(matches)-1]
}

func main() {
	oldPath := flag.String("old", "", "baseline `go test -bench` output (default: newest BENCH_*.json in the working directory; \"none\" skips the comparison)")
	newPath := flag.String("new", "", "current `go test -bench` output (required)")
	jsonPath := flag.String("json", "", "JSON file to write/update (optional)")
	label := flag.String("label", "", "label stored in the JSON record (default: current date)")
	maxRegress := flag.Float64("max-regress", 0, "fail (exit 1) when any baselined benchmark's ns/op regresses by more than this `fraction` (0.10 = 10%)")
	flag.Parse()

	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		flag.Usage()
		os.Exit(2)
	}

	newData, err := os.ReadFile(*newPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	if *oldPath == "none" {
		*oldPath = ""
	} else if *oldPath == "" {
		if picked := pickBaseline("."); picked != "" {
			*oldPath = picked
			fmt.Printf("baseline: %s\n", picked)
		}
	}
	var oldData []byte
	if *oldPath != "" {
		oldData, err = os.ReadFile(*oldPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
	}

	report, err := diff.Compare(oldData, newData, *label)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(report.Table())
	if *jsonPath != "" {
		if err := report.WriteJSON(*jsonPath); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *jsonPath)
	}
	if *maxRegress > 0 {
		if regs := report.Regressions(*maxRegress); len(regs) > 0 {
			for _, e := range regs {
				fmt.Fprintf(os.Stderr, "benchdiff: %s regressed %.1f%% (%.0f -> %.0f ns/op, tolerance %.0f%%)\n",
					e.Name, 100*(e.New.NsPerOp/e.Old.NsPerOp-1), e.Old.NsPerOp, e.New.NsPerOp, 100**maxRegress)
			}
			os.Exit(1)
		}
	}
}
