// Package xbgas is a Go reproduction of the collective communication
// library for the RISC-V xBGAS ISA extension described in
//
//	Williams, Wang, Leidel, Chen. "Collective Communication for the
//	RISC-V xBGAS ISA Extension." ICPP 2019 Workshops.
//
// The repository contains the full stack the paper depends on:
//
//   - internal/isa: the RV64I + xBGAS instruction set model,
//   - internal/asm: a two-pass assembler for that subset,
//   - internal/mem: node memory with TLB and L1/L2 cache models,
//   - internal/olb: the Object Look-aside Buffer,
//   - internal/fabric: the inter-node network model,
//   - internal/sim: a Spike-like functional multi-core simulator,
//   - internal/xbrtime: the xBGAS runtime (symmetric heap, put/get, barrier),
//   - internal/core: the paper's contribution — binomial-tree collectives,
//   - internal/shmem: an OpenSHMEM-style baseline for comparison,
//   - internal/bench: the GUPS and NAS IS evaluation workloads.
//
// See DESIGN.md for the system inventory and EXPERIMENTS.md for the
// paper-versus-measured record of every table and figure.
package xbgas
