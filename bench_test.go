// Benchmark harness: one testing.B benchmark per table and figure of
// the paper, plus the ablation studies listed in DESIGN.md. Each
// benchmark drives the simulated system and reports the *simulated*
// metric the paper plots (MOPS at the 1 GHz model clock, or simulated
// cycles per operation) via b.ReportMetric; wall-clock ns/op measures
// only the simulator itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or print the paper-formatted tables with cmd/xbgas-bench.
package xbgas_test

import (
	"fmt"
	"testing"

	"xbgas/internal/bench"
	"xbgas/internal/core"
	"xbgas/internal/fabric"
	"xbgas/internal/xbrtime"
)

// benchGUPS are the Figure 4 parameters, scaled for the harness (the
// full-size sweep lives behind cmd/xbgas-bench -figure 4).
func benchGUPS() bench.GUPSParams {
	p := bench.DefaultGUPSParams()
	p.TableWords = 1 << 18
	p.UpdatesPerPE = 1024
	return p
}

func benchIS() bench.ISParams {
	p := bench.DefaultISParams()
	p.TotalKeys = 1 << 14
	p.MaxKey = 1 << 10
	p.Iterations = 1
	return p
}

// BenchmarkFigure4GUPS regenerates the Figure 4 series: GUPS total and
// per-PE MOPS at 1, 2, 4, and 8 PEs.
func BenchmarkFigure4GUPS(b *testing.B) {
	p := benchGUPS()
	for _, n := range bench.PESweep {
		b.Run(fmt.Sprintf("PEs=%d", n), func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				r, err := bench.RunGUPS(p, n)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Verified {
					b.Fatalf("verification failed: %d errors", r.Errors)
				}
				last = r
			}
			b.ReportMetric(last.TotalMOPS(), "simMOPS")
			b.ReportMetric(last.PerPEMOPS(), "simMOPS/PE")
		})
	}
}

// BenchmarkFigure5IS regenerates the Figure 5 series: Integer Sort
// total and per-PE MOPS at 1, 2, 4, and 8 PEs.
func BenchmarkFigure5IS(b *testing.B) {
	p := benchIS()
	for _, n := range bench.PESweep {
		b.Run(fmt.Sprintf("PEs=%d", n), func(b *testing.B) {
			var last bench.Result
			for i := 0; i < b.N; i++ {
				r, err := bench.RunIS(p, n)
				if err != nil {
					b.Fatal(err)
				}
				if !r.Verified {
					b.Fatalf("verification failed: %d errors", r.Errors)
				}
				last = r
			}
			b.ReportMetric(last.TotalMOPS(), "simMOPS")
			b.ReportMetric(last.PerPEMOPS(), "simMOPS/PE")
		})
	}
}

// BenchmarkTable1TypedPut exercises the explicit per-type put surface of
// Table 1: one strided put per supported type per iteration.
func BenchmarkTable1TypedPut(b *testing.B) {
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 2})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(1 << 12)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		src, err := pe.PrivateAlloc(1 << 12)
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, dt := range xbrtime.Types {
				if err := pe.Put(dt, buf, src, 16, 2, 1); err != nil {
					return err
				}
			}
		}
		b.ReportMetric(float64(len(xbrtime.Types)), "types/op")
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkTable2VirtualRank measures the logical→virtual remapping of
// Table 2 (it sits on the critical path of every collective call).
func BenchmarkTable2VirtualRank(b *testing.B) {
	sum := 0
	for i := 0; i < b.N; i++ {
		for l := 0; l < 7; l++ {
			sum += core.VirtualRank(l, 4, 7)
		}
	}
	if sum < 0 {
		b.Fatal("impossible")
	}
}

// BenchmarkFigure3Broadcast measures the binomial-tree broadcast of
// Figure 3 (8 PEs) and reports the simulated latency per invocation.
func BenchmarkFigure3Broadcast(b *testing.B) {
	for _, nelems := range []int{1, 64, 1024} {
		b.Run(fmt.Sprintf("nelems=%d", nelems), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCollective(bench.CollectiveSpec{
					Op: bench.OpBroadcast, PEs: 8, Nelems: nelems, Iters: 4,
					Algo: core.AlgoBinomial,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = bench.LatencyCycles(r, 4)
			}
			b.ReportMetric(lat, "simCycles/coll")
		})
	}
}

// BenchmarkCollectiveComparison is the §3.1/§4.7 quantitative
// comparison: the same binomial collectives over the xBGAS one-sided
// cost model versus a message-passing cost model.
func BenchmarkCollectiveComparison(b *testing.B) {
	transports := []struct {
		name string
		cfg  fabric.Config
	}{
		{"xbgas", fabric.DefaultConfig()},
		{"message-passing", fabric.MessageConfig()},
	}
	for _, tr := range transports {
		for _, op := range []bench.CollectiveOp{bench.OpBroadcast, bench.OpReduce} {
			b.Run(fmt.Sprintf("%s/%s", tr.name, op), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					r, err := bench.RunCollective(bench.CollectiveSpec{
						Op: op, PEs: 8, Nelems: 64, Iters: 4,
						Algo:    core.AlgoBinomial,
						Runtime: xbrtime.Config{Fabric: tr.cfg},
					})
					if err != nil {
						b.Fatal(err)
					}
					lat = bench.LatencyCycles(r, 4)
				}
				b.ReportMetric(lat, "simCycles/coll")
			})
		}
	}
}

// BenchmarkAblationTreeVsLinear compares the binomial tree against the
// flat baseline (§4.1–4.2) across PE counts.
func BenchmarkAblationTreeVsLinear(b *testing.B) {
	for _, algo := range []core.Algorithm{core.AlgoBinomial, core.AlgoLinear} {
		for _, n := range []int{4, 8, 12} {
			b.Run(fmt.Sprintf("%s/PEs=%d", algo, n), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					r, err := bench.RunCollective(bench.CollectiveSpec{
						Op: bench.OpBroadcast, PEs: n, Nelems: 64, Iters: 4, Algo: algo,
					})
					if err != nil {
						b.Fatal(err)
					}
					lat = bench.LatencyCycles(r, 4)
				}
				b.ReportMetric(lat, "simCycles/coll")
			})
		}
	}
}

// BenchmarkAblationMessageSize sweeps the broadcast payload (§4.2:
// trees shine at small transaction sizes).
func BenchmarkAblationMessageSize(b *testing.B) {
	for _, nelems := range []int{1, 16, 256, 4096} {
		b.Run(fmt.Sprintf("nelems=%d", nelems), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCollective(bench.CollectiveSpec{
					Op: bench.OpBroadcast, PEs: 8, Nelems: nelems, Iters: 2,
					Algo: core.AlgoBinomial,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = bench.LatencyCycles(r, 2)
			}
			b.ReportMetric(lat, "simCycles/coll")
		})
	}
}

// BenchmarkAblationUnroll measures the §3.3 put loop-unrolling
// optimisation.
func BenchmarkAblationUnroll(b *testing.B) {
	for _, mode := range []struct {
		name      string
		threshold int
	}{
		{"unrolled", xbrtime.DefaultUnrollThreshold},
		{"element-wise", 1 << 30},
	} {
		b.Run(mode.name, func(b *testing.B) {
			rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 2, UnrollThreshold: mode.threshold})
			defer rt.Close()
			var cycles uint64
			err := rt.Run(func(pe *xbrtime.PE) error {
				buf, err := pe.Malloc(8 * 256)
				if err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				if pe.MyPE() != 0 {
					return nil
				}
				src, err := pe.PrivateAlloc(8 * 256)
				if err != nil {
					return err
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					start := pe.Now()
					if err := pe.PutInt64(buf, src, 256, 1, 1); err != nil {
						return err
					}
					cycles = pe.Now() - start
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cycles), "simCycles/put")
		})
	}
}

// BenchmarkAblationTopology demonstrates the §4.2 topology-independence
// claim across four interconnects.
func BenchmarkAblationTopology(b *testing.B) {
	topos := []fabric.Topology{
		fabric.FullyConnected{N: 8},
		fabric.Ring{N: 8},
		fabric.Torus2D{W: 4, H: 2},
		fabric.Hypercube{Dim: 3},
	}
	for _, topo := range topos {
		b.Run(topo.Name(), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCollective(bench.CollectiveSpec{
					Op: bench.OpBroadcast, PEs: 8, Nelems: 64, Iters: 4,
					Algo:    core.AlgoBinomial,
					Runtime: xbrtime.Config{Topology: topo},
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = bench.LatencyCycles(r, 4)
			}
			b.ReportMetric(lat, "simCycles/coll")
		})
	}
}

// BenchmarkAblationRoot verifies non-zero roots cost the same as rank 0
// thanks to the Table 2 virtual-rank remapping.
func BenchmarkAblationRoot(b *testing.B) {
	for _, root := range []int{0, 4} {
		b.Run(fmt.Sprintf("root=%d", root), func(b *testing.B) {
			var lat float64
			for i := 0; i < b.N; i++ {
				r, err := bench.RunCollective(bench.CollectiveSpec{
					Op: bench.OpBroadcast, PEs: 7, Nelems: 64, Iters: 4,
					Root: root, Algo: core.AlgoBinomial,
				})
				if err != nil {
					b.Fatal(err)
				}
				lat = bench.LatencyCycles(r, 4)
			}
			b.ReportMetric(lat, "simCycles/coll")
		})
	}
}

// BenchmarkAblationOLB contrasts a full-size OLB translation cache with
// a single-entry thrashing one (§3.2).
func BenchmarkAblationOLB(b *testing.B) {
	for _, entries := range []int{256, 1} {
		b.Run(fmt.Sprintf("entries=%d", entries), func(b *testing.B) {
			rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 8, OLBEntries: entries})
			defer rt.Close()
			var cycles uint64
			err := rt.Run(func(pe *xbrtime.PE) error {
				buf, err := pe.Malloc(8)
				if err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				if pe.MyPE() != 0 {
					return nil
				}
				dst, err := pe.PrivateAlloc(8)
				if err != nil {
					return err
				}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					start := pe.Now()
					for p := 1; p < pe.NumPEs(); p++ {
						if err := pe.GetInt64(dst, buf, 1, 1, p); err != nil {
							return err
						}
					}
					cycles += pe.Now() - start
				}
				return nil
			})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(cycles)/float64(b.N), "simCycles/round")
		})
	}
}

// BenchmarkPutGetLatency is the point-to-point microbenchmark
// underlying everything else: blocking single-element put and get.
func BenchmarkPutGetLatency(b *testing.B) {
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 2})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		start := pe.Now()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pe.PutInt64(buf, src, 1, 1, 1); err != nil {
				return err
			}
			if err := pe.GetInt64(src, buf, 1, 1, 1); err != nil {
				return err
			}
		}
		b.ReportMetric(float64(pe.Now()-start)/float64(b.N)/2, "simCycles/op")
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAblationBarrierAlgo compares the paper's simple centralised
// barrier against a dissemination barrier (the barrier closes every
// round of every collective).
func BenchmarkAblationBarrierAlgo(b *testing.B) {
	for _, algo := range []xbrtime.BarrierAlgorithm{xbrtime.BarrierCentral, xbrtime.BarrierDissemination} {
		for _, n := range []int{4, 8} {
			b.Run(fmt.Sprintf("%s/PEs=%d", algo, n), func(b *testing.B) {
				var lat float64
				for i := 0; i < b.N; i++ {
					r, err := bench.RunCollective(bench.CollectiveSpec{
						Op: bench.OpBarrier, PEs: n, Nelems: 1, Iters: 20,
						Runtime: xbrtime.Config{Barrier: algo},
					})
					if err != nil {
						b.Fatal(err)
					}
					lat = bench.LatencyCycles(r, 20)
				}
				b.ReportMetric(lat, "simCycles/barrier")
			})
		}
	}
}

// BenchmarkSpikeTransportPut measures the instruction-level transport:
// each put is compiled to an xBGAS stub and interpreted.
func BenchmarkSpikeTransportPut(b *testing.B) {
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 2, Transport: xbrtime.TransportSpike})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8 * 64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		src, err := pe.PrivateAlloc(8 * 64)
		if err != nil {
			return err
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := pe.PutInt64(buf, src, 64, 1, 1); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
}
