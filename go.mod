module xbgas

go 1.22
