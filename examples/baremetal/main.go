// Baremetal: a miniature GUPS written directly in xBGAS assembly and
// launched SPMD on every node — the workflow of a bare-metal xBGAS
// programmer, with no runtime library at all.
//
// Each core owns a slice of a distributed table, generates a
// pseudo-random update stream, and applies read-xor-write updates with
// raw-class remote loads and stores (erld/ersd). Barrier environment
// calls separate the phases; a second pass re-applies the stream so
// the xor-involution restores the table, which each core then verifies
// locally — the same structure as the runtime-level GUPS of Figure 4.
//
// Run with:
//
//	go run ./examples/baremetal [-nodes 4] [-updates 512]
package main

import (
	"flag"
	"fmt"
	"log"

	"xbgas/internal/asm"
	"xbgas/internal/sim"
)

const perNodeWords = 1 << 10 // 8 KiB table slice per node

func program(nodes, updates int) string {
	return fmt.Sprintf(`
	# registers: s0 rank, s1 nodes, s2 LCG state, s3 loop counter
	li   a7, 500
	ecall
	mv   s0, a0
	li   a7, 501
	ecall
	mv   s1, a0

	# initialise my table slice: table[i] = rank<<32 | i
	li   t0, 0x100000
	li   t1, %[1]d
	slli t2, s0, 32
init:
	addi t1, t1, -1
	or   t3, t2, t1
	slli t4, t1, 3
	add  t4, t4, t0
	sd   t3, 0(t4)
	bnez t1, init

	li   a7, 503
	ecall                 # barrier: all slices initialised

	jal  run_stream       # first pass scrambles
	li   a7, 503
	ecall
	jal  run_stream       # second pass restores (xor involution)
	li   a7, 503
	ecall

	# verify my slice
	li   t0, 0x100000
	li   t1, %[1]d
	slli t2, s0, 32
	li   a0, 0            # error count
verify:
	addi t1, t1, -1
	slli t4, t1, 3
	add  t4, t4, t0
	ld   t3, 0(t4)
	or   t5, t2, t1
	beq  t3, t5, vok
	addi a0, a0, 1
vok:
	bnez t1, verify
	li   a7, 93
	ecall                 # exit(errors)

run_stream:
	# LCG seeded by rank; %[2]d updates of read-xor-write
	li   s2, 0x9E3779B9
	add  s2, s2, s0
	li   s3, %[2]d
loop:
	# advance LCG
	li   t0, 6364136223846793005
	mul  s2, s2, t0
	li   t0, 1442695040888963407
	add  s2, s2, t0

	# global index = s2 mod (nodes * perNode); owner = idx / perNode
	li   t1, %[3]d        # total words (power of two)
	addi t2, t1, -1
	and  t1, s2, t2       # global index
	li   t2, %[1]d
	divu t3, t1, t2       # owner node
	remu t4, t1, t2       # offset within owner
	slli t4, t4, 3
	li   t5, 0x100000
	add  t5, t5, t4       # remote address

	# object ID = owner + 1 (raw class: e7 carries the ID)
	addi t6, t3, 1
	eaddie e7, t6, 0
	erld t0, t5, e7       # remote load
	xor  t0, t0, s2       # update
	ersd t0, t5, e7       # remote store

	addi s3, s3, -1
	bnez s3, loop
	ret
`, perNodeWords, updates, perNodeWords*nodes)
}

func main() {
	nodes := flag.Int("nodes", 4, "number of simulated nodes")
	updates := flag.Int("updates", 512, "updates per node per pass")
	flag.Parse()
	if *nodes&(*nodes-1) != 0 {
		log.Fatal("nodes must be a power of two (index masking)")
	}

	m, err := sim.NewMachine(sim.DefaultConfig(*nodes))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(program(*nodes, *updates))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("assembled %d instructions; running SPMD on %d nodes\n",
		len(prog.Words), *nodes)

	results, err := m.RunSPMD(prog, 100_000_000)
	if err != nil {
		log.Fatal(err)
	}
	totalErrors := uint64(0)
	var maxCycles uint64
	var remote uint64
	for rank, r := range results {
		totalErrors += r.Core.ExitCode
		if r.Core.Cycles > maxCycles {
			maxCycles = r.Core.Cycles
		}
		remote += r.Core.RemoteLoads + r.Core.RemoteStores
		fmt.Printf("node %d: %d instructions, %d cycles, %d remote ops, %d errors\n",
			rank, r.Core.Instret, r.Core.Cycles,
			r.Core.RemoteLoads+r.Core.RemoteStores, r.Core.ExitCode)
	}
	updatesTotal := 2 * *updates * *nodes
	mops := float64(updatesTotal) / (float64(maxCycles) / 1e9) / 1e6
	fmt.Printf("verification: %d errors across %d updates\n", totalErrors, updatesTotal)
	fmt.Printf("throughput: %.3f MOPS (simulated)\n", mops)
}
