// Integer Sort: the NAS IS benchmark of paper Figure 5 as a runnable
// example. Keys are bucket-sorted across the PEs; the bucket histogram
// is combined with the reduction + broadcast collectives, exactly the
// usage the paper highlights (§5.2).
//
// Run with:
//
//	go run ./examples/intsort [-keys 65536] [-maxkey 4096] [-iters 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"xbgas/internal/bench"
)

func main() {
	keys := flag.Int("keys", bench.DefaultISParams().TotalKeys, "total keys")
	maxKey := flag.Int("maxkey", bench.DefaultISParams().MaxKey, "maximum key value")
	iters := flag.Int("iters", bench.DefaultISParams().Iterations, "ranking iterations")
	flag.Parse()

	p := bench.DefaultISParams()
	p.TotalKeys = *keys
	p.MaxKey = *maxKey
	p.Iterations = *iters

	fmt.Printf("NAS IS: %d keys in [0,%d), %d iterations, verification on\n",
		p.TotalKeys, p.MaxKey, p.Iterations)
	for _, n := range bench.PESweep {
		r, err := bench.RunIS(p, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", r)
	}
}
