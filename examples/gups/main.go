// GUPS: the random-access benchmark of paper Figure 4 as a runnable
// example. It sweeps 1, 2, 4, and 8 PEs and prints total and per-PE
// MOPS, reproducing the figure's two series.
//
// Run with:
//
//	go run ./examples/gups [-table 2097152] [-updates 2048]
package main

import (
	"flag"
	"fmt"
	"log"

	"xbgas/internal/bench"
)

func main() {
	table := flag.Uint64("table", bench.DefaultGUPSParams().TableWords,
		"total table size in 64-bit words (power of two)")
	updates := flag.Int("updates", bench.DefaultGUPSParams().UpdatesPerPE,
		"updates per PE")
	flag.Parse()

	p := bench.DefaultGUPSParams()
	p.TableWords = *table
	p.UpdatesPerPE = *updates

	fmt.Printf("GUPS: table %d words (%d MiB), %d updates/PE, verification on\n",
		p.TableWords, p.TableWords*8>>20, p.UpdatesPerPE)
	for _, n := range bench.PESweep {
		r, err := bench.RunGUPS(p, n)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(" ", r)
	}
}
