// Spike: drive the instruction-level xBGAS machinery directly.
//
// The example assembles a two-node program in which node 0 walks an
// array on node 1 with raw-class extended loads (erld), sums it, and
// writes the result back with a base-class extended store (esd) — the
// three xBGAS instruction classes of paper §3.2 in a dozen lines of
// assembly — then executes it on the Spike-like simulator and shows
// the disassembly, the remote-traffic counters, and the OLB state.
//
// Run with:
//
//	go run ./examples/spike
package main

import (
	"fmt"
	"log"

	"xbgas/internal/asm"
	"xbgas/internal/sim"
)

const program = `
	# Sum 8 doublewords that live on node 1 (object ID 2).
	li     t3, 2            # object ID of node 1
	eaddie e7, t3, 0        # e7 = remote object ID     (address mgmt)
	li     t0, 0x5000       # remote array base
	li     t1, 8            # element count
	li     a0, 0            # accumulator
loop:
	erld   t2, t0, e7       # raw-class remote load
	add    a0, a0, t2
	addi   t0, t0, 8
	addi   t1, t1, -1
	bnez   t1, loop

	# Store the sum back to node 1 at 0x6000 with a base-class store:
	# x30 (t5) pairs with e30, which carries the object ID.
	eaddie e30, t3, 0
	li     t5, 0x6000
	esd    a0, 0(t5)        # base-class remote store

	li     a7, 93           # exit(sum)
	ecall
`

func main() {
	prog, err := asm.Assemble(program)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("assembled program:")
	fmt.Print(prog.Disasm())

	m, err := sim.NewMachine(sim.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}
	// Seed the remote array on node 1: values 1..8 (sum 36).
	for i := 0; i < 8; i++ {
		m.Nodes[1].LockedWrite(0x5000+uint64(i*8), 8, uint64(i+1))
	}

	core, err := m.Load(0, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Run(10_000); err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nexit code (the sum): %d\n", core.ExitCode)
	fmt.Printf("retired %d instructions in %d simulated cycles\n", core.Instret, core.Cycles)
	fmt.Printf("remote loads: %d, remote stores: %d\n", core.RemoteLoads, core.RemoteStores)
	fmt.Printf("value stored back on node 1: %d\n", m.Nodes[1].LockedRead(0x6000, 8))
	fmt.Printf("node 0 OLB: %d hits, %d misses for object IDs %v\n",
		m.Nodes[0].OLB.Hits(), m.Nodes[0].OLB.Misses(), m.Nodes[0].OLB.IDs())
}
