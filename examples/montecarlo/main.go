// Monte Carlo: estimate π across PEs with the reduction-to-all
// extension.
//
// Each PE throws darts at the unit square and counts hits inside the
// quarter circle; an AllReduce (the explicit reduction-to-all call of
// the paper's §7 future work) combines the counts so that every PE —
// not just a root — can compute the estimate, and a final reduction
// cross-checks that all PEs agree.
//
// Run with:
//
//	go run ./examples/montecarlo [-darts 20000] [-pes 8]
package main

import (
	"flag"
	"fmt"
	"log"
	"math"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

func main() {
	darts := flag.Int("darts", 20000, "darts per PE")
	pes := flag.Int("pes", 8, "number of PEs")
	flag.Parse()

	rt, err := xbrtime.New(xbrtime.Config{NumPEs: *pes})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var mu sync.Mutex
	var estimate float64
	var agreeing int

	err = rt.Run(func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		hitsBuf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		total, err := pe.Malloc(8)
		if err != nil {
			return err
		}

		// Dart throwing: a per-PE LCG stream; the work is charged to
		// the virtual clock so the timing model sees the compute phase.
		x := uint64(pe.MyPE())*0x9E3779B97F4A7C15 + 0xDEADBEEF
		hits := 0
		for i := 0; i < *darts; i++ {
			x = x*6364136223846793005 + 1442695040888963407
			px := float64(x>>40) / float64(1<<24)
			x = x*6364136223846793005 + 1442695040888963407
			py := float64(x>>40) / float64(1<<24)
			if px*px+py*py <= 1 {
				hits++
			}
			pe.Advance(12) // two LCG steps + FP multiply-adds + compare
		}
		pe.Poke(dt, hitsBuf, uint64(int64(hits)))

		// Reduction-to-all: every PE ends up with the global hit count.
		if err := core.AllReduce(pe, dt, core.OpSum, total, hitsBuf, 1, 1); err != nil {
			return err
		}
		globalHits := int64(pe.Peek(dt, total))
		pi := 4 * float64(globalHits) / float64(*darts**pes)

		// Cross-check agreement: min and max of the per-PE estimates
		// must coincide.
		est, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		lo, err := pe.PrivateAlloc(16)
		if err != nil {
			return err
		}
		dtf := xbrtime.TypeDouble
		pe.Poke(dtf, est, dtf.FromFloat(pi))
		if err := core.Reduce(pe, dtf, core.OpMin, lo, est, 1, 1, 0); err != nil {
			return err
		}
		if err := core.Reduce(pe, dtf, core.OpMax, lo+8, est, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			mu.Lock()
			estimate = pi
			if dtf.Float(pe.Peek(dtf, lo)) == dtf.Float(pe.Peek(dtf, lo+8)) {
				agreeing = pe.NumPEs()
			}
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi ≈ %.5f (error %.5f) from %d darts across %d PEs\n",
		estimate, math.Abs(estimate-math.Pi), *darts**pes, *pes)
	fmt.Printf("all %d PEs hold the identical estimate (reduction-to-all)\n", agreeing)
	fmt.Printf("simulated time: %.3f ms\n", float64(rt.MaxClock())/1e6)
}
