// Quickstart: the smallest complete xBGAS program.
//
// Four PEs start, allocate a symmetric buffer, exchange values with
// one-sided puts, broadcast a parameter from PE 0, and sum-reduce a
// per-PE contribution back to PE 0 — the core vocabulary of the xBGAS
// runtime API (paper §3.3) and its collective library (paper §4).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

func main() {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var mu sync.Mutex
	var lines []string
	say := func(format string, args ...interface{}) {
		mu.Lock()
		lines = append(lines, fmt.Sprintf(format, args...))
		mu.Unlock()
	}

	err = rt.Run(func(pe *xbrtime.PE) error {
		me, n := pe.MyPE(), pe.NumPEs()

		// A symmetric allocation: the same address on every PE.
		inbox, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}

		// One-sided put: deposit a token in the right neighbour's inbox.
		token, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		pe.Poke(xbrtime.TypeLong, token, uint64(int64(100+me)))
		if err := pe.PutLong(inbox, token, 1, 1, (me+1)%n); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		got := int64(pe.Peek(xbrtime.TypeLong, inbox))
		say("PE %d received token %d from PE %d", me, got, (me+n-1)%n)

		// Broadcast a parameter from PE 0 (binomial tree, Algorithm 1).
		param, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		seed, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if me == 0 {
			pe.Poke(xbrtime.TypeLong, seed, 42)
		}
		if err := core.BroadcastLong(pe, param, seed, 1, 1, 0); err != nil {
			return err
		}

		// Reduce everyone's (parameter + rank) to PE 0 (Algorithm 2).
		contrib, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		sum, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		p := int64(pe.Peek(xbrtime.TypeLong, param))
		pe.Poke(xbrtime.TypeLong, contrib, uint64(p+int64(me)))
		if err := core.ReduceSumLong(pe, sum, contrib, 1, 1, 0); err != nil {
			return err
		}
		if me == 0 {
			say("PE 0: broadcast sent %d to all PEs; reduction returned %d (want %d)",
				p, int64(pe.Peek(xbrtime.TypeLong, sum)), 4*p+0+1+2+3)
		}
		say("PE %d finished after %d simulated cycles", me, pe.Now())
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(lines)
	for _, l := range lines {
		fmt.Println(l)
	}
}
