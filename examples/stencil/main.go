// Stencil: a one-dimensional heat-diffusion solver on the PGAS model.
//
// The rod is split into per-PE blocks held in symmetric memory. Each
// Jacobi iteration exchanges halo cells with the left and right
// neighbours using one-sided puts (the natural xBGAS idiom: write your
// boundary directly into the neighbour's ghost cell), then computes the
// 3-point stencil locally. Every few sweeps the PEs agree on the global
// residual with a max-reduction followed by a broadcast — the
// reduce-then-broadcast composition the paper contrasts with
// OpenSHMEM's fused to-all calls (§4.7).
//
// Run with:
//
//	go run ./examples/stencil
package main

import (
	"fmt"
	"log"
	"math"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

const (
	nPEs       = 4
	cellsPerPE = 64
	maxSweeps  = 500
	checkEvery = 10
	tolerance  = 1e-4
)

func main() {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	dt := xbrtime.TypeDouble
	w := uint64(dt.Width)

	var mu sync.Mutex
	sweepsDone := 0
	converged := false
	var finalResidual float64
	var probeTemp float64

	err = rt.Run(func(pe *xbrtime.PE) error {
		me, n := pe.MyPE(), pe.NumPEs()

		// Block layout with ghost cells: [ghostL, c0..c63, ghostR].
		cells, err := pe.Malloc((cellsPerPE + 2) * w)
		if err != nil {
			return err
		}
		next, err := pe.PrivateAlloc((cellsPerPE + 2) * w)
		if err != nil {
			return err
		}
		at := func(base uint64, i int) uint64 { return base + uint64(i)*w }

		// Initial condition: 1.0 at the left edge of the rod, 0 inside.
		for i := 0; i <= cellsPerPE+1; i++ {
			pe.Poke(dt, at(cells, i), dt.FromFloat(0))
		}
		if me == 0 {
			// Fixed Dirichlet boundary: the first real cell is pinned
			// at temperature 1 and heat diffuses rightward.
			pe.Poke(dt, at(cells, 1), dt.FromFloat(1))
		}
		if err := pe.Barrier(); err != nil {
			return err
		}

		resBuf, err := pe.Malloc(w)
		if err != nil {
			return err
		}
		resOut, err := pe.Malloc(w)
		if err != nil {
			return err
		}
		resPriv, err := pe.PrivateAlloc(w)
		if err != nil {
			return err
		}

		sweep := 0
		for ; sweep < maxSweeps; sweep++ {
			// Halo exchange: push boundary cells into the neighbours'
			// ghost slots with one-sided puts.
			if me > 0 {
				if err := pe.PutDouble(at(cells, cellsPerPE+1), at(cells, 1), 1, 1, me-1); err != nil {
					return err
				}
			}
			if me < n-1 {
				if err := pe.PutDouble(at(cells, 0), at(cells, cellsPerPE), 1, 1, me+1); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}

			// Local 3-point stencil.
			localRes := 0.0
			for i := 1; i <= cellsPerPE; i++ {
				if me == 0 && i == 1 {
					// Fixed Dirichlet boundary on the global left edge.
					pe.Poke(dt, at(next, i), pe.Peek(dt, at(cells, i)))
					continue
				}
				l := dt.Float(pe.ReadElem(dt, at(cells, i-1)))
				c := dt.Float(pe.ReadElem(dt, at(cells, i)))
				r := dt.Float(pe.ReadElem(dt, at(cells, i+1)))
				v := 0.5*c + 0.25*(l+r)
				pe.WriteElem(dt, at(next, i), dt.FromFloat(v))
				pe.Advance(6) // stencil FLOPs
				if d := math.Abs(v - c); d > localRes {
					localRes = d
				}
			}
			for i := 1; i <= cellsPerPE; i++ {
				pe.WriteElem(dt, at(cells, i), pe.ReadElem(dt, at(next, i)))
			}

			// Periodic convergence check: global max residual.
			if sweep%checkEvery == checkEvery-1 {
				pe.Poke(dt, resBuf, dt.FromFloat(localRes))
				if err := core.ReduceMaxDouble(pe, resPriv, resBuf, 1, 1, 0); err != nil {
					return err
				}
				if me == 0 {
					pe.Poke(dt, resOut, pe.Peek(dt, resPriv))
				}
				if err := core.BroadcastDouble(pe, resOut, resOut, 1, 1, 0); err != nil {
					return err
				}
				global := dt.Float(pe.Peek(dt, resOut))
				if me == 0 {
					mu.Lock()
					finalResidual = global
					sweepsDone = sweep + 1
					mu.Unlock()
				}
				if global < tolerance {
					if me == 0 {
						mu.Lock()
						converged = true
						mu.Unlock()
					}
					break
				}
			}
		}
		// Sample the temperature a quarter of the way down the rod to
		// show the heat front moving.
		if me == 0 {
			mu.Lock()
			probeTemp = dt.Float(pe.Peek(dt, at(cells, cellsPerPE/4)))
			mu.Unlock()
		}
		return pe.Barrier()
	})
	if err != nil {
		log.Fatal(err)
	}
	status := "still diffusing"
	if converged {
		status = "converged"
	}
	fmt.Printf("stencil: %d PEs x %d cells, %s after %d sweeps (residual %.3g)\n",
		nPEs, cellsPerPE, status, sweepsDone, finalResidual)
	fmt.Printf("temperature at cell %d on PE 0: %.4f (boundary held at 1.0)\n",
		cellsPerPE/4, probeTemp)
	fmt.Printf("simulated time: %.3f ms at 1 GHz\n",
		float64(rt.MaxClock())/1e6)
}
