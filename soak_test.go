package xbgas_test

import (
	"math/rand"
	"testing"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// TestSoakMixedWorkload drives a long, seeded, randomised sequence of
// collectives, point-to-point transfers, and barriers on one runtime —
// the kind of sustained mixed usage a real application produces. The
// operation plan is generated once (identical on every PE, which is the
// collective-call contract) and every operation's result is checked.
func TestSoakMixedWorkload(t *testing.T) {
	if testing.Short() {
		t.Skip("soak test")
	}
	const nPEs = 6
	const ops = 120
	rng := rand.New(rand.NewSource(0xB16B00B5))

	type op struct {
		kind   int // 0 bcast, 1 reduce, 2 scatter+gather, 3 put ring, 4 allreduce, 5 alltoall
		root   int
		nelems int
		stride int
		seed   int64
	}
	plan := make([]op, ops)
	for i := range plan {
		plan[i] = op{
			kind:   rng.Intn(6),
			root:   rng.Intn(nPEs),
			nelems: 1 + rng.Intn(8),
			stride: 1 + rng.Intn(2),
			seed:   rng.Int63n(1 << 30),
		}
	}

	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()

	dt := xbrtime.TypeInt64
	const w = 8
	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		// One generous arena per purpose, reused across the plan.
		a, err := pe.Malloc(w * 64)
		if err != nil {
			return err
		}
		b, err := pe.Malloc(w * 64)
		if err != nil {
			return err
		}
		priv, err := pe.PrivateAlloc(w * 64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}

		for i, o := range plan {
			switch o.kind {
			case 0: // broadcast from o.root
				if me == o.root {
					for e := 0; e < o.nelems; e++ {
						pe.Poke(dt, priv+uint64(e*o.stride*w), uint64(o.seed)+uint64(e))
					}
				}
				if err := core.Broadcast(pe, dt, a, priv, o.nelems, o.stride, o.root); err != nil {
					return err
				}
				for e := 0; e < o.nelems; e++ {
					want := uint64(o.seed) + uint64(e)
					if got := pe.Peek(dt, a+uint64(e*o.stride*w)); got != want {
						t.Errorf("op %d bcast: PE %d elem %d = %d, want %d", i, me, e, got, want)
					}
				}

			case 1: // sum-reduce to o.root
				for e := 0; e < o.nelems; e++ {
					pe.Poke(dt, b+uint64(e*o.stride*w), uint64(int64(me)+o.seed%97))
				}
				if err := core.Reduce(pe, dt, core.OpSum, priv, b, o.nelems, o.stride, o.root); err != nil {
					return err
				}
				if me == o.root {
					want := int64(nPEs*(nPEs-1)/2) + int64(nPEs)*(o.seed%97)
					for e := 0; e < o.nelems; e++ {
						if got := int64(pe.Peek(dt, priv+uint64(e*o.stride*w))); got != want {
							t.Errorf("op %d reduce: elem %d = %d, want %d", i, e, got, want)
						}
					}
				}

			case 2: // scatter then gather round trip
				msgs := make([]int, nPEs)
				disp := make([]int, nPEs)
				off := 0
				for p := range msgs {
					msgs[p] = (int(o.seed)+p)%3 + 1
					disp[p] = off
					off += msgs[p]
				}
				if me == o.root {
					for e := 0; e < off; e++ {
						pe.Poke(dt, priv+uint64(e*8), uint64(o.seed)^uint64(e*7))
					}
				}
				if err := core.Scatter(pe, dt, a, priv, msgs, disp, off, o.root); err != nil {
					return err
				}
				if err := core.Gather(pe, dt, b, a, msgs, disp, off, o.root); err != nil {
					return err
				}
				if me == o.root {
					for e := 0; e < off; e++ {
						want := uint64(o.seed) ^ uint64(e*7)
						if got := pe.Peek(dt, b+uint64(e*8)); got != want {
							t.Errorf("op %d scatter/gather: elem %d = %d, want %d", i, e, got, want)
						}
					}
				}

			case 3: // put to the right neighbour, check after barrier
				pe.Poke(dt, priv, uint64(o.seed)+uint64(me))
				if err := pe.Put(dt, b, priv, 1, 1, (me+1)%nPEs); err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				want := uint64(o.seed) + uint64((me+nPEs-1)%nPEs)
				if got := pe.Peek(dt, b); got != want {
					t.Errorf("op %d put ring: PE %d got %d, want %d", i, me, got, want)
				}

			case 4: // allreduce max
				pe.Poke(dt, a, uint64(int64(me)*o.seed%1001))
				if err := core.AllReduce(pe, dt, core.OpMax, b, a, 1, 1); err != nil {
					return err
				}
				want := int64(0)
				for p := 0; p < nPEs; p++ {
					if v := int64(p) * o.seed % 1001; v > want {
						want = v
					}
				}
				if got := int64(pe.Peek(dt, b)); got != want {
					t.Errorf("op %d allreduce: PE %d got %d, want %d", i, me, got, want)
				}

			case 5: // alltoall of one element per peer
				for p := 0; p < nPEs; p++ {
					pe.Poke(dt, a+uint64(p*8), uint64(o.seed)+uint64(me*100+p))
				}
				if err := core.Alltoall(pe, dt, b, a, 1); err != nil {
					return err
				}
				for p := 0; p < nPEs; p++ {
					want := uint64(o.seed) + uint64(p*100+me)
					if got := pe.Peek(dt, b+uint64(p*8)); got != want {
						t.Errorf("op %d alltoall: PE %d block %d = %d, want %d", i, me, p, got, want)
					}
				}
			}
			// Fence between plan steps: no PE may start the next
			// operation (whose one-sided writes land in the shared
			// arenas) until every PE has finished checking this one.
			if err := pe.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// The runtime survived 120 mixed operations; spot-check bookkeeping.
	if rt.MaxClock() == 0 {
		t.Error("no virtual time elapsed")
	}
	for p := 0; p < nPEs; p++ {
		if rt.PE(p).SharedUsed() == 0 {
			t.Errorf("PE %d shared accounting lost", p)
		}
	}
}
