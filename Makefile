GO ?= go

.PHONY: all build test race bench figures lint generate clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

figures:
	$(GO) run ./cmd/xbgas-bench -all

lint:
	gofmt -l .
	$(GO) vet ./...

generate:
	$(GO) run ./tools/gen

clean:
	$(GO) clean ./...
