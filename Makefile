GO ?= go

.PHONY: all build test race bench figures lint generate generate-check clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Host-performance microbenchmarks (see docs/PERF.md). Writes the raw
# `go test -bench` output to bench_current.txt and records it as
# BENCH_<date>.json; set BENCH_BASELINE to a previous raw output to get
# a speedup comparison in both the table and the JSON.
BENCH_DATE := $(shell date +%F)
BENCH_BASELINE ?=

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=1 ./... > bench_current.txt || (cat bench_current.txt; exit 1)
	$(GO) run ./tools/benchdiff $(if $(BENCH_BASELINE),-old $(BENCH_BASELINE)) -new bench_current.txt -json BENCH_$(BENCH_DATE).json

figures:
	$(GO) run ./cmd/xbgas-bench -all

# gofmt -l only lists offenders; fail the target (and CI) when the
# list is non-empty. Covers the generator and the other tools too.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./... ./tools/...

# Regenerate the typed API surface (internal/*/typed_gen.go, the test
# registries, docs/API_SURFACE.md) from the //xbgas:typed annotations,
# then hold the output to the same bar as hand-written code. The
# emitter pipes everything through go/format, so gofmt here is a
# tripwire, not a formatter.
generate:
	$(GO) generate ./...
	@out="$$(gofmt -l internal docs 2>/dev/null)"; if [ -n "$$out" ]; then echo "generated output does not gofmt:"; echo "$$out"; exit 1; fi
	$(GO) vet ./internal/xbrtime/ ./internal/core/ ./tools/gen/

# Fail when the checked-in generated files drift from what the
# annotations produce — the CI gate behind "go generate is
# reproducible".
generate-check: generate
	git diff --exit-code -- '*_gen.go' docs/

clean:
	$(GO) clean ./...
