GO ?= go

.PHONY: all build test race bench figures lint generate clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Host-performance microbenchmarks (see docs/PERF.md). Writes the raw
# `go test -bench` output to bench_current.txt and records it as
# BENCH_<date>.json; set BENCH_BASELINE to a previous raw output to get
# a speedup comparison in both the table and the JSON.
BENCH_DATE := $(shell date +%F)
BENCH_BASELINE ?=

bench:
	$(GO) test -run '^$$' -bench=. -benchmem -count=1 ./... > bench_current.txt || (cat bench_current.txt; exit 1)
	$(GO) run ./tools/benchdiff $(if $(BENCH_BASELINE),-old $(BENCH_BASELINE)) -new bench_current.txt -json BENCH_$(BENCH_DATE).json

figures:
	$(GO) run ./cmd/xbgas-bench -all

# gofmt -l only lists offenders; fail the target (and CI) when the
# list is non-empty.
lint:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then echo "gofmt needed:"; echo "$$out"; exit 1; fi
	$(GO) vet ./...

generate:
	$(GO) run ./tools/gen

clean:
	$(GO) clean ./...
