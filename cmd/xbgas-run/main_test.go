package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunSingleNode(t *testing.T) {
	var out, errBuf strings.Builder
	src := `
	j start
	msg: .asciz "hi\n"
	start:
		la a1, msg
		li a0, 1
		li a2, 3
		li a7, 64
		ecall
		li a0, 0
		li a7, 93
		ecall
	`
	code := run(nil, strings.NewReader(src), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if out.String() != "hi\n" {
		t.Errorf("stdout = %q", out.String())
	}
	if !strings.Contains(errBuf.String(), "instret=") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunExitCodePropagates(t *testing.T) {
	var out, errBuf strings.Builder
	code := run(nil, strings.NewReader("li a0, 7\nli a7, 93\necall"), &out, &errBuf)
	if code != 7 {
		t.Errorf("exit = %d, want 7", code)
	}
}

func TestRunSPMD(t *testing.T) {
	var out, errBuf strings.Builder
	src := `
		li a7, 500
		ecall
		li a7, 503
		ecall
		li a7, 93
		ecall
	`
	code := run([]string{"-spmd", "-nodes", "3"}, strings.NewReader(src), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if strings.Count(errBuf.String(), "node ") != 3 {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunTrace(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{"-itrace", "-"}, strings.NewReader("li a7, 93\necall"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "ecall") {
		t.Errorf("trace missing: %q", errBuf.String())
	}
}

func TestRunTraceToFile(t *testing.T) {
	var out, errBuf strings.Builder
	path := filepath.Join(t.TempDir(), "itrace.txt")
	code := run([]string{"-itrace", path}, strings.NewReader("li a7, 93\necall"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "ecall") {
		t.Errorf("instruction trace file missing ecall: %q", data)
	}
	if strings.Contains(errBuf.String(), "ecall") {
		t.Errorf("trace leaked to stderr: %q", errBuf.String())
	}
}

func TestRunChromeTraceAndMetrics(t *testing.T) {
	var out, errBuf strings.Builder
	path := filepath.Join(t.TempDir(), "trace.json")
	code := run([]string{"-spmd", "-nodes", "2", "-trace", path, "-metrics"},
		strings.NewReader("li a7, 503\necall\nli a7, 93\necall"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	names := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if n, ok := ev["name"].(string); ok {
			names[n] = true
		}
	}
	for _, want := range []string{"process_name", "thread_name", "barrier"} {
		if !names[want] {
			t.Errorf("trace missing %q events; have %v", want, names)
		}
	}
	if !strings.Contains(errBuf.String(), "metrics: run") {
		t.Errorf("metrics report missing from stderr: %q", errBuf.String())
	}
	if !strings.Contains(errBuf.String(), "barriers") {
		t.Errorf("metrics report missing barrier column: %q", errBuf.String())
	}
}

func TestRunFaultReported(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{"-max", "10"}, strings.NewReader("x: j x"), &out, &errBuf)
	if code != 1 {
		t.Errorf("exit = %d, want 1", code)
	}
	if !strings.Contains(errBuf.String(), "budget") {
		t.Errorf("stderr = %q", errBuf.String())
	}
}

func TestRunBadAssembly(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run(nil, strings.NewReader("???"), &out, &errBuf); code != 1 {
		t.Errorf("exit = %d", code)
	}
}
