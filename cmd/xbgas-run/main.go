// Command xbgas-run assembles an RV64I + xBGAS program and executes it
// on the Spike-like simulator of internal/sim.
//
// Usage:
//
//	xbgas-run [-nodes N] [-node K] [-max M] file.s
//	xbgas-run -spmd [-nodes N] file.s     # same program on every node
//	xbgas-run -trace file.s               # instruction trace on stderr
//
// The program runs on an N-node machine with the paper's memory
// configuration (256-entry TLB, 8-way 16KB L1 / 8MB L2) on a
// fully-connected fabric; remote nodes are addressable through object
// IDs 1..N (ID = rank+1). Output written via the write ecall goes to
// standard output; exit code, retired instructions, simulated cycles,
// and remote-access counts are reported on standard error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xbgas/internal/asm"
	"xbgas/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbgas-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes = fs.Int("nodes", 2, "number of simulated nodes")
		node  = fs.Int("node", 0, "node to run the program on")
		max   = fs.Uint64("max", 100_000_000, "instruction budget (0 = unlimited)")
		spmd  = fs.Bool("spmd", false, "run the program on every node concurrently (enables the barrier ecall)")
		trace = fs.Bool("trace", false, "print an instruction trace to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(stderr, "xbgas-run: at most one input file")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}

	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}
	m, err := sim.NewMachine(sim.DefaultConfig(*nodes))
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}

	if *spmd {
		results, err := m.RunSPMD(prog, *max)
		for rank, r := range results {
			if r.Core == nil {
				continue
			}
			stdout.Write(r.Core.Output.Bytes()) //nolint:errcheck
			fmt.Fprintf(stderr,
				"node %d: exit=%d instret=%d cycles=%d remote-loads=%d remote-stores=%d\n",
				rank, r.Core.ExitCode, r.Core.Instret, r.Core.Cycles,
				r.Core.RemoteLoads, r.Core.RemoteStores)
		}
		if err != nil {
			fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
			return 1
		}
		return 0
	}

	core, err := m.Load(*node, prog)
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}
	if *trace {
		core.SetTrace(sim.NewWriterTrace(stderr))
	}
	runErr := core.Run(*max)
	stdout.Write(core.Output.Bytes()) //nolint:errcheck
	if runErr != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", runErr)
		return 1
	}
	fmt.Fprintf(stderr,
		"exit=%d instret=%d cycles=%d remote-loads=%d remote-stores=%d\n",
		core.ExitCode, core.Instret, core.Cycles, core.RemoteLoads, core.RemoteStores)
	return int(core.ExitCode)
}
