// Command xbgas-run assembles an RV64I + xBGAS program and executes it
// on the Spike-like simulator of internal/sim.
//
// Usage:
//
//	xbgas-run [-nodes N] [-node K] [-max M] file.s
//	xbgas-run -spmd [-nodes N] file.s     # same program on every node
//	xbgas-run -itrace - file.s            # instruction trace on stderr
//	xbgas-run -trace out.json file.s      # Perfetto timeline of the run
//	xbgas-run -metrics file.s             # counters + histograms on stderr
//
// The program runs on an N-node machine with the paper's memory
// configuration (256-entry TLB, 8-way 16KB L1 / 8MB L2) on a
// fully-connected fabric by default (-topo selects ring, torus,
// grouped, ... shapes); remote nodes are addressable through object
// IDs 1..N (ID = rank+1). Output written via the write ecall goes to
// standard output; exit code, retired instructions, simulated cycles,
// and remote-access counts are reported on standard error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xbgas/internal/asm"
	"xbgas/internal/fabric"
	"xbgas/internal/obs"
	"xbgas/internal/sim"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbgas-run", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		nodes   = fs.Int("nodes", 2, "number of simulated nodes")
		node    = fs.Int("node", 0, "node to run the program on")
		topo    = fs.String("topo", "", "fabric topology spec: flat|ring|torus[:WxH]|hypercube|grouped:[Gx]P|dragonfly:RxP")
		max     = fs.Uint64("max", 100_000_000, "instruction budget (0 = unlimited)")
		spmd    = fs.Bool("spmd", false, "run the program on every node concurrently (enables the barrier ecall)")
		itrace  = fs.String("itrace", "", "write an instruction trace to `file` (\"-\" = stderr; single-node runs)")
		trace   = fs.String("trace", "", "write a Chrome trace-event JSON timeline to `file` (loads in Perfetto)")
		metrics = fs.Bool("metrics", false, "print event counters and latency histograms to stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(stderr, "xbgas-run: at most one input file")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}

	prog, err := asm.Assemble(string(src))
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}
	cfg := sim.DefaultConfig(*nodes)
	if *topo != "" {
		t, err := fabric.ParseTopo(*topo, *nodes)
		if err != nil {
			fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
			return 2
		}
		cfg.Topology = t
	}
	m, err := sim.NewMachine(cfg)
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}

	// Observability: one recorder run covering every core the machine
	// loads (the SPMD cores included) plus the fabric's NIC tracks.
	var rec *obs.Recorder
	if *trace != "" || *metrics {
		rec = obs.NewRecorder(obs.Options{Trace: *trace != "", Metrics: *metrics})
		m.SetObs(rec.Attach(fmt.Sprintf("%d nodes", *nodes), *nodes))
	}
	// finishObs exports whatever was recorded; called after the run on
	// both the success and fault paths so partial timelines survive.
	finishObs := func() bool {
		if rec == nil {
			return true
		}
		if *metrics {
			fmt.Fprint(stderr, rec.MetricsReport())
		}
		if *trace != "" {
			if err := rec.WriteTraceFile(*trace); err != nil {
				fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
				return false
			}
		}
		return true
	}

	if *spmd {
		results, err := m.RunSPMD(prog, *max)
		for rank, r := range results {
			if r.Core == nil {
				continue
			}
			stdout.Write(r.Core.Output.Bytes()) //nolint:errcheck
			fmt.Fprintf(stderr,
				"node %d: exit=%d instret=%d cycles=%d remote-loads=%d remote-stores=%d\n",
				rank, r.Core.ExitCode, r.Core.Instret, r.Core.Cycles,
				r.Core.RemoteLoads, r.Core.RemoteStores)
		}
		ok := finishObs()
		if err != nil {
			fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
			return 1
		}
		if !ok {
			return 1
		}
		return 0
	}

	core, err := m.Load(*node, prog)
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
		return 1
	}
	if *itrace != "" {
		w := io.Writer(stderr)
		if *itrace != "-" {
			f, err := os.Create(*itrace)
			if err != nil {
				fmt.Fprintf(stderr, "xbgas-run: %v\n", err)
				return 1
			}
			defer f.Close()
			w = f
		}
		core.SetTrace(sim.NewWriterTrace(w))
	}
	runErr := core.Run(*max)
	stdout.Write(core.Output.Bytes()) //nolint:errcheck
	ok := finishObs()
	if runErr != nil {
		fmt.Fprintf(stderr, "xbgas-run: %v\n", runErr)
		return 1
	}
	if !ok {
		return 1
	}
	fmt.Fprintf(stderr,
		"exit=%d instret=%d cycles=%d remote-loads=%d remote-stores=%d\n",
		core.ExitCode, core.Instret, core.Cycles, core.RemoteLoads, core.RemoteStores)
	return int(core.ExitCode)
}
