// Command xbgas-asm assembles RV64I + xBGAS assembly text and prints
// the encoded program, or disassembles it back.
//
// Usage:
//
//	xbgas-asm [-base 0x1000] [-hex] file.s    # assemble, print listing
//	xbgas-asm -d file.s                       # assemble then disassemble
//	xbgas-asm -opcodes                        # print the encoding table
//
// With no file argument the source is read from standard input.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"xbgas/internal/asm"
	"xbgas/internal/isa"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdin, os.Stdout, os.Stderr))
}

func run(args []string, stdin io.Reader, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbgas-asm", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		base    = fs.Uint64("base", asm.DefaultBase, "load address")
		hexOut  = fs.Bool("hex", false, "print raw instruction words only")
		disasm  = fs.Bool("d", false, "print a disassembly listing")
		opcodes = fs.Bool("opcodes", false, "print the instruction encoding table and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *opcodes {
		fmt.Fprint(stdout, isa.OpcodeTable())
		return 0
	}

	var src []byte
	var err error
	switch fs.NArg() {
	case 0:
		src, err = io.ReadAll(stdin)
	case 1:
		src, err = os.ReadFile(fs.Arg(0))
	default:
		fmt.Fprintln(stderr, "xbgas-asm: at most one input file")
		return 2
	}
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-asm: %v\n", err)
		return 1
	}

	prog, err := asm.AssembleAt(string(src), *base)
	if err != nil {
		fmt.Fprintf(stderr, "xbgas-asm: %v\n", err)
		return 1
	}
	switch {
	case *hexOut:
		for _, w := range prog.Words {
			fmt.Fprintf(stdout, "%08x\n", w)
		}
	case *disasm:
		fmt.Fprint(stdout, prog.Disasm())
	default:
		fmt.Fprintf(stdout, "base %#x, %d words, %d bytes\n", prog.Base, len(prog.Words), prog.Size())
		fmt.Fprint(stdout, prog.Disasm())
	}
	return 0
}
