package main

import (
	"strings"
	"testing"
)

func TestRunAssembleFromStdin(t *testing.T) {
	var out, errBuf strings.Builder
	code := run(nil, strings.NewReader("add a0, a1, a2\nret"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "add a0, a1, a2") {
		t.Errorf("output: %s", out.String())
	}
	if !strings.Contains(out.String(), "2 words") {
		t.Errorf("missing summary: %s", out.String())
	}
}

func TestRunHexOutput(t *testing.T) {
	var out, errBuf strings.Builder
	code := run([]string{"-hex"}, strings.NewReader("nop"), &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit %d", code)
	}
	if strings.TrimSpace(out.String()) != "00000013" {
		t.Errorf("hex output: %q", out.String())
	}
}

func TestRunOpcodes(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-opcodes"}, strings.NewReader(""), &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "eaddie") {
		t.Error("opcode table missing xBGAS rows")
	}
}

func TestRunErrors(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run(nil, strings.NewReader("bogus !!"), &out, &errBuf); code != 1 {
		t.Errorf("bad assembly: exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "line 1") {
		t.Errorf("stderr: %s", errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"a.s", "b.s"}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Errorf("two files: exit %d", code)
	}
	if code := run([]string{"-nonsense"}, strings.NewReader(""), &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	if code := run(nil, strings.NewReader("nop"), &out, &errBuf); code != 0 {
		t.Errorf("recovery: exit %d", code)
	}
	if code := run([]string{"/does/not/exist.s"}, strings.NewReader(""), &out, &errBuf); code != 1 {
		t.Errorf("missing file: exit %d", code)
	}
}
