// Command xbgas-bench regenerates the tables and figures of
//
//	Williams, Wang, Leidel, Chen. "Collective Communication for the
//	RISC-V xBGAS ISA Extension." ICPP 2019 Workshops.
//
// Usage:
//
//	xbgas-bench -all                # everything below, in order
//	xbgas-bench -table 1|2          # Table 1 (types), Table 2 (ranks)
//	xbgas-bench -figure 1|2|3|4|5   # register file, memory model,
//	                                # binomial tree, GUPS, Integer Sort
//	xbgas-bench -compare            # xBGAS vs message-passing transport
//	xbgas-bench -ablation NAME      # tree|size|topology|unroll|root|olb
//
//	xbgas-bench -gups N             # one GUPS measurement on N PEs
//
// GUPS/IS parameters can be scaled with -gups-table, -gups-updates,
// -is-keys, -is-maxkey, -is-iters. The fabric topology for kernels and
// sweeps is set with -topo (e.g. -topo grouped:8x16, -topo torus:32x32;
// echoed in StatsReport); -sweep runs a message-size sweep for one
// collective and -scale the 64–1024-PE scale-out grid across flat,
// grouped, and torus fabrics. The kernels' collective algorithm
// can be forced with -algo (use `-algo list` to print the registered
// planners) and message segmentation with -chunk (0 = auto-select,
// >0 forces that segment size in bytes, <0 disables segmentation);
// segmented executions show up in StatsReport's planners: tally as
// "collective/algorithm[seg=N]". xbgas-run has no such flags because
// it executes guest assembly, which encodes its own communication.
// Host hot paths can be profiled with -cpuprofile/-memprofile
// (inspect with `go tool pprof`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"xbgas/internal/bench"
	"xbgas/internal/core"
	"xbgas/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("xbgas-bench", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		all      = fs.Bool("all", false, "regenerate every table and figure")
		table    = fs.Int("table", 0, "print a paper table (1 or 2)")
		figure   = fs.Int("figure", 0, "regenerate a paper figure (1-5)")
		csvOut   = fs.Bool("csv", false, "emit figure 4/5 sweeps as CSV instead of tables")
		compare  = fs.Bool("compare", false, "xBGAS vs message-passing transport comparison")
		micro    = fs.Bool("micro", false, "point-to-point put/get latency and bandwidth")
		traffic  = fs.Bool("traffic", false, "per-pair communication matrix of a random put storm")
		ablation = fs.String("ablation", "", "ablation study: tree|size|topology|unroll|root|olb|barrier|prefetch")

		gupsTable   = fs.Uint64("gups-table", bench.DefaultGUPSParams().TableWords, "GUPS table size in 64-bit words (power of two)")
		gupsUpdates = fs.Int("gups-updates", bench.DefaultGUPSParams().UpdatesPerPE, "GUPS updates per PE")
		gupsPEs     = fs.Int("gups", 0, "run one GUPS measurement on this many PEs (beyond the paper's 8-PE sweep)")
		isKeys      = fs.Int("is-keys", bench.DefaultISParams().TotalKeys, "IS total keys")
		isMaxKey    = fs.Int("is-maxkey", bench.DefaultISParams().MaxKey, "IS maximum key value")
		isIters     = fs.Int("is-iters", bench.DefaultISParams().Iterations, "IS iterations")
		algo        = fs.String("algo", "", "force a registered collective algorithm for the GUPS/IS kernels (\"list\" prints per-collective availability)")
		chunk       = fs.Int("chunk", 0, "collective segmentation chunk bytes: 0 = auto, >0 forces the segment size, <0 disables segmentation")
		sweep       = fs.String("sweep", "", "message-size sweep for a collective: allreduce|allgather|reduce_scatter|broadcast|reduce")
		scale       = fs.String("scale", "", "scale-out sweep (64-1024 PEs x flat/grouped/torus) for a collective: allreduce|allgather")
		topo        = fs.String("topo", "", "fabric topology spec for kernels and sweeps: flat|ring|torus[:WxH]|hypercube|grouped:[Gx]P|dragonfly:RxP")
		tune        = fs.Bool("tune", false, "calibrate the alpha-beta cost model on this machine and persist the tuning table")
		tuning      = fs.String("tuning", "", "load a persisted tuning table for auto algorithm selection (default "+core.DefaultTuningPath+" when present)")
		audit       = fs.Bool("audit", false, "audit the cost model: replay the collective grid and compare measured virtual cost against PlanCostShape")
		auditPEs    = fs.Int("audit-pes", 8, "PE count for -audit (<=16 runs in deterministic lockstep)")
		auditJSON   = fs.String("audit-json", "", "also write the -audit report as JSON to `file` (for tools/tracelens -audit)")

		cpuprofile = fs.String("cpuprofile", "", "write a CPU profile of the run to `file`")
		memprofile = fs.String("memprofile", "", "write a heap profile at exit to `file`")

		traceOut = fs.String("trace", "", "write a Chrome trace-event JSON timeline of the GUPS/IS runs to `file` (loads in Perfetto)")
		metrics  = fs.Bool("metrics", false, "print event counters and latency histograms after the run")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle live objects before the heap snapshot
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
			}
		}()
	}

	gups := bench.DefaultGUPSParams()
	gups.TableWords = *gupsTable
	gups.UpdatesPerPE = *gupsUpdates
	is := bench.DefaultISParams()
	is.TotalKeys = *isKeys
	is.MaxKey = *isMaxKey
	is.Iterations = *isIters

	if *algo == "list" {
		// Per-collective availability: which registered planners
		// implement each operation, with [seg] marking the ones that
		// compile a pipelined (segmented) form for it.
		for _, coll := range core.Collectives() {
			var entries []string
			for _, name := range core.PlannerNames() {
				pl, ok := core.LookupPlanner(core.Algorithm(name))
				if !ok || !pl.Supports(coll) {
					continue
				}
				e := name
				if pl.CompileSeg != nil && pl.CompileSeg(coll, 4, 2) != nil {
					e += " [seg]"
				}
				entries = append(entries, e)
			}
			if len(entries) == 0 {
				entries = []string{"(none)"}
			}
			fmt.Fprintf(stdout, "%-16s %s\n", coll.String()+":", strings.Join(entries, ", "))
		}
		return 0
	}
	if *tune {
		t, err := core.Calibrate()
		if err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: tune: %v\n", err)
			return 1
		}
		core.SetTuning(t)
		path := *tuning
		if path == "" {
			path = core.DefaultTuningPath
		}
		if err := core.SaveTuning(path, t); err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: tune: %v\n", err)
			return 1
		}
		fmt.Fprintf(stdout, "tuned %s: alpha=%.0fns beta=%.2fns/B elem=%.2fns/B flag=%.0fns barrier=%.0fns/PE copy=%.2f/%.2fns/B combine=%.2f/%.2fns/B\n",
			path, t.AlphaNs, t.BetaNsPerByte, t.ElemNsPerByte, t.FlagNs, t.BarrierNs,
			t.CopyNsPerByte, t.CopyElemNsPerByte, t.CombineNsPerByte, t.CombineElemNsPerByte)
		if *sweep == "" && *scale == "" {
			return 0
		}
	} else if *tuning != "" {
		if _, err := core.LoadTuning(*tuning); err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
			return 1
		}
	}
	if *algo != "" {
		if _, ok := core.LookupPlanner(core.Algorithm(*algo)); !ok && *algo != string(core.AlgoAuto) {
			fmt.Fprintf(stderr, "xbgas-bench: unknown algorithm %q (registered: %s)\n",
				*algo, strings.Join(core.PlannerNames(), ", "))
			return 2
		}
		gups.Algo = core.Algorithm(*algo)
		is.Algo = core.Algorithm(*algo)
	}
	if *topo != "" {
		gups.Runtime.TopoSpec = *topo
		is.Runtime.TopoSpec = *topo
	}
	if *chunk != 0 {
		// Per-kernel params carry the override so library callers get
		// the same knob; the global set covers every other path the
		// driver exercises (ablations, figures, -compare).
		core.SetChunkBytes(*chunk)
		gups.Chunk = *chunk
		is.Chunk = *chunk
	}

	// Observability rides through the kernels' runtime configuration:
	// every runtime the GUPS/IS sweeps construct attaches to the same
	// recorder, so the timeline shows one Perfetto process per PE count.
	var rec *obs.Recorder
	if *traceOut != "" || *metrics {
		rec = obs.NewRecorder(obs.Options{Trace: *traceOut != "", Metrics: *metrics})
		// Stamp the model identity into the recorder so the trace header
		// carries it; tools/tracelens refuses to audit a trace against a
		// mismatched tuning table.
		tn := core.CurrentTuning()
		rec.SetModelMeta(obs.ModelMeta{
			TuningVersion:      tn.Version,
			TuningFabric:       tn.Fabric,
			TuningCalibratedAt: tn.CalibratedAt,
			ChunkBytes:         core.ChunkBytes(),
		})
		gups.Runtime.Obs = rec
		is.Runtime.Obs = rec
	}

	w := stdout
	failed := false
	run := func(name string, fn func(io.Writer) error) {
		if failed {
			return
		}
		if err := fn(w); err != nil {
			fmt.Fprintf(stderr, "xbgas-bench: %s: %v\n", name, err)
			failed = true
			return
		}
		fmt.Fprintln(w)
	}

	did := false
	if *all || *table == 1 {
		run("table 1", bench.Table1)
		did = true
	}
	if *all || *table == 2 {
		run("table 2", bench.Table2)
		did = true
	}
	if *all || *figure == 1 {
		run("figure 1", bench.Figure1)
		did = true
	}
	if *all || *figure == 2 {
		run("figure 2", bench.Figure2)
		did = true
	}
	if *all || *figure == 3 {
		run("figure 3", bench.Figure3)
		did = true
	}
	if *all || *figure == 4 {
		if *csvOut {
			run("figure 4", func(w io.Writer) error { return bench.FigureCSV(w, 4, gups, is) })
		} else {
			run("figure 4", func(w io.Writer) error { return bench.Figure4(w, gups) })
		}
		did = true
	}
	if *all || *figure == 5 {
		if *csvOut {
			run("figure 5", func(w io.Writer) error { return bench.FigureCSV(w, 5, gups, is) })
		} else {
			run("figure 5", func(w io.Writer) error { return bench.Figure5(w, is) })
		}
		did = true
	}
	if *all || *compare {
		run("comparison", bench.Comparison)
		did = true
	}
	if *micro {
		run("micro point-to-point", bench.MicroPointToPoint)
		did = true
	}
	if *traffic {
		run("traffic matrix", bench.TrafficMatrix)
		did = true
	}
	if *sweep != "" {
		op := bench.CollectiveOp(*sweep)
		switch op {
		case bench.OpAllReduce, bench.OpAllGather, bench.OpReduceScatter,
			bench.OpBroadcast, bench.OpReduce:
		default:
			fmt.Fprintf(stderr, "xbgas-bench: unknown sweep %q (allreduce|allgather|reduce_scatter|broadcast|reduce)\n", *sweep)
			return 2
		}
		run("sweep "+*sweep, func(w io.Writer) error { return bench.FigureSweep(w, op, *topo) })
		did = true
	}
	if *scale != "" {
		op := bench.CollectiveOp(*scale)
		switch op {
		case bench.OpAllReduce, bench.OpAllGather:
		default:
			fmt.Fprintf(stderr, "xbgas-bench: unknown scale sweep %q (allreduce|allgather)\n", *scale)
			return 2
		}
		run("scale "+*scale, func(w io.Writer) error { return bench.FigureScale(w, op) })
		did = true
	}
	if *audit {
		run(fmt.Sprintf("audit %d PEs", *auditPEs), func(w io.Writer) error {
			opt := bench.AuditOptions{PEs: *auditPEs}
			if *topo != "" {
				opt.Topos = []string{*topo}
			}
			rep, err := bench.RunAudit(opt)
			if err != nil {
				return err
			}
			if _, err := fmt.Fprint(w, rep.Markdown()); err != nil {
				return err
			}
			if *auditJSON != "" {
				f, err := os.Create(*auditJSON)
				if err != nil {
					return err
				}
				defer f.Close()
				if err := rep.WriteJSON(f); err != nil {
					return err
				}
			}
			return nil
		})
		did = true
	}
	if *gupsPEs > 0 {
		run(fmt.Sprintf("gups %d PEs", *gupsPEs), func(w io.Writer) error {
			r, err := bench.RunGUPS(gups, *gupsPEs)
			if err != nil {
				return err
			}
			_, err = fmt.Fprintln(w, r)
			return err
		})
		did = true
	}
	ablations := map[string]func(io.Writer) error{
		"tree":     bench.AblationTreeVsLinear,
		"size":     bench.AblationMessageSize,
		"topology": bench.AblationTopology,
		"unroll":   bench.AblationUnroll,
		"root":     bench.AblationRoot,
		"olb":      bench.AblationOLB,
		"prefetch": bench.AblationPrefetch,
		"barrier":  bench.AblationBarrier,
	}
	if *all {
		run("micro point-to-point", bench.MicroPointToPoint)
		run("traffic matrix", bench.TrafficMatrix)
		for _, name := range []string{"tree", "size", "topology", "unroll", "root", "olb", "barrier", "prefetch"} {
			run("ablation "+name, ablations[name])
		}
		did = true
	} else if *ablation != "" {
		fn, ok := ablations[*ablation]
		if !ok {
			fmt.Fprintf(stderr, "xbgas-bench: unknown ablation %q\n", *ablation)
			return 2
		}
		run("ablation "+*ablation, fn)
		did = true
	}
	if rec != nil && did {
		if *metrics {
			fmt.Fprint(w, rec.MetricsReport())
		}
		if *traceOut != "" {
			if err := rec.WriteTraceFile(*traceOut); err != nil {
				fmt.Fprintf(stderr, "xbgas-bench: %v\n", err)
				return 1
			}
		}
	}
	if failed {
		return 1
	}
	if !did {
		fs.Usage()
		return 2
	}
	return 0
}
