package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunTables(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-table", "1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "ptrdiff_t") {
		t.Errorf("table 1 output: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-table", "2"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "vir_rank") {
		t.Errorf("table 2 output: %s", out.String())
	}
}

func TestRunFigureStatic(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-figure", "3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "0->4") {
		t.Errorf("figure 3 output: %s", out.String())
	}
}

func TestRunCSVSweep(t *testing.T) {
	var out, errBuf strings.Builder
	args := []string{"-csv", "-figure", "4", "-gups-table", "16384", "-gups-updates", "128"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "figure,pes,") {
		t.Errorf("CSV output: %s", out.String())
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no selection: exit %d", code)
	}
	if code := run([]string{"-ablation", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown ablation: exit %d", code)
	}
	if code := run([]string{"-nonsense"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	// Invalid workload parameters surface as exit 1.
	errBuf.Reset()
	if code := run([]string{"-figure", "4", "-gups-table", "1000"}, &out, &errBuf); code != 1 {
		t.Errorf("bad table size: exit %d (%s)", code, errBuf.String())
	}
}

func TestRunAlgoFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-algo", "list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-algo list: exit %d: %s", code, errBuf.String())
	}
	for _, name := range []string{"binomial", "linear", "scatter-allgather", "direct"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-algo list output missing %q:\n%s", name, out.String())
		}
	}
	errBuf.Reset()
	if code := run([]string{"-algo", "bogus", "-table", "1"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown algorithm: exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "registered:") {
		t.Errorf("unknown-algorithm error must list the registry: %s", errBuf.String())
	}
	out.Reset()
	args := []string{"-algo", "linear", "-gups", "2", "-gups-table", "4096", "-gups-updates", "64"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("-algo linear gups: exit %d: %s", code, errBuf.String())
	}
}

func TestRunGUPSWithTraceAndMetrics(t *testing.T) {
	var out, errBuf strings.Builder
	path := filepath.Join(t.TempDir(), "gups.json")
	args := []string{"-gups", "2", "-gups-table", "4096", "-gups-updates", "64",
		"-trace", path, "-metrics"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "metrics: run") {
		t.Errorf("metrics report missing: %s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawPut bool
	for _, ev := range tf.TraceEvents {
		if ev["name"] == "put" || ev["name"] == "get" {
			sawPut = true
			break
		}
	}
	if !sawPut {
		t.Errorf("GUPS trace has no put/get spans (%d events)", len(tf.TraceEvents))
	}
}
