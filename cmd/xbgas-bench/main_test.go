package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"xbgas/internal/core"
)

func TestRunTables(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-table", "1"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "ptrdiff_t") {
		t.Errorf("table 1 output: %s", out.String())
	}
	out.Reset()
	if code := run([]string{"-table", "2"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "vir_rank") {
		t.Errorf("table 2 output: %s", out.String())
	}
}

func TestRunFigureStatic(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-figure", "3"}, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d", code)
	}
	if !strings.Contains(out.String(), "0->4") {
		t.Errorf("figure 3 output: %s", out.String())
	}
}

func TestRunCSVSweep(t *testing.T) {
	var out, errBuf strings.Builder
	args := []string{"-csv", "-figure", "4", "-gups-table", "16384", "-gups-updates", "128"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.HasPrefix(out.String(), "figure,pes,") {
		t.Errorf("CSV output: %s", out.String())
	}
}

func TestRunUsageAndErrors(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run(nil, &out, &errBuf); code != 2 {
		t.Errorf("no selection: exit %d", code)
	}
	if code := run([]string{"-ablation", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown ablation: exit %d", code)
	}
	if code := run([]string{"-nonsense"}, &out, &errBuf); code != 2 {
		t.Errorf("bad flag: exit %d", code)
	}
	// Invalid workload parameters surface as exit 1.
	errBuf.Reset()
	if code := run([]string{"-figure", "4", "-gups-table", "1000"}, &out, &errBuf); code != 1 {
		t.Errorf("bad table size: exit %d (%s)", code, errBuf.String())
	}
}

func TestRunAlgoFlag(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-algo", "list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-algo list: exit %d: %s", code, errBuf.String())
	}
	for _, name := range []string{"binomial", "linear", "scatter-allgather", "direct"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-algo list output missing %q:\n%s", name, out.String())
		}
	}
	errBuf.Reset()
	if code := run([]string{"-algo", "bogus", "-table", "1"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown algorithm: exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "registered:") {
		t.Errorf("unknown-algorithm error must list the registry: %s", errBuf.String())
	}
	out.Reset()
	args := []string{"-algo", "linear", "-gups", "2", "-gups-table", "4096", "-gups-updates", "64"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("-algo linear gups: exit %d: %s", code, errBuf.String())
	}
}

func TestRunAlgoListPerCollective(t *testing.T) {
	var out, errBuf strings.Builder
	if code := run([]string{"-algo", "list"}, &out, &errBuf); code != 0 {
		t.Fatalf("-algo list: exit %d: %s", code, errBuf.String())
	}
	checks := map[string][]string{
		"broadcast:":      {"binomial [seg]", "ring [seg]", "scatter-allgather"},
		"allreduce:":      {"binomial [seg]", "rabenseifner", "ring"},
		"reduce_scatter:": {"rabenseifner", "ring"},
		"allgather:":      {"binomial", "rabenseifner", "ring"},
		"alltoall:":       {"direct"},
	}
	for line, wants := range checks {
		var found string
		for _, l := range strings.Split(out.String(), "\n") {
			if strings.HasPrefix(l, line) {
				found = l
				break
			}
		}
		if found == "" {
			t.Errorf("-algo list output has no %q line:\n%s", line, out.String())
			continue
		}
		for _, w := range wants {
			if !strings.Contains(found, w) {
				t.Errorf("%q line missing %q: %s", line, w, found)
			}
		}
	}
}

func TestRunTuningFlag(t *testing.T) {
	var out, errBuf strings.Builder
	path := filepath.Join(t.TempDir(), "tuning.json")
	// Persist the defaults so loading them back leaves global selection
	// state unchanged for the rest of the package's tests.
	if err := core.SaveTuning(path, core.DefaultTuning()); err != nil {
		t.Fatal(err)
	}
	args := []string{"-tuning", path, "-gups", "2", "-gups-table", "4096", "-gups-updates", "64"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("-tuning: exit %d: %s", code, errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"-tuning", filepath.Join(t.TempDir(), "missing.json"), "-table", "1"}, &out, &errBuf); code != 1 {
		t.Errorf("missing tuning file: exit %d (%s)", code, errBuf.String())
	}
	errBuf.Reset()
	if code := run([]string{"-sweep", "bogus"}, &out, &errBuf); code != 2 {
		t.Errorf("unknown sweep op: exit %d", code)
	}
	if !strings.Contains(errBuf.String(), "allreduce|allgather|reduce_scatter") {
		t.Errorf("sweep error must list valid ops: %s", errBuf.String())
	}
}

func TestRunGUPSWithTraceAndMetrics(t *testing.T) {
	var out, errBuf strings.Builder
	path := filepath.Join(t.TempDir(), "gups.json")
	args := []string{"-gups", "2", "-gups-table", "4096", "-gups-updates", "64",
		"-trace", path, "-metrics"}
	if code := run(args, &out, &errBuf); code != 0 {
		t.Fatalf("exit %d: %s", code, errBuf.String())
	}
	if !strings.Contains(out.String(), "metrics: run") {
		t.Errorf("metrics report missing: %s", out.String())
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	var sawPut bool
	for _, ev := range tf.TraceEvents {
		if ev["name"] == "put" || ev["name"] == "get" {
			sawPut = true
			break
		}
	}
	if !sawPut {
		t.Errorf("GUPS trace has no put/get spans (%d events)", len(tf.TraceEvents))
	}
}
