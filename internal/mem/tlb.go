package mem

// TLB is a fully-associative translation look-aside buffer with LRU
// replacement, matching the paper's 256-entry per-core configuration.
// The simulation uses identity translation (physical == virtual within a
// node), so the TLB exists purely for its timing behaviour: a miss adds
// a page-walk penalty to the access cost.
type TLB struct {
	entries  int
	slots    map[uint64]uint64 // page number -> last-use tick
	tick     uint64
	hits     uint64
	misses   uint64
	capacity int
}

// NewTLB returns a TLB with the given number of entries.
func NewTLB(entries int) *TLB {
	if entries <= 0 {
		entries = 1
	}
	return &TLB{
		entries: entries,
		slots:   make(map[uint64]uint64, entries),
	}
}

// Lookup translates the page containing addr, returning true on a hit.
// On a miss the entry is filled, evicting the least recently used entry
// if the TLB is full.
func (t *TLB) Lookup(addr uint64) bool {
	pn := addr / PageSize
	t.tick++
	if _, ok := t.slots[pn]; ok {
		t.slots[pn] = t.tick
		t.hits++
		return true
	}
	t.misses++
	if len(t.slots) >= t.entries {
		var victim uint64
		oldest := ^uint64(0)
		for p, used := range t.slots {
			if used < oldest {
				oldest = used
				victim = p
			}
		}
		delete(t.slots, victim)
	}
	t.slots[pn] = t.tick
	return false
}

// Flush empties the TLB, keeping statistics.
func (t *TLB) Flush() { t.slots = make(map[uint64]uint64, t.entries) }

// Hits returns the number of lookups that hit.
func (t *TLB) Hits() uint64 { return t.hits }

// Misses returns the number of lookups that missed.
func (t *TLB) Misses() uint64 { return t.misses }

// Entries returns the configured capacity.
func (t *TLB) Entries() int { return t.entries }
