package mem

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMemoryReadWriteRoundTrip(t *testing.T) {
	m := NewMemory()
	for _, size := range []int{1, 2, 4, 8} {
		addr := uint64(0x1000 + size*64)
		want := uint64(0x1122334455667788) & (1<<(8*size) - 1)
		m.WriteUint(addr, size, want)
		if got := m.ReadUint(addr, size); got != want {
			t.Errorf("size %d: got %#x, want %#x", size, got, want)
		}
	}
}

func TestMemoryZeroFill(t *testing.T) {
	m := NewMemory()
	if v := m.Uint64(0xDEADBEEF000); v != 0 {
		t.Errorf("unwritten memory = %#x, want 0", v)
	}
	var buf [16]byte
	m.ReadBytes(0x12345, buf[:])
	for i, b := range buf {
		if b != 0 {
			t.Errorf("byte %d = %#x, want 0", i, b)
		}
	}
}

func TestMemoryCrossPageAccess(t *testing.T) {
	m := NewMemory()
	addr := uint64(PageSize - 3) // straddles the first page boundary
	m.WriteUint(addr, 8, 0x0102030405060708)
	if got := m.ReadUint(addr, 8); got != 0x0102030405060708 {
		t.Errorf("cross-page read = %#x", got)
	}
	if m.Footprint() != 2 {
		t.Errorf("footprint = %d, want 2 pages", m.Footprint())
	}
}

func TestMemoryQuickRoundTrip(t *testing.T) {
	m := NewMemory()
	f := func(addr uint64, v uint64, szSel uint8) bool {
		size := []int{1, 2, 4, 8}[szSel%4]
		addr %= 1 << 40 // keep the page map small-ish
		want := v & (1<<(8*size) - 1)
		m.WriteUint(addr, size, v)
		return m.ReadUint(addr, size) == want
	}
	cfg := &quick.Config{MaxCount: 2000, Rand: rand.New(rand.NewSource(11))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMemoryLittleEndianLayout(t *testing.T) {
	m := NewMemory()
	m.PutUint32(0x100, 0x11223344)
	if b := m.ReadUint(0x100, 1); b != 0x44 {
		t.Errorf("LSB = %#x, want 0x44", b)
	}
	if b := m.ReadUint(0x103, 1); b != 0x11 {
		t.Errorf("MSB = %#x, want 0x11", b)
	}
}

func TestTLBHitMissLRU(t *testing.T) {
	tlb := NewTLB(2)
	if tlb.Lookup(0 * PageSize) {
		t.Error("first touch must miss")
	}
	if !tlb.Lookup(0 * PageSize) {
		t.Error("second touch must hit")
	}
	tlb.Lookup(1 * PageSize) // miss, fills
	tlb.Lookup(0 * PageSize) // hit, refreshes page 0
	tlb.Lookup(2 * PageSize) // miss, evicts LRU page 1
	if tlb.Lookup(1 * PageSize) {
		t.Error("page 1 should have been evicted (LRU)")
	}
	// That probe itself filled page 1, evicting LRU page 0.
	if !tlb.Lookup(2 * PageSize) {
		t.Error("page 2 should still be resident")
	}
	if tlb.Hits() == 0 || tlb.Misses() == 0 {
		t.Error("statistics not recorded")
	}
}

func TestTLBFlush(t *testing.T) {
	tlb := NewTLB(4)
	tlb.Lookup(0)
	tlb.Flush()
	if tlb.Lookup(0) {
		t.Error("flush must empty the TLB")
	}
}

func TestCacheGeometryValidation(t *testing.T) {
	if _, err := NewCache("bad", 1000, 8); err == nil {
		t.Error("expected geometry error for non-line-multiple size")
	}
	if _, err := NewCache("bad", 0, 8); err == nil {
		t.Error("expected geometry error for zero size")
	}
	c := MustCache("L1", 16<<10, 8)
	if c.Sets() != 32 || c.Ways() != 8 || c.Size() != 16<<10 {
		t.Errorf("paper L1 geometry: sets=%d ways=%d size=%d", c.Sets(), c.Ways(), c.Size())
	}
	l2 := MustCache("L2", 8<<20, 8)
	if l2.Sets() != (8<<20)/LineSize/8 {
		t.Errorf("paper L2 geometry: sets=%d", l2.Sets())
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c := MustCache("c", 4096, 4)
	if c.Access(0x1000, 8, false) {
		t.Error("cold access must miss")
	}
	if !c.Access(0x1000, 8, false) {
		t.Error("warm access must hit")
	}
	if !c.Access(0x1004, 4, true) {
		t.Error("same line must hit")
	}
}

func TestCacheLRUWithinSet(t *testing.T) {
	// 2-way, line 64: lines mapping to the same set are spaced sets*64.
	c := MustCache("c", 2*2*LineSize, 2) // 2 sets, 2 ways
	stride := uint64(c.Sets() * LineSize)
	a, b, d := uint64(0), stride, 2*stride // all set 0
	c.Access(a, 1, false)                  // miss, fill
	c.Access(b, 1, false)                  // miss, fill
	c.Access(a, 1, false)                  // hit, refresh a
	c.Access(d, 1, false)                  // miss, evict b (LRU)
	if c.Access(b, 1, false) {
		t.Error("b should have been evicted")
	}
	// That probe filled b again, evicting LRU line a; d stays resident.
	if !c.Access(d, 1, false) {
		t.Error("d should still be resident")
	}
	if c.Evictions() == 0 {
		t.Error("evictions not counted")
	}
}

func TestCacheWritebackAccounting(t *testing.T) {
	c := MustCache("c", 2*LineSize, 1) // direct-mapped, 2 sets
	c.Access(0, 8, true)               // dirty line 0
	c.Access(uint64(2*LineSize*1), 8, false)
	// line 0 and line 2 map to set 0; second access evicts dirty line.
	if c.WritebackBytes() != LineSize {
		t.Errorf("writeback bytes = %d, want %d", c.WritebackBytes(), LineSize)
	}
	c2 := MustCache("c2", 2*LineSize, 1)
	c2.Access(0, 8, true)
	c2.Flush()
	if c2.WritebackBytes() != LineSize {
		t.Errorf("flush writeback = %d", c2.WritebackBytes())
	}
}

func TestCacheMultiLineAccess(t *testing.T) {
	c := MustCache("c", 4096, 4)
	// 128-byte access spans two lines: both must be probed.
	c.Access(0, 128, false)
	if c.Misses() != 2 {
		t.Errorf("misses = %d, want 2", c.Misses())
	}
	if !c.Access(0, 128, false) {
		t.Error("both lines should now hit")
	}
}

func TestHierarchyCosts(t *testing.T) {
	cfg := DefaultConfig()
	h := MustHierarchy(cfg)

	// Cold access: TLB miss + L1 miss + L2 miss.
	cold := h.Touch(0x10000, 8, false)
	want := cfg.L1Latency + cfg.TLBMissCost + cfg.L2Latency + cfg.MemLatency
	if cold != want {
		t.Errorf("cold cost = %d, want %d", cold, want)
	}
	// Warm access: pure L1 hit.
	warm := h.Touch(0x10000, 8, false)
	if warm != cfg.L1Latency {
		t.Errorf("warm cost = %d, want %d", warm, cfg.L1Latency)
	}
	if h.Accesses() != 2 || h.Cycles() != cold+warm {
		t.Errorf("stats: accesses=%d cycles=%d", h.Accesses(), h.Cycles())
	}
}

func TestHierarchyL2HitCost(t *testing.T) {
	cfg := DefaultConfig()
	h := MustHierarchy(cfg)
	base := uint64(0)
	// Stream a working set bigger than L1 (16 KB) but within L2: lines
	// re-touched after L1 eviction should cost L1+L2 only.
	span := uint64(64 << 10) // 64 KB > L1, << L2
	for a := base; a < base+span; a += LineSize {
		h.Touch(a, 8, false)
	}
	// Second pass: TLB covers 64 KB (16 pages of 256 entries), L1 misses,
	// L2 hits.
	cost := h.Touch(base, 8, false)
	want := cfg.L1Latency + cfg.L2Latency
	if cost != want {
		t.Errorf("L2-hit cost = %d, want %d", cost, want)
	}
}

func TestHierarchyReadWriteData(t *testing.T) {
	h := MustHierarchy(DefaultConfig())
	h.Write(0x2000, 8, 0xCAFEBABE12345678)
	v, _ := h.Read(0x2000, 8)
	if v != 0xCAFEBABE12345678 {
		t.Errorf("read = %#x", v)
	}
	if h.RAM().Uint64(0x2000) != 0xCAFEBABE12345678 {
		t.Error("backing RAM must hold the data")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.TLBEntries != 256 {
		t.Errorf("TLB entries = %d, paper says 256", cfg.TLBEntries)
	}
	if cfg.L1Size != 16<<10 || cfg.L1Ways != 8 {
		t.Errorf("L1 = %d bytes %d-way, paper says 16KB 8-way", cfg.L1Size, cfg.L1Ways)
	}
	if cfg.L2Size != 8<<20 || cfg.L2Ways != 8 {
		t.Errorf("L2 = %d bytes %d-way, paper says 8MB 8-way", cfg.L2Size, cfg.L2Ways)
	}
}

func TestCacheCapacityEffect(t *testing.T) {
	// The mechanism behind the paper's superlinear per-PE scaling: a
	// working set that thrashes a small cache fits after halving.
	c := MustCache("c", 1<<10, 8) // 1 KB
	working := uint64(2 << 10)    // 2 KB: thrashes
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < working; a += LineSize {
			c.Access(a, 8, false)
		}
	}
	thrashRate := c.HitRate()

	c2 := MustCache("c2", 1<<10, 8)
	working = 512 // fits
	for pass := 0; pass < 4; pass++ {
		for a := uint64(0); a < working; a += LineSize {
			c2.Access(a, 8, false)
		}
	}
	if c2.HitRate() <= thrashRate {
		t.Errorf("fitting working set must hit more: fit=%.2f thrash=%.2f",
			c2.HitRate(), thrashRate)
	}
}

func TestStreamPrefetcher(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Prefetch = true
	h := MustHierarchy(cfg)
	// A sequential sweep: after the detector warms up (two adjacent
	// misses), subsequent lines are prefetched and hit in L1.
	var cold, warm uint64
	for a := uint64(0); a < 64*LineSize; a += LineSize {
		c := h.Touch(a, 8, false)
		if a < 2*LineSize {
			cold += c
		} else {
			warm += c
		}
	}
	if h.Prefetches() == 0 {
		t.Fatal("prefetcher never fired on a sequential sweep")
	}
	// Average warm cost must be far below a full miss chain.
	avgWarm := warm / 62
	full := cfg.L1Latency + cfg.L2Latency + cfg.MemLatency
	if avgWarm >= full {
		t.Errorf("prefetch ineffective: avg warm cost %d vs miss chain %d", avgWarm, full)
	}

	// Random access: the detector must not fire.
	h2 := MustHierarchy(cfg)
	x := uint64(12345)
	for i := 0; i < 256; i++ {
		x = x*6364136223846793005 + 1442695040888963407
		h2.Touch((x%(1<<26))&^7, 8, false)
	}
	if h2.Prefetches() > 8 {
		t.Errorf("prefetcher fired %d times on random access", h2.Prefetches())
	}
}

func TestPrefetchOffByDefault(t *testing.T) {
	h := MustHierarchy(DefaultConfig())
	for a := uint64(0); a < 32*LineSize; a += LineSize {
		h.Touch(a, 8, false)
	}
	if h.Prefetches() != 0 {
		t.Error("prefetcher must be off by default (paper §5.1 config)")
	}
}
