package mem

import "fmt"

// LineSize is the cache line size in bytes for all cache levels.
const LineSize = 64

// Cache is a set-associative, write-allocate, write-back cache model
// with true-LRU replacement within each set. Only tags are tracked: data
// always lives in Memory (the functional simulator is store-through),
// so the cache influences timing and statistics, never values.
type Cache struct {
	name     string
	sets     int
	ways     int
	tags     []uint64 // sets×ways row-major line tags; ^0 = invalid
	dirty    []bool
	lru      []uint64 // last-use tick, same layout as tags
	tick     uint64
	hits     uint64
	misses   uint64
	evicts   uint64
	wbBytes  uint64
	sizeByte int
}

// NewCache builds a cache of size bytes with the given associativity.
// size must be a multiple of ways*LineSize.
func NewCache(name string, size, ways int) (*Cache, error) {
	if size <= 0 || ways <= 0 {
		return nil, fmt.Errorf("mem: cache %s: non-positive geometry", name)
	}
	lines := size / LineSize
	if lines*LineSize != size || lines%ways != 0 {
		return nil, fmt.Errorf("mem: cache %s: size %d not divisible into %d-way sets of %d-byte lines",
			name, size, ways, LineSize)
	}
	sets := lines / ways
	c := &Cache{
		name: name, sets: sets, ways: ways, sizeByte: size,
		tags:  make([]uint64, lines),
		dirty: make([]bool, lines),
		lru:   make([]uint64, lines),
	}
	for i := range c.tags {
		c.tags[i] = ^uint64(0)
	}
	return c, nil
}

// MustCache is NewCache for static configurations; it panics on error.
func MustCache(name string, size, ways int) *Cache {
	c, err := NewCache(name, size, ways)
	if err != nil {
		panic(err)
	}
	return c
}

// access probes a single line. write marks the line dirty on presence.
func (c *Cache) access(lineAddr uint64, write bool) (hit bool) {
	base := int(lineAddr%uint64(c.sets)) * c.ways
	tags := c.tags[base : base+c.ways]
	c.tick++
	for w, t := range tags {
		if t == lineAddr {
			c.lru[base+w] = c.tick
			if write {
				c.dirty[base+w] = true
			}
			c.hits++
			return true
		}
	}
	c.misses++
	// Fill: choose an invalid way, else the LRU way.
	victim := 0
	oldest := ^uint64(0)
	for w, t := range tags {
		if t == ^uint64(0) {
			victim = w
			oldest = 0
			break
		}
		if c.lru[base+w] < oldest {
			oldest = c.lru[base+w]
			victim = w
		}
	}
	if tags[victim] != ^uint64(0) {
		c.evicts++
		if c.dirty[base+victim] {
			c.wbBytes += LineSize
		}
	}
	tags[victim] = lineAddr
	c.dirty[base+victim] = write
	c.lru[base+victim] = c.tick
	return false
}

// Access touches every line covered by [addr, addr+size) and reports
// whether all of them hit. Statistics count one probe per line.
func (c *Cache) Access(addr uint64, size int, write bool) (allHit bool) {
	if size <= 0 {
		return true
	}
	first := addr / LineSize
	last := (addr + uint64(size) - 1) / LineSize
	allHit = true
	for line := first; line <= last; line++ {
		if !c.access(line, write) {
			allHit = false
		}
	}
	return allHit
}

// Flush invalidates every line, counting dirty lines as written back.
func (c *Cache) Flush() {
	for i := range c.tags {
		if c.tags[i] != ^uint64(0) && c.dirty[i] {
			c.wbBytes += LineSize
		}
		c.tags[i] = ^uint64(0)
		c.dirty[i] = false
	}
}

// Hits returns the number of line probes that hit.
func (c *Cache) Hits() uint64 { return c.hits }

// Misses returns the number of line probes that missed.
func (c *Cache) Misses() uint64 { return c.misses }

// Evictions returns the number of valid lines replaced.
func (c *Cache) Evictions() uint64 { return c.evicts }

// WritebackBytes returns the number of dirty bytes written back.
func (c *Cache) WritebackBytes() uint64 { return c.wbBytes }

// Size returns the capacity in bytes.
func (c *Cache) Size() int { return c.sizeByte }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// HitRate returns hits/(hits+misses), or 0 with no traffic.
func (c *Cache) HitRate() float64 {
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}
