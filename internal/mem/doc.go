// Package mem models the per-node memory system of the xBGAS simulation
// environment described in paper §5.1: each simulated RISC-V core is
// "configured with a 256-Entry TLB and 8-way set associative L1 (16KB)
// and L2 (8MB) caches".
//
// The package provides three composable pieces:
//
//   - Memory: a sparse, byte-addressable 64-bit physical memory,
//   - TLB: a fully-associative, LRU translation look-aside buffer,
//   - Cache: a set-associative, write-allocate, write-back LRU cache,
//
// and a Hierarchy that stacks TLB → L1 → L2 → DRAM, charging a cycle
// cost per access and keeping hit/miss statistics. The hierarchy is the
// source of the local-memory component of the performance model used by
// the runtime and the benchmarks; the absolute latencies are nominal
// (Config documents them), but the capacity and associativity behaviour
// follows the paper's configuration exactly.
package mem
