package mem

import (
	"encoding/binary"
	"fmt"
)

// PageSize is the granularity of the sparse backing store and of TLB
// translations.
const PageSize = 4096

// Memory is a sparse byte-addressable physical memory. The zero value is
// an empty memory ready for use. Memory performs no synchronisation; the
// owner (a simulated node) serialises access.
type Memory struct {
	pages map[uint64]*[PageSize]byte
}

// NewMemory returns an empty memory.
func NewMemory() *Memory {
	return &Memory{pages: make(map[uint64]*[PageSize]byte)}
}

func (m *Memory) page(addr uint64, create bool) *[PageSize]byte {
	if m.pages == nil {
		if !create {
			return nil
		}
		m.pages = make(map[uint64]*[PageSize]byte)
	}
	pn := addr / PageSize
	p := m.pages[pn]
	if p == nil && create {
		p = new([PageSize]byte)
		m.pages[pn] = p
	}
	return p
}

// ReadBytes copies len(dst) bytes starting at addr into dst. Unwritten
// memory reads as zero.
func (m *Memory) ReadBytes(addr uint64, dst []byte) {
	for len(dst) > 0 {
		off := addr % PageSize
		chunk := PageSize - off
		if uint64(len(dst)) < chunk {
			chunk = uint64(len(dst))
		}
		if p := m.page(addr, false); p != nil {
			copy(dst[:chunk], p[off:off+chunk])
		} else {
			for i := uint64(0); i < chunk; i++ {
				dst[i] = 0
			}
		}
		dst = dst[chunk:]
		addr += chunk
	}
}

// WriteBytes copies src into memory starting at addr.
func (m *Memory) WriteBytes(addr uint64, src []byte) {
	for len(src) > 0 {
		off := addr % PageSize
		chunk := PageSize - off
		if uint64(len(src)) < chunk {
			chunk = uint64(len(src))
		}
		p := m.page(addr, true)
		copy(p[off:off+chunk], src[:chunk])
		src = src[chunk:]
		addr += chunk
	}
}

// ReadUint reads a size-byte little-endian unsigned integer at addr.
// size must be 1, 2, 4, or 8.
func (m *Memory) ReadUint(addr uint64, size int) uint64 {
	var buf [8]byte
	m.ReadBytes(addr, buf[:size])
	switch size {
	case 1:
		return uint64(buf[0])
	case 2:
		return uint64(binary.LittleEndian.Uint16(buf[:2]))
	case 4:
		return uint64(binary.LittleEndian.Uint32(buf[:4]))
	case 8:
		return binary.LittleEndian.Uint64(buf[:8])
	}
	panic(fmt.Sprintf("mem: bad access size %d", size))
}

// WriteUint writes a size-byte little-endian unsigned integer at addr.
// size must be 1, 2, 4, or 8.
func (m *Memory) WriteUint(addr uint64, size int, v uint64) {
	var buf [8]byte
	switch size {
	case 1:
		buf[0] = byte(v)
	case 2:
		binary.LittleEndian.PutUint16(buf[:2], uint16(v))
	case 4:
		binary.LittleEndian.PutUint32(buf[:4], uint32(v))
	case 8:
		binary.LittleEndian.PutUint64(buf[:8], v)
	default:
		panic(fmt.Sprintf("mem: bad access size %d", size))
	}
	m.WriteBytes(addr, buf[:size])
}

// Uint64 reads an 8-byte value at addr.
func (m *Memory) Uint64(addr uint64) uint64 { return m.ReadUint(addr, 8) }

// PutUint64 writes an 8-byte value at addr.
func (m *Memory) PutUint64(addr uint64, v uint64) { m.WriteUint(addr, 8, v) }

// Uint32 reads a 4-byte value at addr.
func (m *Memory) Uint32(addr uint64) uint32 { return uint32(m.ReadUint(addr, 4)) }

// PutUint32 writes a 4-byte value at addr.
func (m *Memory) PutUint32(addr uint64, v uint32) { m.WriteUint(addr, 4, uint64(v)) }

// ReadElems reads n size-byte little-endian elements at addr,
// addr+step, ..., into dst[:n]. It is the strided batch form of
// ReadUint: a page pointer is cached across elements, so a stream that
// stays on one page costs one map lookup total instead of one per
// element. size must be 1, 2, 4, or 8.
func (m *Memory) ReadElems(addr uint64, size int, step uint64, n int, dst []uint64) {
	pn := ^uint64(0)
	var p *[PageSize]byte
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*step
		off := a % PageSize
		if PageSize-off < uint64(size) {
			// Element straddles a page boundary: slow path.
			dst[i] = m.ReadUint(a, size)
			pn = ^uint64(0)
			continue
		}
		if q := a / PageSize; q != pn {
			pn, p = q, m.page(a, false)
		}
		if p == nil {
			dst[i] = 0
			continue
		}
		switch size {
		case 8:
			dst[i] = binary.LittleEndian.Uint64(p[off:])
		case 4:
			dst[i] = uint64(binary.LittleEndian.Uint32(p[off:]))
		case 2:
			dst[i] = uint64(binary.LittleEndian.Uint16(p[off:]))
		case 1:
			dst[i] = uint64(p[off])
		default:
			panic(fmt.Sprintf("mem: bad access size %d", size))
		}
	}
}

// WriteElems writes n size-byte little-endian elements from src[:n] to
// addr, addr+step, ... — the strided batch form of WriteUint, with the
// same page-pointer caching as ReadElems. size must be 1, 2, 4, or 8.
func (m *Memory) WriteElems(addr uint64, size int, step uint64, n int, src []uint64) {
	pn := ^uint64(0)
	var p *[PageSize]byte
	for i := 0; i < n; i++ {
		a := addr + uint64(i)*step
		off := a % PageSize
		if PageSize-off < uint64(size) {
			m.WriteUint(a, size, src[i])
			pn = ^uint64(0)
			continue
		}
		if q := a / PageSize; q != pn {
			pn, p = q, m.page(a, true)
		}
		switch size {
		case 8:
			binary.LittleEndian.PutUint64(p[off:], src[i])
		case 4:
			binary.LittleEndian.PutUint32(p[off:], uint32(src[i]))
		case 2:
			binary.LittleEndian.PutUint16(p[off:], uint16(src[i]))
		case 1:
			p[off] = byte(src[i])
		default:
			panic(fmt.Sprintf("mem: bad access size %d", size))
		}
	}
}

// Footprint reports the number of resident (ever-written) pages.
func (m *Memory) Footprint() int { return len(m.pages) }
