package mem

// Config describes one node's memory system. The geometry defaults come
// straight from paper §5.1; the latencies are nominal cycle costs typical
// for that geometry and are the knobs of the performance model.
type Config struct {
	TLBEntries int // translation entries per core
	L1Size     int // bytes
	L1Ways     int
	L2Size     int // bytes
	L2Ways     int

	L1Latency   uint64 // cycles on an L1 hit
	L2Latency   uint64 // additional cycles on an L1 miss / L2 hit
	MemLatency  uint64 // additional cycles on an L2 miss
	TLBMissCost uint64 // page-walk penalty

	// Prefetch enables a next-line stream prefetcher: when two
	// consecutive L1 misses hit adjacent lines, the following line is
	// brought into both cache levels for free. Sequential sweeps (the
	// sort phases of IS) benefit; random access (GUPS) does not. Off by
	// default to match the paper's plain cache configuration.
	Prefetch bool
}

// DefaultConfig returns the paper's evaluation configuration: 256-entry
// TLB, 8-way 16 KB L1, 8-way 8 MB L2 (§5.1).
func DefaultConfig() Config {
	return Config{
		TLBEntries:  256,
		L1Size:      16 << 10,
		L1Ways:      8,
		L2Size:      8 << 20,
		L2Ways:      8,
		L1Latency:   2,
		L2Latency:   18,
		MemLatency:  200,
		TLBMissCost: 60,
	}
}

// Hierarchy stacks TLB → L1 → L2 → DRAM over a backing Memory and
// charges cycle costs per access.
type Hierarchy struct {
	cfg Config
	ram *Memory
	tlb *TLB
	l1  *Cache
	l2  *Cache

	accesses uint64
	cycles   uint64

	lastMissLine uint64 // stream-prefetcher state
	prefetches   uint64
}

// NewHierarchy builds a memory hierarchy with the given configuration.
func NewHierarchy(cfg Config) (*Hierarchy, error) {
	l1, err := NewCache("L1", cfg.L1Size, cfg.L1Ways)
	if err != nil {
		return nil, err
	}
	l2, err := NewCache("L2", cfg.L2Size, cfg.L2Ways)
	if err != nil {
		return nil, err
	}
	return &Hierarchy{
		cfg: cfg,
		ram: NewMemory(),
		tlb: NewTLB(cfg.TLBEntries),
		l1:  l1,
		l2:  l2,
	}, nil
}

// MustHierarchy is NewHierarchy for static configurations.
func MustHierarchy(cfg Config) *Hierarchy {
	h, err := NewHierarchy(cfg)
	if err != nil {
		panic(err)
	}
	return h
}

// RAM exposes the backing memory for functional reads and writes that
// should not perturb timing state (e.g. program loading).
func (h *Hierarchy) RAM() *Memory { return h.ram }

// TLB exposes the translation buffer (for statistics).
func (h *Hierarchy) TLB() *TLB { return h.tlb }

// L1 exposes the first-level cache (for statistics).
func (h *Hierarchy) L1() *Cache { return h.l1 }

// L2 exposes the second-level cache (for statistics).
func (h *Hierarchy) L2() *Cache { return h.l2 }

// Touch charges the cycle cost of a size-byte access at addr without
// moving data, updating TLB and cache state. It returns the cost.
func (h *Hierarchy) Touch(addr uint64, size int, write bool) uint64 {
	if size <= 0 {
		return 0
	}
	h.accesses++
	cost := h.cfg.L1Latency
	if !h.tlb.Lookup(addr) {
		cost += h.cfg.TLBMissCost
	}
	if !h.l1.Access(addr, size, write) {
		cost += h.cfg.L2Latency
		if !h.l2.Access(addr, size, write) {
			cost += h.cfg.MemLatency
		}
		if h.cfg.Prefetch {
			line := addr / LineSize
			if line == h.lastMissLine+1 {
				// Detected a stream: pull the next line into both
				// levels ahead of the access that would miss on it.
				h.l1.Access((line+1)*LineSize, 1, false)
				h.l2.Access((line+1)*LineSize, 1, false)
				h.prefetches++
			}
			h.lastMissLine = line
		}
	}
	h.cycles += cost
	return cost
}

// TouchRange charges the cycle cost of n size-byte accesses at
// addr, addr+step, ..., addr+(n-1)·step, exactly as n successive Touch
// calls would (same TLB, cache, and prefetcher transitions). When costs
// is non-nil it must have length ≥ n and receives the per-access cost;
// the total is returned either way. Batched transfer paths use it to
// price a whole element stream in one call.
func (h *Hierarchy) TouchRange(addr uint64, size int, step uint64, n int, write bool, costs []uint64) uint64 {
	if size <= 0 || n <= 0 {
		return 0
	}
	var total uint64
	for i := 0; i < n; i++ {
		c := h.Touch(addr+uint64(i)*step, size, write)
		if costs != nil {
			costs[i] = c
		}
		total += c
	}
	return total
}

// Prefetches returns the number of lines brought in by the stream
// prefetcher.
func (h *Hierarchy) Prefetches() uint64 { return h.prefetches }

// Read performs a timed read of size bytes at addr.
func (h *Hierarchy) Read(addr uint64, size int) (value uint64, cost uint64) {
	cost = h.Touch(addr, size, false)
	return h.ram.ReadUint(addr, size), cost
}

// Write performs a timed write of size bytes at addr.
func (h *Hierarchy) Write(addr uint64, size int, v uint64) (cost uint64) {
	cost = h.Touch(addr, size, true)
	h.ram.WriteUint(addr, size, v)
	return cost
}

// Accesses returns the number of timed accesses issued.
func (h *Hierarchy) Accesses() uint64 { return h.accesses }

// Cycles returns the cumulative cycle cost of all timed accesses.
func (h *Hierarchy) Cycles() uint64 { return h.cycles }

// Config returns the hierarchy's configuration.
func (h *Hierarchy) Config() Config { return h.cfg }
