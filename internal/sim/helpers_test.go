package sim

import (
	"strings"
	"testing"

	"xbgas/internal/asm"
)

func mustProg(t *testing.T, src string) *asm.Program {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// runSPMDText assembles src and runs it on every node of m.
func runSPMDText(m *Machine, src string) ([]SPMDResult, error) {
	p, err := asm.Assemble(src)
	if err != nil {
		return nil, err
	}
	return m.RunSPMD(p, 1_000_000)
}

// loadAndRunErr runs a program expecting a fault; it returns the core
// if Run failed, nil otherwise.
func loadAndRunErr(t *testing.T, m *Machine, node int, src string) *Core {
	t.Helper()
	p := mustProg(t, src)
	c, err := m.Load(node, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(1000); err != nil {
		return c
	}
	return nil
}

type traceBuf struct{ strings.Builder }

func containsStr(s, sub string) bool { return strings.Contains(s, sub) }
