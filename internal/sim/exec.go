package sim

import (
	"fmt"
	"math/bits"

	"xbgas/internal/isa"
)

// Step fetches, decodes and executes one instruction.
func (c *Core) Step() error {
	if c.Halted {
		return ErrHalted
	}
	node := c.Node()
	word := uint32(node.LockedRead(c.PC, 4))
	inst, err := isa.Decode(word)
	if err != nil {
		return c.fault(err)
	}

	nextPC := c.PC + isa.InstBytes
	cost := uint64(costBase)

	rs1 := c.X[inst.Rs1]
	rs2 := c.X[inst.Rs2]

	switch inst.Op {
	case isa.LUI:
		c.setX(inst.Rd, uint64(int64(int32(uint32(inst.Imm)<<12))))
	case isa.AUIPC:
		c.setX(inst.Rd, c.PC+uint64(int64(int32(uint32(inst.Imm)<<12))))

	case isa.JAL:
		c.setX(inst.Rd, nextPC)
		nextPC = c.PC + uint64(inst.Imm)
		cost += costBranchTaken
	case isa.JALR:
		target := (rs1 + uint64(inst.Imm)) &^ 1
		c.setX(inst.Rd, nextPC)
		nextPC = target
		cost += costBranchTaken

	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		taken := false
		switch inst.Op {
		case isa.BEQ:
			taken = rs1 == rs2
		case isa.BNE:
			taken = rs1 != rs2
		case isa.BLT:
			taken = int64(rs1) < int64(rs2)
		case isa.BGE:
			taken = int64(rs1) >= int64(rs2)
		case isa.BLTU:
			taken = rs1 < rs2
		case isa.BGEU:
			taken = rs1 >= rs2
		}
		if taken {
			nextPC = c.PC + uint64(inst.Imm)
			cost += costBranchTaken
		}

	case isa.LB, isa.LH, isa.LW, isa.LD, isa.LBU, isa.LHU, isa.LWU:
		addr := rs1 + uint64(inst.Imm)
		v, memCost := c.localLoad(addr, inst.Op)
		cost += memCost
		c.setX(inst.Rd, v)

	case isa.SB, isa.SH, isa.SW, isa.SD:
		addr := rs1 + uint64(inst.Imm)
		cost += c.localStore(addr, inst.Op, rs2)

	case isa.ADDI:
		c.setX(inst.Rd, rs1+uint64(inst.Imm))
	case isa.SLTI:
		c.setX(inst.Rd, boolToU64(int64(rs1) < inst.Imm))
	case isa.SLTIU:
		c.setX(inst.Rd, boolToU64(rs1 < uint64(inst.Imm)))
	case isa.XORI:
		c.setX(inst.Rd, rs1^uint64(inst.Imm))
	case isa.ORI:
		c.setX(inst.Rd, rs1|uint64(inst.Imm))
	case isa.ANDI:
		c.setX(inst.Rd, rs1&uint64(inst.Imm))
	case isa.SLLI:
		c.setX(inst.Rd, rs1<<uint(inst.Imm))
	case isa.SRLI:
		c.setX(inst.Rd, rs1>>uint(inst.Imm))
	case isa.SRAI:
		c.setX(inst.Rd, uint64(int64(rs1)>>uint(inst.Imm)))
	case isa.ADDIW:
		c.setX(inst.Rd, sext32(uint32(rs1)+uint32(inst.Imm)))
	case isa.SLLIW:
		c.setX(inst.Rd, sext32(uint32(rs1)<<uint(inst.Imm)))
	case isa.SRLIW:
		c.setX(inst.Rd, sext32(uint32(rs1)>>uint(inst.Imm)))
	case isa.SRAIW:
		c.setX(inst.Rd, uint64(int64(int32(rs1)>>uint(inst.Imm))))

	case isa.ADD:
		c.setX(inst.Rd, rs1+rs2)
	case isa.SUB:
		c.setX(inst.Rd, rs1-rs2)
	case isa.SLL:
		c.setX(inst.Rd, rs1<<(rs2&63))
	case isa.SLT:
		c.setX(inst.Rd, boolToU64(int64(rs1) < int64(rs2)))
	case isa.SLTU:
		c.setX(inst.Rd, boolToU64(rs1 < rs2))
	case isa.XOR:
		c.setX(inst.Rd, rs1^rs2)
	case isa.SRL:
		c.setX(inst.Rd, rs1>>(rs2&63))
	case isa.SRA:
		c.setX(inst.Rd, uint64(int64(rs1)>>(rs2&63)))
	case isa.OR:
		c.setX(inst.Rd, rs1|rs2)
	case isa.AND:
		c.setX(inst.Rd, rs1&rs2)
	case isa.ADDW:
		c.setX(inst.Rd, sext32(uint32(rs1)+uint32(rs2)))
	case isa.SUBW:
		c.setX(inst.Rd, sext32(uint32(rs1)-uint32(rs2)))
	case isa.SLLW:
		c.setX(inst.Rd, sext32(uint32(rs1)<<(rs2&31)))
	case isa.SRLW:
		c.setX(inst.Rd, sext32(uint32(rs1)>>(rs2&31)))
	case isa.SRAW:
		c.setX(inst.Rd, uint64(int64(int32(rs1)>>(rs2&31))))

	case isa.MUL:
		cost += costMul
		c.setX(inst.Rd, rs1*rs2)
	case isa.MULH:
		cost += costMul
		hi, _ := bits.Mul64(rs1, rs2)
		// Signed correction of the unsigned high product.
		if int64(rs1) < 0 {
			hi -= rs2
		}
		if int64(rs2) < 0 {
			hi -= rs1
		}
		c.setX(inst.Rd, hi)
	case isa.MULHU:
		cost += costMul
		hi, _ := bits.Mul64(rs1, rs2)
		c.setX(inst.Rd, hi)
	case isa.DIV:
		cost += costDiv
		c.setX(inst.Rd, divS(rs1, rs2))
	case isa.DIVU:
		cost += costDiv
		c.setX(inst.Rd, divU(rs1, rs2))
	case isa.REM:
		cost += costDiv
		c.setX(inst.Rd, remS(rs1, rs2))
	case isa.REMU:
		cost += costDiv
		c.setX(inst.Rd, remU(rs1, rs2))
	case isa.MULW:
		cost += costMul
		c.setX(inst.Rd, sext32(uint32(rs1)*uint32(rs2)))
	case isa.DIVW:
		cost += costDiv
		c.setX(inst.Rd, sext32(uint32(divS32(int32(rs1), int32(rs2)))))
	case isa.DIVUW:
		cost += costDiv
		c.setX(inst.Rd, sext32(divU32(uint32(rs1), uint32(rs2))))
	case isa.REMW:
		cost += costDiv
		c.setX(inst.Rd, sext32(uint32(remS32(int32(rs1), int32(rs2)))))
	case isa.REMUW:
		cost += costDiv
		c.setX(inst.Rd, sext32(remU32(uint32(rs1), uint32(rs2))))

	case isa.FENCE:
		// The functional model is sequentially consistent per core;
		// fence is a timing no-op.

	case isa.ECALL:
		handler := c.Ecall
		if handler == nil {
			handler = defaultEcall
		}
		if err := handler(c); err != nil {
			return c.fault(err)
		}

	case isa.EBREAK:
		c.Halted = true

	// --- xBGAS base-class loads: object ID from the paired e register.
	case isa.ELB, isa.ELH, isa.ELW, isa.ELD, isa.ELBU, isa.ELHU, isa.ELWU:
		objID := c.E[inst.Rs1.Pair()]
		addr := rs1 + uint64(inst.Imm)
		v, memCost, err := c.extendedLoad(objID, addr, inst.Op)
		if err != nil {
			return c.fault(err)
		}
		cost += memCost
		c.setX(inst.Rd, v)

	// --- xBGAS base-class stores.
	case isa.ESB, isa.ESH, isa.ESW, isa.ESD:
		objID := c.E[inst.Rs1.Pair()]
		addr := rs1 + uint64(inst.Imm)
		memCost, err := c.extendedStore(objID, addr, inst.Op, rs2)
		if err != nil {
			return c.fault(err)
		}
		cost += memCost

	// --- xBGAS raw-class loads: erld rd, rs1, ext2.
	case isa.ERLB, isa.ERLH, isa.ERLW, isa.ERLD, isa.ERLBU, isa.ERLHU, isa.ERLWU:
		objID := c.E[inst.ExtRs2()]
		v, memCost, err := c.extendedLoad(objID, rs1, inst.Op)
		if err != nil {
			return c.fault(err)
		}
		cost += memCost
		c.setX(inst.Rd, v)

	// --- xBGAS raw-class stores: ersd rs1, rs2, ext3.
	case isa.ERSB, isa.ERSH, isa.ERSW, isa.ERSD:
		objID := c.E[inst.ExtRd()]
		memCost, err := c.extendedStore(objID, rs2, inst.Op, rs1)
		if err != nil {
			return c.fault(err)
		}
		cost += memCost

	// --- xBGAS extended-register spill/fill (local memory only).
	case isa.ELE: // e[ext1] = mem64[rs1+imm]
		addr := rs1 + uint64(inst.Imm)
		memCost := node.Hier.Touch(addr, 8, false)
		c.E[inst.ExtRd()] = node.LockedRead(addr, 8)
		cost += memCost
	case isa.ESE: // mem64[rs1+imm] = e[ext1]
		addr := rs1 + uint64(inst.Imm)
		memCost := node.Hier.Touch(addr, 8, true)
		node.LockedWrite(addr, 8, c.E[inst.ExtRs2()])
		cost += memCost

	// --- xBGAS address management.
	case isa.EADDI: // x[rd] = e[ext1] + imm
		c.setX(inst.Rd, c.E[inst.ExtRs1()]+uint64(inst.Imm))
	case isa.EADDIE: // e[ext1] = x[rs1] + imm
		c.E[inst.ExtRd()] = rs1 + uint64(inst.Imm)
	case isa.EADDIX: // e[ext1] = e[ext2] + imm
		c.E[inst.ExtRd()] = c.E[inst.ExtRs1()] + uint64(inst.Imm)

	default:
		return c.fault(fmt.Errorf("unimplemented op %s", inst.Op))
	}

	prevPC := c.PC
	c.PC = nextPC
	c.Cycles += cost
	c.Instret++
	if c.trace != nil {
		c.trace(c, prevPC, inst)
	}
	return nil
}

// localLoad performs a timed load from the core's own node.
func (c *Core) localLoad(addr uint64, op isa.Op) (uint64, uint64) {
	width := op.MemWidth()
	node := c.Node()
	cost := node.Hier.Touch(addr, width, false)
	raw := node.LockedRead(addr, width)
	return extendLoad(raw, op), cost
}

// localStore performs a timed store to the core's own node.
func (c *Core) localStore(addr uint64, op isa.Op, v uint64) uint64 {
	width := op.MemWidth()
	node := c.Node()
	cost := node.Hier.Touch(addr, width, true)
	node.LockedWrite(addr, width, v)
	return cost
}

// extendedLoad implements the xBGAS load semantics of paper §3.2: an
// object ID of zero performs a local access; otherwise the OLB
// translates the ID to a node and the value is fetched remotely. The
// returned cost covers the request/response round trip on the fabric.
func (c *Core) extendedLoad(objID uint64, addr uint64, op isa.Op) (uint64, uint64, error) {
	if objID == 0 {
		v, cost := c.localLoad(addr, op)
		return v, cost, nil
	}
	entry, hit, err := c.Node().OLB.Translate(objID)
	if err != nil {
		return 0, 0, err
	}
	width := op.MemWidth()
	var cost uint64
	if !hit {
		cost += costOLBMiss
	}
	// Request (address packet) out, response (data) back.
	now := c.Cycles + cost
	t1, err := c.m.Fabric.Send(c.node, entry.Node, 8, now)
	if err != nil {
		return 0, 0, err
	}
	t2, err := c.m.Fabric.Send(entry.Node, c.node, width, t1)
	if err != nil {
		return 0, 0, err
	}
	cost += t2 - now
	raw := c.m.Nodes[entry.Node].LockedRead(entry.Base+addr, width)
	c.RemoteLoads++
	if c.obsTrack != nil || c.obsMet != nil {
		c.obsRemote(false, cost, entry.Node, width)
	}
	return extendLoad(raw, op), cost, nil
}

// extendedStore implements the xBGAS store semantics: local when the
// object ID is zero, otherwise a one-way remote write. The blocking cost
// covers delivery at the target (the paper's runtime issues a barrier
// for completion ordering across PEs).
func (c *Core) extendedStore(objID uint64, addr uint64, op isa.Op, v uint64) (uint64, error) {
	if objID == 0 {
		return c.localStore(addr, op, v), nil
	}
	entry, hit, err := c.Node().OLB.Translate(objID)
	if err != nil {
		return 0, err
	}
	width := op.MemWidth()
	var cost uint64
	if !hit {
		cost += costOLBMiss
	}
	now := c.Cycles + cost
	t1, err := c.m.Fabric.Send(c.node, entry.Node, 8+width, now)
	if err != nil {
		return 0, err
	}
	cost += t1 - now
	c.m.Nodes[entry.Node].LockedWrite(entry.Base+addr, width, v)
	c.RemoteStores++
	if c.obsTrack != nil || c.obsMet != nil {
		c.obsRemote(true, cost, entry.Node, width)
	}
	return cost, nil
}

// extendLoad sign- or zero-extends a raw loaded value per the op.
func extendLoad(raw uint64, op isa.Op) uint64 {
	width := op.MemWidth()
	if width == 8 || op.MemUnsigned() {
		return raw
	}
	shift := uint(64 - 8*width)
	return uint64(int64(raw<<shift) >> shift)
}

func sext32(v uint32) uint64 { return uint64(int64(int32(v))) }

func boolToU64(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// RISC-V division semantics: divide-by-zero returns all ones (div) or the
// dividend (rem); signed overflow returns the dividend / zero remainder.
func divS(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	x, y := int64(a), int64(b)
	if x == -1<<63 && y == -1 {
		return a
	}
	return uint64(x / y)
}

func divU(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func remS(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	x, y := int64(a), int64(b)
	if x == -1<<63 && y == -1 {
		return 0
	}
	return uint64(x % y)
}

func remU(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func divS32(a, b int32) int32 {
	if b == 0 {
		return -1
	}
	if a == -1<<31 && b == -1 {
		return a
	}
	return a / b
}

func divU32(a, b uint32) uint32 {
	if b == 0 {
		return ^uint32(0)
	}
	return a / b
}

func remS32(a, b int32) int32 {
	if b == 0 {
		return a
	}
	if a == -1<<31 && b == -1 {
		return 0
	}
	return a % b
}

func remU32(a, b uint32) uint32 {
	if b == 0 {
		return a
	}
	return a % b
}
