package sim

import (
	"math/rand"
	"testing"

	"xbgas/internal/isa"
)

// refALU is an independent statement of the RV64 register-register and
// register-immediate semantics, written against the architecture
// manual rather than against exec.go, so that the two implementations
// check each other.
func refALU(op isa.Op, rs1, rs2 uint64, imm int64) (uint64, bool) {
	w32 := func(v uint64) uint64 { return uint64(int64(int32(uint32(v)))) }
	b2u := func(b bool) uint64 {
		if b {
			return 1
		}
		return 0
	}
	switch op {
	case isa.ADDI:
		return rs1 + uint64(imm), true
	case isa.SLTI:
		return b2u(int64(rs1) < imm), true
	case isa.SLTIU:
		return b2u(rs1 < uint64(imm)), true
	case isa.XORI:
		return rs1 ^ uint64(imm), true
	case isa.ORI:
		return rs1 | uint64(imm), true
	case isa.ANDI:
		return rs1 & uint64(imm), true
	case isa.SLLI:
		return rs1 << uint64(imm), true
	case isa.SRLI:
		return rs1 >> uint64(imm), true
	case isa.SRAI:
		return uint64(int64(rs1) >> uint64(imm)), true
	case isa.ADDIW:
		return w32(rs1 + uint64(imm)), true
	case isa.SLLIW:
		return w32(rs1 << uint64(imm)), true
	case isa.SRLIW:
		return w32(uint64(uint32(rs1) >> uint64(imm))), true
	case isa.SRAIW:
		return uint64(int64(int32(uint32(rs1)) >> uint64(imm))), true
	case isa.ADD:
		return rs1 + rs2, true
	case isa.SUB:
		return rs1 - rs2, true
	case isa.SLL:
		return rs1 << (rs2 & 63), true
	case isa.SLT:
		return b2u(int64(rs1) < int64(rs2)), true
	case isa.SLTU:
		return b2u(rs1 < rs2), true
	case isa.XOR:
		return rs1 ^ rs2, true
	case isa.SRL:
		return rs1 >> (rs2 & 63), true
	case isa.SRA:
		return uint64(int64(rs1) >> (rs2 & 63)), true
	case isa.OR:
		return rs1 | rs2, true
	case isa.AND:
		return rs1 & rs2, true
	case isa.ADDW:
		return w32(rs1 + rs2), true
	case isa.SUBW:
		return w32(rs1 - rs2), true
	case isa.SLLW:
		return w32(uint64(uint32(rs1) << (rs2 & 31))), true
	case isa.SRLW:
		return w32(uint64(uint32(rs1) >> (rs2 & 31))), true
	case isa.SRAW:
		return uint64(int64(int32(uint32(rs1)) >> (rs2 & 31))), true
	case isa.MUL:
		return rs1 * rs2, true
	case isa.DIV:
		if rs2 == 0 {
			return ^uint64(0), true
		}
		if int64(rs1) == -1<<63 && int64(rs2) == -1 {
			return rs1, true
		}
		return uint64(int64(rs1) / int64(rs2)), true
	case isa.DIVU:
		if rs2 == 0 {
			return ^uint64(0), true
		}
		return rs1 / rs2, true
	case isa.REM:
		if rs2 == 0 {
			return rs1, true
		}
		if int64(rs1) == -1<<63 && int64(rs2) == -1 {
			return 0, true
		}
		return uint64(int64(rs1) % int64(rs2)), true
	case isa.REMU:
		if rs2 == 0 {
			return rs1, true
		}
		return rs1 % rs2, true
	case isa.MULW:
		return w32(rs1 * rs2), true
	case isa.DIVW:
		a, b := int32(rs1), int32(rs2)
		if b == 0 {
			return w32(^uint64(0)), true
		}
		if a == -1<<31 && b == -1 {
			return w32(uint64(uint32(a))), true
		}
		return w32(uint64(uint32(a / b))), true
	case isa.DIVUW:
		a, b := uint32(rs1), uint32(rs2)
		if b == 0 {
			return w32(uint64(^uint32(0))), true
		}
		return w32(uint64(a / b)), true
	case isa.REMW:
		a, b := int32(rs1), int32(rs2)
		if b == 0 {
			return w32(uint64(uint32(a))), true
		}
		if a == -1<<31 && b == -1 {
			return 0, true
		}
		return w32(uint64(uint32(a % b))), true
	case isa.REMUW:
		a, b := uint32(rs1), uint32(rs2)
		if b == 0 {
			return w32(uint64(a)), true
		}
		return w32(uint64(a % b)), true
	}
	return 0, false
}

// execOne runs a single instruction on a fresh core with preset
// registers and returns rd's value.
func execOne(t *testing.T, m *Machine, inst isa.Inst, rs1, rs2 uint64) uint64 {
	t.Helper()
	c := NewCore(m, 0)
	c.PC = 0x1000
	c.X[inst.Rs1] = rs1
	c.X[inst.Rs2] = rs2
	if inst.Rs1 == isa.Zero {
		c.X[inst.Rs1] = 0
	}
	if inst.Rs2 == isa.Zero {
		c.X[inst.Rs2] = 0
	}
	m.Nodes[0].LockedWrite(0x1000, 4, uint64(inst.MustEncode()))
	if err := c.Step(); err != nil {
		t.Fatalf("%s: %v", inst.Disasm(), err)
	}
	return c.X[inst.Rd]
}

func TestALUSemanticsAgainstReference(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	rng := rand.New(rand.NewSource(99))
	aluOps := []isa.Op{
		isa.ADDI, isa.SLTI, isa.SLTIU, isa.XORI, isa.ORI, isa.ANDI,
		isa.SLLI, isa.SRLI, isa.SRAI, isa.ADDIW, isa.SLLIW, isa.SRLIW, isa.SRAIW,
		isa.ADD, isa.SUB, isa.SLL, isa.SLT, isa.SLTU, isa.XOR, isa.SRL,
		isa.SRA, isa.OR, isa.AND, isa.ADDW, isa.SUBW, isa.SLLW, isa.SRLW,
		isa.SRAW, isa.MUL, isa.DIV, isa.DIVU, isa.REM, isa.REMU,
		isa.MULW, isa.DIVW, isa.DIVUW, isa.REMW, isa.REMUW,
	}
	interesting := []uint64{
		0, 1, 2, 0x7FF, 0x800, ^uint64(0), 1 << 31, 1 << 63,
		uint64(1<<63 - 1), 0xFFFFFFFF, 0x80000000, 0x123456789ABCDEF0,
	}
	for _, op := range aluOps {
		format := op.Format()
		for trial := 0; trial < 120; trial++ {
			var rs1, rs2 uint64
			if trial < len(interesting)*len(interesting)/12 {
				rs1 = interesting[trial%len(interesting)]
				rs2 = interesting[(trial*7+3)%len(interesting)]
			} else {
				rs1, rs2 = rng.Uint64(), rng.Uint64()
			}
			inst := isa.Inst{Op: op, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2}
			var imm int64
			if format == isa.FormatI {
				switch op {
				case isa.SLLI, isa.SRLI, isa.SRAI:
					imm = rng.Int63n(64)
				case isa.SLLIW, isa.SRLIW, isa.SRAIW:
					imm = rng.Int63n(32)
				default:
					imm = rng.Int63n(4096) - 2048
				}
				inst.Imm = imm
				inst.Rs2 = 0
			}
			want, ok := refALU(op, rs1, rs2, imm)
			if !ok {
				t.Fatalf("reference missing op %s", op)
			}
			got := execOne(t, m, inst, rs1, rs2)
			if got != want {
				t.Fatalf("%s rs1=%#x rs2=%#x imm=%d: sim=%#x ref=%#x",
					op, rs1, rs2, imm, got, want)
			}
		}
	}
}

func TestLUIAUIPCSemantics(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	got := execOne(t, m, isa.Inst{Op: isa.LUI, Rd: isa.A0, Imm: 0xFFFFF}, 0, 0)
	minusPage := int64(-4096)
	if got != uint64(minusPage) {
		t.Errorf("lui 0xFFFFF = %#x, want sign-extended -4096", got)
	}
	got = execOne(t, m, isa.Inst{Op: isa.AUIPC, Rd: isa.A0, Imm: 1}, 0, 0)
	if got != 0x1000+4096 {
		t.Errorf("auipc 1 at pc 0x1000 = %#x", got)
	}
}

func TestSPMDBarrierAndRemoteExchange(t *testing.T) {
	// Every core writes its rank to the left neighbour's mailbox, waits
	// at the SPMD barrier, then reads its own mailbox: a full
	// assembly-level neighbour exchange.
	const n = 4
	m := MustMachine(DefaultConfig(n))
	src := `
		li   a7, 500
		ecall                 # a0 = my pe
		mv   s0, a0           # s0 = rank
		li   a7, 501
		ecall                 # a0 = num pes
		mv   s1, a0

		# object ID of left neighbour = ((rank+n-1) mod n) + 1
		add  t0, s0, s1
		addi t0, t0, -1
		rem  t0, t0, s1
		addi t0, t0, 1
		eaddie e30, t0, 0
		li   t5, 0x8000
		esd  s0, 0(t5)        # deposit my rank remotely

		li   a7, 503
		ecall                 # SPMD barrier

		li   t1, 0x8000       # read my own mailbox locally
		ld   a0, 0(t1)
		li   a7, 93
		ecall
	`
	results, err := runSPMDText(m, src)
	if err != nil {
		t.Fatal(err)
	}
	for rank, r := range results {
		want := uint64((rank + 1) % n) // right neighbour wrote its rank
		if r.Core.ExitCode != want {
			t.Errorf("core %d mailbox = %d, want %d", rank, r.Core.ExitCode, want)
		}
	}
}

func TestSPMDBarrierAlignsClocks(t *testing.T) {
	const n = 3
	m := MustMachine(DefaultConfig(n))
	src := `
		li   a7, 500
		ecall
		# Skew: rank r spins r*100 iterations.
		li   t0, 100
		mul  t0, t0, a0
	spin:
		beqz t0, go
		addi t0, t0, -1
		j    spin
	go:
		li   a7, 503
		ecall                 # barrier aligns virtual clocks
		li   a7, 502
		ecall                 # a0 = cycles
		li   a7, 93
		ecall
	`
	results, err := runSPMDText(m, src)
	if err != nil {
		t.Fatal(err)
	}
	// Post-barrier cycle counts must all be >= the slowest arrival.
	var max uint64
	for _, r := range results {
		if r.Core.ExitCode > max {
			max = r.Core.ExitCode
		}
	}
	for rank, r := range results {
		if r.Core.ExitCode != max {
			t.Errorf("core %d released at %d, slowest was %d", rank, r.Core.ExitCode, max)
		}
	}
}

func TestSPMDFaultBreaksBarrier(t *testing.T) {
	const n = 2
	m := MustMachine(DefaultConfig(n))
	src := `
		li   a7, 500
		ecall
		bnez a0, wait
		li   a7, 9999      # core 0 faults on an unknown ecall
		ecall
	wait:
		li   a7, 503
		ecall              # would deadlock without barrier abort
		li   a7, 93
		ecall
	`
	_, err := runSPMDText(m, src)
	if err == nil {
		t.Fatal("expected SPMD run to fail")
	}
}

func TestBarrierEcallOutsideSPMDFaults(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRunErr(t, m, 0, `
		li a7, 503
		ecall
	`)
	if c == nil {
		t.Fatal("expected fault")
	}
}

func TestTraceHook(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	var pcs []uint64
	var ops []isa.Op
	p := mustProg(t, `
		addi a0, zero, 1
		addi a0, a0, 1
		li   a7, 93
		ecall
	`)
	c, err := m.Load(0, p)
	if err != nil {
		t.Fatal(err)
	}
	c.SetTrace(func(c *Core, pc uint64, inst isa.Inst) {
		pcs = append(pcs, pc)
		ops = append(ops, inst.Op)
	})
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if len(pcs) != 4 {
		t.Fatalf("traced %d instructions, want 4", len(pcs))
	}
	if pcs[0] != p.Base || pcs[1] != p.Base+4 {
		t.Errorf("trace pcs = %#x", pcs)
	}
	if ops[3] != isa.ECALL {
		t.Errorf("last op = %s", ops[3])
	}
}

func TestWriterTrace(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	p := mustProg(t, "li a7, 93\necall")
	c, _ := m.Load(0, p)
	var sb traceBuf
	c.SetTrace(NewWriterTrace(&sb))
	if err := c.Run(10); err != nil {
		t.Fatal(err)
	}
	if sb.String() == "" || !containsStr(sb.String(), "ecall") {
		t.Errorf("trace output: %q", sb.String())
	}
}
