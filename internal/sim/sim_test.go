package sim

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"xbgas/internal/asm"
	"xbgas/internal/isa"
)

func loadAndRun(t *testing.T, m *Machine, node int, src string) *Core {
	t.Helper()
	p, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	c, err := m.Load(node, p)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if err := c.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return c
}

func TestSumLoop(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li a0, 0        # acc
		li a1, 10       # i
	loop:
		add a0, a0, a1
		addi a1, a1, -1
		bnez a1, loop
		li a7, 93
		ecall
	`)
	if c.ExitCode != 55 {
		t.Errorf("exit code = %d, want 55", c.ExitCode)
	}
	if c.Instret == 0 || c.Cycles < c.Instret {
		t.Errorf("counters: instret=%d cycles=%d", c.Instret, c.Cycles)
	}
}

func TestFunctionCallAndStack(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li   a0, 10
		jal  fib
		li   a7, 93
		ecall

	# naive recursive fibonacci
	fib:
		li   t0, 2
		blt  a0, t0, fib_base
		addi sp, sp, -24
		sd   ra, 0(sp)
		sd   a0, 8(sp)
		addi a0, a0, -1
		jal  fib
		sd   a0, 16(sp)
		ld   a0, 8(sp)
		addi a0, a0, -2
		jal  fib
		ld   t1, 16(sp)
		add  a0, a0, t1
		ld   ra, 0(sp)
		addi sp, sp, 24
		ret
	fib_base:
		ret
	`)
	if c.ExitCode != 55 { // fib(10)
		t.Errorf("fib(10) = %d, want 55", c.ExitCode)
	}
}

func TestLoadStoreWidths(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li  t0, 0x100000
		li  t1, -2          # 0xFFFF...FE
		sd  t1, 0(t0)
		lb  a0, 0(t0)       # sign-extended byte: -2
		lbu a1, 0(t0)       # zero-extended: 0xFE
		lhu a2, 0(t0)       # 0xFFFE
		lwu a3, 0(t0)       # 0xFFFFFFFE
		add a0, a0, a1      # -2 + 254 = 252
		li  a7, 93
		ecall
	`)
	if c.ExitCode != 252 {
		t.Errorf("exit = %d, want 252", c.ExitCode)
	}
}

func TestEcallWriteOutput(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		j start
	msg:
		.word 0x6C6C6548   # "Hell"
		.word 0x000A6F     # "o\n"
	start:
		la a1, msg
		li a0, 1
		li a2, 6
		li a7, 64
		ecall
		li a7, 93
		ecall
	`)
	if got := c.Output.String(); got != "Hello\n" {
		t.Errorf("output = %q", got)
	}
}

func TestMyPEAndNumPEs(t *testing.T) {
	m := MustMachine(DefaultConfig(4))
	c := loadAndRun(t, m, 2, `
		li a7, 500
		ecall          # a0 = my pe
		mv t0, a0
		li a7, 501
		ecall          # a0 = num pes
		slli a0, a0, 8
		or  a0, a0, t0
		li a7, 93
		ecall
	`)
	if c.ExitCode != (4<<8)|2 {
		t.Errorf("exit = %#x, want %#x", c.ExitCode, (4<<8)|2)
	}
}

func TestRemoteStoreAndLoad(t *testing.T) {
	m := MustMachine(DefaultConfig(2))
	// Node 0 stores 0x2A to node 1 (object ID 2) at 0x5000, reads it back.
	c := loadAndRun(t, m, 0, `
		li     t0, 0x5000
		li     t1, 42
		eaddie e5, t2, 2     # t2==0: e5 = object ID 2 (node 1)
		mv     t5, t0        # base register x30 pairs with e30
		eaddie e30, t2, 2
		esd    t1, 0(t5)     # base-class store via (e30:t5)
		eld    a0, 0(t5)     # base-class load back
		li     a7, 93
		ecall
	`)
	if c.ExitCode != 42 {
		t.Errorf("round trip = %d, want 42", c.ExitCode)
	}
	// The value must physically live on node 1, not node 0.
	if got := m.Nodes[1].LockedRead(0x5000, 8); got != 42 {
		t.Errorf("node 1 memory = %d, want 42", got)
	}
	if got := m.Nodes[0].LockedRead(0x5000, 8); got == 42 {
		t.Error("value leaked into node 0's local memory")
	}
	if c.RemoteStores != 1 || c.RemoteLoads != 1 {
		t.Errorf("remote ops: loads=%d stores=%d", c.RemoteLoads, c.RemoteStores)
	}
}

func TestRawClassRemoteOps(t *testing.T) {
	m := MustMachine(DefaultConfig(2))
	c := loadAndRun(t, m, 0, `
		li     t0, 0x6000
		li     t1, 1234
		li     t3, 2
		eaddie e7, t3, 0     # e7 = 2 (node 1)
		ersd   t1, t0, e7    # raw store: value t1 at [t0] on node of e7
		erld   a0, t0, e7    # raw load back
		li     a7, 93
		ecall
	`)
	if c.ExitCode != 1234 {
		t.Errorf("raw round trip = %d, want 1234", c.ExitCode)
	}
	if got := m.Nodes[1].LockedRead(0x6000, 8); got != 1234 {
		t.Errorf("node 1 memory = %d", got)
	}
}

func TestObjectIDZeroIsLocal(t *testing.T) {
	// Paper §3.2: "If the value is equal to 0 ... a local memory
	// operation is performed".
	m := MustMachine(DefaultConfig(2))
	c := loadAndRun(t, m, 0, `
		li   t0, 0x7000
		li   t1, 7
		esd  t1, 0(t0)     # e5 (pair of t0=x5) is 0 -> local store
		eld  a0, 0(t0)
		li   a7, 93
		ecall
	`)
	if c.ExitCode != 7 {
		t.Errorf("local extended access = %d, want 7", c.ExitCode)
	}
	if got := m.Nodes[0].LockedRead(0x7000, 8); got != 7 {
		t.Errorf("node 0 memory = %d, want 7", got)
	}
	if c.RemoteLoads != 0 || c.RemoteStores != 0 {
		t.Error("object ID 0 must not count as remote traffic")
	}
}

func TestUnmappedObjectIDFaults(t *testing.T) {
	m := MustMachine(DefaultConfig(2))
	p, err := asm.Assemble(`
		li     t1, 99
		eaddie e30, t1, 0   # e30 = 99: unmapped object ID
		li     t5, 0x100
		eld    a0, 0(t5)
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Load(0, p)
	if err != nil {
		t.Fatal(err)
	}
	err = c.Run(100)
	var fault *Fault
	if !errors.As(err, &fault) {
		t.Fatalf("expected *Fault, got %v", err)
	}
	if !strings.Contains(fault.Error(), "unmapped object ID") {
		t.Errorf("fault = %v", fault)
	}
}

func TestRemoteCostExceedsLocal(t *testing.T) {
	m := MustMachine(DefaultConfig(2))
	local := loadAndRun(t, m, 0, `
		li  t0, 0x8000
		ld  a0, 0(t0)
		li  a7, 93
		ecall
	`)
	m2 := MustMachine(DefaultConfig(2))
	remote := loadAndRun(t, m2, 0, `
		li     t0, 0x8000
		li     t1, 2
		eaddie e30, t1, 0
		mv     t5, t0
		eld    a0, 0(t5)
		li     a7, 93
		ecall
	`)
	if remote.Cycles <= local.Cycles {
		t.Errorf("remote load (%d cyc) must cost more than local (%d cyc)",
			remote.Cycles, local.Cycles)
	}
}

func TestDivisionEdgeSemantics(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li   a1, 7
		li   a2, 0
		div  a3, a1, a2       # -> -1
		rem  a4, a1, a2       # -> 7
		addi a3, a3, 1        # 0
		add  a0, a3, a4       # 7
		li   a7, 93
		ecall
	`)
	if c.ExitCode != 7 {
		t.Errorf("div/rem by zero semantics: exit = %d, want 7", c.ExitCode)
	}
}

func TestMulhSigns(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li    a1, -1
		li    a2, -1
		mulh  a3, a1, a2     # signed high of (-1)*(-1)=1 -> 0
		mulhu a4, a1, a2     # unsigned high of (2^64-1)^2 -> 2^64-2
		seqz  a3, a3         # 1 if mulh correct
		addi  a4, a4, 2      # wraps to 0 if mulhu correct
		seqz  a4, a4         # 1 if mulhu correct
		add   a0, a3, a4     # 2 when both are right
		li    a7, 93
		ecall
	`)
	if c.ExitCode != 2 {
		t.Errorf("mulh semantics: exit = %d, want 2", c.ExitCode)
	}
}

func TestInstructionBudget(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	p, _ := asm.Assemble("loop: j loop")
	c, _ := m.Load(0, p)
	if err := c.Run(100); err == nil {
		t.Fatal("runaway loop must exhaust the instruction budget")
	}
	if c.Instret != 100 {
		t.Errorf("instret = %d, want 100", c.Instret)
	}
}

func TestZeroRegisterIsPinned(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		addi zero, zero, 5
		mv   a0, zero
		li   a7, 93
		ecall
	`)
	if c.ExitCode != 0 {
		t.Errorf("x0 was written: exit = %d", c.ExitCode)
	}
}

func TestConcurrentCoresRemoteTraffic(t *testing.T) {
	// Every node hammers its right neighbour with remote stores while
	// being hammered itself; run under -race in CI.
	const n = 4
	m := MustMachine(DefaultConfig(n))
	var wg sync.WaitGroup
	errs := make([]error, n)
	for node := 0; node < n; node++ {
		src := `
			li     t0, 0x9000
			li     t1, ` + itoa(ObjectID((node+1)%n)) + `
			eaddie e30, t1, 0
			li     t2, 100       # iterations
			mv     t5, t0
		loop:
			esd    t2, 0(t5)
			addi   t5, t5, 8
			addi   t2, t2, -1
			bnez   t2, loop
			li     a7, 93
			ecall
		`
		p, err := asm.Assemble(src)
		if err != nil {
			t.Fatal(err)
		}
		c, err := m.Load(node, p)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func(idx int, core *Core) {
			defer wg.Done()
			errs[idx] = core.Run(1_000_000)
		}(node, c)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("node %d: %v", i, err)
		}
	}
	// Each neighbour received 100 stores; spot check the last value.
	for node := 0; node < n; node++ {
		if got := m.Nodes[node].LockedRead(0x9000, 8); got != 100 {
			t.Errorf("node %d first slot = %d, want 100", node, got)
		}
	}
}

func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func TestMachineValidation(t *testing.T) {
	if _, err := NewMachine(Config{Nodes: 0}); err == nil {
		t.Error("zero nodes must fail")
	}
	cfg := DefaultConfig(4)
	cfg.Topology = nil // must default to fully connected
	if _, err := NewMachine(cfg); err != nil {
		t.Errorf("nil topology should default: %v", err)
	}
	m := MustMachine(DefaultConfig(2))
	p, _ := asm.Assemble("nop")
	if _, err := m.Load(5, p); err == nil {
		t.Error("load on out-of-range node must fail")
	}
}

func TestEaddiReadsExtendedRegister(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	c := loadAndRun(t, m, 0, `
		li     t0, 40
		eaddie e9, t0, 0     # e9 = 40
		eaddix e9, e9, 2     # e9 = 42
		eaddi  a0, e9, 0     # a0 = e9
		li     a7, 93
		ecall
	`)
	if c.ExitCode != 42 {
		t.Errorf("address management chain = %d, want 42", c.ExitCode)
	}
}

func TestLoadUsesStartSymbol(t *testing.T) {
	m := MustMachine(DefaultConfig(1))
	p, err := asm.Assemble(`
	helper:
		li a0, 1
		li a7, 93
		ecall
	_start:
		li a0, 9
		li a7, 93
		ecall
	`)
	if err != nil {
		t.Fatal(err)
	}
	c, err := m.Load(0, p)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Run(100); err != nil {
		t.Fatal(err)
	}
	if c.ExitCode != 9 {
		t.Errorf("entry at _start: exit = %d, want 9", c.ExitCode)
	}
}

func TestDisasmOfLoadedProgramMentionsXBGAS(t *testing.T) {
	p, err := asm.Assemble("eaddie e1, a0, 0\n eld a0, 0(t5)")
	if err != nil {
		t.Fatal(err)
	}
	d := p.Disasm()
	if !strings.Contains(d, "eaddie") || !strings.Contains(d, "eld") {
		t.Errorf("disasm listing: %s", d)
	}
	_ = isa.ELD // keep the import honest
}

func TestExtendedRegisterSpillFill(t *testing.T) {
	// ele/ese move extended registers through local memory: spill e7,
	// clobber it, fill it back, then use it for a remote load.
	m := MustMachine(DefaultConfig(2))
	m.Nodes[1].LockedWrite(0x4000, 8, 4242)
	c := loadAndRun(t, m, 0, `
		li     t0, 2
		eaddie e7, t0, 0      # e7 = object ID 2 (node 1)
		li     t1, 0x2000
		ese    e7, 0(t1)      # spill e7
		eaddie e7, zero, 0    # clobber: e7 = 0
		ele    e7, 0(t1)      # fill it back
		li     t2, 0x4000
		erld   a0, t2, e7     # remote load proves e7 was restored
		li     a7, 93
		ecall
	`)
	if c.ExitCode != 4242 {
		t.Errorf("spill/fill round trip = %d, want 4242", c.ExitCode)
	}
	if got := m.Nodes[0].LockedRead(0x2000, 8); got != 2 {
		t.Errorf("spilled object ID = %d, want 2", got)
	}
}
