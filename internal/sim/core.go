package sim

import (
	"bytes"
	"errors"
	"fmt"

	"xbgas/internal/isa"
	"xbgas/internal/obs"
)

// Architectural cost-model constants (cycles). The base cost applies to
// every instruction; the others are additive.
const (
	costBase        = 1
	costMul         = 3
	costDiv         = 20
	costBranchTaken = 1
	costOLBMiss     = 20 // translation-cache fill on a remote access
)

// Default stack placement for cores created by Machine.Load.
const (
	// StackTop is the initial stack pointer: the stack grows down from
	// here, well clear of the default code base.
	StackTop uint64 = 0x0040_0000
)

// ErrHalted is returned by Step and Run once the core has exited.
var ErrHalted = errors.New("sim: core halted")

// Fault is an execution fault: a decode error, an unmapped object ID, or
// an ecall failure, annotated with the faulting pc.
type Fault struct {
	PC     uint64
	Node   int
	Reason error
}

func (f *Fault) Error() string {
	return fmt.Sprintf("sim: node %d pc=%#x: %v", f.Node, f.PC, f.Reason)
}

func (f *Fault) Unwrap() error { return f.Reason }

// Core is one hardware thread's architectural state. A Core is driven by
// a single goroutine; remote memory it touches is synchronised by the
// owning Node's lock.
type Core struct {
	m    *Machine
	node int

	X  [isa.NumRegs]uint64 // base integer registers, X[0] pinned to 0
	E  [isa.NumRegs]uint64 // xBGAS extended registers
	PC uint64

	Cycles  uint64 // simulated time
	Instret uint64 // retired instruction count

	Halted   bool
	ExitCode uint64

	// Output accumulates bytes written by the write ecall.
	Output bytes.Buffer

	// Ecall, when non-nil, replaces the default environment-call
	// handler. The handler may halt the core or write registers.
	Ecall func(*Core) error

	// Remote-access statistics.
	RemoteLoads  uint64
	RemoteStores uint64

	trace TraceFunc

	// Observability sinks (nil when disabled): the core's timeline
	// track and metrics registry. See SetObs.
	obsTrack *obs.Track
	obsMet   *obs.PEMetrics

	// spmdBarrier is set by Machine.RunSPMD and serves the barrier
	// environment call.
	spmdBarrier *coreBarrier
}

// NewCore returns a core bound to node with sp initialised to StackTop.
func NewCore(m *Machine, node int) *Core {
	c := &Core{m: m, node: node}
	c.X[isa.SP] = StackTop
	return c
}

// Machine returns the cluster the core executes in.
func (c *Core) Machine() *Machine { return c.m }

// NodeID returns the node the core executes on.
func (c *Core) NodeID() int { return c.node }

// Node returns the core's node.
func (c *Core) Node() *Node { return c.m.Nodes[c.node] }

func (c *Core) fault(reason error) error {
	return &Fault{PC: c.PC, Node: c.node, Reason: reason}
}

// setX writes a base register, preserving the hardwired zero.
func (c *Core) setX(r isa.Reg, v uint64) {
	if r != isa.Zero {
		c.X[r] = v
	}
}

// Run executes instructions until the core halts, faults, or maxInsts
// instructions retire (0 means no limit). Reaching the limit without
// halting returns an error, which keeps runaway kernels from hanging
// tests.
func (c *Core) Run(maxInsts uint64) error {
	for {
		if c.Halted {
			return nil
		}
		if maxInsts > 0 && c.Instret >= maxInsts {
			return c.fault(fmt.Errorf("instruction budget of %d exhausted", maxInsts))
		}
		if err := c.Step(); err != nil {
			return err
		}
	}
}
