// Package sim implements a Spike-like functional simulator for the
// RV64I(+M subset) + xBGAS instruction set modelled by internal/isa.
//
// The paper's evaluation environment (§5.1) extends the RISC-V Spike ISA
// simulator with the xBGAS instructions and uses MPICH to connect the
// per-node simulator instances. This package reproduces that structure
// natively:
//
//   - a Machine is the cluster: a set of Nodes joined by a
//     fabric.Fabric network model;
//   - a Node is one processing element: a mem.Hierarchy (RAM + 256-entry
//     TLB + 8-way 16KB L1 / 8MB L2 caches, the paper's configuration)
//     plus an olb.OLB for object-ID translation;
//   - a Core is the architectural state (x0–x31, e0–e31, pc) executing
//     on a node.
//
// Like Spike, the simulator is functional: instructions execute with
// exact ISA semantics, while time is accounted through a cycle cost
// model (1 cycle base per instruction, memory-hierarchy cost on local
// accesses, fabric cost on remote accesses). Remote accesses resolve
// their object ID through the node's OLB exactly as paper §3.2
// describes: ID 0 short-circuits to a local access; any other ID
// translates to a remote node, and the access is performed there
// DMA-style (bypassing the remote caches — the remote core is not
// involved, which is the defining property of one-sided communication).
package sim
