package sim

import (
	"fmt"
	"io"

	"xbgas/internal/isa"
)

// TraceFunc observes one retired instruction. pc is the instruction's
// own address (not the next one); the core's registers reflect the
// post-execution state.
type TraceFunc func(c *Core, pc uint64, inst isa.Inst)

// SetTrace installs a per-instruction trace hook (nil disables). The
// hook runs synchronously on the core's goroutine.
func (c *Core) SetTrace(fn TraceFunc) { c.trace = fn }

// NewWriterTrace returns a TraceFunc that renders a classic simulator
// trace line per instruction to w.
func NewWriterTrace(w io.Writer) TraceFunc {
	return func(c *Core, pc uint64, inst isa.Inst) {
		fmt.Fprintf(w, "core %d %10d %#010x: %s\n", c.node, c.Cycles, pc, inst.Disasm())
	}
}
