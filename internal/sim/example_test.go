package sim_test

import (
	"fmt"
	"log"

	"xbgas/internal/asm"
	"xbgas/internal/sim"
)

// Example executes a remote store and load through the xBGAS
// instructions on a two-node machine.
func Example() {
	m, err := sim.NewMachine(sim.DefaultConfig(2))
	if err != nil {
		log.Fatal(err)
	}
	prog, err := asm.Assemble(`
		li     t0, 0x5000
		li     t1, 99
		li     t2, 2          # object ID of node 1
		eaddie e7, t2, 0
		ersd   t1, t0, e7     # remote store to node 1
		erld   a0, t0, e7     # remote load back
		li     a7, 93
		ecall
	`)
	if err != nil {
		log.Fatal(err)
	}
	core, err := m.Load(0, prog)
	if err != nil {
		log.Fatal(err)
	}
	if err := core.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Println("exit code:", core.ExitCode)
	fmt.Println("node 1 memory:", m.Nodes[1].LockedRead(0x5000, 8))
	fmt.Println("remote ops:", core.RemoteLoads+core.RemoteStores)
	// Output:
	// exit code: 99
	// node 1 memory: 99
	// remote ops: 2
}
