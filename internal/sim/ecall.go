package sim

import (
	"fmt"

	"xbgas/internal/isa"
)

// Environment-call numbers, following the RISC-V Linux ABI convention of
// passing the call number in a7.
const (
	// EcallWrite writes a2 bytes from address a1 (a0 is the descriptor,
	// ignored) to the core's Output buffer; returns a2 in a0.
	EcallWrite uint64 = 64
	// EcallExit halts the core with exit code a0.
	EcallExit uint64 = 93
	// EcallMyPE returns the core's node ID in a0. It mirrors the
	// xbrtime_mype() runtime call for bare-metal kernels.
	EcallMyPE uint64 = 500
	// EcallNumPEs returns the cluster size in a0, mirroring
	// xbrtime_num_pes().
	EcallNumPEs uint64 = 501
	// EcallCycles returns the core's current cycle count in a0.
	EcallCycles uint64 = 502
	// EcallBarrier synchronises all cores of an SPMD run (see
	// Machine.RunSPMD), mirroring xbrtime_barrier() for bare-metal
	// kernels.
	EcallBarrier uint64 = 503
)

// defaultEcall implements the standard environment calls.
func defaultEcall(c *Core) error {
	switch num := c.X[isa.A7]; num {
	case EcallExit:
		c.Halted = true
		c.ExitCode = c.X[isa.A0]
		return nil
	case EcallWrite:
		addr := c.X[isa.A1]
		n := c.X[isa.A2]
		if n > 1<<20 {
			return fmt.Errorf("ecall write: unreasonable length %d", n)
		}
		buf := make([]byte, n)
		c.Node().LockedReadBytes(addr, buf)
		c.Output.Write(buf)
		c.setX(isa.A0, n)
		return nil
	case EcallMyPE:
		c.setX(isa.A0, uint64(c.node))
		return nil
	case EcallNumPEs:
		c.setX(isa.A0, uint64(c.m.NumNodes()))
		return nil
	case EcallCycles:
		c.setX(isa.A0, c.Cycles)
		return nil
	case EcallBarrier:
		return ecallBarrier(c)
	default:
		return fmt.Errorf("ecall: unknown call number %d", num)
	}
}
