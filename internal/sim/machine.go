package sim

import (
	"fmt"
	"sync"

	"xbgas/internal/asm"
	"xbgas/internal/fabric"
	"xbgas/internal/mem"
	"xbgas/internal/obs"
	"xbgas/internal/olb"
)

// ObjectID returns the object ID that addresses node n from any peer.
// The runtime convention, following the xbrtime runtime library, is
// ID = rank + 1 (ID 0 being architecturally reserved for "local").
func ObjectID(node int) uint64 { return uint64(node) + 1 }

// NodeOfObjectID inverts ObjectID.
func NodeOfObjectID(id uint64) int { return int(id) - 1 }

// Node is one processing element: private memory system plus the OLB
// used to translate remote object IDs.
type Node struct {
	ID   int
	Hier *mem.Hierarchy
	OLB  *olb.OLB

	// mu guards functional RAM contents against concurrent remote
	// accesses issued by other nodes' cores.
	mu sync.Mutex
}

// LockedRead reads size bytes at addr under the node's memory lock.
func (n *Node) LockedRead(addr uint64, size int) uint64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.Hier.RAM().ReadUint(addr, size)
}

// LockedWrite writes size bytes at addr under the node's memory lock.
func (n *Node) LockedWrite(addr uint64, size int, v uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Hier.RAM().WriteUint(addr, size, v)
}

// LockedReadElems reads n size-byte elements at addr, addr+step, ...
// into dst[:n] under one acquisition of the node's memory lock — the
// batch form of n LockedRead calls.
func (n *Node) LockedReadElems(addr uint64, size int, step uint64, count int, dst []uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Hier.RAM().ReadElems(addr, size, step, count, dst)
}

// LockedWriteElems writes n size-byte elements from src[:n] to addr,
// addr+step, ... under one acquisition of the node's memory lock.
func (n *Node) LockedWriteElems(addr uint64, size int, step uint64, count int, src []uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Hier.RAM().WriteElems(addr, size, step, count, src)
}

// LockedCopyElems copies count size-byte elements from src to dest
// (both on this node, same stride at both ends) under one lock
// acquisition, element by element in address order — the same
// read-then-write interleaving, and therefore the same overlap
// semantics, as a loop of LockedRead/LockedWrite pairs.
func (n *Node) LockedCopyElems(dest, src uint64, size int, step uint64, count int) {
	n.mu.Lock()
	defer n.mu.Unlock()
	ram := n.Hier.RAM()
	for i := 0; i < count; i++ {
		off := uint64(i) * step
		ram.WriteUint(dest+off, size, ram.ReadUint(src+off, size))
	}
}

// LockedReadBytes copies len(dst) bytes from addr under the memory lock.
func (n *Node) LockedReadBytes(addr uint64, dst []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Hier.RAM().ReadBytes(addr, dst)
}

// LockedWriteBytes copies src to addr under the memory lock.
func (n *Node) LockedWriteBytes(addr uint64, src []byte) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.Hier.RAM().WriteBytes(addr, src)
}

// Config assembles the pieces of a Machine.
type Config struct {
	Nodes    int
	Mem      mem.Config
	Topology fabric.Topology // default: fully connected over Nodes
	Fabric   fabric.Config
	OLBSize  int // translation-cache entries per node; default olb.DefaultEntries
}

// DefaultConfig returns the paper's simulation environment: the given
// number of nodes with §5.1 memory geometry on a fully-connected fabric.
func DefaultConfig(nodes int) Config {
	return Config{
		Nodes:    nodes,
		Mem:      mem.DefaultConfig(),
		Topology: fabric.FullyConnected{N: nodes},
		Fabric:   fabric.DefaultConfig(),
		OLBSize:  olb.DefaultEntries,
	}
}

// Machine is the simulated cluster.
type Machine struct {
	Nodes  []*Node
	Fabric *fabric.Fabric

	// obs, when non-nil, is the observability run cores created by Load
	// attach to (one timeline track and metrics registry per node).
	obs *obs.Run
}

// NewMachine builds a cluster and pre-registers every node's object ID
// in every OLB (the runtime does this during xbrtime_init).
func NewMachine(cfg Config) (*Machine, error) {
	if cfg.Nodes <= 0 {
		return nil, fmt.Errorf("sim: machine needs at least one node, got %d", cfg.Nodes)
	}
	topo := cfg.Topology
	if topo == nil {
		topo = fabric.FullyConnected{N: cfg.Nodes}
	}
	if topo.Nodes() < cfg.Nodes {
		return nil, fmt.Errorf("sim: topology %s has %d nodes, machine needs %d",
			topo.Name(), topo.Nodes(), cfg.Nodes)
	}
	fab, err := fabric.New(topo, cfg.Fabric)
	if err != nil {
		return nil, err
	}
	olbSize := cfg.OLBSize
	if olbSize == 0 {
		olbSize = olb.DefaultEntries
	}
	m := &Machine{Fabric: fab}
	for i := 0; i < cfg.Nodes; i++ {
		h, err := mem.NewHierarchy(cfg.Mem)
		if err != nil {
			return nil, err
		}
		n := &Node{ID: i, Hier: h, OLB: olb.New(olbSize)}
		m.Nodes = append(m.Nodes, n)
	}
	// "The OLB contains a mapping of every unique object ID" (paper
	// §3.2) — including the node's own: addressing yourself through
	// your own object ID is legal, it just loops through the NIC
	// instead of taking the ID-0 local short-circuit.
	for _, n := range m.Nodes {
		for _, peer := range m.Nodes {
			if err := n.OLB.Register(ObjectID(peer.ID), olb.Entry{Node: peer.ID}); err != nil {
				return nil, err
			}
		}
	}
	return m, nil
}

// MustMachine is NewMachine for static configurations.
func MustMachine(cfg Config) *Machine {
	m, err := NewMachine(cfg)
	if err != nil {
		panic(err)
	}
	return m
}

// NumNodes returns the cluster size.
func (m *Machine) NumNodes() int { return len(m.Nodes) }

// Load copies an assembled program into node's RAM (functionally, no
// timing charge) and returns a Core with pc at the program base and sp
// at the top of a fresh stack region.
func (m *Machine) Load(node int, p *asm.Program) (*Core, error) {
	if node < 0 || node >= len(m.Nodes) {
		return nil, fmt.Errorf("sim: load on node %d of %d", node, len(m.Nodes))
	}
	n := m.Nodes[node]
	n.LockedWriteBytes(p.Base, p.Bytes())
	c := NewCore(m, node)
	if m.obs != nil {
		c.SetObs(m.obs.PETrack(node), m.obs.PEMetrics(node))
	}
	c.PC = p.Base
	if entry, ok := p.Symbols["_start"]; ok {
		c.PC = entry
	}
	return c, nil
}
