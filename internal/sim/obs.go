package sim

import "xbgas/internal/obs"

// SetObs attaches an observability run to the machine: cores created
// by Load (and therefore by RunSPMD) record remote accesses and SPMD
// barriers on the run's per-PE tracks and metrics, and the fabric
// records stream bookings on the per-NIC tracks. Call before loading
// programs; pass nil to detach.
func (m *Machine) SetObs(run *obs.Run) {
	m.obs = run
	m.Fabric.SetObs(run)
}

// SetObs attaches observability sinks to one core. Either may be nil;
// with both nil the core's hot paths pay a single pointer test.
func (c *Core) SetObs(t *obs.Track, met *obs.PEMetrics) {
	c.obsTrack = t
	c.obsMet = met
}

// obsRemote records one remote (non-zero object ID) access: a span on
// the core's track covering the access's fabric cost, and the latency
// in the put/get histograms — stores are puts, loads are gets, matching
// the runtime-level naming.
func (c *Core) obsRemote(store bool, cost uint64, peer, width int) {
	if c.obsTrack != nil {
		name := "remote_load"
		if store {
			name = "remote_store"
		}
		c.obsTrack.Complete(name, c.Cycles, c.Cycles+cost,
			obs.Args{Rank: c.node, Peer: peer, Round: -1, Nelems: width})
	}
	if c.obsMet != nil {
		if store {
			c.obsMet.Puts.Add(1)
			c.obsMet.PutElems.Add(1)
			c.obsMet.PutLatency.Observe(cost)
		} else {
			c.obsMet.Gets.Add(1)
			c.obsMet.GetElems.Add(1)
			c.obsMet.GetLatency.Observe(cost)
		}
	}
}

// obsBarrier records one SPMD barrier spanning arrival to release.
func (c *Core) obsBarrier(start, end uint64) {
	if c.obsTrack != nil {
		c.obsTrack.Complete("barrier", start, end,
			obs.Args{Rank: c.node, Peer: -1, Round: -1, Nelems: 0})
	}
	if c.obsMet != nil {
		c.obsMet.Barriers.Add(1)
		c.obsMet.BarrierLatency.Observe(end - start)
	}
}
