package sim

import (
	"fmt"
	"sync"

	"xbgas/internal/asm"
)

// coreBarrier synchronises the machine's SPMD cores at the barrier
// environment call: a sense-reversing barrier that also aligns the
// cores' virtual clocks to the slowest arrival.
type coreBarrier struct {
	mu     sync.Mutex
	cond   *sync.Cond
	n      int
	count  int
	sense  bool
	maxCyc uint64
	relCyc uint64
}

func newCoreBarrier(n int) *coreBarrier {
	b := &coreBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// wait blocks until all cores arrive; it reports false if the barrier
// was aborted (a peer faulted) before or during the wait.
func (b *coreBarrier) wait(c *Core) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.n < 0 {
		return false
	}
	localSense := !b.sense
	b.count++
	if c.Cycles > b.maxCyc {
		b.maxCyc = c.Cycles
	}
	if b.count == b.n {
		b.relCyc = b.maxCyc
		b.count = 0
		b.maxCyc = 0
		b.sense = localSense
		b.cond.Broadcast()
	} else {
		for b.sense != localSense && b.n >= 0 {
			b.cond.Wait()
		}
		if b.n < 0 {
			return false
		}
	}
	if b.relCyc > c.Cycles {
		c.Cycles = b.relCyc
	}
	return true
}

// SPMDResult carries one core's outcome from RunSPMD.
type SPMDResult struct {
	Core *Core
	Err  error
}

// RunSPMD loads the same program on every node and executes one core
// per node concurrently — the bare-metal analogue of launching the same
// binary on each processing element, as the paper's Spike+MPICH
// environment does. The barrier environment call (EcallBarrier)
// synchronises all cores and aligns their virtual clocks. maxInsts
// bounds each core (0 = unlimited).
//
// A core that faults breaks the barrier so the others cannot deadlock;
// their barrier ecall then faults too.
func (m *Machine) RunSPMD(p *asm.Program, maxInsts uint64) ([]SPMDResult, error) {
	n := len(m.Nodes)
	barrier := newCoreBarrier(n)
	results := make([]SPMDResult, n)
	cores := make([]*Core, n)
	for i := 0; i < n; i++ {
		c, err := m.Load(i, p)
		if err != nil {
			return nil, err
		}
		c.spmdBarrier = barrier
		cores[i] = c
	}
	var wg sync.WaitGroup
	for i, c := range cores {
		wg.Add(1)
		go func(idx int, core *Core) {
			defer wg.Done()
			err := core.Run(maxInsts)
			if err != nil {
				barrier.abort()
			}
			results[idx] = SPMDResult{Core: core, Err: err}
		}(i, c)
	}
	wg.Wait()
	for _, r := range results {
		if r.Err != nil {
			return results, r.Err
		}
	}
	return results, nil
}

// abort releases all waiters permanently (used when a peer faults).
func (b *coreBarrier) abort() {
	b.mu.Lock()
	b.n = -1 // no count can ever reach it
	b.cond.Broadcast()
	b.mu.Unlock()
}

// ecallBarrier implements the barrier environment call for SPMD cores.
func ecallBarrier(c *Core) error {
	if c.spmdBarrier == nil {
		return fmt.Errorf("ecall barrier: core is not part of an SPMD run")
	}
	start := c.Cycles
	if !c.spmdBarrier.wait(c) {
		return fmt.Errorf("ecall barrier: aborted because a peer core faulted")
	}
	if c.obsTrack != nil || c.obsMet != nil {
		c.obsBarrier(start, c.Cycles)
	}
	return nil
}
