package obs

// StepCat classifies where a step's virtual-clock interval went. The
// executor tags every step it runs with one category; the critical-path
// extractor then attributes the measured completion time of a
// collective to these buckets. CatOverhead is the residual — executor
// bookkeeping between steps, allocation cost, and entry skew between
// PEs — and doubles as the "unattributed" bucket in coverage figures.
type StepCat uint8

const (
	CatOverhead    StepCat = iota // bookkeeping, entry skew, unattributed
	CatTransfer                   // put/get wire + injection time (blocking)
	CatDataWait                   // waiting on own non-blocking handles
	CatFlagWait                   // waiting on a peer's flag signal
	CatBarrierWait                // waiting in a plan or round barrier
	CatCombine                    // reduction arithmetic
	CatCopy                       // local stage<->buffer copies
	CatSignal                     // posting flag words

	NumStepCats = 8
)

var stepCatNames = [NumStepCats]string{
	"overhead", "transfer", "data-wait", "flag-wait",
	"barrier-wait", "combine", "copy", "signal",
}

func (c StepCat) String() string {
	if int(c) < len(stepCatNames) {
		return stepCatNames[c]
	}
	return "?"
}

// StepRec is one executed step's interval on a PE's virtual clock.
// Releaser is the rank whose action ended a wait (the flag signaler or
// the last barrier arriver), -1 when the step did not block on a peer.
type StepRec struct {
	Start, End uint64
	Releaser   int32
	Cat        StepCat
}

// CallRec is one collective call on a PE: its [Start, End] interval and
// the half-open step range steps[First:First+N] recorded inside it.
type CallRec struct {
	Name       string
	Start, End uint64
	First, N   int
}

// StepLog is a PE's append-only record of collective calls and the
// categorized steps inside them. One goroutine (the owning PE) writes
// it; readers wait for the run to quiesce. All methods are nil-safe so
// disabled tracing costs a single pointer test.
type StepLog struct {
	rank  int
	steps []StepRec
	calls []CallRec
	depth int // nested BeginCall count; only depth 0->1 opens a record
}

// BeginCall opens a collective-call record. Nested calls (a collective
// implemented in terms of another) fold into the outermost record.
func (l *StepLog) BeginCall(name string, now uint64) {
	if l == nil {
		return
	}
	l.depth++
	if l.depth != 1 {
		return
	}
	l.calls = append(l.calls, CallRec{Name: name, Start: now, End: now, First: len(l.steps)})
}

// EndCall closes the open record at virtual time now.
func (l *StepLog) EndCall(now uint64) {
	if l == nil || l.depth == 0 {
		return
	}
	l.depth--
	if l.depth != 0 {
		return
	}
	c := &l.calls[len(l.calls)-1]
	c.End = now
	c.N = len(l.steps) - c.First
}

// Note records a non-waiting step interval. Zero-length intervals and
// intervals outside any open call are dropped.
func (l *StepLog) Note(cat StepCat, start, end uint64) {
	l.note(cat, start, end, -1)
}

// NoteWait records a wait interval together with the rank that released
// it (-1 when unknown).
func (l *StepLog) NoteWait(cat StepCat, start, end uint64, releaser int) {
	l.note(cat, start, end, int32(releaser))
}

func (l *StepLog) note(cat StepCat, start, end uint64, releaser int32) {
	if l == nil || l.depth == 0 || end <= start {
		return
	}
	l.steps = append(l.steps, StepRec{Start: start, End: end, Releaser: releaser, Cat: cat})
}

// Calls returns the recorded call records (the log's own backing
// store; do not mutate).
func (l *StepLog) Calls() []CallRec {
	if l == nil {
		return nil
	}
	return l.calls
}

// Steps returns the full step store. Use CallRec.First/N to slice one
// call's steps out of it.
func (l *StepLog) Steps() []StepRec {
	if l == nil {
		return nil
	}
	return l.steps
}

// Rank returns the owning PE's rank.
func (l *StepLog) Rank() int {
	if l == nil {
		return 0
	}
	return l.rank
}
