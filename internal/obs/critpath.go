package obs

import (
	"fmt"
	"sort"
	"strings"
)

// PathLink is one segment of a measured critical path: [Start, End] on
// Rank's virtual clock, attributed to Cat. Links are returned newest
// first and tile the call's [minStart, maxEnd] interval exactly:
// Links[i].Start == Links[i+1].End.
type PathLink struct {
	Rank       int
	Cat        StepCat
	Start, End uint64
}

// CallPath is the extracted critical path of one collective call: the
// longest causal chain through the PEs' step logs, following wait
// edges back to their releasers. Total() always equals End-Start (the
// measured completion time across all PEs); whatever the chain cannot
// attribute to a concrete step or wait is charged to CatOverhead.
type CallPath struct {
	Name       string
	Start, End uint64 // min call start / max call end across PEs
	Links      []PathLink
}

// Total returns the measured completion time the path spans.
func (p *CallPath) Total() uint64 { return p.End - p.Start }

// ByCat sums link durations per category.
func (p *CallPath) ByCat() [NumStepCats]uint64 {
	var out [NumStepCats]uint64
	for _, l := range p.Links {
		out[l.Cat] += l.End - l.Start
	}
	return out
}

// Coverage returns the attributed (non-overhead) share of the total,
// in [0, 1].
func (p *CallPath) Coverage() float64 {
	t := p.Total()
	if t == 0 {
		return 1
	}
	return 1 - float64(p.ByCat()[CatOverhead])/float64(t)
}

// stepLogs returns the run's per-PE step logs, nil when tracing is
// disabled.
func (run *Run) stepLogs() []*StepLog {
	if run == nil {
		return nil
	}
	return run.peSteps
}

// NumCalls returns the number of collective calls extractable from the
// run: the calls are matched up by SPMD call order, so the count is
// the shortest per-PE call list, truncated at the first index where
// the PEs disagree on the call name (team collectives desynchronize
// the per-PE call streams; everything before the first team call still
// extracts).
func (run *Run) NumCalls() int {
	logs := run.stepLogs()
	if len(logs) == 0 {
		return 0
	}
	n := len(logs[0].Calls())
	for _, l := range logs[1:] {
		if c := len(l.Calls()); c < n {
			n = c
		}
	}
	for k := 0; k < n; k++ {
		name := logs[0].Calls()[k].Name
		for _, l := range logs[1:] {
			if l.Calls()[k].Name != name {
				return k
			}
		}
	}
	return n
}

// ExtractCallPath builds the measured critical path of call k. It
// walks backward from the PE that finished last: inside a PE it
// consumes step intervals newest-first; at a wait whose releaser is
// another rank it jumps to that rank, attributing the signal's wire
// and fan-out time to the wait's category. Gaps between steps are
// overhead. The walk terminates at the earliest call start; if the
// current PE's log bottoms out first, the remainder is entry skew
// (overhead). Returns ok=false when the run has no aligned call k.
func (run *Run) ExtractCallPath(k int) (CallPath, bool) {
	logs := run.stepLogs()
	if k < 0 || k >= run.NumCalls() {
		return CallPath{}, false
	}

	var cp CallPath
	pe := 0
	for i, l := range logs {
		c := l.Calls()[k]
		if i == 0 || c.End > cp.End {
			cp.End = c.End
			pe = i
		}
		if i == 0 || c.Start < cp.Start {
			cp.Start = c.Start
		}
	}
	cp.Name = logs[pe].Calls()[k].Name

	cur := cp.End
	gapCat := CatOverhead // category charged to inter-step gaps
	jumps := 0            // consecutive jumps without cur decreasing

	emit := func(rank int, cat StepCat, start uint64) {
		if start < cp.Start {
			start = cp.Start
		}
		if start >= cur {
			return
		}
		cp.Links = append(cp.Links, PathLink{Rank: rank, Cat: cat, Start: start, End: cur})
		cur = start
		gapCat = CatOverhead
		jumps = 0
	}

	for cur > cp.Start {
		l := logs[pe]
		c := l.Calls()[k]
		steps := l.Steps()[c.First : c.First+c.N]
		// Last step starting strictly before cur.
		idx := sort.Search(len(steps), func(i int) bool { return steps[i].Start >= cur }) - 1
		if idx < 0 {
			// No more steps on this PE: charge the run-up to its call
			// start, then the entry skew down to the global start.
			if c.Start < cur {
				emit(pe, gapCat, c.Start)
			}
			emit(pe, CatOverhead, cp.Start)
			break
		}
		s := steps[idx]
		if s.End < cur {
			// Gap after the step: executor bookkeeping, or (right
			// after a jump) the releasing signal's time in flight.
			emit(pe, gapCat, s.End)
			continue
		}
		isWait := s.Cat == CatFlagWait || s.Cat == CatBarrierWait
		if isWait && s.Releaser >= 0 && int(s.Releaser) != pe &&
			int(s.Releaser) < len(logs) && jumps <= len(logs) {
			// Follow the wait to the rank that released it. cur does
			// not move; the releaser's trailing gap (signal transit,
			// barrier fan-out) inherits the wait's category.
			pe = int(s.Releaser)
			gapCat = s.Cat
			jumps++
			continue
		}
		// Consume the step itself (clipped to cur). Also the fallback
		// when releaser-jumping cycles without progress.
		emit(pe, s.Cat, s.Start)
	}
	return cp, true
}

// critAgg accumulates the per-category totals of every extracted call
// with the same name.
type critAgg struct {
	name  string
	calls int
	total uint64
	cats  [NumStepCats]uint64
}

// CriticalPathTable renders the aggregated critical-path breakdown of
// every extractable collective call: per collective name, the number
// of calls, mean path length, the share of path time per category, and
// the attributed coverage. Returns "" when tracing is disabled or no
// calls were recorded.
func (run *Run) CriticalPathTable() string {
	n := run.NumCalls()
	if n == 0 {
		return ""
	}
	var order []string
	aggs := make(map[string]*critAgg)
	for k := 0; k < n; k++ {
		cp, ok := run.ExtractCallPath(k)
		if !ok {
			continue
		}
		a := aggs[cp.Name]
		if a == nil {
			a = &critAgg{name: cp.Name}
			aggs[cp.Name] = a
			order = append(order, cp.Name)
		}
		a.calls++
		a.total += cp.Total()
		for c, v := range cp.ByCat() {
			a.cats[c] += v
		}
	}
	if len(order) == 0 {
		return ""
	}

	var b strings.Builder
	b.WriteString("critical path (share of measured completion time, per collective):\n")
	fmt.Fprintf(&b, "%-28s %6s %12s", "collective", "calls", "mean-cycles")
	cols := []StepCat{CatTransfer, CatDataWait, CatFlagWait, CatBarrierWait, CatCombine, CatCopy, CatSignal, CatOverhead}
	for _, c := range cols {
		fmt.Fprintf(&b, " %12s", c.String())
	}
	fmt.Fprintf(&b, " %9s\n", "coverage")
	for _, name := range order {
		a := aggs[name]
		mean := a.total / uint64(a.calls)
		fmt.Fprintf(&b, "%-28s %6d %12d", a.name, a.calls, mean)
		for _, c := range cols {
			share := 0.0
			if a.total > 0 {
				share = 100 * float64(a.cats[c]) / float64(a.total)
			}
			fmt.Fprintf(&b, " %11.1f%%", share)
		}
		cov := 100.0
		if a.total > 0 {
			cov = 100 * (1 - float64(a.cats[CatOverhead])/float64(a.total))
		}
		fmt.Fprintf(&b, " %8.1f%%\n", cov)
	}
	return b.String()
}

// CriticalPathTable aggregates the per-run tables, prefixing each with
// the run's label when more than one run recorded calls.
func (r *Recorder) CriticalPathTable() string {
	if r == nil {
		return ""
	}
	var parts []string
	runs := r.Runs()
	for _, run := range runs {
		t := run.CriticalPathTable()
		if t == "" {
			continue
		}
		if len(runs) > 1 {
			t = fmt.Sprintf("run %q (%d PEs):\n%s", run.label, run.npes, t)
		}
		parts = append(parts, t)
	}
	return strings.Join(parts, "\n")
}
