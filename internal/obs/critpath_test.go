package obs_test

import (
	"strings"
	"testing"

	"xbgas/internal/obs"
)

// synthRun attaches a tracing run of n PEs and returns it with its step
// logs, for building synthetic schedules the extractor is tested on.
func synthRun(t *testing.T, n int) (*obs.Run, []*obs.StepLog) {
	t.Helper()
	rec := obs.NewRecorder(obs.Options{Trace: true})
	run := rec.Attach("synth", n)
	logs := make([]*obs.StepLog, n)
	for i := range logs {
		logs[i] = run.StepLog(i)
		if logs[i] == nil {
			t.Fatalf("StepLog(%d) = nil with tracing enabled", i)
		}
	}
	return run, logs
}

func TestStepLogNilAndNesting(t *testing.T) {
	var nilLog *obs.StepLog
	nilLog.BeginCall("x", 0)
	nilLog.Note(obs.CatTransfer, 0, 10)
	nilLog.EndCall(10)
	if nilLog.Calls() != nil || nilLog.Steps() != nil {
		t.Error("nil StepLog should report no calls/steps")
	}

	_, logs := synthRun(t, 1)
	l := logs[0]
	// Steps outside any call are dropped.
	l.Note(obs.CatTransfer, 0, 5)
	// Nested BeginCall folds into the outermost record.
	l.BeginCall("outer", 10)
	l.BeginCall("inner", 12)
	l.Note(obs.CatCombine, 12, 20)
	l.Note(obs.CatCopy, 20, 20) // zero-length: dropped
	l.EndCall(25)
	l.EndCall(30)
	calls := l.Calls()
	if len(calls) != 1 {
		t.Fatalf("got %d calls, want 1 (nested call must fold)", len(calls))
	}
	c := calls[0]
	if c.Name != "outer" || c.Start != 10 || c.End != 30 {
		t.Errorf("call = %+v, want outer [10,30]", c)
	}
	if c.N != 1 {
		t.Errorf("call recorded %d steps, want 1 (outside-call and zero-length dropped)", c.N)
	}
	if s := l.Steps()[c.First]; s.Cat != obs.CatCombine || s.Start != 12 || s.End != 20 {
		t.Errorf("step = %+v, want combine [12,20]", s)
	}
}

// assertTiles checks the extractor's structural invariant: links are
// newest-first and tile [cp.Start, cp.End] with no gap or overlap, so
// ByCat sums exactly to Total.
func assertTiles(t *testing.T, cp obs.CallPath) {
	t.Helper()
	if len(cp.Links) == 0 {
		if cp.Total() != 0 {
			t.Fatalf("no links but Total=%d", cp.Total())
		}
		return
	}
	if cp.Links[0].End != cp.End {
		t.Errorf("first link ends at %d, want cp.End %d", cp.Links[0].End, cp.End)
	}
	for i, l := range cp.Links {
		if l.End <= l.Start {
			t.Errorf("link %d is empty or inverted: %+v", i, l)
		}
		if i+1 < len(cp.Links) && cp.Links[i+1].End != l.Start {
			t.Errorf("links %d/%d do not tile: %d vs %d", i, i+1, l.Start, cp.Links[i+1].End)
		}
	}
	if last := cp.Links[len(cp.Links)-1]; last.Start != cp.Start {
		t.Errorf("last link starts at %d, want cp.Start %d", last.Start, cp.Start)
	}
	var sum uint64
	for _, v := range cp.ByCat() {
		sum += v
	}
	if sum != cp.Total() {
		t.Errorf("ByCat sums to %d, Total is %d", sum, cp.Total())
	}
}

func TestCriticalPathSingleRank(t *testing.T) {
	run, logs := synthRun(t, 1)
	l := logs[0]
	l.BeginCall("broadcast/binomial", 100)
	l.Note(obs.CatTransfer, 100, 300)
	l.Note(obs.CatCombine, 320, 400) // 20-cycle bookkeeping gap before it
	l.EndCall(400)

	if n := run.NumCalls(); n != 1 {
		t.Fatalf("NumCalls = %d, want 1", n)
	}
	cp, ok := run.ExtractCallPath(0)
	if !ok {
		t.Fatal("ExtractCallPath(0) not ok")
	}
	assertTiles(t, cp)
	if cp.Total() != 300 {
		t.Errorf("Total = %d, want 300", cp.Total())
	}
	by := cp.ByCat()
	if by[obs.CatTransfer] != 200 || by[obs.CatCombine] != 80 || by[obs.CatOverhead] != 20 {
		t.Errorf("ByCat = %v, want transfer=200 combine=80 overhead=20", by)
	}
}

func TestCriticalPathJumpToReleaser(t *testing.T) {
	run, logs := synthRun(t, 2)
	// PE 0 sends for 100 cycles, posts a flag at 110; PE 1 waits on the
	// flag until 150 (40 cycles of signal transit after PE 0's log ends)
	// and then combines until 200.
	logs[0].BeginCall("bcast", 0)
	logs[0].Note(obs.CatTransfer, 0, 100)
	logs[0].Note(obs.CatSignal, 100, 110)
	logs[0].EndCall(110)
	logs[1].BeginCall("bcast", 0)
	logs[1].NoteWait(obs.CatFlagWait, 0, 150, 0)
	logs[1].Note(obs.CatCombine, 150, 200)
	logs[1].EndCall(200)

	cp, ok := run.ExtractCallPath(0)
	if !ok {
		t.Fatal("ExtractCallPath(0) not ok")
	}
	assertTiles(t, cp)
	if cp.Start != 0 || cp.End != 200 {
		t.Fatalf("path spans [%d,%d], want [0,200]", cp.Start, cp.End)
	}
	by := cp.ByCat()
	// The wait itself must NOT appear as 150 cycles of flag-wait: the
	// walk jumps to the releaser and only the post-release transit
	// (110→150) inherits the wait's category.
	want := map[obs.StepCat]uint64{
		obs.CatTransfer: 100,
		obs.CatSignal:   10,
		obs.CatFlagWait: 40,
		obs.CatCombine:  50,
	}
	for cat, v := range want {
		if by[cat] != v {
			t.Errorf("ByCat[%s] = %d, want %d", cat, by[cat], v)
		}
	}
	if by[obs.CatOverhead] != 0 {
		t.Errorf("ByCat[overhead] = %d, want 0", by[obs.CatOverhead])
	}
	if cov := cp.Coverage(); cov != 1 {
		t.Errorf("Coverage = %v, want 1", cov)
	}
	// The releaser's work must be attributed to rank 0.
	foundRank0 := false
	for _, l := range cp.Links {
		if l.Rank == 0 && l.Cat == obs.CatTransfer {
			foundRank0 = true
		}
	}
	if !foundRank0 {
		t.Error("path never visited the releasing rank's transfer")
	}
}

func TestCriticalPathEntrySkewIsOverhead(t *testing.T) {
	run, logs := synthRun(t, 2)
	// PE 0 enters the call late (skew 50): the walk bottoms out on PE 1
	// and charges [0,50) to overhead — never inventing attribution.
	logs[0].BeginCall("bar", 50)
	logs[0].Note(obs.CatTransfer, 50, 80)
	logs[0].EndCall(80)
	logs[1].BeginCall("bar", 0)
	logs[1].NoteWait(obs.CatBarrierWait, 0, 100, 0)
	logs[1].EndCall(100)

	cp, ok := run.ExtractCallPath(0)
	if !ok {
		t.Fatal("ExtractCallPath(0) not ok")
	}
	assertTiles(t, cp)
	if cp.Total() != 100 {
		t.Fatalf("Total = %d, want 100", cp.Total())
	}
	by := cp.ByCat()
	if by[obs.CatOverhead] == 0 {
		t.Error("entry skew should surface as overhead, got none")
	}
	if cov := cp.Coverage(); cov >= 1 {
		t.Errorf("Coverage = %v, want < 1 with entry skew", cov)
	}
}

func TestCriticalPathDesyncTruncates(t *testing.T) {
	run, logs := synthRun(t, 2)
	logs[0].BeginCall("a", 0)
	logs[0].EndCall(10)
	logs[0].BeginCall("b", 10)
	logs[0].EndCall(20)
	logs[1].BeginCall("a", 0)
	logs[1].EndCall(10)
	logs[1].BeginCall("c", 10) // name mismatch at call 1
	logs[1].EndCall(20)
	if n := run.NumCalls(); n != 1 {
		t.Errorf("NumCalls = %d, want 1 (truncate at first mismatch)", n)
	}
}

func TestCriticalPathTableFormat(t *testing.T) {
	run, logs := synthRun(t, 1)
	for i := 0; i < 3; i++ {
		start := uint64(i * 1000)
		logs[0].BeginCall("allreduce/ring", start)
		logs[0].Note(obs.CatTransfer, start, start+400)
		logs[0].NoteWait(obs.CatBarrierWait, start+400, start+500, -1)
		logs[0].EndCall(start + 500)
	}
	tbl := run.CriticalPathTable()
	if tbl == "" {
		t.Fatal("empty table with recorded calls")
	}
	for _, want := range []string{
		"critical path (share of measured completion time, per collective):",
		"allreduce/ring", "coverage", "transfer", "barrier-wait",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	// 3 calls, mean 500 cycles, 80% transfer / 20% barrier-wait.
	for _, want := range []string{" 3 ", "500", "80.0%", "20.0%", "100.0%"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	// Disabled tracing: no table, no panic.
	recOff := obs.NewRecorder(obs.Options{})
	runOff := recOff.Attach("off", 2)
	if got := runOff.CriticalPathTable(); got != "" {
		t.Errorf("disabled run produced a table: %q", got)
	}
}
