package obs

import (
	"fmt"
	"sort"
	"strings"
)

// roundAgg accumulates one (span name, round) cell of the breakdown.
type roundAgg struct {
	name  string
	round int // -1 for the collective-level row
	count uint64
	sum   uint64
	min   uint64
	max   uint64
}

func (a *roundAgg) add(cycles uint64) {
	if a.count == 0 || cycles < a.min {
		a.min = cycles
	}
	if cycles > a.max {
		a.max = cycles
	}
	a.count++
	a.sum += cycles
}

// breakdownKey orders rows: by span name, collective-level row first,
// then ascending round.
type breakdownKey struct {
	name  string
	round int
}

// collectRounds scans the run's PE tracks for collective and round
// spans. Collective-level spans carry Round == -1 and a ".round"-free
// name; round spans are recorded with Round >= 0. Transfers and
// barriers (no round, non-collective names) are excluded by requiring
// either Round >= 0 or membership in the set of names that have round
// children.
func (run *Run) collectRounds() map[breakdownKey]*roundAgg {
	cells := make(map[breakdownKey]*roundAgg)
	add := func(name string, round int, cycles uint64) {
		k := breakdownKey{name, round}
		a := cells[k]
		if a == nil {
			a = &roundAgg{name: name, round: round}
			cells[k] = a
		}
		a.add(cycles)
	}
	// First pass: round spans, remembering which collectives they
	// belong to (span "broadcast.round" → parent "broadcast").
	parents := make(map[string]bool)
	for _, t := range run.peTracks {
		for _, ev := range t.Events() {
			if ev.Args.Round >= 0 {
				add(ev.Name, ev.Args.Round, ev.End-ev.Start)
				if base, ok := strings.CutSuffix(ev.Name, ".round"); ok {
					parents[base] = true
				}
			}
		}
	}
	// Second pass: collective-level spans (parents of the rounds seen
	// above, plus any span explicitly named like a collective whose
	// rounds were all empty).
	for _, t := range run.peTracks {
		for _, ev := range t.Events() {
			if ev.Args.Round < 0 && parents[ev.Name] {
				add(ev.Name, -1, ev.End-ev.Start)
			}
		}
	}
	return cells
}

// RoundBreakdown renders the per-collective round table of this run:
// for every collective span name, one summary row over whole calls and
// one row per tree round, each with call count and min/mean/max cycles
// across all PEs. It returns "" when tracing is disabled or no
// collective spans were recorded.
func (run *Run) RoundBreakdown() string {
	if run == nil || run.rec == nil || !run.rec.opts.Trace {
		return ""
	}
	cells := run.collectRounds()
	if len(cells) == 0 {
		return ""
	}
	keys := make([]breakdownKey, 0, len(cells))
	for k := range cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		ni, nj := strings.TrimSuffix(keys[i].name, ".round"), strings.TrimSuffix(keys[j].name, ".round")
		if ni != nj {
			return ni < nj
		}
		return keys[i].round < keys[j].round
	})
	var b strings.Builder
	b.WriteString("collective round breakdown (cycles across all PEs):\n")
	fmt.Fprintf(&b, "%-24s %-6s %-8s %-10s %-10s %-10s\n",
		"span", "round", "calls", "min", "mean", "max")
	for _, k := range keys {
		a := cells[k]
		round := "-"
		if a.round >= 0 {
			round = fmt.Sprintf("%d", a.round)
		}
		fmt.Fprintf(&b, "%-24s %-6s %-8d %-10d %-10.0f %-10d\n",
			a.name, round, a.count, a.min, float64(a.sum)/float64(a.count), a.max)
	}
	return b.String()
}

// RoundBreakdown aggregates the breakdown across every attached run.
func (r *Recorder) RoundBreakdown() string {
	var b strings.Builder
	for _, run := range r.Runs() {
		if s := run.RoundBreakdown(); s != "" {
			if b.Len() > 0 {
				b.WriteString("\n")
			}
			fmt.Fprintf(&b, "run %q (%d PEs)\n%s", run.label, run.npes, s)
		}
	}
	return b.String()
}
