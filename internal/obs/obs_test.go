package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"xbgas/internal/core"
	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// runWorkload drives a small deterministic SPMD program that exercises
// every span family: a broadcast (tree rounds), a reduction, explicit
// puts, and barriers. Deterministic mode makes the resulting trace a
// pure function of the program, which TestDeterministicTraceReproducible
// relies on.
func runWorkload(t *testing.T, rec *obs.Recorder) {
	t.Helper()
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 4, Deterministic: true, Obs: rec})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		const nelems = 8
		w := uint64(xbrtime.TypeLong.Width)
		dest, err := pe.Malloc(nelems * w)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(nelems * w)
		if err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(xbrtime.TypeLong, src+uint64(i)*w, uint64(int64(100*pe.MyPE()+i)))
		}
		if err := core.Broadcast(pe, xbrtime.TypeLong, dest, src, nelems, 1, 0); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		out, err := pe.PrivateAlloc(nelems * w)
		if err != nil {
			return err
		}
		if err := core.ReduceSumLong(pe, out, dest, nelems, 1, 0); err != nil {
			return err
		}
		// One explicit put to the right neighbour on top of the
		// collectives' internal traffic.
		if err := pe.Put(xbrtime.TypeLong, dest, src, nelems, 1, (pe.MyPE()+1)%pe.NumPEs()); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Args map[string]any `json:"args"`
}

type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

func exportTrace(t *testing.T, rec *obs.Recorder) traceFile {
	t.Helper()
	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf traceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}
	return tf
}

func TestTraceExportValidAndMonotonic(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
	runWorkload(t, rec)
	tf := exportTrace(t, rec)

	if tf.DisplayTimeUnit != "ns" {
		t.Errorf("displayTimeUnit = %q, want %q", tf.DisplayTimeUnit, "ns")
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	names := make(map[string]bool)
	last := make(map[[2]int]float64)
	for _, ev := range tf.TraceEvents {
		names[ev.Name] = true
		if ev.Ph != "X" {
			continue
		}
		if ev.Dur < 0 {
			t.Errorf("event %q on pid=%d tid=%d has negative dur %v", ev.Name, ev.Pid, ev.Tid, ev.Dur)
		}
		key := [2]int{ev.Pid, ev.Tid}
		if ev.Ts < last[key] {
			t.Errorf("track pid=%d tid=%d: ts %v after %v — not monotonic", ev.Pid, ev.Tid, ev.Ts, last[key])
		}
		last[key] = ev.Ts
	}
	for _, want := range []string{
		"process_name", "thread_name", // Perfetto metadata
		"broadcast", "broadcast.round", "reduce", "reduce.round",
		"put", "barrier",
	} {
		if !names[want] {
			t.Errorf("trace is missing %q events", want)
		}
	}
}

func TestHistogramBucketSumsMatchCounters(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
	runWorkload(t, rec)
	runs := rec.Runs()
	if len(runs) != 1 {
		t.Fatalf("got %d runs, want 1", len(runs))
	}
	run := runs[0]

	bucketSum := func(h *obs.Histogram) uint64 {
		var s uint64
		for _, n := range h.Buckets {
			s += n
		}
		return s
	}

	var sawSamples bool
	for rank := 0; rank < run.NumPEs(); rank++ {
		m := run.PEMetrics(rank)
		if m == nil {
			t.Fatalf("PE %d has no metrics", rank)
		}
		pairs := []struct {
			name    string
			counter uint64
			hist    *obs.Histogram
		}{
			{"puts/put_latency", m.Puts.Value(), &m.PutLatency},
			{"gets/get_latency", m.Gets.Value(), &m.GetLatency},
			{"barriers/barrier_latency", m.Barriers.Value(), &m.BarrierLatency},
			{"collectives/collective_latency", m.Collectives.Value(), &m.CollectiveLatency},
			{"rounds/round_latency", m.Rounds.Value(), &m.RoundLatency},
		}
		for _, p := range pairs {
			if s := bucketSum(p.hist); s != p.hist.Count {
				t.Errorf("PE %d %s: bucket sum %d != histogram count %d", rank, p.name, s, p.hist.Count)
			}
			if p.hist.Count != p.counter {
				t.Errorf("PE %d %s: histogram count %d != counter %d (lockstep broken)",
					rank, p.name, p.hist.Count, p.counter)
			}
			if p.hist.Count > 0 {
				sawSamples = true
			}
		}
		if m.Collectives.Value() == 0 {
			t.Errorf("PE %d recorded no collectives", rank)
		}
	}
	if !sawSamples {
		t.Fatal("no histogram recorded any sample")
	}

	// Fabric side: one StreamStall observation per booked stream.
	fm := run.FabricMetrics()
	if fm == nil {
		t.Fatal("run has no fabric metrics")
	}
	if s := bucketSum(&fm.StreamStall); s != fm.StreamStall.Count {
		t.Errorf("fabric stream_stall: bucket sum %d != count %d", s, fm.StreamStall.Count)
	}
	if got, want := fm.StreamStall.Count, fm.Streams.Value()+fm.Fetches.Value(); got != want {
		t.Errorf("fabric stream_stall count %d != streams+fetches %d", got, want)
	}

	// Cluster merge preserves totals.
	total := run.ClusterMetrics()
	if total == nil {
		t.Fatal("ClusterMetrics returned nil with metrics enabled")
	}
	var wantPuts, wantRounds uint64
	for rank := 0; rank < run.NumPEs(); rank++ {
		wantPuts += run.PEMetrics(rank).Puts.Value()
		wantRounds += run.PEMetrics(rank).RoundLatency.Count
	}
	if total.Puts.Value() != wantPuts {
		t.Errorf("cluster puts %d != per-PE sum %d", total.Puts.Value(), wantPuts)
	}
	if total.RoundLatency.Count != wantRounds {
		t.Errorf("cluster round_latency count %d != per-PE sum %d", total.RoundLatency.Count, wantRounds)
	}
}

func TestDeterministicTraceReproducible(t *testing.T) {
	export := func() []byte {
		rec := obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
		runWorkload(t, rec)
		var buf bytes.Buffer
		if err := rec.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a, b := export(), export()
	if !bytes.Equal(a, b) {
		t.Error("two Config.Deterministic runs exported different traces")
	}
}

func TestHistogramObserveMergeQuantile(t *testing.T) {
	var h obs.Histogram
	vals := []uint64{0, 1, 2, 3, 7, 100, 1 << 20}
	var sum uint64
	for _, v := range vals {
		h.Observe(v)
		sum += v
	}
	if h.Count != uint64(len(vals)) || h.Sum != sum {
		t.Errorf("count/sum = %d/%d, want %d/%d", h.Count, h.Sum, len(vals), sum)
	}
	if h.MinV != 0 || h.MaxV != 1<<20 {
		t.Errorf("min/max = %d/%d, want 0/%d", h.MinV, h.MaxV, 1<<20)
	}
	var bsum uint64
	for _, n := range h.Buckets {
		bsum += n
	}
	if bsum != h.Count {
		t.Errorf("bucket sum %d != count %d", bsum, h.Count)
	}
	if q := h.Quantile(1.0); q != h.MaxV {
		t.Errorf("Quantile(1.0) = %d, want max %d", q, h.MaxV)
	}

	// Splitting the observations across two histograms and merging
	// must reproduce the single-histogram state.
	var a, b obs.Histogram
	for i, v := range vals {
		if i%2 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(&b)
	if a != h {
		t.Errorf("merged histogram %+v != direct %+v", a, h)
	}
}
