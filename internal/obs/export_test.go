package obs_test

import (
	"bytes"
	"encoding/json"
	"testing"

	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// fullTraceFile extends the shared traceFile shape with the otherData
// header the model-identity satellite writes.
type fullTraceFile struct {
	TraceEvents []traceEvent   `json:"traceEvents"`
	OtherData   map[string]any `json:"otherData"`
}

// TestTraceCountersAndMetadata drives cross-node traffic on a grouped
// fabric and checks the exported trace carries the three per-NIC
// counter tracks, the per-run run_metadata record, and the recorder's
// model identity in otherData.
func TestTraceCountersAndMetadata(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true})
	rec.SetModelMeta(obs.ModelMeta{
		TuningVersion:      7,
		TuningFabric:       "test-fabric",
		TuningCalibratedAt: "2026-01-01T00:00:00Z",
		ChunkBytes:         256,
	})
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 4, TopoSpec: "grouped:2", Deterministic: true, Obs: rec})
	defer rt.Close()
	err := rt.Run(func(pe *xbrtime.PE) error {
		const nelems = 16
		w := uint64(xbrtime.TypeLong.Width)
		dest, err := pe.Malloc(nelems * w)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(nelems * w)
		if err != nil {
			return err
		}
		// One intra-node put (rank^1 shares the node on grouped:2) and
		// one inter-node put (rank+2 mod 4 is on the other node).
		if err := pe.Put(xbrtime.TypeLong, dest, src, nelems, 1, pe.MyPE()^1); err != nil {
			return err
		}
		if err := pe.Put(xbrtime.TypeLong, dest, src, nelems, 1, (pe.MyPE()+2)%4); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf fullTraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("exported trace is not valid JSON: %v", err)
	}

	if got := tf.OtherData["tool"]; got != "xbgas-bench" {
		t.Errorf("otherData tool = %v", got)
	}
	if got := tf.OtherData["tuning_version"]; got != float64(7) {
		t.Errorf("otherData tuning_version = %v, want 7", got)
	}
	if got := tf.OtherData["tuning_fabric"]; got != "test-fabric" {
		t.Errorf("otherData tuning_fabric = %v", got)
	}
	if got := tf.OtherData["chunk_bytes"]; got != float64(256) {
		t.Errorf("otherData chunk_bytes = %v, want 256", got)
	}

	var haveRunMeta bool
	counterNames := map[string]bool{}
	counterSeries := map[string]map[string]bool{}
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "run_metadata":
			haveRunMeta = true
			if got := ev.Args["pes"]; got != float64(4) {
				t.Errorf("run_metadata pes = %v, want 4", got)
			}
			if got := ev.Args["topo"]; got != "grouped:2" {
				t.Errorf("run_metadata topo = %v, want grouped:2", got)
			}
			if got := ev.Args["deterministic"]; got != true {
				t.Errorf("run_metadata deterministic = %v, want true", got)
			}
		case ev.Ph == "C":
			counterNames[ev.Name] = true
			if counterSeries[ev.Name] == nil {
				counterSeries[ev.Name] = map[string]bool{}
			}
			for k := range ev.Args {
				counterSeries[ev.Name][k] = true
			}
		}
	}
	if !haveRunMeta {
		t.Error("trace has no run_metadata record")
	}
	for _, want := range []string{"NIC 0 queue", "NIC 0 stall", "NIC 0 load"} {
		if !counterNames[want] {
			t.Errorf("trace has no %q counter events; counters seen: %v", want, counterNames)
		}
	}
	// The stall and load counters are split by link class.
	for _, name := range []string{"NIC 0 stall", "NIC 0 load"} {
		if s := counterSeries[name]; !s["intra"] || !s["inter"] {
			t.Errorf("%q series = %v, want intra+inter", name, s)
		}
	}
}

// TestRunMetaNilSafe pins the nil-safety of the Run metadata accessors
// that the runtime calls unconditionally.
func TestRunMetaNilSafe(t *testing.T) {
	var run *obs.Run
	run.SetMeta(obs.RunMeta{PEs: 3})
	if got := run.Meta(); got != (obs.RunMeta{}) {
		t.Errorf("nil run Meta = %+v", got)
	}
	if run.StepLog(0) != nil {
		t.Error("nil run StepLog != nil")
	}
	if run.FabricCounters(0) != nil {
		t.Error("nil run FabricCounters != nil")
	}
}
