package obs

import (
	"fmt"
	"sync"
)

// Options selects which halves of the observability layer are live.
// Trace collects span events on tracks (for the timeline exporters);
// Metrics maintains counters and latency histograms. Either may be
// enabled independently: tracing costs memory proportional to the
// event count, metrics cost O(1) memory per PE.
type Options struct {
	Trace   bool
	Metrics bool
}

// Recorder is the root of the observability layer. One Recorder can
// observe several simulated clusters in sequence (a benchmark sweep
// attaches one Run per PE count); each Attach call registers a new Run
// with its own Perfetto process ID.
//
// Attach takes a mutex; everything on the hot path goes through the
// per-Run tracks and metrics, which are lock-free for their owners.
type Recorder struct {
	opts Options

	mu   sync.Mutex
	runs []*Run
	meta ModelMeta
}

// ModelMeta describes the cost-model configuration in effect while the
// recorder observed its runs. It is embedded in the exported trace
// header so analyzers (tools/tracelens) can refuse a trace whose model
// no longer matches the tuning table they load.
type ModelMeta struct {
	TuningVersion      int    `json:"tuning_version"`
	TuningFabric       string `json:"tuning_fabric,omitempty"`
	TuningCalibratedAt string `json:"tuning_calibrated_at,omitempty"`
	ChunkBytes         int    `json:"chunk_bytes"`
}

// SetModelMeta records the model configuration for the trace header.
// Call it once, before the trace is written; the CLI sets it from the
// loaded tuning table.
func (r *Recorder) SetModelMeta(m ModelMeta) {
	r.mu.Lock()
	r.meta = m
	r.mu.Unlock()
}

// ModelMeta returns the recorded model configuration.
func (r *Recorder) ModelMeta() ModelMeta {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.meta
}

// NewRecorder builds a recorder with the given options. A recorder
// with neither option enabled records nothing but is still safe to
// attach.
func NewRecorder(opts Options) *Recorder {
	return &Recorder{opts: opts}
}

// Options returns the recorder's enabled halves.
func (r *Recorder) Options() Options { return r.opts }

// Runs returns the attached runs in attach order. Callers must not
// race it against Attach.
func (r *Recorder) Runs() []*Run {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]*Run(nil), r.runs...)
}

// Run is the observability state of one simulated cluster: numPEs PE
// tracks (timeline rows), numPEs destination-NIC tracks for fabric
// stream bookings, and the matching metric sets. The zero Run is not
// useful; obtain one from Recorder.Attach.
type Run struct {
	rec   *Recorder
	pid   int
	label string
	npes  int

	peTracks    []*Track // nil entries when tracing is off
	fabTracks   []*Track // one per destination NIC, nil when tracing off
	fabCounters []*FabricCounters
	peSteps     []*StepLog // per-PE step logs, nil when tracing off
	peMet       []*PEMetrics
	fabMet      *FabricMetrics

	runMeta RunMeta
}

// RunMeta is the per-run header embedded in the exported trace: the
// cluster geometry the run simulated. The owning runtime fills it at
// construction.
type RunMeta struct {
	PEs           int    `json:"pes"`
	Topo          string `json:"topo"`
	Deterministic bool   `json:"deterministic"`
}

// SetMeta records the run's geometry for the trace header.
func (run *Run) SetMeta(m RunMeta) {
	if run == nil {
		return
	}
	run.runMeta = m
}

// Meta returns the run's recorded geometry.
func (run *Run) Meta() RunMeta {
	if run == nil {
		return RunMeta{}
	}
	return run.runMeta
}

// Attach registers a cluster of numPEs processing elements and returns
// its Run. label names the run in the exported timeline ("8 PEs",
// "gups"). Attach is called once per runtime construction, never on a
// hot path.
func (r *Recorder) Attach(label string, numPEs int) *Run {
	if numPEs < 0 {
		numPEs = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	run := &Run{
		rec:   r,
		pid:   len(r.runs) + 1,
		label: label,
		npes:  numPEs,
	}
	run.peTracks = make([]*Track, numPEs)
	run.fabTracks = make([]*Track, numPEs)
	run.peMet = make([]*PEMetrics, numPEs)
	if r.opts.Trace {
		run.fabCounters = make([]*FabricCounters, numPEs)
		run.peSteps = make([]*StepLog, numPEs)
		for i := 0; i < numPEs; i++ {
			run.peTracks[i] = &Track{pid: run.pid, tid: i, name: fmt.Sprintf("PE %d", i)}
			run.fabTracks[i] = &Track{pid: run.pid, tid: numPEs + i, name: fmt.Sprintf("NIC %d", i)}
			run.fabCounters[i] = &FabricCounters{
				Queue: &CounterTrack{pid: run.pid, name: fmt.Sprintf("NIC %d queue", i), s0: "cycles"},
				Stall: &CounterTrack{pid: run.pid, name: fmt.Sprintf("NIC %d stall", i), s0: "intra", s1: "inter"},
				Load:  &CounterTrack{pid: run.pid, name: fmt.Sprintf("NIC %d load", i), s0: "intra", s1: "inter"},
			}
			run.peSteps[i] = &StepLog{rank: i}
		}
	}
	if r.opts.Metrics {
		for i := 0; i < numPEs; i++ {
			run.peMet[i] = &PEMetrics{}
		}
		run.fabMet = &FabricMetrics{}
	}
	r.runs = append(r.runs, run)
	return run
}

// Label returns the run's display label.
func (run *Run) Label() string { return run.label }

// NumPEs returns the run's PE count.
func (run *Run) NumPEs() int { return run.npes }

// PETrack returns rank's span track, or nil when tracing is disabled.
func (run *Run) PETrack(rank int) *Track {
	if run == nil || rank < 0 || rank >= len(run.peTracks) {
		return nil
	}
	return run.peTracks[rank]
}

// FabricTrack returns the track of destination NIC dst, or nil when
// tracing is disabled.
func (run *Run) FabricTrack(dst int) *Track {
	if run == nil || dst < 0 || dst >= len(run.fabTracks) {
		return nil
	}
	return run.fabTracks[dst]
}

// FabricTracks returns the destination-NIC tracks indexed by node (nil
// when tracing is disabled).
func (run *Run) FabricTracks() []*Track {
	if run == nil || !run.rec.opts.Trace {
		return nil
	}
	return run.fabTracks
}

// StepLog returns rank's step log, or nil when tracing is disabled.
func (run *Run) StepLog(rank int) *StepLog {
	if run == nil || rank < 0 || rank >= len(run.peSteps) {
		return nil
	}
	return run.peSteps[rank]
}

// PEMetrics returns rank's metric set, or nil when metrics are
// disabled.
func (run *Run) PEMetrics(rank int) *PEMetrics {
	if run == nil || rank < 0 || rank >= len(run.peMet) {
		return nil
	}
	return run.peMet[rank]
}

// FabricMetrics returns the run's fabric metric set, or nil when
// metrics are disabled.
func (run *Run) FabricMetrics() *FabricMetrics {
	if run == nil {
		return nil
	}
	return run.fabMet
}

// Args annotates a span or event with the simulation coordinates the
// trace viewers surface: the issuing virtual context, the peer it
// talked to, the collective tree round, and the element count. Peer
// and Round use -1 for "not applicable".
type Args struct {
	Rank   int    // issuing PE or node rank
	Peer   int    // partner rank (-1 when none)
	Round  int    // collective tree round (-1 outside a round)
	Nelems int    // elements moved (0 when meaningless)
	Label  string // compiled plan identity ("allreduce/ring[seg=4]"), "" when none
}

// NoPeer builds Args for a span with no partner or round.
func NoPeer(rank, nelems int) Args {
	return Args{Rank: rank, Peer: -1, Round: -1, Nelems: nelems}
}

// Event is one closed span on a track: [Start, End] in virtual cycles.
// Instant events have End == Start.
type Event struct {
	Name       string
	Start, End uint64 // virtual clock, cycles
	Args       Args
}

// Track is one timeline row: a PE or a destination NIC. Events are
// appended in Begin order; because the virtual clock of the owning
// context never moves backward, start timestamps are nondecreasing per
// owner. The exporter still sorts per track, so externally-locked
// multi-writer tracks (fabric NICs) are also safe.
type Track struct {
	pid, tid int
	name     string
	events   []Event
}

// Name returns the track's display name.
func (t *Track) Name() string { return t.name }

// Events returns the recorded events. The slice is the track's own
// backing store; callers must not mutate it and must not race it
// against recording.
func (t *Track) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// Complete records an already-closed span. It is the one-call form for
// instrumentation sites that know both endpoints (a transfer whose
// completion time the cost model just computed). A nil track records
// nothing.
func (t *Track) Complete(name string, start, end uint64, a Args) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Start: start, End: end, Args: a})
}

// Span is a reusable handle to an open span. The zero Span is inert:
// End on it is a no-op and Open reports false. Spans are values — store
// them in locals or reuse one variable across loop iterations.
type Span struct {
	t     *Track
	idx   int32
	open  bool
	start uint64
}

// Begin opens a span on t at virtual time now and returns its handle.
// A nil track still yields a live handle carrying the start time, so
// metric-only configurations can measure durations without recording
// events.
func Begin(t *Track, name string, now uint64, a Args) Span {
	s := Span{start: now, open: true}
	if t != nil {
		t.events = append(t.events, Event{Name: name, Start: now, End: now, Args: a})
		s.t = t
		s.idx = int32(len(t.events) - 1)
	}
	return s
}

// End closes the span at virtual time now. Closing an inert or
// already-owned-by-nil-track span only returns; the handle may be
// reused by assigning a fresh Begin result.
func End(s Span, now uint64) {
	if s.t != nil {
		s.t.events[s.idx].End = now
	}
}

// Open reports whether the span came from a live Begin (even one on a
// nil track, where only the start time is carried).
func (s Span) Open() bool { return s.open }

// StartCycle returns the virtual time the span was opened at.
func (s Span) StartCycle() uint64 { return s.start }
