package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// traceEvent is one object of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" is a complete span, ph "M" carries metadata such as process
// and thread names. Timestamps are microseconds; the virtual clock is
// cycles at the 1 GHz model clock (1 cycle = 1 ns), so ts = cycles/1e3
// with fractional microseconds preserving cycle resolution.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of a trace: Perfetto and
// chrome://tracing both accept it.
type traceFile struct {
	TraceEvents     []traceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// cyclesToUs converts model cycles (1 GHz: 1 cycle = 1 ns) to the
// trace format's microseconds.
func cyclesToUs(c uint64) float64 { return float64(c) / 1e3 }

// appendTrackEvents emits one track: a thread_name metadata record,
// then the track's spans sorted by start cycle (stable, so a parent
// span opened before its children at the same timestamp stays first
// and the viewers nest them correctly).
func appendTrackEvents(out []traceEvent, t *Track) []traceEvent {
	if t == nil {
		return out
	}
	out = append(out, traceEvent{
		Name: "thread_name", Ph: "M", Pid: t.pid, Tid: t.tid,
		Args: map[string]any{"name": t.name},
	})
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for _, ev := range evs {
		dur := cyclesToUs(ev.End - ev.Start)
		args := map[string]any{
			"rank":        ev.Args.Rank,
			"start_cycle": ev.Start,
			"end_cycle":   ev.End,
		}
		if ev.Args.Peer >= 0 {
			args["peer"] = ev.Args.Peer
		}
		if ev.Args.Round >= 0 {
			args["round"] = ev.Args.Round
		}
		if ev.Args.Nelems > 0 {
			args["nelems"] = ev.Args.Nelems
		}
		out = append(out, traceEvent{
			Name: ev.Name, Ph: "X", Pid: t.pid, Tid: t.tid,
			Ts: cyclesToUs(ev.Start), Dur: &dur, Args: args,
		})
	}
	return out
}

// traceEventList flattens every attached run into trace-event records:
// per-run process metadata, then one timeline row per PE and one per
// destination NIC. Within each row, span timestamps are monotonically
// nondecreasing.
func (r *Recorder) traceEventList() []traceEvent {
	var out []traceEvent
	for _, run := range r.Runs() {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: run.pid,
			Args: map[string]any{"name": run.label},
		})
		for _, t := range run.peTracks {
			out = appendTrackEvents(out, t)
		}
		for _, t := range run.fabTracks {
			out = appendTrackEvents(out, t)
		}
	}
	return out
}

// WriteTrace writes the recorded timeline as Chrome trace-event JSON.
// The output loads directly in https://ui.perfetto.dev or
// chrome://tracing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	f := traceFile{
		TraceEvents:     r.traceEventList(),
		DisplayTimeUnit: "ns",
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteTraceFile writes the timeline to path, creating or truncating
// it.
func (r *Recorder) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close() //nolint:errcheck // write error wins
		return err
	}
	return f.Close()
}
