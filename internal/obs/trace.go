package obs

import (
	"encoding/json"
	"io"
	"os"
	"sort"
)

// traceEvent is one object of the Chrome trace-event format
// (https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU):
// ph "X" is a complete span, ph "M" carries metadata such as process
// and thread names. Timestamps are microseconds; the virtual clock is
// cycles at the 1 GHz model clock (1 cycle = 1 ns), so ts = cycles/1e3
// with fractional microseconds preserving cycle resolution.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// traceFile is the JSON object format of a trace: Perfetto and
// chrome://tracing both accept it. OtherData is the format's free-form
// global metadata object; this exporter uses it to make traces
// self-describing (model/tuning identity, tool name).
type traceFile struct {
	TraceEvents     []traceEvent   `json:"traceEvents"`
	DisplayTimeUnit string         `json:"displayTimeUnit"`
	OtherData       map[string]any `json:"otherData,omitempty"`
}

// cyclesToUs converts model cycles (1 GHz: 1 cycle = 1 ns) to the
// trace format's microseconds.
func cyclesToUs(c uint64) float64 { return float64(c) / 1e3 }

// appendTrackEvents emits one track: a thread_name metadata record,
// then the track's spans sorted by start cycle (stable, so a parent
// span opened before its children at the same timestamp stays first
// and the viewers nest them correctly).
func appendTrackEvents(out []traceEvent, t *Track) []traceEvent {
	if t == nil {
		return out
	}
	out = append(out, traceEvent{
		Name: "thread_name", Ph: "M", Pid: t.pid, Tid: t.tid,
		Args: map[string]any{"name": t.name},
	})
	evs := make([]Event, len(t.events))
	copy(evs, t.events)
	sort.SliceStable(evs, func(i, j int) bool { return evs[i].Start < evs[j].Start })
	for _, ev := range evs {
		dur := cyclesToUs(ev.End - ev.Start)
		args := map[string]any{
			"rank":        ev.Args.Rank,
			"start_cycle": ev.Start,
			"end_cycle":   ev.End,
		}
		if ev.Args.Peer >= 0 {
			args["peer"] = ev.Args.Peer
		}
		if ev.Args.Round >= 0 {
			args["round"] = ev.Args.Round
		}
		if ev.Args.Nelems > 0 {
			args["nelems"] = ev.Args.Nelems
		}
		if ev.Args.Label != "" {
			args["plan"] = ev.Args.Label
		}
		out = append(out, traceEvent{
			Name: ev.Name, Ph: "X", Pid: t.pid, Tid: t.tid,
			Ts: cyclesToUs(ev.Start), Dur: &dur, Args: args,
		})
	}
	return out
}

// appendCounterEvents emits one counter track as "C" events, sorted by
// timestamp (multi-writer NIC counters can record out of global clock
// order under free-running execution). Empty tracks emit nothing.
func appendCounterEvents(out []traceEvent, ct *CounterTrack) []traceEvent {
	if ct == nil || len(ct.samples) == 0 {
		return out
	}
	samples := make([]CounterSample, len(ct.samples))
	copy(samples, ct.samples)
	sort.SliceStable(samples, func(i, j int) bool { return samples[i].Ts < samples[j].Ts })
	for _, s := range samples {
		args := map[string]any{ct.s0: s.V0}
		if ct.s1 != "" {
			args[ct.s1] = s.V1
		}
		out = append(out, traceEvent{
			Name: ct.name, Ph: "C", Pid: ct.pid,
			Ts: cyclesToUs(s.Ts), Args: args,
		})
	}
	return out
}

// traceEventList flattens every attached run into trace-event records:
// per-run process metadata (including the run_metadata header record),
// then one timeline row per PE, one per destination NIC, and the
// per-NIC counter tracks. Within each row, span timestamps are
// monotonically nondecreasing.
func (r *Recorder) traceEventList() []traceEvent {
	var out []traceEvent
	for _, run := range r.Runs() {
		out = append(out, traceEvent{
			Name: "process_name", Ph: "M", Pid: run.pid,
			Args: map[string]any{"name": run.label},
		})
		out = append(out, traceEvent{
			Name: "run_metadata", Ph: "M", Pid: run.pid,
			Args: map[string]any{
				"pes":           run.runMeta.PEs,
				"topo":          run.runMeta.Topo,
				"deterministic": run.runMeta.Deterministic,
			},
		})
		for _, t := range run.peTracks {
			out = appendTrackEvents(out, t)
		}
		for _, t := range run.fabTracks {
			out = appendTrackEvents(out, t)
		}
		for _, fc := range run.fabCounters {
			if fc == nil {
				continue
			}
			out = appendCounterEvents(out, fc.Queue)
			out = appendCounterEvents(out, fc.Stall)
			out = appendCounterEvents(out, fc.Load)
		}
	}
	return out
}

// WriteTrace writes the recorded timeline as Chrome trace-event JSON.
// The output loads directly in https://ui.perfetto.dev or
// chrome://tracing.
func (r *Recorder) WriteTrace(w io.Writer) error {
	meta := r.ModelMeta()
	f := traceFile{
		TraceEvents:     r.traceEventList(),
		DisplayTimeUnit: "ns",
		OtherData: map[string]any{
			"tool":                 "xbgas-bench",
			"tuning_version":       meta.TuningVersion,
			"tuning_fabric":        meta.TuningFabric,
			"tuning_calibrated_at": meta.TuningCalibratedAt,
			"chunk_bytes":          meta.ChunkBytes,
		},
	}
	if f.TraceEvents == nil {
		f.TraceEvents = []traceEvent{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(f)
}

// WriteTraceFile writes the timeline to path, creating or truncating
// it.
func (r *Recorder) WriteTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := r.WriteTrace(f); err != nil {
		f.Close() //nolint:errcheck // write error wins
		return err
	}
	return f.Close()
}
