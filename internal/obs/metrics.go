package obs

import (
	"fmt"
	"math/bits"
	"strings"
	"sync"
)

// HistBuckets is the number of power-of-two latency buckets: bucket i
// counts observations in [2^i, 2^(i+1)), with bucket 0 also absorbing
// zero. The top bucket is open-ended; 2^27 cycles ≈ 134 ms of virtual
// time at the 1 GHz model clock, far beyond any single operation.
const HistBuckets = 28

// Counter is a monotonically increasing count owned by a single
// goroutine (or an external lock). Snapshots happen after the
// simulation quiesces.
type Counter struct{ v uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v += n }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v }

// Histogram is a fixed-bucket log2 latency distribution in cycles. The
// zero value is ready to use. Like Counter it is owned by a single
// goroutine or an external lock.
type Histogram struct {
	Buckets [HistBuckets]uint64
	Count   uint64
	Sum     uint64
	MinV    uint64
	MaxV    uint64
}

// bucketOf maps a cycle count to its bucket index.
func bucketOf(v uint64) int {
	if v == 0 {
		return 0
	}
	b := bits.Len64(v) - 1
	if b >= HistBuckets {
		return HistBuckets - 1
	}
	return b
}

// BucketLow returns the inclusive lower bound of bucket i.
func BucketLow(i int) uint64 {
	if i <= 0 {
		return 0
	}
	return 1 << uint(i)
}

// Observe records one latency sample.
func (h *Histogram) Observe(v uint64) {
	h.Buckets[bucketOf(v)]++
	if h.Count == 0 || v < h.MinV {
		h.MinV = v
	}
	if v > h.MaxV {
		h.MaxV = v
	}
	h.Count++
	h.Sum += v
}

// Merge folds o into h.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.Count == 0 {
		return
	}
	for i, n := range o.Buckets {
		h.Buckets[i] += n
	}
	if h.Count == 0 || o.MinV < h.MinV {
		h.MinV = o.MinV
	}
	if o.MaxV > h.MaxV {
		h.MaxV = o.MaxV
	}
	h.Count += o.Count
	h.Sum += o.Sum
}

// Mean returns the average observed latency.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Quantile returns an upper bound on the q-quantile (0 < q <= 1) from
// the bucket boundaries: the smallest bucket upper edge at or below
// which at least q of the mass lies, clamped to the observed maximum.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.Count == 0 {
		return 0
	}
	target := uint64(q * float64(h.Count))
	if target == 0 {
		target = 1
	}
	var seen uint64
	for i, n := range h.Buckets {
		seen += n
		if seen >= target {
			hi := BucketLow(i + 1)
			if hi == 0 || hi > h.MaxV {
				hi = h.MaxV
			}
			return hi
		}
	}
	return h.MaxV
}

// String renders a compact one-line summary.
func (h *Histogram) String() string {
	if h.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d min=%d mean=%.0f p50<=%d p99<=%d max=%d",
		h.Count, h.MinV, h.Mean(), h.Quantile(0.50), h.Quantile(0.99), h.MaxV)
}

// PEMetrics is the fixed registry of one PE's counters and latency
// histograms. Counters and their paired histograms stay in lockstep:
// every Observe on a latency histogram is preceded by exactly one Add
// on its counter, an invariant the exporter tests assert.
type PEMetrics struct {
	Puts        Counter
	Gets        Counter
	PutElems    Counter
	GetElems    Counter
	Barriers    Counter
	Collectives Counter
	Rounds      Counter

	PutLatency        Histogram // cycles from issue to last element arrival
	GetLatency        Histogram // cycles from issue to last element landed
	BarrierLatency    Histogram // cycles from arrival to release
	CollectiveLatency Histogram // cycles per collective call
	RoundLatency      Histogram // cycles per tree round (barrier included)
}

// Merge folds o into m (for cluster-wide snapshots).
func (m *PEMetrics) Merge(o *PEMetrics) {
	if o == nil {
		return
	}
	m.Puts.Add(o.Puts.Value())
	m.Gets.Add(o.Gets.Value())
	m.PutElems.Add(o.PutElems.Value())
	m.GetElems.Add(o.GetElems.Value())
	m.Barriers.Add(o.Barriers.Value())
	m.Collectives.Add(o.Collectives.Value())
	m.Rounds.Add(o.Rounds.Value())
	m.PutLatency.Merge(&o.PutLatency)
	m.GetLatency.Merge(&o.GetLatency)
	m.BarrierLatency.Merge(&o.BarrierLatency)
	m.CollectiveLatency.Merge(&o.CollectiveLatency)
	m.RoundLatency.Merge(&o.RoundLatency)
}

// NamedCounter pairs a registry name with a counter value.
type NamedCounter struct {
	Name  string
	Value uint64
}

// NamedHistogram pairs a registry name with a histogram.
type NamedHistogram struct {
	Name string
	Hist *Histogram
}

// Counters enumerates the registry's counters in stable order.
func (m *PEMetrics) Counters() []NamedCounter {
	return []NamedCounter{
		{"puts", m.Puts.Value()},
		{"gets", m.Gets.Value()},
		{"put_elems", m.PutElems.Value()},
		{"get_elems", m.GetElems.Value()},
		{"barriers", m.Barriers.Value()},
		{"collectives", m.Collectives.Value()},
		{"rounds", m.Rounds.Value()},
	}
}

// Histograms enumerates the registry's histograms in stable order.
func (m *PEMetrics) Histograms() []NamedHistogram {
	return []NamedHistogram{
		{"put_latency", &m.PutLatency},
		{"get_latency", &m.GetLatency},
		{"barrier_latency", &m.BarrierLatency},
		{"collective_latency", &m.CollectiveLatency},
		{"round_latency", &m.RoundLatency},
	}
}

// FabricMetrics aggregates stream bookings on the fabric side. Unlike
// PEMetrics it is written under the fabric's shard locks by many PE
// goroutines, so it carries its own mutex.
type FabricMetrics struct {
	mu          sync.Mutex
	Streams     Counter   // SendStream bookings
	Fetches     Counter   // FetchStream bookings
	StreamElems Counter   // elements across all streams
	StallCycles Counter   // total queueing delay across all bookings
	StreamStall Histogram // per-stream total stall cycles

	// Per-link-class traffic split, indexed by the fabric's link class
	// (0 = intra-node, 1 = inter-node; flat fabrics book everything as
	// inter).
	ClassMsgs  [2]Counter
	ClassBytes [2]Counter
	ClassStall [2]Counter
}

// ObserveStream records one stream booking: fetch distinguishes
// request/response streams from one-way sends.
func (fm *FabricMetrics) ObserveStream(fetch bool, elems int, stall uint64) {
	if fm == nil {
		return
	}
	fm.mu.Lock()
	if fetch {
		fm.Fetches.Add(1)
	} else {
		fm.Streams.Add(1)
	}
	fm.StreamElems.Add(uint64(elems))
	fm.StallCycles.Add(stall)
	fm.StreamStall.Observe(stall)
	fm.mu.Unlock()
}

// AddStall records queueing delay from a single-message Send booking.
func (fm *FabricMetrics) AddStall(stall uint64) {
	if fm == nil {
		return
	}
	fm.mu.Lock()
	fm.StallCycles.Add(stall)
	fm.mu.Unlock()
}

// AddClass folds one booking (or one whole stream) into the per-link-
// class split: cls is the fabric link class (0 intra, 1 inter).
func (fm *FabricMetrics) AddClass(cls int, msgs, bytes, stall uint64) {
	if fm == nil || cls < 0 || cls > 1 {
		return
	}
	fm.mu.Lock()
	fm.ClassMsgs[cls].Add(msgs)
	fm.ClassBytes[cls].Add(bytes)
	fm.ClassStall[cls].Add(stall)
	fm.mu.Unlock()
}

// classSnapshot copies the per-class split under the lock.
func (fm *FabricMetrics) classSnapshot() (msgs, bytes, stall [2]uint64) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	for c := 0; c < 2; c++ {
		msgs[c] = fm.ClassMsgs[c].Value()
		bytes[c] = fm.ClassBytes[c].Value()
		stall[c] = fm.ClassStall[c].Value()
	}
	return msgs, bytes, stall
}

// snapshot copies the fabric metrics under the lock.
func (fm *FabricMetrics) snapshot() (streams, fetches, elems, stall uint64, h Histogram) {
	fm.mu.Lock()
	defer fm.mu.Unlock()
	return fm.Streams.Value(), fm.Fetches.Value(), fm.StreamElems.Value(),
		fm.StallCycles.Value(), fm.StreamStall
}

// ClusterMetrics merges the run's per-PE metric sets into one snapshot.
// It returns nil when metrics are disabled.
func (run *Run) ClusterMetrics() *PEMetrics {
	if run == nil || run.rec == nil || !run.rec.opts.Metrics {
		return nil
	}
	total := &PEMetrics{}
	for _, m := range run.peMet {
		total.Merge(m)
	}
	return total
}

// MetricsReport renders every attached run's counters and histograms:
// per-PE counter rows, cluster-wide histogram summaries, and the
// fabric stream metrics.
func (r *Recorder) MetricsReport() string {
	var b strings.Builder
	if !r.opts.Metrics {
		b.WriteString("obs: metrics disabled\n")
		return b.String()
	}
	for _, run := range r.Runs() {
		fmt.Fprintf(&b, "metrics: run %q (%d PEs)\n", run.label, run.npes)
		fmt.Fprintf(&b, "%-4s %-10s %-10s %-10s %-10s %-9s %-12s %-8s\n",
			"PE", "puts", "putElems", "gets", "getElems", "barriers", "collectives", "rounds")
		for rank, m := range run.peMet {
			fmt.Fprintf(&b, "%-4d %-10d %-10d %-10d %-10d %-9d %-12d %-8d\n",
				rank, m.Puts.Value(), m.PutElems.Value(), m.Gets.Value(), m.GetElems.Value(),
				m.Barriers.Value(), m.Collectives.Value(), m.Rounds.Value())
		}
		if total := run.ClusterMetrics(); total != nil {
			b.WriteString("cluster latency histograms (cycles):\n")
			for _, nh := range total.Histograms() {
				fmt.Fprintf(&b, "  %-20s %s\n", nh.Name, nh.Hist.String())
			}
		}
		if run.fabMet != nil {
			streams, fetches, elems, stall, h := run.fabMet.snapshot()
			fmt.Fprintf(&b, "fabric: %d send streams, %d fetch streams, %d elements, %d stall cycles\n",
				streams, fetches, elems, stall)
			fmt.Fprintf(&b, "  %-20s %s\n", "stream_stall", h.String())
			cmsgs, cbytes, cstall := run.fabMet.classSnapshot()
			for c, name := range [2]string{"intra", "inter"} {
				fmt.Fprintf(&b, "  class %-14s msgs=%d bytes=%d stall=%d\n",
					name, cmsgs[c], cbytes[c], cstall[c])
			}
		}
	}
	return b.String()
}
