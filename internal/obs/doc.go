// Package obs is the simulator's observability layer: spans, counters,
// and latency histograms keyed to the *virtual* clock, with exporters
// for Chrome trace-event JSON (loadable in Perfetto or chrome://tracing)
// and plain-text metric reports.
//
// The paper's evaluation (§5) is entirely about where simulated cycles
// go — per-collective latency versus PE count — yet flat end-of-run
// counters cannot attribute cycles to individual binomial-tree rounds,
// fabric contention, or cache misses. This package provides that
// attribution: one span per collective call, one child span per tree
// round, one event per remote transfer, and one track per PE plus one
// per destination NIC in the exported timeline.
//
// # Design
//
// Everything hangs off a Recorder. A simulated cluster registers with
// Attach, which returns a Run holding per-PE tracks and metrics plus
// fabric-side tracks and metrics. Tracks collect Events (closed spans);
// the Span half of the API (Begin / End) exists so instrumentation
// sites can open a span, perform virtual-time work, and close it at the
// final clock value.
//
// The layer is strictly opt-in and free when disabled: a nil *Track and
// a nil *PEMetrics are valid receivers for every hot-path entry point,
// each method short-circuiting on a single pointer test, and the
// instrumented code paths allocate nothing when the recorder is absent
// (enforced by the overhead-guard tests in internal/xbrtime).
//
// # Threading
//
// A Track must only be appended to by one goroutine at a time: PE
// tracks are owned by the PE's goroutine, fabric NIC tracks are
// appended under the owning shard's lock. Exporters must run after the
// simulation has quiesced (Runtime.Run establishes the happens-before
// edge). FabricMetrics carries its own mutex because streams to one
// destination are issued by many PEs.
//
// See docs/OBSERVABILITY.md for the span model, the trace-event
// schema, and how to open a trace in Perfetto.
package obs
