package obs

// CounterSample is one point on a counter track: up to two series
// values at virtual time Ts.
type CounterSample struct {
	Ts     uint64
	V0, V1 float64
}

// CounterTrack is a Perfetto counter timeline ("C" events). A track
// carries one or two named series; two-series tracks render stacked in
// the viewers (intra vs inter link class). Like Track, a nil
// CounterTrack records nothing, so disabled tracing costs one pointer
// test at each sample site.
type CounterTrack struct {
	pid     int
	name    string
	s0, s1  string // series names; s1 == "" means single-series
	samples []CounterSample
}

// Sample appends a point. The fabric samples under its per-NIC shard
// lock, so appends are serialized per track.
func (ct *CounterTrack) Sample(ts uint64, v0, v1 float64) {
	if ct == nil {
		return
	}
	ct.samples = append(ct.samples, CounterSample{Ts: ts, V0: v0, V1: v1})
}

// Name returns the track's display name.
func (ct *CounterTrack) Name() string {
	if ct == nil {
		return ""
	}
	return ct.name
}

// Samples returns the recorded points (the track's own backing store;
// do not mutate).
func (ct *CounterTrack) Samples() []CounterSample {
	if ct == nil {
		return nil
	}
	return ct.samples
}

// FabricCounters is the per-destination-NIC set of counter tracks the
// fabric samples on every booking: the queueing delay the latest
// message saw, and cumulative stall cycles and payload bytes split by
// link class. On flat fabrics all traffic is network traffic and lands
// in the inter series.
type FabricCounters struct {
	Queue *CounterTrack // cycles of queueing delay, latest booking
	Stall *CounterTrack // cumulative stall cycles {intra, inter}
	Load  *CounterTrack // cumulative payload bytes {intra, inter}
}

// FabricCounters returns destination NIC dst's counter set, or nil
// when tracing is disabled.
func (run *Run) FabricCounters(dst int) *FabricCounters {
	if run == nil || dst < 0 || dst >= len(run.fabCounters) {
		return nil
	}
	return run.fabCounters[dst]
}
