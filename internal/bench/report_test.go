package bench

import (
	"fmt"
	"strings"
	"testing"

	"xbgas/internal/xbrtime"
)

// fastGUPS/fastIS keep report tests quick.
func fastGUPS() GUPSParams {
	p := DefaultGUPSParams()
	p.TableWords = 1 << 14
	p.UpdatesPerPE = 256
	return p
}

func fastIS() ISParams {
	p := DefaultISParams()
	p.TotalKeys = 1 << 11
	p.MaxKey = 1 << 7
	p.Iterations = 1
	return p
}

func TestTable1Report(t *testing.T) {
	var b strings.Builder
	if err := Table1(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"TYPENAME", "longdouble", "long double", "ptrdiff_t", "uint64_t"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q", want)
		}
	}
	if got := strings.Count(out, "\n"); got != 26 { // header x2 + 24 types
		t.Errorf("Table 1 has %d lines, want 26", got)
	}
}

func TestTable2Report(t *testing.T) {
	var b strings.Builder
	if err := Table2(&b); err != nil {
		t.Fatal(err)
	}
	// The paper's exact instance: log 0 -> vir 3 ... log 4 -> vir 0.
	for _, want := range []string{"n_pes=7, root=4", "       4         0", "       0         3"} {
		if !strings.Contains(b.String(), want) {
			t.Errorf("Table 2 missing %q:\n%s", want, b.String())
		}
	}
}

func TestFigureReports(t *testing.T) {
	var b strings.Builder
	if err := Figure1(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "e31") {
		t.Error("Figure 1 missing extended registers")
	}
	b.Reset()
	if err := Figure2(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "symmetric") || strings.Count(b.String(), "PE ") < 2 {
		t.Errorf("Figure 2 output:\n%s", b.String())
	}
	b.Reset()
	if err := Figure3(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "0->4") {
		t.Errorf("Figure 3 output:\n%s", b.String())
	}
}

func TestFigure4Report(t *testing.T) {
	var b strings.Builder
	if err := Figure4(&b, fastGUPS()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "GUPS") || !strings.Contains(out, "per-PE") {
		t.Errorf("Figure 4 output:\n%s", out)
	}
	// One row per sweep point.
	if lines := strings.Count(out, "\n"); lines < 6 {
		t.Errorf("Figure 4 too short:\n%s", out)
	}
}

func TestFigure5Report(t *testing.T) {
	var b strings.Builder
	if err := Figure5(&b, fastIS()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Integer Sort") {
		t.Errorf("Figure 5 output:\n%s", b.String())
	}
}

func TestCollectiveMicrobench(t *testing.T) {
	for _, op := range []CollectiveOp{OpBroadcast, OpReduce, OpScatter, OpGather, OpBarrier} {
		r, err := RunCollective(CollectiveSpec{Op: op, PEs: 4, Nelems: 16, Iters: 2})
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if r.Cycles == 0 {
			t.Errorf("%s: zero cycles", op)
		}
	}
	if _, err := RunCollective(CollectiveSpec{Op: "bogus", PEs: 2, Nelems: 1, Iters: 1}); err == nil {
		t.Error("unknown op must fail")
	}
	if _, err := RunCollective(CollectiveSpec{Op: OpBroadcast, PEs: 0}); err == nil {
		t.Error("zero PEs must fail")
	}
	if _, err := RunCollective(CollectiveSpec{Op: OpBroadcast, PEs: 2, Root: 5}); err == nil {
		t.Error("bad root must fail")
	}
}

func TestComparisonShowsXBGASAdvantage(t *testing.T) {
	var b strings.Builder
	if err := Comparison(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "speedup") {
		t.Fatalf("comparison output:\n%s", out)
	}
	// Every speedup row must favour xBGAS (value > 1).
	for _, line := range strings.Split(out, "\n") {
		if strings.HasSuffix(line, "x") && !strings.Contains(line, "speedup") {
			var frac float64
			fields := strings.Fields(line)
			if len(fields) < 4 {
				continue
			}
			if _, err := sscan(fields[len(fields)-1], &frac); err != nil {
				continue
			}
			if frac <= 1.0 {
				t.Errorf("xBGAS slower than message passing: %q", line)
			}
		}
	}
}

func sscan(s string, f *float64) (int, error) {
	s = strings.TrimSuffix(s, "x")
	var v float64
	n, err := fmtSscan(s, &v)
	*f = v
	return n, err
}

func TestAblationReports(t *testing.T) {
	for name, fn := range map[string]func(w *strings.Builder) error{
		"tree-vs-linear": func(w *strings.Builder) error { return AblationTreeVsLinear(w) },
		"message-size":   func(w *strings.Builder) error { return AblationMessageSize(w) },
		"topology":       func(w *strings.Builder) error { return AblationTopology(w) },
		"unroll":         func(w *strings.Builder) error { return AblationUnroll(w) },
		"root":           func(w *strings.Builder) error { return AblationRoot(w) },
		"olb":            func(w *strings.Builder) error { return AblationOLB(w) },
		"barrier":        func(w *strings.Builder) error { return AblationBarrier(w) },
		"prefetch":       func(w *strings.Builder) error { return AblationPrefetch(w) },
	} {
		var b strings.Builder
		if err := fn(&b); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(b.String()) < 40 {
			t.Errorf("%s: suspiciously short output:\n%s", name, b.String())
		}
	}
}

func TestUnrollAblationShowsBenefit(t *testing.T) {
	var b strings.Builder
	if err := AblationUnroll(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	// last two lines: unrolled then element-wise; element-wise slower.
	var unrolled, element uint64
	if _, err := fmtSscan(strings.Fields(lines[len(lines)-2])[len(strings.Fields(lines[len(lines)-2]))-1], &unrolled); err != nil {
		t.Fatal(err)
	}
	if _, err := fmtSscan(strings.Fields(lines[len(lines)-1])[len(strings.Fields(lines[len(lines)-1]))-1], &element); err != nil {
		t.Fatal(err)
	}
	if unrolled >= element {
		t.Errorf("unrolled (%d) should beat element-wise (%d)", unrolled, element)
	}
}

func TestOLBAblationShowsThrashing(t *testing.T) {
	var b strings.Builder
	if err := AblationOLB(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "256") || !strings.Contains(out, "1 ") {
		t.Errorf("OLB ablation output:\n%s", out)
	}
}

func TestTopologyAblationOrders(t *testing.T) {
	// Denser topologies must not be slower than sparser ones for the
	// same collective.
	var b strings.Builder
	if err := AblationTopology(&b); err != nil {
		t.Fatal(err)
	}
	var full, ring float64
	for _, line := range strings.Split(b.String(), "\n") {
		f := strings.Fields(line)
		if len(f) < 2 {
			continue
		}
		switch f[0] {
		case "fully-connected":
			fmtSscan(f[1], &full) //nolint:errcheck
		case "ring":
			fmtSscan(f[1], &ring) //nolint:errcheck
		}
	}
	if full == 0 || ring == 0 {
		t.Fatalf("missing topology rows:\n%s", b.String())
	}
	if full > ring {
		t.Errorf("fully connected (%v) slower than ring (%v)", full, ring)
	}
}

func TestRuntimeOverrideInSpecs(t *testing.T) {
	// A spec carrying a runtime override must flow through.
	r, err := RunCollective(CollectiveSpec{
		Op: OpBroadcast, PEs: 4, Nelems: 8, Iters: 1,
		Runtime: xbrtime.Config{UnrollThreshold: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.PEs != 4 {
		t.Errorf("result PEs = %d", r.PEs)
	}
}

// fmtSscan avoids importing fmt at the top for a single helper.
func fmtSscan(s string, v interface{}) (int, error) { return fmt.Sscan(s, v) }

func TestTrafficMatrixReport(t *testing.T) {
	var b strings.Builder
	if err := TrafficMatrix(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, "src\\dst") || strings.Count(out, "\n") < 5 {
		t.Errorf("traffic matrix:\n%s", out)
	}
	// The diagonal must be zero (self-puts are local, never fabric).
	lines := strings.Split(strings.TrimSpace(out), "\n")
	row0 := strings.Fields(lines[2])
	if row0[1] != "0/0" {
		t.Errorf("diagonal not empty: %q", row0[1])
	}
}

func TestFigureCSV(t *testing.T) {
	var b strings.Builder
	if err := FigureCSV(&b, 4, fastGUPS(), fastIS()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.HasPrefix(out, "figure,pes,") || strings.Count(out, "\n") != 5 {
		t.Errorf("CSV output:\n%s", out)
	}
	if err := FigureCSV(&b, 3, fastGUPS(), fastIS()); err == nil {
		t.Error("figure 3 has no CSV form")
	}
}
