package bench

import (
	"fmt"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// ISParams configures the NAS Integer Sort benchmark: a bucketed
// counting sort of uniformly distributed integer keys, whose bucket
// histogram is combined with an allreduce built from the reduction and
// broadcast collectives (paper §5.2).
type ISParams struct {
	// TotalKeys is the number of keys across all PEs; it must be
	// divisible by the PE count.
	TotalKeys int
	// MaxKey bounds the key range [0, MaxKey); it must be divisible by
	// the PE count (one contiguous key range per PE).
	MaxKey int
	// Iterations repeats the ranking, NPB style (class B performs 10).
	Iterations int
	// Verify checks bucket ranges and global sortedness, mirroring the
	// benchmark's "detailed timing functionality enabled" full checks.
	Verify bool
	// GaussianKeys switches key generation from uniform to the NPB
	// average-of-four distribution. NPB's centre-heavy keys load the
	// middle PEs harder (deliberate imbalance); the paper's measured
	// per-PE consistency at 2-4 PEs matches uniform keys, so uniform is
	// the default and the distribution is an explicit knob.
	GaussianKeys bool
	// Algo forces the collective algorithm for the kernel's gather,
	// broadcast and reduce calls (the bench driver's -algo flag); the
	// zero value keeps the binomial tree the kernel has always used.
	Algo core.Algorithm
	// Chunk overrides collective message segmentation for the run (the
	// bench driver's -chunk flag): 0 = auto, >0 forces that segment
	// size in bytes, <0 disables segmentation.
	Chunk int
	// Runtime overrides the runtime configuration.
	Runtime xbrtime.Config
}

// DefaultISParams returns the scaled-down class-B-shaped configuration:
// the paper runs class B (2^25 keys, max key 2^21, 10 iterations); we
// keep the 16:1 keys-to-max-key ratio at 2^16 keys with 3 iterations so
// a full sweep simulates in seconds.
func DefaultISParams() ISParams {
	return ISParams{
		TotalKeys:  1 << 16,
		MaxKey:     1 << 12,
		Iterations: 3,
		Verify:     true,
	}
}

// RunIS executes the benchmark on nPEs processing elements. Each ranked
// key counts as one operation (the NPB Mop/s metric; Figure 5).
func RunIS(p ISParams, nPEs int) (Result, error) {
	if nPEs <= 0 || p.TotalKeys%nPEs != 0 || p.MaxKey%nPEs != 0 {
		return Result{}, fmt.Errorf("bench: %d keys / max %d not divisible by %d PEs",
			p.TotalKeys, p.MaxKey, nPEs)
	}
	if p.Iterations <= 0 {
		return Result{}, fmt.Errorf("bench: iterations must be positive")
	}
	if p.Chunk != 0 {
		core.SetChunkBytes(p.Chunk)
		defer core.SetChunkBytes(0)
	}
	cfg := p.Runtime
	cfg.NumPEs = nPEs
	rt, err := xbrtime.New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer rt.Close()

	keysPerPE := p.TotalKeys / nPEs
	rangePerPE := p.MaxKey / nPEs
	dt := xbrtime.TypeInt64
	const w = 8
	algo := p.Algo
	if algo == "" {
		algo = core.AlgoBinomial // the kernel's historical algorithm
	}

	var mu sync.Mutex
	var spans []uint64
	var totalErrors uint64

	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()

		// Symmetric buffers: local keys, receive buffer (worst case all
		// keys land on one PE), histogram exchange buffers.
		keys, err := pe.Malloc(uint64(keysPerPE) * w)
		if err != nil {
			return err
		}
		recv, err := pe.Malloc(uint64(p.TotalKeys) * w)
		if err != nil {
			return err
		}
		hist, err := pe.Malloc(uint64(nPEs) * w)
		if err != nil {
			return err
		}
		histAll, err := pe.Malloc(uint64(nPEs*nPEs) * w)
		if err != nil {
			return err
		}
		ranked, err := pe.PrivateAlloc(uint64(rangePerPE) * w)
		if err != nil {
			return err
		}
		sumOut, err := pe.PrivateAlloc(uint64(nPEs) * w)
		if err != nil {
			return err
		}
		stage, err := pe.PrivateAlloc(uint64(keysPerPE) * w)
		if err != nil {
			return err
		}

		ones := make([]int, nPEs)
		seq := make([]int, nPEs)
		blockDisp := make([]int, nPEs)
		for i := 0; i < nPEs; i++ {
			ones[i] = nPEs
			seq[i] = i * nPEs
			blockDisp[i] = i
		}

		// Untimed key generation (NPB excludes it from the timed
		// section): a deterministic LCG stream per PE. With GaussianKeys
		// the NPB average-of-four distribution is used (centre-heavy,
		// deliberately imbalanced); otherwise keys are uniform.
		x := uint64(me)*0x9E3779B97F4A7C15 + 0x123456789
		initial := make([]uint64, keysPerPE)
		for i := range initial {
			if p.GaussianKeys {
				sum := uint64(0)
				for d := 0; d < 4; d++ {
					x = gupsLCG(x)
					sum += (x >> 17) % uint64(p.MaxKey)
				}
				initial[i] = sum / 4
			} else {
				x = gupsLCG(x)
				initial[i] = (x >> 17) % uint64(p.MaxKey)
			}
		}
		pe.PokeElems(dt, keys, initial)

		if err := pe.Barrier(); err != nil {
			return err
		}
		start := pe.Now()
		var errCount uint64

		for iter := 0; iter < p.Iterations; iter++ {
			// Phase 1: timed local histogram of keys per destination
			// bucket (one bucket per PE, contiguous key ranges).
			counts := make([]int, nPEs)
			for i := 0; i < keysPerPE; i++ {
				k := int(int64(pe.ReadElem(dt, keys+uint64(i)*w)))
				b := k / rangePerPE
				counts[b]++
				pe.Advance(2) // divide-and-count bookkeeping
			}
			for b := 0; b < nPEs; b++ {
				pe.WriteElem(dt, hist+uint64(b)*w, uint64(int64(counts[b])))
			}

			// Phase 2: exchange the histogram. The bucket totals come
			// from the reduction+broadcast allreduce (the collectives
			// the paper highlights); the per-source offsets come from a
			// gather+broadcast of the full count matrix.
			if err := core.GatherWith(algo, pe, dt, histAll, hist, ones, seq, nPEs*nPEs, 0); err != nil {
				return err
			}
			if err := core.BroadcastWith(algo, pe, dt, histAll, histAll, nPEs*nPEs, 1, 0); err != nil {
				return err
			}
			if err := core.ReduceWith(algo, pe, dt, core.OpSum, sumOut, hist, nPEs, 1, 0); err != nil {
				return err
			}
			if err := core.BroadcastWith(algo, pe, dt, hist, sumOut, nPEs, 1, 0); err != nil {
				return err
			}

			// My receive offset for keys from source PE s:
			// sum over earlier sources of their count for my bucket.
			offFrom := make([]int, nPEs)
			off := 0
			for s := 0; s < nPEs; s++ {
				offFrom[s] = off
				off += int(int64(pe.Peek(dt, histAll+uint64(s*nPEs+me)*w)))
			}
			myTotal := off
			if got := int(int64(pe.Peek(dt, hist+uint64(me)*w))); got != myTotal {
				return fmt.Errorf("bench: IS allreduce disagrees with count matrix: %d vs %d",
					got, myTotal)
			}

			// Phase 3: key redistribution. Stage keys grouped by
			// destination bucket, then one non-blocking put per bucket
			// into the destination's receive buffer at the offset this
			// source owns there.
			stageOff := make([]int, nPEs)
			run := 0
			for b := 0; b < nPEs; b++ {
				stageOff[b] = run
				run += counts[b]
			}
			cursor := append([]int(nil), stageOff...)
			for i := 0; i < keysPerPE; i++ {
				k := int64(pe.ReadElem(dt, keys+uint64(i)*w))
				b := int(k) / rangePerPE
				pe.WriteElem(dt, stage+uint64(cursor[b])*w, uint64(k))
				cursor[b]++
				pe.Advance(1)
			}
			var handles []xbrtime.Handle
			for b := 0; b < nPEs; b++ {
				if counts[b] == 0 {
					continue
				}
				// Destination offset: where my contribution lands in
				// b's receive buffer.
				dstOff := 0
				for s := 0; s < me; s++ {
					dstOff += int(int64(pe.Peek(dt, histAll+uint64(s*nPEs+b)*w)))
				}
				dest := recv + uint64(dstOff)*w
				src := stage + uint64(stageOff[b])*w
				if b == me {
					for i := 0; i < counts[b]; i++ {
						v := pe.ReadElem(dt, src+uint64(i)*w)
						pe.WriteElem(dt, dest+uint64(i)*w, v)
					}
					continue
				}
				h, err := pe.PutNB(dt, dest, src, counts[b], 1, b)
				if err != nil {
					return err
				}
				handles = append(handles, h)
			}
			for _, h := range handles {
				pe.Wait(h)
			}
			if err := pe.Barrier(); err != nil {
				return err
			}

			// Phase 4: timed local ranking (counting sort over this
			// PE's key range).
			lo := me * rangePerPE
			oor := 0 // out-of-range keys this iteration
			for r := 0; r < rangePerPE; r++ {
				pe.WriteElem(dt, ranked+uint64(r)*w, 0)
			}
			for i := 0; i < myTotal; i++ {
				k := int(int64(pe.ReadElem(dt, recv+uint64(i)*w)))
				if k < lo || k >= lo+rangePerPE {
					oor++
					continue
				}
				r := k - lo
				c := pe.ReadElem(dt, ranked+uint64(r)*w)
				pe.WriteElem(dt, ranked+uint64(r)*w, c+1)
				pe.Advance(1)
			}
			// Prefix-sum the counts into rank offsets (NPB IS computes
			// the key ranks, not just the histogram).
			acc := uint64(0)
			for r := 0; r < rangePerPE; r++ {
				c := pe.ReadElem(dt, ranked+uint64(r)*w)
				pe.WriteElem(dt, ranked+uint64(r)*w, acc)
				acc += c
				pe.Advance(1)
			}
			// Phase 5: rank assignment — every received key is read
			// again and its rank written back next to it.
			for i := 0; i < myTotal; i++ {
				k := int(int64(pe.ReadElem(dt, recv+uint64(i)*w)))
				if k < lo || k >= lo+rangePerPE {
					continue
				}
				r := k - lo
				rank := pe.ReadElem(dt, ranked+uint64(r)*w)
				pe.WriteElem(dt, ranked+uint64(r)*w, rank+1)
				pe.WriteElem(dt, recv+uint64(i)*w, uint64(k)|(rank<<32))
				pe.Advance(2)
			}
			// Undo the in-place rank tagging so the next iteration (and
			// verification) sees clean keys.
			for i := 0; i < myTotal; i++ {
				k := pe.ReadElem(dt, recv+uint64(i)*w) & 0xFFFFFFFF
				pe.WriteElem(dt, recv+uint64(i)*w, k)
			}

			errCount += uint64(oor)
			if p.Verify {
				// Keys received must exactly refill the bucket: the
				// counting-sort total (the final prefix accumulator)
				// must match the allreduced bucket total.
				if int(acc) != myTotal-oor {
					errCount++
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
		}
		span := pe.Now() - start

		// Global verification: total received keys across PEs equals
		// TotalKeys (reduction), and every key landed in range.
		vbuf, err := pe.Malloc(w)
		if err != nil {
			return err
		}
		vout, err := pe.PrivateAlloc(w)
		if err != nil {
			return err
		}
		pe.Poke(dt, vbuf, errCount)
		if err := core.ReduceWith(algo, pe, dt, core.OpSum, vout, vbuf, 1, 1, 0); err != nil {
			return err
		}
		globalErr := uint64(0)
		if me == 0 {
			globalErr = pe.Peek(dt, vout)
		}

		mu.Lock()
		spans = append(spans, span)
		if me == 0 {
			totalErrors = globalErr
		}
		mu.Unlock()

		if err := pe.Free(keys); err != nil {
			return err
		}
		if err := pe.Free(recv); err != nil {
			return err
		}
		if err := pe.Free(hist); err != nil {
			return err
		}
		if err := pe.Free(histAll); err != nil {
			return err
		}
		return pe.Free(vbuf)
	})
	if err != nil {
		return Result{}, err
	}

	var makespan uint64
	for _, s := range spans {
		if s > makespan {
			makespan = s
		}
	}
	fab := rt.Machine().Fabric
	return Result{
		Name:             "IS",
		PEs:              nPEs,
		Ops:              uint64(p.TotalKeys) * uint64(p.Iterations),
		Cycles:           makespan,
		Verified:         totalErrors == 0,
		Errors:           totalErrors,
		Messages:         fab.Messages(),
		Bytes:            fab.Bytes(),
		ContentionCycles: fab.ContentionCycles(),
	}, nil
}
