package bench

import (
	"fmt"
	"io"

	"xbgas/internal/core"
	"xbgas/internal/fabric"
	"xbgas/internal/isa"
	"xbgas/internal/mem"
	"xbgas/internal/xbrtime"
)

// PESweep is the PE-count series of the paper's evaluation (§5.2:
// "Results for the two benchmarks are reported ... for simulations with
// 1, 2, 4, and 8 PEs").
var PESweep = []int{1, 2, 4, 8}

// Table1 prints the matched type names and types of paper Table 1.
func Table1(w io.Writer) error {
	fmt.Fprintln(w, "Table 1: xBGAS Matched Type Names & Types")
	fmt.Fprintf(w, "%-12s %s\n", "TYPENAME", "TYPE")
	for _, dt := range xbrtime.Types {
		fmt.Fprintf(w, "%-12s %s\n", dt.Name, dt.CName)
	}
	return nil
}

// Table2 prints the logical-to-virtual rank mapping of paper Table 2
// (7 PEs, root 4).
func Table2(w io.Writer) error {
	fmt.Fprintln(w, "Table 2:", "")
	fmt.Fprint(w, core.Table2Mapping(7, 4))
	return nil
}

// Figure1 prints the extended register file layout of paper Figure 1.
func Figure1(w io.Writer) error {
	fmt.Fprintln(w, "Figure 1: Extended xBGAS Register File")
	fmt.Fprint(w, isa.RegisterFileLayout())
	return nil
}

// Figure2 prints the PGAS memory model of paper Figure 2: two PEs with
// private segments and symmetric shared allocations.
func Figure2(w io.Writer) error {
	fmt.Fprintln(w, "Figure 2: PGAS Memory Model (2 PEs, symmetric shared segments)")
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2})
	if err != nil {
		return err
	}
	defer rt.Close()
	maps := make([]string, 2)
	err = rt.Run(func(pe *xbrtime.PE) error {
		if _, err := pe.Malloc(4096); err != nil {
			return err
		}
		if _, err := pe.Malloc(1024); err != nil {
			return err
		}
		if _, err := pe.PrivateAlloc(2048); err != nil {
			return err
		}
		maps[pe.MyPE()] = pe.SegmentMap()
		return nil
	})
	if err != nil {
		return err
	}
	for _, m := range maps {
		fmt.Fprint(w, m)
	}
	fmt.Fprintln(w, "Shared allocations sit at identical offsets on both PEs: the")
	fmt.Fprintln(w, "shared-data segment of each PE is fully symmetric with its peers.")
	return nil
}

// Figure3 prints the binomial tree with recursive halving of paper
// Figure 3 (8 PEs).
func Figure3(w io.Writer) error {
	fmt.Fprint(w, core.RenderTree(8))
	return nil
}

// Figure4 runs the GUPS sweep of paper Figure 4 and prints total and
// per-PE MOPS for 1, 2, 4, and 8 PEs.
func Figure4(w io.Writer, p GUPSParams) error {
	fmt.Fprintln(w, "Figure 4: GUPS Performance (millions of operations per second)")
	fmt.Fprintf(w, "%-5s %-12s %-12s %-10s %s\n", "PEs", "total MOPS", "per-PE MOPS", "verified", "contention cycles")
	for _, n := range PESweep {
		r, err := RunGUPS(p, n)
		if err != nil {
			return fmt.Errorf("GUPS with %d PEs: %w", n, err)
		}
		fmt.Fprintf(w, "%-5d %-12.3f %-12.3f %-10v %d\n",
			n, r.TotalMOPS(), r.PerPEMOPS(), r.Verified, r.ContentionCycles)
	}
	return nil
}

// Figure5 runs the Integer Sort sweep of paper Figure 5 and prints
// total and per-PE MOPS for 1, 2, 4, and 8 PEs.
func Figure5(w io.Writer, p ISParams) error {
	fmt.Fprintln(w, "Figure 5: Integer Sort Performance (millions of operations per second)")
	fmt.Fprintf(w, "%-5s %-12s %-12s %-10s %s\n", "PEs", "total MOPS", "per-PE MOPS", "verified", "contention cycles")
	for _, n := range PESweep {
		r, err := RunIS(p, n)
		if err != nil {
			return fmt.Errorf("IS with %d PEs: %w", n, err)
		}
		fmt.Fprintf(w, "%-5d %-12.3f %-12.3f %-10v %d\n",
			n, r.TotalMOPS(), r.PerPEMOPS(), r.Verified, r.ContentionCycles)
	}
	return nil
}

// Comparison contrasts the xBGAS one-sided transport against a
// message-passing-style transport (§3.1/§4.7): the same binomial-tree
// collectives run over both fabric cost models.
func Comparison(w io.Writer) error {
	fmt.Fprintln(w, "Transport comparison: xBGAS one-sided vs message-passing cost model")
	fmt.Fprintln(w, "(binomial-tree collectives, 8 PEs, cycles per invocation)")
	fmt.Fprintf(w, "%-10s %-8s %-15s %-15s %s\n", "op", "nelems", "xBGAS cycles", "msg-pass cycles", "speedup")
	const iters = 10
	for _, op := range []CollectiveOp{OpBroadcast, OpReduce, OpBarrier} {
		for _, nelems := range []int{1, 16, 256} {
			if op == OpBarrier && nelems != 1 {
				continue
			}
			var lat [2]float64
			for i, fc := range []fabric.Config{fabric.DefaultConfig(), fabric.MessageConfig()} {
				r, err := RunCollective(CollectiveSpec{
					Op: op, PEs: 8, Nelems: nelems, Iters: iters,
					Algo:    core.AlgoBinomial,
					Runtime: xbrtime.Config{Fabric: fc},
				})
				if err != nil {
					return err
				}
				lat[i] = LatencyCycles(r, iters)
			}
			fmt.Fprintf(w, "%-10s %-8d %-15.0f %-15.0f %.2fx\n",
				op, nelems, lat[0], lat[1], lat[1]/lat[0])
		}
	}
	fmt.Fprintln(w, "\nThe xBGAS model wins on every row: user-space remote loads and")
	fmt.Fprintln(w, "stores avoid the injection and matching overheads of two-sided")
	fmt.Fprintln(w, "message passing (paper §3.1).")
	return nil
}

// AblationTreeVsLinear compares the binomial tree against the flat
// linear baseline across PE counts (§4.1–4.2).
func AblationTreeVsLinear(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: binomial tree vs linear broadcast (cycles per invocation, 64 elems)")
	fmt.Fprintf(w, "%-5s %-15s %-15s %s\n", "PEs", "binomial", "linear", "tree speedup")
	const iters = 10
	for _, n := range []int{2, 4, 8, 12} {
		var lat [2]float64
		for i, algo := range []core.Algorithm{core.AlgoBinomial, core.AlgoLinear} {
			r, err := RunCollective(CollectiveSpec{
				Op: OpBroadcast, PEs: n, Nelems: 64, Iters: iters, Algo: algo,
			})
			if err != nil {
				return err
			}
			lat[i] = LatencyCycles(r, iters)
		}
		fmt.Fprintf(w, "%-5d %-15.0f %-15.0f %.2fx\n", n, lat[0], lat[1], lat[1]/lat[0])
	}
	return nil
}

// AblationMessageSize sweeps the broadcast payload across all three
// algorithms (§4.2: trees win at small transaction sizes where latency
// dominates; the §7 large-message scatter+all-gather takes over past
// the crossover).
func AblationMessageSize(w io.Writer) error {
	const iters = 5
	algos := []core.Algorithm{core.AlgoBinomial, core.AlgoLinear, core.AlgoScatterAllgather}
	fabrics := []struct {
		name string
		cfg  fabric.Config
	}{
		{"shared central switch (paper's single-cluster fabric)", fabric.DefaultConfig()},
		{"full-bisection fabric (SwitchGap=0)", func() fabric.Config {
			c := fabric.DefaultConfig()
			c.SwitchGap = 0
			return c
		}()},
	}
	for _, fab := range fabrics {
		fmt.Fprintf(w, "Ablation: broadcast payload sweep, 8 PEs, %s (cycles per invocation)\n", fab.name)
		fmt.Fprintf(w, "%-8s %-14s %-14s %-18s %s\n",
			"nelems", "binomial", "linear", "scatter-allgather", "best")
		for _, nelems := range []int{1, 8, 64, 512, 4096, 16384} {
			lat := make([]float64, len(algos))
			for i, algo := range algos {
				r, err := RunCollective(CollectiveSpec{
					Op: OpBroadcast, PEs: 8, Nelems: nelems, Iters: iters, Algo: algo,
					Runtime: xbrtime.Config{Fabric: fab.cfg},
				})
				if err != nil {
					return err
				}
				lat[i] = LatencyCycles(r, iters)
			}
			best := 0
			for i := range lat {
				if lat[i] < lat[best] {
					best = i
				}
			}
			fmt.Fprintf(w, "%-8d %-14.0f %-14.0f %-18.0f %s\n",
				nelems, lat[0], lat[1], lat[2], algos[best])
		}
		fmt.Fprintln(w)
	}
	fmt.Fprintln(w, "On a single shared switch, total traffic decides and the binomial")
	fmt.Fprintln(w, "tree stays ahead at every size; scatter+all-gather's lower per-node")
	fmt.Fprintln(w, "load pays off once the fabric offers full bisection bandwidth.")
	return nil
}

// AblationTopology demonstrates topology independence (§4.2: "our
// collective library will perform effectively regardless of whether it
// is utilized on a torus or hypercube topology"). The spread between
// fully-connected and ring at small payloads is the per-hop latency the
// paper's §7 location-aware OLB optimisation would target; at large
// payloads pipelined element streams hide per-hop latency entirely and
// the topologies converge.
func AblationTopology(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: broadcast across topologies, 8 PEs (cycles per invocation)")
	fmt.Fprintf(w, "%-18s %-20s %s\n", "topology", "64 elems", "4096 elems")
	topos := []fabric.Topology{
		fabric.FullyConnected{N: 8},
		fabric.Ring{N: 8},
		fabric.Torus2D{W: 4, H: 2},
		fabric.Hypercube{Dim: 3},
	}
	for _, topo := range topos {
		var lat [2]float64
		for i, nelems := range []int{64, 4096} {
			iters := 10 / (i*4 + 1)
			r, err := RunCollective(CollectiveSpec{
				Op: OpBroadcast, PEs: 8, Nelems: nelems, Iters: iters,
				Algo:    core.AlgoBinomial,
				Runtime: xbrtime.Config{Topology: topo},
			})
			if err != nil {
				return err
			}
			lat[i] = LatencyCycles(r, iters)
		}
		fmt.Fprintf(w, "%-18s %-20.0f %.0f\n", topo.Name(), lat[0], lat[1])
	}
	return nil
}

// AblationUnroll measures the put/get loop-unrolling threshold of §3.3.
func AblationUnroll(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: put loop unrolling (256 x int64 to one peer, cycles)")
	fmt.Fprintf(w, "%-22s %s\n", "mode", "cycles")
	for _, mode := range []struct {
		name      string
		threshold int
	}{
		{"unrolled (default)", xbrtime.DefaultUnrollThreshold},
		{"element-wise", 1 << 30},
	} {
		rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2, UnrollThreshold: mode.threshold})
		if err != nil {
			return err
		}
		var cycles uint64
		err = rt.Run(func(pe *xbrtime.PE) error {
			buf, err := pe.Malloc(8 * 256)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				src, err := pe.PrivateAlloc(8 * 256)
				if err != nil {
					return err
				}
				start := pe.Now()
				if err := pe.PutInt64(buf, src, 256, 1, 1); err != nil {
					return err
				}
				cycles = pe.Now() - start
			}
			return nil
		})
		rt.Close()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-22s %d\n", mode.name, cycles)
	}
	return nil
}

// AblationRoot verifies that the virtual-rank remapping keeps non-zero
// roots as cheap as rank 0 (§4.3, Table 2).
func AblationRoot(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: broadcast root placement, 7 PEs, 64 elems (cycles)")
	fmt.Fprintf(w, "%-6s %s\n", "root", "cycles per invocation")
	const iters = 10
	for _, root := range []int{0, 3, 4, 6} {
		r, err := RunCollective(CollectiveSpec{
			Op: OpBroadcast, PEs: 7, Nelems: 64, Iters: iters,
			Root: root, Algo: core.AlgoBinomial,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%-6d %.0f\n", root, LatencyCycles(r, iters))
	}
	return nil
}

// TrafficMatrix runs a small GUPS at 4 PEs and prints the per-pair
// message matrix — GUPS's uniformly random updates must fill the
// off-diagonal uniformly, which makes this both an observability
// report and a sanity check of the workload.
func TrafficMatrix(w io.Writer) error {
	const nPEs = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		return err
	}
	defer rt.Close()
	err = rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8 * 64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		x := uint64(pe.MyPE()) * 0x9E3779B97F4A7C15
		for i := 0; i < 512; i++ {
			x = gupsLCG(x)
			target := int(x>>33) % pe.NumPEs()
			if target == pe.MyPE() {
				continue
			}
			if err := pe.Put(xbrtime.TypeUint64, buf, src, 1, 1, target); err != nil {
				return err
			}
		}
		return pe.Barrier()
	})
	if err != nil {
		return err
	}
	msgs, bytes := rt.Machine().Fabric.Traffic()
	fmt.Fprintln(w, "Traffic matrix: random one-sided puts, 4 PEs (messages / payload bytes)")
	fmt.Fprintf(w, "%-8s", "src\\dst")
	for d := 0; d < nPEs; d++ {
		fmt.Fprintf(w, " %12d", d)
	}
	fmt.Fprintln(w)
	for s := 0; s < nPEs; s++ {
		fmt.Fprintf(w, "%-8d", s)
		for d := 0; d < nPEs; d++ {
			fmt.Fprintf(w, " %5d/%-6d", msgs[s][d], bytes[s][d])
		}
		fmt.Fprintln(w)
	}
	return nil
}

// AblationBarrier compares the paper's simple centralised barrier
// against a dissemination barrier across PE counts. The barrier closes
// every round of every collective, so its cost scales everything.
func AblationBarrier(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: barrier algorithm (cycles per barrier)")
	fmt.Fprintf(w, "%-5s %-15s %-15s\n", "PEs", "central", "dissemination")
	const iters = 20
	for _, n := range []int{2, 4, 8, 12} {
		var lat [2]float64
		for i, algo := range []xbrtime.BarrierAlgorithm{xbrtime.BarrierCentral, xbrtime.BarrierDissemination} {
			r, err := RunCollective(CollectiveSpec{
				Op: OpBarrier, PEs: n, Nelems: 1, Iters: iters,
				Runtime: xbrtime.Config{Barrier: algo},
			})
			if err != nil {
				return err
			}
			lat[i] = LatencyCycles(r, iters)
		}
		fmt.Fprintf(w, "%-5d %-15.0f %-15.0f\n", n, lat[0], lat[1])
	}
	return nil
}

// MicroPointToPoint prints OSU-style put/get latency and bandwidth
// curves for the one-sided primitives everything else is built from.
func MicroPointToPoint(w io.Writer) error {
	fmt.Fprintln(w, "Point-to-point microbenchmarks (blocking put/get, 2 PEs)")
	fmt.Fprintf(w, "%-10s %-16s %-16s %-14s %s\n",
		"bytes", "put cycles", "get cycles", "put GB/s", "get GB/s")
	for _, nelems := range []int{1, 4, 16, 64, 256, 1024, 4096} {
		rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2})
		if err != nil {
			return err
		}
		var putCyc, getCyc uint64
		err = rt.Run(func(pe *xbrtime.PE) error {
			buf, err := pe.Malloc(uint64(nelems) * 8)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() != 0 {
				return nil
			}
			src, err := pe.PrivateAlloc(uint64(nelems) * 8)
			if err != nil {
				return err
			}
			start := pe.Now()
			if err := pe.PutInt64(buf, src, nelems, 1, 1); err != nil {
				return err
			}
			putCyc = pe.Now() - start
			start = pe.Now()
			if err := pe.GetInt64(src, buf, nelems, 1, 1); err != nil {
				return err
			}
			getCyc = pe.Now() - start
			return nil
		})
		rt.Close()
		if err != nil {
			return err
		}
		bytes := float64(nelems * 8)
		fmt.Fprintf(w, "%-10d %-16d %-16d %-14.3f %.3f\n",
			nelems*8, putCyc, getCyc, bytes/float64(putCyc), bytes/float64(getCyc))
	}
	return nil
}

// AblationPrefetch toggles the optional next-line stream prefetcher:
// it should accelerate Integer Sort's streaming phases and leave GUPS's
// random access untouched — workload-dependence in one table.
func AblationPrefetch(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: stream prefetcher (4 PEs, total MOPS)")
	fmt.Fprintf(w, "%-10s %-12s %-12s %s\n", "workload", "baseline", "prefetch", "speedup")
	memPF := mem.DefaultConfig()
	memPF.Prefetch = true

	gp := DefaultGUPSParams()
	gp.TableWords = 1 << 18
	gp.UpdatesPerPE = 1024
	gBase, err := RunGUPS(gp, 4)
	if err != nil {
		return err
	}
	gp.Runtime = xbrtime.Config{Mem: memPF}
	gPF, err := RunGUPS(gp, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-12.3f %-12.3f %.2fx\n", "GUPS",
		gBase.TotalMOPS(), gPF.TotalMOPS(), gPF.TotalMOPS()/gBase.TotalMOPS())

	ip := DefaultISParams()
	ip.TotalKeys = 1 << 14
	ip.MaxKey = 1 << 10
	ip.Iterations = 2
	iBase, err := RunIS(ip, 4)
	if err != nil {
		return err
	}
	ip.Runtime = xbrtime.Config{Mem: memPF}
	iPF, err := RunIS(ip, 4)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%-10s %-12.3f %-12.3f %.2fx\n", "IS",
		iBase.TotalMOPS(), iPF.TotalMOPS(), iPF.TotalMOPS()/iBase.TotalMOPS())
	return nil
}

// AblationOLB contrasts a full-size OLB translation cache against a
// thrashing single-entry one (§3.2).
func AblationOLB(w io.Writer) error {
	fmt.Fprintln(w, "Ablation: OLB translation-cache behaviour (8 PEs, all-pairs gets)")
	fmt.Fprintf(w, "%-14s %-10s %-10s\n", "OLB entries", "hits", "misses")
	for _, entries := range []int{256, 1} {
		rt, err := xbrtime.New(xbrtime.Config{NumPEs: 8, OLBEntries: entries})
		if err != nil {
			return err
		}
		err = rt.Run(func(pe *xbrtime.PE) error {
			buf, err := pe.Malloc(8)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			dst, err := pe.PrivateAlloc(8)
			if err != nil {
				return err
			}
			for round := 0; round < 4; round++ {
				for p := 0; p < pe.NumPEs(); p++ {
					if p == pe.MyPE() {
						continue
					}
					if err := pe.GetInt64(dst, buf, 1, 1, p); err != nil {
						return err
					}
				}
			}
			return nil
		})
		if err != nil {
			return err
		}
		var hits, misses uint64
		for n := 0; n < 8; n++ {
			o := rt.Machine().Nodes[n].OLB
			hits += o.Hits()
			misses += o.Misses()
		}
		rt.Close()
		fmt.Fprintf(w, "%-14d %-10d %-10d\n", entries, hits, misses)
	}
	return nil
}

// FigureCSV writes a Figure 4 or 5 sweep as CSV for plotting pipelines:
// one row per PE count with total and per-PE MOPS.
func FigureCSV(w io.Writer, figure int, gups GUPSParams, is ISParams) error {
	fmt.Fprintln(w, "figure,pes,total_mops,per_pe_mops,verified,contention_cycles")
	for _, n := range PESweep {
		var r Result
		var err error
		switch figure {
		case 4:
			r, err = RunGUPS(gups, n)
		case 5:
			r, err = RunIS(is, n)
		default:
			return fmt.Errorf("bench: no CSV form for figure %d", figure)
		}
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "%d,%d,%.4f,%.4f,%v,%d\n",
			figure, n, r.TotalMOPS(), r.PerPEMOPS(), r.Verified, r.ContentionCycles)
	}
	return nil
}
