package bench

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"xbgas/internal/core"
)

// A small deterministic audit the structural assertions run against:
// one collective, two sizes, 4 PEs in lockstep, flat fabric only.
func smallAudit(t *testing.T) *AuditReport {
	t.Helper()
	rep, err := RunAudit(AuditOptions{
		PEs:   4,
		Topos: []string{""},
		Sizes: []int{64, 1024},
		Colls: []CollectiveOp{OpBroadcast},
	})
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestRunAuditStructure(t *testing.T) {
	rep := smallAudit(t)
	if !rep.Lockstep {
		t.Error("4-PE audit should run in lockstep")
	}
	if rep.PEs != 4 {
		t.Errorf("PEs = %d, want 4", rep.PEs)
	}
	if rep.TuningVersion != core.TuningVersion {
		t.Errorf("TuningVersion = %d, want %d", rep.TuningVersion, core.TuningVersion)
	}
	if len(rep.Cells) == 0 {
		t.Fatal("audit produced no cells")
	}
	algos := map[string]bool{}
	for _, c := range rep.Cells {
		algos[c.Algo] = true
		if c.Collective != "broadcast" || c.Topo != "flat" || c.PEs != 4 {
			t.Errorf("unexpected cell coordinates: %+v", c)
		}
		if c.Bytes != c.Nelems*8 {
			t.Errorf("cell bytes %d != nelems %d * 8", c.Bytes, c.Nelems)
		}
		if c.PredictedNs <= 0 || c.MeasuredCycles <= 0 {
			t.Errorf("cell has non-positive cost: %+v", c)
		}
	}
	// Flat audits must exclude the topology-scoped planners.
	if algos["hierarchical"] || algos["pat"] {
		t.Errorf("flat audit included topology-scoped planners: %v", algos)
	}
	if len(rep.Series) == 0 {
		t.Fatal("audit produced no series")
	}
	for _, s := range rep.Series {
		if s.Scale <= 0 {
			t.Errorf("series %s/%s has non-positive scale %v", s.Collective, s.Algo, s.Scale)
		}
	}
}

func TestRunAuditDeterministicMeasurement(t *testing.T) {
	// Lockstep cells are schedule-independent: two runs must measure
	// identical virtual cycles for every cell.
	a, b := smallAudit(t), smallAudit(t)
	if len(a.Cells) != len(b.Cells) {
		t.Fatalf("cell counts differ: %d vs %d", len(a.Cells), len(b.Cells))
	}
	for i := range a.Cells {
		if a.Cells[i].MeasuredCycles != b.Cells[i].MeasuredCycles {
			t.Errorf("cell %s/%s n=%d: measured %v then %v — lockstep audit not deterministic",
				a.Cells[i].Collective, a.Cells[i].Algo, a.Cells[i].Nelems,
				a.Cells[i].MeasuredCycles, b.Cells[i].MeasuredCycles)
		}
	}
}

func TestAuditScaledErrAndWorstCells(t *testing.T) {
	rep := smallAudit(t)
	// The geometric-mean scale makes per-series log errors sum to zero,
	// so scaled errors must straddle (or touch) zero within a series.
	for _, s := range rep.Series {
		var logSum float64
		n := 0
		for _, c := range rep.Cells {
			if c.Algo != s.Algo {
				continue
			}
			logSum += math.Log1p(c.ScaledErr)
			n++
		}
		if n == 0 {
			t.Fatalf("series %s/%s has no cells", s.Collective, s.Algo)
		}
		if math.Abs(logSum) > 1e-9 {
			t.Errorf("series %s: scaled log errors sum to %v, want 0", s.Algo, logSum)
		}
	}
	worst := rep.WorstCells(3)
	for i := 1; i < len(worst); i++ {
		if math.Abs(worst[i].ScaledErr) > math.Abs(worst[i-1].ScaledErr) {
			t.Error("WorstCells is not sorted by |scaled err|")
		}
	}
	if got := rep.MaxScaledErr(); len(worst) > 0 && got != math.Abs(worst[0].ScaledErr) {
		t.Errorf("MaxScaledErr %v != worst cell %v", got, math.Abs(worst[0].ScaledErr))
	}
}

// TestAuditReportRendering is the golden-structure test for the two
// report formats: every section marker of the markdown and every JSON
// field tracelens -audit depends on.
func TestAuditReportRendering(t *testing.T) {
	rep := smallAudit(t)
	md := rep.Markdown()
	for _, want := range []string{
		"# Cost-model audit: 4 PEs (lockstep)",
		"Tuning: version",
		"## Topology flat",
		"| collective | algo | bytes | predicted | measured (cyc) | raw err | scaled err |",
		"## Per-series α–β fits",
		"## Worst mispriced cells",
		"| broadcast | binomial |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back AuditReport
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("JSON does not round-trip: %v", err)
	}
	if len(back.Cells) != len(rep.Cells) || len(back.Series) != len(rep.Series) {
		t.Errorf("round-trip lost rows: %d/%d cells, %d/%d series",
			len(back.Cells), len(rep.Cells), len(back.Series), len(rep.Series))
	}
	if back.Cells[0].ScaledErr != rep.Cells[0].ScaledErr {
		t.Error("round-trip lost scaled_err")
	}
}

func TestDefaultGroupedSpec(t *testing.T) {
	cases := []struct {
		pes  int
		want string
	}{
		{8, "grouped:4"},
		{256, "grouped:16"},
		{2, ""},
		{4, "grouped:2"},
	}
	for _, c := range cases {
		if got := defaultGroupedSpec(c.pes); got != c.want {
			t.Errorf("defaultGroupedSpec(%d) = %q, want %q", c.pes, got, c.want)
		}
	}
}

func TestLinFit(t *testing.T) {
	// y = 3 + 2x exactly.
	a, b := linFit([][2]float64{{1, 5}, {2, 7}, {4, 11}})
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("linFit = (%v, %v), want (3, 2)", a, b)
	}
	if a, b := linFit(nil); a != 0 || b != 0 {
		t.Errorf("empty linFit = (%v, %v)", a, b)
	}
	// One distinct x: mean, slope 0.
	if a, b := linFit([][2]float64{{2, 4}, {2, 6}}); a != 5 || b != 0 {
		t.Errorf("degenerate linFit = (%v, %v), want (5, 0)", a, b)
	}
}
