package bench

import (
	"testing"
)

func TestGUPSRunsAndVerifies(t *testing.T) {
	p := DefaultGUPSParams()
	// A generous table keeps cross-PE read-modify-write collisions (the
	// HPCC-sanctioned race) negligible even under the race detector's
	// coarse scheduling.
	p.TableWords = 1 << 18
	p.UpdatesPerPE = 256
	for _, n := range []int{1, 2, 4} {
		r, err := RunGUPS(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !r.Verified {
			t.Errorf("n=%d: verification failed with %d errors", n, r.Errors)
		}
		if r.Ops != uint64(256*n) {
			t.Errorf("n=%d: ops = %d", n, r.Ops)
		}
		if r.Cycles == 0 || r.TotalMOPS() <= 0 {
			t.Errorf("n=%d: degenerate result %+v", n, r)
		}
		if n > 1 && r.Messages == 0 {
			t.Errorf("n=%d: no remote traffic recorded", n)
		}
	}
}

func TestGUPSParamValidation(t *testing.T) {
	p := DefaultGUPSParams()
	p.TableWords = 1000 // not a power of two
	if _, err := RunGUPS(p, 2); err == nil {
		t.Error("non-power-of-two table must fail")
	}
	p = DefaultGUPSParams()
	p.TableWords = 1 << 10
	if _, err := RunGUPS(p, 3); err == nil {
		t.Error("indivisible table must fail")
	}
	p = DefaultGUPSParams()
	p.Lookahead = 0
	if _, err := RunGUPS(p, 2); err == nil {
		t.Error("zero lookahead must fail")
	}
}

func TestISRunsAndVerifies(t *testing.T) {
	p := DefaultISParams()
	p.TotalKeys = 1 << 12
	p.MaxKey = 1 << 8
	p.Iterations = 2
	for _, n := range []int{1, 2, 4} {
		r, err := RunIS(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !r.Verified {
			t.Errorf("n=%d: verification failed with %d errors", n, r.Errors)
		}
		if r.Ops != uint64(p.TotalKeys*p.Iterations) {
			t.Errorf("n=%d: ops = %d", n, r.Ops)
		}
		if r.TotalMOPS() <= 0 {
			t.Errorf("n=%d: degenerate result %+v", n, r)
		}
	}
}

func TestISParamValidation(t *testing.T) {
	p := DefaultISParams()
	p.TotalKeys = 1001
	if _, err := RunIS(p, 2); err == nil {
		t.Error("indivisible keys must fail")
	}
	p = DefaultISParams()
	p.Iterations = 0
	if _, err := RunIS(p, 2); err == nil {
		t.Error("zero iterations must fail")
	}
}

func TestResultMetrics(t *testing.T) {
	r := Result{Name: "x", PEs: 4, Ops: 4_000_000, Cycles: 1_000_000_000}
	if got := r.Seconds(); got != 1.0 {
		t.Errorf("Seconds = %v", got)
	}
	if got := r.TotalMOPS(); got != 4 {
		t.Errorf("TotalMOPS = %v", got)
	}
	if got := r.PerPEMOPS(); got != 1 {
		t.Errorf("PerPEMOPS = %v", got)
	}
	if (Result{}).TotalMOPS() != 0 || (Result{}).PerPEMOPS() != 0 {
		t.Error("zero-value result must not divide by zero")
	}
}

func TestGUPSWeakScaling(t *testing.T) {
	p := DefaultGUPSParams()
	p.TableWords = 1 << 12 // per-PE under weak scaling
	p.UpdatesPerPE = 256
	p.Weak = true
	var prevTable uint64
	for _, n := range []int{1, 2, 4} {
		r, err := RunGUPS(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !r.Verified {
			t.Errorf("n=%d: weak-scaling verification failed", n)
		}
		_ = prevTable
	}
	// Weak scaling requires a power-of-two PE count for index masking.
	if _, err := RunGUPS(p, 3); err == nil {
		t.Error("weak scaling with 3 PEs must fail")
	}
}

func TestISGaussianKeysImbalance(t *testing.T) {
	// The NPB distribution loads the middle buckets: at 4 PEs the
	// imbalanced run must be slower per PE than the uniform one, and
	// still verify.
	p := DefaultISParams()
	p.TotalKeys = 1 << 13
	p.MaxKey = 1 << 9
	p.Iterations = 1
	uniform, err := RunIS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	p.GaussianKeys = true
	gaussian, err := RunIS(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !gaussian.Verified {
		t.Errorf("gaussian run failed verification: %d errors", gaussian.Errors)
	}
	if gaussian.TotalMOPS() >= uniform.TotalMOPS() {
		t.Errorf("imbalanced keys (%.2f MOPS) should be slower than uniform (%.2f MOPS)",
			gaussian.TotalMOPS(), uniform.TotalMOPS())
	}
}
