package bench

import (
	"runtime"
	"testing"

	"xbgas/internal/xbrtime"
)

// detKey is the full reproducibility signature of one run.
type detKey struct {
	Cycles, Ops, Errors               uint64
	Messages, Bytes, ContentionCycles uint64
}

func keyOf(r Result) detKey {
	return detKey{
		Cycles: r.Cycles, Ops: r.Ops, Errors: r.Errors,
		Messages: r.Messages, Bytes: r.Bytes, ContentionCycles: r.ContentionCycles,
	}
}

// TestDeterministicGUPSReproducible guards the reproducibility contract
// the perf work relies on: with Config.Deterministic set, identical
// configuration and seed produce identical cycle totals, message counts,
// and contention — across repeated runs and across host parallelism
// levels (GOMAXPROCS=1 vs many).
func TestDeterministicGUPSReproducible(t *testing.T) {
	p := GUPSParams{
		TableWords:   1 << 14,
		UpdatesPerPE: 512,
		Lookahead:    32,
		Verify:       true,
		Runtime:      xbrtime.Config{Deterministic: true},
	}
	const nPEs = 4

	run := func() detKey {
		r, err := RunGUPS(p, nPEs)
		if err != nil {
			t.Fatalf("RunGUPS: %v", err)
		}
		return keyOf(r)
	}

	want := run()
	for rep := 0; rep < 2; rep++ {
		if got := run(); got != want {
			t.Fatalf("rep %d diverged: got %+v want %+v", rep, got, want)
		}
	}

	old := runtime.GOMAXPROCS(1)
	got := run()
	runtime.GOMAXPROCS(old)
	if got != want {
		t.Fatalf("GOMAXPROCS=1 diverged: got %+v want %+v", got, want)
	}
}

// TestDeterministicCollectiveReproducible runs a collective under both
// barrier algorithms in deterministic mode and checks repeatability.
func TestDeterministicCollectiveReproducible(t *testing.T) {
	for _, algo := range []xbrtime.BarrierAlgorithm{
		xbrtime.BarrierCentral, xbrtime.BarrierDissemination,
	} {
		spec := CollectiveSpec{
			Op:     OpBroadcast,
			PEs:    8,
			Nelems: 256,
			Iters:  3,
			Runtime: xbrtime.Config{
				Deterministic: true,
				Barrier:       algo,
			},
		}
		first, err := RunCollective(spec)
		if err != nil {
			t.Fatalf("barrier=%v: %v", algo, err)
		}
		for rep := 0; rep < 2; rep++ {
			r, err := RunCollective(spec)
			if err != nil {
				t.Fatalf("barrier=%v rep %d: %v", algo, rep, err)
			}
			if keyOf(r) != keyOf(first) {
				t.Fatalf("barrier=%v rep %d diverged: got %+v want %+v",
					algo, rep, keyOf(r), keyOf(first))
			}
		}
	}
}
