package bench

import (
	"fmt"
	"io"
	"sync"
	"time"

	"xbgas/internal/core"
	"xbgas/internal/fabric"
	"xbgas/internal/xbrtime"
)

// Figure-style message-size sweeps for the rootless collectives: every
// registered algorithm (plus auto) across 64 B – 1 MiB payloads, the
// ablation behind the tuned crossover points in docs/PERF.md. Each
// point reports both the virtual-clock makespan (the paper's metric)
// and host wall time per invocation (what the tuning table's
// coefficients predict), with the planner auto resolved to alongside.

// SweepSizes are the payload points of a collective sweep, in elements
// of 8 bytes: 64 B to 1 MiB in powers of four.
var SweepSizes = []int{8, 32, 128, 512, 2048, 8192, 32768, 131072}

// SweepPEs are the PE counts of the sweep grid: the paper's powers of
// two plus its 12-core simulation environment.
var SweepPEs = []int{2, 4, 8, 12}

// SweepPoint is one measured cell of a collective sweep.
type SweepPoint struct {
	Op       CollectiveOp
	Algo     core.Algorithm
	Resolved core.Algorithm // what auto picked; == Algo for fixed algos
	Topo     string         // -topo spec; "" = flat
	PEs      int
	Nelems   int
	Iters    int
	// Cycles is the virtual-clock makespan per invocation; HostNs the
	// host wall time per invocation on the slowest PE.
	Cycles float64
	HostNs float64
}

// sweepAlgos returns the algorithms worth sweeping for a collective:
// auto plus every registered planner that implements it, minus the
// opt-in scatter-allgather (bisection-bandwidth assumption) and the
// degenerate direct planner.
func sweepAlgos(op CollectiveOp) []core.Algorithm {
	coll, ok := collOf(op)
	if !ok {
		return nil
	}
	algos := []core.Algorithm{core.AlgoAuto}
	for _, name := range core.PlannerNames() {
		a := core.Algorithm(name)
		if a == core.AlgoScatterAllgather || a == core.AlgoDirect {
			continue
		}
		if pl, ok := core.LookupPlanner(a); ok && pl.Supports(coll) {
			algos = append(algos, a)
		}
	}
	return algos
}

func collOf(op CollectiveOp) (core.Collective, bool) {
	for _, c := range core.Collectives() {
		if string(op) == c.String() {
			return c, true
		}
	}
	return 0, false
}

// SweepCollective measures one (collective, algorithm, PEs, nelems)
// cell on the fabric named by the -topo spec ("" = flat): iters
// invocations, timed on both clocks. The iteration count scales down
// with the payload so large points stay affordable.
func SweepCollective(op CollectiveOp, algo core.Algorithm, pes, nelems, iters int, topo string) (SweepPoint, error) {
	return sweepCell(op, algo, pes, nelems, iters, topo, false)
}

// sweepCell is the shared measurement core of SweepCollective and the
// cost-model auditor. deterministic runs the cell in lockstep mode so
// the measured makespan is schedule-independent (the auditor compares
// it against the cost model's prediction; a free-running measurement
// would add scheduler noise to the error).
func sweepCell(op CollectiveOp, algo core.Algorithm, pes, nelems, iters int, topo string, deterministic bool) (SweepPoint, error) {
	if iters <= 0 {
		iters = 1
	}
	coll, ok := collOf(op)
	if !ok {
		return SweepPoint{}, fmt.Errorf("bench: %q is not sweepable", op)
	}
	pt := SweepPoint{Op: op, Algo: algo, Topo: topo, PEs: pes, Nelems: nelems, Iters: iters}
	pt.Resolved = algo.SelectFor(coll, pes, nelems, 8, topoShape(topo, pes))

	rt, err := xbrtime.New(xbrtime.Config{NumPEs: pes, TopoSpec: topo, Deterministic: deterministic})
	if err != nil {
		return pt, err
	}
	defer rt.Close()
	dt := xbrtime.TypeInt64
	span := uint64(nelems+1) * 8

	msgs := make([]int, pes)
	disp := make([]int, pes)
	per, rem := nelems/pes, nelems%pes
	off := 0
	for i := range msgs {
		msgs[i] = per
		if i < rem {
			msgs[i]++
		}
		disp[i] = off
		off += msgs[i]
	}

	var mu sync.Mutex
	var makespan uint64
	var hostNs int64
	err = rt.Run(func(pe *xbrtime.PE) error {
		src, err := pe.Malloc(span)
		if err != nil {
			return err
		}
		dst, err := pe.Malloc(span)
		if err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(dt, src+uint64(i)*8, uint64(pe.MyPE()+i))
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		startV := pe.Now()
		startH := time.Now()
		for it := 0; it < iters; it++ {
			var err error
			switch op {
			case OpAllReduce:
				err = core.AllReduceWith(pe, algo, dt, core.OpSum, dst, src, nelems, 1)
			case OpAllGather:
				err = core.AllGatherWith(pe, algo, dt, dst, src, msgs, disp, nelems)
			case OpReduceScatter:
				err = core.ReduceScatterWith(pe, algo, dt, core.OpSum, dst, src, nelems)
			case OpBroadcast:
				err = core.BroadcastWith(algo, pe, dt, dst, src, nelems, 1, 0)
			case OpReduce:
				err = core.ReduceWith(algo, pe, dt, core.OpSum, dst, src, nelems, 1, 0)
			default:
				err = fmt.Errorf("bench: %q is not sweepable", op)
			}
			if err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		elapsedV := pe.Now() - startV
		elapsedH := time.Since(startH).Nanoseconds()
		mu.Lock()
		if elapsedV > makespan {
			makespan = elapsedV
		}
		if elapsedH > hostNs {
			hostNs = elapsedH
		}
		mu.Unlock()
		if err := pe.Free(dst); err != nil {
			return err
		}
		return pe.Free(src)
	})
	if err != nil {
		return pt, err
	}
	pt.Cycles = float64(makespan) / float64(iters)
	pt.HostNs = float64(hostNs) / float64(iters)
	return pt, nil
}

// topoShape resolves a -topo spec to the planner Shape it implies for
// pes PEs; a bad or empty spec is flat (New will reject bad specs
// properly — the shape only steers selection).
func topoShape(topo string, pes int) core.Shape {
	if topo == "" {
		return core.Shape{}
	}
	t, err := fabric.ParseTopo(topo, pes)
	if err != nil {
		return core.Shape{}
	}
	if g, ok := t.(fabric.NodeGrouper); ok {
		return core.Shape{PerNode: g.PEsPerNode()}
	}
	return core.Shape{}
}

// RunSweep measures the full grid for one collective: every sweepable
// algorithm × SweepPEs × SweepSizes, on the -topo spec's fabric.
func RunSweep(op CollectiveOp, topo string) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, pes := range SweepPEs {
		for _, nelems := range SweepSizes {
			// Small points finish in microseconds of host time; average
			// enough invocations that the host-side ratio column is
			// signal rather than scheduler noise.
			iters := 1
			if nelems <= 2048 {
				iters = 25
			}
			for _, algo := range sweepAlgos(op) {
				pt, err := SweepCollective(op, algo, pes, nelems, iters, topo)
				if err != nil {
					return nil, err
				}
				pts = append(pts, pt)
			}
		}
	}
	return pts, nil
}

// FigureSweep runs and prints the sweep for one collective as a
// figure-style table: one block per PE count, one row per payload,
// one column per algorithm (virtual cycles per invocation, the
// fastest marked), with auto's resolution and host-time ratio to the
// best fixed algorithm appended.
func FigureSweep(w io.Writer, op CollectiveOp, topo string) error {
	pts, err := RunSweep(op, topo)
	if err != nil {
		return err
	}
	algos := sweepAlgos(op)
	label := topo
	if label == "" {
		label = "flat"
	}
	fmt.Fprintf(w, "Figure: %s latency sweep on %s (virtual cycles/op; * = fastest fixed)\n", op, label)
	cell := map[string]SweepPoint{}
	key := func(a core.Algorithm, pes, nelems int) string {
		return fmt.Sprintf("%s/%d/%d", a, pes, nelems)
	}
	for _, pt := range pts {
		cell[key(pt.Algo, pt.PEs, pt.Nelems)] = pt
	}
	for _, pes := range SweepPEs {
		fmt.Fprintf(w, "\n%d PEs\n%12s", pes, "bytes")
		for _, a := range algos {
			fmt.Fprintf(w, " %14s", a)
		}
		fmt.Fprintf(w, " %16s %10s %10s\n", "auto resolved", "virt ratio", "host ratio")
		for _, nelems := range SweepSizes {
			fmt.Fprintf(w, "%12d", nelems*8)
			// Best fixed by the virtual clock (deterministic) picks the
			// asterisk and the headline ratio; host wall time gives a
			// second, noisier ratio for the tuned coefficients.
			bestVirt := SweepPoint{}
			bestHost := SweepPoint{}
			for _, a := range algos {
				if a == core.AlgoAuto {
					continue
				}
				pt := cell[key(a, pes, nelems)]
				if bestVirt.Algo == "" || pt.Cycles < bestVirt.Cycles {
					bestVirt = pt
				}
				if bestHost.Algo == "" || pt.HostNs < bestHost.HostNs {
					bestHost = pt
				}
			}
			for _, a := range algos {
				pt := cell[key(a, pes, nelems)]
				mark := " "
				if a == bestVirt.Algo {
					mark = "*"
				}
				fmt.Fprintf(w, " %13.0f%s", pt.Cycles, mark)
			}
			auto := cell[key(core.AlgoAuto, pes, nelems)]
			vratio, hratio := 0.0, 0.0
			if bestVirt.Cycles > 0 {
				vratio = auto.Cycles / bestVirt.Cycles
			}
			if bestHost.HostNs > 0 {
				hratio = auto.HostNs / bestHost.HostNs
			}
			fmt.Fprintf(w, " %16s %9.2fx %9.2fx\n", auto.Resolved, vratio, hratio)
		}
	}
	return nil
}
