package bench

import (
	"fmt"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// GUPSParams configures the GUPS (Giga-Updates Per Second /
// RandomAccess) benchmark: random read-xor-write updates to a table
// distributed evenly across the PEs.
type GUPSParams struct {
	// TableWords is the total table size in 64-bit words across all
	// PEs; it must be a power of two and divisible by the PE count.
	TableWords uint64
	// UpdatesPerPE is the number of updates each PE issues.
	UpdatesPerPE int
	// Lookahead is the update batching depth (HPCC permits batching up
	// to 1024 updates); remote updates within a batch overlap through
	// the non-blocking put/get forms.
	Lookahead int
	// Verify re-runs the update stream (xor is an involution) and
	// counts residual mismatches, "run with the verification features
	// enabled to guarantee correct execution" (paper §5.2). Like HPCC,
	// up to 1% of updates may be lost to racing read-modify-writes.
	Verify bool
	// Weak switches to weak scaling: TableWords is interpreted as the
	// per-PE table size, so the global table grows with the PE count
	// (the paper's sweep is strong scaling: a fixed global problem).
	Weak bool
	// Algo forces the collective algorithm for the kernel's broadcast
	// and reduce calls (the bench driver's -algo flag); the zero value
	// keeps the binomial tree the kernel has always used.
	Algo core.Algorithm
	// Chunk overrides collective message segmentation for the run (the
	// bench driver's -chunk flag): 0 = auto, >0 forces that segment
	// size in bytes, <0 disables segmentation.
	Chunk int
	// Runtime overrides the runtime configuration (NumPEs is set by
	// RunGUPS).
	Runtime xbrtime.Config
}

// DefaultGUPSParams returns the scaled-down evaluation configuration:
// a 16 MiB table (2^21 words) — double the paper's 8 MB L2, so the
// single-PE run is capacity-bound exactly as the full-size run is —
// with 2048 updates per PE, batched 64 deep.
func DefaultGUPSParams() GUPSParams {
	return GUPSParams{
		TableWords:   1 << 21,
		UpdatesPerPE: 2048,
		Lookahead:    64,
		Verify:       true,
	}
}

// gupsLCG advances the HPCC-style pseudo-random update stream.
func gupsLCG(x uint64) uint64 {
	return x*6364136223846793005 + 1442695040888963407
}

// gupsMix finalises an LCG state into a well-mixed index value
// (Murmur3-style). A power-of-two-modulus LCG has short-period low
// bits — and they never feel high-bit seed differences, so masking raw
// states would make every PE walk the same word sequence and collide on
// every update. Mixing folds the high bits down first.
func gupsMix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xFF51AFD7ED558CCD
	x ^= x >> 33
	x *= 0xC4CEB9FE1A85EC53
	x ^= x >> 33
	return x
}

// RunGUPS executes the benchmark on nPEs processing elements and
// reports updates as operations (Figure 4's metric, scaled to MOPS).
func RunGUPS(p GUPSParams, nPEs int) (Result, error) {
	if nPEs <= 0 {
		return Result{}, fmt.Errorf("bench: need at least one PE")
	}
	if p.Weak {
		// Per-PE size fixed: scale the global table with the PE count.
		// The power-of-two index mask requires a power-of-two PE count.
		if nPEs&(nPEs-1) != 0 {
			return Result{}, fmt.Errorf("bench: weak scaling needs a power-of-two PE count, got %d", nPEs)
		}
		p.TableWords *= uint64(nPEs)
	}
	if p.TableWords == 0 || p.TableWords&(p.TableWords-1) != 0 {
		return Result{}, fmt.Errorf("bench: table words %d must be a power of two", p.TableWords)
	}
	if p.TableWords%uint64(nPEs) != 0 {
		return Result{}, fmt.Errorf("bench: table of %d words not divisible by %d PEs",
			p.TableWords, nPEs)
	}
	if p.Lookahead <= 0 {
		return Result{}, fmt.Errorf("bench: lookahead must be positive")
	}
	if p.Chunk != 0 {
		core.SetChunkBytes(p.Chunk)
		defer core.SetChunkBytes(0)
	}
	cfg := p.Runtime
	cfg.NumPEs = nPEs
	rt, err := xbrtime.New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer rt.Close()

	perPE := p.TableWords / uint64(nPEs)
	dt := xbrtime.TypeUint64
	algo := p.Algo
	if algo == "" {
		algo = core.AlgoBinomial // the kernel's historical algorithm
	}

	var mu sync.Mutex
	var spans []uint64 // per-PE timed cycles
	var totalErrors uint64
	verified := true

	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		table, err := pe.Malloc(perPE * 8)
		if err != nil {
			return err
		}
		// Untimed initialisation: table[i] = global index (the HPCC
		// initial condition), outside the timed section.
		base := uint64(me) * perPE
		chunk := make([]uint64, perPE)
		for i := range chunk {
			chunk[i] = base + uint64(i)
		}
		pe.PokeElems(dt, table, chunk)

		// Broadcast the run parameters from PE 0 (the benchmark's
		// startup uses the broadcast collective, §5.2).
		param, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		seedSrc, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if me == 0 {
			pe.Poke(dt, seedSrc, 0x2545F4914F6CDD1D)
		}
		if err := core.BroadcastWith(algo, pe, dt, param, seedSrc, 1, 1, 0); err != nil {
			return err
		}
		seed := pe.Peek(dt, param)

		scratch, err := pe.PrivateAlloc(uint64(p.Lookahead) * 8)
		if err != nil {
			return err
		}

		if err := pe.Barrier(); err != nil {
			return err
		}
		start := pe.Now()

		runStream := func() error {
			x := gupsLCG(seed ^ uint64(me)<<32)
			type slot struct {
				owner int
				addr  uint64
				val   uint64
				h     xbrtime.Handle
			}
			pending := make([]slot, 0, p.Lookahead)
			flush := func() error {
				// Phase 2: all gets have landed; xor and put back.
				for i := range pending {
					pe.Wait(pending[i].h)
				}
				for i := range pending {
					s := &pending[i]
					cur := pe.ReadElem(dt, scratch+uint64(i)*8)
					pe.WriteElem(dt, scratch+uint64(i)*8, cur^s.val)
					pe.Advance(1) // xor ALU
					h, err := pe.PutNB(dt, s.addr, scratch+uint64(i)*8, 1, 1, s.owner)
					if err != nil {
						return err
					}
					s.h = h
				}
				for i := range pending {
					pe.Wait(pending[i].h)
				}
				pending = pending[:0]
				return nil
			}
			for u := 0; u < p.UpdatesPerPE; u++ {
				x = gupsLCG(x)
				idx := gupsMix(x) & (p.TableWords - 1)
				owner := int(idx / perPE)
				addr := table + (idx%perPE)*8
				pe.Advance(4) // index arithmetic
				if owner == me {
					v := pe.ReadElem(dt, addr)
					pe.Advance(1)
					pe.WriteElem(dt, addr, v^x)
					continue
				}
				i := len(pending)
				h, err := pe.GetNB(dt, scratch+uint64(i)*8, addr, 1, 1, owner)
				if err != nil {
					return err
				}
				pending = append(pending, slot{owner: owner, addr: addr, val: x, h: h})
				if len(pending) == p.Lookahead {
					if err := flush(); err != nil {
						return err
					}
				}
			}
			return flush()
		}

		if err := runStream(); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		span := pe.Now() - start

		// Aggregate the per-PE update counts with the reduction
		// collective (§5.2: GUPS uses reduction and broadcast).
		cnt, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		cntOut, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		pe.Poke(dt, cnt, uint64(p.UpdatesPerPE))
		if err := core.ReduceWith(algo, pe, dt, core.OpSum, cntOut, cnt, 1, 1, 0); err != nil {
			return err
		}
		if me == 0 {
			if got := pe.Peek(dt, cntOut); got != uint64(p.UpdatesPerPE)*uint64(nPEs) {
				return fmt.Errorf("bench: update-count reduction = %d", got)
			}
		}

		var errCount uint64
		if p.Verify {
			// Second pass restores the initial table (xor involution)...
			if err := runStream(); err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			// ...then every PE audits its own chunk functionally.
			pe.PeekElems(dt, table, chunk)
			for i, v := range chunk {
				if v != base+uint64(i) {
					errCount++
				}
			}
			pe.Poke(dt, cnt, errCount)
			if err := core.ReduceWith(algo, pe, dt, core.OpSum, cntOut, cnt, 1, 1, 0); err != nil {
				return err
			}
			if me == 0 {
				errCount = pe.Peek(dt, cntOut)
			}
		}

		mu.Lock()
		spans = append(spans, span)
		if me == 0 && p.Verify {
			totalErrors = errCount
			// HPCC tolerance: up to 1% of updates may race.
			if errCount > uint64(p.UpdatesPerPE)*uint64(nPEs)/100 {
				verified = false
			}
		}
		mu.Unlock()
		return pe.Free(table)
	})
	if err != nil {
		return Result{}, err
	}

	var makespan uint64
	for _, s := range spans {
		if s > makespan {
			makespan = s
		}
	}
	fab := rt.Machine().Fabric
	return Result{
		Name:             "GUPS",
		PEs:              nPEs,
		Ops:              uint64(p.UpdatesPerPE) * uint64(nPEs),
		Cycles:           makespan,
		Verified:         verified,
		Errors:           totalErrors,
		Messages:         fab.Messages(),
		Bytes:            fab.Bytes(),
		ContentionCycles: fab.ContentionCycles(),
	}, nil
}
