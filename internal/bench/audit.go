package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"

	"xbgas/internal/core"
)

// Cost-model accuracy auditor (xbgas-bench -audit): replay a grid of
// {collective, algorithm, size, topology} cells on the simulator,
// compare each measured virtual-clock makespan against what
// PlanCostShape predicted for the same plan, and report where the
// model is mispriced.
//
// The comparison has a unit subtlety the report must respect: the
// flat-shape coefficients (AlphaNs, BetaNsPerByte, ...) are calibrated
// in HOST nanoseconds — they price what the host pays to simulate a
// step, which is what AlgoAuto minimises on a flat fabric — while the
// per-link-class coefficients a grouped shape swaps in are calibrated
// on the VIRTUAL clock. Raw prediction/measurement ratios on flat
// fabrics therefore carry a systematic unit scale. Selection only
// needs relative order within a series, so the auditor fits one
// geometric-mean scale per {topo, collective, algorithm} series and
// reports both the raw relative error and the scale-normalised
// residual; the latter is the number that actually indicts the model.

// AuditSizes is the default payload grid, in 8-byte elements: one
// latency-bound point, one near the tuned crossovers, one
// bandwidth-bound.
var AuditSizes = []int{64, 1024, 16384}

// AuditCollectives is the default collective grid: the rooted
// broadcast plus the three rootless collectives with
// bandwidth-optimal planners, where mispricing moves selection.
var AuditCollectives = []CollectiveOp{OpBroadcast, OpAllReduce, OpAllGather, OpReduceScatter}

// auditLockstepMax is the largest PE count audited in deterministic
// lockstep mode; above it the serialised schedule is too slow and the
// audit falls back to free-running measurement (still virtual-clock,
// just admitting scheduler-dependent overlap).
const auditLockstepMax = 16

// AuditOptions parameterises RunAudit. Zero values take defaults.
type AuditOptions struct {
	PEs   int            // PE count; default 8
	Topos []string       // -topo specs; default {"", defaultGroupedSpec(PEs)}
	Sizes []int          // payloads in elements; default AuditSizes
	Colls []CollectiveOp // default AuditCollectives
}

// AuditCell is one audited grid point.
type AuditCell struct {
	Collective string `json:"collective"`
	Algo       string `json:"algo"`
	Topo       string `json:"topo"` // "flat" or the -topo spec
	PEs        int    `json:"pes"`
	Nelems     int    `json:"nelems"`
	Bytes      int    `json:"bytes"`
	// PredictedNs is PlanCostShape's price for the compiled plan;
	// MeasuredCycles the lockstep (or free-running) virtual makespan
	// per invocation; MeasuredHostNs the host wall time alongside.
	PredictedNs    float64 `json:"predicted_ns"`
	MeasuredCycles float64 `json:"measured_cycles"`
	MeasuredHostNs float64 `json:"measured_host_ns"`
	// RelErr is predicted/measured − 1 against the virtual clock, raw
	// (unit scale included); ScaledErr the same after the series'
	// geometric-mean scale, the model-quality number.
	RelErr    float64 `json:"rel_err"`
	ScaledErr float64 `json:"scaled_err"`
}

// AuditSeries summarises one {topo, collective, algo} size series:
// the fitted prediction→measurement scale and α–β linear fits of both
// sides over bytes, whose residual comparison localises mispricing to
// the latency or the bandwidth term.
type AuditSeries struct {
	Topo       string `json:"topo"`
	Collective string `json:"collective"`
	Algo       string `json:"algo"`
	// Scale is the geometric mean of measured/predicted over the
	// series: the unit conversion between the model's coefficients and
	// the virtual clock. (Geometric, not least-squares: a quadratic
	// fit is dominated by the largest cell and would hide the small
	// cells' shape error inside the scale.)
	Scale float64 `json:"scale"`
	// Measured and predicted α–β fits: cost ≈ Alpha + Beta·bytes,
	// least squares over the size grid. Predicted values are
	// pre-scale (model units).
	MeasAlphaCycles float64 `json:"meas_alpha_cycles"`
	MeasBetaPerByte float64 `json:"meas_beta_per_byte"`
	PredAlphaNs     float64 `json:"pred_alpha_ns"`
	PredBetaPerByte float64 `json:"pred_beta_per_byte"`
	// MaxScaledErr is the series' worst |ScaledErr|.
	MaxScaledErr float64 `json:"max_scaled_err"`
}

// AuditReport is the full -audit output: the model identity it was
// run against, every cell, and the per-series summaries.
type AuditReport struct {
	PEs           int    `json:"pes"`
	Lockstep      bool   `json:"lockstep"`
	TuningVersion int    `json:"tuning_version"`
	TuningFabric  string `json:"tuning_fabric"`
	CalibratedAt  string `json:"tuning_calibrated_at,omitempty"`
	ChunkBytes    int    `json:"chunk_bytes,omitempty"`

	Cells  []AuditCell   `json:"cells"`
	Series []AuditSeries `json:"series"`
}

// defaultGroupedSpec picks the grouped topology the audit pairs with
// the flat fabric: near-square nodes, P = 2^⌈log₂(n)/2⌉ PEs per node
// (grouped:4 at 8 PEs, grouped:16 at 256).
func defaultGroupedSpec(pes int) string {
	if pes < 4 {
		return ""
	}
	p := 1 << ((core.CeilLog2(pes) + 1) / 2)
	if p >= pes {
		p = pes / 2
	}
	return fmt.Sprintf("grouped:%d", p)
}

// auditAlgos returns the fixed algorithms audited for a collective on
// a flat or grouped fabric: every registered planner that implements
// it, minus the opt-in scatter-allgather and degenerate direct, and
// minus the topology-scoped planners on flat fabrics (auto never
// picks them there, so their flat pricing is untestable dead weight).
func auditAlgos(op CollectiveOp, grouped bool) []core.Algorithm {
	coll, ok := collOf(op)
	if !ok {
		return nil
	}
	var algos []core.Algorithm
	for _, name := range core.PlannerNames() {
		a := core.Algorithm(name)
		if a == core.AlgoScatterAllgather || a == core.AlgoDirect {
			continue
		}
		if !grouped && (a == core.AlgoHier || a == core.AlgoPAT) {
			continue
		}
		if pl, ok := core.LookupPlanner(a); ok && pl.Supports(coll) {
			algos = append(algos, a)
		}
	}
	return algos
}

// RunAudit measures the audit grid and assembles the report. PE
// counts up to auditLockstepMax run in deterministic lockstep, so the
// measured makespans are schedule-independent and the comparison is
// exactly reproducible.
func RunAudit(opt AuditOptions) (*AuditReport, error) {
	pes := opt.PEs
	if pes <= 0 {
		pes = 8
	}
	topos := opt.Topos
	if topos == nil {
		topos = []string{""}
		if g := defaultGroupedSpec(pes); g != "" {
			topos = append(topos, g)
		}
	}
	sizes := opt.Sizes
	if len(sizes) == 0 {
		sizes = AuditSizes
	}
	colls := opt.Colls
	if len(colls) == 0 {
		colls = AuditCollectives
	}
	lockstep := pes <= auditLockstepMax
	tn := core.CurrentTuning()
	rep := &AuditReport{
		PEs:           pes,
		Lockstep:      lockstep,
		TuningVersion: tn.Version,
		TuningFabric:  tn.Fabric,
		CalibratedAt:  tn.CalibratedAt,
		ChunkBytes:    core.ChunkBytes(),
	}

	const width = 8
	for _, topo := range topos {
		sh := topoShape(topo, pes)
		grouped := sh.PerNode > 0 && sh.PerNode < pes
		topoLabel := topo
		if topoLabel == "" {
			topoLabel = "flat"
		}
		for _, op := range colls {
			coll, _ := collOf(op)
			for _, algo := range auditAlgos(op, grouped) {
				for _, nelems := range sizes {
					seg := core.SelectSegments(coll, algo, pes, nelems, width)
					p, err := core.CompilePlanFor(coll, algo, pes, seg, sh)
					if err != nil || p == nil {
						// Planner declined this geometry (e.g. needs more
						// PEs); not a model error, just not a cell.
						continue
					}
					pred := core.PlanCostShape(p, tn, sh, nelems, width)
					iters := 1
					if nelems <= 1024 {
						// Small cells are cheap; average a few invocations
						// so one-off warmup (cold caches, first-touch) does
						// not masquerade as a latency-term error.
						iters = 4
					}
					pt, err := sweepCell(op, algo, pes, nelems, iters, topo, lockstep)
					if err != nil {
						return nil, fmt.Errorf("bench: audit %s/%s n=%d topo=%q: %w",
							op, algo, nelems, topoLabel, err)
					}
					cell := AuditCell{
						Collective:     string(op),
						Algo:           string(algo),
						Topo:           topoLabel,
						PEs:            pes,
						Nelems:         nelems,
						Bytes:          nelems * width,
						PredictedNs:    pred,
						MeasuredCycles: pt.Cycles,
						MeasuredHostNs: pt.HostNs,
					}
					if pt.Cycles > 0 {
						cell.RelErr = pred/pt.Cycles - 1
					}
					rep.Cells = append(rep.Cells, cell)
				}
			}
		}
	}
	rep.fitSeries()
	return rep, nil
}

// fitSeries groups cells into {topo, collective, algo} series, fits
// the per-series scale and α–β lines, and back-fills each cell's
// ScaledErr.
func (r *AuditReport) fitSeries() {
	type key struct{ topo, coll, algo string }
	groups := map[key][]int{}
	var order []key
	for i, c := range r.Cells {
		k := key{c.Topo, c.Collective, c.Algo}
		if _, ok := groups[k]; !ok {
			order = append(order, k)
		}
		groups[k] = append(groups[k], i)
	}
	for _, k := range order {
		idx := groups[k]
		var logSum float64
		var logN int
		for _, i := range idx {
			c := &r.Cells[i]
			if c.PredictedNs > 0 && c.MeasuredCycles > 0 {
				logSum += math.Log(c.MeasuredCycles / c.PredictedNs)
				logN++
			}
		}
		s := 1.0
		if logN > 0 {
			s = math.Exp(logSum / float64(logN))
		}
		ser := AuditSeries{Topo: k.topo, Collective: k.coll, Algo: k.algo, Scale: s}
		var mx float64
		measPts := make([][2]float64, 0, len(idx))
		predPts := make([][2]float64, 0, len(idx))
		for _, i := range idx {
			c := &r.Cells[i]
			if c.MeasuredCycles > 0 {
				c.ScaledErr = s*c.PredictedNs/c.MeasuredCycles - 1
			}
			if a := math.Abs(c.ScaledErr); a > mx {
				mx = a
			}
			measPts = append(measPts, [2]float64{float64(c.Bytes), c.MeasuredCycles})
			predPts = append(predPts, [2]float64{float64(c.Bytes), c.PredictedNs})
		}
		ser.MaxScaledErr = mx
		ser.MeasAlphaCycles, ser.MeasBetaPerByte = linFit(measPts)
		ser.PredAlphaNs, ser.PredBetaPerByte = linFit(predPts)
		r.Series = append(r.Series, ser)
	}
}

// linFit is ordinary least squares y ≈ α + β·x over the points.
// Degenerate inputs (fewer than two distinct x) fit β = 0.
func linFit(pts [][2]float64) (alpha, beta float64) {
	n := float64(len(pts))
	if n == 0 {
		return 0, 0
	}
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		sx += p[0]
		sy += p[1]
		sxx += p[0] * p[0]
		sxy += p[0] * p[1]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return sy / n, 0
	}
	beta = (n*sxy - sx*sy) / den
	alpha = (sy - beta*sx) / n
	return alpha, beta
}

// WorstCells returns the k cells with the largest |ScaledErr|, worst
// first.
func (r *AuditReport) WorstCells(k int) []AuditCell {
	cells := append([]AuditCell(nil), r.Cells...)
	sort.Slice(cells, func(i, j int) bool {
		return math.Abs(cells[i].ScaledErr) > math.Abs(cells[j].ScaledErr)
	})
	if k > len(cells) {
		k = len(cells)
	}
	return cells[:k]
}

// MaxScaledErr returns the worst |ScaledErr| across every cell — the
// number the CI warn gate compares against its threshold.
func (r *AuditReport) MaxScaledErr() float64 {
	var mx float64
	for _, c := range r.Cells {
		if a := math.Abs(c.ScaledErr); a > mx {
			mx = a
		}
	}
	return mx
}

// WriteJSON writes the report as indented JSON.
func (r *AuditReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Markdown renders the report as the -audit console/markdown output:
// model identity, per-topology cell tables, per-series α–β summary,
// and the worst mispriced cells.
func (r *AuditReport) Markdown() string {
	var b strings.Builder
	mode := "free-running"
	if r.Lockstep {
		mode = "lockstep"
	}
	fmt.Fprintf(&b, "# Cost-model audit: %d PEs (%s)\n\n", r.PEs, mode)
	fmt.Fprintf(&b, "Tuning: version %d, fabric %q", r.TuningVersion, r.TuningFabric)
	if r.CalibratedAt != "" {
		fmt.Fprintf(&b, ", calibrated %s", r.CalibratedAt)
	}
	if r.ChunkBytes > 0 {
		fmt.Fprintf(&b, ", chunk %d B", r.ChunkBytes)
	}
	b.WriteString(".\n\n")
	b.WriteString("Raw err is predicted/measured−1 against the virtual clock and includes\n" +
		"the host-ns↔cycles unit scale on flat shapes; scaled err divides out one\n" +
		"geometric-mean scale per series and is the model-quality number.\n")

	var topos []string
	seen := map[string]bool{}
	for _, c := range r.Cells {
		if !seen[c.Topo] {
			seen[c.Topo] = true
			topos = append(topos, c.Topo)
		}
	}
	for _, topo := range topos {
		fmt.Fprintf(&b, "\n## Topology %s\n\n", topo)
		b.WriteString("| collective | algo | bytes | predicted | measured (cyc) | raw err | scaled err |\n")
		b.WriteString("|---|---|---:|---:|---:|---:|---:|\n")
		for _, c := range r.Cells {
			if c.Topo != topo {
				continue
			}
			fmt.Fprintf(&b, "| %s | %s | %d | %.0f | %.0f | %+.1f%% | %+.1f%% |\n",
				c.Collective, c.Algo, c.Bytes, c.PredictedNs, c.MeasuredCycles,
				100*c.RelErr, 100*c.ScaledErr)
		}
	}

	b.WriteString("\n## Per-series α–β fits\n\n")
	b.WriteString("| topo | collective | algo | scale | meas α (cyc) | meas β (cyc/B) | pred α (ns) | pred β (ns/B) | max scaled err |\n")
	b.WriteString("|---|---|---|---:|---:|---:|---:|---:|---:|\n")
	for _, s := range r.Series {
		fmt.Fprintf(&b, "| %s | %s | %s | %.3f | %.0f | %.3f | %.0f | %.3f | %.1f%% |\n",
			s.Topo, s.Collective, s.Algo, s.Scale,
			s.MeasAlphaCycles, s.MeasBetaPerByte, s.PredAlphaNs, s.PredBetaPerByte,
			100*s.MaxScaledErr)
	}

	worst := r.WorstCells(5)
	b.WriteString("\n## Worst mispriced cells\n\n")
	for i, c := range worst {
		fmt.Fprintf(&b, "%d. %s/%s on %s, %d B: scaled err %+.1f%% (predicted %.0f, measured %.0f)\n",
			i+1, c.Collective, c.Algo, c.Topo, c.Bytes, 100*c.ScaledErr,
			c.PredictedNs, c.MeasuredCycles)
	}
	return b.String()
}
