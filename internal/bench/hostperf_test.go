package bench

// Host-performance microbenchmarks: these measure the *simulator's*
// wall-clock cost per simulated operation (ns/op, allocs/op), not
// simulated cycles. tools/benchdiff compares two `go test -bench`
// outputs of this file and records the trajectory in BENCH_*.json.
//
// Everything here sticks to the public runtime API, so the same file
// drops into older checkouts to produce comparable baselines.

import (
	"testing"

	"xbgas/internal/core"
	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// benchRuntime builds a runtime for direct single-goroutine driving of
// PE 0 (no Run, no barriers): the tightest loop over the native
// transport hot path.
func benchRuntime(b *testing.B, npes int) (*xbrtime.Runtime, uint64) {
	b.Helper()
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: npes})
	addr, err := rt.PE(0).Malloc(8 * 8192 * 2)
	if err != nil {
		b.Fatal(err)
	}
	return rt, addr
}

func benchPutStream(b *testing.B, nelems int) {
	rt, buf := benchRuntime(b, 2)
	defer rt.Close()
	pe := rt.PE(0)
	b.ReportAllocs()
	b.SetBytes(int64(nelems) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pe.Put(xbrtime.TypeULong, buf+8*8192, buf, nelems, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGetStream(b *testing.B, nelems int) {
	rt, buf := benchRuntime(b, 2)
	defer rt.Close()
	pe := rt.PE(0)
	b.ReportAllocs()
	b.SetBytes(int64(nelems) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pe.Get(xbrtime.TypeULong, buf+8*8192, buf, nelems, 1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPutElem(b *testing.B)       { benchPutStream(b, 1) }
func BenchmarkPutStream64(b *testing.B)   { benchPutStream(b, 64) }
func BenchmarkPutStream4096(b *testing.B) { benchPutStream(b, 4096) }
func BenchmarkGetElem(b *testing.B)       { benchGetStream(b, 1) }
func BenchmarkGetStream64(b *testing.B)   { benchGetStream(b, 64) }
func BenchmarkGetStream4096(b *testing.B) { benchGetStream(b, 4096) }

// benchCollective measures one collective call per iteration across a
// live 8-PE runtime (goroutine spawn and barriers included, as a real
// caller pays them).
func benchCollective(b *testing.B, fn func(pe *xbrtime.PE, dest, src uint64) error) {
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 8})
	defer rt.Close()
	var dest, src uint64
	err := rt.Run(func(pe *xbrtime.PE) error {
		d, err := pe.Malloc(8 * 4096)
		if err != nil {
			return err
		}
		s, err := pe.Malloc(8 * 4096)
		if err != nil {
			return err
		}
		dest, src = d, s
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(pe *xbrtime.PE) error { return fn(pe, dest, src) }); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBroadcast(b *testing.B) {
	benchCollective(b, func(pe *xbrtime.PE, dest, src uint64) error {
		return core.Broadcast(pe, xbrtime.TypeULong, dest, src, 1024, 1, 0)
	})
}

func BenchmarkReduce(b *testing.B) {
	benchCollective(b, func(pe *xbrtime.PE, dest, src uint64) error {
		return core.Reduce(pe, xbrtime.TypeULong, core.OpSum, dest, src, 1024, 1, 0)
	})
}

func BenchmarkScatter(b *testing.B) {
	benchCollective(b, func(pe *xbrtime.PE, dest, src uint64) error {
		msgs := []int{128, 128, 128, 128, 128, 128, 128, 128}
		disp := []int{0, 128, 256, 384, 512, 640, 768, 896}
		return core.Scatter(pe, xbrtime.TypeULong, dest, src, msgs, disp, 1024, 0)
	})
}

func BenchmarkGather(b *testing.B) {
	benchCollective(b, func(pe *xbrtime.PE, dest, src uint64) error {
		msgs := []int{128, 128, 128, 128, 128, 128, 128, 128}
		disp := []int{0, 128, 256, 384, 512, 640, 768, 896}
		return core.Gather(pe, xbrtime.TypeULong, dest, src, msgs, disp, 1024, 0)
	})
}

// benchLargeBroadcast drives a large-message broadcast with a fixed
// chunk override: -1 pins the unsegmented baseline, 0 is auto
// selection, >0 forces that segment size. The chunk ablation in
// docs/PERF.md is one sweep of this helper.
func benchLargeBroadcast(b *testing.B, elems, chunk int) {
	b.Helper()
	core.SetChunkBytes(chunk)
	defer core.SetChunkBytes(0)
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 8})
	defer rt.Close()
	var dest, src uint64
	err := rt.Run(func(pe *xbrtime.PE) error {
		d, err := pe.Malloc(uint64(elems) * 8)
		if err != nil {
			return err
		}
		s, err := pe.Malloc(uint64(elems) * 8)
		if err != nil {
			return err
		}
		dest, src = d, s
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(elems) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(pe *xbrtime.PE) error {
			return core.Broadcast(pe, xbrtime.TypeULong, dest, src, elems, 1, 0)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBcast1MB8PE is the large-message headline number: a 1 MiB
// broadcast across 8 PEs with auto-selected segmentation. benchdiff
// tracks it in the checked-in baseline next to GUPS8PE.
func BenchmarkBcast1MB8PE(b *testing.B) { benchLargeBroadcast(b, 1<<17, 0) }

// BenchmarkBcast1MB8PEUnsegmented is the same payload with
// segmentation disabled — the pair is the speedup the pipelined
// executor buys on the host.
func BenchmarkBcast1MB8PEUnsegmented(b *testing.B) { benchLargeBroadcast(b, 1<<17, -1) }

// BenchmarkBcastChunk sweeps the chunk size over a 256 KiB broadcast;
// docs/PERF.md tabulates one run to justify DefaultChunkBytes and the
// SegmentMinBytes crossover.
func BenchmarkBcastChunk(b *testing.B) {
	for _, c := range []struct {
		name  string
		chunk int
	}{
		{"off", -1},
		{"4KiB", 4 << 10},
		{"8KiB", 8 << 10},
		{"16KiB", 16 << 10},
		{"32KiB", 32 << 10},
		{"64KiB", 64 << 10},
		{"128KiB", 128 << 10},
		{"auto", 0},
	} {
		b.Run(c.name, func(b *testing.B) { benchLargeBroadcast(b, 1<<15, c.chunk) })
	}
}

// benchLargeAllreduce drives a large-message allreduce under a fixed
// algorithm ("" = auto) with auto chunk selection. The headline pair in
// docs/PERF.md compares auto against the pinned binomial path.
func benchLargeAllreduce(b *testing.B, elems int, algo core.Algorithm) {
	benchLargeAllreduceOn(b, elems, algo, xbrtime.Config{NumPEs: 8})
}

func benchLargeAllreduceOn(b *testing.B, elems int, algo core.Algorithm, cfg xbrtime.Config) {
	b.Helper()
	rt := xbrtime.MustNew(cfg)
	defer rt.Close()
	var dest, src uint64
	err := rt.Run(func(pe *xbrtime.PE) error {
		d, err := pe.Malloc(uint64(elems) * 8)
		if err != nil {
			return err
		}
		s, err := pe.Malloc(uint64(elems) * 8)
		if err != nil {
			return err
		}
		dest, src = d, s
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(elems) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(pe *xbrtime.PE) error {
			return core.AllReduceWith(pe, algo, xbrtime.TypeULong, core.OpSum, dest, src, elems, 1)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLargeAllgather drives an allgather whose concatenated result is
// elems elements: each of the 8 PEs contributes elems/8.
func benchLargeAllgather(b *testing.B, elems int, algo core.Algorithm) {
	b.Helper()
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 8})
	defer rt.Close()
	per := elems / 8
	msgs := make([]int, 8)
	disp := make([]int, 8)
	for i := range msgs {
		msgs[i] = per
		disp[i] = i * per
	}
	var dest, src uint64
	err := rt.Run(func(pe *xbrtime.PE) error {
		d, err := pe.Malloc(uint64(elems) * 8)
		if err != nil {
			return err
		}
		s, err := pe.Malloc(uint64(per) * 8)
		if err != nil {
			return err
		}
		dest, src = d, s
		return nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.SetBytes(int64(elems) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := rt.Run(func(pe *xbrtime.PE) error {
			return core.AllGatherWith(pe, algo, xbrtime.TypeULong, dest, src, msgs, disp, elems)
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAllreduce1MB8PE and BenchmarkAllgather1MB8PE are the
// bandwidth-optimal headline numbers: 1 MiB payloads across 8 PEs with
// the auto algorithm. Both sit in the blocking benchdiff CI gate next
// to GUPS8PE and Bcast1MB8PE.
func BenchmarkAllreduce1MB8PE(b *testing.B) { benchLargeAllreduce(b, 1<<17, core.AlgoAuto) }
func BenchmarkAllgather1MB8PE(b *testing.B) { benchLargeAllgather(b, 1<<17, core.AlgoAuto) }

// The pinned-binomial twins measure what auto is being compared
// against; the ratio is the PR's acceptance criterion.
func BenchmarkAllreduce1MB8PEBinomial(b *testing.B) { benchLargeAllreduce(b, 1<<17, core.AlgoBinomial) }
func BenchmarkAllgather1MB8PEBinomial(b *testing.B) { benchLargeAllgather(b, 1<<17, core.AlgoBinomial) }

// BenchmarkAllreduce1MB64PEGrouped is the scale-out headline: the same
// 1 MiB payload on 64 PEs packed 8-per-node, where auto resolves to the
// hierarchical planner. Its name carries the PE count and topology so
// benchdiff refuses to compare it against flat or 8-PE baselines.
func BenchmarkAllreduce1MB64PEGrouped(b *testing.B) {
	benchLargeAllreduceOn(b, 1<<17, core.AlgoAuto,
		xbrtime.Config{NumPEs: 64, TopoSpec: "grouped:8"})
}

func BenchmarkGUPS8PE(b *testing.B) {
	p := GUPSParams{
		TableWords:   1 << 18,
		UpdatesPerPE: 1024,
		Lookahead:    64,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunGUPS(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGUPS8PEObs is BenchmarkGUPS8PE with tracing and metrics
// live; docs/PERF.md compares the pair to bound the enabled-path cost.
// A fresh recorder per iteration keeps the retained event buffers from
// compounding across b.N.
func BenchmarkGUPS8PEObs(b *testing.B) {
	p := GUPSParams{
		TableWords:   1 << 18,
		UpdatesPerPE: 1024,
		Lookahead:    64,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Runtime.Obs = obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
		if _, err := RunGUPS(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIS8PE(b *testing.B) {
	p := DefaultISParams()
	p.TotalKeys = 1 << 15
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := RunIS(p, 8); err != nil {
			b.Fatal(err)
		}
	}
}
