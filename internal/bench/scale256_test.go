package bench

import (
	"fmt"
	"os"
	"testing"

	"xbgas/internal/core"
)

// TestScaleRingControl measures ring at 512 PEs × 1 MiB — the scale
// panel drops ring above 256 PEs, so this is the out-of-panel control
// behind PERF.md's claim that the exclusion doesn't hide a winner.
// 512 is the ceiling for a direct measurement: at 1024 PEs the ring's
// ~2(n−1) flag-signaled rounds across n PEs exhaust >128 GiB of host
// RSS before the first op completes (per-round flag blocks and step
// state scale with rounds × PEs), so the 64→256→512 trend stands in
// for the 1024 point. Gated like the spotlight below.
func TestScaleRingControl(t *testing.T) {
	if os.Getenv("XBGAS_SPOTLIGHT") != "1" {
		t.Skip("set XBGAS_SPOTLIGHT=1 to run the multi-minute 1 MiB cells")
	}
	for _, op := range []CollectiveOp{OpAllGather, OpAllReduce} {
		pt, err := SweepCollective(op, core.AlgoRing, 512, 131072, 1, "grouped:16")
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("%s 512PE grouped:16 1MiB ring: %.0f cycles\n", op, pt.Cycles)
	}
}

// TestScale1MiBSpotlight captures the 1 MiB rows the scale grid's host
// budget skips: 256 and 1024 PEs on their grouped fabrics, every
// planner in the scale panel. These are the acceptance numbers behind
// docs/PERF.md's scale-out section. Each 1024-PE cell costs minutes of
// host time, so the test only runs when XBGAS_SPOTLIGHT=1:
//
//	XBGAS_SPOTLIGHT=1 go test ./internal/bench/ -run TestScale1MiBSpotlight -v -timeout 120m
func TestScale1MiBSpotlight(t *testing.T) {
	if os.Getenv("XBGAS_SPOTLIGHT") != "1" {
		t.Skip("set XBGAS_SPOTLIGHT=1 to run the multi-minute 1 MiB cells")
	}
	const nelems = 131072
	cases := []struct {
		pes  int
		topo string
	}{
		{256, "grouped:16"},
		{1024, "grouped:32"},
	}
	for _, op := range []CollectiveOp{OpAllGather, OpAllReduce} {
		for _, c := range cases {
			for _, algo := range scaleAlgos(op, c.pes) {
				pt, err := SweepCollective(op, algo, c.pes, nelems, 1, c.topo)
				if err != nil {
					t.Fatal(err)
				}
				res := ""
				if algo == core.AlgoAuto {
					res = " -> " + string(pt.Resolved)
				}
				// fmt so each cell streams as it completes; t.Logf would
				// buffer the whole hour until the test returns.
				fmt.Printf("%s %dPE %s 1MiB %s%s: %.0f cycles\n", op, c.pes, c.topo, algo, res, pt.Cycles)
			}
		}
	}
}
