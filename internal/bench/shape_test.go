package bench

import (
	"sort"
	"testing"

	"xbgas/internal/fabric"
	"xbgas/internal/xbrtime"
)

// These tests pin the qualitative Figure 4/5 shapes the reproduction
// exists to deliver (EXPERIMENTS.md): any cost-model change that breaks
// who-wins-where fails here rather than silently shipping.

func TestFigure4Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size GUPS sweep")
	}
	p := DefaultGUPSParams()
	// Free-running goroutine interleavings perturb the fabric booking
	// order, so single-run per-PE numbers jitter a few percent — enough
	// to flip the ~10% 2-vs-4-PE ordering on a loaded host (the
	// historical -race flake). A median of three sweeps absorbs the
	// scheduler noise, and the one genuinely tight comparison carries an
	// explicit 5% band. (Lockstep mode would be perfectly reproducible
	// but books the fabric in virtual-clock order, which removes enough
	// modeled contention to move the per-PE peak — the free-running
	// timeline is the one that reproduces Figure 4.)
	perPE := make(map[int]float64)
	for _, n := range PESweep {
		var runs []float64
		for i := 0; i < 3; i++ {
			r, err := RunGUPS(p, n)
			if err != nil {
				t.Fatalf("n=%d: %v", n, err)
			}
			if !r.Verified {
				t.Fatalf("n=%d: verification failed", n)
			}
			runs = append(runs, r.PerPEMOPS())
		}
		sort.Float64s(runs)
		perPE[n] = runs[1]
	}
	// Paper Figure 4: per-PE exceeds the baseline at 2 and 4 PEs,
	// peaks at 2, and falls below the baseline at 8.
	if perPE[2] <= perPE[1] {
		t.Errorf("per-PE at 2 PEs (%.2f) must exceed baseline (%.2f)", perPE[2], perPE[1])
	}
	if perPE[4] <= perPE[1] {
		t.Errorf("per-PE at 4 PEs (%.2f) must exceed baseline (%.2f)", perPE[4], perPE[1])
	}
	if perPE[2] < 0.95*perPE[4] {
		t.Errorf("per-PE peak must sit at 2 PEs (5%% band): @2=%.2f @4=%.2f", perPE[2], perPE[4])
	}
	if perPE[8] >= perPE[1] {
		t.Errorf("per-PE at 8 PEs (%.2f) must fall below baseline (%.2f)", perPE[8], perPE[1])
	}
}

func TestFigure5Shape(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size IS sweep")
	}
	p := DefaultISParams()
	perPE := make(map[int]float64)
	total := make(map[int]float64)
	for _, n := range PESweep {
		r, err := RunIS(p, n)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !r.Verified {
			t.Fatalf("n=%d: verification failed", n)
		}
		perPE[n] = r.PerPEMOPS()
		total[n] = r.TotalMOPS()
	}
	// Paper Figure 5: per-PE consistent from 1 to 2 PEs (within 10%),
	// an 8-PE per-PE drop in the 15-45% band versus 4 PEs, and total
	// throughput still growing at every step.
	ratio12 := perPE[2] / perPE[1]
	if ratio12 < 0.90 || ratio12 > 1.10 {
		t.Errorf("per-PE 1->2 ratio %.2f outside consistency band", ratio12)
	}
	drop8 := 1 - perPE[8]/perPE[4]
	if drop8 < 0.15 || drop8 > 0.45 {
		t.Errorf("per-PE drop at 8 PEs = %.0f%%, paper reports ~25%%", 100*drop8)
	}
	for _, pair := range [][2]int{{1, 2}, {2, 4}, {4, 8}} {
		if total[pair[1]] <= total[pair[0]] {
			t.Errorf("total MOPS must grow %d->%d PEs: %.2f vs %.2f",
				pair[0], pair[1], total[pair[0]], total[pair[1]])
		}
	}
}

func TestComparisonShape(t *testing.T) {
	// §3.1: the one-sided model must beat the message-passing model on
	// a latency-bound collective by a wide margin (the paper's whole
	// motivation). Require at least 3x; the measured gap is ~11x.
	var lat [2]float64
	for i, fc := range []fabric.Config{fabric.DefaultConfig(), fabric.MessageConfig()} {
		r, err := RunCollective(CollectiveSpec{
			Op: OpBroadcast, PEs: 8, Nelems: 1, Iters: 5,
			Runtime: xbrtime.Config{Fabric: fc},
		})
		if err != nil {
			t.Fatal(err)
		}
		lat[i] = LatencyCycles(r, 5)
	}
	if lat[1] < 3*lat[0] {
		t.Errorf("message-passing (%.0f cyc) should cost >= 3x the xBGAS model (%.0f cyc)",
			lat[1], lat[0])
	}
}
