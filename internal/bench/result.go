package bench

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// Result is one benchmark measurement.
type Result struct {
	Name     string
	PEs      int
	Ops      uint64 // operations performed (updates, keys ranked, ...)
	Cycles   uint64 // simulated makespan in cycles
	Verified bool
	Errors   uint64 // verification mismatches, if any

	// Communication totals across all PEs.
	Messages         uint64
	Bytes            uint64
	ContentionCycles uint64
}

// Seconds converts the simulated makespan to seconds at the nominal
// clock.
func (r Result) Seconds() float64 {
	return float64(r.Cycles) / float64(xbrtime.ClockHz)
}

// TotalMOPS returns millions of operations per second across all PEs.
func (r Result) TotalMOPS() float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(r.Ops) / r.Seconds() / 1e6
}

// PerPEMOPS returns millions of operations per second per PE — the
// second series of paper Figures 4 and 5.
func (r Result) PerPEMOPS() float64 {
	if r.PEs == 0 {
		return 0
	}
	return r.TotalMOPS() / float64(r.PEs)
}

// String renders the measurement as one report row.
func (r Result) String() string {
	v := "ok"
	if !r.Verified {
		v = fmt.Sprintf("FAILED (%d errors)", r.Errors)
	}
	return fmt.Sprintf("%-12s PEs=%d ops=%d cycles=%d total=%.3f MOPS per-PE=%.3f MOPS verify=%s",
		r.Name, r.PEs, r.Ops, r.Cycles, r.TotalMOPS(), r.PerPEMOPS(), v)
}
