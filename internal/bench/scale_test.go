package bench

import (
	"strings"
	"testing"

	"xbgas/internal/core"
)

// TestHierarchicalWinsGrouped64PE pins the scale-out acceptance
// criterion: on a grouped fabric (64 PEs, 8 per node — inter-node
// α ≈ 5× intra) the hierarchical planner beats every flat planner on
// the virtual clock for 1 MiB allreduce and allgather, and auto
// resolves to it. The documented margin is ≥1.5×; the test asserts
// 1.2× to stay clear of booking-order jitter.
func TestHierarchicalWinsGrouped64PE(t *testing.T) {
	if testing.Short() {
		t.Skip("64-PE 1MiB sweeps in -short mode")
	}
	const pes, nelems, topo = 64, 131072, "grouped:8"
	for _, op := range []CollectiveOp{OpAllReduce, OpAllGather} {
		op := op
		t.Run(string(op), func(t *testing.T) {
			flat := []core.Algorithm{core.AlgoBinomial, core.AlgoRabenseifner}
			if op == OpAllGather {
				flat = append(flat, core.AlgoPAT)
			}
			hier, err := SweepCollective(op, core.AlgoHier, pes, nelems, 1, topo)
			if err != nil {
				t.Fatal(err)
			}
			best := 0.0
			for _, a := range flat {
				pt, err := SweepCollective(op, a, pes, nelems, 1, topo)
				if err != nil {
					t.Fatal(err)
				}
				if best == 0 || pt.Cycles < best {
					best = pt.Cycles
				}
			}
			if hier.Cycles <= 0 || best < 1.2*hier.Cycles {
				t.Errorf("%s: hierarchical %.0f cycles vs best flat %.0f (%.2fx, want >= 1.2x)",
					op, hier.Cycles, best, best/hier.Cycles)
			}
			auto, err := SweepCollective(op, core.AlgoAuto, pes, nelems, 1, topo)
			if err != nil {
				t.Fatal(err)
			}
			if auto.Resolved != core.AlgoHier {
				t.Errorf("%s: auto resolved to %s on %s, want %s", op, auto.Resolved, topo, core.AlgoHier)
			}
		})
	}
}

// TestScaleHostBudget pins the budget heuristic's shape: cheap cells
// pass, and a pathological cell (binomial's log-n volume at large
// scale) exceeds a tightened budget rather than running.
func TestScaleHostBudget(t *testing.T) {
	if c := scaleHostCostNs(core.AlgoHier, 64, 512); c > ScaleHostBudgetNs {
		t.Errorf("64-PE 4KiB hierarchical cell over budget: %.0f", c)
	}
	small := scaleHostCostNs(core.AlgoRabenseifner, 1024, 131072)
	big := scaleHostCostNs(core.AlgoBinomial, 1024, 131072)
	if big <= small {
		t.Errorf("binomial (%.0f) should cost more than rabenseifner (%.0f) at 1024 PEs", big, small)
	}
}

func TestScaleTopos(t *testing.T) {
	for _, pes := range ScalePEs {
		topos := ScaleTopos(pes)
		if len(topos) != 3 || topos[0] != "" {
			t.Fatalf("ScaleTopos(%d) = %v", pes, topos)
		}
		for _, spec := range topos[1:] {
			if strings.HasPrefix(spec, "grouped") && topoShape(spec, pes).PerNode == 0 {
				t.Errorf("ScaleTopos(%d): %q resolves to a flat shape", pes, spec)
			}
		}
	}
}
