// Package bench reimplements the paper's evaluation workloads (§5.2) on
// the xBGAS runtime: the GUPS and NAS Integer Sort benchmarks adapted
// from Oak Ridge National Lab's OpenSHMEM benchmark suite, plus the
// parameter sweeps and report printers that regenerate every table and
// figure of the paper (see EXPERIMENTS.md for the index and the
// paper-versus-measured record).
//
// Following the paper's methodology, the benchmark kernels keep the
// original algorithmic structure and only the communication layer is
// the xBGAS runtime: GUPS performs random read-xor-write updates to a
// distributed table with HPCC-style lookahead batching and runs "with
// the verification features enabled"; Integer Sort is the NPB bucketed
// counting sort whose histogram allreduce is built — exactly as the
// paper notes — from the reduction and broadcast collectives.
//
// Problem sizes are scaled down from the paper's (class B) so a full
// sweep simulates in seconds; the scaling is recorded in DESIGN.md and
// EXPERIMENTS.md. Results are reported in millions of operations per
// second (MOPS) at the simulation's nominal 1 GHz clock, total and per
// PE, matching Figures 4 and 5.
package bench
