package bench

import (
	"fmt"
	"io"

	"xbgas/internal/core"
)

// Scale-out sweeps: the 64–1024-PE grids behind docs/PERF.md's
// scale-out section. Unlike the figure sweeps (which mirror the paper's
// 2–12-PE evaluation), these run each cell once on the virtual clock
// across flat, grouped, and torus fabrics, and budget host work so the
// grid stays CI-feasible — a skipped cell prints as "-" rather than
// silently narrowing the grid.

// ScalePEs are the PE counts of the scale-out grid.
var ScalePEs = []int{64, 256, 1024}

// ScaleSizes are the payload points in 8-byte elements: 64 B, 4 KiB,
// 64 KiB, 1 MiB.
var ScaleSizes = []int{8, 512, 8192, 131072}

// ScaleHostBudgetNs bounds the estimated host cost of a single scale
// cell; cells estimated above it are skipped and reported as such. 45 s
// keeps every 1 MiB cell at 64 PEs (the acceptance evidence) while
// dropping the 1 MiB rows at 256+ PEs — 1 MiB completion at full scale
// is covered by the lockstep test, not the grid.
var ScaleHostBudgetNs = 45e9

// ScaleTopos returns the -topo specs swept at a PE count: flat, one
// grouped shape (nodes of √n-ish width so node count and width both
// grow), and the near-square torus.
func ScaleTopos(pes int) []string {
	per := 8
	switch {
	case pes >= 1024:
		per = 32
	case pes >= 256:
		per = 16
	}
	return []string{"", fmt.Sprintf("grouped:%d", per), "torus"}
}

// scaleAlgos is the algorithm panel of the scale grid: auto plus the
// planners whose schedules stay affordable at the PE count. Ring's
// 2(n−1) synchronised rounds price it out above 256 PEs regardless of
// payload, so it is dropped there rather than budgeted per cell.
func scaleAlgos(op CollectiveOp, pes int) []core.Algorithm {
	coll, ok := collOf(op)
	if !ok {
		return nil
	}
	candidates := []core.Algorithm{
		core.AlgoAuto, core.AlgoBinomial, core.AlgoRing,
		core.AlgoRabenseifner, core.AlgoPAT, core.AlgoHier,
	}
	var algos []core.Algorithm
	for _, a := range candidates {
		if a == core.AlgoRing && pes > 256 {
			continue
		}
		if a != core.AlgoAuto {
			if pl, ok := core.LookupPlanner(a); !ok || !pl.Supports(coll) {
				continue
			}
		}
		algos = append(algos, a)
	}
	return algos
}

// scaleHostCostNs estimates the host cost of one cell: per-PE payload
// movement (the dominant memmove volume of the schedule) plus a
// per-round synchronisation term across all PEs. The constants are
// deliberately pessimistic — the budget exists to drop cells that would
// stall CI, not to rank algorithms.
func scaleHostCostNs(algo core.Algorithm, pes, nelems int) float64 {
	bytes := float64(nelems) * 8
	logN := float64(core.CeilLog2(pes))
	perPE, rounds := 2*bytes, 4*float64(pes)
	switch algo {
	case core.AlgoBinomial:
		perPE, rounds = bytes*logN, 2*logN
	case core.AlgoPAT:
		perPE, rounds = 2*bytes, 2*logN
	case core.AlgoRing:
		perPE, rounds = 2*bytes, 2*float64(pes)
	case core.AlgoRabenseifner, core.AlgoHier, core.AlgoAuto:
		perPE, rounds = 2*bytes, 4*logN
	}
	// ~100 ns of host work per scheduled byte per PE (measured: a
	// 64-PE 1 MiB allreduce cell runs ~15 s — chunk loops, goroutine
	// wakeups, and virtual-clock booking dominate the raw memmove), and
	// ~100 µs to turn a barrier round over 1024 goroutines (scaled
	// linearly in PE count).
	return float64(pes)*perPE*100.0 + rounds*float64(pes)*100.0
}

// RunScale measures the scale-out grid for one collective. Skipped
// cells (over budget) come back with Iters == 0.
func RunScale(op CollectiveOp) ([]SweepPoint, error) {
	var pts []SweepPoint
	for _, pes := range ScalePEs {
		for _, topo := range ScaleTopos(pes) {
			for _, nelems := range ScaleSizes {
				for _, algo := range scaleAlgos(op, pes) {
					if scaleHostCostNs(algo, pes, nelems) > ScaleHostBudgetNs {
						pts = append(pts, SweepPoint{
							Op: op, Algo: algo, Topo: topo, PEs: pes, Nelems: nelems,
						})
						continue
					}
					pt, err := SweepCollective(op, algo, pes, nelems, 1, topo)
					if err != nil {
						return nil, err
					}
					pts = append(pts, pt)
				}
			}
		}
	}
	return pts, nil
}

// FigureScale runs and prints the scale-out grid for one collective:
// one block per (PE count, topology), one row per payload, one column
// per algorithm (virtual cycles per invocation, fastest fixed marked),
// with auto's resolution appended. "-" marks cells skipped by the host
// budget or algorithms absent at that scale.
func FigureScale(w io.Writer, op CollectiveOp) error {
	pts, err := RunScale(op)
	if err != nil {
		return err
	}
	cell := map[string]SweepPoint{}
	for _, pt := range pts {
		cell[fmt.Sprintf("%s/%s/%d/%d", pt.Algo, pt.Topo, pt.PEs, pt.Nelems)] = pt
	}
	fmt.Fprintf(w, "Scale-out: %s (virtual cycles/op; * = fastest fixed, - = skipped)\n", op)
	allAlgos := scaleAlgos(op, 0)
	for _, pes := range ScalePEs {
		for _, topo := range ScaleTopos(pes) {
			label := topo
			if label == "" {
				label = "flat"
			}
			fmt.Fprintf(w, "\n%d PEs, %s\n%12s", pes, label, "bytes")
			for _, a := range allAlgos {
				fmt.Fprintf(w, " %14s", a)
			}
			fmt.Fprintf(w, " %16s\n", "auto resolved")
			for _, nelems := range ScaleSizes {
				fmt.Fprintf(w, "%12d", nelems*8)
				best := SweepPoint{}
				for _, a := range allAlgos {
					pt, ok := cell[fmt.Sprintf("%s/%s/%d/%d", a, topo, pes, nelems)]
					if !ok || pt.Iters == 0 || a == core.AlgoAuto {
						continue
					}
					if best.Algo == "" || pt.Cycles < best.Cycles {
						best = pt
					}
				}
				for _, a := range allAlgos {
					pt, ok := cell[fmt.Sprintf("%s/%s/%d/%d", a, topo, pes, nelems)]
					if !ok || pt.Iters == 0 {
						fmt.Fprintf(w, " %14s", "-")
						continue
					}
					mark := " "
					if a == best.Algo {
						mark = "*"
					}
					fmt.Fprintf(w, " %13.0f%s", pt.Cycles, mark)
				}
				auto := cell[fmt.Sprintf("%s/%s/%d/%d", core.AlgoAuto, topo, pes, nelems)]
				fmt.Fprintf(w, " %16s\n", auto.Resolved)
			}
		}
	}
	return nil
}
