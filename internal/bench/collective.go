package bench

import (
	"fmt"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// CollectiveOp names a collective for the microbenchmarks.
type CollectiveOp string

// Collective operations measurable by RunCollective.
const (
	OpBroadcast     CollectiveOp = "broadcast"
	OpReduce        CollectiveOp = "reduce"
	OpScatter       CollectiveOp = "scatter"
	OpGather        CollectiveOp = "gather"
	OpBarrier       CollectiveOp = "barrier"
	OpAllReduce     CollectiveOp = "allreduce"
	OpAllGather     CollectiveOp = "allgather"
	OpReduceScatter CollectiveOp = "reduce_scatter"
)

// CollectiveSpec configures one collective microbenchmark.
type CollectiveSpec struct {
	Op      CollectiveOp
	PEs     int
	Nelems  int
	Stride  int
	Root    int
	Algo    core.Algorithm
	Iters   int
	Runtime xbrtime.Config
}

// RunCollective measures the makespan of Iters invocations of the
// collective and reports one operation per element moved per iteration
// (so TotalMOPS is element throughput and Cycles/Iters the latency).
func RunCollective(spec CollectiveSpec) (Result, error) {
	if spec.PEs <= 0 {
		return Result{}, fmt.Errorf("bench: collective needs PEs > 0")
	}
	if spec.Iters <= 0 {
		spec.Iters = 1
	}
	if spec.Stride <= 0 {
		spec.Stride = 1
	}
	if spec.Nelems < 0 {
		return Result{}, fmt.Errorf("bench: negative nelems")
	}
	if spec.Root < 0 || spec.Root >= spec.PEs {
		return Result{}, fmt.Errorf("bench: root %d outside 0..%d", spec.Root, spec.PEs-1)
	}
	cfg := spec.Runtime
	cfg.NumPEs = spec.PEs
	rt, err := xbrtime.New(cfg)
	if err != nil {
		return Result{}, err
	}
	defer rt.Close()

	dt := xbrtime.TypeInt64
	w := uint64(dt.Width)
	span := uint64((spec.Nelems*spec.Stride + 1)) * w

	var mu sync.Mutex
	var makespan uint64

	msgs := make([]int, spec.PEs)
	disp := make([]int, spec.PEs)
	per := spec.Nelems / spec.PEs
	rem := spec.Nelems % spec.PEs
	off := 0
	for i := range msgs {
		msgs[i] = per
		if i < rem {
			msgs[i]++
		}
		disp[i] = off
		off += msgs[i]
	}

	err = rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(span)
		if err != nil {
			return err
		}
		// The rootless collectives write every PE's dest (the ring
		// allgather deposits blocks remotely), so they need a symmetric
		// destination rather than the private out buffer.
		sym, err := pe.Malloc(span)
		if err != nil {
			return err
		}
		out, err := pe.PrivateAlloc(span)
		if err != nil {
			return err
		}
		for i := 0; i < spec.Nelems; i++ {
			pe.Poke(dt, buf+uint64(i*spec.Stride)*w, uint64(pe.MyPE()+i))
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		start := pe.Now()
		for it := 0; it < spec.Iters; it++ {
			var err error
			switch spec.Op {
			case OpBroadcast:
				err = core.BroadcastWith(spec.Algo, pe, dt, buf, buf, spec.Nelems, spec.Stride, spec.Root)
			case OpReduce:
				err = core.ReduceWith(spec.Algo, pe, dt, core.OpSum, out, buf, spec.Nelems, spec.Stride, spec.Root)
			case OpScatter:
				err = core.ScatterWith(spec.Algo, pe, dt, out, buf, msgs, disp, spec.Nelems, spec.Root)
			case OpGather:
				err = core.GatherWith(spec.Algo, pe, dt, out, buf, msgs, disp, spec.Nelems, spec.Root)
			case OpAllReduce:
				err = core.AllReduceWith(pe, spec.Algo, dt, core.OpSum, sym, buf, spec.Nelems, spec.Stride)
			case OpAllGather:
				err = core.AllGatherWith(pe, spec.Algo, dt, sym, buf, msgs, disp, spec.Nelems)
			case OpReduceScatter:
				err = core.ReduceScatterWith(pe, spec.Algo, dt, core.OpSum, sym, buf, spec.Nelems)
			case OpBarrier:
				err = pe.Barrier()
			default:
				err = fmt.Errorf("bench: unknown collective %q", spec.Op)
			}
			if err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		spanCyc := pe.Now() - start
		mu.Lock()
		if spanCyc > makespan {
			makespan = spanCyc
		}
		mu.Unlock()
		if err := pe.Free(sym); err != nil {
			return err
		}
		return pe.Free(buf)
	})
	if err != nil {
		return Result{}, err
	}
	ops := uint64(spec.Nelems) * uint64(spec.Iters)
	if spec.Op == OpBarrier || ops == 0 {
		ops = uint64(spec.Iters)
	}
	fab := rt.Machine().Fabric
	return Result{
		Name:             fmt.Sprintf("%s/%s", spec.Op, spec.Algo),
		PEs:              spec.PEs,
		Ops:              ops,
		Cycles:           makespan,
		Verified:         true,
		Messages:         fab.Messages(),
		Bytes:            fab.Bytes(),
		ContentionCycles: fab.ContentionCycles(),
	}, nil
}

// LatencyCycles returns the average per-invocation latency of a
// collective measurement produced by RunCollective.
func LatencyCycles(r Result, iters int) float64 {
	if iters <= 0 {
		return 0
	}
	return float64(r.Cycles) / float64(iters)
}
