package core

// The PAT (Parallel Aggregated Trees) planner: log-depth allgather and
// reduce-scatter that move aggregated runs of blocks instead of one
// block per round. The allgather is the Bruck-style doubling schedule
// in block space — after round k every PE owns the min(2^(k+1), n)
// consecutive blocks starting at its own — and the reduce-scatter is
// its time-reversed mirror: the same transfer graph with the edges
// reversed, rounds run in descending order, and a combine replacing
// each landing. Both finish in ⌈log₂ n⌉ rounds at any PE count (no
// power-of-two fallback) while matching the ring planners' per-byte
// volume within a factor (n/(n−1))·⌈log₂ n⌉/... — the point is pairing
// ring-like volume with tree-like depth, which is what wins once α
// dominates at scale. Runs are contiguous in virtual-rank block order,
// so CountRun/OffAdj express each transfer in at most two steps (one
// wrap split).

func compilePAT(coll Collective, n int) *Plan {
	switch coll {
	case CollAllGather:
		return patAllGatherPlan(n)
	case CollReduceScatter:
		return patReduceScatterPlan(n)
	}
	return nil
}

// patRunSteps appends to steps one get per contiguous piece of the
// block run [start, start+length) mod n: the run lives at the same
// adjusted offsets on both sides, landing in dst.
func patRunSteps(steps []Step, v, peer, start, length, n int, dstBuf BufRef) []Step {
	s1 := start % n
	l1 := length
	if s1+l1 > n {
		l1 = n - s1
	}
	steps = append(steps, Step{
		Kind: StepGet, Actor: v, Peer: peer,
		Dst:   Loc{Buf: dstBuf, Off: OffAdj, V: s1},
		Src:   Loc{Buf: BufStage, Off: OffAdj, V: s1},
		Count: CountRun, CV: s1, CB: l1, SkipIfZero: true,
	})
	if l1 < length {
		l2 := length - l1
		steps = append(steps, Step{
			Kind: StepGet, Actor: v, Peer: peer,
			Dst:   Loc{Buf: dstBuf, Off: OffAdj, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountRun, CV: 0, CB: l2, SkipIfZero: true,
		})
	}
	return steps
}

// patAllGatherPlan: every PE plants its own block at its adjusted
// offset; in round k PE v pulls from peer (v+2^k) mod n the run of
// min(2^k, n−2^k) blocks starting at the peer's own — exactly the
// blocks v is missing next. Writer and read runs of a round are
// disjoint (the peer writes blocks 2^k further along, and
// 2^k + run ≤ n), so no barrier-free hazard exists within a round.
func patAllGatherPlan(n int) *Plan {
	span := "allgather_pat"
	p := &Plan{
		Collective: CollAllGather, Algorithm: AlgoPAT, Span: span, NPEs: n,
		Stage: BufTotal, Adj: AdjVector, Chunked: true, Depth: CeilLog2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for k := 0; (1 << k) < n; k++ {
		d := 1 << k
		l := d
		if n-d < l {
			l = n - d
		}
		rd := Round{Name: span + ".round", Idx: k}
		for v := 0; v < n; v++ {
			rd.Steps = patRunSteps(rd.Steps, v, (v+d)%n, v+d, l, n, BufStage)
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountBlock, CV: 0, Blocks: n, BStride: 1,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// patReduceScatterPlan is the allgather run time-reversed: rounds run
// k = K−1 … 0 and PE v pulls the run of min(2^k, n−2^k) blocks starting
// at its own from peer (v−2^k) mod n, folding them into its staged
// copy. Reversing every allgather delivery turns "block b reaches every
// PE" into "every contribution to block b reaches PE b", so after the
// last round each PE's own block is fully reduced; the contribution
// sets merged at each fold are disjoint for the same reason the forward
// runs never overlap.
func patReduceScatterPlan(n int) *Plan {
	span := "reduce_scatter_pat"
	p := &Plan{
		Collective: CollReduceScatter, Algorithm: AlgoPAT, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: CeilLog2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	for k := CeilLog2(n) - 1; k >= 0; k-- {
		d := 1 << k
		if d >= n {
			continue
		}
		l := d
		if n-d < l {
			l = n - d
		}
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			peer := (v - d + n) % n
			pre := len(rd.Steps)
			rd.Steps = patRunSteps(rd.Steps, v, peer, v, l, n, BufScratch)
			// Fold each landed piece into the staged partial.
			for _, g := range rd.Steps[pre:] {
				rd.Steps = append(rd.Steps, Step{
					Kind: StepCombine, Actor: v, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: g.CV},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: g.CV},
					Count: CountRun, CV: g.CV, CB: g.CB,
				})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

func init() {
	RegisterPlanner(&Planner{
		Name:        AlgoPAT,
		Collectives: []Collective{CollAllGather, CollReduceScatter},
		Compile:     compilePAT,
	})
}
