package core

import (
	"fmt"
	"strings"
)

// VirtualRank maps a logical PE rank to its virtual rank for a
// collective rooted at root (paper §4.3):
//
//	vir_rank = log_rank - root            if log_rank >= root
//	vir_rank = log_rank + n_pes - root    otherwise
//
// so the root always receives virtual rank 0 and consecutive virtual
// ranks follow logical order modulo n_pes.
func VirtualRank(logRank, root, nPEs int) int {
	if logRank >= root {
		return logRank - root
	}
	return logRank + nPEs - root
}

// LogicalRank inverts VirtualRank: log_part = (vir_part + root) mod
// n_pes (the partner computation used in every algorithm).
func LogicalRank(virRank, root, nPEs int) int {
	return (virRank + root) % nPEs
}

// CeilLog2 returns ⌈log₂ n⌉ for n ≥ 1 — the number of rounds of every
// binomial-tree collective.
func CeilLog2(n int) int {
	r := 0
	for (1 << r) < n {
		r++
	}
	return r
}

// Table2Mapping renders the logical→virtual rank mapping in the shape
// of paper Table 2 for the given configuration (the paper's instance is
// nPEs=7, root=4).
func Table2Mapping(nPEs, root int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Logical to Virtual Rank Mapping (n_pes=%d, root=%d)\n", nPEs, root)
	b.WriteString("log_rank  vir_rank\n")
	for l := 0; l < nPEs; l++ {
		fmt.Fprintf(&b, "%8d  %8d\n", l, VirtualRank(l, root, nPEs))
	}
	return b.String()
}
