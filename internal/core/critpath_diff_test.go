package core

import (
	"fmt"
	"sync"
	"testing"

	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// Differential test for the critical-path extractor: in lockstep mode
// the extracted path of a collective call must span EXACTLY the
// executor's measured completion time (max end − min start across
// PEs, taken independently in the SPMD body), its links must tile
// that interval, and at a bandwidth-bound payload at least 95% of it
// must be attributed to concrete step categories rather than the
// overhead residual.
func TestCriticalPathMatchesMeasuredCompletion(t *testing.T) {
	const nelems = 4096 // 32 KiB: large enough that entry skew is noise
	cases := []struct {
		algo Algorithm
		n    int
		topo string
	}{
		{AlgoBinomial, 8, ""},
		{AlgoBinomial, 12, ""},
		{AlgoBinomial, 48, ""},
		{AlgoRing, 8, ""},
		{AlgoRing, 12, ""},
		{AlgoRing, 48, ""},
		{AlgoHier, 8, "grouped:4"},
		{AlgoHier, 12, "grouped:4"},
		{AlgoHier, 48, "grouped:8"},
	}
	for _, tc := range cases {
		tc := tc
		name := fmt.Sprintf("%s/n=%d", tc.algo, tc.n)
		if tc.topo != "" {
			name += "/" + tc.topo
		}
		t.Run(name, func(t *testing.T) {
			rec := obs.NewRecorder(obs.Options{Trace: true})
			rt := xbrtime.MustNew(xbrtime.Config{
				NumPEs: tc.n, TopoSpec: tc.topo, Deterministic: true, Obs: rec,
			})
			defer rt.Close()

			var mu sync.Mutex
			var minStart, maxEnd uint64
			first := true
			err := rt.Run(func(pe *xbrtime.PE) error {
				w := uint64(xbrtime.TypeLong.Width)
				dst, err := pe.Malloc(nelems * w)
				if err != nil {
					return err
				}
				src, err := pe.PrivateAlloc(nelems * w)
				if err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				before := pe.Now()
				if err := BroadcastWith(tc.algo, pe, xbrtime.TypeLong, dst, src, nelems, 1, 0); err != nil {
					return err
				}
				after := pe.Now()
				mu.Lock()
				if first || before < minStart {
					minStart = before
				}
				if first || after > maxEnd {
					maxEnd = after
				}
				first = false
				mu.Unlock()
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}

			run := rec.Runs()[0]
			if got := run.NumCalls(); got != 1 {
				t.Fatalf("NumCalls = %d, want 1", got)
			}
			cp, ok := run.ExtractCallPath(0)
			if !ok {
				t.Fatal("ExtractCallPath(0) not ok")
			}

			// The virtual clock does not advance between the body's
			// pe.Now() and the executor opening the call record, so the
			// path must span the measured completion exactly.
			measured := maxEnd - minStart
			if cp.Total() != measured {
				t.Errorf("critical path Total = %d, executor measured %d (span [%d,%d] vs [%d,%d])",
					cp.Total(), measured, cp.Start, cp.End, minStart, maxEnd)
			}

			// Structural invariant: links tile [Start, End].
			if len(cp.Links) == 0 {
				t.Fatal("path has no links")
			}
			if cp.Links[0].End != cp.End {
				t.Errorf("first link ends at %d, want %d", cp.Links[0].End, cp.End)
			}
			for i := 0; i+1 < len(cp.Links); i++ {
				if cp.Links[i+1].End != cp.Links[i].Start {
					t.Errorf("links %d/%d do not tile", i, i+1)
				}
			}
			if last := cp.Links[len(cp.Links)-1]; last.Start != cp.Start {
				t.Errorf("last link starts at %d, want %d", last.Start, cp.Start)
			}

			if cov := cp.Coverage(); cov < 0.95 {
				by := cp.ByCat()
				t.Errorf("coverage = %.3f, want >= 0.95 (overhead %d of %d cycles; byCat %v)",
					cov, by[obs.CatOverhead], cp.Total(), by)
			}
		})
	}
}
