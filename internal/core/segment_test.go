package core

import (
	"strings"
	"sync"
	"testing"

	"xbgas/internal/xbrtime"
)

// ---------------------------------------------------------------------
// Segmented (pipelined) plans: the differential schedule-vs-execution
// check, value correctness across roots/strides/uneven segment splits,
// transfer-count conservation against the unsegmented plans, the
// pipeline-depth cost model, chunk auto-selection, and pool/heap
// balance when a link fault breaks the pipeline mid-flight.
// ---------------------------------------------------------------------

// segDiffArgs builds per-PE buffers for one segmented differential
// case. The element count is at least the segment count so every
// CountSeg slice is non-empty and no skip-if-zero step hides a
// scheduled transfer; vector collectives use one element per PE, which
// keeps every subtree block non-empty too.
func segDiffArgs(pe *xbrtime.PE, coll Collective, n, segments, root int) (ExecArgs, []uint64, error) {
	var allocs []uint64
	alloc := func(bytes uint64) (uint64, error) {
		a, err := pe.Malloc(bytes)
		if err != nil {
			return 0, err
		}
		allocs = append(allocs, a)
		return a, nil
	}
	w := uint64(8)
	a := ExecArgs{DT: xbrtime.TypeInt64, Op: OpSum, Stride: 1, Root: root}
	var err error
	switch coll {
	case CollBroadcast, CollReduce, CollAllReduce:
		a.Nelems = 2*segments + 1 // uneven split: first rem segments one longer
		if a.Dest, err = alloc(uint64(a.Nelems) * w); err != nil {
			return a, allocs, err
		}
		if a.Src, err = alloc(uint64(a.Nelems) * w); err != nil {
			return a, allocs, err
		}
	case CollScatter:
		a.Nelems = n
		a.PeMsgs = make([]int, n)
		a.PeDisp = make([]int, n)
		for i := range a.PeMsgs {
			a.PeMsgs[i] = 1
			a.PeDisp[i] = i
		}
		if a.Dest, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
		if a.Src, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
	}
	return a, allocs, nil
}

// TestSegmentedExecutionMatchesSchedule is the segmented variant of
// TestExecutionMatchesSchedule: for every pipelined collective, every
// PE count 1..16, and every root, the transfers the executor issues
// must equal the segmented plan's analytic projection. The wait/signal
// dependency steps are invisible to both sides, so this also pins that
// flag traffic never masquerades as data movement.
func TestSegmentedExecutionMatchesSchedule(t *testing.T) {
	cases := []struct {
		coll     Collective
		segments int
	}{
		{CollBroadcast, 3},
		{CollReduce, 3},
		{CollAllReduce, 3},
		{CollScatter, 2},
		{CollBroadcast, 5},
	}
	for _, tc := range cases {
		for n := 1; n <= 16; n++ {
			p, err := CompilePlanSeg(tc.coll, AlgoBinomial, n, tc.segments)
			if err != nil {
				t.Fatalf("%s seg=%d n=%d: %v", tc.coll, tc.segments, n, err)
			}
			want := p.Transfers()
			sortTransfers(want)

			roots := []int{0}
			if tc.coll != CollAllReduce {
				roots = roots[:0]
				for r := 0; r < n; r++ {
					roots = append(roots, r)
				}
			}

			var mu sync.Mutex
			got := make([][]Transfer, len(roots))
			rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
			if err != nil {
				t.Fatal(err)
			}
			err = rt.Run(func(pe *xbrtime.PE) error {
				for ri, root := range roots {
					a, allocs, err := segDiffArgs(pe, tc.coll, n, tc.segments, root)
					if err != nil {
						return err
					}
					ri := ri
					a.OnTransfer = func(round int, s Step, _ int) {
						tr := Transfer{Round: round, Kind: s.Kind, From: s.Actor, To: s.Peer}
						if s.Kind == StepGet {
							tr.From, tr.To = s.Peer, s.Actor
						}
						mu.Lock()
						got[ri] = append(got[ri], tr)
						mu.Unlock()
					}
					if err := Execute(pe, p, a); err != nil {
						return err
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					for _, addr := range allocs {
						if err := pe.Free(addr); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s seg=%d n=%d: %v", tc.coll, tc.segments, n, err)
			}
			for ri, root := range roots {
				g := got[ri]
				sortTransfers(g)
				if len(g) != len(want) {
					t.Fatalf("%s seg=%d n=%d root=%d: executed %d transfers, schedule has %d:\n%v\nvs\n%v",
						tc.coll, tc.segments, n, root, len(g), len(want), g, want)
				}
				for i := range want {
					if g[i] != want[i] {
						t.Errorf("%s seg=%d n=%d root=%d transfer %d: executed %+v, schedule %+v",
							tc.coll, tc.segments, n, root, i, g[i], want[i])
					}
				}
			}
		}
	}
}

// TestSegmentedCollectiveValues forces segmentation through the public
// entry points (the -chunk override) and checks the data that lands,
// including a strided layout whose segment offsets must scale by the
// stride and an element count that does not divide evenly into
// segments.
func TestSegmentedCollectiveValues(t *testing.T) {
	SetChunkBytes(16) // 2 int64s per chunk: 9 elements -> 5 segments
	defer SetChunkBytes(0)

	const nelems, stride = 9, 2
	span := uint64((nelems-1)*stride + 1)
	dt := xbrtime.TypeInt64
	for _, n := range []int{2, 4, 7, 8, 13} {
		for _, root := range []int{0, n - 1} {
			rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
			if err != nil {
				t.Fatal(err)
			}
			var mu sync.Mutex
			var failures []string
			bad := func(msg string) {
				mu.Lock()
				failures = append(failures, msg)
				mu.Unlock()
			}
			err = rt.Run(func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				dest, err := pe.Malloc(span * 8)
				if err != nil {
					return err
				}
				src, err := pe.Malloc(span * 8)
				if err != nil {
					return err
				}

				// Broadcast: strided payload from root.
				for i := 0; i < nelems; i++ {
					pe.Poke(dt, src+uint64(i*stride)*8, uint64(9000+i))
				}
				if err := Broadcast(pe, dt, dest, src, nelems, stride, root); err != nil {
					return err
				}
				for i := 0; i < nelems; i++ {
					if got := pe.Peek(dt, dest+uint64(i*stride)*8); got != uint64(9000+i) {
						bad("broadcast wrong value")
					}
				}

				// Reduce: strided sum of per-PE contributions at root.
				for i := 0; i < nelems; i++ {
					pe.Poke(dt, src+uint64(i*stride)*8, uint64(100*me+i))
				}
				if err := Reduce(pe, dt, OpSum, dest, src, nelems, stride, root); err != nil {
					return err
				}
				if me == root {
					for i := 0; i < nelems; i++ {
						want := uint64(100*n*(n-1)/2 + i*n)
						if got := pe.Peek(dt, dest+uint64(i*stride)*8); got != want {
							bad("reduce wrong value")
						}
					}
				}

				// AllReduce: contiguous sum everywhere.
				for i := 0; i < nelems; i++ {
					pe.Poke(dt, src+uint64(i)*8, uint64(10*me+i))
				}
				if err := AllReduce(pe, dt, OpSum, dest, src, nelems, 1); err != nil {
					return err
				}
				for i := 0; i < nelems; i++ {
					want := uint64(10*n*(n-1)/2 + i*n)
					if got := pe.Peek(dt, dest+uint64(i)*8); got != want {
						bad("allreduce wrong value")
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("n=%d root=%d: %v", n, root, err)
			}
			if len(failures) > 0 {
				t.Fatalf("n=%d root=%d: %d bad values (%s...)", n, root, len(failures), failures[0])
			}
		}
	}
}

// TestSegmentedScatterValues covers the pipelined scatter's
// block-granularity data path (forced via the chunk override).
func TestSegmentedScatterValues(t *testing.T) {
	SetChunkBytes(8)
	defer SetChunkBytes(0)

	dt := xbrtime.TypeInt64
	for _, n := range []int{4, 7, 8} {
		const per = 2
		msgs := make([]int, n)
		disp := make([]int, n)
		for i := range msgs {
			msgs[i] = per
			disp[i] = per * i
		}
		total := per * n
		for _, root := range []int{0, n - 1} {
			rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
			if err != nil {
				t.Fatal(err)
			}
			bad := false
			var mu sync.Mutex
			err = rt.Run(func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				dest, err := pe.Malloc(uint64(per) * 8)
				if err != nil {
					return err
				}
				src, err := pe.Malloc(uint64(total) * 8)
				if err != nil {
					return err
				}
				if me == root {
					for p := 0; p < n; p++ {
						for i := 0; i < per; i++ {
							pe.Poke(dt, src+uint64(disp[p]+i)*8, uint64(1000*p+i))
						}
					}
				}
				if err := Scatter(pe, dt, dest, src, msgs, disp, total, root); err != nil {
					return err
				}
				for i := 0; i < per; i++ {
					if got := pe.Peek(dt, dest+uint64(i)*8); got != uint64(1000*me+i) {
						mu.Lock()
						bad = true
						mu.Unlock()
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("scatter n=%d root=%d: %v", n, root, err)
			}
			if bad {
				t.Fatalf("scatter n=%d root=%d: wrong values landed", n, root)
			}
		}
	}
}

// TestSegmentedTransferConservation pins the cost model's traffic side:
// splitting a message into S segments multiplies every tree edge by S
// (each edge now carries S chunk-sized transfers) without creating or
// dropping edges; the pipelined scatter keeps the unsegmented edge set
// exactly (it pipelines by subtree block, not by chunk).
func TestSegmentedTransferConservation(t *testing.T) {
	type edge struct {
		kind     StepKind
		from, to int
	}
	tally := func(ts []Transfer) map[edge]int {
		m := map[edge]int{}
		for _, tr := range ts {
			m[edge{tr.Kind, tr.From, tr.To}]++
		}
		return m
	}
	for _, coll := range []Collective{CollBroadcast, CollReduce, CollAllReduce} {
		const n, s = 8, 4
		base, err := CompilePlan(coll, AlgoBinomial, n)
		if err != nil {
			t.Fatal(err)
		}
		seg, err := CompilePlanSeg(coll, AlgoBinomial, n, s)
		if err != nil {
			t.Fatal(err)
		}
		if seg.Segments != s {
			t.Fatalf("%s: expected a %d-segment plan, got Segments=%d", coll, s, seg.Segments)
		}
		want, got := tally(base.Transfers()), tally(seg.Transfers())
		if len(want) != len(got) {
			t.Fatalf("%s: segmented plan has %d distinct edges, unsegmented %d", coll, len(got), len(want))
		}
		for e, c := range want {
			if got[e] != s*c {
				t.Errorf("%s edge %v: segmented count %d, want %d (S x %d)", coll, e, got[e], s*c, c)
			}
		}
	}

	base, err := CompilePlan(CollScatter, AlgoBinomial, 8)
	if err != nil {
		t.Fatal(err)
	}
	seg, err := CompilePlanSeg(CollScatter, AlgoBinomial, 8, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, got := tally(base.Transfers()), tally(seg.Transfers())
	if len(want) != len(got) {
		t.Fatalf("scatter: pipelined plan has %d distinct edges, baseline %d", len(got), len(want))
	}
	for e, c := range want {
		if got[e] != c {
			t.Errorf("scatter edge %v: pipelined count %d, want %d", e, got[e], c)
		}
	}
}

// TestPipelineDepthModel checks the log2(n)+S-1 projection: the
// segmented broadcast's compiled depth equals the analytic
// SegmentedDepth, degenerates to the unsegmented round count at S=1,
// and strictly beats S sequential tree traversals for S > 1, n > 1.
func TestPipelineDepthModel(t *testing.T) {
	for _, n := range []int{2, 5, 8, 16} {
		for _, s := range []int{2, 4, 8} {
			p, err := CompilePlanSeg(CollBroadcast, AlgoBinomial, n, s)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := p.PipelineDepth(), SegmentedDepth(n, s); got != want {
				t.Errorf("n=%d s=%d: PipelineDepth=%d, SegmentedDepth=%d", n, s, got, want)
			}
			// A one-deep tree (n=2) cannot overlap anything, so pipelining
			// only ties sequential there; any deeper tree must win.
			seq := s * CeilLog2(n)
			if d := p.PipelineDepth(); d > seq || (CeilLog2(n) > 1 && d >= seq) {
				t.Errorf("n=%d s=%d: pipelined depth %d not better than sequential %d", n, s, d, seq)
			}
		}
		base, err := CompilePlan(CollBroadcast, AlgoBinomial, n)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := base.PipelineDepth(), CeilLog2(n); got != want {
			t.Errorf("n=%d unsegmented: PipelineDepth=%d, want %d", n, got, want)
		}
		if got, want := SegmentedDepth(n, 1), CeilLog2(n); got != want {
			t.Errorf("SegmentedDepth(%d, 1)=%d, want %d", n, got, want)
		}
	}
}

// TestSelectSegments pins the auto-selection policy and the -chunk
// override semantics.
func TestSelectSegments(t *testing.T) {
	defer SetChunkBytes(0)
	cases := []struct {
		name  string
		chunk int
		coll  Collective
		algo  Algorithm
		nPEs  int
		elems int
		width int
		want  int
	}{
		{"small payload stays whole", 0, CollBroadcast, AlgoBinomial, 8, 1024, 8, 1},
		{"threshold engages", 0, CollBroadcast, AlgoBinomial, 8, 8192, 8, 2},
		{"1MiB clamps to MaxSegments", 0, CollBroadcast, AlgoBinomial, 8, 1 << 17, 8, MaxSegments},
		{"forced chunk", 256 << 10, CollBroadcast, AlgoBinomial, 8, 1 << 17, 8, 4},
		{"forced chunk below threshold", 4 << 10, CollBroadcast, AlgoBinomial, 8, 1024, 8, 2},
		{"negative disables", -1, CollBroadcast, AlgoBinomial, 8, 1 << 20, 8, 1},
		{"segments capped by nelems", 1, CollBroadcast, AlgoBinomial, 8, 4, 8, 4},
		{"reduce segments", 0, CollReduce, AlgoBinomial, 8, 1 << 14, 8, 4},
		{"allreduce segments", 0, CollAllReduce, AlgoBinomial, 8, 1 << 14, 8, 4},
		{"scatter normalises to 2", 0, CollScatter, AlgoBinomial, 8, 1 << 14, 8, 2},
		{"gather never segments", 0, CollGather, AlgoBinomial, 8, 1 << 20, 8, 1},
		{"linear never segments", 0, CollBroadcast, AlgoLinear, 8, 1 << 20, 8, 1},
		{"single PE never segments", 0, CollBroadcast, AlgoBinomial, 1, 1 << 20, 8, 1},
		{"single element never segments", 0, CollBroadcast, AlgoBinomial, 8, 1, 8, 1},
	}
	for _, tc := range cases {
		SetChunkBytes(tc.chunk)
		if got := SelectSegments(tc.coll, tc.algo, tc.nPEs, tc.elems, tc.width); got != tc.want {
			t.Errorf("%s: SelectSegments=%d, want %d", tc.name, got, tc.want)
		}
	}
}

// TestSegmentedPoolBalanceOnFault cuts a tree link under a pipelined
// broadcast: the failing PE errors out mid-pipeline with handles
// borrowed and flags posted, the waiters are released by the broken
// flag hub instead of deadlocking, and every PE must come back with
// its workspace pools balanced and the plan's flag block returned to
// the symmetric heap (satellite: executor error paths under
// segmentation).
func TestSegmentedPoolBalanceOnFault(t *testing.T) {
	SetChunkBytes(8) // 8 elements -> 8 segments
	defer SetChunkBytes(0)

	const n = 4
	const nelems = 8
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	// In the 4-PE tree from root 0, rank 0 puts segment 0 to rank 2
	// first; cutting that link fails the very first pipelined put.
	rt.Machine().Fabric.SetLinkState(0, 2, false)

	type outcome struct {
		ints, handles int
		leaked        uint64
		execErr       error
	}
	var mu sync.Mutex
	var outcomes []outcome
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		before := pe.SharedUsed()
		execErr := Broadcast(pe, xbrtime.TypeInt64, dest, src, nelems, 1, 0)
		ints, handles := pe.WorkspaceOutstanding()
		mu.Lock()
		outcomes = append(outcomes, outcome{ints, handles, pe.SharedUsed() - before, execErr})
		mu.Unlock()
		return execErr
	})
	if err == nil {
		t.Fatal("pipelined broadcast over a partitioned fabric must fail")
	}
	if len(outcomes) != n {
		t.Fatalf("collected %d outcomes, want %d", len(outcomes), n)
	}
	for _, o := range outcomes {
		if o.execErr == nil {
			t.Error("every PE of the broken pipeline must observe the failure")
		}
		if o.ints != 0 || o.handles != 0 {
			t.Errorf("workspace pools imbalanced after mid-pipeline fault: ints=%d handles=%d", o.ints, o.handles)
		}
		if o.leaked != 0 {
			t.Errorf("symmetric heap leaked %d bytes after mid-pipeline fault (flag block not freed?)", o.leaked)
		}
	}
}

// TestSegmentedDeterministicLockstep runs the pipelined broadcast and
// allreduce under the lockstep scheduler: the flag hub's block/wake
// integration must hand the token over cleanly (a hang here is the
// regression this test exists to catch) and values must still land.
func TestSegmentedDeterministicLockstep(t *testing.T) {
	SetChunkBytes(16)
	defer SetChunkBytes(0)

	const n, nelems = 8, 9
	dt := xbrtime.TypeInt64
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n, Deterministic: true})
	if err != nil {
		t.Fatal(err)
	}
	bad := false
	var mu sync.Mutex
	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		dest, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(dt, src+uint64(i)*8, uint64(7000+i))
		}
		if err := Broadcast(pe, dt, dest, src, nelems, 1, 2); err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(dt, src+uint64(i)*8, uint64(me+i))
		}
		if err := AllReduce(pe, dt, OpSum, dest, src, nelems, 1); err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			want := uint64(n*(n-1)/2 + i*n)
			if pe.Peek(dt, dest+uint64(i)*8) != want {
				mu.Lock()
				bad = true
				mu.Unlock()
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("lockstep segmented collectives produced wrong values")
	}
}

// TestSegmentedPlannerLabel checks the observability hook the bench
// report's "planners:" tally prints: a segmented execution must be
// attributed to the segmented plan, not the whole-message one.
func TestSegmentedPlannerLabel(t *testing.T) {
	SetChunkBytes(16)
	defer SetChunkBytes(0)

	const n, nelems = 8, 8
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		return Broadcast(pe, xbrtime.TypeInt64, dest, src, nelems, 1, 0)
	})
	if err != nil {
		t.Fatal(err)
	}
	report := rt.StatsReport()
	if !strings.Contains(report, "broadcast/binomial[seg=4] x8") {
		t.Errorf("report missing segmented planner tally:\n%s", report)
	}
}

// TestSegmentedTeamsRefused pins the symmetric-heap guard: team
// executions cannot host the plan's flag block (a members-only
// allocation would break address symmetry), so segmented plans must be
// rejected on teams rather than silently corrupting the heap, and the
// collective entry points must never select segmentation for them.
func TestSegmentedTeamsRefused(t *testing.T) {
	const n = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	p, err := CompilePlanSeg(CollBroadcast, AlgoBinomial, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.FlagWords == 0 {
		t.Fatal("expected a flag-bearing segmented plan")
	}
	team, err := rt.NewTeam([]int{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		if !team.Contains(pe.MyPE()) {
			return nil
		}
		buf, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		execErr := Execute(pe, p, ExecArgs{
			DT: xbrtime.TypeInt64, Dest: buf, Src: buf + 16,
			Nelems: 2, Stride: 1, Team: team,
		})
		if execErr == nil {
			t.Error("segmented plan on a team must be rejected")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
