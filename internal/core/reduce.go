package core

import (
	"xbgas/internal/xbrtime"
)

// Reduce combines nelems elements of type dt from src on every PE with
// operator op and delivers the result to dest on the root PE (paper
// §4.4, Algorithm 2).
//
// src must be a symmetric shared address — the algorithm's gets pull
// from the peers' staging buffers which shadow src — while dest is
// significant only on the root and "may be either shared or private".
// stride applies at both src and dest. op must be valid for dt (bitwise
// operators are undefined for floating-point types).
//
// Data flows leaves→root with recursive doubling: the loop index runs
// upward so the mask isolates virtual-rank bits right to left,
// reversing the direction of the broadcast tree. Each surviving PE gets
// its partner's staged partial into a private buffer (l_buff), combines
// it into its shared staging buffer (s_buff), and the root finally
// migrates s_buff to dest. Both buffers exist to "prevent any
// unintended overwriting of values on any PE".
func Reduce(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err // operator/type mismatch
	}
	nPEs := pe.NumPEs()
	vRank := VirtualRank(pe.MyPE(), root, nPEs)
	rounds := CeilLog2(nPEs)
	w := uint64(dt.Width)
	span := spanBytes(dt, nelems, stride)
	cs := pe.StartCollective("reduce", root, nelems)
	defer pe.FinishCollective(cs)

	// Symmetric staging buffer (same address on every PE) and a private
	// landing buffer for partners' partials.
	sBuf, err := pe.Malloc(span)
	if err != nil {
		return err
	}
	lBuf, err := pe.Scratch(span)
	if err != nil {
		pe.Free(sBuf) //nolint:errcheck // best-effort unwind
		return err
	}

	// Stage the local contribution: s_buff[i×stride] = src[i×stride].
	timedCopy(pe, dt, sBuf, src, nelems, stride, stride)
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}

	cost := combineCost(dt, op)
	mask := (1 << rounds) - 1
	for i := 0; i < rounds; i++ {
		mask ^= 1 << i
		// Partner resolution up front so the round span opens annotated.
		peer := -1
		if vRank|mask == mask && vRank&(1<<i) == 0 {
			vPart := (vRank ^ (1 << i)) % nPEs
			if vRank < vPart {
				peer = LogicalRank(vPart, root, nPEs)
			}
		}
		moved := 0
		if peer >= 0 {
			moved = nelems
		}
		rs := pe.StartRound("reduce.round", i, peer, moved)
		if peer >= 0 {
			if err := pe.Get(dt, lBuf, sBuf, nelems, stride, peer); err != nil {
				pe.Free(sBuf) //nolint:errcheck
				return err
			}
			for j := 0; j < nelems; j++ {
				off := uint64(j*stride) * w
				a := pe.ReadElem(dt, sBuf+off)
				b := pe.ReadElem(dt, lBuf+off)
				r, err := Combine(dt, op, a, b)
				if err != nil {
					pe.Free(sBuf) //nolint:errcheck
					return err
				}
				pe.Advance(cost)
				pe.WriteElem(dt, sBuf+off, r)
			}
		}
		if err := pe.Barrier(); err != nil {
			pe.Free(sBuf) //nolint:errcheck
			return err
		}
		pe.FinishRound(rs)
	}

	// Root migrates the final values to dest.
	if vRank == 0 {
		timedCopy(pe, dt, dest, sBuf, nelems, stride, stride)
	}
	return pe.Free(sBuf)
}
