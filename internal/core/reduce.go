package core

import (
	"xbgas/internal/xbrtime"
)

// Reduce combines nelems elements of type dt from src on every PE with
// operator op and delivers the result to dest on the root PE (paper
// §4.4, Algorithm 2).
//
// src must be a symmetric shared address — the algorithm's gets pull
// from the peers' staging buffers which shadow src — while dest is
// significant only on the root and "may be either shared or private".
// stride applies at both src and dest. op must be valid for dt (bitwise
// operators are undefined for floating-point types).
//
// Data flows leaves→root with recursive doubling (see
// binomialReducePlan); the call executes the cached plan for the
// current PE count.
//
//xbgas:typed reduce
func Reduce(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err // operator/type mismatch
	}
	return runPlan(pe, CollReduce, AlgoBinomial, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}
