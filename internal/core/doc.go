// Package core implements the collective communication library for the
// RISC-V xBGAS ISA extension — the primary contribution of
//
//	Williams, Wang, Leidel, Chen. "Collective Communication for the
//	RISC-V xBGAS ISA Extension." ICPP 2019 Workshops.
//
// The library provides the four collectives of paper §4 — broadcast,
// reduction, scatter, and gather — built from the runtime's one-sided
// put/get primitives over a binomial tree. Data moves root→leaves with
// recursive halving for the put-based collectives (broadcast, scatter;
// Algorithms 1 and 3) and leaves→root with recursive doubling for the
// get-based collectives (reduction, gather; Algorithms 2 and 4). A
// virtual-rank remapping (paper Table 2) makes any PE eligible as root:
// virtual ranks are assigned so the root is always virtual rank 0, and
// all tree arithmetic happens in virtual-rank space.
//
// Every collective is a *collective call*: all PEs of the runtime must
// invoke it with compatible arguments, in the same order relative to
// other collective calls and symmetric allocations. A barrier closes
// each round of the tree loop, exactly as the paper specifies
// ("a barrier operation takes place at the end of each loop iteration
// to ensure correct synchronization").
//
// Generic entry points (Broadcast, Reduce, Scatter, Gather, and the §7
// extensions AllReduce, AllGather, ReduceScatter, Alltoall) take an
// explicit xbrtime.DType; the generated typed wrappers in typed_gen.go
// reproduce the paper's per-type C API surface
// (xbrtime_TYPENAME_broadcast and friends, Table 1) in Go spelling.
// Each generic entry point carries an //xbgas:typed annotation that
// tools/gen expands across the full dtype × operator matrix — see
// docs/API_SURFACE.md.
//
// Linear (flat) variants of all four collectives serve as the
// algorithmic baseline for the §4.1 discussion that no single algorithm
// wins everywhere, and an Algorithm selector provides the runtime
// dispatch hook the paper plans for.
package core

//go:generate go run ../../tools/gen
