package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// This file implements the collective operations the paper lists as
// future work (§7): "support for further collective operations
// including personalized all-to-all communication as well as explicit
// reduction-to-all and gather-to-all calls".

// AllReduce combines nelems elements from src on every PE with op and
// delivers the result to dest on every PE: the explicit
// reduction-to-all call of §7. The algorithm is auto-selected from the
// calibrated cost model: small payloads compose the reduce get-tree
// with the broadcast put-tree over one staging buffer (see
// binomialAllReducePlan), large ones land on the bandwidth-optimal
// rabenseifner or ring planner. src must be symmetric; dest must be
// symmetric as well since the distribution phase writes it on every
// PE.
//
//xbgas:typed reduce c=allreduce
func AllReduce(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride int) error {
	return AllReduceWith(pe, AlgoAuto, dt, op, dest, src, nelems, stride)
}

// ReduceScatter combines nelems elements from src on every PE with op
// and scatters the result: PE with logical rank v receives chunk v of
// the reduced vector — ⌊nelems/n⌋ + (v < nelems mod n) elements, the
// same closed-form equal chunking the large-message broadcast uses —
// at dest. Both buffers must be symmetric; the collective is rootless
// and contiguous (stride 1).
//
//xbgas:typed reduce c=reduce_scatter
func ReduceScatter(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems int) error {
	return ReduceScatterWith(pe, AlgoAuto, dt, op, dest, src, nelems)
}

// AllGather concatenates every PE's contribution (peMsgs[l] elements at
// src on logical rank l, landing at element offset peDisp[l]) into dest
// on every PE: the gather-to-all call of §7 and the analogue of
// OpenSHMEM's collect. The algorithm is auto-selected from the
// calibrated cost model: small payloads compose the gather get-tree
// with a full-payload broadcast put-tree over one staging buffer (see
// binomialAllGatherPlan), large ones land on the ring or
// recursive-doubling planner. dest must be symmetric.
//
//xbgas:typed vector c=allgather
func AllGather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems int) error {
	return AllGatherWith(pe, AlgoAuto, dt, dest, src, peMsgs, peDisp, nelems)
}

// Alltoall performs personalized all-to-all communication (§7): every
// PE sends a distinct block of nelems elements to every PE. Block j of
// src on PE i (elements [j*nelems, (j+1)*nelems)) arrives as block i of
// dest on PE j. Both buffers must be symmetric and hold
// nelems*NumPEs() elements.
//
// The implementation is the one-sided direct exchange natural to xBGAS
// (see compileDirect): each PE deposits its blocks into the peers' dest
// buffers with non-blocking puts, overlapping all N-1 transfers, and a
// barrier closes the exchange. The executor waits on and returns every
// issued handle whether the round succeeds or fails, so the pooled
// handle slice can never leak.
//
//xbgas:typed rootless
func Alltoall(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems int) error {
	if !dt.Valid() {
		return fmt.Errorf("core: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return fmt.Errorf("core: negative element count %d", nelems)
	}
	n := pe.NumPEs()
	p, err := CompilePlan(CollAlltoall, AlgoDirect, n)
	if err != nil {
		return err
	}
	// Rootless: the collective span carries -1 in the root slot, and the
	// plan executes with virtual rank == logical rank (root 0).
	cs := pe.StartCollective(p.Span, p.Label(), -1, nelems*n)
	defer pe.FinishCollective(cs)
	return Execute(pe, p, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: 0,
	})
}
