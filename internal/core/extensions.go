package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// This file implements the collective operations the paper lists as
// future work (§7): "support for further collective operations
// including personalized all-to-all communication as well as explicit
// reduction-to-all and gather-to-all calls".

// AllReduce combines nelems elements from src on every PE with op and
// delivers the result to dest on every PE: the explicit
// reduction-to-all call of §7, realised as the reduce + broadcast
// composition that §4.7 notes an xBGAS user would otherwise write by
// hand. src must be symmetric; dest must be symmetric as well since the
// broadcast writes it on every PE.
func AllReduce(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride int) error {
	cs := pe.StartCollective("allreduce", 0, nelems)
	defer pe.FinishCollective(cs)
	if err := Reduce(pe, dt, op, dest, src, nelems, stride, 0); err != nil {
		return err
	}
	return Broadcast(pe, dt, dest, dest, nelems, stride, 0)
}

// AllGather concatenates every PE's contribution (peMsgs[l] elements at
// src on logical rank l, landing at element offset peDisp[l]) into dest
// on every PE: the gather-to-all call of §7 and the analogue of
// OpenSHMEM's collect. dest must be symmetric.
func AllGather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems int) error {
	cs := pe.StartCollective("allgather", 0, nelems)
	defer pe.FinishCollective(cs)
	if err := Gather(pe, dt, dest, src, peMsgs, peDisp, nelems, 0); err != nil {
		return err
	}
	return Broadcast(pe, dt, dest, dest, nelems, 1, 0)
}

// Alltoall performs personalized all-to-all communication (§7): every
// PE sends a distinct block of nelems elements to every PE. Block j of
// src on PE i (elements [j*nelems, (j+1)*nelems)) arrives as block i of
// dest on PE j. Both buffers must be symmetric and hold
// nelems*NumPEs() elements.
//
// The implementation is the one-sided direct exchange natural to xBGAS:
// each PE deposits its blocks into the peers' dest buffers with
// non-blocking puts, overlapping all N-1 transfers, and a barrier
// closes the exchange.
func Alltoall(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems int) error {
	if !dt.Valid() {
		return fmt.Errorf("core: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return fmt.Errorf("core: negative element count %d", nelems)
	}
	n := pe.NumPEs()
	me := pe.MyPE()
	w := uint64(dt.Width)
	block := uint64(nelems) * w
	cs := pe.StartCollective("alltoall", -1, nelems*n)
	defer pe.FinishCollective(cs)

	// Local block moves through the hierarchy like any other copy.
	timedCopy(pe, dt, dest+uint64(me)*block, src+uint64(me)*block, nelems, 1, 1)

	handles := pe.BorrowHandles(n - 1)
	defer pe.ReturnHandles(handles)
	for off := 1; off < n; off++ {
		// Rotated start (me+off) spreads simultaneous senders across
		// distinct receivers instead of all PEs hammering PE 0 first.
		p := (me + off) % n
		h, err := pe.PutNB(dt, dest+uint64(me)*block, src+uint64(p)*block, nelems, 1, p)
		if err != nil {
			return err
		}
		handles = append(handles, h)
	}
	for _, h := range handles {
		pe.Wait(h)
	}
	return pe.Barrier()
}
