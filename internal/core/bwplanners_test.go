package core

import (
	"fmt"
	"sync"
	"testing"

	"xbgas/internal/xbrtime"
)

// Tests for the bandwidth-optimal planner family (planners_bw.go):
// value conformance for allreduce/allgather/reduce-scatter across
// power-of-two and non-power-of-two PE counts, rooted ring
// broadcast/reduce at every root, the all-types matrix at the
// non-power-of-two counts, and the differential check that every
// executed transfer matches the plan's own Transfers projection.

// bwCounts are the PE counts the family is exercised at: the
// power-of-two fast paths, every non-power-of-two fallback shape up to
// 8, and the paper's 12-core environment.
var bwCounts = []int{1, 2, 3, 4, 5, 6, 7, 8, 12}

func TestBandwidthOptimalAllReduceValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, n := range bwCounts {
		for _, algo := range []Algorithm{AlgoRing, AlgoRabenseifner, AlgoBinomial, AlgoAuto} {
			for _, nelems := range []int{1, 7, 37, 4096} {
				n, algo, nelems := n, algo, nelems
				t.Run(fmt.Sprintf("%s/n%d/e%d", algo, n, nelems), func(t *testing.T) {
					runSPMD(t, n, func(pe *xbrtime.PE) error {
						me := pe.MyPE()
						dest, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						src, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						for j := 0; j < nelems; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
						}
						if err := AllReduceWith(pe, algo, dt, OpSum, dest, src, nelems, 1); err != nil {
							return err
						}
						for j := 0; j < nelems; j++ {
							want := int64(n*(j+1) + n*(n-1)/2)
							if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
								t.Errorf("%s n=%d: PE %d elem %d = %d, want %d",
									algo, n, me, j, got, want)
								return nil
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				})
			}
		}
	}
}

func TestBandwidthOptimalAllGatherValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, n := range bwCounts {
		for _, algo := range []Algorithm{AlgoRing, AlgoRabenseifner, AlgoBinomial, AlgoAuto} {
			for _, per := range []int{1, 3, 512} {
				n, algo, per := n, algo, per
				t.Run(fmt.Sprintf("%s/n%d/per%d", algo, n, per), func(t *testing.T) {
					// Uneven blocks: logical rank l contributes per+l%2
					// elements.
					msgs := make([]int, n)
					disp := make([]int, n)
					nelems := 0
					for l := 0; l < n; l++ {
						msgs[l] = per + l%2
						disp[l] = nelems
						nelems += msgs[l]
					}
					runSPMD(t, n, func(pe *xbrtime.PE) error {
						me := pe.MyPE()
						dest, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						// Symmetric heap: every PE must allocate the
						// same sizes, so size src for the largest block.
						src, err := pe.Malloc(uint64(per+1) * 8)
						if err != nil {
							return err
						}
						for j := 0; j < msgs[me]; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(1000*me+j+1))
						}
						if err := AllGatherWith(pe, algo, dt, dest, src, msgs, disp, nelems); err != nil {
							return err
						}
						for l := 0; l < n; l++ {
							for j := 0; j < msgs[l]; j++ {
								want := int64(1000*l + j + 1)
								at := dest + uint64(disp[l]+j)*8
								if got := int64(pe.Peek(dt, at)); got != want {
									t.Errorf("%s n=%d: PE %d block %d elem %d = %d, want %d",
										algo, n, me, l, j, got, want)
									return nil
								}
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				})
			}
		}
	}
}

func TestReduceScatterValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, n := range bwCounts {
		for _, algo := range []Algorithm{AlgoRing, AlgoRabenseifner, AlgoAuto} {
			for _, nelems := range []int{1, 7, 37, 4101} {
				n, algo, nelems := n, algo, nelems
				t.Run(fmt.Sprintf("%s/n%d/e%d", algo, n, nelems), func(t *testing.T) {
					runSPMD(t, n, func(pe *xbrtime.PE) error {
						me := pe.MyPE()
						dest, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						src, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						for j := 0; j < nelems; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
						}
						if err := ReduceScatterWith(pe, algo, dt, OpSum, dest, src, nelems); err != nil {
							return err
						}
						// PE v owns chunk v of the closed-form equal
						// chunking of nelems.
						per, rem := nelems/n, nelems%n
						off := per*me + min(me, rem)
						cnt := per
						if me < rem {
							cnt++
						}
						for i := 0; i < cnt; i++ {
							j := off + i
							want := int64(n*(j+1) + n*(n-1)/2)
							if got := int64(pe.Peek(dt, dest+uint64(i)*8)); got != want {
								t.Errorf("%s n=%d: PE %d chunk elem %d (global %d) = %d, want %d",
									algo, n, me, i, j, got, want)
								return nil
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				})
			}
		}
	}
}

// TestRingRootedCollectives drives the ring chain broadcast and reduce
// at every root, including a payload large enough to take the
// segmented (flag-pipelined) form.
func TestRingRootedCollectives(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, n := range []int{2, 3, 5, 8} {
		// 8195 elements = 64 KiB + 24 B: past SegmentMinBytes, so the
		// auto segment selection pipelines the ring.
		for _, nelems := range []int{5, 8195} {
			for root := 0; root < n; root++ {
				n, nelems, root := n, nelems, root
				t.Run(fmt.Sprintf("n%d/e%d/root%d", n, nelems, root), func(t *testing.T) {
					runSPMD(t, n, func(pe *xbrtime.PE) error {
						me := pe.MyPE()
						dest, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						src, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						if me == root {
							for j := 0; j < nelems; j++ {
								pe.Poke(dt, src+uint64(j)*8, uint64(j+5))
							}
						}
						if err := BroadcastWith(AlgoRing, pe, dt, dest, src, nelems, 1, root); err != nil {
							return err
						}
						for j := 0; j < nelems; j += 1 + nelems/17 {
							if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != int64(j+5) {
								t.Errorf("broadcast n=%d root=%d: PE %d elem %d = %d, want %d",
									n, root, me, j, got, j+5)
								return nil
							}
						}
						for j := 0; j < nelems; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(me+j))
						}
						if err := ReduceWith(AlgoRing, pe, dt, OpSum, dest, src, nelems, 1, root); err != nil {
							return err
						}
						if me == root {
							for j := 0; j < nelems; j += 1 + nelems/17 {
								want := int64(n*j + n*(n-1)/2)
								if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
									t.Errorf("reduce n=%d root=%d: elem %d = %d, want %d",
										n, root, j, got, want)
									return nil
								}
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				})
			}
		}
	}
}

// TestBandwidthCollectivesEveryType pushes every Table 1 type through
// allreduce, reduce-scatter, and allgather under both bandwidth-optimal
// planners at the non-power-of-two PE counts (and the paper's 12).
// Values are chosen so every partial result is exactly representable in
// every type, making the checks independent of combine order.
func TestBandwidthCollectivesEveryType(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 12} {
		for _, dt := range xbrtime.Types {
			n, dt := n, dt
			t.Run(fmt.Sprintf("n%d/%s", n, dt.Name), func(t *testing.T) {
				nelems := n + 1 // uneven chunks: rem = 1
				w := uint64(dt.Width)
				val := func(p int, op ReduceOp) uint64 {
					if dt.Kind == xbrtime.KindFloat {
						if op == OpProd {
							return dt.FromFloat(2) // products stay powers of two
						}
						return dt.FromFloat(float64(p + 1))
					}
					return dt.Canon(uint64(p + 1))
				}
				for _, algo := range []Algorithm{AlgoRing, AlgoRabenseifner} {
					for _, op := range AllReduceOps() {
						if !op.ValidFor(dt) {
							continue
						}
						algo, op := algo, op
						runSPMD(t, n, func(pe *xbrtime.PE) error {
							me := pe.MyPE()
							dest, err := pe.Malloc(uint64(nelems) * w)
							if err != nil {
								return err
							}
							src, err := pe.Malloc(uint64(nelems) * w)
							if err != nil {
								return err
							}
							mine := val(me, op)
							for j := 0; j < nelems; j++ {
								pe.Poke(dt, src+uint64(j)*w, mine)
							}
							want := Identity(dt, op)
							for p := 0; p < n; p++ {
								if want, err = Combine(dt, op, want, val(p, op)); err != nil {
									return err
								}
							}

							if err := AllReduceWith(pe, algo, dt, op, dest, src, nelems, 1); err != nil {
								return err
							}
							for j := 0; j < nelems; j++ {
								if got := pe.Peek(dt, dest+uint64(j)*w); got != want {
									t.Errorf("%s allreduce %s n=%d: PE %d elem %d = %s, want %s",
										algo, op, n, me, j, dt.FormatValue(got), dt.FormatValue(want))
									return nil
								}
							}

							if err := ReduceScatterWith(pe, algo, dt, op, dest, src, nelems); err != nil {
								return err
							}
							cnt := nelems / n
							if me < nelems%n {
								cnt++
							}
							for i := 0; i < cnt; i++ {
								if got := pe.Peek(dt, dest+uint64(i)*w); got != want {
									t.Errorf("%s reduce_scatter %s n=%d: PE %d elem %d = %s, want %s",
										algo, op, n, me, i, dt.FormatValue(got), dt.FormatValue(want))
									return nil
								}
							}
							if err := pe.Free(dest); err != nil {
								return err
							}
							return pe.Free(src)
						})
					}

					// Allgather: one element per PE, the rank identity.
					algo := algo
					msgs := make([]int, n)
					disp := make([]int, n)
					for l := 0; l < n; l++ {
						msgs[l], disp[l] = 1, l
					}
					runSPMD(t, n, func(pe *xbrtime.PE) error {
						me := pe.MyPE()
						dest, err := pe.Malloc(uint64(n) * w)
						if err != nil {
							return err
						}
						src, err := pe.Malloc(w)
						if err != nil {
							return err
						}
						pe.Poke(dt, src, val(me, OpSum))
						if err := AllGatherWith(pe, algo, dt, dest, src, msgs, disp, n); err != nil {
							return err
						}
						for l := 0; l < n; l++ {
							if got := pe.Peek(dt, dest+uint64(l)*w); got != val(l, OpSum) {
								t.Errorf("%s allgather %s n=%d: PE %d block %d = %s",
									algo, dt.Name, n, me, l, dt.FormatValue(got))
								return nil
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				}
			})
		}
	}
}

// TestBandwidthPlannerTransfersMatchExecution is the differential check
// for the new planners: every remote move the executor performs must
// appear in the plan's own Transfers projection, and vice versa.
// Element counts keep every chunk non-empty so no skip-if-zero step
// hides a scheduled transfer.
func TestBandwidthPlannerTransfersMatchExecution(t *testing.T) {
	type tc struct {
		coll     Collective
		algo     Algorithm
		segments int
	}
	cases := []tc{
		{CollAllReduce, AlgoRing, 1},
		{CollAllGather, AlgoRing, 1},
		{CollReduceScatter, AlgoRing, 1},
		{CollAllReduce, AlgoRabenseifner, 1},
		{CollAllGather, AlgoRabenseifner, 1},
		{CollReduceScatter, AlgoRabenseifner, 1},
		{CollBroadcast, AlgoRing, 1},
		{CollReduce, AlgoRing, 1},
		{CollBroadcast, AlgoRing, 3},
		{CollReduce, AlgoRing, 3},
	}
	for _, c := range cases {
		for _, n := range []int{2, 3, 4, 5, 7, 8, 12} {
			c, n := c, n
			t.Run(fmt.Sprintf("%s/%s/seg%d/n%d", c.coll, c.algo, c.segments, n), func(t *testing.T) {
				p, err := CompilePlanSeg(c.coll, c.algo, n, c.segments)
				if err != nil {
					t.Fatal(err)
				}
				if c.segments > 1 && p.Segments != c.segments {
					t.Fatalf("%s/%s: wanted a %d-segment plan, got %d", c.coll, c.algo, c.segments, p.Segments)
				}
				want := p.Transfers()
				sortTransfers(want)
				var mu sync.Mutex
				var got []Transfer
				runSPMD(t, n, func(pe *xbrtime.PE) error {
					nelems := 2*n + 3
					if c.segments > 1 {
						nelems = 2*c.segments + 1
					}
					a := ExecArgs{
						DT: xbrtime.TypeInt64, Op: OpSum,
						Nelems: nelems, Stride: 1, Root: 0,
					}
					w := uint64(8)
					var err error // shadow the outer err: closures run on every PE
					var allocs []uint64
					alloc := func(bytes uint64) (uint64, error) {
						ad, err := pe.Malloc(bytes)
						if err != nil {
							return 0, err
						}
						allocs = append(allocs, ad)
						return ad, nil
					}
					if a.Dest, err = alloc(uint64(nelems) * w); err != nil {
						return err
					}
					if a.Src, err = alloc(uint64(nelems) * w); err != nil {
						return err
					}
					if c.coll == CollAllGather {
						a.PeMsgs = make([]int, n)
						a.PeDisp = make([]int, n)
						rest := nelems
						for l := 0; l < n; l++ {
							per := rest / (n - l)
							a.PeMsgs[l] = per
							a.PeDisp[l] = nelems - rest
							rest -= per
						}
					}
					a.OnTransfer = func(round int, s Step, _ int) {
						tr := Transfer{Round: round, Kind: s.Kind, From: s.Actor, To: s.Peer}
						if s.Kind == StepGet {
							tr.From, tr.To = s.Peer, s.Actor
						}
						mu.Lock()
						got = append(got, tr)
						mu.Unlock()
					}
					if err := Execute(pe, p, a); err != nil {
						return err
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					for _, ad := range allocs {
						if err := pe.Free(ad); err != nil {
							return err
						}
					}
					return nil
				})
				sortTransfers(got)
				if len(got) != len(want) {
					t.Fatalf("executed %d transfers, plan schedules %d", len(got), len(want))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Fatalf("transfer %d: executed %+v, plan %+v", i, got[i], want[i])
					}
				}
			})
		}
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
