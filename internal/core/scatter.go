package core

import (
	"xbgas/internal/xbrtime"
)

// Scatter distributes a distinct block of src on the root PE to dest on
// each PE (paper §4.5, Algorithm 3).
//
// peMsgs[l] is the number of elements destined for logical rank l and
// peDisp[l] the element offset of that block inside src on the root;
// nelems is the total element count (the sum of peMsgs). dest receives
// peMsgs[MyPE()] contiguous elements on each PE. dest must be a
// symmetric address; src is significant only on the root.
//
// Because src is ordered by logical rank while the tree runs in virtual
// ranks, blocks bound for a subtree need not be contiguous when the
// root is non-zero. The root therefore reorders src into a symmetric
// staging buffer by virtual rank before communication begins, which
// "guarantees that the data for each tree node and its children is
// contiguous and ensures that a single put is sufficient at each stage"
// — at every round a sender forwards one contiguous block covering its
// partner and the partner's children.
func Scatter(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	nPEs := pe.NumPEs()
	me := pe.MyPE()
	vRank := VirtualRank(me, root, nPEs)
	rounds := CeilLog2(nPEs)
	w := uint64(dt.Width)
	cs := pe.StartCollective("scatter", root, nelems)
	defer pe.FinishCollective(cs)

	adj := adjustedDisplacements(pe, peMsgs, root, nPEs)
	defer pe.ReturnInts(adj)

	bufBytes := uint64(nelems) * w
	if nelems == 0 {
		bufBytes = w
	}
	sBuf, err := pe.Malloc(bufBytes)
	if err != nil {
		return err
	}

	// Root reorders src (logical-rank order, peDisp offsets) into the
	// staging buffer in virtual-rank order.
	if vRank == 0 {
		for v := 0; v < nPEs; v++ {
			l := LogicalRank(v, root, nPEs)
			timedCopy(pe, dt,
				sBuf+uint64(adj[v])*w,
				src+uint64(peDisp[l])*w,
				peMsgs[l], 1, 1)
		}
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}

	mask := (1 << rounds) - 1
	for i := rounds - 1; i >= 0; i-- {
		mask ^= 1 << i
		// Resolve the partner and block size before opening the round
		// span so it opens fully annotated.
		peer, msgSize, vPart := -1, 0, 0
		if vRank&mask == 0 && vRank&(1<<i) == 0 {
			if p := (vRank ^ (1 << i)) % nPEs; vRank < p {
				// One contiguous block: the partner's elements plus all
				// of its children's, to be forwarded in later rounds.
				peer = LogicalRank(p, root, nPEs)
				vPart = p
				msgSize = subtreeCount(adj, p, i, nPEs)
			}
		}
		rs := pe.StartRound("scatter.round", rounds-1-i, peer, msgSize)
		if peer >= 0 && msgSize > 0 {
			off := sBuf + uint64(adj[vPart])*w
			if err := pe.Put(dt, off, off, msgSize, 1, peer); err != nil {
				pe.Free(sBuf) //nolint:errcheck
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			pe.Free(sBuf) //nolint:errcheck
			return err
		}
		pe.FinishRound(rs)
	}

	// Relocate this PE's block from the staging buffer to dest.
	timedCopy(pe, dt, dest, sBuf+uint64(adj[vRank])*w, peMsgs[me], 1, 1)
	return pe.Free(sBuf)
}
