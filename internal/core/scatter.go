package core

import (
	"xbgas/internal/xbrtime"
)

// Scatter distributes a distinct block of src on the root PE to dest on
// each PE (paper §4.5, Algorithm 3).
//
// peMsgs[l] is the number of elements destined for logical rank l and
// peDisp[l] the element offset of that block inside src on the root;
// nelems is the total element count (the sum of peMsgs). dest receives
// peMsgs[MyPE()] contiguous elements on each PE. dest must be a
// symmetric address; src is significant only on the root.
//
// Because src is ordered by logical rank while the tree runs in
// virtual ranks, the root reorders src into a virtual-rank-ordered
// staging buffer before communication begins, which "guarantees that
// the data for each tree node and its children is contiguous and
// ensures that a single put is sufficient at each stage" (see
// binomialScatterPlan).
//
//xbgas:typed vector
func Scatter(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollScatter, AlgoBinomial, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}
