package core

import (
	"testing"

	"xbgas/internal/xbrtime"
)

// TestEveryTable1TypeThroughEveryCollective pushes one value of every
// Table 1 type through broadcast, scatter, gather, and every valid
// reduction — the coverage behind the generated typed surface.
func TestEveryTable1TypeThroughEveryCollective(t *testing.T) {
	const nPEs = 4
	for _, dt := range xbrtime.Types {
		dt := dt
		t.Run(dt.Name, func(t *testing.T) {
			w := uint64(dt.Width)
			msgs := []int{1, 1, 1, 1}
			disp := []int{0, 1, 2, 3}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				buf, err := pe.Malloc(w * 8)
				if err != nil {
					return err
				}
				vec, err := pe.Malloc(w * 8)
				if err != nil {
					return err
				}
				out, err := pe.PrivateAlloc(w * 8)
				if err != nil {
					return err
				}

				// Broadcast a type-representative value from PE 2.
				var sample uint64
				if dt.Kind == xbrtime.KindFloat {
					sample = dt.FromFloat(2.5)
				} else {
					sample = dt.Canon(uint64(100 + 7)) // fits every width
				}
				if me == 2 {
					pe.Poke(dt, out, sample)
				}
				if err := Broadcast(pe, dt, buf, out, 1, 1, 2); err != nil {
					return err
				}
				if got := pe.Peek(dt, buf); got != sample {
					t.Errorf("%s broadcast: PE %d got %s, want %s",
						dt, me, dt.FormatValue(got), dt.FormatValue(sample))
				}

				// Scatter 4 distinct values from PE 1, gather them back.
				if me == 1 {
					for i := 0; i < nPEs; i++ {
						if dt.Kind == xbrtime.KindFloat {
							pe.Poke(dt, out+uint64(i)*w, dt.FromFloat(float64(i+1)))
						} else {
							pe.Poke(dt, out+uint64(i)*w, dt.Canon(uint64(i+1)))
						}
					}
				}
				if err := Scatter(pe, dt, buf, out, msgs, disp, nPEs, 1); err != nil {
					return err
				}
				var wantMine uint64
				if dt.Kind == xbrtime.KindFloat {
					wantMine = dt.FromFloat(float64(me + 1))
				} else {
					wantMine = dt.Canon(uint64(me + 1))
				}
				if got := pe.Peek(dt, buf); got != wantMine {
					t.Errorf("%s scatter: PE %d got %s, want %s",
						dt, me, dt.FormatValue(got), dt.FormatValue(wantMine))
				}
				if err := Gather(pe, dt, vec, buf, msgs, disp, nPEs, 0); err != nil {
					return err
				}
				if me == 0 {
					for i := 0; i < nPEs; i++ {
						var want uint64
						if dt.Kind == xbrtime.KindFloat {
							want = dt.FromFloat(float64(i + 1))
						} else {
							want = dt.Canon(uint64(i + 1))
						}
						if got := pe.Peek(dt, vec+uint64(i)*w); got != want {
							t.Errorf("%s gather elem %d: got %s, want %s",
								dt, i, dt.FormatValue(got), dt.FormatValue(want))
						}
					}
				}

				// Every valid reduction.
				for _, op := range AllReduceOps() {
					if !op.ValidFor(dt) {
						continue
					}
					var mine uint64
					if dt.Kind == xbrtime.KindFloat {
						mine = dt.FromFloat(float64(me + 1))
					} else {
						mine = dt.Canon(uint64(me + 1))
					}
					pe.Poke(dt, buf, mine)
					if err := Reduce(pe, dt, op, out, buf, 1, 1, 3); err != nil {
						return err
					}
					if me == 3 {
						want := Identity(dt, op)
						for p := 0; p < nPEs; p++ {
							var v uint64
							if dt.Kind == xbrtime.KindFloat {
								v = dt.FromFloat(float64(p + 1))
							} else {
								v = dt.Canon(uint64(p + 1))
							}
							var err error
							want, err = Combine(dt, op, want, v)
							if err != nil {
								return err
							}
						}
						if got := pe.Peek(dt, out); got != want {
							t.Errorf("%s reduce %s: got %s, want %s",
								dt, op, dt.FormatValue(got), dt.FormatValue(want))
						}
					}
				}
				// The §7 extensions: reduction-to-all, reduce-scatter,
				// gather-to-all, and personalized all-to-all, each
				// against the sequential Combine/Identity oracle.
				val := func(k int) uint64 {
					if dt.Kind == xbrtime.KindFloat {
						return dt.FromFloat(float64(k))
					}
					return dt.Canon(uint64(k))
				}
				fold := func(op ReduceOp, contrib func(p int) uint64) (uint64, error) {
					acc := Identity(dt, op)
					for p := 0; p < nPEs; p++ {
						var err error
						if acc, err = Combine(dt, op, acc, contrib(p)); err != nil {
							return 0, err
						}
					}
					return acc, nil
				}
				for _, op := range AllReduceOps() {
					if !op.ValidFor(dt) {
						continue
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					pe.Poke(dt, buf, val(me+1))
					if err := AllReduce(pe, dt, op, vec, buf, 1, 1); err != nil {
						return err
					}
					want, err := fold(op, func(p int) uint64 { return val(p + 1) })
					if err != nil {
						return err
					}
					if got := pe.Peek(dt, vec); got != want {
						t.Errorf("%s allreduce %s: PE %d got %s, want %s",
							dt, op, me, dt.FormatValue(got), dt.FormatValue(want))
					}

					if err := pe.Barrier(); err != nil {
						return err
					}
					for j := 0; j < nPEs; j++ {
						pe.Poke(dt, buf+uint64(j)*w, val(me+j+1))
					}
					if err := ReduceScatter(pe, dt, op, vec, buf, nPEs); err != nil {
						return err
					}
					// With nelems == nPEs, PE me owns global element me.
					want, err = fold(op, func(p int) uint64 { return val(p + me + 1) })
					if err != nil {
						return err
					}
					if got := pe.Peek(dt, vec); got != want {
						t.Errorf("%s reduce_scatter %s: PE %d got %s, want %s",
							dt, op, me, dt.FormatValue(got), dt.FormatValue(want))
					}
				}

				if err := pe.Barrier(); err != nil {
					return err
				}
				pe.Poke(dt, buf, val(me+40))
				if err := AllGather(pe, dt, vec, buf, msgs, disp, nPEs); err != nil {
					return err
				}
				for p := 0; p < nPEs; p++ {
					if got := pe.Peek(dt, vec+uint64(p)*w); got != val(p+40) {
						t.Errorf("%s allgather: PE %d elem %d got %s, want %s",
							dt, me, p, dt.FormatValue(got), dt.FormatValue(val(p+40)))
					}
				}

				if err := pe.Barrier(); err != nil {
					return err
				}
				for j := 0; j < nPEs; j++ {
					pe.Poke(dt, buf+uint64(j)*w, val(1+me*nPEs+j))
				}
				if err := Alltoall(pe, dt, vec, buf, 1); err != nil {
					return err
				}
				for i := 0; i < nPEs; i++ {
					if got := pe.Peek(dt, vec+uint64(i)*w); got != val(1+i*nPEs+me) {
						t.Errorf("%s alltoall: PE %d block %d got %s, want %s",
							dt, me, i, dt.FormatValue(got), dt.FormatValue(val(1+i*nPEs+me)))
					}
				}

				if err := pe.Free(buf); err != nil {
					return err
				}
				return pe.Free(vec)
			})
		})
	}
}

// TestCollectivesAtPaperCoreCount runs the collectives at 12 PEs — the
// core count of the paper's simulation environment (§5.1).
func TestCollectivesAtPaperCoreCount(t *testing.T) {
	const nPEs = 12
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		out, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 7 {
			pe.Poke(dt, src, 1234)
		}
		if err := Broadcast(pe, dt, buf, src, 1, 1, 7); err != nil {
			return err
		}
		if got := pe.Peek(dt, buf); got != 1234 {
			t.Errorf("PE %d broadcast at 12 PEs = %d", pe.MyPE(), got)
		}
		pe.Poke(dt, buf, uint64(pe.MyPE()))
		if err := Reduce(pe, dt, OpSum, out, buf, 1, 1, 11); err != nil {
			return err
		}
		if pe.MyPE() == 11 {
			if got := int64(pe.Peek(dt, out)); got != 66 { // 0+..+11
				t.Errorf("reduce at 12 PEs = %d, want 66", got)
			}
		}
		if err := pe.Free(buf); err != nil {
			return err
		}
		return pe.Free(out)
	})
}
