package core

import (
	"xbgas/internal/xbrtime"
)

// Linear (flat) collectives: the root communicates with every other PE
// directly, O(N) rounds of traffic through one node. They are the
// baseline for the paper's §4.1 observation that the best algorithm
// depends on the call's arguments, and the ablation benchmarks compare
// them against the binomial tree. Each entry point executes the cached
// linear plan (see linearBroadcastPlan and friends).

// BroadcastLinear is a flat broadcast: the root puts to each PE in turn.
func BroadcastLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	return runPlan(pe, CollBroadcast, AlgoLinear, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}

// ReduceLinear is a flat reduction: the root gets every PE's staged
// contribution and folds it locally.
func ReduceLinear(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	return runPlan(pe, CollReduce, AlgoLinear, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}

// ScatterLinear is a flat scatter: the root puts each PE's block
// directly to its dest.
func ScatterLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollScatter, AlgoLinear, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}

// GatherLinear is a flat gather: the root gets each PE's block from a
// symmetric staging buffer.
func GatherLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollGather, AlgoLinear, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}
