package core

import (
	"xbgas/internal/xbrtime"
)

// Linear (flat) collectives: the root communicates with every other PE
// directly, O(N) rounds of traffic through one node. They are the
// baseline for the paper's §4.1 observation that the best algorithm
// depends on the call's arguments, and the ablation benchmarks compare
// them against the binomial tree.

// BroadcastLinear is a flat broadcast: the root puts to each PE in turn.
func BroadcastLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	cs := pe.StartCollective("broadcast_linear", root, nelems)
	defer pe.FinishCollective(cs)
	if pe.MyPE() == root {
		if dest != src {
			timedCopy(pe, dt, dest, src, nelems, stride, stride)
		}
		for p := 0; p < pe.NumPEs(); p++ {
			if p == root {
				continue
			}
			if err := pe.Put(dt, dest, dest, nelems, stride, p); err != nil {
				return err
			}
		}
	}
	return pe.Barrier()
}

// ReduceLinear is a flat reduction: the root gets every PE's staged
// contribution and folds it locally.
func ReduceLinear(pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	cs := pe.StartCollective("reduce_linear", root, nelems)
	defer pe.FinishCollective(cs)
	w := uint64(dt.Width)
	span := spanBytes(dt, nelems, stride)
	sBuf, err := pe.Malloc(span)
	if err != nil {
		return err
	}
	timedCopy(pe, dt, sBuf, src, nelems, stride, stride)
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}
	if pe.MyPE() == root {
		lBuf, err := pe.Scratch(span)
		if err != nil {
			pe.Free(sBuf) //nolint:errcheck
			return err
		}
		cost := combineCost(dt, op)
		// Start from the root's own staged values, fold in each peer.
		timedCopy(pe, dt, dest, sBuf, nelems, stride, stride)
		for p := 0; p < pe.NumPEs(); p++ {
			if p == root {
				continue
			}
			if err := pe.Get(dt, lBuf, sBuf, nelems, stride, p); err != nil {
				pe.Free(sBuf) //nolint:errcheck
				return err
			}
			for j := 0; j < nelems; j++ {
				off := uint64(j*stride) * w
				a := pe.ReadElem(dt, dest+off)
				b := pe.ReadElem(dt, lBuf+off)
				r, err := Combine(dt, op, a, b)
				if err != nil {
					pe.Free(sBuf) //nolint:errcheck
					return err
				}
				pe.Advance(cost)
				pe.WriteElem(dt, dest+off, r)
			}
		}
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}
	return pe.Free(sBuf)
}

// ScatterLinear is a flat scatter: the root puts each PE's block
// directly to its dest.
func ScatterLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	cs := pe.StartCollective("scatter_linear", root, nelems)
	defer pe.FinishCollective(cs)
	w := uint64(dt.Width)
	if pe.MyPE() == root {
		for p := 0; p < pe.NumPEs(); p++ {
			blk := src + uint64(peDisp[p])*w
			if p == root {
				timedCopy(pe, dt, dest, blk, peMsgs[p], 1, 1)
				continue
			}
			if peMsgs[p] > 0 {
				if err := pe.Put(dt, dest, blk, peMsgs[p], 1, p); err != nil {
					return err
				}
			}
		}
	}
	return pe.Barrier()
}

// GatherLinear is a flat gather: the root gets each PE's block from a
// symmetric staging buffer.
func GatherLinear(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	cs := pe.StartCollective("gather_linear", root, nelems)
	defer pe.FinishCollective(cs)
	w := uint64(dt.Width)
	me := pe.MyPE()
	most := 0
	for _, m := range peMsgs {
		if m > most {
			most = m
		}
	}
	bufBytes := uint64(most) * w
	if most == 0 {
		bufBytes = w
	}
	sBuf, err := pe.Malloc(bufBytes)
	if err != nil {
		return err
	}
	timedCopy(pe, dt, sBuf, src, peMsgs[me], 1, 1)
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}
	if me == root {
		for p := 0; p < pe.NumPEs(); p++ {
			dst := dest + uint64(peDisp[p])*w
			if p == root {
				timedCopy(pe, dt, dst, sBuf, peMsgs[p], 1, 1)
				continue
			}
			if peMsgs[p] > 0 {
				if err := pe.Get(dt, dst, sBuf, peMsgs[p], 1, p); err != nil {
					pe.Free(sBuf) //nolint:errcheck
					return err
				}
			}
		}
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}
	return pe.Free(sBuf)
}
