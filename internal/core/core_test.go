package core

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xbgas/internal/xbrtime"
)

// runSPMD executes fn on every PE of a fresh runtime.
func runSPMD(t *testing.T, nPEs int, fn func(pe *xbrtime.PE) error) {
	t.Helper()
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestTable2Mapping(t *testing.T) {
	// Paper Table 2: n_pes=7, root=4.
	want := map[int]int{0: 3, 1: 4, 2: 5, 3: 6, 4: 0, 5: 1, 6: 2}
	for logRank, virRank := range want {
		if got := VirtualRank(logRank, 4, 7); got != virRank {
			t.Errorf("VirtualRank(%d, root=4, n=7) = %d, want %d", logRank, got, virRank)
		}
		if got := LogicalRank(virRank, 4, 7); got != logRank {
			t.Errorf("LogicalRank(%d, root=4, n=7) = %d, want %d", virRank, got, logRank)
		}
	}
	table := Table2Mapping(7, 4)
	if !strings.Contains(table, "log_rank") || !strings.Contains(table, "root=4") {
		t.Errorf("Table2Mapping rendering:\n%s", table)
	}
}

func TestVirtualRankProperties(t *testing.T) {
	f := func(nRaw, rootRaw uint8) bool {
		n := int(nRaw%16) + 1
		root := int(rootRaw) % n
		// Root maps to virtual rank 0; the mapping is a bijection with
		// LogicalRank as its inverse.
		if VirtualRank(root, root, n) != 0 {
			return false
		}
		seen := make([]bool, n)
		for l := 0; l < n; l++ {
			v := VirtualRank(l, root, n)
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
			if LogicalRank(v, root, n) != l {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestCeilLog2(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 3: 2, 4: 2, 5: 3, 7: 3, 8: 3, 9: 4, 12: 4, 16: 4, 17: 5}
	for n, want := range cases {
		if got := CeilLog2(n); got != want {
			t.Errorf("CeilLog2(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestBroadcastAllConfigurations(t *testing.T) {
	for _, nPEs := range []int{1, 2, 3, 4, 5, 7, 8} {
		for _, root := range []int{0, nPEs - 1, nPEs / 2} {
			nPEs, root := nPEs, root
			const nelems, stride = 6, 2
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				dt := xbrtime.TypeInt64
				w := uint64(dt.Width)
				dest, err := pe.Malloc(spanBytes(dt, nelems, stride))
				if err != nil {
					return err
				}
				src, err := pe.PrivateAlloc(spanBytes(dt, nelems, stride))
				if err != nil {
					return err
				}
				if pe.MyPE() == root {
					for i := 0; i < nelems; i++ {
						pe.Poke(dt, src+uint64(i*stride)*w, uint64(int64(9000+i)))
					}
				}
				if err := Broadcast(pe, dt, dest, src, nelems, stride, root); err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				for i := 0; i < nelems; i++ {
					got := int64(pe.Peek(dt, dest+uint64(i*stride)*w))
					if got != int64(9000+i) {
						t.Errorf("n=%d root=%d PE %d elem %d = %d",
							nPEs, root, pe.MyPE(), i, got)
					}
				}
				return pe.Free(dest)
			})
		}
	}
}

func TestReduceSumMatchesReference(t *testing.T) {
	for _, nPEs := range []int{1, 2, 3, 5, 8} {
		for _, root := range []int{0, nPEs - 1} {
			nPEs, root := nPEs, root
			const nelems = 5
			rng := rand.New(rand.NewSource(int64(nPEs*100 + root)))
			contrib := make([][]int64, nPEs)
			for p := range contrib {
				contrib[p] = make([]int64, nelems)
				for i := range contrib[p] {
					contrib[p][i] = int64(rng.Intn(1000) - 500)
				}
			}
			want := make([]int64, nelems)
			for _, row := range contrib {
				for i, v := range row {
					want[i] += v
				}
			}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				dt := xbrtime.TypeInt64
				w := uint64(dt.Width)
				src, err := pe.Malloc(nelems * 8)
				if err != nil {
					return err
				}
				dest, err := pe.PrivateAlloc(nelems * 8)
				if err != nil {
					return err
				}
				for i := 0; i < nelems; i++ {
					pe.Poke(dt, src+uint64(i)*w, uint64(contrib[pe.MyPE()][i]))
				}
				if err := Reduce(pe, dt, OpSum, dest, src, nelems, 1, root); err != nil {
					return err
				}
				if pe.MyPE() == root {
					for i := 0; i < nelems; i++ {
						got := int64(pe.Peek(dt, dest+uint64(i)*w))
						if got != want[i] {
							t.Errorf("n=%d root=%d elem %d = %d, want %d",
								nPEs, root, i, got, want[i])
						}
					}
				}
				return pe.Free(src)
			})
		}
	}
}

func TestReduceAllOperatorsAllKinds(t *testing.T) {
	const nPEs = 4
	dts := []xbrtime.DType{
		xbrtime.TypeInt32, xbrtime.TypeUint16, xbrtime.TypeDouble, xbrtime.TypeFloat,
		xbrtime.TypeChar, xbrtime.TypeUint64,
	}
	for _, dt := range dts {
		for _, op := range AllReduceOps() {
			if !op.ValidFor(dt) {
				continue
			}
			dt, op := dt, op
			// Exactly representable contributions keep float comparisons
			// exact regardless of combine order.
			vals := make([]uint64, nPEs)
			for p := 0; p < nPEs; p++ {
				if dt.Kind == xbrtime.KindFloat {
					vals[p] = dt.FromFloat(float64(p + 2))
				} else {
					vals[p] = dt.Canon(uint64(3*p + 1))
				}
			}
			want := vals[0]
			for p := 1; p < nPEs; p++ {
				var err error
				want, err = Combine(dt, op, want, vals[p])
				if err != nil {
					t.Fatal(err)
				}
			}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				src, err := pe.Malloc(uint64(dt.Width))
				if err != nil {
					return err
				}
				dest, err := pe.PrivateAlloc(uint64(dt.Width))
				if err != nil {
					return err
				}
				pe.Poke(dt, src, vals[pe.MyPE()])
				if err := Reduce(pe, dt, op, dest, src, 1, 1, 0); err != nil {
					return err
				}
				if pe.MyPE() == 0 {
					if got := pe.Peek(dt, dest); got != want {
						t.Errorf("%s %s: got %s, want %s", dt, op,
							dt.FormatValue(got), dt.FormatValue(want))
					}
				}
				return pe.Free(src)
			})
		}
	}
}

func TestReduceRejectsBitwiseOnFloats(t *testing.T) {
	runSPMD(t, 2, func(pe *xbrtime.PE) error {
		err := Reduce(pe, xbrtime.TypeDouble, OpBand, 0, xbrtime.SharedBase, 1, 1, 0)
		if err == nil {
			t.Error("bitwise AND on double must fail")
		}
		return nil
	})
}

func TestReduceWithStride(t *testing.T) {
	const nPEs, nelems, stride = 3, 4, 3
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt32
		w := uint64(dt.Width)
		src, err := pe.Malloc(spanBytes(dt, nelems, stride))
		if err != nil {
			return err
		}
		dest, err := pe.PrivateAlloc(spanBytes(dt, nelems, stride))
		if err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(dt, src+uint64(i*stride)*w, uint64(pe.MyPE()*10+i))
		}
		if err := Reduce(pe, dt, OpSum, dest, src, nelems, stride, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := 0; i < nelems; i++ {
				want := int64(0)
				for p := 0; p < nPEs; p++ {
					want += int64(p*10 + i)
				}
				got := int64(pe.Peek(dt, dest+uint64(i*stride)*w))
				if got != want {
					t.Errorf("strided elem %d = %d, want %d", i, got, want)
				}
			}
		}
		return pe.Free(src)
	})
}

func TestScatterVectored(t *testing.T) {
	for _, root := range []int{0, 4} {
		root := root
		const nPEs = 7
		// Distinct counts per PE, with gaps between blocks in src.
		msgs := []int{3, 1, 4, 1, 5, 2, 6}
		disp := make([]int, nPEs)
		off := 0
		for i, m := range msgs {
			disp[i] = off + i // i-element gap before each block
			off = disp[i] + m
		}
		total := 0
		for _, m := range msgs {
			total += m
		}
		srcElems := off
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			dt := xbrtime.TypeInt64
			w := uint64(dt.Width)
			dest, err := pe.Malloc(uint64(total) * w)
			if err != nil {
				return err
			}
			src, err := pe.PrivateAlloc(uint64(srcElems) * w)
			if err != nil {
				return err
			}
			if pe.MyPE() == root {
				for p := 0; p < nPEs; p++ {
					for i := 0; i < msgs[p]; i++ {
						pe.Poke(dt, src+uint64(disp[p]+i)*w, uint64(int64(1000*p+i)))
					}
				}
			}
			if err := Scatter(pe, dt, dest, src, msgs, disp, total, root); err != nil {
				return err
			}
			me := pe.MyPE()
			for i := 0; i < msgs[me]; i++ {
				got := int64(pe.Peek(dt, dest+uint64(i)*w))
				if got != int64(1000*me+i) {
					t.Errorf("root=%d PE %d elem %d = %d, want %d",
						root, me, i, got, 1000*me+i)
				}
			}
			return pe.Free(dest)
		})
	}
}

func TestGatherVectored(t *testing.T) {
	for _, root := range []int{0, 3} {
		root := root
		const nPEs = 5
		msgs := []int{2, 4, 1, 3, 2}
		disp := make([]int, nPEs)
		off := 0
		for i, m := range msgs {
			disp[i] = off
			off += m
		}
		total := off
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			dt := xbrtime.TypeInt32
			w := uint64(dt.Width)
			src, err := pe.PrivateAlloc(uint64(msgs[pe.MyPE()]+1) * w)
			if err != nil {
				return err
			}
			dest, err := pe.PrivateAlloc(uint64(total) * w)
			if err != nil {
				return err
			}
			for i := 0; i < msgs[pe.MyPE()]; i++ {
				pe.Poke(dt, src+uint64(i)*w, uint64(100*pe.MyPE()+i))
			}
			if err := Gather(pe, dt, dest, src, msgs, disp, total, root); err != nil {
				return err
			}
			if pe.MyPE() == root {
				for p := 0; p < nPEs; p++ {
					for i := 0; i < msgs[p]; i++ {
						got := int64(pe.Peek(dt, dest+uint64(disp[p]+i)*w))
						if got != int64(100*p+i) {
							t.Errorf("root=%d block %d elem %d = %d, want %d",
								root, p, i, got, 100*p+i)
						}
					}
				}
			}
			return nil
		})
	}
}

func TestScatterGatherRoundTrip(t *testing.T) {
	// Property: gather(scatter(x)) == x, for random counts and roots.
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		nPEs := 2 + rng.Intn(7)
		root := rng.Intn(nPEs)
		msgs := make([]int, nPEs)
		disp := make([]int, nPEs)
		off := 0
		for i := range msgs {
			msgs[i] = rng.Intn(5) // zero counts allowed
			disp[i] = off
			off += msgs[i]
		}
		total := off
		if total == 0 {
			continue
		}
		want := make([]int64, total)
		for i := range want {
			want[i] = int64(rng.Intn(100000) - 50000)
		}
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			dt := xbrtime.TypeInt64
			w := uint64(dt.Width)
			mine, err := pe.Malloc(uint64(total+1) * w)
			if err != nil {
				return err
			}
			back, err := pe.PrivateAlloc(uint64(total+1) * w)
			if err != nil {
				return err
			}
			src, err := pe.PrivateAlloc(uint64(total+1) * w)
			if err != nil {
				return err
			}
			if pe.MyPE() == root {
				for i, v := range want {
					pe.Poke(dt, src+uint64(i)*w, uint64(v))
				}
			}
			if err := Scatter(pe, dt, mine, src, msgs, disp, total, root); err != nil {
				return err
			}
			if err := Gather(pe, dt, back, mine, msgs, disp, total, root); err != nil {
				return err
			}
			if pe.MyPE() == root {
				for i, v := range want {
					if got := int64(pe.Peek(dt, back+uint64(i)*w)); got != v {
						t.Errorf("trial %d (n=%d root=%d): elem %d = %d, want %d",
							trial, nPEs, root, i, got, v)
					}
				}
			}
			return pe.Free(mine)
		})
	}
}

func TestBroadcastReduceComposition(t *testing.T) {
	// reduce_sum(broadcast(x)) == n * x.
	const nPEs = 6
	const x = int64(37)
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		val, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		out, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		priv, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 2 {
			pe.Poke(dt, priv, uint64(x))
		}
		if err := Broadcast(pe, dt, val, priv, 1, 1, 2); err != nil {
			return err
		}
		if err := Reduce(pe, dt, OpSum, out, val, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if got := int64(pe.Peek(dt, out)); got != int64(nPEs)*x {
				t.Errorf("composition = %d, want %d", got, int64(nPEs)*x)
			}
		}
		if err := pe.Free(val); err != nil {
			return err
		}
		return pe.Free(out)
	})
}

func TestLinearMatchesBinomial(t *testing.T) {
	const nPEs, nelems = 5, 3
	for _, algo := range []Algorithm{AlgoBinomial, AlgoLinear} {
		algo := algo
		results := make([]int64, nPEs)
		sums := make([]int64, 1)
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			dt := xbrtime.TypeInt64
			buf, err := pe.Malloc(nelems * 8)
			if err != nil {
				return err
			}
			out, err := pe.Malloc(nelems * 8)
			if err != nil {
				return err
			}
			priv, err := pe.PrivateAlloc(nelems * 8)
			if err != nil {
				return err
			}
			if pe.MyPE() == 1 {
				for i := 0; i < nelems; i++ {
					pe.Poke(dt, priv+uint64(i*8), uint64(int64(50+i)))
				}
			}
			if err := BroadcastWith(algo, pe, dt, buf, priv, nelems, 1, 1); err != nil {
				return err
			}
			results[pe.MyPE()] = int64(pe.Peek(dt, buf))
			if err := ReduceWith(algo, pe, dt, OpSum, out, buf, nelems, 1, 0); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				sums[0] = int64(pe.Peek(dt, out))
			}
			if err := pe.Free(buf); err != nil {
				return err
			}
			return pe.Free(out)
		})
		for p, v := range results {
			if v != 50 {
				t.Errorf("%s: PE %d broadcast value = %d", algo, p, v)
			}
		}
		if sums[0] != 50*nPEs {
			t.Errorf("%s: reduce sum = %d, want %d", algo, sums[0], 50*nPEs)
		}
	}
}

func TestSelectLogic(t *testing.T) {
	if AlgoBinomial.Select(CollBroadcast, 8, 1, 8) != AlgoBinomial {
		t.Error("explicit algorithm must not be overridden")
	}
	if AlgoLinear.Select(CollBroadcast, 8, 1, 8) != AlgoLinear {
		t.Error("explicit algorithm must not be overridden")
	}
	if AlgoAuto.Select(CollBroadcast, 2, 100, 8) != AlgoLinear {
		t.Error("auto must pick linear for <= 2 PEs")
	}
	if AlgoAuto.Select(CollBroadcast, 8, 100, 8) != AlgoBinomial {
		t.Error("auto must pick binomial for small messages over > 2 PEs")
	}
	// Reduce-scatter has no linear form: auto must land on a planner
	// that implements it even at <= 2 PEs.
	if got := AlgoAuto.Select(CollReduceScatter, 2, 100, 8); got != AlgoRing && got != AlgoRabenseifner {
		t.Errorf("auto(reduce_scatter, 2 PEs) = %s", got)
	}
	for _, a := range []Algorithm{AlgoAuto, AlgoBinomial, AlgoLinear, AlgoRing, AlgoRabenseifner} {
		if a.String() == "unknown" || a.String() == "" {
			t.Errorf("missing name for %q", a)
		}
	}
	if (Algorithm("")).String() != "auto" {
		t.Errorf("zero-value Algorithm must render as auto, got %q", Algorithm("").String())
	}
}

func TestBroadcastScheduleProperties(t *testing.T) {
	for n := 1; n <= 16; n++ {
		sched := BroadcastSchedule(n)
		received := make([]bool, n)
		received[0] = true // root starts with the data
		rounds := CeilLog2(n)
		lastRound := -1
		for _, tr := range sched {
			if tr.Round < lastRound {
				t.Fatalf("n=%d: schedule not round-ordered", n)
			}
			lastRound = tr.Round
			if tr.Round < 0 || tr.Round >= rounds {
				t.Errorf("n=%d: round %d outside 0..%d", n, tr.Round, rounds-1)
			}
			if !received[tr.From] {
				t.Errorf("n=%d round %d: sender %d has no data yet", n, tr.Round, tr.From)
			}
			if received[tr.To] {
				t.Errorf("n=%d round %d: receiver %d already has data", n, tr.Round, tr.To)
			}
			received[tr.To] = true
		}
		for v, ok := range received {
			if !ok {
				t.Errorf("n=%d: virtual rank %d never receives", n, v)
			}
		}
		if len(sched) != n-1 {
			t.Errorf("n=%d: %d transfers, want %d", n, len(sched), n-1)
		}
	}
}

func TestReduceScheduleProperties(t *testing.T) {
	for n := 1; n <= 16; n++ {
		sched := ReduceSchedule(n)
		// Every non-root rank's data must be pulled exactly once, and a
		// rank must not be pulled from after it has been consumed.
		consumed := make([]bool, n)
		for _, tr := range sched {
			if consumed[tr.From] {
				t.Errorf("n=%d: rank %d consumed twice", n, tr.From)
			}
			if consumed[tr.To] {
				t.Errorf("n=%d: consumed rank %d still pulling", n, tr.To)
			}
			consumed[tr.From] = true
		}
		if consumed[0] {
			t.Errorf("n=%d: root was consumed", n)
		}
		for v := 1; v < n; v++ {
			if !consumed[v] {
				t.Errorf("n=%d: rank %d never reduced", n, v)
			}
		}
		if len(sched) != n-1 {
			t.Errorf("n=%d: %d transfers, want %d", n, len(sched), n-1)
		}
	}
}

func TestRenderTreeFigure3(t *testing.T) {
	out := RenderTree(8)
	for _, want := range []string{"round 0:", "0->4", "round 1:", "0->2", "4->6", "round 2:", "0->1", "Figure 3"} {
		if !strings.Contains(out, want) {
			t.Errorf("RenderTree(8) missing %q:\n%s", want, out)
		}
	}
}

func TestCombineIdentityProperty(t *testing.T) {
	dts := []xbrtime.DType{xbrtime.TypeInt16, xbrtime.TypeUint32, xbrtime.TypeDouble}
	for _, dt := range dts {
		for _, op := range AllReduceOps() {
			if !op.ValidFor(dt) {
				continue
			}
			dt, op := dt, op
			f := func(raw uint64) bool {
				x := dt.Canon(raw)
				if dt.Kind == xbrtime.KindFloat {
					// Keep NaN out: identity laws do not hold for NaN.
					if dt.Float(x) != dt.Float(x) {
						return true
					}
				}
				r, err := Combine(dt, op, x, Identity(dt, op))
				if err != nil {
					return false
				}
				return r == x
			}
			if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
				t.Errorf("%s %s: %v", dt, op, err)
			}
		}
	}
}

func TestVectorValidation(t *testing.T) {
	runSPMD(t, 3, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt32
		if pe.MyPE() != 0 {
			return nil
		}
		base := xbrtime.SharedBase
		if err := Scatter(pe, dt, base, base, []int{1, 1}, []int{0, 1}, 2, 0); err == nil {
			t.Error("short pe_msgs must fail")
		}
		if err := Scatter(pe, dt, base, base, []int{1, 1, 1}, []int{0, 1, 2}, 5, 0); err == nil {
			t.Error("count mismatch must fail")
		}
		if err := Scatter(pe, dt, base, base, []int{-1, 2, 2}, []int{0, 1, 2}, 3, 0); err == nil {
			t.Error("negative count must fail")
		}
		if err := Gather(pe, dt, base, base, []int{1, 1, 1}, []int{0, -1, 2}, 3, 0); err == nil {
			t.Error("negative displacement must fail")
		}
		if err := Broadcast(pe, dt, base, base, 1, 1, 7); err == nil {
			t.Error("bad root must fail")
		}
		if err := Broadcast(pe, dt, base, base, -1, 1, 0); err == nil {
			t.Error("negative nelems must fail")
		}
		if err := Reduce(pe, dt, OpSum, base, base, 1, 0, 0); err == nil {
			t.Error("zero stride must fail")
		}
		return nil
	})
}

func TestTypedWrappers(t *testing.T) {
	const nPEs = 4
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		out, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		priv, err := pe.PrivateAlloc(64)
		if err != nil {
			return err
		}
		dtI := xbrtime.TypeInt
		if pe.MyPE() == 0 {
			pe.Poke(dtI, priv, 11)
		}
		if err := BroadcastInt(pe, buf, priv, 1, 1, 0); err != nil {
			return err
		}
		if got := pe.Peek(dtI, buf); got != 11 {
			t.Errorf("BroadcastInt: PE %d got %d", pe.MyPE(), got)
		}
		if err := ReduceSumInt(pe, out, buf, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if got := pe.Peek(dtI, out); got != 44 {
				t.Errorf("ReduceSumInt = %d", got)
			}
		}
		// Bitwise wrapper on an unsigned type.
		pe.Poke(xbrtime.TypeUint32, buf, 1<<uint(pe.MyPE()))
		if err := ReduceOrUint32(pe, out, buf, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if got := pe.Peek(xbrtime.TypeUint32, out); got != 0b1111 {
				t.Errorf("ReduceOrUint32 = %#b", got)
			}
		}
		// Double sum with exactly representable values.
		dtD := xbrtime.TypeDouble
		pe.Poke(dtD, buf, dtD.FromFloat(float64(pe.MyPE())))
		if err := ReduceSumDouble(pe, out, buf, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			if got := dtD.Float(pe.Peek(dtD, out)); got != 6 {
				t.Errorf("ReduceSumDouble = %v", got)
			}
		}
		if err := pe.Free(buf); err != nil {
			return err
		}
		return pe.Free(out)
	})
}

func TestBroadcastZeroElements(t *testing.T) {
	runSPMD(t, 4, func(pe *xbrtime.PE) error {
		return Broadcast(pe, xbrtime.TypeInt, xbrtime.SharedBase, xbrtime.SharedBase, 0, 1, 0)
	})
}

func TestScatterWithZeroCounts(t *testing.T) {
	// PEs with zero-element assignments must participate correctly.
	const nPEs = 4
	msgs := []int{0, 3, 0, 2}
	disp := []int{0, 0, 3, 3}
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		w := uint64(dt.Width)
		dest, err := pe.Malloc(5 * w)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(5 * w)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := 0; i < 5; i++ {
				pe.Poke(dt, src+uint64(i)*w, uint64(i+1))
			}
		}
		if err := Scatter(pe, dt, dest, src, msgs, disp, 5, 0); err != nil {
			return err
		}
		me := pe.MyPE()
		for i := 0; i < msgs[me]; i++ {
			want := int64(disp[me] + i + 1)
			if got := int64(pe.Peek(dt, dest+uint64(i)*w)); got != want {
				t.Errorf("PE %d elem %d = %d, want %d", me, i, got, want)
			}
		}
		return pe.Free(dest)
	})
}

func TestReduceOpMetadata(t *testing.T) {
	if len(AllReduceOps()) != 7 {
		t.Errorf("paper §4.4 lists 7 operators, have %d", len(AllReduceOps()))
	}
	names := map[ReduceOp]string{
		OpSum: "sum", OpProd: "prod", OpMin: "min", OpMax: "max",
		OpBand: "and", OpBor: "or", OpBxor: "xor",
	}
	for op, want := range names {
		if op.String() != want {
			t.Errorf("%d.String() = %q, want %q", op, op.String(), want)
		}
	}
	for _, op := range []ReduceOp{OpBand, OpBor, OpBxor} {
		if op.ValidFor(xbrtime.TypeFloat) || op.ValidFor(xbrtime.TypeDouble) {
			t.Errorf("%s must be invalid for floating point", op)
		}
		if !op.ValidFor(xbrtime.TypeInt32) {
			t.Errorf("%s must be valid for integers", op)
		}
	}
}
