package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// Team collectives: the binomial-tree algorithms of §4 restricted to a
// subset of PEs — the "integration of collective functionality between
// a subset of PEs" of the paper's future work (§7). Team rank replaces
// logical rank, the team's own barrier replaces the world barrier, and
// put/get targets map through Team.Member. Non-members must simply not
// call (they are never synchronised against).
//
// Unlike the world collectives, team reductions cannot allocate their
// symmetric staging buffer internally: a symmetric allocation must be
// performed by every PE to stay symmetric, but only members execute a
// team collective. Following OpenSHMEM's pWrk convention, TeamReduce
// therefore takes an explicit caller-provided symmetric workspace.

// teamValidate checks the common team-collective contract and returns
// the caller's team rank.
func teamValidate(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, nelems, stride, root int) (int, error) {
	myTeamRank, ok := t.Rank(pe)
	if !ok {
		return 0, fmt.Errorf("core: PE %d is not a member of the team", pe.MyPE())
	}
	if !dt.Valid() {
		return 0, fmt.Errorf("core: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return 0, fmt.Errorf("core: negative element count %d", nelems)
	}
	if stride < 1 {
		return 0, fmt.Errorf("core: stride %d; must be >= 1", stride)
	}
	if root < 0 || root >= t.Size() {
		return 0, fmt.Errorf("core: team root %d outside 0..%d", root, t.Size()-1)
	}
	return myTeamRank, nil
}

// TeamBroadcast distributes nelems elements from src on the member
// with team rank root to dest on every team member (Algorithm 1 over
// the team). dest must be a symmetric address.
func TeamBroadcast(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	myTeamRank, err := teamValidate(pe, t, dt, nelems, stride, root)
	if err != nil {
		return err
	}
	n := t.Size()
	vRank := VirtualRank(myTeamRank, root, n)
	rounds := CeilLog2(n)

	if vRank == 0 && dest != src {
		timedCopy(pe, dt, dest, src, nelems, stride, stride)
	}

	mask := (1 << rounds) - 1
	for i := rounds - 1; i >= 0; i-- {
		mask ^= 1 << i
		if vRank&mask == 0 && vRank&(1<<i) == 0 {
			vPart := (vRank ^ (1 << i)) % n
			teamPart := LogicalRank(vPart, root, n)
			if vRank < vPart {
				if err := pe.Put(dt, dest, dest, nelems, stride, t.Member(teamPart)); err != nil {
					return err
				}
			}
		}
		if err := pe.TeamBarrier(t); err != nil {
			return err
		}
	}
	return nil
}

// TeamReduce combines nelems elements from src on every team member
// with op and delivers the result to dest on the member with team rank
// root (Algorithm 2 over the team). src and work must be symmetric
// addresses; work is the caller-provided staging buffer (the pWrk
// analogue) and must span at least ((nelems-1)*stride+1) elements. work
// must not overlap src or dest.
func TeamReduce(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, op ReduceOp, dest, src, work uint64, nelems, stride, root int) error {
	myTeamRank, err := teamValidate(pe, t, dt, nelems, stride, root)
	if err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	n := t.Size()
	vRank := VirtualRank(myTeamRank, root, n)
	rounds := CeilLog2(n)
	w := uint64(dt.Width)
	span := spanBytes(dt, nelems, stride)

	lBuf, err := pe.Scratch(span)
	if err != nil {
		return err
	}

	timedCopy(pe, dt, work, src, nelems, stride, stride)
	if err := pe.TeamBarrier(t); err != nil {
		return err
	}

	cost := combineCost(dt, op)
	mask := (1 << rounds) - 1
	for i := 0; i < rounds; i++ {
		mask ^= 1 << i
		if vRank|mask == mask && vRank&(1<<i) == 0 {
			vPart := (vRank ^ (1 << i)) % n
			teamPart := LogicalRank(vPart, root, n)
			if vRank < vPart {
				if err := pe.Get(dt, lBuf, work, nelems, stride, t.Member(teamPart)); err != nil {
					return err
				}
				for j := 0; j < nelems; j++ {
					off := uint64(j*stride) * w
					a := pe.ReadElem(dt, work+off)
					b := pe.ReadElem(dt, lBuf+off)
					r, err := Combine(dt, op, a, b)
					if err != nil {
						return err
					}
					pe.Advance(cost)
					pe.WriteElem(dt, work+off, r)
				}
			}
		}
		if err := pe.TeamBarrier(t); err != nil {
			return err
		}
	}

	if vRank == 0 {
		timedCopy(pe, dt, dest, work, nelems, stride, stride)
	}
	return nil
}
