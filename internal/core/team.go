package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// Team collectives: the binomial-tree algorithms of §4 restricted to a
// subset of PEs — the "integration of collective functionality between
// a subset of PEs" of the paper's future work (§7). They execute the
// same compiled plans as the world collectives; the executor maps team
// rank in place of logical rank, runs the team's own barrier in place
// of the world barrier, and routes put/get targets through Team.Member.
// Non-members must simply not call (they are never synchronised
// against).
//
// Unlike the world collectives, team reductions cannot allocate their
// symmetric staging buffer internally: a symmetric allocation must be
// performed by every PE to stay symmetric, but only members execute a
// team collective. Following OpenSHMEM's pWrk convention, TeamReduce
// therefore takes an explicit caller-provided symmetric workspace.

// teamValidate checks the common team-collective contract.
func teamValidate(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, nelems, stride, root int) error {
	if _, ok := t.Rank(pe); !ok {
		return fmt.Errorf("core: PE %d is not a member of the team", pe.MyPE())
	}
	if !dt.Valid() {
		return fmt.Errorf("core: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return fmt.Errorf("core: negative element count %d", nelems)
	}
	if stride < 1 {
		return fmt.Errorf("core: stride %d; must be >= 1", stride)
	}
	if root < 0 || root >= t.Size() {
		return fmt.Errorf("core: team root %d outside 0..%d", root, t.Size()-1)
	}
	return nil
}

// TeamBroadcast distributes nelems elements from src on the member
// with team rank root to dest on every team member (Algorithm 1 over
// the team). dest must be a symmetric address.
func TeamBroadcast(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	if err := teamValidate(pe, t, dt, nelems, stride, root); err != nil {
		return err
	}
	p, err := CompilePlan(CollBroadcast, AlgoBinomial, t.Size())
	if err != nil {
		return err
	}
	cs := pe.StartCollective("team_broadcast", "", root, nelems)
	defer pe.FinishCollective(cs)
	return Execute(pe, p, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
		Team: t,
	})
}

// TeamReduce combines nelems elements from src on every team member
// with op and delivers the result to dest on the member with team rank
// root (Algorithm 2 over the team). src and work must be symmetric
// addresses; work is the caller-provided staging buffer (the pWrk
// analogue) and must span at least ((nelems-1)*stride+1) elements. work
// must not overlap src or dest. The executor stages through work
// instead of allocating (and never frees it).
func TeamReduce(pe *xbrtime.PE, t *xbrtime.Team, dt xbrtime.DType, op ReduceOp, dest, src, work uint64, nelems, stride, root int) error {
	if err := teamValidate(pe, t, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	p, err := CompilePlan(CollReduce, AlgoBinomial, t.Size())
	if err != nil {
		return err
	}
	cs := pe.StartCollective("team_reduce", "", root, nelems)
	defer pe.FinishCollective(cs)
	return Execute(pe, p, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
		Stage: work, Team: t,
	})
}
