package core

import (
	"math"
	"testing"
	"testing/quick"

	"xbgas/internal/xbrtime"
)

// refCombine is a literal reimplementation of the pre-generics Combine
// — three hand-written per-kind switch blocks — kept here as the oracle
// that pins the generic kernels (arith/bitwise) to the old semantics
// bit for bit.
func refCombine(dt xbrtime.DType, op ReduceOp, a, b uint64) (uint64, bool) {
	if !op.ValidFor(dt) {
		return 0, false
	}
	switch dt.Kind {
	case xbrtime.KindFloat:
		x, y := dt.Float(a), dt.Float(b)
		var r float64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		}
		return dt.FromFloat(r), true
	case xbrtime.KindInt:
		x, y := int64(a), int64(b)
		var r int64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		case OpBand:
			r = x & y
		case OpBor:
			r = x | y
		case OpBxor:
			r = x ^ y
		}
		return dt.Canon(uint64(r)), true
	default: // KindUint
		x, y := a, b
		var r uint64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		case OpBand:
			r = x & y
		case OpBor:
			r = x | y
		case OpBxor:
			r = x ^ y
		}
		return dt.Canon(r), true
	}
}

// TestCombineMatchesReference quick-checks the generic Combine kernels
// against the reference switches over random canonical operands for
// every (dtype, op) cell — including NaN and infinity bit patterns for
// the float rows.
func TestCombineMatchesReference(t *testing.T) {
	f := func(rawA, rawB uint64) bool {
		for _, dt := range xbrtime.Types {
			a, b := dt.Canon(rawA), dt.Canon(rawB)
			for _, op := range AllReduceOps() {
				want, ok := refCombine(dt, op, a, b)
				got, err := Combine(dt, op, a, b)
				if (err == nil) != ok {
					t.Errorf("%s %s: error=%v, reference valid=%v", dt, op, err, ok)
					return false
				}
				if ok && got != want {
					t.Errorf("%s %s Combine(%#x, %#x) = %#x, reference %#x",
						dt, op, a, b, got, want)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestIdentityIsNeutral checks Identity(dt, op) is a left and right
// neutral element of Combine for finite operands of every valid cell.
func TestIdentityIsNeutral(t *testing.T) {
	samples := func(dt xbrtime.DType) []uint64 {
		if dt.Kind == xbrtime.KindFloat {
			return []uint64{
				dt.FromFloat(0), dt.FromFloat(1), dt.FromFloat(-2.5),
				dt.FromFloat(1e30), dt.FromFloat(-1e-30),
			}
		}
		return []uint64{
			dt.Canon(0), dt.Canon(1), dt.Canon(^uint64(0)),
			dt.Canon(uint64(dt.Width) * 37), dt.Canon(1 << (4 * dt.Width)),
		}
	}
	for _, dt := range xbrtime.Types {
		for _, op := range AllReduceOps() {
			if !op.ValidFor(dt) {
				continue
			}
			id := Identity(dt, op)
			for _, x := range samples(dt) {
				left, err := Combine(dt, op, id, x)
				if err != nil {
					t.Fatal(err)
				}
				right, err := Combine(dt, op, x, id)
				if err != nil {
					t.Fatal(err)
				}
				if left != x || right != x {
					t.Errorf("%s %s: identity %s not neutral for %s (left %s, right %s)",
						dt, op, dt.FormatValue(id), dt.FormatValue(x),
						dt.FormatValue(left), dt.FormatValue(right))
				}
			}
		}
	}
}

// TestIdentityBounds spot-checks the identity table against the domain
// bounds the old per-kind matrix hard-coded.
func TestIdentityBounds(t *testing.T) {
	cases := []struct {
		dt   xbrtime.DType
		op   ReduceOp
		want uint64
	}{
		{xbrtime.TypeInt8, OpMin, xbrtime.TypeInt8.Canon(127)},
		{xbrtime.TypeInt8, OpMax, xbrtime.TypeInt8.Canon(uint64(uint8(128)))},
		{xbrtime.TypeUint16, OpMin, 0xFFFF},
		{xbrtime.TypeUint16, OpMax, 0},
		{xbrtime.TypeInt64, OpMin, uint64(math.MaxInt64)},
		{xbrtime.TypeInt64, OpMax, uint64(1) << 63},
		{xbrtime.TypeFloat, OpMin, xbrtime.TypeFloat.FromFloat(math.MaxFloat32)},
		{xbrtime.TypeDouble, OpMax, xbrtime.TypeDouble.FromFloat(-math.MaxFloat64)},
		{xbrtime.TypeDouble, OpSum, xbrtime.TypeDouble.FromFloat(0)},
		{xbrtime.TypeUChar, OpProd, 1},
		{xbrtime.TypeInt32, OpBand, xbrtime.TypeInt32.Canon(^uint64(0))},
		{xbrtime.TypeUint32, OpBor, 0},
		{xbrtime.TypeUint32, OpBxor, 0},
	}
	for _, c := range cases {
		if got := Identity(c.dt, c.op); got != c.want {
			t.Errorf("Identity(%s, %s) = %#x, want %#x", c.dt, c.op, got, c.want)
		}
	}
}
