package core

import (
	"math/rand"
	"testing"

	"xbgas/internal/xbrtime"
)

// TestRandomizedCollectivesAgainstReference is the broad randomized
// sweep: random PE counts, roots, element counts, strides, types, and
// operators, with every result checked against a sequential reference
// computed in plain Go.
func TestRandomizedCollectivesAgainstReference(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	dts := []xbrtime.DType{
		xbrtime.TypeUint8, xbrtime.TypeInt16, xbrtime.TypeUint32,
		xbrtime.TypeInt64, xbrtime.TypeDouble, xbrtime.TypeFloat,
	}
	trials := 25
	if testing.Short() {
		trials = 8
	}
	for trial := 0; trial < trials; trial++ {
		nPEs := 1 + rng.Intn(9)
		root := rng.Intn(nPEs)
		nelems := rng.Intn(12)
		stride := 1 + rng.Intn(3)
		dt := dts[rng.Intn(len(dts))]
		ops := AllReduceOps()
		op := ops[rng.Intn(len(ops))]
		if !op.ValidFor(dt) {
			op = OpSum
		}

		// Per-PE contributions as canonical values. Small integers are
		// exactly representable in every type, keeping float comparisons
		// exact under any combine order.
		contrib := make([][]uint64, nPEs)
		for p := range contrib {
			contrib[p] = make([]uint64, nelems)
			for i := range contrib[p] {
				v := rng.Intn(17) + 1
				if dt.Kind == xbrtime.KindFloat {
					contrib[p][i] = dt.FromFloat(float64(v))
				} else {
					contrib[p][i] = dt.Canon(uint64(v))
				}
			}
		}
		// Sequential reference reduction.
		wantReduce := make([]uint64, nelems)
		for i := 0; i < nelems; i++ {
			acc := contrib[0][i]
			for p := 1; p < nPEs; p++ {
				var err error
				acc, err = Combine(dt, op, acc, contrib[p][i])
				if err != nil {
					t.Fatal(err)
				}
			}
			wantReduce[i] = acc
		}

		w := uint64(dt.Width)
		span := spanBytes(dt, nelems, stride)
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			me := pe.MyPE()
			src, err := pe.Malloc(span)
			if err != nil {
				return err
			}
			bcast, err := pe.Malloc(span)
			if err != nil {
				return err
			}
			out, err := pe.PrivateAlloc(span)
			if err != nil {
				return err
			}
			for i := 0; i < nelems; i++ {
				pe.Poke(dt, src+uint64(i*stride)*w, contrib[me][i])
			}
			if err := pe.Barrier(); err != nil {
				return err
			}

			// Broadcast from root: everyone must see the root's row.
			if err := Broadcast(pe, dt, bcast, src, nelems, stride, root); err != nil {
				return err
			}
			for i := 0; i < nelems; i++ {
				if got := pe.Peek(dt, bcast+uint64(i*stride)*w); got != contrib[root][i] {
					t.Errorf("trial %d (n=%d root=%d stride=%d %s): broadcast PE %d elem %d = %s, want %s",
						trial, nPEs, root, stride, dt, me, i,
						dt.FormatValue(got), dt.FormatValue(contrib[root][i]))
				}
			}

			// Reduce to root.
			if err := Reduce(pe, dt, op, out, src, nelems, stride, root); err != nil {
				return err
			}
			if me == root {
				for i := 0; i < nelems; i++ {
					if got := pe.Peek(dt, out+uint64(i*stride)*w); got != wantReduce[i] {
						t.Errorf("trial %d (n=%d root=%d stride=%d %s %s): reduce elem %d = %s, want %s",
							trial, nPEs, root, stride, dt, op, i,
							dt.FormatValue(got), dt.FormatValue(wantReduce[i]))
					}
				}
			}
			if err := pe.Free(src); err != nil {
				return err
			}
			return pe.Free(bcast)
		})
	}
}

// TestRandomizedScatterGather exercises random vectored configurations
// including empty blocks and permuted displacements.
func TestRandomizedScatterGather(t *testing.T) {
	rng := rand.New(rand.NewSource(777))
	trials := 15
	if testing.Short() {
		trials = 5
	}
	for trial := 0; trial < trials; trial++ {
		nPEs := 2 + rng.Intn(7)
		root := rng.Intn(nPEs)
		msgs := make([]int, nPEs)
		total := 0
		for i := range msgs {
			msgs[i] = rng.Intn(4)
			total += msgs[i]
		}
		if total == 0 {
			msgs[0] = 1
			total = 1
		}
		// Displacements in permuted order with random gaps.
		perm := rng.Perm(nPEs)
		disp := make([]int, nPEs)
		off := 0
		for _, p := range perm {
			off += rng.Intn(2)
			disp[p] = off
			off += msgs[p]
		}
		srcElems := off + 1

		vals := make([]int64, srcElems)
		for i := range vals {
			vals[i] = int64(rng.Intn(100000))
		}
		dt := xbrtime.TypeInt64
		const w = 8
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			me := pe.MyPE()
			dest, err := pe.Malloc(uint64(srcElems) * w)
			if err != nil {
				return err
			}
			src, err := pe.PrivateAlloc(uint64(srcElems) * w)
			if err != nil {
				return err
			}
			back, err := pe.PrivateAlloc(uint64(srcElems) * w)
			if err != nil {
				return err
			}
			if me == root {
				for i, v := range vals {
					pe.Poke(dt, src+uint64(i)*w, uint64(v))
				}
			}
			if err := Scatter(pe, dt, dest, src, msgs, disp, total, root); err != nil {
				return err
			}
			for i := 0; i < msgs[me]; i++ {
				want := vals[disp[me]+i]
				if got := int64(pe.Peek(dt, dest+uint64(i)*w)); got != want {
					t.Errorf("trial %d: scatter PE %d elem %d = %d, want %d",
						trial, me, i, got, want)
				}
			}
			if err := Gather(pe, dt, back, dest, msgs, disp, total, root); err != nil {
				return err
			}
			if me == root {
				for p := 0; p < nPEs; p++ {
					for i := 0; i < msgs[p]; i++ {
						want := vals[disp[p]+i]
						if got := int64(pe.Peek(dt, back+uint64(disp[p]+i)*w)); got != want {
							t.Errorf("trial %d: gather block %d elem %d = %d, want %d",
								trial, p, i, got, want)
						}
					}
				}
			}
			return pe.Free(dest)
		})
	}
}
