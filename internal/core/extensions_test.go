package core

import (
	"testing"

	"xbgas/internal/xbrtime"
)

func TestAllReduceDeliversEverywhere(t *testing.T) {
	const nPEs = 5
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		src, err := pe.Malloc(3 * 8)
		if err != nil {
			return err
		}
		dest, err := pe.Malloc(3 * 8)
		if err != nil {
			return err
		}
		for i := 0; i < 3; i++ {
			pe.Poke(dt, src+uint64(i*8), uint64(pe.MyPE()+i))
		}
		if err := AllReduce(pe, dt, OpSum, dest, src, 3, 1); err != nil {
			return err
		}
		// Every PE must hold the sums: sum over p of (p+i).
		for i := 0; i < 3; i++ {
			want := int64(0)
			for p := 0; p < nPEs; p++ {
				want += int64(p + i)
			}
			if got := int64(pe.Peek(dt, dest+uint64(i*8))); got != want {
				t.Errorf("PE %d elem %d = %d, want %d", pe.MyPE(), i, got, want)
			}
		}
		if err := pe.Free(src); err != nil {
			return err
		}
		return pe.Free(dest)
	})
}

func TestAllGatherMatchesCollect(t *testing.T) {
	const nPEs = 4
	msgs := []int{2, 1, 3, 2}
	disp := []int{0, 2, 3, 6}
	total := 8
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt32
		w := uint64(dt.Width)
		src, err := pe.Malloc(4 * w)
		if err != nil {
			return err
		}
		dest, err := pe.Malloc(uint64(total) * w)
		if err != nil {
			return err
		}
		for i := 0; i < msgs[pe.MyPE()]; i++ {
			pe.Poke(dt, src+uint64(i)*w, uint64(10*pe.MyPE()+i))
		}
		if err := AllGather(pe, dt, dest, src, msgs, disp, total); err != nil {
			return err
		}
		for p := 0; p < nPEs; p++ {
			for i := 0; i < msgs[p]; i++ {
				want := int64(10*p + i)
				got := int64(pe.Peek(dt, dest+uint64(disp[p]+i)*w))
				if got != want {
					t.Errorf("PE %d slot (%d,%d) = %d, want %d", pe.MyPE(), p, i, got, want)
				}
			}
		}
		if err := pe.Free(src); err != nil {
			return err
		}
		return pe.Free(dest)
	})
}

func TestAlltoallPermutation(t *testing.T) {
	for _, nPEs := range []int{2, 3, 4, 7} {
		nPEs := nPEs
		const nelems = 3
		runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
			dt := xbrtime.TypeInt64
			w := uint64(dt.Width)
			block := uint64(nelems) * w
			src, err := pe.Malloc(uint64(nPEs) * block)
			if err != nil {
				return err
			}
			dest, err := pe.Malloc(uint64(nPEs) * block)
			if err != nil {
				return err
			}
			// Block j of PE i holds value i*1000 + j*10 + elem.
			for j := 0; j < nPEs; j++ {
				for e := 0; e < nelems; e++ {
					v := int64(pe.MyPE()*1000 + j*10 + e)
					pe.Poke(dt, src+uint64(j)*block+uint64(e)*w, uint64(v))
				}
			}
			if err := Alltoall(pe, dt, dest, src, nelems); err != nil {
				return err
			}
			// dest block i must hold PE i's block for me.
			me := pe.MyPE()
			for i := 0; i < nPEs; i++ {
				for e := 0; e < nelems; e++ {
					want := int64(i*1000 + me*10 + e)
					got := int64(pe.Peek(dt, dest+uint64(i)*block+uint64(e)*w))
					if got != want {
						t.Errorf("n=%d PE %d dest block %d elem %d = %d, want %d",
							nPEs, me, i, e, got, want)
					}
				}
			}
			if err := pe.Free(src); err != nil {
				return err
			}
			return pe.Free(dest)
		})
	}
}

func TestAlltoallValidation(t *testing.T) {
	runSPMD(t, 2, func(pe *xbrtime.PE) error {
		if pe.MyPE() != 0 {
			return nil
		}
		if err := Alltoall(pe, xbrtime.DType{Width: 3}, 0, 0, 1); err == nil {
			t.Error("invalid dtype must fail")
		}
		if err := Alltoall(pe, xbrtime.TypeInt, 0, 0, -1); err == nil {
			t.Error("negative nelems must fail")
		}
		return nil
	})
}

func TestTeamBroadcastSubset(t *testing.T) {
	const nPEs = 6
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	team, err := rt.NewTeam([]int{1, 3, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		// Everyone allocates symmetrically (including non-members).
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		pe.Poke(dt, buf, 0xAA)
		if err := pe.Barrier(); err != nil {
			return err
		}
		if !team.Contains(pe.MyPE()) {
			return pe.Barrier() // non-members sit out the team phase
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		// Team rank 1 is global PE 3: broadcast from it.
		if r, _ := team.Rank(pe); r == 1 {
			pe.Poke(dt, src, 777)
		}
		if err := TeamBroadcast(pe, team, dt, buf, src, 1, 1, 1); err != nil {
			return err
		}
		if got := pe.Peek(dt, buf); got != 777 {
			t.Errorf("team member PE %d got %d", pe.MyPE(), got)
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	// Non-members' buffers must be untouched.
	for _, p := range []int{0, 2} {
		pe := rt.PE(p)
		if got := pe.Peek(xbrtime.TypeInt64, xbrtime.SharedBase); got != 0xAA {
			t.Errorf("non-member PE %d buffer clobbered: %#x", p, got)
		}
	}
}

func TestTeamReduceSubset(t *testing.T) {
	const nPEs = 5
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	team, err := rt.NewTeam([]int{0, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		src, err := pe.Malloc(8 * 2)
		if err != nil {
			return err
		}
		work, err := pe.Malloc(8 * 2)
		if err != nil {
			return err
		}
		dest, err := pe.PrivateAlloc(8 * 2)
		if err != nil {
			return err
		}
		pe.Poke(dt, src, uint64(pe.MyPE()+1))
		pe.Poke(dt, src+8, uint64(10*(pe.MyPE()+1)))
		if err := pe.Barrier(); err != nil {
			return err
		}
		if !team.Contains(pe.MyPE()) {
			return nil
		}
		if err := TeamReduce(pe, team, dt, OpSum, dest, src, work, 2, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 { // team rank 0
			// Members 0, 2, 4 contribute 1+3+5 = 9 and 10+30+50 = 90.
			if got := int64(pe.Peek(dt, dest)); got != 9 {
				t.Errorf("team reduce elem 0 = %d, want 9", got)
			}
			if got := int64(pe.Peek(dt, dest+8)); got != 90 {
				t.Errorf("team reduce elem 1 = %d, want 90", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTeamValidation(t *testing.T) {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.NewTeam(nil); err == nil {
		t.Error("empty team must fail")
	}
	if _, err := rt.NewTeam([]int{0, 0}); err == nil {
		t.Error("duplicate member must fail")
	}
	if _, err := rt.NewTeam([]int{0, 9}); err == nil {
		t.Error("out-of-range member must fail")
	}
	team, err := rt.NewTeam([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if team.Size() != 2 || team.Member(1) != 2 || !team.Contains(1) || team.Contains(0) {
		t.Errorf("team metadata wrong: %+v", team)
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		if pe.MyPE() == 0 {
			if err := pe.TeamBarrier(team); err == nil {
				t.Error("non-member TeamBarrier must fail")
			}
			if err := TeamBroadcast(pe, team, xbrtime.TypeInt, 0, 0, 1, 1, 0); err == nil {
				t.Error("non-member TeamBroadcast must fail")
			}
		}
		if pe.MyPE() == 1 {
			if err := TeamBroadcast(pe, team, xbrtime.TypeInt, 0, 0, 1, 1, 5); err == nil {
				t.Error("bad team root must fail")
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWorldTeamEqualsBarrier(t *testing.T) {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 3})
	if err != nil {
		t.Fatal(err)
	}
	world := rt.WorldTeam()
	if world.Size() != 3 {
		t.Fatalf("world team size = %d", world.Size())
	}
	err = rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 2 {
			pe.Poke(xbrtime.TypeInt64, src, 31337)
		}
		if err := TeamBroadcast(pe, world, xbrtime.TypeInt64, buf, src, 1, 1, 2); err != nil {
			return err
		}
		if got := pe.Peek(xbrtime.TypeInt64, buf); got != 31337 {
			t.Errorf("PE %d world-team broadcast got %d", pe.MyPE(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBroadcastScatterAllgatherCorrectness(t *testing.T) {
	for _, nPEs := range []int{2, 3, 5, 8} {
		for _, root := range []int{0, nPEs - 1} {
			for _, nelems := range []int{1, 7, 64, 100} {
				nPEs, root, nelems := nPEs, root, nelems
				runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
					dt := xbrtime.TypeInt64
					w := uint64(dt.Width)
					dest, err := pe.Malloc(uint64(nelems+1) * w)
					if err != nil {
						return err
					}
					src, err := pe.PrivateAlloc(uint64(nelems+1) * w)
					if err != nil {
						return err
					}
					if pe.MyPE() == root {
						for i := 0; i < nelems; i++ {
							pe.Poke(dt, src+uint64(i)*w, uint64(3000+i))
						}
					}
					if err := BroadcastScatterAllgather(pe, dt, dest, src, nelems, root); err != nil {
						return err
					}
					for i := 0; i < nelems; i++ {
						if got := pe.Peek(dt, dest+uint64(i)*w); got != uint64(3000+i) {
							t.Errorf("n=%d root=%d nelems=%d PE %d elem %d = %d",
								nPEs, root, nelems, pe.MyPE(), i, got)
						}
					}
					return pe.Free(dest)
				})
			}
		}
	}
}

func TestAutoSelectsLargeMessageAlgorithm(t *testing.T) {
	// Scatter+all-gather is explicit opt-in: its advantage assumes
	// bisection bandwidth the default fabric does not have, so auto
	// never selects it whatever the size.
	big := LargeMessageBytes / 8
	if got := AlgoAuto.Select(CollBroadcast, 8, big, 8); got == AlgoScatterAllgather {
		t.Errorf("auto(large broadcast) picked the opt-in algorithm %s", got)
	}
	if got := AlgoAuto.Select(CollBroadcast, 8, 16, 8); got != AlgoBinomial {
		t.Errorf("auto(small) = %s", got)
	}
	// Large allreduce must leave the tree for a bandwidth-optimal
	// planner.
	if got := AlgoAuto.Select(CollAllReduce, 8, 1<<17, 8); got != AlgoRabenseifner && got != AlgoRing {
		t.Errorf("auto(1MiB allreduce) = %s", got)
	}
	if got := AlgoScatterAllgather.Select(CollBroadcast, 8, big, 8); got != AlgoScatterAllgather {
		t.Errorf("explicit choice overridden: %s", got)
	}
	// Strided large broadcasts through the explicit large-message
	// dispatch must fall back to the tree.
	runSPMD(t, 4, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeInt64
		n := LargeMessageBytes / 8
		dest, err := pe.Malloc(uint64(2*n+1) * 8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(uint64(2*n+1) * 8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			pe.Poke(dt, src, 5)
			pe.Poke(dt, src+uint64(2*(n-1))*8, 9)
		}
		if err := BroadcastWith(AlgoScatterAllgather, pe, dt, dest, src, n, 2, 0); err != nil {
			return err
		}
		if pe.Peek(dt, dest) != 5 || pe.Peek(dt, dest+uint64(2*(n-1))*8) != 9 {
			t.Errorf("PE %d strided large broadcast corrupted", pe.MyPE())
		}
		return pe.Free(dest)
	})
}
