package core

import (
	"fmt"

	"xbgas/internal/obs"
	"xbgas/internal/xbrtime"
)

// The executor: one engine runs every compiled plan. It maps virtual
// ranks to logical (or team-member) ranks, resolves symbolic buffers,
// offsets and counts against the call's arguments, allocates and frees
// the staging buffers the plan declares, issues blocking or
// non-blocking transfers, and emits the obs round spans uniformly —
// the per-collective entry points reduce to validate + Compile +
// Execute.

// ExecArgs carries one call's runtime arguments into a plan execution.
type ExecArgs struct {
	DT xbrtime.DType
	// Op is the reduction operator for plans with combine steps.
	Op ReduceOp

	Dest, Src      uint64
	Nelems, Stride int
	// Root is the logical (or team) rank acting as virtual rank 0.
	Root int

	// PeMsgs/PeDisp are the vector-collective count and displacement
	// arrays, indexed by logical rank (AdjVector plans only).
	PeMsgs, PeDisp []int

	// Stage overrides the plan-managed staging buffer with a
	// caller-provided symmetric workspace (the pWrk convention of
	// TeamReduce); the executor then neither allocates nor frees it.
	Stage uint64

	// Team restricts the collective to a PE subset: ranks become team
	// ranks, targets map through Team.Member, and the team barrier
	// replaces the world barrier. Nil means the world.
	Team *xbrtime.Team

	// OnTransfer, when set, observes every put/get the executor issues
	// (before skip-if-zero suppression it is not called; skipped steps
	// are invisible, matching the wire). Test instrumentation for the
	// differential schedule-vs-execution check.
	OnTransfer func(round int, s Step, count int)
}

// execEnv is the per-call execution state; it lives on the stack so
// cached-plan executions allocate nothing.
type execEnv struct {
	pe *xbrtime.PE
	p  *Plan
	a  ExecArgs

	n, me, v int
	w        uint64

	stage, scratch uint64
	ownStage       bool

	// flags is the plan's symmetric flag block (FlagWords 8-byte words)
	// backing StepSignal/StepWaitFlag dependencies.
	flags    uint64
	ownFlags bool

	adj      []int // AdjVector displacements (borrowed)
	per, rem int   // AdjChunks chunk geometry

	segPer, segRem int // segment geometry: nelems over Plan.Segments

	// lastNB is the actor's most recent non-blocking transfer of the
	// current round; StepSignal orders its flag store after it.
	lastNB xbrtime.Handle

	cost uint64 // per-element combine cost

	// slog, when non-nil, receives the category and releaser of every
	// executed step's virtual-clock interval — the raw material of the
	// critical-path extractor. Nil whenever tracing is off.
	slog *obs.StepLog
}

// Execute runs a compiled plan with the given arguments. Every PE of
// the plan's world (or team) must call it collectively, like any other
// collective entry point.
func Execute(pe *xbrtime.PE, p *Plan, a ExecArgs) error {
	e := execEnv{pe: pe, p: p, a: a, w: uint64(a.DT.Width), slog: pe.StepLog()}
	if a.Team != nil {
		r, ok := a.Team.Rank(pe)
		if !ok {
			return fmt.Errorf("core: PE %d is not a member of the team", pe.MyPE())
		}
		e.n, e.me = a.Team.Size(), r
	} else {
		e.n, e.me = pe.NumPEs(), pe.MyPE()
	}
	if e.n != p.NPEs {
		return fmt.Errorf("core: plan compiled for %d PEs executed over %d", p.NPEs, e.n)
	}
	if p.FlagWords > 0 && a.Team != nil {
		return fmt.Errorf("core: segmented plans cannot run on teams: the flag block needs a symmetric world allocation")
	}
	e.v = VirtualRank(e.me, a.Root, e.n)
	pe.NotePlanner(p.label)
	if p.UsesOp {
		e.cost = combineCost(a.DT, a.Op)
	}
	if p.Segments > 1 {
		e.segPer, e.segRem = a.Nelems/p.Segments, a.Nelems%p.Segments
	}
	switch p.Adj {
	case AdjVector:
		e.adj = adjustedDisplacements(pe, a.PeMsgs, a.Root, e.n)
		defer pe.ReturnInts(e.adj)
	case AdjChunks:
		e.per, e.rem = a.Nelems/e.n, a.Nelems%e.n
	}
	if a.Stage != 0 {
		e.stage = a.Stage
	} else if p.Stage != BufNone {
		var err error
		if e.stage, err = pe.Malloc(e.bufBytes(p.Stage)); err != nil {
			return err
		}
		e.ownStage = true
	}
	if p.FlagWords > 0 {
		// The flag block is a plan-scoped symmetric allocation: every
		// PE mallocs it at the same point of the same call sequence, so
		// the block lands at the same address on every rank and word
		// addresses are meaningful across PEs.
		var err error
		if e.flags, err = pe.Malloc(uint64(p.FlagWords) * 8); err != nil {
			return e.fail(err)
		}
		e.ownFlags = true
	}
	if p.Scratch != BufNone {
		var err error
		if e.scratch, err = pe.Scratch(e.bufBytes(p.Scratch)); err != nil {
			return e.fail(err)
		}
	}
	for ri := range p.Rounds {
		if err := e.round(&p.Rounds[ri]); err != nil {
			return e.fail(err)
		}
	}
	if e.ownFlags {
		if err := pe.Free(e.flags); err != nil {
			e.ownFlags = false
			return e.fail(err)
		}
	}
	if e.ownStage {
		return pe.Free(e.stage)
	}
	return nil
}

// fail unwinds a mid-plan error: the plan-managed staging buffer and
// flag block are freed best-effort so error paths do not leak
// symmetric heap.
func (e *execEnv) fail(err error) error {
	if e.ownFlags {
		e.pe.Free(e.flags) //nolint:errcheck // best-effort unwind
	}
	if e.ownStage {
		e.pe.Free(e.stage) //nolint:errcheck // best-effort unwind
	}
	return err
}

// bufBytes sizes a plan-managed buffer from the call's arguments.
func (e *execEnv) bufBytes(spec BufSpec) uint64 {
	a := &e.a
	switch spec {
	case BufSpan:
		return spanBytes(a.DT, a.Nelems, a.Stride)
	case BufMaxBlock:
		most := 0
		for _, m := range a.PeMsgs {
			if m > most {
				most = m
			}
		}
		if most == 0 {
			return e.w
		}
		return uint64(most) * e.w
	default: // BufTotal
		if a.Nelems == 0 {
			return e.w
		}
		return uint64(a.Nelems) * e.w
	}
}

// round runs one synchronisation epoch: this PE's own steps (sliced in
// O(1) from the actor index), then the trailing all-actor barriers,
// under the round's obs span. Non-blocking rounds batch their puts and
// wait on every issued handle — success or error — before returning
// the pooled handle slice, so handles can never leak.
func (e *execEnv) round(r *Round) error {
	pe := e.pe
	mine := r.Steps[r.actorStart[e.v]:r.actorStart[e.v+1]]

	var span obs.Span
	if r.Name != "" && pe.ObsEnabled() {
		// Annotate the span with the round's partner and traffic: a
		// single transfer carries its peer, multiple transfers (linear
		// roots, alltoall) aggregate under peer -1. Counts include
		// skip-if-zero steps, mirroring the historical spans.
		peer, moved, transfers := -1, 0, 0
		for i := range mine {
			s := &mine[i]
			if s.Kind == StepPut || s.Kind == StepGet {
				transfers++
				peer = e.rankOf(s.Peer)
				moved += e.stepCount(s)
			}
		}
		if transfers > 1 {
			peer = -1
		}
		span = pe.StartRound(r.Name, r.Idx, peer, moved)
	}

	var handles []xbrtime.Handle
	if r.NB {
		handles = pe.BorrowHandles(len(mine))
	}
	e.lastNB = xbrtime.Handle{}
	var err error
	for i := range mine {
		if e.slog == nil {
			if err = e.step(&mine[i], r, &handles); err != nil {
				break
			}
			continue
		}
		t0 := pe.Now()
		err = e.step(&mine[i], r, &handles)
		e.noteStep(mine[i].Kind, t0)
		if err != nil {
			break
		}
	}
	if r.NB {
		t0 := pe.Now()
		for _, h := range handles {
			pe.Wait(h)
		}
		// The handle drain is where a non-blocking round pays for its
		// own in-flight transfers.
		e.slog.Note(obs.CatDataWait, t0, pe.Now())
		pe.ReturnHandles(handles)
	}
	if err != nil {
		return err
	}
	for i := r.tail; i < len(r.Steps); i++ {
		if r.Steps[i].Kind == StepBarrier {
			t0 := pe.Now()
			if err := e.barrier(); err != nil {
				return err
			}
			e.slog.NoteWait(obs.CatBarrierWait, t0, pe.Now(), pe.LastWaitBy())
		}
	}
	pe.FinishRound(span)
	return nil
}

// noteStep files the just-executed step's interval under its
// attribution category; wait steps carry the releasing rank so the
// critical-path extractor can follow the dependency to another PE.
func (e *execEnv) noteStep(k StepKind, start uint64) {
	end := e.pe.Now()
	switch k {
	case StepPut, StepGet:
		e.slog.Note(obs.CatTransfer, start, end)
	case StepCopy:
		e.slog.Note(obs.CatCopy, start, end)
	case StepCombine:
		e.slog.Note(obs.CatCombine, start, end)
	case StepSignal:
		e.slog.Note(obs.CatSignal, start, end)
	case StepWaitFlag:
		e.slog.NoteWait(obs.CatFlagWait, start, end, e.pe.LastWaitBy())
	case StepBarrier:
		e.slog.NoteWait(obs.CatBarrierWait, start, end, e.pe.LastWaitBy())
	}
}

// step executes one plan step for this PE.
func (e *execEnv) step(s *Step, r *Round, handles *[]xbrtime.Handle) error {
	if s.Blocks > 1 {
		return e.stepBlocks(s, r, handles)
	}
	pe, a := e.pe, &e.a
	switch s.Kind {
	case StepPut, StepGet:
		cnt := e.count(s)
		if s.SkipIfZero && cnt == 0 {
			// The paired signal (if any) must not trail a stale handle.
			e.lastNB = xbrtime.Handle{}
			return nil
		}
		stride := 1
		if s.Strided {
			stride = a.Stride
		}
		dst, src := e.addr(s.Dst, s.Strided), e.addr(s.Src, s.Strided)
		tgt := e.rankOf(s.Peer)
		if a.OnTransfer != nil {
			a.OnTransfer(r.Idx, *s, cnt)
		}
		if s.Kind == StepPut {
			if r.NB {
				var h xbrtime.Handle
				var err error
				if (e.p.FlagWords > 0 || e.p.Chunked) && stride == 1 {
					// Pipelined segments move as line-granular bulk
					// chunks; strided segments keep element streams.
					h, err = pe.PutChunkNB(a.DT, dst, src, cnt, tgt)
				} else {
					h, err = pe.PutNB(a.DT, dst, src, cnt, stride, tgt)
				}
				if err != nil {
					return err
				}
				*handles = append(*handles, h)
				e.lastNB = h
				return nil
			}
			if e.p.Chunked && stride == 1 {
				return pe.PutChunk(a.DT, dst, src, cnt, tgt)
			}
			return pe.Put(a.DT, dst, src, cnt, stride, tgt)
		}
		if r.NB {
			h, err := pe.GetNB(a.DT, dst, src, cnt, stride, tgt)
			if err != nil {
				return err
			}
			*handles = append(*handles, h)
			e.lastNB = h
			return nil
		}
		if (e.p.FlagWords > 0 || e.p.Chunked) && stride == 1 {
			return pe.GetChunk(a.DT, dst, src, cnt, tgt)
		}
		return pe.Get(a.DT, dst, src, cnt, stride, tgt)

	case StepCopy:
		cnt := e.count(s)
		if s.SkipIfZero && cnt == 0 {
			return nil
		}
		dst, src := e.addr(s.Dst, s.DstStrided), e.addr(s.Src, s.SrcStrided)
		if s.SkipIfAlias && dst == src {
			return nil
		}
		ds, ss := e.strideOf(s.DstStrided), e.strideOf(s.SrcStrided)
		if e.p.Chunked && ds == 1 && ss == 1 {
			pe.CopyChunk(a.DT, dst, src, cnt)
			return nil
		}
		timedCopy(pe, a.DT, dst, src, cnt, ds, ss)

	case StepCombine:
		cnt := e.count(s)
		dst, src := e.addr(s.Dst, s.DstStrided), e.addr(s.Src, s.SrcStrided)
		ds, ss := e.strideOf(s.DstStrided), e.strideOf(s.SrcStrided)
		if e.p.Chunked && ds == 1 && ss == 1 {
			return e.combineChunk(dst, src, cnt)
		}
		for j := 0; j < cnt; j++ {
			x := pe.ReadElem(a.DT, dst+uint64(j*ds)*e.w)
			y := pe.ReadElem(a.DT, src+uint64(j*ss)*e.w)
			v, err := Combine(a.DT, a.Op, x, y)
			if err != nil {
				return err
			}
			pe.Advance(e.cost)
			pe.WriteElem(a.DT, dst+uint64(j*ds)*e.w, v)
		}

	case StepBarrier:
		return e.barrier()

	case StepSignal:
		// The flag store trails the actor's latest non-blocking
		// transfer of the round (the segment just forwarded); in
		// blocking rounds the clock already covers completion and the
		// zero handle makes "now" the only floor.
		h := e.lastNB
		e.lastNB = xbrtime.Handle{}
		return pe.SignalAfter(h, e.flags+uint64(s.Flag)*8, e.rankOf(s.Peer))

	case StepWaitFlag:
		return pe.WaitFlag(e.flags + uint64(s.Flag)*8)
	}
	return nil
}

// stepBlocks expands a multi-block step (Step.Blocks): the body runs
// Blocks times, each repetition advancing the block-indexed operands by
// BStride. The expansion happens here rather than at compile time so a
// plan stays O(rounds·actors) in memory even when every actor
// redistributes n blocks.
func (e *execEnv) stepBlocks(s *Step, r *Round, handles *[]xbrtime.Handle) error {
	c := *s
	c.Blocks = 0
	for t := 0; t < s.Blocks; t++ {
		if err := e.step(&c, r, handles); err != nil {
			return err
		}
		c.Dst = shiftLoc(c.Dst, s.BStride)
		c.Src = shiftLoc(c.Src, s.BStride)
		if c.Count == CountBlock || c.Count == CountRun {
			c.CV += s.BStride
		}
	}
	return nil
}

// shiftLoc advances a location's block operand by d when the offset is
// block-indexed.
func shiftLoc(l Loc, d int) Loc {
	switch l.Off {
	case OffAdj, OffDisp, OffBlock:
		l.V += d
	}
	return l
}

// combineChunk folds cnt contiguous elements of src into dst through
// the bulk timed accessors: both ranges are read line-granular into
// pooled word buffers, combined in host memory, and written back in one
// bulk store. The per-element combine cost is charged in full — only
// the load/store model changes, exactly as with chunk transfers.
func (e *execEnv) combineChunk(dst, src uint64, cnt int) error {
	if cnt == 0 {
		return nil
	}
	pe, a := e.pe, &e.a
	xs := pe.BorrowWords(cnt)
	ys := pe.BorrowWords(cnt)
	defer pe.ReturnWords(ys)
	defer pe.ReturnWords(xs)
	pe.ReadElemsChunk(a.DT, dst, xs)
	pe.ReadElemsChunk(a.DT, src, ys)
	for j := range xs {
		v, err := Combine(a.DT, a.Op, xs[j], ys[j])
		if err != nil {
			return err
		}
		xs[j] = v
	}
	pe.Advance(e.cost * uint64(cnt))
	pe.WriteElemsChunk(a.DT, dst, xs)
	return nil
}

func (e *execEnv) strideOf(strided bool) int {
	if strided {
		return e.a.Stride
	}
	return 1
}

// addr resolves a symbolic location to an address. strided scales
// element offsets that live in the call's strided layout (OffSeg is
// the only stride-sensitive offset: segment k starts k segments of
// elements — hence k segments of stride-spaced slots — into the span).
func (e *execEnv) addr(l Loc, strided bool) uint64 {
	var base uint64
	switch l.Buf {
	case BufDest:
		base = e.a.Dest
	case BufSrc:
		base = e.a.Src
	case BufStage:
		base = e.stage
	default:
		base = e.scratch
	}
	switch l.Off {
	case OffZero:
		return base
	case OffAdj:
		return base + uint64(e.adjOf(l.V))*e.w
	case OffDisp:
		return base + uint64(e.a.PeDisp[LogicalRank(l.V, e.a.Root, e.n)])*e.w
	case OffSeg:
		off := e.segOff(l.V)
		if strided {
			off *= e.a.Stride
		}
		return base + uint64(off)*e.w
	default: // OffBlock
		return base + uint64(l.V*e.a.Nelems)*e.w
	}
}

// segOff is the element offset of segment k: the first nelems mod S
// segments carry one extra element.
func (e *execEnv) segOff(k int) int {
	m := k
	if m > e.segRem {
		m = e.segRem
	}
	return k*e.segPer + m
}

// adjOf is the adjusted displacement of virtual rank v — adj_disp in
// AdjVector mode, the closed-form chunk prefix v·per + min(v, rem) in
// AdjChunks mode. v may be NPEs (the total element count).
func (e *execEnv) adjOf(v int) int {
	if e.p.Adj == AdjChunks {
		m := v
		if m > e.rem {
			m = e.rem
		}
		return v*e.per + m
	}
	return e.adj[v]
}

// blockOf is virtual rank v's own block size.
func (e *execEnv) blockOf(v int) int {
	if e.p.Adj == AdjChunks {
		if v < e.rem {
			return e.per + 1
		}
		return e.per
	}
	return e.a.PeMsgs[LogicalRank(v, e.a.Root, e.n)]
}

// count resolves a step's element count.
func (e *execEnv) count(s *Step) int {
	switch s.Count {
	case CountAll:
		return e.a.Nelems
	case CountBlock:
		return e.blockOf(s.CV)
	case CountSeg:
		n := e.segPer
		if s.CV < e.segRem {
			n++
		}
		return n
	case CountRun:
		end := s.CV + s.CB
		if end > e.n {
			end = e.n
		}
		if end <= s.CV {
			return 0
		}
		return e.adjOf(end) - e.adjOf(s.CV)
	default: // CountSubtree
		end := s.CV + (1 << s.CB)
		if end > e.n {
			end = e.n
		}
		return e.adjOf(end) - e.adjOf(s.CV)
	}
}

// stepCount is count summed over a multi-block step's expansion, for
// span accounting.
func (e *execEnv) stepCount(s *Step) int {
	if s.Blocks <= 1 {
		return e.count(s)
	}
	total := 0
	c := *s
	c.Blocks = 0
	for t := 0; t < s.Blocks; t++ {
		total += e.count(&c)
		if c.Count == CountBlock || c.Count == CountRun {
			c.CV += s.BStride
		}
	}
	return total
}

// rankOf maps a virtual rank to a transfer target: the logical rank
// for world plans, the member's global rank for team plans.
func (e *execEnv) rankOf(v int) int {
	l := LogicalRank(v, e.a.Root, e.n)
	if e.a.Team != nil {
		return e.a.Team.Member(l)
	}
	return l
}

func (e *execEnv) barrier() error {
	if e.a.Team != nil {
		return e.pe.TeamBarrier(e.a.Team)
	}
	return e.pe.Barrier()
}

// runPlan is the shared tail of every collective entry point: pick the
// segmentation for the message, fetch the cached plan (compiling on
// first use), open the plan's collective span, and execute. Team
// executions never segment — a members-only flag allocation would
// break the symmetric-heap contract.
func runPlan(pe *xbrtime.PE, coll Collective, algo Algorithm, a ExecArgs) error {
	seg := 1
	sh := Shape{}
	if a.Team == nil {
		seg = SelectSegments(coll, algo, pe.NumPEs(), a.Nelems, a.DT.Width)
		// Teams stay on flat plans: member ranks scramble the node
		// grouping the shaped planners schedule against.
		sh = shapeOf(pe)
	}
	p, err := CompilePlanFor(coll, algo, pe.NumPEs(), seg, sh)
	if err != nil {
		return err
	}
	cs := pe.StartCollective(p.Span, p.Label(), a.Root, a.Nelems)
	defer pe.FinishCollective(cs)
	return Execute(pe, p, a)
}
