package core

import "xbgas/internal/xbrtime"

// Algorithm selects a collective implementation. Paper §4.1: "there is
// no universally optimal solution suited to every occasion ... most
// state-of-the-art solutions include a variety of algorithms which are
// dynamically chosen from at runtime based on the arguments of a
// specific call. It follows then, that the xBGAS collective library
// must follow a similar pattern." The selector is that hook: the
// binomial tree is the general-purpose choice; the linear algorithm
// wins only in the degenerate cases where tree depth buys nothing.
type Algorithm uint8

// Algorithms.
const (
	// AlgoAuto picks an implementation from the call's arguments.
	AlgoAuto Algorithm = iota
	// AlgoBinomial forces the binomial tree (Algorithms 1–4).
	AlgoBinomial
	// AlgoLinear forces the flat root-centric baseline.
	AlgoLinear
	// AlgoScatterAllgather forces the large-message van de Geijn
	// broadcast (scatter + ring all-gather); broadcast only, stride 1.
	AlgoScatterAllgather
)

// LargeMessageBytes is the payload size past which scatter+all-gather
// overtakes the binomial tree on a full-bisection fabric (the
// message-size ablation locates the crossover near 4 KiB at 8 PEs).
// AlgoAuto stays on the tree regardless: on the default shared-switch
// fabric total traffic decides and the tree wins at every size, so the
// large-message algorithm is an explicit opt-in for deployments with
// bisection bandwidth.
const LargeMessageBytes = 16 << 10

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgoAuto:
		return "auto"
	case AlgoBinomial:
		return "binomial"
	case AlgoLinear:
		return "linear"
	case AlgoScatterAllgather:
		return "scatter-allgather"
	}
	return "unknown"
}

// Select resolves AlgoAuto for a collective over nPEs PEs moving
// nelems elements of width bytes each. With ≤ 2 PEs the tree and the
// flat algorithm coincide, so the cheaper-bookkeeping linear form is
// used; otherwise the binomial tree's ⌈log₂N⌉ depth wins — tree-based
// algorithms "typically produce the highest performance for smaller
// data transaction sizes" (§4.2) and small transactions dominate the
// expected workloads.
func (a Algorithm) Select(nPEs, nelems, width int) Algorithm {
	if a != AlgoAuto {
		return a
	}
	if nPEs <= 2 {
		return AlgoLinear
	}
	return AlgoBinomial
}

// BroadcastWith dispatches a broadcast through the selector. The
// large-message algorithm applies only to contiguous (stride 1)
// broadcasts; strided calls stay on the tree.
func BroadcastWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	selected := algo.Select(pe.NumPEs(), nelems, dt.Width)
	if selected == AlgoScatterAllgather && stride != 1 {
		selected = AlgoBinomial
	}
	switch selected {
	case AlgoLinear:
		return BroadcastLinear(pe, dt, dest, src, nelems, stride, root)
	case AlgoScatterAllgather:
		return BroadcastScatterAllgather(pe, dt, dest, src, nelems, root)
	default:
		return Broadcast(pe, dt, dest, src, nelems, stride, root)
	}
}

// ReduceWith dispatches a reduction through the selector.
func ReduceWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	switch algo.Select(pe.NumPEs(), nelems, dt.Width) {
	case AlgoLinear:
		return ReduceLinear(pe, dt, op, dest, src, nelems, stride, root)
	default:
		return Reduce(pe, dt, op, dest, src, nelems, stride, root)
	}
}

// ScatterWith dispatches a scatter through the selector.
func ScatterWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	switch algo.Select(pe.NumPEs(), nelems, dt.Width) {
	case AlgoLinear:
		return ScatterLinear(pe, dt, dest, src, peMsgs, peDisp, nelems, root)
	default:
		return Scatter(pe, dt, dest, src, peMsgs, peDisp, nelems, root)
	}
}

// GatherWith dispatches a gather through the selector.
func GatherWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	switch algo.Select(pe.NumPEs(), nelems, dt.Width) {
	case AlgoLinear:
		return GatherLinear(pe, dt, dest, src, peMsgs, peDisp, nelems, root)
	default:
		return Gather(pe, dt, dest, src, peMsgs, peDisp, nelems, root)
	}
}
