package core

import (
	"fmt"
	"strings"
	"sync/atomic"

	"xbgas/internal/xbrtime"
)

// Algorithm names a collective implementation. Paper §4.1: "there is
// no universally optimal solution suited to every occasion ... most
// state-of-the-art solutions include a variety of algorithms which are
// dynamically chosen from at runtime based on the arguments of a
// specific call. It follows then, that the xBGAS collective library
// must follow a similar pattern." The selector is that hook: the
// binomial tree is the general-purpose choice; the linear algorithm
// wins only in the degenerate cases where tree depth buys nothing.
//
// The value is the planner's registry key (see RegisterPlanner); the
// zero value "" is equivalent to AlgoAuto so that zero-initialised
// specs pick automatically.
type Algorithm string

// Algorithms.
const (
	// AlgoAuto picks an implementation from the call's arguments.
	AlgoAuto Algorithm = "auto"
	// AlgoBinomial forces the binomial tree (Algorithms 1–4).
	AlgoBinomial Algorithm = "binomial"
	// AlgoLinear forces the flat root-centric baseline.
	AlgoLinear Algorithm = "linear"
	// AlgoScatterAllgather forces the large-message van de Geijn
	// broadcast (scatter + ring all-gather); broadcast only, stride 1.
	AlgoScatterAllgather Algorithm = "scatter-allgather"
	// AlgoDirect forces the direct pairwise exchange (alltoall only).
	AlgoDirect Algorithm = "direct"
	// AlgoRing forces the bandwidth-optimal ring family: chunk-cycling
	// reduce-scatter/allgather/allreduce and the pipelined chain
	// broadcast/reduce (planners_bw.go).
	AlgoRing Algorithm = "ring"
	// AlgoRabenseifner forces recursive-halving reduce-scatter plus
	// recursive-doubling allgather (and their composition for
	// allreduce); power-of-two PE counts, with a ring-shaped fallback
	// elsewhere.
	AlgoRabenseifner Algorithm = "rabenseifner"
	// AlgoHier forces the topology-aware two-level family
	// (planners_hier.go): intra-node and inter-node phases scheduled
	// separately against the fabric's node grouping, so bulk volume
	// crosses the narrow inter-node links once per node instead of once
	// per PE. On flat topologies it degenerates to a single-group
	// (ring-shaped) schedule.
	AlgoHier Algorithm = "hierarchical"
	// AlgoPAT forces the Bruck-style parallel-aggregated-tree planner
	// (planners_pat.go): log₂ n rounds of doubling block runs for
	// allgather and the time-reversed mirror for reduce-scatter, at any
	// PE count. Its log-depth schedule is the scale-out alternative to
	// the ring's n−1 rounds at 1k+ PEs.
	AlgoPAT Algorithm = "pat"
)

// LargeMessageBytes is the payload size past which scatter+all-gather
// overtakes the binomial tree on a full-bisection fabric (the
// message-size ablation locates the crossover near 4 KiB at 8 PEs).
// AlgoAuto stays on the tree regardless: on the default shared-switch
// fabric total traffic decides and the tree wins at every size, so the
// large-message algorithm is an explicit opt-in for deployments with
// bisection bandwidth.
const LargeMessageBytes = 16 << 10

// Message-segmentation parameters (see SelectSegments). The chunk-size
// ablation in docs/PERF.md locates the values: segmentation first pays
// for itself once the payload clearly exceeds one chunk (the flag
// round-trips cost ~a chunk of bandwidth), and 32 KiB chunks sit on the
// flat part of the sweep at 8 PEs.
const (
	// DefaultChunkBytes is the auto-selected segment size.
	DefaultChunkBytes = 32 << 10
	// SegmentMinBytes is the payload size below which auto selection
	// never segments: small messages are latency-bound and the paper's
	// whole-message rounds are already optimal.
	SegmentMinBytes = 64 << 10
	// MaxSegments caps the pipeline depth so tiny chunks never flood
	// the flag hub or the handle pools.
	MaxSegments = 32
)

// chunkOverride holds the -chunk override: 0 = auto, >0 = forced chunk
// bytes, <0 = segmentation disabled.
var chunkOverride atomic.Int64

// SetChunkBytes overrides the auto-selected segment size for every
// subsequent collective: b > 0 forces ⌈bytes/b⌉ segments on
// segmentable calls, b == 0 restores auto selection, and b < 0
// disables segmentation entirely (the unsegmented baseline arm of the
// chunk ablation). Cached auto decisions are invalidated: the override
// moves the cost of every segmented candidate.
func SetChunkBytes(b int) {
	chunkOverride.Store(int64(b))
	invalidateAuto()
}

// ChunkBytes returns the current -chunk override (0 = auto).
func ChunkBytes() int { return int(chunkOverride.Load()) }

// SelectSegments picks the message-segmentation factor for a
// collective: the number of near-equal chunks the payload is split
// into so segments pipeline through the tree (1 = unsegmented). The
// binomial tree's rooted data movers and the ring chain's
// broadcast/reduce segment; everything else — and any payload below
// SegmentMinBytes under auto selection — runs whole-message rounds.
func SelectSegments(coll Collective, algo Algorithm, nPEs, nelems, width int) int {
	if nPEs < 2 || nelems < 2 {
		return 1
	}
	switch algo {
	case AlgoBinomial:
		switch coll {
		case CollBroadcast, CollReduce, CollAllReduce, CollScatter:
		default:
			return 1
		}
	case AlgoRing:
		switch coll {
		case CollBroadcast, CollReduce:
		default:
			return 1
		}
	default:
		return 1
	}
	chunk := ChunkBytes()
	if chunk < 0 {
		return 1
	}
	bytes := nelems * width
	if chunk == 0 {
		if bytes < SegmentMinBytes {
			return 1
		}
		chunk = DefaultChunkBytes
	}
	s := (bytes + chunk - 1) / chunk
	if s > MaxSegments {
		s = MaxSegments
	}
	if s > nelems {
		s = nelems
	}
	if coll == CollScatter && s > 1 {
		// Scatter pipelines at subtree-block granularity whatever the
		// chunk size; one canonical segmented shape keeps the cache to
		// a single plan.
		s = 2
	}
	if s < 2 {
		return 1
	}
	return s
}

// String names the algorithm, rendering the zero value as "auto".
func (a Algorithm) String() string {
	if a == "" {
		return string(AlgoAuto)
	}
	return string(a)
}

// Select resolves AlgoAuto for one collective over nPEs PEs moving
// nelems elements of width bytes each. A fixed algorithm passes
// through untouched. Auto is the calibrated cost model's argmin
// (chooseAuto): with ≤ 2 PEs the tree and the flat algorithm coincide
// so the cheaper-bookkeeping linear form is used; small payloads stay
// on the binomial tree — tree-based algorithms "typically produce the
// highest performance for smaller data transaction sizes" (§4.2) —
// and large payloads land on the bandwidth-optimal ring/rabenseifner
// planners past the tuned crossover.
func (a Algorithm) Select(coll Collective, nPEs, nelems, width int) Algorithm {
	return a.SelectFor(coll, nPEs, nelems, width, Shape{})
}

// SelectFor is Select against a fabric shape: on a grouped topology the
// shape admits the hierarchical candidates and prices every plan with
// the per-link-class coefficients, so auto resolves differently intra-
// vs inter-node. The flat shape reproduces Select exactly.
func (a Algorithm) SelectFor(coll Collective, nPEs, nelems, width int, sh Shape) Algorithm {
	if a != AlgoAuto && a != "" {
		return a
	}
	return chooseAuto(coll, nPEs, nelems, width, sh)
}

// resolveAlgorithm normalises an algorithm request for one collective:
// auto-selection first, then a registry lookup (unknown names are an
// error listing what is registered), then a fall-back when the chosen
// planner does not cover this collective — to the binomial tree when
// it applies (the pre-registry dispatch switches defaulted the same
// way), otherwise to the cost model's pick (reduce-scatter has no
// binomial form).
func resolveAlgorithm(algo Algorithm, coll Collective, nPEs, nelems, width int, sh Shape) (Algorithm, error) {
	selected := algo.SelectFor(coll, nPEs, nelems, width, sh)
	pl, ok := LookupPlanner(selected)
	if !ok {
		return "", fmt.Errorf("core: unknown algorithm %q (registered: %s)",
			selected, strings.Join(PlannerNames(), ", "))
	}
	if !pl.Supports(coll) {
		if bin, ok := LookupPlanner(AlgoBinomial); ok && bin.Supports(coll) {
			return AlgoBinomial, nil
		}
		return chooseAuto(coll, nPEs, nelems, width, sh), nil
	}
	return selected, nil
}

// BroadcastWith dispatches a broadcast through the selector and the
// planner registry. The large-message algorithm applies only to
// contiguous (stride 1) broadcasts; strided calls stay on the tree.
func BroadcastWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	selected, err := resolveAlgorithm(algo, CollBroadcast, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if selected == AlgoScatterAllgather {
		if stride != 1 {
			selected = AlgoBinomial
		} else {
			return BroadcastScatterAllgather(pe, dt, dest, src, nelems, root)
		}
	}
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	return runPlan(pe, CollBroadcast, selected, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}

// ReduceWith dispatches a reduction through the selector and the
// planner registry.
func ReduceWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride, root int) error {
	selected, err := resolveAlgorithm(algo, CollReduce, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	return runPlan(pe, CollReduce, selected, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}

// ScatterWith dispatches a scatter through the selector and the
// planner registry.
func ScatterWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	selected, err := resolveAlgorithm(algo, CollScatter, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollScatter, selected, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}

// AllReduceWith dispatches a reduction-to-all through the selector and
// the planner registry: auto resolves against the calibrated cost
// model, so large payloads land on the bandwidth-optimal rabenseifner
// or ring planner and small ones stay on the binomial tree.
func AllReduceWith(pe *xbrtime.PE, algo Algorithm, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems, stride int) error {
	selected, err := resolveAlgorithm(algo, CollAllReduce, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validate(pe, dt, nelems, stride, 0); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	return runPlan(pe, CollAllReduce, selected, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: 0,
	})
}

// AllGatherWith dispatches a gather-to-all through the selector and the
// planner registry.
func AllGatherWith(pe *xbrtime.PE, algo Algorithm, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems int) error {
	selected, err := resolveAlgorithm(algo, CollAllGather, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, 0); err != nil {
		return err
	}
	return runPlan(pe, CollAllGather, selected, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: 0,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}

// ReduceScatterWith dispatches a reduce-scatter through the selector
// and the planner registry: every PE contributes nelems elements at
// src and receives its own fully-reduced chunk (the closed-form
// equal chunking of nelems over the PEs, chunk v sized
// ⌊nelems/n⌋ + (v < nelems mod n)) at dest. The collective is
// rootless; only the bandwidth-optimal planners implement it.
func ReduceScatterWith(pe *xbrtime.PE, algo Algorithm, dt xbrtime.DType, op ReduceOp, dest, src uint64, nelems int) error {
	selected, err := resolveAlgorithm(algo, CollReduceScatter, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validate(pe, dt, nelems, 1, 0); err != nil {
		return err
	}
	if _, err := Combine(dt, op, 0, 0); err != nil {
		return err
	}
	return runPlan(pe, CollReduceScatter, selected, ExecArgs{
		DT: dt, Op: op, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: 0,
	})
}

// GatherWith dispatches a gather through the selector and the planner
// registry.
func GatherWith(algo Algorithm, pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	selected, err := resolveAlgorithm(algo, CollGather, pe.NumPEs(), nelems, dt.Width, shapeOf(pe))
	if err != nil {
		return err
	}
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollGather, selected, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}
