package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestTuningSaveLoadRoundTrip(t *testing.T) {
	defer SetTuning(DefaultTuning())
	path := filepath.Join(t.TempDir(), "fabric", "tuning.json")
	want := DefaultTuning()
	want.Fabric = "roundtrip"
	want.AlphaNs = 123
	if err := SaveTuning(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := LoadTuning(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("LoadTuning = %+v, want %+v", got, want)
	}
	if cur := CurrentTuning(); cur != want {
		t.Fatalf("LoadTuning did not install the table: %+v", cur)
	}
}

func TestLoadTuningRejectsWrongVersion(t *testing.T) {
	defer SetTuning(DefaultTuning())
	path := filepath.Join(t.TempDir(), "tuning.json")
	bad := DefaultTuning()
	bad.Version = TuningVersion + 1
	if err := SaveTuning(path, bad); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadTuning(path); err == nil || !strings.Contains(err.Error(), "version") {
		t.Fatalf("LoadTuning(version mismatch) err = %v, want version error", err)
	}
	if _, err := LoadTuning(filepath.Join(t.TempDir(), "missing.json")); !os.IsNotExist(err) {
		t.Fatalf("LoadTuning(missing) err = %v, want not-exist", err)
	}
}

// The structural property the model exists for: at large payloads the
// bandwidth-optimal plans must price below the binomial tree, and the
// flat broadcast must price above it (the root serialises every byte).
func TestPlanCostOrdersLargeMessages(t *testing.T) {
	tn := DefaultTuning()
	const n, nelems, width = 8, 1 << 17, 8
	cost := func(coll Collective, algo Algorithm) float64 {
		seg := SelectSegments(coll, algo, n, nelems, width)
		p, err := CompilePlanSeg(coll, algo, n, seg)
		if err != nil {
			t.Fatalf("%s/%s: %v", coll, algo, err)
		}
		return PlanCost(p, tn, nelems, width)
	}
	if rab, bin := cost(CollAllReduce, AlgoRabenseifner), cost(CollAllReduce, AlgoBinomial); rab >= bin {
		t.Errorf("1MiB allreduce: rabenseifner %.0f >= binomial %.0f", rab, bin)
	}
	if ring, bin := cost(CollAllGather, AlgoRing), cost(CollAllGather, AlgoBinomial); ring >= bin {
		t.Errorf("1MiB allgather: ring %.0f >= binomial %.0f", ring, bin)
	}
	if bin, lin := cost(CollBroadcast, AlgoBinomial), cost(CollBroadcast, AlgoLinear); bin >= lin {
		t.Errorf("1MiB broadcast: binomial %.0f >= linear %.0f", bin, lin)
	}
}

// Auto decisions must react to the installed table: a fabric with free
// bandwidth but enormous per-message latency pushes allreduce selection
// to the shallowest plan available, and restoring the defaults brings
// the bandwidth-optimal pick back (exercising the decision cache's
// generation invalidation).
func TestAutoReactsToTuning(t *testing.T) {
	defer SetTuning(DefaultTuning())
	const n, nelems, width = 8, 1 << 17, 8
	before := AlgoAuto.Select(CollAllReduce, n, nelems, width)
	if before != AlgoRabenseifner && before != AlgoRing {
		t.Fatalf("default tuning pick = %s, want bandwidth-optimal", before)
	}
	slow := DefaultTuning()
	slow.AlphaNs = 1e9 // every message costs a second; round count is all that matters
	slow.BarrierNs = 0
	SetTuning(slow)
	after := AlgoAuto.Select(CollAllReduce, n, nelems, width)
	if pAfter, _ := CompilePlan(CollAllReduce, after, n); pAfter != nil {
		pBefore, _ := CompilePlan(CollAllReduce, AlgoRing, n)
		if pBefore != nil && pAfter.Depth > pBefore.Depth {
			t.Errorf("latency-dominated tuning picked %s (depth %d) over shallower options", after, pAfter.Depth)
		}
	}
	SetTuning(DefaultTuning())
	if again := AlgoAuto.Select(CollAllReduce, n, nelems, width); again != before {
		t.Errorf("restoring tuning: pick = %s, want %s", again, before)
	}
}
