package core

import (
	"sort"
	"sync"
	"testing"

	"xbgas/internal/xbrtime"
)

// observed is one traced remote transfer in virtual-rank space.
type observed struct {
	kind     string
	from, to int // virtual ranks
}

// traceCollective runs a collective with a communication trace on
// every PE and returns the remote transfers in virtual-rank space.
func traceCollective(t *testing.T, nPEs, root int,
	run func(pe *xbrtime.PE) error) []observed {
	t.Helper()
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var events []observed
	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		pe.SetCommTrace(func(ev xbrtime.TraceEvent) {
			mu.Lock()
			events = append(events, observed{
				kind: ev.Kind,
				from: VirtualRank(me, root, nPEs),
				to:   VirtualRank(ev.Target, root, nPEs),
			})
			mu.Unlock()
		})
		return run(pe)
	})
	if err != nil {
		t.Fatal(err)
	}
	return events
}

func sortObserved(evs []observed) {
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].from != evs[j].from {
			return evs[i].from < evs[j].from
		}
		return evs[i].to < evs[j].to
	})
}

// TestBroadcastConformsToSchedule verifies that the executed broadcast
// performs exactly the put set of the analytic Algorithm 1 schedule —
// the strongest statement that the implementation is the paper's
// algorithm, not merely something that produces the right data.
func TestBroadcastConformsToSchedule(t *testing.T) {
	for _, nPEs := range []int{2, 3, 5, 8} {
		for _, root := range []int{0, nPEs - 1} {
			events := traceCollective(t, nPEs, root, func(pe *xbrtime.PE) error {
				dest, err := pe.Malloc(8)
				if err != nil {
					return err
				}
				src, err := pe.PrivateAlloc(8)
				if err != nil {
					return err
				}
				return Broadcast(pe, xbrtime.TypeInt64, dest, src, 1, 1, root)
			})
			want := make([]observed, 0)
			for _, tr := range BroadcastSchedule(nPEs) {
				want = append(want, observed{kind: "put", from: tr.From, to: tr.To})
			}
			sortObserved(events)
			sortObserved(want)
			if len(events) != len(want) {
				t.Fatalf("n=%d root=%d: %d transfers, schedule has %d:\n%v\nvs\n%v",
					nPEs, root, len(events), len(want), events, want)
			}
			for i := range want {
				if events[i] != want[i] {
					t.Errorf("n=%d root=%d transfer %d: got %+v, want %+v",
						nPEs, root, i, events[i], want[i])
				}
			}
		}
	}
}

// TestReduceConformsToSchedule does the same for the get-based
// reduction of Algorithm 2.
func TestReduceConformsToSchedule(t *testing.T) {
	for _, nPEs := range []int{2, 3, 5, 8} {
		for _, root := range []int{0, nPEs / 2} {
			events := traceCollective(t, nPEs, root, func(pe *xbrtime.PE) error {
				src, err := pe.Malloc(8)
				if err != nil {
					return err
				}
				dest, err := pe.PrivateAlloc(8)
				if err != nil {
					return err
				}
				return Reduce(pe, xbrtime.TypeInt64, OpSum, dest, src, 1, 1, root)
			})
			want := make([]observed, 0)
			for _, tr := range ReduceSchedule(nPEs) {
				// The getter (To in schedule terms) issues the get; the
				// trace records it as from=getter, to=data owner.
				want = append(want, observed{kind: "get", from: tr.To, to: tr.From})
			}
			sortObserved(events)
			sortObserved(want)
			if len(events) != len(want) {
				t.Fatalf("n=%d root=%d: %d transfers, schedule has %d",
					nPEs, root, len(events), len(want))
			}
			for i := range want {
				if events[i] != want[i] {
					t.Errorf("n=%d root=%d transfer %d: got %+v, want %+v",
						nPEs, root, i, events[i], want[i])
				}
			}
		}
	}
}

// TestScatterMessageSizesShrinkDownTree checks Algorithm 3's defining
// property: each round forwards a block covering the partner and its
// children, so observed message sizes halve down the tree.
func TestScatterMessageSizesShrinkDownTree(t *testing.T) {
	const nPEs, root = 8, 0
	msgs := []int{1, 1, 1, 1, 1, 1, 1, 1}
	disp := []int{0, 1, 2, 3, 4, 5, 6, 7}
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	sizes := map[[2]int]int{} // {from,to} -> nelems
	err = rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		pe.SetCommTrace(func(ev xbrtime.TraceEvent) {
			mu.Lock()
			sizes[[2]int{me, ev.Target}] = ev.Nelems
			mu.Unlock()
		})
		dest, err := pe.Malloc(8 * 8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8 * 8)
		if err != nil {
			return err
		}
		return Scatter(pe, xbrtime.TypeInt64, dest, src, msgs, disp, 8, root)
	})
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]int{
		{0, 4}: 4, // root forwards half the data to the opposite subtree
		{0, 2}: 2, {4, 6}: 2,
		{0, 1}: 1, {2, 3}: 1, {4, 5}: 1, {6, 7}: 1,
	}
	if len(sizes) != len(want) {
		t.Fatalf("transfers = %v", sizes)
	}
	for k, v := range want {
		if sizes[k] != v {
			t.Errorf("put %v: %d elems, want %d", k, sizes[k], v)
		}
	}
}
