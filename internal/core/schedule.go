package core

import (
	"fmt"
	"strings"
)

// Transfer is one point-to-point move in a collective's schedule,
// expressed in virtual ranks. Schedules are projections of the same
// compiled plans the executor runs (Plan.Transfers), so the analytic
// view and the executed communication cannot drift apart.
type Transfer struct {
	Round int
	// Kind is StepPut or StepGet.
	Kind StepKind
	// From and To are virtual ranks; for get-based collectives From is
	// the passive data owner and To the PE issuing the get.
	From, To int
}

// BroadcastSchedule computes the communication schedule of Algorithm 1
// for n PEs: which virtual rank puts to which in each round. Root
// choice does not affect the virtual-rank schedule (that is the point
// of the remapping). Returns nil for n < 1.
func BroadcastSchedule(n int) []Transfer {
	p, err := CompilePlan(CollBroadcast, AlgoBinomial, n)
	if err != nil {
		return nil
	}
	return p.Transfers()
}

// ReduceSchedule computes the get schedule of Algorithm 2: in each
// round, which virtual rank pulls from which. Returns nil for n < 1.
func ReduceSchedule(n int) []Transfer {
	p, err := CompilePlan(CollReduce, AlgoBinomial, n)
	if err != nil {
		return nil
	}
	return p.Transfers()
}

// RenderTree renders the broadcast binomial tree with recursive halving
// in the shape of paper Figure 3: one line per round listing the
// point-to-point transfers among virtual ranks.
func RenderTree(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Binomial tree with recursive halving, %d PEs (paper Figure 3)\n", n)
	sched := BroadcastSchedule(n)
	rounds := CeilLog2(n)
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "  round %d:", r)
		for _, tr := range sched {
			if tr.Round == r {
				fmt.Fprintf(&b, "  %d->%d", tr.From, tr.To)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %d communication steps for %d PEs (upper bound ceil(log2 N))\n",
		rounds, n)
	return b.String()
}
