package core

import (
	"fmt"
	"strings"
)

// Transfer is one point-to-point move in a collective's schedule,
// expressed in virtual ranks.
type Transfer struct {
	Round int
	// From and To are virtual ranks; for get-based collectives From is
	// the passive data owner and To the PE issuing the get.
	From, To int
}

// BroadcastSchedule computes, analytically, the communication schedule
// of Algorithm 1 for n PEs: which virtual rank puts to which in each
// round. Root choice does not affect the virtual-rank schedule (that is
// the point of the remapping).
func BroadcastSchedule(n int) []Transfer {
	rounds := CeilLog2(n)
	var out []Transfer
	mask := (1 << rounds) - 1
	for i := rounds - 1; i >= 0; i-- {
		mask ^= 1 << i
		for v := 0; v < n; v++ {
			if v&mask == 0 && v&(1<<i) == 0 {
				vp := (v ^ (1 << i)) % n
				if v < vp {
					out = append(out, Transfer{Round: rounds - 1 - i, From: v, To: vp})
				}
			}
		}
	}
	return out
}

// ReduceSchedule computes the get schedule of Algorithm 2: in each
// round, which virtual rank pulls from which.
func ReduceSchedule(n int) []Transfer {
	rounds := CeilLog2(n)
	var out []Transfer
	mask := (1 << rounds) - 1
	for i := 0; i < rounds; i++ {
		mask ^= 1 << i
		for v := 0; v < n; v++ {
			if v|mask == mask && v&(1<<i) == 0 {
				vp := (v ^ (1 << i)) % n
				if v < vp {
					out = append(out, Transfer{Round: i, From: vp, To: v})
				}
			}
		}
	}
	return out
}

// RenderTree renders the broadcast binomial tree with recursive halving
// in the shape of paper Figure 3: one line per round listing the
// point-to-point transfers among virtual ranks.
func RenderTree(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Binomial tree with recursive halving, %d PEs (paper Figure 3)\n", n)
	sched := BroadcastSchedule(n)
	rounds := CeilLog2(n)
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "  round %d:", r)
		for _, tr := range sched {
			if tr.Round == r {
				fmt.Fprintf(&b, "  %d->%d", tr.From, tr.To)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %d communication steps for %d PEs (upper bound ceil(log2 N))\n",
		rounds, n)
	return b.String()
}
