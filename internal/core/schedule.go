package core

import (
	"fmt"
	"strings"
)

// Transfer is one point-to-point move in a collective's schedule,
// expressed in virtual ranks. Schedules are projections of the same
// compiled plans the executor runs (Plan.Transfers), so the analytic
// view and the executed communication cannot drift apart.
type Transfer struct {
	Round int
	// Kind is StepPut or StepGet.
	Kind StepKind
	// From and To are virtual ranks; for get-based collectives From is
	// the passive data owner and To the PE issuing the get.
	From, To int
}

// BroadcastSchedule computes the communication schedule of Algorithm 1
// for n PEs: which virtual rank puts to which in each round. Root
// choice does not affect the virtual-rank schedule (that is the point
// of the remapping). Returns nil for n < 1.
func BroadcastSchedule(n int) []Transfer {
	p, err := CompilePlan(CollBroadcast, AlgoBinomial, n)
	if err != nil {
		return nil
	}
	return p.Transfers()
}

// ReduceSchedule computes the get schedule of Algorithm 2: in each
// round, which virtual rank pulls from which. Returns nil for n < 1.
func ReduceSchedule(n int) []Transfer {
	p, err := CompilePlan(CollReduce, AlgoBinomial, n)
	if err != nil {
		return nil
	}
	return p.Transfers()
}

// SegmentedBroadcastSchedule projects the pipelined broadcast for n
// PEs split into segments chunks: every tree edge appears once per
// segment, with Round carrying the segment index. Returns nil for
// n < 1 (or when the shape degenerates to the unsegmented plan).
func SegmentedBroadcastSchedule(n, segments int) []Transfer {
	p, err := CompilePlanSeg(CollBroadcast, AlgoBinomial, n, segments)
	if err != nil {
		return nil
	}
	return p.Transfers()
}

// SegmentedDepth is the segmented cost model behind the Figure 3
// projection: a payload split into S segments pipelines through the
// ⌈log₂ n⌉-deep binomial tree in ⌈log₂ n⌉+S−1 segment steps — the
// leaves receive their first segment after ⌈log₂ n⌉ hops, and one more
// segment drains per step thereafter — versus ⌈log₂ n⌉ whole-message
// rounds (S·⌈log₂ n⌉ segment-sized sends on the critical path)
// unsegmented.
func SegmentedDepth(n, segments int) int {
	if n < 1 || segments < 1 {
		return 0
	}
	return CeilLog2(n) + segments - 1
}

// RenderTree renders the broadcast binomial tree with recursive halving
// in the shape of paper Figure 3: one line per round listing the
// point-to-point transfers among virtual ranks.
func RenderTree(n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Binomial tree with recursive halving, %d PEs (paper Figure 3)\n", n)
	sched := BroadcastSchedule(n)
	rounds := CeilLog2(n)
	for r := 0; r < rounds; r++ {
		fmt.Fprintf(&b, "  round %d:", r)
		for _, tr := range sched {
			if tr.Round == r {
				fmt.Fprintf(&b, "  %d->%d", tr.From, tr.To)
			}
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "  %d communication steps for %d PEs (upper bound ceil(log2 N))\n",
		rounds, n)
	fmt.Fprintf(&b, "  segmented pipeline: ceil(log2 N)+S-1 segment steps for S segments (S=8: %d)\n",
		SegmentedDepth(n, 8))
	return b.String()
}
