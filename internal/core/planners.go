package core

// The planners: each compiles one algorithm family into the plan IR.
// The binomial tree shapes live in putTreeEdges/getTreeEdges — the
// ONLY place in the package that performs Algorithm 1–4's mask
// arithmetic; every collective, analytic schedule, and rendered figure
// derives from these two generators.

// treeEdge is one parent→child link of the binomial tree: from
// survives the round, to is its partner, bit the round's tree bit
// (the partner subtree spans virtual ranks [to, to+2^bit)).
type treeEdge struct {
	from, to, bit int
}

// putTreeEdges returns, round by round, the edges of Algorithm 1's
// recursive-halving put tree: the loop index runs from ⌈log₂ n⌉−1
// down to 0 so the mask isolates virtual-rank bits left to right,
// spreading the first hops across the widest distance.
func putTreeEdges(n int) [][]treeEdge {
	rounds := CeilLog2(n)
	out := make([][]treeEdge, rounds)
	mask := (1 << rounds) - 1
	for i := rounds - 1; i >= 0; i-- {
		mask ^= 1 << i
		var edges []treeEdge
		for v := 0; v < n; v++ {
			if v&mask == 0 && v&(1<<i) == 0 {
				if vp := (v ^ (1 << i)) % n; v < vp {
					edges = append(edges, treeEdge{from: v, to: vp, bit: i})
				}
			}
		}
		out[rounds-1-i] = edges
	}
	return out
}

// getTreeEdges returns the rounds of Algorithm 2's recursive-doubling
// get tree — the broadcast tree read leaves→root: the loop index runs
// upward so the mask isolates virtual-rank bits right to left. In each
// edge, from issues the get and to is the passive data owner.
func getTreeEdges(n int) [][]treeEdge {
	rounds := CeilLog2(n)
	out := make([][]treeEdge, rounds)
	mask := (1 << rounds) - 1
	for i := 0; i < rounds; i++ {
		mask ^= 1 << i
		var edges []treeEdge
		for v := 0; v < n; v++ {
			if v|mask == mask && v&(1<<i) == 0 {
				if vp := (v ^ (1 << i)) % n; v < vp {
					edges = append(edges, treeEdge{from: v, to: vp, bit: i})
				}
			}
		}
		out[i] = edges
	}
	return out
}

func barrierStep() Step {
	return Step{Kind: StepBarrier, Actor: ActorAll, Peer: -1}
}

// stageAll emits one strided copy per virtual rank loading the
// symmetric staging buffer with the PE's contribution.
func stageAll(n int) []Step {
	steps := make([]Step, 0, n+1)
	for v := 0; v < n; v++ {
		steps = append(steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll, DstStrided: true, SrcStrided: true,
		})
	}
	return steps
}

func compileBinomial(coll Collective, n int) *Plan {
	switch coll {
	case CollBroadcast:
		return binomialBroadcastPlan(n)
	case CollReduce:
		return binomialReducePlan(n)
	case CollScatter:
		return binomialScatterPlan(n)
	case CollGather:
		return binomialGatherPlan(n)
	case CollAllReduce:
		return binomialAllReducePlan(n)
	case CollAllGather:
		return binomialAllGatherPlan(n)
	}
	return nil
}

// binomialBroadcastPlan is Algorithm 1: the root stages src at its own
// dest (so the postcondition holds on the root and every sender
// forwards from the same symmetric address), then each round's
// senders put their whole payload down the tree.
func binomialBroadcastPlan(n int) *Plan {
	p := &Plan{Collective: CollBroadcast, Algorithm: AlgoBinomial, Span: "broadcast", NPEs: n}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	}}})
	for idx, edges := range putTreeEdges(n) {
		r := Round{Name: "broadcast.round", Idx: idx}
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: e.from, Peer: e.to,
				Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufDest},
				Count: CountAll, Strided: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	return p
}

// binomialReducePlan is Algorithm 2: every PE stages its contribution
// in the symmetric s_buff, survivors get their partner's partial into
// the private l_buff and combine it in, and the root migrates the
// result to dest. Both buffers exist to "prevent any unintended
// overwriting of values on any PE".
func binomialReducePlan(n int) *Plan {
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoBinomial, Span: "reduce", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
	}
	pro := Round{Idx: -1, Steps: stageAll(n)}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for idx, edges := range getTreeEdges(n) {
		r := Round{Name: "reduce.round", Idx: idx}
		for _, e := range edges {
			r.Steps = append(r.Steps,
				Step{
					Kind: StepGet, Actor: e.from, Peer: e.to,
					Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
					Count: CountAll, Strided: true,
				},
				Step{
					Kind: StepCombine, Actor: e.from, Peer: -1,
					Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
					Count: CountAll, DstStrided: true, SrcStrided: true,
				})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	}}})
	return p
}

// binomialScatterPlan is Algorithm 3: the root reorders src
// (logical-rank order at the caller's displacements) into the staging
// buffer in virtual-rank order, which "guarantees that the data for
// each tree node and its children is contiguous and ensures that a
// single put is sufficient at each stage"; every round forwards one
// contiguous subtree block, and each PE finally relocates its own
// block to dest.
func binomialScatterPlan(n int) *Plan {
	p := &Plan{
		Collective: CollScatter, Algorithm: AlgoBinomial, Span: "scatter", NPEs: n,
		Stage: BufTotal, Adj: AdjVector,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: 0, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc, Off: OffDisp, V: v},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for idx, edges := range putTreeEdges(n) {
		r := Round{Name: "scatter.round", Idx: idx}
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: e.from, Peer: e.to,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Count: CountSubtree, CV: e.to, CB: e.bit, SkipIfZero: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// binomialGatherPlan is Algorithm 4 — Algorithm 3 read leaves→root
// with get: each PE stages its block at its adjusted offset,
// survivors pull their partner's aggregated subtree block, and the
// root reorders the virtual-rank-ordered staging buffer into dest.
func binomialGatherPlan(n int) *Plan {
	p := &Plan{
		Collective: CollGather, Algorithm: AlgoBinomial, Span: "gather", NPEs: n,
		Stage: BufTotal, Adj: AdjVector,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for idx, edges := range getTreeEdges(n) {
		r := Round{Name: "gather.round", Idx: idx}
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepGet, Actor: e.from, Peer: e.to,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Count: CountSubtree, CV: e.to, CB: e.bit, SkipIfZero: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: 0, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: v},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// binomialAllReducePlan composes reduce and broadcast over one shared
// staging buffer: get-tree rounds fold partials toward virtual rank 0,
// put-tree rounds push the result back down, and every PE copies the
// staged result to dest — one allocation and no dest round-trip,
// unlike the historical Reduce-then-Broadcast composition.
func binomialAllReducePlan(n int) *Plan {
	p := &Plan{
		Collective: CollAllReduce, Algorithm: AlgoBinomial, Span: "allreduce", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
	}
	pro := Round{Idx: -1, Steps: stageAll(n)}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	for _, edges := range getTreeEdges(n) {
		r := Round{Name: "allreduce.round", Idx: idx}
		idx++
		for _, e := range edges {
			r.Steps = append(r.Steps,
				Step{
					Kind: StepGet, Actor: e.from, Peer: e.to,
					Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
					Count: CountAll, Strided: true,
				},
				Step{
					Kind: StepCombine, Actor: e.from, Peer: -1,
					Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
					Count: CountAll, DstStrided: true, SrcStrided: true,
				})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	for _, edges := range putTreeEdges(n) {
		r := Round{Name: "allreduce.round", Idx: idx}
		idx++
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: e.from, Peer: e.to,
				Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufStage},
				Count: CountAll, Strided: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true, SrcStrided: true,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// binomialAllGatherPlan composes gather and broadcast over one staging
// buffer: get-tree rounds aggregate every block at virtual rank 0,
// put-tree rounds push the full concatenation back down, and each PE
// unpacks the virtual-rank-ordered buffer to dest at the caller's
// displacements.
func binomialAllGatherPlan(n int) *Plan {
	p := &Plan{
		Collective: CollAllGather, Algorithm: AlgoBinomial, Span: "allgather", NPEs: n,
		Stage: BufTotal, Adj: AdjVector,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	for _, edges := range getTreeEdges(n) {
		r := Round{Name: "allgather.round", Idx: idx}
		idx++
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepGet, Actor: e.from, Peer: e.to,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Count: CountSubtree, CV: e.to, CB: e.bit, SkipIfZero: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	for _, edges := range putTreeEdges(n) {
		r := Round{Name: "allgather.round", Idx: idx}
		idx++
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: e.from, Peer: e.to,
				Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufStage},
				Count: CountAll,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountBlock, CV: 0, Blocks: n, BStride: 1,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

func compileLinear(coll Collective, n int) *Plan {
	switch coll {
	case CollBroadcast:
		return linearBroadcastPlan(n)
	case CollReduce:
		return linearReducePlan(n)
	case CollScatter:
		return linearScatterPlan(n)
	case CollGather:
		return linearGatherPlan(n)
	}
	return nil
}

// linearBroadcastPlan: the root puts the whole payload to every other
// PE directly; a single barrier closes the exchange.
func linearBroadcastPlan(n int) *Plan {
	p := &Plan{Collective: CollBroadcast, Algorithm: AlgoLinear, Span: "broadcast_linear", NPEs: n}
	r := Round{Name: "broadcast_linear.round", Idx: 0}
	r.Steps = append(r.Steps, Step{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	})
	for v := 1; v < n; v++ {
		r.Steps = append(r.Steps, Step{
			Kind: StepPut, Actor: 0, Peer: v,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufDest},
			Count: CountAll, Strided: true,
		})
	}
	r.Steps = append(r.Steps, barrierStep())
	p.Rounds = append(p.Rounds, r)
	return p
}

// linearReducePlan: every PE stages its contribution, then the root
// seeds dest with its own values and folds in each peer's staged
// partial in turn.
func linearReducePlan(n int) *Plan {
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoLinear, Span: "reduce_linear", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
	}
	pro := Round{Idx: -1, Steps: stageAll(n)}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	r := Round{Name: "reduce_linear.round", Idx: 0}
	r.Steps = append(r.Steps, Step{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	})
	for v := 1; v < n; v++ {
		r.Steps = append(r.Steps,
			Step{
				Kind: StepGet, Actor: 0, Peer: v,
				Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
				Count: CountAll, Strided: true,
			},
			Step{
				Kind: StepCombine, Actor: 0, Peer: -1,
				Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufScratch},
				Count: CountAll, DstStrided: true, SrcStrided: true,
			})
	}
	r.Steps = append(r.Steps, barrierStep())
	p.Rounds = append(p.Rounds, r)
	return p
}

// linearScatterPlan: the root copies its own block and puts every
// other PE's block straight from src — no staging buffer at all.
func linearScatterPlan(n int) *Plan {
	p := &Plan{Collective: CollScatter, Algorithm: AlgoLinear, Span: "scatter_linear", NPEs: n}
	r := Round{Name: "scatter_linear.round", Idx: 0}
	r.Steps = append(r.Steps, Step{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst:   Loc{Buf: BufDest},
		Src:   Loc{Buf: BufSrc, Off: OffDisp, V: 0},
		Count: CountBlock, CV: 0,
	})
	for v := 1; v < n; v++ {
		r.Steps = append(r.Steps, Step{
			Kind: StepPut, Actor: 0, Peer: v,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufSrc, Off: OffDisp, V: v},
			Count: CountBlock, CV: v, SkipIfZero: true,
		})
	}
	r.Steps = append(r.Steps, barrierStep())
	p.Rounds = append(p.Rounds, r)
	return p
}

// linearGatherPlan: every PE stages its block, the root copies its own
// and gets each peer's from the (single-block) staging buffer.
func linearGatherPlan(n int) *Plan {
	p := &Plan{
		Collective: CollGather, Algorithm: AlgoLinear, Span: "gather_linear", NPEs: n,
		Stage: BufMaxBlock,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	r := Round{Name: "gather_linear.round", Idx: 0}
	r.Steps = append(r.Steps, Step{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
		Src:   Loc{Buf: BufStage},
		Count: CountBlock, CV: 0,
	})
	for v := 1; v < n; v++ {
		r.Steps = append(r.Steps, Step{
			Kind: StepGet, Actor: 0, Peer: v,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: v},
			Src:   Loc{Buf: BufStage},
			Count: CountBlock, CV: v, SkipIfZero: true,
		})
	}
	r.Steps = append(r.Steps, barrierStep())
	p.Rounds = append(p.Rounds, r)
	return p
}

// compileScatterAllgather builds the van de Geijn large-message
// broadcast as ONE plan: the payload is chunked equally in
// virtual-rank order (AdjChunks — no pe_msgs vectors needed), the
// chunks ride the binomial put tree exactly like Algorithm 3, each PE
// relocates its own chunk into dest, and a ring circulates the chunks
// until every PE holds the full payload. The wrapper guarantees
// nelems ≥ nPEs > 1 and stride 1.
func compileScatterAllgather(coll Collective, n int) *Plan {
	if coll != CollBroadcast {
		return nil
	}
	p := &Plan{
		Collective: CollBroadcast, Algorithm: AlgoScatterAllgather,
		Span: "broadcast_sag", NPEs: n,
		Stage: BufTotal, Adj: AdjChunks,
	}
	// Scatter phase: the root loads the staging buffer chunk by chunk
	// (the chunks are contiguous in both src and stage, so this is the
	// reorder prologue of Algorithm 3 in the identity layout).
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: 0, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	for _, edges := range putTreeEdges(n) {
		r := Round{Name: "broadcast_sag.round", Idx: idx}
		idx++
		for _, e := range edges {
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: e.from, Peer: e.to,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
				Count: CountSubtree, CV: e.to, CB: e.bit, SkipIfZero: true,
			})
		}
		r.Steps = append(r.Steps, barrierStep())
		p.Rounds = append(p.Rounds, r)
	}
	// Each PE relocates its own chunk into dest so the all-gather can
	// run in place; purely local, so no barrier is needed before the
	// first ring round (the writes land in disjoint chunk slots).
	mid := Round{Idx: -1}
	for v := 0; v < n; v++ {
		mid.Steps = append(mid.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, mid)
	// Ring all-gather: in round r every PE forwards the chunk it
	// received r rounds ago to its right neighbour; after N−1 rounds
	// everyone holds all chunks.
	for r := 0; r < n-1; r++ {
		rd := Round{Name: "broadcast_sag.round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			c := ((v-r)%n + n) % n
			rd.Steps = append(rd.Steps, Step{
				Kind: StepPut, Actor: v, Peer: (v + 1) % n,
				Dst:   Loc{Buf: BufDest, Off: OffAdj, V: c},
				Src:   Loc{Buf: BufDest, Off: OffAdj, V: c},
				Count: CountBlock, CV: c, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return p
}

// compileDirect builds the one-sided direct exchange natural to xBGAS:
// each PE copies its own block locally, then deposits every other
// block into the peers' dest buffers with non-blocking puts — rotated
// starts spread simultaneous senders across distinct receivers — and
// a barrier closes the exchange. The executor waits on every issued
// handle (and returns the pooled handle slice) on success and error
// paths alike.
func compileDirect(coll Collective, n int) *Plan {
	if coll != CollAlltoall {
		return nil
	}
	p := &Plan{Collective: CollAlltoall, Algorithm: AlgoDirect, Span: "alltoall", NPEs: n}
	r := Round{Name: "alltoall.round", Idx: 0, NB: true}
	for v := 0; v < n; v++ {
		r.Steps = append(r.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffBlock, V: v},
			Src:   Loc{Buf: BufSrc, Off: OffBlock, V: v},
			Count: CountAll,
		})
		for off := 1; off < n; off++ {
			peer := (v + off) % n
			r.Steps = append(r.Steps, Step{
				Kind: StepPut, Actor: v, Peer: peer,
				Dst:   Loc{Buf: BufDest, Off: OffBlock, V: v},
				Src:   Loc{Buf: BufSrc, Off: OffBlock, V: peer},
				Count: CountAll,
			})
		}
	}
	r.Steps = append(r.Steps, barrierStep())
	p.Rounds = append(p.Rounds, r)
	return p
}

// The segmented planners: the same binomial trees, but the payload is
// split into S near-equal segments that flow through the tree as a
// pipeline. Instead of closing every round with a world barrier, each
// hop is ordered by a point-to-point signal/wait pair on a flag word in
// the symmetric segment: a parent forwards segment k while segment k+1
// is still in flight to it, so the critical path shrinks from
// ⌈log₂ n⌉ whole-message rounds to ⌈log₂ n⌉+S−1 segment steps (Träff's
// doubly-pipelined schedules are the reference shape). One trailing
// barrier keeps the collective synchronising, which also guarantees
// every flag post is consumed before the plan's flag block is freed.

func compileBinomialSeg(coll Collective, n, segments int) *Plan {
	if n < 2 || segments < 2 {
		return nil // degenerate; the unsegmented plan is already optimal
	}
	switch coll {
	case CollBroadcast:
		return segmentedBroadcastPlan(n, segments)
	case CollReduce:
		return segmentedReducePlan(n, segments)
	case CollAllReduce:
		return segmentedAllReducePlan(n, segments)
	case CollScatter:
		// Scatter blocks are sized by runtime pe_msgs data, so they
		// cannot be sub-chunked at compile time; the segmented form is
		// the flag-pipelined tree at subtree-block granularity.
		return pipelinedScatterPlan(n)
	}
	return nil
}

// segmentedBroadcastPlan pipelines Algorithm 1: one non-blocking round
// per segment, each hop gated by the receiver's wait on the segment's
// flag and closed by the sender's signal (ordered after the put on the
// same channel). A PE's reception round precedes its sending rounds in
// the put tree, so emitting tree rounds in order keeps every actor's
// wait ahead of its forwards.
func segmentedBroadcastPlan(n, s int) *Plan {
	p := &Plan{
		Collective: CollBroadcast, Algorithm: AlgoBinomial, Span: "broadcast", NPEs: n,
		Segments: s, FlagWords: s, Depth: CeilLog2(n) + s - 1,
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	}}})
	edges := putTreeEdges(n)
	for seg := 0; seg < s; seg++ {
		r := Round{Name: "broadcast.round", Idx: seg, NB: true}
		for _, round := range edges {
			for _, e := range round {
				r.Steps = append(r.Steps,
					Step{Kind: StepWaitFlag, Actor: e.to, Peer: -1, Flag: seg},
					Step{
						Kind: StepPut, Actor: e.from, Peer: e.to,
						Dst:   Loc{Buf: BufDest, Off: OffSeg, V: seg},
						Src:   Loc{Buf: BufDest, Off: OffSeg, V: seg},
						Count: CountSeg, CV: seg, Strided: true, SkipIfZero: true,
					},
					Step{Kind: StepSignal, Actor: e.from, Peer: e.to, Flag: seg},
				)
			}
		}
		p.Rounds = append(p.Rounds, r)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{barrierStep()}})
	return p
}

// segmentedReducePlan pipelines Algorithm 2: per segment, every PE
// stages its contribution slice, then each get-tree hop runs as the
// owner signalling "my partial for this segment is folded" and the
// puller waiting, pulling, and combining. Flags are indexed per
// {tree round, segment} because a PE's partial becomes ready once per
// harvest round.
func segmentedReducePlan(n, s int) *Plan {
	rounds := getTreeEdges(n)
	t := len(rounds)
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoBinomial, Span: "reduce", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
		Segments: s, FlagWords: t * s, Depth: t + s - 1,
	}
	for seg := 0; seg < s; seg++ {
		r := Round{Name: "reduce.round", Idx: seg}
		for v := 0; v < n; v++ {
			r.Steps = append(r.Steps, Step{
				Kind: StepCopy, Actor: v, Peer: -1,
				Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
				Src:   Loc{Buf: BufSrc, Off: OffSeg, V: seg},
				Count: CountSeg, CV: seg, DstStrided: true, SrcStrided: true,
			})
		}
		appendSegReduceSteps(&r, rounds, s, seg, 0)
		p.Rounds = append(p.Rounds, r)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	}, barrierStep()}})
	return p
}

// appendSegReduceSteps emits one segment's get-tree fold into r: per
// edge the owner signals flag flagBase+t·s+seg, the puller waits,
// pulls the owner's staged segment into scratch, and combines it in.
// The owner's signal is emitted at its harvest round, after its own
// pull steps of earlier rounds, so actor order encodes the dependency.
func appendSegReduceSteps(r *Round, rounds [][]treeEdge, s, seg, flagBase int) {
	for t, edges := range rounds {
		for _, e := range edges {
			f := flagBase + t*s + seg
			r.Steps = append(r.Steps,
				Step{Kind: StepSignal, Actor: e.to, Peer: e.from, Flag: f},
				Step{Kind: StepWaitFlag, Actor: e.from, Peer: -1, Flag: f},
				Step{
					Kind: StepGet, Actor: e.from, Peer: e.to,
					Dst:   Loc{Buf: BufScratch, Off: OffSeg, V: seg},
					Src:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
					Count: CountSeg, CV: seg, Strided: true,
				},
				Step{
					Kind: StepCombine, Actor: e.from, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
					Src:   Loc{Buf: BufScratch, Off: OffSeg, V: seg},
					Count: CountSeg, CV: seg, DstStrided: true, SrcStrided: true,
				})
		}
	}
}

// segmentedAllReducePlan interleaves the two phases per segment: fold
// segment k to virtual rank 0, then pipe it straight back down the put
// tree while segment k+1 is still folding. Broadcast-phase puts into a
// PE's staged segment are safe because the only reduce-phase reader of
// that slice (its harvest partner) finished before the root could have
// completed the segment at all.
func segmentedAllReducePlan(n, s int) *Plan {
	up := getTreeEdges(n)
	down := putTreeEdges(n)
	t1 := len(up)
	p := &Plan{
		Collective: CollAllReduce, Algorithm: AlgoBinomial, Span: "allreduce", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
		Segments: s, FlagWords: (t1 + 1) * s, Depth: t1 + len(down) + 2*(s-1),
	}
	idx := 0
	for seg := 0; seg < s; seg++ {
		r := Round{Name: "allreduce.round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			r.Steps = append(r.Steps, Step{
				Kind: StepCopy, Actor: v, Peer: -1,
				Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
				Src:   Loc{Buf: BufSrc, Off: OffSeg, V: seg},
				Count: CountSeg, CV: seg, DstStrided: true, SrcStrided: true,
			})
		}
		appendSegReduceSteps(&r, up, s, seg, 0)
		p.Rounds = append(p.Rounds, r)

		rb := Round{Name: "allreduce.round", Idx: idx, NB: true}
		idx++
		f := t1*s + seg
		for _, round := range down {
			for _, e := range round {
				rb.Steps = append(rb.Steps,
					Step{Kind: StepWaitFlag, Actor: e.to, Peer: -1, Flag: f},
					Step{
						Kind: StepPut, Actor: e.from, Peer: e.to,
						Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
						Src:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
						Count: CountSeg, CV: seg, Strided: true, SkipIfZero: true,
					},
					Step{Kind: StepSignal, Actor: e.from, Peer: e.to, Flag: f},
				)
			}
		}
		p.Rounds = append(p.Rounds, rb)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true, SrcStrided: true,
		})
	}
	epi.Steps = append(epi.Steps, barrierStep())
	p.Rounds = append(p.Rounds, epi)
	return p
}

// pipelinedScatterPlan is Algorithm 3 with the per-round barriers
// replaced by the flag chain: each receiver waits for its subtree
// block, then its own forwards (emitted in later tree rounds) push the
// children's sub-blocks on. Blocks are sized by runtime pe_msgs data,
// so the granularity stays one subtree block per hop and a single flag
// word suffices — each PE receives exactly once. All puts ride one
// non-blocking round, so a sender's forwards to different children
// overlap like the direct alltoall exchange.
func pipelinedScatterPlan(n int) *Plan {
	p := &Plan{
		Collective: CollScatter, Algorithm: AlgoBinomial, Span: "scatter", NPEs: n,
		Stage: BufTotal, Adj: AdjVector,
		FlagWords: 1, Depth: CeilLog2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: 0, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc, Off: OffDisp, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, pro)
	r := Round{Name: "scatter.round", Idx: 0, NB: true}
	for _, round := range putTreeEdges(n) {
		for _, e := range round {
			r.Steps = append(r.Steps,
				Step{Kind: StepWaitFlag, Actor: e.to, Peer: -1, Flag: 0},
				Step{
					Kind: StepPut, Actor: e.from, Peer: e.to,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: e.to},
					Count: CountSubtree, CV: e.to, CB: e.bit, SkipIfZero: true,
				},
				Step{Kind: StepSignal, Actor: e.from, Peer: e.to, Flag: 0},
			)
		}
	}
	p.Rounds = append(p.Rounds, r)
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	epi.Steps = append(epi.Steps, barrierStep())
	p.Rounds = append(p.Rounds, epi)
	return p
}
