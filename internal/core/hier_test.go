package core

import (
	"fmt"
	"sync"
	"testing"

	"xbgas/internal/fabric"
	"xbgas/internal/xbrtime"
)

// Tests for the topology-aware planners (planners_hier.go,
// planners_pat.go): value conformance on grouped fabrics with even
// (rail-form) and uneven (leader-form) node populations, PAT value
// checks up to 256 PEs, the differential transfers-match-execution
// check, and the auto selection guard that grouped shapes never break
// flat decisions.

// runSPMDTopo is runSPMD on an explicit fabric topology.
func runSPMDTopo(t *testing.T, nPEs int, topo fabric.Topology, fn func(pe *xbrtime.PE) error) {
	t.Helper()
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs, Topology: topo})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(fn); err != nil {
		t.Fatal(err)
	}
}

// hierShapes pairs the tested PE counts with node widths: one even
// divisor (rail form) and one uneven width (leader form, partial last
// node) per count.
var hierShapes = []struct{ n, per int }{
	{12, 4},  // rail: 3 nodes × 4
	{12, 5},  // leader: nodes of 5, 5, 2
	{48, 8},  // rail: 6 nodes × 8
	{48, 7},  // leader: 7 nodes, last holds 6
	{96, 16}, // rail: 6 nodes × 16
	{96, 9},  // leader: 11 nodes, last holds 6
}

func TestHierarchicalAllReduceValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, sh := range hierShapes {
		for _, algo := range []Algorithm{AlgoHier, AlgoAuto} {
			for _, nelems := range []int{1, 37, 4096} {
				sh, algo, nelems := sh, algo, nelems
				t.Run(fmt.Sprintf("%s/n%d/per%d/e%d", algo, sh.n, sh.per, nelems), func(t *testing.T) {
					topo := fabric.Grouped{PerNode: sh.per, N: sh.n}
					runSPMDTopo(t, sh.n, topo, func(pe *xbrtime.PE) error {
						me, n := pe.MyPE(), sh.n
						dest, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						src, err := pe.Malloc(uint64(nelems) * 8)
						if err != nil {
							return err
						}
						for j := 0; j < nelems; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
						}
						if err := AllReduceWith(pe, algo, dt, OpSum, dest, src, nelems, 1); err != nil {
							return err
						}
						for j := 0; j < nelems; j++ {
							want := int64(n*(j+1) + n*(n-1)/2)
							if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
								t.Errorf("%s n=%d per=%d: PE %d elem %d = %d, want %d",
									algo, n, sh.per, me, j, got, want)
								return nil
							}
						}
						if err := pe.Free(dest); err != nil {
							return err
						}
						return pe.Free(src)
					})
				})
			}
		}
	}
}

func TestHierarchicalAllGatherValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, sh := range hierShapes {
		for _, per := range []int{1, 3, 64} {
			sh, per := sh, per
			t.Run(fmt.Sprintf("n%d/pn%d/per%d", sh.n, sh.per, per), func(t *testing.T) {
				n := sh.n
				// Uneven blocks: logical rank l contributes per+l%2 elements.
				msgs := make([]int, n)
				disp := make([]int, n)
				nelems := 0
				for l := 0; l < n; l++ {
					msgs[l] = per + l%2
					disp[l] = nelems
					nelems += msgs[l]
				}
				topo := fabric.Grouped{PerNode: sh.per, N: n}
				runSPMDTopo(t, n, topo, func(pe *xbrtime.PE) error {
					me := pe.MyPE()
					dest, err := pe.Malloc(uint64(nelems) * 8)
					if err != nil {
						return err
					}
					src, err := pe.Malloc(uint64(per+1) * 8)
					if err != nil {
						return err
					}
					for j := 0; j < msgs[me]; j++ {
						pe.Poke(dt, src+uint64(j)*8, uint64(1000*me+j+1))
					}
					if err := AllGatherWith(pe, AlgoHier, dt, dest, src, msgs, disp, nelems); err != nil {
						return err
					}
					for l := 0; l < n; l++ {
						for j := 0; j < msgs[l]; j++ {
							want := int64(1000*l + j + 1)
							at := dest + uint64(disp[l]+j)*8
							if got := int64(pe.Peek(dt, at)); got != want {
								t.Errorf("hier allgather n=%d pn=%d: PE %d block %d elem %d = %d, want %d",
									n, sh.per, me, l, j, got, want)
								return nil
							}
						}
					}
					if err := pe.Free(dest); err != nil {
						return err
					}
					return pe.Free(src)
				})
			})
		}
	}
}

// TestHierarchicalRootedCollectives drives the hierarchical broadcast
// and reduce at non-zero roots: the virtual-rank rotation must keep
// both value-correct even though node boundaries rotate with it.
func TestHierarchicalRootedCollectives(t *testing.T) {
	dt := xbrtime.TypeInt64
	for _, sh := range hierShapes[:4] {
		for _, root := range []int{0, 1, sh.n - 1} {
			sh, root := sh, root
			t.Run(fmt.Sprintf("n%d/pn%d/root%d", sh.n, sh.per, root), func(t *testing.T) {
				const nelems = 515
				topo := fabric.Grouped{PerNode: sh.per, N: sh.n}
				runSPMDTopo(t, sh.n, topo, func(pe *xbrtime.PE) error {
					me, n := pe.MyPE(), sh.n
					dest, err := pe.Malloc(nelems * 8)
					if err != nil {
						return err
					}
					src, err := pe.Malloc(nelems * 8)
					if err != nil {
						return err
					}
					if me == root {
						for j := 0; j < nelems; j++ {
							pe.Poke(dt, src+uint64(j)*8, uint64(j+5))
						}
					}
					if err := BroadcastWith(AlgoHier, pe, dt, dest, src, nelems, 1, root); err != nil {
						return err
					}
					for j := 0; j < nelems; j += 1 + nelems/17 {
						if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != int64(j+5) {
							t.Errorf("broadcast n=%d root=%d: PE %d elem %d = %d, want %d",
								n, root, me, j, got, j+5)
							return nil
						}
					}
					for j := 0; j < nelems; j++ {
						pe.Poke(dt, src+uint64(j)*8, uint64(me+j))
					}
					if err := ReduceWith(AlgoHier, pe, dt, OpSum, dest, src, nelems, 1, root); err != nil {
						return err
					}
					if me == root {
						for j := 0; j < nelems; j += 1 + nelems/17 {
							want := int64(n*j + n*(n-1)/2)
							if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
								t.Errorf("reduce n=%d root=%d: elem %d = %d, want %d",
									n, root, j, got, want)
								return nil
							}
						}
					}
					if err := pe.Free(dest); err != nil {
						return err
					}
					return pe.Free(src)
				})
			})
		}
	}
}

// TestPATValues verifies the PAT allgather and reduce-scatter at PE
// counts through 256, power-of-two and not.
func TestPATValues(t *testing.T) {
	dt := xbrtime.TypeInt64
	counts := []int{2, 3, 12, 48, 96, 256}
	for _, n := range counts {
		nelems := 2*n + 5
		if n >= 96 {
			nelems = n + 1 // keep the big counts quick; rem = 1 still uneven
		}
		n, nelems := n, nelems
		t.Run(fmt.Sprintf("n%d", n), func(t *testing.T) {
			msgs := make([]int, n)
			disp := make([]int, n)
			agTotal := 0
			for l := 0; l < n; l++ {
				msgs[l] = 1 + l%2
				disp[l] = agTotal
				agTotal += msgs[l]
			}
			runSPMD(t, n, func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				dest, err := pe.Malloc(uint64(agTotal) * 8)
				if err != nil {
					return err
				}
				src, err := pe.Malloc(uint64(nelems) * 8)
				if err != nil {
					return err
				}
				for j := 0; j < msgs[me]; j++ {
					pe.Poke(dt, src+uint64(j)*8, uint64(1000*me+j+1))
				}
				if err := AllGatherWith(pe, AlgoPAT, dt, dest, src, msgs, disp, agTotal); err != nil {
					return err
				}
				for l := 0; l < n; l++ {
					for j := 0; j < msgs[l]; j++ {
						want := int64(1000*l + j + 1)
						at := dest + uint64(disp[l]+j)*8
						if got := int64(pe.Peek(dt, at)); got != want {
							t.Errorf("pat allgather n=%d: PE %d block %d elem %d = %d, want %d",
								n, me, l, j, got, want)
							return nil
						}
					}
				}

				for j := 0; j < nelems; j++ {
					pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
				}
				rsDest, err := pe.Malloc(uint64(nelems) * 8)
				if err != nil {
					return err
				}
				if err := ReduceScatterWith(pe, AlgoPAT, dt, OpSum, rsDest, src, nelems); err != nil {
					return err
				}
				per, rem := nelems/n, nelems%n
				off := per*me + min(me, rem)
				cnt := per
				if me < rem {
					cnt++
				}
				for i := 0; i < cnt; i++ {
					j := off + i
					want := int64(n*(j+1) + n*(n-1)/2)
					if got := int64(pe.Peek(dt, rsDest+uint64(i)*8)); got != want {
						t.Errorf("pat reduce_scatter n=%d: PE %d elem %d (global %d) = %d, want %d",
							n, me, i, j, got, want)
						return nil
					}
				}
				for _, ad := range []uint64{rsDest, src, dest} {
					if err := pe.Free(ad); err != nil {
						return err
					}
				}
				return nil
			})
		})
	}
}

// TestHierPATTransfersMatchExecution is the differential check for the
// topology-aware planners: every executed remote move must match the
// plan's own Transfers projection, on both the rail and leader forms.
func TestHierPATTransfersMatchExecution(t *testing.T) {
	type tc struct {
		coll Collective
		algo Algorithm
		n    int
		per  int // 0 = flat compile
	}
	cases := []tc{
		{CollAllReduce, AlgoHier, 12, 4},
		{CollAllReduce, AlgoHier, 12, 5},
		{CollAllGather, AlgoHier, 12, 4},
		{CollAllGather, AlgoHier, 12, 5},
		{CollBroadcast, AlgoHier, 12, 5},
		{CollReduce, AlgoHier, 12, 5},
		{CollAllGather, AlgoPAT, 12, 0},
		{CollAllGather, AlgoPAT, 7, 0},
		{CollReduceScatter, AlgoPAT, 12, 0},
		{CollReduceScatter, AlgoPAT, 7, 0},
	}
	for _, c := range cases {
		c := c
		t.Run(fmt.Sprintf("%s/%s/n%d/pn%d", c.coll, c.algo, c.n, c.per), func(t *testing.T) {
			n := c.n
			p, err := CompilePlanFor(c.coll, c.algo, n, 1, Shape{PerNode: c.per})
			if err != nil {
				t.Fatal(err)
			}
			want := p.Transfers()
			sortTransfers(want)
			var mu sync.Mutex
			var got []Transfer
			runSPMD(t, n, func(pe *xbrtime.PE) error {
				nelems := 2*n + 3
				a := ExecArgs{
					DT: xbrtime.TypeInt64, Op: OpSum,
					Nelems: nelems, Stride: 1, Root: 0,
				}
				var err error
				var allocs []uint64
				alloc := func(bytes uint64) (uint64, error) {
					ad, err := pe.Malloc(bytes)
					if err != nil {
						return 0, err
					}
					allocs = append(allocs, ad)
					return ad, nil
				}
				if a.Dest, err = alloc(uint64(nelems) * 8); err != nil {
					return err
				}
				if a.Src, err = alloc(uint64(nelems) * 8); err != nil {
					return err
				}
				if c.coll == CollAllGather {
					a.PeMsgs = make([]int, n)
					a.PeDisp = make([]int, n)
					rest := nelems
					for l := 0; l < n; l++ {
						per := rest / (n - l)
						a.PeMsgs[l] = per
						a.PeDisp[l] = nelems - rest
						rest -= per
					}
				}
				a.OnTransfer = func(round int, s Step, _ int) {
					tr := Transfer{Round: round, Kind: s.Kind, From: s.Actor, To: s.Peer}
					if s.Kind == StepGet {
						tr.From, tr.To = s.Peer, s.Actor
					}
					mu.Lock()
					got = append(got, tr)
					mu.Unlock()
				}
				if err := Execute(pe, p, a); err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				for _, ad := range allocs {
					if err := pe.Free(ad); err != nil {
						return err
					}
				}
				return nil
			})
			sortTransfers(got)
			if len(got) != len(want) {
				t.Fatalf("executed %d transfers, plan schedules %d", len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("transfer %d: executed %+v, plan %+v", i, got[i], want[i])
				}
			}
		})
	}
}

// TestGroupedShapeKeepsFlatDecisions pins the auto-selection guard: a
// flat shape never selects the topology-scoped planners, and grouped
// and flat decisions are cached under different keys.
func TestGroupedShapeKeepsFlatDecisions(t *testing.T) {
	flat := Shape{}
	grouped := Shape{PerNode: 8}
	for _, coll := range []Collective{CollAllReduce, CollAllGather, CollBroadcast} {
		got := cheapestPlanner(coll, 64, 1<<17, 8, flat)
		if got == AlgoHier || got == AlgoPAT {
			t.Errorf("flat %s selected topology-scoped planner %s", coll, got)
		}
	}
	// On a strongly grouped fabric the hierarchical plan must at least
	// be a candidate — and for big allreduce payloads it should win.
	if got := cheapestPlanner(CollAllReduce, 64, 1<<17, 8, grouped); got != AlgoHier {
		t.Errorf("grouped 64-PE 1MiB allreduce selected %s, want %s", got, AlgoHier)
	}
}

// TestLockstep1024AllReduce is the scale gate: a 1024-PE hierarchical
// allreduce on a grouped fabric must complete under the deterministic
// lockstep scheduler in CI-feasible time.
func TestLockstep1024AllReduce(t *testing.T) {
	if testing.Short() {
		t.Skip("1024-PE lockstep run in -short mode")
	}
	const n, per, nelems = 1024, 32, 1024
	dt := xbrtime.TypeInt64
	rt, err := xbrtime.New(xbrtime.Config{
		NumPEs:        n,
		Topology:      fabric.Grouped{PerNode: per, N: n},
		Deterministic: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		dest, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		for j := 0; j < nelems; j++ {
			pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
		}
		if err := AllReduceWith(pe, AlgoHier, dt, OpSum, dest, src, nelems, 1); err != nil {
			return err
		}
		for j := 0; j < nelems; j += 97 {
			want := int64(n*(j+1) + n*(n-1)/2)
			if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
				t.Errorf("PE %d elem %d = %d, want %d", me, j, got, want)
				return nil
			}
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
}

// TestHierarchical256PE is the CI smoke job's value check: grouped
// 256-PE hierarchical allreduce and allgather (rail form, 16 nodes of
// 16) on a modest payload.
func TestHierarchical256PE(t *testing.T) {
	const n, per, nelems = 256, 16, 512
	dt := xbrtime.TypeInt64
	topo := fabric.Grouped{PerNode: per, N: n}
	msgs := make([]int, n)
	disp := make([]int, n)
	for l := 0; l < n; l++ {
		msgs[l] = 2
		disp[l] = 2 * l
	}
	runSPMDTopo(t, n, topo, func(pe *xbrtime.PE) error {
		me := pe.MyPE()
		dest, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(nelems * 8)
		if err != nil {
			return err
		}
		for j := 0; j < nelems; j++ {
			pe.Poke(dt, src+uint64(j)*8, uint64(me+j+1))
		}
		if err := AllReduceWith(pe, AlgoHier, dt, OpSum, dest, src, nelems, 1); err != nil {
			return err
		}
		for j := 0; j < nelems; j += 31 {
			want := int64(n*(j+1) + n*(n-1)/2)
			if got := int64(pe.Peek(dt, dest+uint64(j)*8)); got != want {
				t.Errorf("allreduce: PE %d elem %d = %d, want %d", me, j, got, want)
				return nil
			}
		}
		for j := 0; j < 2; j++ {
			pe.Poke(dt, src+uint64(j)*8, uint64(1000*me+j+1))
		}
		if err := AllGatherWith(pe, AlgoHier, dt, dest, src, msgs, disp, nelems); err != nil {
			return err
		}
		for l := 0; l < n; l += 17 {
			for j := 0; j < 2; j++ {
				want := int64(1000*l + j + 1)
				if got := int64(pe.Peek(dt, dest+uint64(2*l+j)*8)); got != want {
					t.Errorf("allgather: PE %d block %d elem %d = %d, want %d", me, l, j, got, want)
					return nil
				}
			}
		}
		if err := pe.Free(dest); err != nil {
			return err
		}
		return pe.Free(src)
	})
}
