package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// validate checks the argument contract shared by broadcast and
// reduction.
func validate(pe *xbrtime.PE, dt xbrtime.DType, nelems, stride, root int) error {
	if !dt.Valid() {
		return fmt.Errorf("core: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return fmt.Errorf("core: negative element count %d", nelems)
	}
	if stride < 1 {
		return fmt.Errorf("core: stride %d; must be >= 1", stride)
	}
	if root < 0 || root >= pe.NumPEs() {
		return fmt.Errorf("core: root %d outside 0..%d", root, pe.NumPEs()-1)
	}
	return nil
}

// spanBytes returns the byte footprint of nelems elements laid out with
// the given element stride: ((nelems-1)*stride + 1) * width.
func spanBytes(dt xbrtime.DType, nelems, stride int) uint64 {
	if nelems == 0 {
		return uint64(dt.Width)
	}
	return uint64(((nelems-1)*stride + 1) * dt.Width)
}

// timedCopy copies n elements with independent strides through the
// PE's timed local accessors.
func timedCopy(pe *xbrtime.PE, dt xbrtime.DType, dst, src uint64, n, dstStride, srcStride int) {
	w := uint64(dt.Width)
	for i := 0; i < n; i++ {
		v := pe.ReadElem(dt, src+uint64(i*srcStride)*w)
		pe.WriteElem(dt, dst+uint64(i*dstStride)*w, v)
	}
}

// adjustedDisplacements computes the adj_disp array of Algorithms 3 and
// 4: the element offset, in virtual-rank order, at which each virtual
// rank's block begins inside the reordered shared buffer. The returned
// slice has length nPEs+1, with adj[nPEs] equal to the total element
// count, so that the subtree block for virtual ranks [a, b) is
// adj[b]-adj[a] elements at element offset adj[a]. The slice comes
// from the PE's workspace pool; callers must ReturnInts it.
func adjustedDisplacements(pe *xbrtime.PE, peMsgs []int, root, nPEs int) []int {
	adj := pe.BorrowInts(nPEs + 1)
	for v := 0; v < nPEs; v++ {
		adj[v+1] = adj[v] + peMsgs[LogicalRank(v, root, nPEs)]
	}
	return adj
}

// validateVector checks the scatter/gather argument contract.
func validateVector(pe *xbrtime.PE, dt xbrtime.DType, peMsgs, peDisp []int, nelems, root int) error {
	n := pe.NumPEs()
	if !dt.Valid() {
		return fmt.Errorf("core: invalid data type %+v", dt)
	}
	if root < 0 || root >= n {
		return fmt.Errorf("core: root %d outside 0..%d", root, n-1)
	}
	if len(peMsgs) != n || len(peDisp) != n {
		return fmt.Errorf("core: pe_msgs/pe_disp length %d/%d; want %d entries (one per PE)",
			len(peMsgs), len(peDisp), n)
	}
	total := 0
	for i, m := range peMsgs {
		if m < 0 {
			return fmt.Errorf("core: pe_msgs[%d] = %d; counts must be non-negative", i, m)
		}
		if peDisp[i] < 0 {
			return fmt.Errorf("core: pe_disp[%d] = %d; displacements must be non-negative", i, peDisp[i])
		}
		total += m
	}
	if total != nelems {
		return fmt.Errorf("core: pe_msgs sums to %d, nelems is %d", total, nelems)
	}
	return nil
}

// subtreeCount returns the number of elements owned by the subtree of
// virtual ranks [vp, vp+2^i) clipped to nPEs, in terms of adj_disp.
func subtreeCount(adj []int, vp, i, nPEs int) int {
	end := vp + (1 << i)
	if end > nPEs {
		end = nPEs
	}
	return adj[end] - adj[vp]
}
