package core

// The hierarchical planner family: two-level schedules for grouped
// (nodes × PEs-per-node) fabrics, where intra-node links are cheap and
// the inter-node links behind the shared switch are not. Every schedule
// is built so the bulk of the payload moves intra-node and the
// inter-node phase carries only what must cross — the per-node-reduced
// partials, or one copy of each node's contribution.
//
// Two forms cover the PE layouts:
//
//   - rail form (n divisible by PerNode): member m of every node forms
//     "rail" m, an NCCL-multi-rail-style schedule — an intra-node ring
//     reduce-scatter splits the vector into per-member superchunks,
//     each rail runs the inter-node ring over its own superchunk with
//     all P rails in flight concurrently, and an intra-node allgather
//     reassembles. No PE is idle in any phase and the inter-node
//     traffic per PE drops by the node width.
//   - leader form (uneven groups, and the rooted collectives): binomial
//     trees inside each node elect virtual rank i·P as the node leader,
//     the leaders run the existing flat schedule (ring for the rootless
//     collectives, binomial trees for broadcast/reduce) among
//     themselves, and intra-node trees fan the result back out.
//
// Plans stay in virtual-rank space like every other planner: node
// boundaries are drawn on virtual ranks, which matches the physical
// grouping exactly for the canonical root 0 and is a rotation of it for
// other roots.

// hierGroups returns the group count for n PEs at P per node.
func hierGroups(n, P int) int { return (n + P - 1) / P }

// hierGroupSize returns the population of group i (the last group may
// be partial).
func hierGroupSize(n, P, i int) int {
	lo := i * P
	hi := lo + P
	if hi > n {
		hi = n
	}
	return hi - lo
}

func compileHier(coll Collective, n int, sh Shape) *Plan {
	P := sh.PerNode
	if P < 1 || P > n {
		P = n
	}
	switch coll {
	case CollAllReduce:
		if P > 1 && n%P == 0 && n/P > 1 {
			return hierRailAllReducePlan(n, P)
		}
		return hierLeaderAllReducePlan(n, P)
	case CollAllGather:
		if P > 1 && n%P == 0 && n/P > 1 {
			return hierRailAllGatherPlan(n, P)
		}
		return hierLeaderAllGatherPlan(n, P)
	case CollBroadcast:
		return hierBroadcastPlan(n, P)
	case CollReduce:
		return hierReducePlan(n, P)
	}
	return nil
}

// hierRailAllReducePlan: intra-node ring reduce-scatter over P
// superchunks of g blocks each, a per-rail inter-node ring
// reduce-scatter + allgather on each member's superchunk, and an
// intra-node allgather of the reduced superchunks. Inter-node volume
// per PE is 2·(g−1)/n of the payload — the flat ring's volume divided
// by the node width.
func hierRailAllReducePlan(n, P int) *Plan {
	g := n / P
	span := "allreduce_hier"
	p := &Plan{
		Collective: CollAllReduce, Algorithm: AlgoHier, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: 2*(P-1) + 2*(g-1),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll, SrcStrided: true,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	// Phase 1: intra-node ring reduce-scatter over superchunks. After
	// P−1 rounds member m holds superchunk m summed over its node.
	for r := 0; r < P-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := i*P + (m-1+P)%P
			s := ringChunk(m, r, P) * g
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: v, Peer: peer,
					Dst:   Loc{Buf: BufScratch, Off: OffAdj, V: s},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: s},
					Count: CountRun, CV: s, CB: g, SkipIfZero: true,
				},
				Step{
					Kind: StepCombine, Actor: v, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: s},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: s},
					Count: CountRun, CV: s, CB: g,
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 2a: per-rail inter-node ring reduce-scatter — rail m
	// distributes superchunk m's g blocks over the g nodes. After g−1
	// rounds member m of node i holds block m·g+i globally reduced.
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := ((i-1+g)%g)*P + m
			c := m*g + ringChunk(i, r, g)
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: v, Peer: peer,
					Dst:   Loc{Buf: BufScratch, Off: OffAdj, V: c},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: c},
					Count: CountBlock, CV: c, SkipIfZero: true,
				},
				Step{
					Kind: StepCombine, Actor: v, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: c},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: c},
					Count: CountBlock, CV: c,
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 2b: per-rail inter-node ring allgather of the reduced
	// blocks; every rail member ends with superchunk m complete.
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := ((i-1+g)%g)*P + m
			c := m*g + ((i-1-r)%g+g)%g
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: c},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: c},
				Count: CountBlock, CV: c, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 3: intra-node ring allgather of the superchunks.
	for r := 0; r < P-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := i*P + (m-1+P)%P
			s := ((m-1-r)%P + P) % P * g
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: s},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: s},
				Count: CountRun, CV: s, CB: g, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// hierLeaderAllReducePlan: binomial reduce of the full vector to each
// node leader, a ring reduce-scatter + allgather over the g leaders on
// near-equal block runs, and a binomial broadcast back inside each
// node. Handles uneven node populations (the last node may be partial).
func hierLeaderAllReducePlan(n, P int) *Plan {
	g := hierGroups(n, P)
	span := "allreduce_hier"
	p := &Plan{
		Collective: CollAllReduce, Algorithm: AlgoHier, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: 2*CeilLog2(P) + 2*(g-1),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll, SrcStrided: true,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	// Phase 1: intra-node binomial get-tree reduce of the full vector,
	// rounds aligned across groups so one barrier closes each level.
	edgesBy := make([][][]treeEdge, g)
	intraRounds := 0
	for i := 0; i < g; i++ {
		edgesBy[i] = getTreeEdges(hierGroupSize(n, P, i))
		if len(edgesBy[i]) > intraRounds {
			intraRounds = len(edgesBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(edgesBy[i]) {
				continue
			}
			base := i * P
			for _, e := range edgesBy[i][j] {
				rd.Steps = append(rd.Steps,
					Step{
						Kind: StepGet, Actor: base + e.from, Peer: base + e.to,
						Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
						Count: CountAll,
					},
					Step{
						Kind: StepCombine, Actor: base + e.from, Peer: -1,
						Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
						Count: CountAll,
					})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 2: ring reduce-scatter + allgather over the leaders on g
	// near-equal runs of chunk blocks (run s = blocks [s·n/g, (s+1)·n/g)).
	bounds := make([]int, g+1)
	for s := 0; s <= g; s++ {
		bounds[s] = s * n / g
	}
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			peer := ((i - 1 + g) % g) * P
			s := ringChunk(i, r, g)
			cv, cb := bounds[s], bounds[s+1]-bounds[s]
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: i * P, Peer: peer,
					Dst:   Loc{Buf: BufScratch, Off: OffAdj, V: cv},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: cv},
					Count: CountRun, CV: cv, CB: cb, SkipIfZero: true,
				},
				Step{
					Kind: StepCombine, Actor: i * P, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: cv},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: cv},
					Count: CountRun, CV: cv, CB: cb,
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			peer := ((i - 1 + g) % g) * P
			s := ((i-1-r)%g + g) % g
			cv, cb := bounds[s], bounds[s+1]-bounds[s]
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: i * P, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: cv},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: cv},
				Count: CountRun, CV: cv, CB: cb, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 3: intra-node binomial put-tree broadcast of the reduced
	// vector.
	putBy := make([][][]treeEdge, g)
	intraRounds = 0
	for i := 0; i < g; i++ {
		putBy[i] = putTreeEdges(hierGroupSize(n, P, i))
		if len(putBy[i]) > intraRounds {
			intraRounds = len(putBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(putBy[i]) {
				continue
			}
			base := i * P
			for _, e := range putBy[i][j] {
				rd.Steps = append(rd.Steps, Step{
					Kind: StepPut, Actor: base + e.from, Peer: base + e.to,
					Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufStage},
					Count: CountAll,
				})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// hierRailAllGatherPlan: a per-rail inter-node ring allgather collects
// each rail's column of blocks, then an intra-node ring allgather of
// whole columns (one multi-block step per hop) completes the vector.
// Each block crosses the inter-node links exactly g−1 times total
// across the node — 1/P of the flat ring's crossings.
func hierRailAllGatherPlan(n, P int) *Plan {
	g := n / P
	span := "allgather_hier"
	p := &Plan{
		Collective: CollAllGather, Algorithm: AlgoHier, Span: span, NPEs: n,
		Stage: BufTotal, Adj: AdjVector, Chunked: true,
		Depth: (g - 1) + (P - 1),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	// Phase A: rail ring allgather over the nodes — member m of node i
	// collects column m (blocks ≡ m mod P) from its rail.
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := ((i-1+g)%g)*P + m
			b := ((i-1-r)%g+g)%g*P + m
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: b},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: b},
				Count: CountBlock, CV: b, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase B: intra-node ring allgather of whole columns; one
	// multi-block get moves the g blocks of column m' per hop.
	for r := 0; r < P-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			i, m := v/P, v%P
			peer := i*P + (m-1+P)%P
			mp := ((m-1-r)%P + P) % P
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: mp},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: mp},
				Count: CountBlock, CV: mp, SkipIfZero: true,
				Blocks: g, BStride: P,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountBlock, CV: 0, Blocks: n, BStride: 1,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// hierLeaderAllGatherPlan: binomial gather of each node's blocks to its
// leader, a ring allgather of whole node runs over the leaders, and a
// binomial broadcast of the assembled vector back inside each node.
func hierLeaderAllGatherPlan(n, P int) *Plan {
	g := hierGroups(n, P)
	span := "allgather_hier"
	p := &Plan{
		Collective: CollAllGather, Algorithm: AlgoHier, Span: span, NPEs: n,
		Stage: BufTotal, Adj: AdjVector, Chunked: true,
		Depth: 2*CeilLog2(P) + (g - 1),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	// Phase 1: intra-node binomial gather, rounds aligned across groups.
	// Subtree runs are clipped to the group, so CountRun carries the
	// explicit block count instead of CountSubtree's global clip.
	edgesBy := make([][][]treeEdge, g)
	intraRounds := 0
	for i := 0; i < g; i++ {
		edgesBy[i] = getTreeEdges(hierGroupSize(n, P, i))
		if len(edgesBy[i]) > intraRounds {
			intraRounds = len(edgesBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(edgesBy[i]) {
				continue
			}
			base, size := i*P, hierGroupSize(n, P, i)
			for _, e := range edgesBy[i][j] {
				run := 1 << uint(e.bit)
				if size-e.to < run {
					run = size - e.to
				}
				rd.Steps = append(rd.Steps, Step{
					Kind: StepGet, Actor: base + e.from, Peer: base + e.to,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: base + e.to},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: base + e.to},
					Count: CountRun, CV: base + e.to, CB: run, SkipIfZero: true,
				})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 2: ring allgather of whole node runs over the leaders.
	for r := 0; r < g-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			peer := ((i - 1 + g) % g) * P
			s := ((i-1-r)%g + g) % g
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: i * P, Peer: peer,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: s * P},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: s * P},
				Count: CountRun, CV: s * P, CB: hierGroupSize(n, P, s),
				SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	// Phase 3: intra-node binomial broadcast of the assembled vector.
	putBy := make([][][]treeEdge, g)
	intraRounds = 0
	for i := 0; i < g; i++ {
		putBy[i] = putTreeEdges(hierGroupSize(n, P, i))
		if len(putBy[i]) > intraRounds {
			intraRounds = len(putBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(putBy[i]) {
				continue
			}
			base := i * P
			for _, e := range putBy[i][j] {
				rd.Steps = append(rd.Steps, Step{
					Kind: StepPut, Actor: base + e.from, Peer: base + e.to,
					Dst:   Loc{Buf: BufStage, Off: OffZero},
					Src:   Loc{Buf: BufStage, Off: OffZero},
					Count: CountRun, CV: 0, CB: n, SkipIfZero: true,
				})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountBlock, CV: 0, Blocks: n, BStride: 1,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// hierBroadcastPlan: a binomial put tree over the node leaders, then
// aligned binomial put trees inside every node — the whole payload
// crosses the inter-node links ⌈log₂ g⌉ times instead of the flat
// tree's ⌈log₂ n⌉.
func hierBroadcastPlan(n, P int) *Plan {
	g := hierGroups(n, P)
	p := &Plan{
		Collective: CollBroadcast, Algorithm: AlgoHier, Span: "broadcast_hier",
		NPEs: n, Chunked: true, Depth: CeilLog2(g) + CeilLog2(P),
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	}}})
	idx := 0
	for _, edges := range putTreeEdges(g) {
		rd := Round{Name: "broadcast_hier.round", Idx: idx}
		idx++
		for _, e := range edges {
			rd.Steps = append(rd.Steps, Step{
				Kind: StepPut, Actor: e.from * P, Peer: e.to * P,
				Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufDest},
				Count: CountAll, Strided: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	putBy := make([][][]treeEdge, g)
	intraRounds := 0
	for i := 0; i < g; i++ {
		putBy[i] = putTreeEdges(hierGroupSize(n, P, i))
		if len(putBy[i]) > intraRounds {
			intraRounds = len(putBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: "broadcast_hier.round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(putBy[i]) {
				continue
			}
			base := i * P
			for _, e := range putBy[i][j] {
				rd.Steps = append(rd.Steps, Step{
					Kind: StepPut, Actor: base + e.from, Peer: base + e.to,
					Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufDest},
					Count: CountAll, Strided: true,
				})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return p
}

// hierReducePlan: aligned binomial get trees inside every node reduce
// to the leaders, a binomial get tree over the leaders reduces to the
// root. The element path and buffer discipline mirror the paper's
// binomial reduce.
func hierReducePlan(n, P int) *Plan {
	g := hierGroups(n, P)
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoHier, Span: "reduce_hier", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
		Depth: CeilLog2(P) + CeilLog2(g),
	}
	pro := Round{Idx: -1, Steps: stageAll(n)}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := 0
	edgesBy := make([][][]treeEdge, g)
	intraRounds := 0
	for i := 0; i < g; i++ {
		edgesBy[i] = getTreeEdges(hierGroupSize(n, P, i))
		if len(edgesBy[i]) > intraRounds {
			intraRounds = len(edgesBy[i])
		}
	}
	for j := 0; j < intraRounds; j++ {
		rd := Round{Name: "reduce_hier.round", Idx: idx}
		idx++
		for i := 0; i < g; i++ {
			if j >= len(edgesBy[i]) {
				continue
			}
			base := i * P
			for _, e := range edgesBy[i][j] {
				rd.Steps = append(rd.Steps,
					Step{
						Kind: StepGet, Actor: base + e.from, Peer: base + e.to,
						Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
						Count: CountAll, Strided: true,
					},
					Step{
						Kind: StepCombine, Actor: base + e.from, Peer: -1,
						Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
						Count: CountAll, DstStrided: true, SrcStrided: true,
					})
			}
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	for _, edges := range getTreeEdges(g) {
		rd := Round{Name: "reduce_hier.round", Idx: idx}
		idx++
		for _, e := range edges {
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: e.from * P, Peer: e.to * P,
					Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
					Count: CountAll, Strided: true,
				},
				Step{
					Kind: StepCombine, Actor: e.from * P, Peer: -1,
					Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
					Count: CountAll, DstStrided: true, SrcStrided: true,
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	}}})
	return p
}

func init() {
	RegisterPlanner(&Planner{
		Name: AlgoHier,
		Collectives: []Collective{
			CollBroadcast, CollReduce, CollAllReduce, CollAllGather,
		},
		Compile: func(coll Collective, n int) *Plan {
			// Explicit flat selection: one node holding every PE — the
			// intra phases become the whole schedule.
			return compileHier(coll, n, Shape{PerNode: n})
		},
		CompileShaped: compileHier,
	})
}
