package core

import (
	"xbgas/internal/xbrtime"
)

// Broadcast distributes nelems elements of type dt from src on the root
// PE to dest on every PE (paper §4.3, Algorithm 1).
//
// dest must be a symmetric address valid on every PE; src needs to be
// valid only on the root and may be private (paper: "a pointer to the
// (not-necessarily shared) address for these values on the root pe").
// stride applies to consecutive elements at both src and dest. On
// return every PE, including the root, holds the values at dest.
//
// The communication pattern is the binomial tree with recursive
// halving: the loop index runs from ⌈log₂ n⌉−1 down to 0 so the mask
// isolates virtual-rank bits left to right, spreading the first hops
// across the widest distance. Intermediate PEs forward from dest, the
// address where the tree delivered their copy. A barrier closes every
// round.
func Broadcast(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	nPEs := pe.NumPEs()
	vRank := VirtualRank(pe.MyPE(), root, nPEs)
	rounds := CeilLog2(nPEs)
	cs := pe.StartCollective("broadcast", root, nelems)
	defer pe.FinishCollective(cs)

	// The root stages the values at its own dest so that (a) the
	// broadcast postcondition holds on the root too and (b) every
	// sender, root included, forwards from the same symmetric address.
	if vRank == 0 && dest != src {
		timedCopy(pe, dt, dest, src, nelems, stride, stride)
	}

	mask := (1 << rounds) - 1
	for i := rounds - 1; i >= 0; i-- {
		mask ^= 1 << i
		// Resolve this round's partner before opening the round span so
		// the span carries the peer and element count from the start.
		peer := -1
		if vRank&mask == 0 && vRank&(1<<i) == 0 {
			vPart := (vRank ^ (1 << i)) % nPEs
			if vRank < vPart {
				peer = LogicalRank(vPart, root, nPEs)
			}
		}
		moved := 0
		if peer >= 0 {
			moved = nelems
		}
		rs := pe.StartRound("broadcast.round", rounds-1-i, peer, moved)
		if peer >= 0 {
			if err := pe.Put(dt, dest, dest, nelems, stride, peer); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		pe.FinishRound(rs)
	}
	return nil
}
