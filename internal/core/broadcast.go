package core

import (
	"xbgas/internal/xbrtime"
)

// Broadcast distributes nelems elements of type dt from src on the root
// PE to dest on every PE (paper §4.3, Algorithm 1).
//
// dest must be a symmetric address valid on every PE; src needs to be
// valid only on the root and may be private (paper: "a pointer to the
// (not-necessarily shared) address for these values on the root pe").
// stride applies to consecutive elements at both src and dest. On
// return every PE, including the root, holds the values at dest.
//
// The communication pattern is the binomial tree with recursive
// halving (see binomialBroadcastPlan); the call executes the cached
// plan for the current PE count.
//
//xbgas:typed rooted
func Broadcast(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, stride, root int) error {
	if err := validate(pe, dt, nelems, stride, root); err != nil {
		return err
	}
	return runPlan(pe, CollBroadcast, AlgoBinomial, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: stride, Root: root,
	})
}
