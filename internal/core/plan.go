package core

import (
	"fmt"
	"sort"
	"sync"
)

// This file defines the communication-plan IR. A Plan describes one
// collective algorithm for a fixed PE count as data: a sequence of
// rounds, each a list of typed steps in *virtual-rank* space (the root
// is always virtual rank 0, Table 2's remapping). Because every
// root-dependent quantity — logical ranks, buffer addresses, element
// counts, strides — is expressed symbolically and resolved by the
// executor at call time, one cached plan serves every root, element
// count, stride, and team of the same PE count. Planners (planners.go)
// compile plans; the executor (exec.go) runs them; schedule.go's
// analytic schedules are projections of the same plans, so the
// executed pattern and the documented pattern cannot drift.

// Collective identifies the operation a plan implements.
type Collective uint8

// Collectives.
const (
	CollBroadcast Collective = iota
	CollReduce
	CollScatter
	CollGather
	CollAllReduce
	CollAllGather
	CollAlltoall
	CollReduceScatter
)

// String names the collective.
func (c Collective) String() string {
	switch c {
	case CollBroadcast:
		return "broadcast"
	case CollReduce:
		return "reduce"
	case CollScatter:
		return "scatter"
	case CollGather:
		return "gather"
	case CollAllReduce:
		return "allreduce"
	case CollAllGather:
		return "allgather"
	case CollAlltoall:
		return "alltoall"
	case CollReduceScatter:
		return "reduce_scatter"
	}
	return "unknown"
}

// Collectives lists every collective, for registry and availability
// listings (-algo list).
func Collectives() []Collective {
	return []Collective{
		CollBroadcast, CollReduce, CollScatter, CollGather,
		CollAllReduce, CollAllGather, CollAlltoall, CollReduceScatter,
	}
}

// StepKind is the operation a step performs.
type StepKind uint8

// Step kinds.
const (
	// StepPut moves Count elements from the actor's Src to Dst on Peer.
	StepPut StepKind = iota
	// StepGet pulls Count elements from Src on Peer into the actor's Dst.
	StepGet
	// StepCombine folds Src into Dst element-wise with the call's
	// reduction operator, charging the per-element combine cost.
	StepCombine
	// StepCopy moves Count elements locally through the timed
	// memory hierarchy.
	StepCopy
	// StepBarrier synchronises; with Actor == ActorAll it closes a
	// round for every PE.
	StepBarrier
	// StepSignal stores a completion flag (word Flag of the plan's flag
	// block) on Peer, ordered after the actor's latest non-blocking
	// transfer of the round. Segmented plans use signal/wait pairs as
	// point-to-point dependencies instead of per-round world barriers.
	StepSignal
	// StepWaitFlag blocks the actor until its own flag word Flag has
	// been signalled, consuming the post.
	StepWaitFlag
)

// String names the step kind.
func (k StepKind) String() string {
	switch k {
	case StepPut:
		return "put"
	case StepGet:
		return "get"
	case StepCombine:
		return "combine"
	case StepCopy:
		return "copy"
	case StepBarrier:
		return "barrier"
	case StepSignal:
		return "signal"
	case StepWaitFlag:
		return "waitflag"
	}
	return "unknown"
}

// ActorAll marks a step executed by every virtual rank (barriers).
const ActorAll = -1

// BufRef names one of the executor's four address spaces.
type BufRef uint8

// Buffer references.
const (
	// BufDest is the call's dest argument.
	BufDest BufRef = iota
	// BufSrc is the call's src argument.
	BufSrc
	// BufStage is the symmetric staging buffer the executor allocates
	// (or the caller-provided workspace, for team reductions).
	BufStage
	// BufScratch is the PE-private scratch landing buffer.
	BufScratch
)

// OffRef is a symbolic element offset into a buffer, resolved at
// execution time from the call's arguments.
type OffRef uint8

// Offset references.
const (
	// OffZero is the buffer base.
	OffZero OffRef = iota
	// OffAdj is the adjusted displacement of virtual rank V: the
	// element offset of V's block in a virtual-rank-ordered buffer
	// (Algorithms 3/4's adj_disp, or the closed-form chunk offset in
	// AdjChunks mode).
	OffAdj
	// OffDisp is the caller displacement pe_disp[LogicalRank(V)].
	OffDisp
	// OffBlock is V×nelems: fixed-size block V of an alltoall buffer.
	OffBlock
	// OffSeg is the element offset of segment V under the plan's
	// segmentation of nelems (segment k starts at k·⌊nelems/S⌋ +
	// min(k, nelems mod S)); scaled by the call's stride on strided
	// sides.
	OffSeg
)

// CountRef is a symbolic element count resolved at execution time.
type CountRef uint8

// Count references.
const (
	// CountAll is the call's nelems.
	CountAll CountRef = iota
	// CountBlock is virtual rank CV's own block: pe_msgs[LogicalRank(CV)],
	// or the chunk size in AdjChunks mode.
	CountBlock
	// CountSubtree is the aggregate block of the subtree rooted at
	// virtual rank CV with height CB: virtual ranks [CV, CV+2^CB)
	// clipped to the PE count.
	CountSubtree
	// CountSeg is the length of segment CV under the plan's
	// segmentation of nelems: ⌊nelems/S⌋ plus one for the first
	// nelems mod S segments.
	CountSeg
	// CountRun is the aggregate of the CB consecutive blocks starting
	// at virtual rank CV, clipped to the PE count: adj(min(CV+CB, n)) −
	// adj(CV). The hierarchical and PAT planners move runs of blocks in
	// one transfer; pair it with an OffAdj offset at the same CV.
	CountRun
)

// Loc is a symbolic address: a buffer plus an offset reference. V is
// the virtual-rank operand of OffAdj/OffDisp/OffBlock.
type Loc struct {
	Buf BufRef
	Off OffRef
	V   int
}

// Step is one operation of a round, bound to the virtual rank that
// executes it.
type Step struct {
	Kind StepKind
	// Actor is the virtual rank executing the step; ActorAll for
	// round-closing barriers.
	Actor int
	// Peer is the transfer partner in virtual ranks: the put target or
	// the get's passive data owner. -1 for local steps.
	Peer int

	Dst, Src Loc

	Count  CountRef
	CV, CB int // operands of CountBlock/CountSubtree/CountSeg

	// Flag is the flag-word index of a StepSignal/StepWaitFlag within
	// the plan's flag block (see Plan.FlagWords).
	Flag int

	// Strided applies the call's element stride to a put/get (both
	// sides); DstStrided/SrcStrided apply it per side of a copy or
	// combine. Unset sides are contiguous.
	Strided                bool
	DstStrided, SrcStrided bool

	// SkipIfZero drops the step when its count resolves to 0
	// (Algorithms 3/4 skip empty subtree blocks).
	SkipIfZero bool
	// SkipIfAlias drops a copy whose source and destination resolve to
	// the same address (the broadcast root staging copy when
	// dest == src).
	SkipIfAlias bool

	// Blocks > 1 repeats the step for the block ids CV, CV+BStride, …,
	// CV+(Blocks−1)·BStride: each repetition advances the block-indexed
	// operands (OffAdj/OffDisp/OffBlock V, CountBlock/CountRun CV) by
	// BStride. One symbolic step thus expresses an n-block
	// redistribution — the allgather epilogues and the hierarchical
	// rail exchanges — without O(n) step records per actor.
	Blocks, BStride int
}

// Round is one synchronisation epoch of a plan. Steps are sorted by
// actor (finalize enforces this) so the executor slices its own steps
// in O(1); round-closing ActorAll barriers trail the list.
type Round struct {
	// Name is the obs round-span name ("broadcast.round", ...); ""
	// emits no span (staging prologues and epilogues).
	Name string
	// Idx is the algorithm's round index, carried in the span and in
	// Transfers; -1 for unnamed rounds.
	Idx int
	// NB issues the round's transfers non-blocking; the executor waits
	// on every issued handle before the round's barrier.
	NB bool

	Steps []Step

	actorStart []int // per-virtual-rank bounds into Steps; len NPEs+1
	tail       int   // index where the trailing ActorAll steps begin
}

// BufSpec sizes a plan-managed buffer from the call's arguments.
type BufSpec uint8

// Buffer specs.
const (
	// BufNone: the plan does not use this buffer.
	BufNone BufSpec = iota
	// BufSpan: the strided span of nelems elements.
	BufSpan
	// BufTotal: nelems contiguous elements (at least one).
	BufTotal
	// BufMaxBlock: the largest pe_msgs block (at least one element).
	BufMaxBlock
)

// AdjMode selects how OffAdj/CountBlock/CountSubtree resolve.
type AdjMode uint8

// Adjustment modes.
const (
	// AdjNone: the plan uses no adjusted displacements.
	AdjNone AdjMode = iota
	// AdjVector: adj_disp computed from the call's pe_msgs (Algorithms
	// 3/4).
	AdjVector
	// AdjChunks: closed-form equal chunking of nelems over the PEs
	// (the scatter+ring-allgather broadcast); no pe_msgs needed.
	AdjChunks
)

// Plan is one compiled collective algorithm for a fixed PE count.
type Plan struct {
	Collective Collective
	Algorithm  Algorithm
	// Span is the obs collective-span name runPlan opens ("broadcast",
	// "broadcast_linear", ...).
	Span string
	NPEs int

	Rounds []Round

	// Stage and Scratch size the executor-managed buffers; Adj selects
	// the displacement model.
	Stage, Scratch BufSpec
	Adj            AdjMode
	// UsesOp marks plans with combine steps so the executor
	// precomputes the operator cost.
	UsesOp bool

	// Segments is the message-segmentation factor: nelems is split into
	// this many near-equal chunks that flow through the tree pipelined
	// (0 or 1 = unsegmented). FlagWords is the size, in 8-byte words, of
	// the symmetric flag block the executor allocates for the plan's
	// signal/wait dependencies (0 = none). Depth is the compile-time
	// critical-path length in communication steps — ⌈log₂ n⌉+S−1 for a
	// pipelined binomial tree versus ⌈log₂ n⌉ whole-message rounds
	// unsegmented (0 = unset; see PipelineDepth).
	Segments  int
	FlagWords int
	Depth     int

	// Chunked opts the plan's stride-1 data movement into the bulk
	// paths: line-granular chunk transfers (see xbrtime/chunk.go) for
	// blocking puts/gets, and bulk timed copies/combines instead of the
	// element-at-a-time accessors. The bandwidth-optimal planners set
	// it — their whole point is moving large contiguous chunks — while
	// the paper's element-at-a-time plans keep the historical model.
	Chunked bool

	label string // Collective/Algorithm, reported through NotePlanner
}

// Label returns the plan's identity string —
// "collective/algorithm[seg=N]" — the key NotePlanner tallies under
// and the "plan" arg trace analyzers map spans back to plans with.
func (p *Plan) Label() string { return p.label }

// PipelineDepth is the plan's critical-path length in communication
// steps: the planner-recorded Depth when set, otherwise the number of
// named (tree) rounds.
func (p *Plan) PipelineDepth() int {
	if p.Depth > 0 {
		return p.Depth
	}
	d := 0
	for ri := range p.Rounds {
		if p.Rounds[ri].Name != "" {
			d++
		}
	}
	return d
}

// finalize sorts each round's steps into executor order (actor
// ascending, ActorAll barriers last) and builds the per-actor index.
// Planners already emit actor-sorted steps; the stable sort makes the
// invariant structural rather than conventional.
func (p *Plan) finalize() {
	for ri := range p.Rounds {
		r := &p.Rounds[ri]
		sort.SliceStable(r.Steps, func(i, j int) bool {
			ai, aj := r.Steps[i].Actor, r.Steps[j].Actor
			if ai == ActorAll {
				ai = int(^uint(0) >> 1)
			}
			if aj == ActorAll {
				aj = int(^uint(0) >> 1)
			}
			return ai < aj
		})
		r.tail = len(r.Steps)
		for r.tail > 0 && r.Steps[r.tail-1].Actor == ActorAll {
			r.tail--
		}
		r.actorStart = make([]int, p.NPEs+1)
		s := 0
		for v := 0; v <= p.NPEs; v++ {
			for s < r.tail && r.Steps[s].Actor < v {
				s++
			}
			r.actorStart[v] = s
		}
	}
}

// Transfers projects the plan's remote moves in virtual-rank space:
// for a put the actor is the mover (From), for a get the actor pulls
// from its peer. This is the single source of truth behind
// BroadcastSchedule/ReduceSchedule and the differential
// schedule-vs-execution test.
func (p *Plan) Transfers() []Transfer {
	var out []Transfer
	for ri := range p.Rounds {
		r := &p.Rounds[ri]
		for si := range r.Steps {
			s := &r.Steps[si]
			reps := 1
			if s.Blocks > 1 {
				reps = s.Blocks
			}
			for k := 0; k < reps; k++ {
				switch s.Kind {
				case StepPut:
					out = append(out, Transfer{Round: r.Idx, Kind: StepPut, From: s.Actor, To: s.Peer})
				case StepGet:
					out = append(out, Transfer{Round: r.Idx, Kind: StepGet, From: s.Peer, To: s.Actor})
				}
			}
		}
	}
	return out
}

// planKey is the cache shape: everything else (root, nelems, stride,
// counts, team) is resolved at execution time. per is the topology
// shape's PEs-per-node for shape-aware planners, 0 for every other
// plan.
type planKey struct {
	coll Collective
	algo Algorithm
	n    int
	seg  int
	per  int
}

var (
	planMu    sync.RWMutex
	planCache = map[planKey]*Plan{}
)

// CompilePlan returns the unsegmented plan for (collective, algorithm,
// nPEs), compiling and caching it on first use. Repeated calls with
// the same shape return the same *Plan; the cache uses a plain
// mutex-guarded map so hits stay allocation-free. algo must name a
// registered planner (AlgoAuto is resolved by the dispatchers, not
// here).
func CompilePlan(coll Collective, algo Algorithm, nPEs int) (*Plan, error) {
	return CompilePlanSeg(coll, algo, nPEs, 1)
}

// CompilePlanSeg is CompilePlan with a message-segmentation factor:
// segments > 1 asks the planner for a pipelined per-segment plan
// (falling back to the unsegmented plan when the planner has no
// segmented form for the collective). The fallback is cached under the
// requested key too, so repeated misses stay cheap and
// pointer-stable.
func CompilePlanSeg(coll Collective, algo Algorithm, nPEs, segments int) (*Plan, error) {
	if nPEs < 1 {
		return nil, fmt.Errorf("core: plan for %d PEs; need at least 1", nPEs)
	}
	if segments < 1 {
		segments = 1
	}
	key := planKey{coll, algo, nPEs, segments, 0}
	planMu.RLock()
	p := planCache[key]
	planMu.RUnlock()
	if p != nil {
		return p, nil
	}
	pl, ok := LookupPlanner(algo)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (registered: %v)", algo, PlannerNames())
	}
	if segments > 1 && pl.CompileSeg != nil {
		p = pl.CompileSeg(coll, nPEs, segments)
	}
	if segments > 1 && p == nil {
		// No segmented form: alias the unsegmented plan under this key.
		base, err := CompilePlanSeg(coll, algo, nPEs, 1)
		if err != nil {
			return nil, err
		}
		planMu.Lock()
		if prev := planCache[key]; prev != nil {
			base = prev
		} else {
			planCache[key] = base
		}
		planMu.Unlock()
		return base, nil
	}
	if p == nil {
		p = pl.Compile(coll, nPEs)
	}
	if p == nil {
		return nil, fmt.Errorf("core: algorithm %q does not implement %s", algo, coll)
	}
	p.label = coll.String() + "/" + string(algo)
	if p.Segments > 1 {
		p.label += fmt.Sprintf("[seg=%d]", p.Segments)
	} else if p.FlagWords > 0 {
		p.label += "[pipelined]"
	}
	p.finalize()
	planMu.Lock()
	if prev := planCache[key]; prev != nil {
		p = prev // lost a compile race; keep the first plan canonical
	} else {
		planCache[key] = p
	}
	planMu.Unlock()
	return p, nil
}

// Shape carries the fabric grouping a shape-aware planner compiles
// against: PerNode is the nominal PEs per physical node of the
// topology (fabric.NodeGrouper), with the last node possibly partial.
// The zero Shape — and PerNode 1, and a single node holding every PE —
// mean flat.
type Shape struct {
	PerNode int
}

// flat reports whether the shape carries no usable grouping for an
// n-PE plan.
func (sh Shape) flat(n int) bool {
	return sh.PerNode <= 1 || sh.PerNode >= n
}

// CompilePlanFor is CompilePlanSeg for a fabric shape: a planner that
// registers a CompileShaped hook receives the grouping and its plans
// are cached per (collective, algorithm, nPEs, PerNode). Every other
// planner — and every flat shape — shares the unshaped cache entries.
// Shaped plans have no segmented forms (the two-level schedules chunk
// internally), so the segment factor is dropped on the shaped path.
func CompilePlanFor(coll Collective, algo Algorithm, nPEs, segments int, sh Shape) (*Plan, error) {
	pl, ok := LookupPlanner(algo)
	if !ok {
		return nil, fmt.Errorf("core: unknown algorithm %q (registered: %v)", algo, PlannerNames())
	}
	if pl.CompileShaped == nil || sh.flat(nPEs) {
		return CompilePlanSeg(coll, algo, nPEs, segments)
	}
	key := planKey{coll, algo, nPEs, 1, sh.PerNode}
	planMu.RLock()
	p := planCache[key]
	planMu.RUnlock()
	if p != nil {
		return p, nil
	}
	p = pl.CompileShaped(coll, nPEs, sh)
	if p == nil {
		return nil, fmt.Errorf("core: algorithm %q does not implement %s", algo, coll)
	}
	p.label = coll.String() + "/" + string(algo)
	p.finalize()
	planMu.Lock()
	if prev := planCache[key]; prev != nil {
		p = prev // lost a compile race; keep the first plan canonical
	} else {
		planCache[key] = p
	}
	planMu.Unlock()
	return p, nil
}
