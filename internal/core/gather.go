package core

import (
	"xbgas/internal/xbrtime"
)

// Gather collects a distinct block of src from each PE into dest on the
// root PE (paper §4.6, Algorithm 4). It is symmetric to Scatter in the
// same way Reduce is to Broadcast.
//
// peMsgs[l] is the number of elements contributed by logical rank l and
// peDisp[l] the element offset at which that block lands inside dest on
// the root; nelems is the total element count. Each PE contributes
// peMsgs[MyPE()] contiguous elements starting at src. src stages
// through a symmetric buffer, so any shared or private source address
// works; dest is significant only on the root.
//
// Data moves leaves→root with recursive doubling and get, aggregating
// each child subtree's contiguous block at every round; the root
// finally reorders the virtual-rank-ordered staging buffer into dest by
// logical rank.
func Gather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	nPEs := pe.NumPEs()
	me := pe.MyPE()
	vRank := VirtualRank(me, root, nPEs)
	rounds := CeilLog2(nPEs)
	w := uint64(dt.Width)
	cs := pe.StartCollective("gather", root, nelems)
	defer pe.FinishCollective(cs)

	adj := adjustedDisplacements(pe, peMsgs, root, nPEs)
	defer pe.ReturnInts(adj)

	bufBytes := uint64(nelems) * w
	if nelems == 0 {
		bufBytes = w
	}
	sBuf, err := pe.Malloc(bufBytes)
	if err != nil {
		return err
	}

	// Load the staging buffer with this PE's candidate gather data at
	// its adjusted offset.
	timedCopy(pe, dt, sBuf+uint64(adj[vRank])*w, src, peMsgs[me], 1, 1)
	if err := pe.Barrier(); err != nil {
		pe.Free(sBuf) //nolint:errcheck
		return err
	}

	mask := (1 << rounds) - 1
	for i := 0; i < rounds; i++ {
		mask ^= 1 << i
		// Partner and block size resolved before the round span opens.
		peer, msgSize, vPart := -1, 0, 0
		if vRank|mask == mask && vRank&(1<<i) == 0 {
			if p := (vRank ^ (1 << i)) % nPEs; vRank < p {
				// The partner has aggregated its subtree's block by now;
				// pull it in one contiguous get.
				peer = LogicalRank(p, root, nPEs)
				vPart = p
				msgSize = subtreeCount(adj, p, i, nPEs)
			}
		}
		rs := pe.StartRound("gather.round", i, peer, msgSize)
		if peer >= 0 && msgSize > 0 {
			off := sBuf + uint64(adj[vPart])*w
			if err := pe.Get(dt, off, off, msgSize, 1, peer); err != nil {
				pe.Free(sBuf) //nolint:errcheck
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			pe.Free(sBuf) //nolint:errcheck
			return err
		}
		pe.FinishRound(rs)
	}

	// Root reorders the staging buffer (virtual order) into dest
	// (logical order at the caller's displacements).
	if vRank == 0 {
		for l := 0; l < nPEs; l++ {
			v := VirtualRank(l, root, nPEs)
			timedCopy(pe, dt,
				dest+uint64(peDisp[l])*w,
				sBuf+uint64(adj[v])*w,
				peMsgs[l], 1, 1)
		}
	}
	return pe.Free(sBuf)
}
