package core

import (
	"xbgas/internal/xbrtime"
)

// Gather collects a distinct block of src from each PE into dest on the
// root PE (paper §4.6, Algorithm 4). It is symmetric to Scatter in the
// same way Reduce is to Broadcast.
//
// peMsgs[l] is the number of elements contributed by logical rank l and
// peDisp[l] the element offset at which that block lands inside dest on
// the root; nelems is the total element count. Each PE contributes
// peMsgs[MyPE()] contiguous elements starting at src. src stages
// through a symmetric buffer, so any shared or private source address
// works; dest is significant only on the root.
//
// Data moves leaves→root with recursive doubling, aggregating each
// child subtree's contiguous block at every round; the root finally
// reorders the virtual-rank-ordered staging buffer into dest (see
// binomialGatherPlan).
//
//xbgas:typed vector
func Gather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, peMsgs, peDisp []int, nelems, root int) error {
	if err := validateVector(pe, dt, peMsgs, peDisp, nelems, root); err != nil {
		return err
	}
	return runPlan(pe, CollGather, AlgoBinomial, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
		PeMsgs: peMsgs, PeDisp: peDisp,
	})
}
