package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// ReduceOp names one of the supported reduction operators. The paper's
// implementation "supports sum, product, min, and max operations for
// all types listed in Table 1" and "bitwise AND, bitwise OR, and
// bitwise XOR ... for non-floating point types" (§4.4).
type ReduceOp uint8

// Reduction operators. This const block is one of the three scanned
// sources of truth behind the generated typed surface (tools/gen): the
// iota order pairs each constant with its reduceOpNames entry, and the
// //xbgas:intonly markers gate the operator out of the floating-point
// rows of the dtype × op matrix.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
	OpBand //xbgas:intonly
	OpBor  //xbgas:intonly
	OpBxor //xbgas:intonly
)

var reduceOpNames = [...]string{"sum", "prod", "min", "max", "and", "or", "xor"}

// intOnlyOps mirrors the //xbgas:intonly markers above for run-time
// validity checks; the generated-surface property tests pin the two in
// lockstep.
var intOnlyOps = [...]bool{OpBand: true, OpBor: true, OpBxor: true}

// String returns the operator's short name as used in the C function
// names (xbrtime_TYPENAME_reduce_OP).
func (op ReduceOp) String() string {
	if int(op) < len(reduceOpNames) {
		return reduceOpNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// AllReduceOps lists every operator.
func AllReduceOps() []ReduceOp {
	return []ReduceOp{OpSum, OpProd, OpMin, OpMax, OpBand, OpBor, OpBxor}
}

// ValidFor reports whether the operator applies to dt: bitwise
// operators are defined only for non-floating-point types.
func (op ReduceOp) ValidFor(dt xbrtime.DType) bool {
	if int(op) >= len(reduceOpNames) {
		return false
	}
	return !(intOnlyOps[op] && dt.Kind == xbrtime.KindFloat)
}

// combineCost is the ALU cycle charge per element combine.
func combineCost(dt xbrtime.DType, op ReduceOp) uint64 {
	if dt.Kind == xbrtime.KindFloat {
		return 4 // FP add/mul/compare latency
	}
	if op == OpProd {
		return 3 // integer multiply
	}
	return 1
}

// scalar is the arithmetic domain of one reduction kind: every Table 1
// type combines as a sign-extended int64, a zero-extended uint64, or an
// IEEE float64.
type scalar interface {
	~int64 | ~uint64 | ~float64
}

// arith is the single generic arithmetic kernel behind Combine: one
// body, instantiated once per domain, replaces the three hand-written
// per-kind switch blocks the string-template era forced into
// triplicate.
func arith[T scalar](op ReduceOp, x, y T) T {
	switch op {
	case OpSum:
		return x + y
	case OpProd:
		return x * y
	case OpMin:
		if y < x {
			return y
		}
	case OpMax:
		if y > x {
			return y
		}
	}
	return x
}

// bitwise extends arith with the integer-only operators (ValidFor
// rejects them for floats before dispatch reaches a kernel).
func bitwise[T ~int64 | ~uint64](op ReduceOp, x, y T) T {
	switch op {
	case OpBand:
		return x & y
	case OpBor:
		return x | y
	case OpBxor:
		return x ^ y
	}
	return arith(op, x, y)
}

// Combine applies op to two canonical values of type dt and returns the
// canonical result. Canonical means: sign-extended for signed integers,
// zero-extended for unsigned, raw IEEE bits for floats (see
// xbrtime.DType.Canon). The kind switch only picks the decode/encode
// pair; the arithmetic itself lives in the shared generic kernels.
func Combine(dt xbrtime.DType, op ReduceOp, a, b uint64) (uint64, error) {
	if !op.ValidFor(dt) {
		return 0, fmt.Errorf("core: operator %s undefined for type %s", op, dt)
	}
	switch dt.Kind {
	case xbrtime.KindFloat:
		return dt.FromFloat(arith(op, dt.Float(a), dt.Float(b))), nil
	case xbrtime.KindInt:
		return dt.Canon(uint64(bitwise(op, int64(a), int64(b)))), nil
	default: // KindUint
		return dt.Canon(bitwise(op, a, b)), nil
	}
}

// identityClass says how an operator's identity element is built from
// the type's bounds — one table replaces the per-op × per-kind value
// matrix.
type identityClass uint8

const (
	identZero    identityClass = iota // x ⊕ 0 = x (sum, or, xor)
	identOne                          // x ⊗ 1 = x (prod)
	identAllOnes                      // x ∧ ~0 = x (and)
	identMaxVal                       // min(x, max) = x
	identMinVal                       // max(x, min) = x
)

var identities = [...]identityClass{
	OpSum:  identZero,
	OpProd: identOne,
	OpMin:  identMaxVal,
	OpMax:  identMinVal,
	OpBand: identAllOnes,
	OpBor:  identZero,
	OpBxor: identZero,
}

// Identity returns the operator's identity element for dt (used by the
// linear-reduction baseline and by tests).
func Identity(dt xbrtime.DType, op ReduceOp) uint64 {
	if int(op) >= len(identities) {
		return 0
	}
	switch identities[op] {
	case identOne:
		return fromScalar(dt, 1)
	case identAllOnes:
		return dt.Canon(^uint64(0))
	case identMaxVal:
		return maxValue(dt)
	case identMinVal:
		return minValue(dt)
	default:
		return fromScalar(dt, 0)
	}
}

// fromScalar encodes a small integer in dt's canonical representation.
func fromScalar(dt xbrtime.DType, v int64) uint64 {
	if dt.Kind == xbrtime.KindFloat {
		return dt.FromFloat(float64(v))
	}
	return dt.Canon(uint64(v))
}

// maxValue returns the largest canonical value of dt's domain.
func maxValue(dt xbrtime.DType) uint64 {
	switch dt.Kind {
	case xbrtime.KindFloat:
		return dt.FromFloat(maxFloat(dt))
	case xbrtime.KindInt:
		return dt.Canon(uint64(int64(1)<<(8*dt.Width-1) - 1)) // max signed
	default:
		return dt.Canon(^uint64(0)) // max unsigned
	}
}

// minValue returns the smallest canonical value of dt's domain.
func minValue(dt xbrtime.DType) uint64 {
	switch dt.Kind {
	case xbrtime.KindFloat:
		return dt.FromFloat(-maxFloat(dt))
	case xbrtime.KindInt:
		return dt.Canon(uint64(int64(-1) << (8*dt.Width - 1))) // min signed
	default:
		return 0
	}
}

func maxFloat(dt xbrtime.DType) float64 {
	if dt.Width == 4 {
		return 3.4028234663852886e+38 // math.MaxFloat32
	}
	return 1.7976931348623157e+308 // math.MaxFloat64
}
