package core

import (
	"fmt"

	"xbgas/internal/xbrtime"
)

// ReduceOp names one of the supported reduction operators. The paper's
// implementation "supports sum, product, min, and max operations for
// all types listed in Table 1" and "bitwise AND, bitwise OR, and
// bitwise XOR ... for non-floating point types" (§4.4).
type ReduceOp uint8

// Reduction operators.
const (
	OpSum ReduceOp = iota
	OpProd
	OpMin
	OpMax
	OpBand
	OpBor
	OpBxor
)

var reduceOpNames = [...]string{"sum", "prod", "min", "max", "and", "or", "xor"}

// String returns the operator's short name as used in the C function
// names (xbrtime_TYPENAME_reduce_OP).
func (op ReduceOp) String() string {
	if int(op) < len(reduceOpNames) {
		return reduceOpNames[op]
	}
	return fmt.Sprintf("op?%d", uint8(op))
}

// AllReduceOps lists every operator.
func AllReduceOps() []ReduceOp {
	return []ReduceOp{OpSum, OpProd, OpMin, OpMax, OpBand, OpBor, OpBxor}
}

// ValidFor reports whether the operator applies to dt: bitwise
// operators are defined only for non-floating-point types.
func (op ReduceOp) ValidFor(dt xbrtime.DType) bool {
	switch op {
	case OpSum, OpProd, OpMin, OpMax:
		return true
	case OpBand, OpBor, OpBxor:
		return dt.Kind != xbrtime.KindFloat
	}
	return false
}

// combineCost is the ALU cycle charge per element combine.
func combineCost(dt xbrtime.DType, op ReduceOp) uint64 {
	if dt.Kind == xbrtime.KindFloat {
		return 4 // FP add/mul/compare latency
	}
	if op == OpProd {
		return 3 // integer multiply
	}
	return 1
}

// Combine applies op to two canonical values of type dt and returns the
// canonical result. Canonical means: sign-extended for signed integers,
// zero-extended for unsigned, raw IEEE bits for floats (see
// xbrtime.DType.Canon).
func Combine(dt xbrtime.DType, op ReduceOp, a, b uint64) (uint64, error) {
	if !op.ValidFor(dt) {
		return 0, fmt.Errorf("core: operator %s undefined for type %s", op, dt)
	}
	switch dt.Kind {
	case xbrtime.KindFloat:
		x, y := dt.Float(a), dt.Float(b)
		var r float64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		}
		return dt.FromFloat(r), nil

	case xbrtime.KindInt:
		x, y := int64(a), int64(b)
		var r int64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		case OpBand:
			r = x & y
		case OpBor:
			r = x | y
		case OpBxor:
			r = x ^ y
		}
		return dt.Canon(uint64(r)), nil

	default: // KindUint
		x, y := a, b
		var r uint64
		switch op {
		case OpSum:
			r = x + y
		case OpProd:
			r = x * y
		case OpMin:
			r = x
			if y < x {
				r = y
			}
		case OpMax:
			r = x
			if y > x {
				r = y
			}
		case OpBand:
			r = x & y
		case OpBor:
			r = x | y
		case OpBxor:
			r = x ^ y
		}
		return dt.Canon(r), nil
	}
}

// Identity returns the operator's identity element for dt (used by the
// linear-reduction baseline and by tests).
func Identity(dt xbrtime.DType, op ReduceOp) uint64 {
	switch op {
	case OpSum, OpBor, OpBxor:
		if dt.Kind == xbrtime.KindFloat {
			return dt.FromFloat(0)
		}
		return 0
	case OpProd:
		if dt.Kind == xbrtime.KindFloat {
			return dt.FromFloat(1)
		}
		return 1
	case OpBand:
		return dt.Canon(^uint64(0))
	case OpMin:
		switch dt.Kind {
		case xbrtime.KindFloat:
			return dt.FromFloat(maxFloat(dt))
		case xbrtime.KindInt:
			return dt.Canon(uint64(int64(1)<<(8*dt.Width-1) - 1)) // max signed
		default:
			return dt.Canon(^uint64(0)) // max unsigned
		}
	case OpMax:
		switch dt.Kind {
		case xbrtime.KindFloat:
			return dt.FromFloat(-maxFloat(dt))
		case xbrtime.KindInt:
			return dt.Canon(uint64(int64(-1) << (8*dt.Width - 1))) // min signed
		default:
			return 0
		}
	}
	return 0
}

func maxFloat(dt xbrtime.DType) float64 {
	if dt.Width == 4 {
		return 3.4028234663852886e+38 // math.MaxFloat32
	}
	return 1.7976931348623157e+308 // math.MaxFloat64
}
