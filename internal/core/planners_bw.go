package core

// The bandwidth-optimal planners. The paper's binomial trees move the
// whole payload ⌈log₂ n⌉ times through the root's port, which is
// latency-optimal but leaves ~2x bandwidth on the table for large
// messages (Träff's reduce-scatter/allreduce analysis is the
// reference). These planners move each byte at most twice regardless of
// the tree depth:
//
//   - ring reduce-scatter / allgather / allreduce circulate equal
//     chunks around the ring, n−1 hops of nelems/n elements each, for
//     2·(n−1)/n payload volume per PE;
//   - the rabenseifner planner composes recursive-halving
//     reduce-scatter with recursive-doubling allgather — the same
//     2·(n−1)/n volume in 2·log₂ n rounds at power-of-two counts,
//     falling back to the ring composition elsewhere;
//   - ring pipelined broadcast/reduce (the CompileSeg forms) chain the
//     PEs and stream segments down the chain with PR 4's flag
//     machinery: depth (n−1)+(S−1) but every link carries every byte
//     exactly once.
//
// All of them mark the plan Chunked, so stride-1 data moves through the
// line-granular bulk paths (chunk transfers, bulk copies and combines)
// instead of the element-at-a-time accessors. Non-power-of-two counts
// and roots need no special casing anywhere: chunk identities are
// virtual ranks and the executor's vrank remap and AdjChunks geometry
// resolve them per call.

// isPow2 reports whether n is a power of two (n ≥ 1).
func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }

func compileRing(coll Collective, n int) *Plan {
	switch coll {
	case CollReduceScatter:
		return ringReduceScatterPlan(n)
	case CollAllGather:
		return ringAllGatherPlan(n)
	case CollAllReduce:
		return ringAllReducePlan(n)
	case CollBroadcast:
		return ringBroadcastPlan(n)
	case CollReduce:
		return ringReducePlan(n)
	}
	return nil
}

func compileRingSeg(coll Collective, n, segments int) *Plan {
	if n < 2 || segments < 2 {
		return nil
	}
	switch coll {
	case CollBroadcast:
		return ringBroadcastSegPlan(n, segments)
	case CollReduce:
		return ringReduceSegPlan(n, segments)
	}
	// The ring allreduce already moves chunk-granular traffic; further
	// segmentation buys nothing.
	return nil
}

func compileRabenseifner(coll Collective, n int) *Plan {
	switch coll {
	case CollReduceScatter:
		if isPow2(n) {
			return halvingReduceScatterPlan(n)
		}
		return ringReduceScatterBody(AlgoRabenseifner, "reduce_scatter_rhd", n)
	case CollAllGather:
		if isPow2(n) {
			return doublingAllGatherPlan(n)
		}
		return ringAllGatherBody(AlgoRabenseifner, "allgather_rhd", n)
	case CollAllReduce:
		if isPow2(n) {
			return rabenseifnerAllReducePlan(n)
		}
		return ringAllReduceBody(AlgoRabenseifner, "allreduce_rab", n)
	}
	return nil
}

// ringChunk is the chunk PE v pulls from its left neighbour in
// reduce-scatter round r: the partial its neighbour finished
// accumulating in round r−1 (chunk (v−r−2) mod n), so after n−1 rounds
// chunk v is fully reduced at PE v.
func ringChunk(v, r, n int) int { return ((v-r-2)%n + n) % n }

// appendRingRS emits the ring reduce-scatter rounds onto p: in round r
// every PE pulls one chunk from its left neighbour into scratch and
// folds it into its staged copy. Reads and writes of a round touch
// adjacent chunk ids, so no PE ever reads a chunk its neighbour is
// combining that round.
func appendRingRS(p *Plan, n int, span string, idx int) int {
	for r := 0; r < n-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			c := ringChunk(v, r, n)
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: v, Peer: (v - 1 + n) % n,
					Dst:   Loc{Buf: BufScratch, Off: OffAdj, V: c},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: c},
					Count: CountBlock, CV: c, SkipIfZero: true,
				},
				Step{
					Kind: StepCombine, Actor: v, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: c},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: c},
					Count: CountBlock, CV: c,
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return idx
}

// ringReduceScatterBody builds the ring reduce-scatter under the given
// algorithm name: stage the full contribution, run n−1 pull-and-fold
// rounds, and land the PE's own fully-reduced chunk in dest.
func ringReduceScatterBody(algo Algorithm, span string, n int) *Plan {
	p := &Plan{
		Collective: CollReduceScatter, Algorithm: algo, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: n - 1,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	appendRingRS(p, n, span, 0)
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

func ringReduceScatterPlan(n int) *Plan {
	return ringReduceScatterBody(AlgoRing, "reduce_scatter_ring", n)
}

// ringAllGatherBody builds the ring allgather: every PE plants its own
// block in dest, then n−1 rounds forward the block received r rounds
// ago to the right neighbour — the all-gather phase of the van de Geijn
// broadcast generalised to the caller's pe_msgs/pe_disp layout.
func ringAllGatherBody(algo Algorithm, span string, n int) *Plan {
	p := &Plan{
		Collective: CollAllGather, Algorithm: algo, Span: span, NPEs: n,
		Adj: AdjVector, Chunked: true, Depth: n - 1,
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for r := 0; r < n-1; r++ {
		rd := Round{Name: span + ".round", Idx: r}
		for v := 0; v < n; v++ {
			u := ((v-r)%n + n) % n
			rd.Steps = append(rd.Steps, Step{
				Kind: StepPut, Actor: v, Peer: (v + 1) % n,
				Dst:   Loc{Buf: BufDest, Off: OffDisp, V: u},
				Src:   Loc{Buf: BufDest, Off: OffDisp, V: u},
				Count: CountBlock, CV: u, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return p
}

func ringAllGatherPlan(n int) *Plan {
	return ringAllGatherBody(AlgoRing, "allgather_ring", n)
}

// ringAllReduceBody fuses reduce-scatter and allgather over one staging
// buffer: n−1 pull-and-fold rounds leave PE v owning fully-reduced
// chunk v, n−1 forwarding rounds circulate the reduced chunks, and
// every PE copies the assembled vector to dest. Each PE moves
// 2·(n−1)/n of the payload in total — the bandwidth-optimal volume.
func ringAllReduceBody(algo Algorithm, span string, n int) *Plan {
	p := &Plan{
		Collective: CollAllReduce, Algorithm: algo, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: 2 * (n - 1),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll, SrcStrided: true,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := appendRingRS(p, n, span, 0)
	// Allgather phase: in round r the left neighbour finished owning
	// chunk (v−1−r) mod n exactly r rounds ago; pull it straight into
	// the staged vector.
	for r := 0; r < n-1; r++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			c := ((v-1-r)%n + n) % n
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: (v - 1 + n) % n,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: c},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: c},
				Count: CountBlock, CV: c, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

func ringAllReducePlan(n int) *Plan {
	return ringAllReduceBody(AlgoRing, "allreduce_ring", n)
}

// ringBroadcastPlan chains the PEs 0→1→…→n−1, each hop forwarding the
// whole payload. Unsegmented it is dominated by the tree at every size;
// it exists as the base shape of the pipelined form below, where the
// chain is what makes every link carry each byte exactly once.
func ringBroadcastPlan(n int) *Plan {
	p := &Plan{
		Collective: CollBroadcast, Algorithm: AlgoRing, Span: "broadcast_ring", NPEs: n,
		Chunked: true, Depth: n - 1,
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	}}})
	for r := 0; r < n-1; r++ {
		rd := Round{Name: "broadcast_ring.round", Idx: r}
		rd.Steps = append(rd.Steps, Step{
			Kind: StepPut, Actor: r, Peer: r + 1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufDest},
			Count: CountAll, Strided: true,
		})
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return p
}

// ringReducePlan is the chain read root-ward: PE a pulls the partial of
// PE a+1 and folds it in, n−1 rounds from the tail to virtual rank 0.
func ringReducePlan(n int) *Plan {
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoRing, Span: "reduce_ring", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true, Depth: n - 1,
	}
	pro := Round{Idx: -1, Steps: stageAll(n)}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	for r := 0; r < n-1; r++ {
		a := n - 2 - r
		rd := Round{Name: "reduce_ring.round", Idx: r}
		rd.Steps = append(rd.Steps,
			Step{
				Kind: StepGet, Actor: a, Peer: a + 1,
				Dst: Loc{Buf: BufScratch}, Src: Loc{Buf: BufStage},
				Count: CountAll, Strided: true,
			},
			Step{
				Kind: StepCombine, Actor: a, Peer: -1,
				Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufScratch},
				Count: CountAll, DstStrided: true, SrcStrided: true,
			},
			barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	}}})
	return p
}

// ringBroadcastSegPlan streams S segments down the chain with flag
// pipelining: every link forwards segment k as soon as it has arrived,
// so all n−1 links are busy at once and the critical path is
// (n−1)+(S−1) segment hops — against the pipelined tree's
// ⌈log₂ n⌉+S−1 it trades depth for moving each byte once per link.
func ringBroadcastSegPlan(n, s int) *Plan {
	p := &Plan{
		Collective: CollBroadcast, Algorithm: AlgoRing, Span: "broadcast_ring", NPEs: n,
		Segments: s, FlagWords: s, Depth: (n - 1) + (s - 1), Chunked: true,
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufSrc},
		Count: CountAll, DstStrided: true, SrcStrided: true,
		SkipIfAlias: true,
	}}})
	for seg := 0; seg < s; seg++ {
		r := Round{Name: "broadcast_ring.round", Idx: seg, NB: true}
		for v := 0; v < n-1; v++ {
			if v > 0 {
				r.Steps = append(r.Steps, Step{Kind: StepWaitFlag, Actor: v, Peer: -1, Flag: seg})
			}
			r.Steps = append(r.Steps,
				Step{
					Kind: StepPut, Actor: v, Peer: v + 1,
					Dst:   Loc{Buf: BufDest, Off: OffSeg, V: seg},
					Src:   Loc{Buf: BufDest, Off: OffSeg, V: seg},
					Count: CountSeg, CV: seg, Strided: true, SkipIfZero: true,
				},
				Step{Kind: StepSignal, Actor: v, Peer: v + 1, Flag: seg},
			)
		}
		p.Rounds = append(p.Rounds, r)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{barrierStep()}})
	return p
}

// ringReduceSegPlan pipelines the chain reduce: per segment, PE a
// waits for its successor's signal, pulls the successor's folded
// partial and combines it in, then (one link up, next emission) its own
// predecessor does the same. The tail PE signals as soon as its slice
// is staged, so segment k+1 climbs the chain while segment k is still
// in flight. Flags are per {link, segment}: word a·S+seg posts to the
// puller of link a.
func ringReduceSegPlan(n, s int) *Plan {
	p := &Plan{
		Collective: CollReduce, Algorithm: AlgoRing, Span: "reduce_ring", NPEs: n,
		Stage: BufSpan, Scratch: BufSpan, UsesOp: true,
		Segments: s, FlagWords: (n - 1) * s, Depth: (n - 1) + (s - 1),
	}
	for seg := 0; seg < s; seg++ {
		r := Round{Name: "reduce_ring.round", Idx: seg}
		for v := 0; v < n; v++ {
			r.Steps = append(r.Steps, Step{
				Kind: StepCopy, Actor: v, Peer: -1,
				Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
				Src:   Loc{Buf: BufSrc, Off: OffSeg, V: seg},
				Count: CountSeg, CV: seg, DstStrided: true, SrcStrided: true,
			})
		}
		// Emit links tail-first: actor a's fold (link a) lands before
		// its signal (link a−1), so actor order encodes the dependency.
		for a := n - 2; a >= 0; a-- {
			f := a*s + seg
			r.Steps = append(r.Steps,
				Step{Kind: StepSignal, Actor: a + 1, Peer: a, Flag: f},
				Step{Kind: StepWaitFlag, Actor: a, Peer: -1, Flag: f},
				Step{
					Kind: StepGet, Actor: a, Peer: a + 1,
					Dst:   Loc{Buf: BufScratch, Off: OffSeg, V: seg},
					Src:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
					Count: CountSeg, CV: seg, Strided: true,
				},
				Step{
					Kind: StepCombine, Actor: a, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffSeg, V: seg},
					Src:   Loc{Buf: BufScratch, Off: OffSeg, V: seg},
					Count: CountSeg, CV: seg, DstStrided: true, SrcStrided: true,
				})
		}
		p.Rounds = append(p.Rounds, r)
	}
	p.Rounds = append(p.Rounds, Round{Idx: -1, Steps: []Step{{
		Kind: StepCopy, Actor: 0, Peer: -1,
		Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
		Count: CountAll, DstStrided: true, SrcStrided: true,
	}, barrierStep()}})
	return p
}

// log2 returns log₂ n for power-of-two n.
func log2(n int) int {
	r := 0
	for (1 << r) < n {
		r++
	}
	return r
}

// appendHalvingRS emits the recursive-halving reduce-scatter rounds:
// in round k each PE exchanges with the partner across its group's
// halving distance, pulling the half of the group's chunks that
// contains its own and folding it in. After log₂ n rounds chunk v is
// fully reduced at PE v. Regions are contiguous runs of chunks in
// virtual-rank order, so OffAdj/CountSubtree express them exactly.
func appendHalvingRS(p *Plan, n int, span string, idx int) int {
	for k := 0; k < log2(n); k++ {
		g := n >> k
		half := g >> 1
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			base := v - v%g
			keep := base
			if v%g >= half {
				keep = base + half
			}
			partner := v ^ half
			rd.Steps = append(rd.Steps,
				Step{
					Kind: StepGet, Actor: v, Peer: partner,
					Dst:   Loc{Buf: BufScratch, Off: OffAdj, V: keep},
					Src:   Loc{Buf: BufStage, Off: OffAdj, V: keep},
					Count: CountSubtree, CV: keep, CB: log2(half), SkipIfZero: true,
				},
				Step{
					Kind: StepCombine, Actor: v, Peer: -1,
					Dst:   Loc{Buf: BufStage, Off: OffAdj, V: keep},
					Src:   Loc{Buf: BufScratch, Off: OffAdj, V: keep},
					Count: CountSubtree, CV: keep, CB: log2(half),
				})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return idx
}

// halvingReduceScatterPlan is the recursive-halving reduce-scatter for
// power-of-two counts: log₂ n exchange rounds, each moving half the
// surviving region, for (n−1)/n total payload volume per PE.
func halvingReduceScatterPlan(n int) *Plan {
	span := "reduce_scatter_rhd"
	p := &Plan{
		Collective: CollReduceScatter, Algorithm: AlgoRabenseifner, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: log2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	appendHalvingRS(p, n, span, 0)
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Count: CountBlock, CV: v,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// doublingAllGatherPlan is the recursive-doubling allgather for
// power-of-two counts: each PE stages its block at its adjusted offset
// and log₂ n exchange rounds double the owned region by pulling the
// partner's, like the binomial gather but with both directions busy
// every round.
func doublingAllGatherPlan(n int) *Plan {
	span := "allgather_rhd"
	p := &Plan{
		Collective: CollAllGather, Algorithm: AlgoRabenseifner, Span: span, NPEs: n,
		Stage: BufTotal, Adj: AdjVector, Chunked: true, Depth: log2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufStage, Off: OffAdj, V: v},
			Src:   Loc{Buf: BufSrc},
			Count: CountBlock, CV: v,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	appendDoublingAG(p, n, span, 0)
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst:   Loc{Buf: BufDest, Off: OffDisp, V: 0},
			Src:   Loc{Buf: BufStage, Off: OffAdj, V: 0},
			Count: CountBlock, CV: 0, Blocks: n, BStride: 1,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

// appendDoublingAG emits the recursive-doubling allgather rounds onto
// p: in round j PE v pulls the 2^j-chunk region its partner v^2^j
// currently owns, doubling its own region.
func appendDoublingAG(p *Plan, n int, span string, idx int) int {
	for j := 0; j < log2(n); j++ {
		rd := Round{Name: span + ".round", Idx: idx}
		idx++
		for v := 0; v < n; v++ {
			partner := v ^ (1 << j)
			pbase := partner &^ ((1 << j) - 1)
			rd.Steps = append(rd.Steps, Step{
				Kind: StepGet, Actor: v, Peer: partner,
				Dst:   Loc{Buf: BufStage, Off: OffAdj, V: pbase},
				Src:   Loc{Buf: BufStage, Off: OffAdj, V: pbase},
				Count: CountSubtree, CV: pbase, CB: j, SkipIfZero: true,
			})
		}
		rd.Steps = append(rd.Steps, barrierStep())
		p.Rounds = append(p.Rounds, rd)
	}
	return idx
}

// rabenseifnerAllReducePlan is Rabenseifner's allreduce for
// power-of-two counts: recursive-halving reduce-scatter followed by
// recursive-doubling allgather over one staging buffer — 2·(n−1)/n
// payload volume per PE in 2·log₂ n rounds, against the binomial
// composition's 2·log₂ n whole-payload rounds.
func rabenseifnerAllReducePlan(n int) *Plan {
	span := "allreduce_rab"
	p := &Plan{
		Collective: CollAllReduce, Algorithm: AlgoRabenseifner, Span: span, NPEs: n,
		Stage: BufTotal, Scratch: BufTotal, Adj: AdjChunks, UsesOp: true,
		Chunked: true, Depth: 2 * log2(n),
	}
	pro := Round{Idx: -1}
	for v := 0; v < n; v++ {
		pro.Steps = append(pro.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufStage}, Src: Loc{Buf: BufSrc},
			Count: CountAll, SrcStrided: true,
		})
	}
	pro.Steps = append(pro.Steps, barrierStep())
	p.Rounds = append(p.Rounds, pro)
	idx := appendHalvingRS(p, n, span, 0)
	appendDoublingAG(p, n, span, idx)
	epi := Round{Idx: -1}
	for v := 0; v < n; v++ {
		epi.Steps = append(epi.Steps, Step{
			Kind: StepCopy, Actor: v, Peer: -1,
			Dst: Loc{Buf: BufDest}, Src: Loc{Buf: BufStage},
			Count: CountAll, DstStrided: true,
		})
	}
	p.Rounds = append(p.Rounds, epi)
	return p
}

func init() {
	RegisterPlanner(&Planner{
		Name: AlgoRing,
		Collectives: []Collective{
			CollBroadcast, CollReduce, CollAllReduce, CollAllGather,
			CollReduceScatter,
		},
		Compile:    compileRing,
		CompileSeg: compileRingSeg,
	})
	RegisterPlanner(&Planner{
		Name: AlgoRabenseifner,
		Collectives: []Collective{
			CollAllReduce, CollAllGather, CollReduceScatter,
		},
		Compile: compileRabenseifner,
	})
}
