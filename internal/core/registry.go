package core

import (
	"sort"
	"sync"
)

// The planner registry replaces the old Algorithm-enum switch: an
// algorithm is a named Planner that compiles plans for the collectives
// it implements, and new algorithms (a ring or PAT-style all-gather,
// say) register here without touching the per-collective entry points.

// Planner compiles communication plans for one algorithm family.
type Planner struct {
	// Name is the algorithm name callers select by (-algo on the
	// bench driver).
	Name Algorithm
	// Collectives lists the operations the planner implements.
	Collectives []Collective
	// Compile builds the plan for coll over n PEs in virtual-rank
	// space, or returns nil when the planner does not implement coll.
	Compile func(coll Collective, n int) *Plan
	// CompileSeg, when non-nil, builds the segmented (pipelined) form
	// of coll for a message split into the given number of segments; it
	// returns nil when the planner has no segmented form for coll, and
	// CompilePlanSeg then falls back to the unsegmented plan.
	CompileSeg func(coll Collective, n, segments int) *Plan
	// CompileShaped, when non-nil, builds the plan against a fabric
	// shape (CompilePlanFor): the hierarchical planners schedule
	// intra-node and inter-node phases separately. Flat shapes fall
	// back to Compile.
	CompileShaped func(coll Collective, n int, sh Shape) *Plan
}

// Supports reports whether the planner implements coll.
func (p *Planner) Supports(coll Collective) bool {
	for _, c := range p.Collectives {
		if c == coll {
			return true
		}
	}
	return false
}

var (
	regMu    sync.RWMutex
	registry = map[Algorithm]*Planner{}
)

// RegisterPlanner adds (or replaces) a planner under its name and
// invalidates cached auto decisions: the new planner is a candidate.
func RegisterPlanner(p *Planner) {
	regMu.Lock()
	registry[p.Name] = p
	regMu.Unlock()
	invalidateAuto()
}

// LookupPlanner resolves an algorithm name to its planner.
func LookupPlanner(name Algorithm) (*Planner, bool) {
	regMu.RLock()
	p, ok := registry[name]
	regMu.RUnlock()
	return p, ok
}

// PlannerNames lists the registered algorithm names, sorted.
func PlannerNames() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, string(n))
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}

func init() {
	RegisterPlanner(&Planner{
		Name: AlgoBinomial,
		Collectives: []Collective{
			CollBroadcast, CollReduce, CollScatter, CollGather,
			CollAllReduce, CollAllGather,
		},
		Compile:    compileBinomial,
		CompileSeg: compileBinomialSeg,
	})
	RegisterPlanner(&Planner{
		Name: AlgoLinear,
		Collectives: []Collective{
			CollBroadcast, CollReduce, CollScatter, CollGather,
		},
		Compile: compileLinear,
	})
	RegisterPlanner(&Planner{
		Name:        AlgoScatterAllgather,
		Collectives: []Collective{CollBroadcast},
		Compile:     compileScatterAllgather,
	})
	RegisterPlanner(&Planner{
		Name:        AlgoDirect,
		Collectives: []Collective{CollAlltoall},
		Compile:     compileDirect,
	})
}
