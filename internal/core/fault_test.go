package core

import (
	"strings"
	"testing"

	"xbgas/internal/xbrtime"
)

// TestBroadcastSurvivesLinkFaultCleanly injects a link failure under a
// running broadcast and asserts the error propagates out of Run on
// every PE instead of deadlocking: the failing PE reports the fabric
// error; the survivors are released with ErrBarrierBroken.
func TestBroadcastSurvivesLinkFaultCleanly(t *testing.T) {
	const nPEs = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	// In the 4-PE broadcast tree from root 0, virtual rank 0 puts to 2
	// in round 0. Cut that link before anything starts.
	rt.Machine().Fabric.SetLinkState(0, 2, false)

	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		return Broadcast(pe, xbrtime.TypeInt64, dest, src, 1, 1, 0)
	})
	if err == nil {
		t.Fatal("broadcast over a partitioned fabric must fail")
	}
	if !strings.Contains(err.Error(), "down") && !strings.Contains(err.Error(), "barrier") {
		t.Errorf("unexpected error: %v", err)
	}
}

// TestReduceSurvivesLinkFaultCleanly does the same for the get-based
// reduction (the get issues two fabric sends; cutting the reverse
// direction breaks the data response).
func TestReduceSurvivesLinkFaultCleanly(t *testing.T) {
	const nPEs = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 of the reduction has virtual rank 0 getting from 1: the
	// data flows 1 -> 0. Cut it.
	rt.Machine().Fabric.SetLinkState(1, 0, false)
	err = rt.Run(func(pe *xbrtime.PE) error {
		src, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		dest, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		return Reduce(pe, xbrtime.TypeInt64, OpSum, dest, src, 1, 1, 0)
	})
	if err == nil {
		t.Fatal("reduction over a partitioned fabric must fail")
	}
}

// TestFaultThenRecovery restores the link and checks the runtime is
// still usable for a fresh collective (state was not corrupted by the
// failed attempt — barring the broken barrier, which is permanent for
// a runtime instance, so a new runtime is used).
func TestFaultThenRecovery(t *testing.T) {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	fab := rt.Machine().Fabric
	fab.SetLinkState(0, 1, false)
	err = rt.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			return pe.PutInt64(buf, src, 1, 1, 1)
		}
		return nil
	})
	if err == nil {
		t.Fatal("put over a down link must fail")
	}
	if fab.Dropped() == 0 {
		t.Error("dropped counter not incremented")
	}

	// Fresh runtime, restored world: everything works again.
	rt2, err := xbrtime.New(xbrtime.Config{NumPEs: 2})
	if err != nil {
		t.Fatal(err)
	}
	err = rt2.Run(func(pe *xbrtime.PE) error {
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(8)
			pe.Poke(xbrtime.TypeInt64, src, 41)
			return pe.PutInt64(buf, src, 1, 1, 1)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
