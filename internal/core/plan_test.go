package core

import (
	"sort"
	"sync"
	"testing"

	"xbgas/internal/xbrtime"
)

// ---------------------------------------------------------------------
// Differential test: for every registered (collective, algorithm) pair,
// every PE count 1..16 (powers of two and not), and every root, the
// transfer set the executor actually issues must equal the analytic
// schedule projected from the same plan (Plan.Transfers). The executor
// reports its transfers through the ExecArgs.OnTransfer hook, so this
// compares the wire against the IR with no tracing middleman.
// ---------------------------------------------------------------------

func sortTransfers(ts []Transfer) {
	sort.Slice(ts, func(i, j int) bool {
		a, b := ts[i], ts[j]
		if a.Round != b.Round {
			return a.Round < b.Round
		}
		if a.Kind != b.Kind {
			return a.Kind < b.Kind
		}
		if a.From != b.From {
			return a.From < b.From
		}
		return a.To < b.To
	})
}

// diffArgs builds per-PE buffers and arguments for one differential
// case. Sizes are chosen so no skip-if-zero step fires: vector
// collectives use one element per PE, the chunked broadcast moves n
// elements (one per chunk).
func diffArgs(pe *xbrtime.PE, coll Collective, n, root int) (ExecArgs, []uint64, error) {
	var allocs []uint64
	alloc := func(bytes uint64) (uint64, error) {
		a, err := pe.Malloc(bytes)
		if err != nil {
			return 0, err
		}
		allocs = append(allocs, a)
		return a, nil
	}
	w := uint64(8)
	a := ExecArgs{DT: xbrtime.TypeInt64, Op: OpSum, Stride: 1, Root: root}
	var err error
	switch coll {
	case CollBroadcast, CollReduce, CollAllReduce:
		a.Nelems = n // ≥ 1 per chunk for scatter-allgather
		if a.Dest, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
		if a.Src, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
	case CollScatter, CollGather, CollAllGather:
		a.Nelems = n
		a.PeMsgs = make([]int, n)
		a.PeDisp = make([]int, n)
		for i := range a.PeMsgs {
			a.PeMsgs[i] = 1
			a.PeDisp[i] = i
		}
		if a.Dest, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
		if a.Src, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
	case CollAlltoall:
		a.Nelems = 1
		if a.Dest, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
		if a.Src, err = alloc(uint64(n) * w); err != nil {
			return a, allocs, err
		}
	}
	return a, allocs, nil
}

func TestExecutionMatchesSchedule(t *testing.T) {
	cases := []struct {
		coll Collective
		algo Algorithm
	}{
		{CollBroadcast, AlgoBinomial},
		{CollBroadcast, AlgoLinear},
		{CollBroadcast, AlgoScatterAllgather},
		{CollReduce, AlgoBinomial},
		{CollReduce, AlgoLinear},
		{CollScatter, AlgoBinomial},
		{CollScatter, AlgoLinear},
		{CollGather, AlgoBinomial},
		{CollGather, AlgoLinear},
		{CollAllReduce, AlgoBinomial},
		{CollAllGather, AlgoBinomial},
		{CollAlltoall, AlgoDirect},
	}
	for _, tc := range cases {
		for n := 1; n <= 16; n++ {
			p, err := CompilePlan(tc.coll, tc.algo, n)
			if err != nil {
				t.Fatalf("%s/%s n=%d: %v", tc.coll, tc.algo, n, err)
			}
			want := p.Transfers()
			sortTransfers(want)

			roots := []int{0}
			rooted := tc.coll == CollBroadcast || tc.coll == CollReduce ||
				tc.coll == CollScatter || tc.coll == CollGather
			if rooted {
				roots = roots[:0]
				for r := 0; r < n; r++ {
					roots = append(roots, r)
				}
			}

			var mu sync.Mutex
			got := make([][]Transfer, len(roots))
			rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
			if err != nil {
				t.Fatal(err)
			}
			err = rt.Run(func(pe *xbrtime.PE) error {
				for ri, root := range roots {
					a, allocs, err := diffArgs(pe, tc.coll, n, root)
					if err != nil {
						return err
					}
					ri := ri
					a.OnTransfer = func(round int, s Step, _ int) {
						tr := Transfer{Round: round, Kind: s.Kind, From: s.Actor, To: s.Peer}
						if s.Kind == StepGet {
							tr.From, tr.To = s.Peer, s.Actor
						}
						mu.Lock()
						got[ri] = append(got[ri], tr)
						mu.Unlock()
					}
					if err := Execute(pe, p, a); err != nil {
						return err
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					for _, addr := range allocs {
						if err := pe.Free(addr); err != nil {
							return err
						}
					}
				}
				return nil
			})
			if err != nil {
				t.Fatalf("%s/%s n=%d: %v", tc.coll, tc.algo, n, err)
			}
			for ri, root := range roots {
				g := got[ri]
				sortTransfers(g)
				if len(g) != len(want) {
					t.Fatalf("%s/%s n=%d root=%d: executed %d transfers, schedule has %d:\n%v\nvs\n%v",
						tc.coll, tc.algo, n, root, len(g), len(want), g, want)
				}
				for i := range want {
					if g[i] != want[i] {
						t.Errorf("%s/%s n=%d root=%d transfer %d: executed %+v, schedule %+v",
							tc.coll, tc.algo, n, root, i, g[i], want[i])
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------------
// Plan-cache properties.
// ---------------------------------------------------------------------

// TestPlanCacheReuse pins the caching contract: one plan per
// (collective, algorithm, nPEs) shape, shared by every call — and
// because plans live in virtual-rank space, every root reuses the same
// plan object (the root enters only at execution time).
func TestPlanCacheReuse(t *testing.T) {
	p1, err := CompilePlan(CollBroadcast, AlgoBinomial, 8)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := CompilePlan(CollBroadcast, AlgoBinomial, 8)
	if err != nil {
		t.Fatal(err)
	}
	if p1 != p2 {
		t.Error("same shape must return the same cached *Plan")
	}
	if p3, _ := CompilePlan(CollBroadcast, AlgoBinomial, 9); p3 == p1 {
		t.Error("different nPEs must compile a different plan")
	}
	if p4, _ := CompilePlan(CollBroadcast, AlgoLinear, 8); p4 == p1 {
		t.Error("different algorithm must compile a different plan")
	}
	if p5, _ := CompilePlan(CollReduce, AlgoBinomial, 8); p5 == p1 {
		t.Error("different collective must compile a different plan")
	}
}

// TestPlanCacheConcurrent compiles the same shape from many goroutines
// and requires one canonical winner — the insert must be race-safe and
// first-wins so concurrently obtained plans are pointer-identical.
func TestPlanCacheConcurrent(t *testing.T) {
	const workers = 16
	plans := make([]*Plan, workers)
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			p, err := CompilePlan(CollGather, AlgoBinomial, 13)
			if err == nil {
				plans[i] = p
			}
		}(i)
	}
	wg.Wait()
	for i := 1; i < workers; i++ {
		if plans[i] == nil || plans[i] != plans[0] {
			t.Fatalf("worker %d got plan %p, want %p", i, plans[i], plans[0])
		}
	}
}

func TestCompilePlanErrors(t *testing.T) {
	if _, err := CompilePlan(CollBroadcast, AlgoBinomial, 0); err == nil {
		t.Error("nPEs=0 must fail")
	}
	if _, err := CompilePlan(CollBroadcast, Algorithm("fft"), 4); err == nil {
		t.Error("unregistered algorithm must fail")
	}
	if _, err := CompilePlan(CollAlltoall, AlgoLinear, 4); err == nil {
		t.Error("registered algorithm without this collective must fail")
	}
}

// ---------------------------------------------------------------------
// Executor hot path: with the plan cached and observability disabled, a
// collective call must allocate nothing on the host (the plan-engine
// analogue of the put/get overhead guards in internal/xbrtime).
// ---------------------------------------------------------------------

func TestCachedPlanExecZeroAllocs(t *testing.T) {
	rt := xbrtime.MustNew(xbrtime.Config{NumPEs: 1})
	defer rt.Close()
	pe := rt.PE(0)
	buf, err := pe.Malloc(8 * 2)
	if err != nil {
		t.Fatal(err)
	}
	dest, src := buf, buf+8
	// Warm-up compiles and caches the plan and faults in lazy state.
	if err := Broadcast(pe, xbrtime.TypeInt64, dest, src, 1, 1, 0); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := Broadcast(pe, xbrtime.TypeInt64, dest, src, 1, 1, 0); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("cached-plan broadcast with obs disabled: %.1f allocs/op, want 0", allocs)
	}
}

// ---------------------------------------------------------------------
// Workspace pool balance: every borrow must be returned on success and
// error paths alike. The historical Alltoall leak (the deferred
// ReturnHandles captured the pre-append slice header) is pinned here.
// ---------------------------------------------------------------------

func TestAlltoallPoolBalance(t *testing.T) {
	const n = 4
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	type balance struct{ ints, handles int }
	var after []balance
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(8 * n)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(8 * n)
		if err != nil {
			return err
		}
		if err := Alltoall(pe, xbrtime.TypeInt64, dest, src, 1); err != nil {
			return err
		}

		// Error path: a negative element count passes through the
		// executor (the public entry point rejects it) and makes the
		// first non-blocking put fail after the handle slice is
		// borrowed; the executor must still return it.
		p, err := CompilePlan(CollAlltoall, AlgoDirect, n)
		if err != nil {
			return err
		}
		if execErr := Execute(pe, p, ExecArgs{
			DT: xbrtime.TypeInt64, Dest: dest, Src: src,
			Nelems: -1, Stride: 1,
		}); execErr == nil {
			t.Error("negative-nelems execution must fail")
		}

		ints, handles := pe.WorkspaceOutstanding()
		mu.Lock()
		after = append(after, balance{ints, handles})
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range after {
		if b.ints != 0 || b.handles != 0 {
			t.Fatalf("workspace pools imbalanced after alltoall: ints=%d handles=%d",
				b.ints, b.handles)
		}
	}
}

// TestVectorCollectivePoolBalance covers the AdjVector borrow
// (adjustedDisplacements) through the executor's success path.
func TestVectorCollectivePoolBalance(t *testing.T) {
	const n = 5
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	msgs := []int{1, 1, 1, 1, 1}
	disp := []int{0, 1, 2, 3, 4}
	var mu sync.Mutex
	bad := false
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(8 * n)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(8 * n)
		if err != nil {
			return err
		}
		if err := Scatter(pe, xbrtime.TypeInt64, dest, src, msgs, disp, n, 0); err != nil {
			return err
		}
		if err := Gather(pe, xbrtime.TypeInt64, dest, src, msgs, disp, n, 0); err != nil {
			return err
		}
		ints, handles := pe.WorkspaceOutstanding()
		if ints != 0 || handles != 0 {
			mu.Lock()
			bad = true
			mu.Unlock()
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad {
		t.Fatal("workspace pools imbalanced after vector collectives")
	}
}
