package core

import (
	"xbgas/internal/xbrtime"
)

// BroadcastScatterAllgather is the large-message broadcast the paper
// defers to future work ("algorithms optimized for larger message
// sizes need to be added to our existing binomial tree methodology",
// §7): the van de Geijn scheme. The root scatters equal chunks across
// the PEs through the binomial tree, then a ring all-gather circulates
// the chunks until every PE holds the full payload.
//
// Each PE sends ~2·nelems/N elements instead of the tree's nelems per
// hop, so for payloads past a few kilobytes it overtakes the binomial
// tree; the message-size ablation shows the crossover. Contract as
// Broadcast (symmetric dest, root-only src); stride must be 1 (chunked
// transfers are contiguous by construction).
func BroadcastScatterAllgather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, root int) error {
	if err := validate(pe, dt, nelems, 1, root); err != nil {
		return err
	}
	nPEs := pe.NumPEs()
	if nPEs == 1 || nelems < nPEs {
		// Degenerate cases: fall back to the tree.
		return Broadcast(pe, dt, dest, src, nelems, 1, root)
	}
	me := pe.MyPE()
	vRank := VirtualRank(me, root, nPEs)
	w := uint64(dt.Width)
	cs := pe.StartCollective("broadcast_sag", root, nelems)
	defer pe.FinishCollective(cs)

	// Chunking in virtual-rank order: chunk v lives at element offset
	// disp[v] of the full payload and ends up owned by virtual rank v
	// after the scatter.
	msgs := pe.BorrowInts(nPEs)
	defer pe.ReturnInts(msgs)
	dispV := pe.BorrowInts(nPEs) // indexed by virtual rank
	defer pe.ReturnInts(dispV)
	per := nelems / nPEs
	rem := nelems % nPEs
	off := 0
	for v := 0; v < nPEs; v++ {
		msgs[v] = per
		if v < rem {
			msgs[v]++
		}
		dispV[v] = off
		off += msgs[v]
	}
	// Scatter expects pe_msgs/pe_disp indexed by logical rank.
	msgsL := pe.BorrowInts(nPEs)
	defer pe.ReturnInts(msgsL)
	dispL := pe.BorrowInts(nPEs)
	defer pe.ReturnInts(dispL)
	for v := 0; v < nPEs; v++ {
		l := LogicalRank(v, root, nPEs)
		msgsL[l] = msgs[v]
		dispL[l] = dispV[v]
	}

	// Phase 1: scatter the chunks; each PE receives its own chunk at
	// dest's chunk offset (so the all-gather can run in place).
	myChunk := dest + uint64(dispV[vRank])*w
	if err := Scatter(pe, dt, myChunk, src, msgsL, dispL, nelems, root); err != nil {
		return err
	}

	// Phase 2: ring all-gather in virtual-rank space. In round r every
	// PE forwards the chunk it received r rounds ago to its right
	// neighbour; after N-1 rounds everyone holds all chunks.
	right := LogicalRank((vRank+1)%nPEs, root, nPEs)
	for r := 0; r < nPEs-1; r++ {
		sendChunk := (vRank - r + nPEs*2) % nPEs
		sendOff := dest + uint64(dispV[sendChunk])*w
		rs := pe.StartRound("broadcast_sag.round", r, right, msgs[sendChunk])
		if msgs[sendChunk] > 0 {
			if err := pe.Put(dt, sendOff, sendOff, msgs[sendChunk], 1, right); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		pe.FinishRound(rs)
	}
	return nil
}
