package core

import (
	"xbgas/internal/xbrtime"
)

// BroadcastScatterAllgather is the large-message broadcast the paper
// defers to future work ("algorithms optimized for larger message
// sizes need to be added to our existing binomial tree methodology",
// §7): the van de Geijn scheme. The root scatters equal chunks across
// the PEs through the binomial tree, then a ring all-gather circulates
// the chunks until every PE holds the full payload.
//
// Each PE sends ~2·nelems/N elements instead of the tree's nelems per
// hop, so for payloads past a few kilobytes it overtakes the binomial
// tree; the message-size ablation shows the crossover. Contract as
// Broadcast (symmetric dest, root-only src); stride must be 1 (chunked
// transfers are contiguous by construction). The chunk geometry and
// both phases are encoded in the compiled plan (see
// compileScatterAllgather).
//
// Auto-segmentation (SelectSegments) never rewrites this algorithm:
// it already amortises large messages by chunking across PEs, so
// layering per-segment pipelining on top would only add flag traffic.
// Forcing it explicitly keeps its one-shot two-phase shape too —
// SetChunkBytes steers the binomial planners only. A plain Broadcast
// above the segmentation threshold instead stays on the binomial tree
// and pipelines its segments; the message-size ablation compares the
// two large-message strategies.
func BroadcastScatterAllgather(pe *xbrtime.PE, dt xbrtime.DType, dest, src uint64, nelems, root int) error {
	if err := validate(pe, dt, nelems, 1, root); err != nil {
		return err
	}
	nPEs := pe.NumPEs()
	if nPEs == 1 || nelems < nPEs {
		// Degenerate cases: fall back to the tree.
		return Broadcast(pe, dt, dest, src, nelems, 1, root)
	}
	return runPlan(pe, CollBroadcast, AlgoScatterAllgather, ExecArgs{
		DT: dt, Dest: dest, Src: src,
		Nelems: nelems, Stride: 1, Root: root,
	})
}
