package core

import (
	"testing"

	"xbgas/internal/xbrtime"
)

// TestEveryGeneratedWrapperDelegates drives every generated typed
// wrapper — the full xbrtime_TYPENAME_{broadcast,scatter,gather} and
// xbrtime_TYPENAME_reduce_OP surface — through one collective each and
// checks the result against the generic entry point it must delegate
// to.
func TestEveryGeneratedWrapperDelegates(t *testing.T) {
	const nPEs = 3
	if len(typedBroadcasts) != 24 || len(typedScatters) != 24 || len(typedGathers) != 24 {
		t.Fatalf("registry sizes: %d/%d/%d, want 24 each",
			len(typedBroadcasts), len(typedScatters), len(typedGathers))
	}
	reduceCount := 0
	for _, ops := range typedReduces {
		reduceCount += len(ops)
	}
	// 24 types × 4 arithmetic ops + 21 integer types × 3 bitwise ops.
	if want := 24*4 + 21*3; reduceCount != want {
		t.Fatalf("reduce registry has %d entries, want %d", reduceCount, want)
	}

	for name, bcast := range typedBroadcasts {
		name, bcast := name, bcast
		dt, ok := xbrtime.TypeByName(name)
		if !ok {
			t.Fatalf("registry names unknown type %q", name)
		}
		scatter := typedScatters[name]
		gather := typedGathers[name]
		reduces := typedReduces[name]
		t.Run(name, func(t *testing.T) {
			w := uint64(dt.Width)
			msgs := []int{1, 1, 1}
			disp := []int{0, 1, 2}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				buf, err := pe.Malloc(w * 4)
				if err != nil {
					return err
				}
				out, err := pe.PrivateAlloc(w * 4)
				if err != nil {
					return err
				}
				val := func(k int) uint64 {
					if dt.Kind == xbrtime.KindFloat {
						return dt.FromFloat(float64(k))
					}
					return dt.Canon(uint64(k))
				}

				// Broadcast via the wrapper.
				if me == 1 {
					pe.Poke(dt, out, val(7))
				}
				if err := bcast(pe, buf, out, 1, 1, 1); err != nil {
					return err
				}
				if got := pe.Peek(dt, buf); got != val(7) {
					t.Errorf("broadcast wrapper: PE %d got %s", me, dt.FormatValue(got))
				}

				// Scatter then gather via the wrappers.
				if me == 0 {
					for i := 0; i < nPEs; i++ {
						pe.Poke(dt, out+uint64(i)*w, val(i+1))
					}
				}
				if err := scatter(pe, buf, out, msgs, disp, nPEs, 0); err != nil {
					return err
				}
				if got := pe.Peek(dt, buf); got != val(me+1) {
					t.Errorf("scatter wrapper: PE %d got %s", me, dt.FormatValue(got))
				}
				if err := gather(pe, out, buf, msgs, disp, nPEs, 2); err != nil {
					return err
				}
				if me == 2 {
					for i := 0; i < nPEs; i++ {
						if got := pe.Peek(dt, out+uint64(i)*w); got != val(i+1) {
							t.Errorf("gather wrapper elem %d: %s", i, dt.FormatValue(got))
						}
					}
				}

				// Every reduction wrapper for this type.
				for opName, reduce := range reduces {
					op := opByName(t, opName)
					pe.Poke(dt, buf, val(me+1))
					if err := reduce(pe, out, buf, 1, 1, 0); err != nil {
						return err
					}
					if me == 0 {
						want := val(1)
						for p := 1; p < nPEs; p++ {
							var err error
							want, err = Combine(dt, op, want, val(p+1))
							if err != nil {
								return err
							}
						}
						if got := pe.Peek(dt, out); got != want {
							t.Errorf("reduce_%s wrapper: got %s, want %s",
								opName, dt.FormatValue(got), dt.FormatValue(want))
						}
					}
				}
				return pe.Free(buf)
			})
		})
	}
}

func opByName(t *testing.T, name string) ReduceOp {
	t.Helper()
	for _, op := range AllReduceOps() {
		if op.String() == name {
			return op
		}
	}
	t.Fatalf("unknown reduce op %q", name)
	return 0
}
