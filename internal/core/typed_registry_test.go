package core

import (
	"testing"

	"xbgas/internal/xbrtime"
)

// TestEveryGeneratedWrapperDelegates drives every generated typed
// wrapper — the full xbrtime_TYPENAME_{broadcast,scatter,gather} and
// xbrtime_TYPENAME_reduce_OP surface — through one collective each and
// checks the result against the generic entry point it must delegate
// to.
func TestEveryGeneratedWrapperDelegates(t *testing.T) {
	const nPEs = 3
	if len(typedBroadcasts) != 24 || len(typedScatters) != 24 || len(typedGathers) != 24 {
		t.Fatalf("registry sizes: %d/%d/%d, want 24 each",
			len(typedBroadcasts), len(typedScatters), len(typedGathers))
	}
	reduceCount := 0
	for _, ops := range typedReduces {
		reduceCount += len(ops)
	}
	// 24 types × 4 arithmetic ops + 21 integer types × 3 bitwise ops.
	if want := 24*4 + 21*3; reduceCount != want {
		t.Fatalf("reduce registry has %d entries, want %d", reduceCount, want)
	}

	for name, bcast := range typedBroadcasts {
		name, bcast := name, bcast
		dt, ok := xbrtime.TypeByName(name)
		if !ok {
			t.Fatalf("registry names unknown type %q", name)
		}
		scatter := typedScatters[name]
		gather := typedGathers[name]
		reduces := typedReduces[name]
		t.Run(name, func(t *testing.T) {
			w := uint64(dt.Width)
			msgs := []int{1, 1, 1}
			disp := []int{0, 1, 2}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				buf, err := pe.Malloc(w * 4)
				if err != nil {
					return err
				}
				out, err := pe.PrivateAlloc(w * 4)
				if err != nil {
					return err
				}
				val := func(k int) uint64 {
					if dt.Kind == xbrtime.KindFloat {
						return dt.FromFloat(float64(k))
					}
					return dt.Canon(uint64(k))
				}

				// Broadcast via the wrapper.
				if me == 1 {
					pe.Poke(dt, out, val(7))
				}
				if err := bcast(pe, buf, out, 1, 1, 1); err != nil {
					return err
				}
				if got := pe.Peek(dt, buf); got != val(7) {
					t.Errorf("broadcast wrapper: PE %d got %s", me, dt.FormatValue(got))
				}

				// Scatter then gather via the wrappers.
				if me == 0 {
					for i := 0; i < nPEs; i++ {
						pe.Poke(dt, out+uint64(i)*w, val(i+1))
					}
				}
				if err := scatter(pe, buf, out, msgs, disp, nPEs, 0); err != nil {
					return err
				}
				if got := pe.Peek(dt, buf); got != val(me+1) {
					t.Errorf("scatter wrapper: PE %d got %s", me, dt.FormatValue(got))
				}
				if err := gather(pe, out, buf, msgs, disp, nPEs, 2); err != nil {
					return err
				}
				if me == 2 {
					for i := 0; i < nPEs; i++ {
						if got := pe.Peek(dt, out+uint64(i)*w); got != val(i+1) {
							t.Errorf("gather wrapper elem %d: %s", i, dt.FormatValue(got))
						}
					}
				}

				// Every reduction wrapper for this type.
				for opName, reduce := range reduces {
					op := opByName(t, opName)
					pe.Poke(dt, buf, val(me+1))
					if err := reduce(pe, out, buf, 1, 1, 0); err != nil {
						return err
					}
					if me == 0 {
						want := val(1)
						for p := 1; p < nPEs; p++ {
							var err error
							want, err = Combine(dt, op, want, val(p+1))
							if err != nil {
								return err
							}
						}
						if got := pe.Peek(dt, out); got != want {
							t.Errorf("reduce_%s wrapper: got %s, want %s",
								opName, dt.FormatValue(got), dt.FormatValue(want))
						}
					}
				}
				return pe.Free(buf)
			})
		})
	}
}

func opByName(t *testing.T, name string) ReduceOp {
	t.Helper()
	for _, op := range AllReduceOps() {
		if op.String() == name {
			return op
		}
	}
	t.Fatalf("unknown reduce op %q", name)
	return 0
}

// TestEveryGeneratedExtensionWrapperDelegates drives the §7 extension
// surface — every generated xbrtime_TYPENAME_allreduce_OP,
// xbrtime_TYPENAME_reduce_scatter_OP, xbrtime_TYPENAME_allgather, and
// xbrtime_TYPENAME_alltoall wrapper — and checks each result against
// the sequential oracle (Combine/Identity over every PE's
// contribution).
func TestEveryGeneratedExtensionWrapperDelegates(t *testing.T) {
	const nPEs = 4
	if len(typedAllGathers) != 24 || len(typedAlltoalls) != 24 {
		t.Fatalf("registry sizes: allgather %d, alltoall %d, want 24 each",
			len(typedAllGathers), len(typedAlltoalls))
	}
	for regName, reg := range map[string]int{
		"allreduce":      countReduceCells(typedAllReduces),
		"reduce_scatter": countReduceCells(typedReduceScatters),
	} {
		// 24 types × 4 arithmetic ops + 21 integer types × 3 bitwise ops.
		if want := 24*4 + 21*3; reg != want {
			t.Fatalf("%s registry has %d entries, want %d", regName, reg, want)
		}
	}

	for name, allReduces := range typedAllReduces {
		name, allReduces := name, allReduces
		dt, ok := xbrtime.TypeByName(name)
		if !ok {
			t.Fatalf("registry names unknown type %q", name)
		}
		reduceScatters := typedReduceScatters[name]
		allGather := typedAllGathers[name]
		alltoall := typedAlltoalls[name]
		t.Run(name, func(t *testing.T) {
			w := uint64(dt.Width)
			msgs := []int{1, 1, 1, 1}
			disp := []int{0, 1, 2, 3}
			runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
				me := pe.MyPE()
				src, err := pe.Malloc(w * uint64(nPEs))
				if err != nil {
					return err
				}
				dest, err := pe.Malloc(w * uint64(nPEs))
				if err != nil {
					return err
				}
				val := func(k int) uint64 {
					if dt.Kind == xbrtime.KindFloat {
						return dt.FromFloat(float64(k))
					}
					return dt.Canon(uint64(k))
				}
				fold := func(op ReduceOp, contrib func(p int) uint64) (uint64, error) {
					acc := Identity(dt, op)
					for p := 0; p < nPEs; p++ {
						var err error
						if acc, err = Combine(dt, op, acc, contrib(p)); err != nil {
							return 0, err
						}
					}
					return acc, nil
				}

				// Every allreduce wrapper: the combined value must land
				// on every PE. Iterate in AllReduceOps order, not map
				// order: map iteration is randomised per goroutine, and
				// the PEs must issue the same collective sequence.
				for _, op := range AllReduceOps() {
					opName := op.String()
					allReduce, ok := allReduces[opName]
					if !ok {
						continue
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					pe.Poke(dt, src, val(me+1))
					if err := allReduce(pe, dest, src, 1, 1); err != nil {
						return err
					}
					want, err := fold(op, func(p int) uint64 { return val(p + 1) })
					if err != nil {
						return err
					}
					if got := pe.Peek(dt, dest); got != want {
						t.Errorf("allreduce_%s wrapper: PE %d got %s, want %s",
							opName, me, dt.FormatValue(got), dt.FormatValue(want))
					}
				}

				// Every reduce_scatter wrapper: with nelems == nPEs each
				// PE owns exactly global element me of the reduced
				// vector.
				for _, op := range AllReduceOps() {
					opName := op.String()
					reduceScatter, ok := reduceScatters[opName]
					if !ok {
						continue
					}
					if err := pe.Barrier(); err != nil {
						return err
					}
					for j := 0; j < nPEs; j++ {
						pe.Poke(dt, src+uint64(j)*w, val(me+j+1))
					}
					if err := reduceScatter(pe, dest, src, nPEs); err != nil {
						return err
					}
					want, err := fold(op, func(p int) uint64 { return val(p + me + 1) })
					if err != nil {
						return err
					}
					if got := pe.Peek(dt, dest); got != want {
						t.Errorf("reduce_scatter_%s wrapper: PE %d got %s, want %s",
							opName, me, dt.FormatValue(got), dt.FormatValue(want))
					}
				}

				// The allgather wrapper: every contribution lands on
				// every PE in rank order.
				if err := pe.Barrier(); err != nil {
					return err
				}
				pe.Poke(dt, src, val(me+10))
				if err := allGather(pe, dest, src, msgs, disp, nPEs); err != nil {
					return err
				}
				for p := 0; p < nPEs; p++ {
					if got := pe.Peek(dt, dest+uint64(p)*w); got != val(p+10) {
						t.Errorf("allgather wrapper: PE %d elem %d got %s, want %s",
							me, p, dt.FormatValue(got), dt.FormatValue(val(p+10)))
					}
				}

				// The alltoall wrapper: block j of src on PE i arrives
				// as block i of dest on PE j.
				if err := pe.Barrier(); err != nil {
					return err
				}
				for j := 0; j < nPEs; j++ {
					pe.Poke(dt, src+uint64(j)*w, val(1+me*nPEs+j))
				}
				if err := alltoall(pe, dest, src, 1); err != nil {
					return err
				}
				for i := 0; i < nPEs; i++ {
					if got := pe.Peek(dt, dest+uint64(i)*w); got != val(1+i*nPEs+me) {
						t.Errorf("alltoall wrapper: PE %d block %d got %s, want %s",
							me, i, dt.FormatValue(got), dt.FormatValue(val(1+i*nPEs+me)))
					}
				}
				if err := pe.Free(src); err != nil {
					return err
				}
				return pe.Free(dest)
			})
		})
	}
}

func countReduceCells[F any](reg map[string]map[string]F) int {
	n := 0
	for _, ops := range reg {
		n += len(ops)
	}
	return n
}

// TestValidForMatchesGeneratedSurface pins the no-third-state property:
// every (dtype, op) cell either has a generated wrapper in every
// reduce-kind registry AND is accepted by ReduceOp.ValidFor and
// Combine, or has no wrapper anywhere AND is rejected by both.
func TestValidForMatchesGeneratedSurface(t *testing.T) {
	type hasCell func(ty, op string) bool
	registries := map[string]hasCell{
		"reduce": func(ty, op string) bool { _, ok := typedReduces[ty][op]; return ok },
		"allreduce": func(ty, op string) bool {
			_, ok := typedAllReduces[ty][op]
			return ok
		},
		"reduce_scatter": func(ty, op string) bool {
			_, ok := typedReduceScatters[ty][op]
			return ok
		},
	}
	// Rows and columns name only the declared axes: no phantom types or
	// operators can appear in a registry.
	for regName, reg := range map[string]int{
		"reduce": len(typedReduces), "allreduce": len(typedAllReduces),
		"reduce_scatter": len(typedReduceScatters),
	} {
		if reg != len(xbrtime.Types) {
			t.Errorf("%s registry has %d rows, want %d", regName, reg, len(xbrtime.Types))
		}
	}
	for ty, ops := range typedReduces {
		if _, ok := xbrtime.TypeByName(ty); !ok {
			t.Errorf("reduce registry row %q is not a Table 1 TYPENAME", ty)
		}
		for op := range ops {
			opByName(t, op)
		}
	}

	for _, dt := range xbrtime.Types {
		for _, op := range AllReduceOps() {
			valid := op.ValidFor(dt)
			for regName, has := range registries {
				if got := has(dt.Name, op.String()); got != valid {
					t.Errorf("cell (%s, %s): %s wrapper exists=%v but ValidFor=%v — a third state",
						dt.Name, op, regName, got, valid)
				}
			}
			// Combine must agree with ValidFor cell-for-cell.
			_, err := Combine(dt, op, Identity(dt, op), Identity(dt, op))
			if (err == nil) != valid {
				t.Errorf("cell (%s, %s): Combine error=%v but ValidFor=%v",
					dt.Name, op, err, valid)
			}
		}
	}
}

// TestTypedWrapperCostParity pins the zero-overhead contract of the
// generated surface: a typed wrapper must cost exactly the same virtual
// cycles as the generic entry point it delegates to, and add zero
// allocations on the cached-plan path.
func TestTypedWrapperCostParity(t *testing.T) {
	const nPEs = 4
	dt := xbrtime.TypeInt64

	// measure runs one collective on a fresh deterministic runtime and
	// returns every PE's virtual-clock delta across the call.
	measure := func(call func(pe *xbrtime.PE, dest, src uint64) error) []uint64 {
		deltas := make([]uint64, nPEs)
		rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs, Deterministic: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.Run(func(pe *xbrtime.PE) error {
			src, err := pe.Malloc(8 * nPEs)
			if err != nil {
				return err
			}
			dest, err := pe.Malloc(8 * nPEs)
			if err != nil {
				return err
			}
			for j := 0; j < nPEs; j++ {
				pe.Poke(dt, src+uint64(j)*8, uint64(pe.MyPE()+j+1))
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			start := pe.Now()
			if err := call(pe, dest, src); err != nil {
				return err
			}
			deltas[pe.MyPE()] = pe.Now() - start
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return deltas
	}

	pairs := []struct {
		name    string
		typed   func(pe *xbrtime.PE, dest, src uint64) error
		generic func(pe *xbrtime.PE, dest, src uint64) error
	}{
		{"broadcast", func(pe *xbrtime.PE, dest, src uint64) error {
			return BroadcastInt64(pe, dest, src, nPEs, 1, 0)
		}, func(pe *xbrtime.PE, dest, src uint64) error {
			return Broadcast(pe, dt, dest, src, nPEs, 1, 0)
		}},
		{"reduce_sum", func(pe *xbrtime.PE, dest, src uint64) error {
			return ReduceSumInt64(pe, dest, src, nPEs, 1, 0)
		}, func(pe *xbrtime.PE, dest, src uint64) error {
			return Reduce(pe, dt, OpSum, dest, src, nPEs, 1, 0)
		}},
		{"allreduce_max", func(pe *xbrtime.PE, dest, src uint64) error {
			return AllReduceMaxInt64(pe, dest, src, nPEs, 1)
		}, func(pe *xbrtime.PE, dest, src uint64) error {
			return AllReduce(pe, dt, OpMax, dest, src, nPEs, 1)
		}},
		{"alltoall", func(pe *xbrtime.PE, dest, src uint64) error {
			return AlltoallInt64(pe, dest, src, 1)
		}, func(pe *xbrtime.PE, dest, src uint64) error {
			return Alltoall(pe, dt, dest, src, 1)
		}},
	}
	for _, pair := range pairs {
		typed := measure(pair.typed)
		generic := measure(pair.generic)
		for p := 0; p < nPEs; p++ {
			if typed[p] != generic[p] {
				t.Errorf("%s: PE %d typed wrapper took %d cycles, generic entry %d — wrappers must be free",
					pair.name, p, typed[p], generic[p])
			}
		}
	}

	// Zero added allocations: on a single-PE runtime the collectives run
	// on one goroutine, so AllocsPerRun can drive them directly. Warm
	// the plan cache first; steady state must allocate nothing, and the
	// wrapper must match the generic entry exactly.
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(func(pe *xbrtime.PE) error {
		src, err := pe.Malloc(8 * nPEs)
		if err != nil {
			return err
		}
		dest, err := pe.Malloc(8 * nPEs)
		if err != nil {
			return err
		}
		allocPairs := []struct {
			name           string
			typed, generic func() error
		}{
			{"broadcast",
				func() error { return BroadcastInt64(pe, dest, src, nPEs, 1, 0) },
				func() error { return Broadcast(pe, dt, dest, src, nPEs, 1, 0) }},
			{"allreduce_sum",
				func() error { return AllReduceSumInt64(pe, dest, src, nPEs, 1) },
				func() error { return AllReduce(pe, dt, OpSum, dest, src, nPEs, 1) }},
		}
		for _, pair := range allocPairs {
			for _, warm := range []func() error{pair.typed, pair.generic} {
				if err := warm(); err != nil {
					return err
				}
			}
			typed := testing.AllocsPerRun(50, func() {
				if err := pair.typed(); err != nil {
					t.Error(err)
				}
			})
			generic := testing.AllocsPerRun(50, func() {
				if err := pair.generic(); err != nil {
					t.Error(err)
				}
			})
			if typed != generic {
				t.Errorf("%s: typed wrapper allocates %v/op, generic entry %v/op",
					pair.name, typed, generic)
			}
			if typed != 0 {
				t.Errorf("%s: typed wrapper allocates %v/op on the cached-plan path, want 0",
					pair.name, typed)
			}
		}
		if err := pe.Free(src); err != nil {
			return err
		}
		return pe.Free(dest)
	}); err != nil {
		t.Fatal(err)
	}
}
