package core

import (
	"encoding/json"
	"fmt"
	"math/bits"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"xbgas/internal/fabric"
	"xbgas/internal/xbrtime"
)

// The alpha–beta cost model behind AlgoAuto. Each registered planner's
// plan is priced as a critical path — per round, the most loaded actor;
// per step, a latency term plus a per-byte term — with coefficients
// calibrated once per fabric by Calibrate (xbgas-bench -tune) and
// persisted as a JSON tuning table. The structure matters as much as
// the coefficients: a total-traffic model cannot separate the linear
// and binomial broadcasts (both move (n−1)·B bytes), but the critical
// path does — the flat algorithm serialises every byte through the
// root's port while the tree spreads rounds across actors. The per-byte
// coefficients are split by data path because the bandwidth-optimal
// plans move payload through the line-granular bulk accessors while the
// paper's plans stream element-at-a-time; the two differ by more than
// an order of magnitude and the crossover between binomial and
// ring/rabenseifner lives exactly in that gap.

// Tuning holds the calibrated machine coefficients, all in
// nanoseconds (per byte where named so). The zero value is unusable;
// start from DefaultTuning or LoadTuning.
type Tuning struct {
	// Version guards the schema of persisted tables.
	Version int `json:"version"`
	// Fabric names the fabric model the table was calibrated on.
	Fabric string `json:"fabric,omitempty"`
	// CalibratedAt is an RFC 3339 stamp of the calibration run.
	CalibratedAt string `json:"calibrated_at,omitempty"`

	// AlphaNs is the per-message cost of one remote put/get: issue
	// overhead plus fabric latency.
	AlphaNs float64 `json:"alpha_ns"`
	// BetaNsPerByte is the per-byte cost of a chunked (line-granular)
	// transfer; ElemNsPerByte of an element-at-a-time stream.
	BetaNsPerByte float64 `json:"beta_ns_per_byte"`
	ElemNsPerByte float64 `json:"elem_ns_per_byte"`
	// FlagNs is the cost of one signal/wait-flag dependency edge.
	FlagNs float64 `json:"flag_ns"`
	// BarrierNs is the per-PE cost of one world barrier.
	BarrierNs float64 `json:"barrier_ns"`
	// CopyNsPerByte / CopyElemNsPerByte price local staging copies on
	// the bulk and element paths; Combine* price reduction folds.
	CopyNsPerByte        float64 `json:"copy_ns_per_byte"`
	CopyElemNsPerByte    float64 `json:"copy_elem_ns_per_byte"`
	CombineNsPerByte     float64 `json:"combine_ns_per_byte"`
	CombineElemNsPerByte float64 `json:"combine_elem_ns_per_byte"`

	// Per-link-class transfer coefficients for grouped (Classed)
	// topologies, calibrated on the simulator's virtual clock: a 2-PE
	// fabric is built with both PEs on one node (intra) and on two
	// nodes (inter) and blocking chunked puts are timed in cycles.
	// Unlike the host-time coefficients above — which price what the
	// host pays to simulate a step — these price what the modelled
	// fabric charges for it, which is what a grouped topology's
	// makespan is made of. PlanCostShape swaps them in for the α/β of
	// put/get steps when the shape is grouped; all-zero (a v1 table)
	// disables class pricing.
	IntraAlphaNs       float64 `json:"intra_alpha_ns,omitempty"`
	IntraBetaNsPerByte float64 `json:"intra_beta_ns_per_byte,omitempty"`
	InterAlphaNs       float64 `json:"inter_alpha_ns,omitempty"`
	InterBetaNsPerByte float64 `json:"inter_beta_ns_per_byte,omitempty"`
}

// TuningVersion is the persisted-table schema version. Version 2 added
// the per-link-class coefficients.
const TuningVersion = 2

// DefaultTuningPath is where SaveTuning/LoadTuning look when given "".
const DefaultTuningPath = "docs/TUNING.json"

// DefaultTuning returns the baked-in coefficients, measured by
// Calibrate on the development machine's default fabric. Absolute
// values vary machine to machine but the ratios that drive selection —
// element vs bulk path, alpha vs per-byte — are properties of the
// simulator's cost accounting and are stable.
func DefaultTuning() Tuning {
	return Tuning{
		Version:              TuningVersion,
		Fabric:               "default",
		AlphaNs:              304,
		BetaNsPerByte:        1.28,
		ElemNsPerByte:        5.48,
		FlagNs:               60,
		BarrierNs:            344,
		CopyNsPerByte:        1.97,
		CopyElemNsPerByte:    15.5,
		CombineNsPerByte:     5.49,
		CombineElemNsPerByte: 25.5,
		IntraAlphaNs:         121,
		IntraBetaNsPerByte:   1.03,
		InterAlphaNs:         629,
		InterBetaNsPerByte:   3.55,
	}
}

var (
	tuningMu  sync.RWMutex
	tuningCur = DefaultTuning()
)

// CurrentTuning returns the tuning table selection currently prices
// against.
func CurrentTuning() Tuning {
	tuningMu.RLock()
	t := tuningCur
	tuningMu.RUnlock()
	return t
}

// SetTuning installs a tuning table and invalidates cached auto
// decisions.
func SetTuning(t Tuning) {
	tuningMu.Lock()
	tuningCur = t
	tuningMu.Unlock()
	invalidateAuto()
}

// SaveTuning writes the table as JSON to path ("" =
// DefaultTuningPath), creating parent directories as needed.
func SaveTuning(path string, t Tuning) error {
	if path == "" {
		path = DefaultTuningPath
	}
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	data, err := json.MarshalIndent(t, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// LoadTuning reads a persisted table ("" = DefaultTuningPath) and
// installs it.
func LoadTuning(path string) (Tuning, error) {
	if path == "" {
		path = DefaultTuningPath
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return Tuning{}, err
	}
	var t Tuning
	if err := json.Unmarshal(data, &t); err != nil {
		return Tuning{}, fmt.Errorf("core: parsing tuning table %s: %w", path, err)
	}
	if t.Version != TuningVersion {
		return Tuning{}, fmt.Errorf("core: tuning table %s has version %d, want %d (re-run -tune)",
			path, t.Version, TuningVersion)
	}
	SetTuning(t)
	return t, nil
}

// CostModel prices a plan for a call moving nelems elements of width
// bytes under the current tuning table. It is the projection AlgoAuto
// minimises over; exposed so -algo list and the docs' crossover tables
// can print the same numbers selection uses.
func CostModel(p *Plan, nelems, width int) float64 {
	return PlanCost(p, CurrentTuning(), nelems, width)
}

// PlanCost prices a plan under an explicit tuning table, in modelled
// nanoseconds; it is PlanCostShape over the flat shape.
func PlanCost(p *Plan, tn Tuning, nelems, width int) float64 {
	return PlanCostShape(p, tn, Shape{}, nelems, width)
}

// PlanCostShape prices a plan under an explicit tuning table and fabric
// shape, in modelled nanoseconds. Blocking plans cost the sum over
// rounds of the most loaded actor's work plus each closing barrier;
// flag-pipelined plans cost the most loaded actor's local work plus
// PipelineDepth hops of one segment each. Counts are resolved with the
// equal-block model (block v ≈ ⌈nelems/n⌉), which is exact for
// AdjChunks plans and the common uniform-vector case.
//
// On a grouped shape each put/get is priced with the per-link-class
// α/β of its endpoints' nodes (virtual-clock coefficients; see Tuning),
// evaluated in virtual-rank space — exact at the canonical root 0 and a
// rotation elsewhere. Element-path transfers keep the host element β as
// a floor: their per-element accessor cost dominates any wire rate.
// Local copy/combine/barrier terms keep the host coefficients on every
// shape.
func PlanCostShape(p *Plan, tn Tuning, sh Shape, nelems, width int) float64 {
	n := p.NPEs
	if n < 1 {
		n = 1
	}
	per, rem := nelems/n, nelems%n
	blockOf := func(v int) int {
		if v < rem {
			return per + 1
		}
		return per
	}
	adjOf := func(v int) int {
		m := v
		if m > rem {
			m = rem
		}
		return v*per + m
	}
	segs := p.Segments
	if segs < 1 {
		segs = 1
	}
	segOf := func(k int) int {
		q, r := nelems/segs, nelems%segs
		if k < r {
			return q + 1
		}
		return q
	}
	countOne := func(s *Step, cv int) int {
		switch s.Count {
		case CountBlock:
			return blockOf(cv)
		case CountSubtree:
			hi := cv + (1 << uint(s.CB))
			if hi > n {
				hi = n
			}
			return adjOf(hi) - adjOf(cv)
		case CountRun:
			hi := cv + s.CB
			if hi > n {
				hi = n
			}
			if hi <= cv {
				return 0
			}
			return adjOf(hi) - adjOf(cv)
		case CountSeg:
			return segOf(cv)
		}
		return nelems
	}
	// count is the step's total payload across its multi-block
	// expansion; msgs its message multiplicity.
	count := func(s *Step) int {
		if s.Blocks <= 1 {
			return countOne(s, s.CV)
		}
		total, cv := 0, s.CV
		for t := 0; t < s.Blocks; t++ {
			total += countOne(s, cv)
			if s.Count == CountBlock || s.Count == CountRun {
				cv += s.BStride
			}
		}
		return total
	}
	msgs := func(s *Step) float64 {
		if s.Blocks > 1 {
			return float64(s.Blocks)
		}
		return 1
	}
	bulk := p.Chunked || p.FlagWords > 0
	xferB := tn.ElemNsPerByte
	if bulk {
		xferB = tn.BetaNsPerByte
	}
	grouped := !sh.flat(n) && tn.IntraAlphaNs > 0 && tn.InterAlphaNs > 0
	// alphaBeta resolves a transfer's α/β from its endpoints' link
	// class. Virtual ranks map to nodes directly: pricing is anchored
	// at root 0, where virtual and logical ranks coincide.
	alphaBeta := func(actor, peer int) (float64, float64) {
		if !grouped || peer < 0 {
			return tn.AlphaNs, xferB
		}
		a, b := tn.IntraAlphaNs, tn.IntraBetaNsPerByte
		if actor/sh.PerNode != peer/sh.PerNode {
			a, b = tn.InterAlphaNs, tn.InterBetaNsPerByte
		}
		if !bulk && xferB > b {
			b = xferB
		}
		return a, b
	}
	copyB, combB := tn.CopyElemNsPerByte, tn.CombineElemNsPerByte
	if bulk {
		copyB, combB = tn.CopyNsPerByte, tn.CombineNsPerByte
	}
	barrier := tn.BarrierNs * float64(n)
	if grouped {
		// On a grouped shape the transfer terms are virtual-clock prices,
		// so the barrier must be too: a dissemination barrier is
		// ⌈log₂n⌉ exchange rounds with mostly cross-node partners, not
		// the host's linear-in-n goroutine turnover. Mixing the units
		// charges every round a barrier ~n/log n too large and skews
		// selection toward low-round-count plans regardless of topology.
		barrier = tn.InterAlphaNs * float64(CeilLog2(n))
	}

	if p.FlagWords > 0 {
		// Pipelined: segments stream through the dependency chain, so
		// the transfer critical path is PipelineDepth hops of one
		// segment each; local staging/folding work does not pipeline
		// away and is charged to the busiest actor in full.
		local := make([]float64, n)
		for ri := range p.Rounds {
			r := &p.Rounds[ri]
			for si := range r.Steps {
				s := &r.Steps[si]
				if s.Actor == ActorAll {
					continue
				}
				b := float64(count(s) * width)
				switch s.Kind {
				case StepCopy:
					local[s.Actor] += b * copyB
				case StepCombine:
					local[s.Actor] += b * combB
				}
			}
		}
		var l float64
		for _, v := range local {
			if v > l {
				l = v
			}
		}
		hopA := tn.AlphaNs
		if grouped {
			// Pipelined chains thread every PE, so hops cross node
			// boundaries; the inter coefficients are the safe bound.
			hopA = tn.InterAlphaNs
			if bulk {
				xferB = tn.InterBetaNsPerByte
			}
		}
		hop := hopA + tn.FlagNs + float64(segOf(0)*width)*xferB
		return l + float64(p.PipelineDepth())*hop + barrier
	}

	var total float64
	acc := make([]float64, n)
	for ri := range p.Rounds {
		r := &p.Rounds[ri]
		for i := range acc {
			acc[i] = 0
		}
		closing := false
		for si := range r.Steps {
			s := &r.Steps[si]
			if s.Actor == ActorAll {
				if s.Kind == StepBarrier {
					closing = true
				}
				continue
			}
			b := float64(count(s) * width)
			switch s.Kind {
			case StepPut:
				a, bb := alphaBeta(s.Actor, s.Peer)
				acc[s.Actor] += msgs(s)*a + b*bb
			case StepGet:
				// A get is a round trip — request out, data back — so it
				// pays the message latency twice where a put pays once.
				a, bb := alphaBeta(s.Actor, s.Peer)
				acc[s.Actor] += msgs(s)*2*a + b*bb
			case StepCopy:
				acc[s.Actor] += b * copyB
			case StepCombine:
				acc[s.Actor] += b * combB
			case StepSignal:
				acc[s.Actor] += tn.FlagNs
			}
		}
		m := 0.0
		for _, v := range acc {
			if v > m {
				m = v
			}
		}
		total += m
		if closing {
			total += barrier
		}
	}
	return total
}

// Auto-selection decision cache. Decisions are cached per
// {collective, PE count, payload log₂-bucket} — the cost curves are
// smooth enough that one decision per size doubling is safe — and the
// whole cache is invalidated when its inputs change: a new planner, a
// new tuning table, or a -chunk override (which moves the segmented
// candidates).
type autoKey struct {
	coll Collective
	n    int
	sz   int
	per  int // shape PEs-per-node; 0 = flat
}

var (
	autoGen      atomic.Uint64
	autoMu       sync.Mutex
	autoCache    = map[autoKey]Algorithm{}
	autoCacheGen uint64
)

// invalidateAuto drops every cached auto decision.
func invalidateAuto() { autoGen.Add(1) }

// SmallMessageBytes is the payload size below which auto selection
// skips the cost model for the rooted collectives and keeps the
// paper's default, the binomial tree: tiny messages are latency-bound,
// every candidate finishes within a few barrier times of every other,
// and the model's barrier-versus-alpha pricing is noisier than the
// real differences down there. The rootless collectives get the lower
// TinyMessageBytes floor instead — their bandwidth-optimal planners
// keep logarithmic depth while moving less data, so the model stays
// reliable much further down.
const SmallMessageBytes = 1024

// TinyMessageBytes is the all-reduce floor: below a cache line of
// payload the per-chunk counts round to single elements and the
// binomial reduce+broadcast's fewer synchronisation points win on
// both clocks. The other rootless collectives stay on the model even
// here — binomial allgather is a gather plus a broadcast and loses at
// every size the shallower doubling or ring forms are available.
const TinyMessageBytes = 128

// rootedColl reports whether the collective is rooted (one PE sources
// or sinks the full payload), where the binomial tree is the canonical
// small-message choice.
func rootedColl(coll Collective) bool {
	switch coll {
	case CollBroadcast, CollReduce, CollScatter, CollGather:
		return true
	}
	return false
}

// chooseAuto resolves AlgoAuto: with ≤ 2 PEs tree depth buys nothing
// and the flat algorithm's bookkeeping is cheapest (when it implements
// the collective); small payloads stay on the paper's binomial tree;
// otherwise the argmin of CostModel over the registered planners. The
// large-message scatter+all-gather broadcast stays an explicit opt-in
// — its advantage assumes bisection bandwidth the default fabric does
// not have.
func chooseAuto(coll Collective, nPEs, nelems, width int, sh Shape) Algorithm {
	if nPEs <= 2 {
		if pl, ok := LookupPlanner(AlgoLinear); ok && pl.Supports(coll) {
			return AlgoLinear
		}
	}
	small := 0
	if rootedColl(coll) {
		small = SmallMessageBytes
	} else if coll == CollAllReduce {
		small = TinyMessageBytes
	}
	if nelems*width <= small {
		if pl, ok := LookupPlanner(AlgoBinomial); ok && pl.Supports(coll) {
			return AlgoBinomial
		}
	}
	per := sh.PerNode
	if sh.flat(nPEs) {
		per = 0
	}
	sz := bits.Len(uint(nelems * width))
	key := autoKey{coll, nPEs, sz, per}
	gen := autoGen.Load()
	autoMu.Lock()
	if autoCacheGen != gen {
		autoCache = map[autoKey]Algorithm{}
		autoCacheGen = gen
	}
	if a, ok := autoCache[key]; ok {
		autoMu.Unlock()
		return a
	}
	autoMu.Unlock()
	best := cheapestPlanner(coll, nPEs, nelems, width, sh)
	autoMu.Lock()
	if autoCacheGen == gen {
		autoCache[key] = best
	}
	autoMu.Unlock()
	return best
}

// cheapestPlanner prices every registered planner that implements coll
// (each under its own segmentation choice) and returns the argmin; ties
// resolve to the alphabetically first name so decisions are stable.
// The topology-scoped planners (hierarchical, PAT) enter the candidate
// set only on a grouped shape: on flat fabrics they bring no structure
// the flat planners lack, and keeping them out preserves the flat
// decisions the 8-PE gates pin down.
func cheapestPlanner(coll Collective, nPEs, nelems, width int, sh Shape) Algorithm {
	tn := CurrentTuning()
	flat := sh.flat(nPEs)
	var best Algorithm
	var bestCost float64
	for _, name := range PlannerNames() {
		algo := Algorithm(name)
		if algo == AlgoScatterAllgather {
			continue
		}
		if flat && (algo == AlgoHier || algo == AlgoPAT) {
			continue
		}
		pl, ok := LookupPlanner(algo)
		if !ok || !pl.Supports(coll) {
			continue
		}
		seg := SelectSegments(coll, algo, nPEs, nelems, width)
		p, err := CompilePlanFor(coll, algo, nPEs, seg, sh)
		if err != nil || p == nil {
			continue
		}
		c := PlanCostShape(p, tn, sh, nelems, width)
		if best == "" || c < bestCost {
			best, bestCost = algo, c
		}
	}
	if best == "" {
		return AlgoBinomial
	}
	return best
}

// shapeOf projects a PE's fabric topology onto the planner Shape: the
// PEs-per-node grouping when the topology declares one, flat otherwise.
func shapeOf(pe *xbrtime.PE) Shape {
	return Shape{PerNode: pe.PEsPerNode()}
}

// Calibrate measures the tuning coefficients on the current build's
// default machine model: transfer alpha/beta on a 2-PE runtime
// (element-stream and chunked paths separately), local copy/combine
// costs on both data paths, the flag round-trip, and the per-PE
// barrier cost on a 4-PE runtime. It returns the table without
// installing it; callers decide whether to SetTuning/SaveTuning
// (xbgas-bench -tune does both).
func Calibrate() (Tuning, error) {
	t := Tuning{
		Version:      TuningVersion,
		Fabric:       "default",
		CalibratedAt: time.Now().UTC().Format(time.RFC3339),
	}
	const (
		elems = 1 << 15 // 256 KiB of ulongs per sample
		reps  = 4
		msgs  = 2048 // single-element messages for the alpha sample
	)
	dt := xbrtime.TypeULong
	bytes := float64(elems * dt.Width)

	// best runs f reps times and returns the fastest wall time: the
	// minimum is the least-interference estimate of the primitive cost.
	best := func(f func()) float64 {
		bestNs := 0.0
		for i := 0; i < reps; i++ {
			start := time.Now()
			f()
			ns := float64(time.Since(start).Nanoseconds())
			if i == 0 || ns < bestNs {
				bestNs = ns
			}
		}
		return bestNs
	}

	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2})
	if err != nil {
		return t, err
	}
	var calErr error
	runErr := rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(elems * uint64(dt.Width))
		if err != nil {
			return err
		}
		src, err := pe.Malloc(elems * uint64(dt.Width))
		if err != nil {
			return err
		}
		flag, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			// PE 1 is the passive one-sided target; it only has to
			// keep its symmetric heap alive until PE 0 finishes.
			return pe.Barrier()
		}
		// Per-message latency: single-element puts.
		alphaTotal := best(func() {
			for i := 0; i < msgs; i++ {
				if err := pe.Put(dt, dest, src, 1, 1, 1); err != nil {
					calErr = err
					return
				}
			}
		})
		t.AlphaNs = alphaTotal / msgs
		// Element-stream bandwidth: one large stride-1 put on the
		// historical element-at-a-time path.
		streamNs := best(func() {
			if err := pe.Put(dt, dest, src, elems, 1, 1); err != nil {
				calErr = err
			}
		})
		t.ElemNsPerByte = maxf(streamNs-t.AlphaNs, 0) / bytes
		// Chunked bandwidth: the line-granular bulk path.
		chunkNs := best(func() {
			if err := pe.PutChunk(dt, dest, src, elems, 1); err != nil {
				calErr = err
			}
		})
		t.BetaNsPerByte = maxf(chunkNs-t.AlphaNs, 0) / bytes
		// Local copies, both paths.
		t.CopyElemNsPerByte = best(func() {
			timedCopy(pe, dt, dest, src, elems, 1, 1)
		}) / bytes
		t.CopyNsPerByte = best(func() {
			pe.CopyChunk(dt, dest, src, elems)
		}) / bytes
		// Combines, both paths: the executor's fold loops verbatim.
		t.CombineElemNsPerByte = best(func() {
			for j := 0; j < elems; j++ {
				off := uint64(j * dt.Width)
				x := pe.ReadElem(dt, dest+off)
				y := pe.ReadElem(dt, src+off)
				v, err := Combine(dt, OpSum, x, y)
				if err != nil {
					calErr = err
					return
				}
				pe.WriteElem(dt, dest+off, v)
			}
		}) / bytes
		t.CombineNsPerByte = best(func() {
			xs := pe.BorrowWords(elems)
			ys := pe.BorrowWords(elems)
			pe.ReadElemsChunk(dt, dest, xs)
			pe.ReadElemsChunk(dt, src, ys)
			for j := range xs {
				v, err := Combine(dt, OpSum, xs[j], ys[j])
				if err != nil {
					calErr = err
					break
				}
				xs[j] = v
			}
			pe.WriteElemsChunk(dt, dest, xs)
			pe.ReturnWords(ys)
			pe.ReturnWords(xs)
		}) / bytes
		// Flag dependency edge: self signal + consume.
		flagTotal := best(func() {
			for i := 0; i < msgs; i++ {
				if err := pe.SignalAfter(xbrtime.Handle{}, flag, 0); err != nil {
					calErr = err
					return
				}
				if err := pe.WaitFlag(flag); err != nil {
					calErr = err
					return
				}
			}
		})
		t.FlagNs = flagTotal / msgs
		return pe.Barrier()
	})
	if runErr != nil {
		return t, runErr
	}
	if calErr != nil {
		return t, calErr
	}

	// Barrier cost on a 4-PE runtime, charged per PE: on the host every
	// PE's arrival is work, so the coefficient scales the model's
	// barrier term linearly with the PE count.
	const nBar, kBar = 4, 512
	rtb, err := xbrtime.New(xbrtime.Config{NumPEs: nBar})
	if err != nil {
		return t, err
	}
	var barNs atomic.Int64
	if err := rtb.Run(func(pe *xbrtime.PE) error {
		start := time.Now()
		for i := 0; i < kBar; i++ {
			if err := pe.Barrier(); err != nil {
				return err
			}
		}
		if pe.MyPE() == 0 {
			barNs.Store(time.Since(start).Nanoseconds())
		}
		return nil
	}); err != nil {
		return t, err
	}
	t.BarrierNs = float64(barNs.Load()) / float64(kBar*nBar)

	// Per-link-class coefficients, measured on the simulator's virtual
	// clock (cycles ≈ modelled ns): the same 2-PE transfer pattern is
	// timed with both PEs on one node and on two nodes of a grouped
	// fabric. These price what the modelled fabric charges a transfer,
	// not what the host pays to simulate it — the distinction the
	// host-time α/β above cannot make, since the host does identical
	// work either way.
	t.IntraAlphaNs, t.IntraBetaNsPerByte, err =
		classAlphaBeta(fabric.Grouped{PerNode: 2, N: 2})
	if err != nil {
		return t, err
	}
	t.InterAlphaNs, t.InterBetaNsPerByte, err =
		classAlphaBeta(fabric.Grouped{PerNode: 1, N: 2})
	if err != nil {
		return t, err
	}
	return t, nil
}

// classAlphaBeta times blocking puts between the two PEs of a 2-PE
// runtime on the given topology and reads the cost off PE 0's virtual
// clock: α from a train of single-element puts, β from one large
// chunked put with the α share subtracted.
func classAlphaBeta(topo fabric.Topology) (alpha, beta float64, err error) {
	const (
		elems = 1 << 15
		msgs  = 256
	)
	dt := xbrtime.TypeULong
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 2, Topology: topo})
	if err != nil {
		return 0, 0, err
	}
	var calErr error
	runErr := rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(elems * uint64(dt.Width))
		if err != nil {
			return err
		}
		src, err := pe.Malloc(elems * uint64(dt.Width))
		if err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return pe.Barrier()
		}
		// Warm the source lines through the hierarchy first: the wire's
		// per-byte cost is what distinguishes the link classes, and a
		// cold first pass would hide it behind identical DRAM fills.
		if err := pe.PutChunk(dt, dest, src, elems, 1); err != nil {
			calErr = err
			return pe.Barrier()
		}
		start := pe.Now()
		for i := 0; i < msgs; i++ {
			if err := pe.Put(dt, dest, src, 1, 1, 1); err != nil {
				calErr = err
				return pe.Barrier()
			}
		}
		alpha = float64(pe.Now()-start) / msgs
		start = pe.Now()
		if err := pe.PutChunk(dt, dest, src, elems, 1); err != nil {
			calErr = err
			return pe.Barrier()
		}
		chunk := float64(pe.Now() - start)
		beta = maxf(chunk-alpha, 0) / float64(elems*dt.Width)
		return pe.Barrier()
	})
	if runErr != nil {
		return 0, 0, runErr
	}
	return alpha, beta, calErr
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
