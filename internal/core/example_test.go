package core_test

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// ExampleBroadcast distributes a value from PE 1 to all four PEs with
// the binomial-tree broadcast of paper Algorithm 1.
func ExampleBroadcast() {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	var mu sync.Mutex
	var got []string
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			pe.Poke(xbrtime.TypeLong, src, 42)
		}
		if err := core.BroadcastLong(pe, dest, src, 1, 1, 1); err != nil {
			return err
		}
		mu.Lock()
		got = append(got, fmt.Sprintf("PE %d holds %d", pe.MyPE(), pe.Peek(xbrtime.TypeLong, dest)))
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(got)
	for _, line := range got {
		fmt.Println(line)
	}
	// Output:
	// PE 0 holds 42
	// PE 1 holds 42
	// PE 2 holds 42
	// PE 3 holds 42
}

// ExampleReduce sums one value per PE onto the root with the get-based
// binomial tree of paper Algorithm 2.
func ExampleReduce() {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 4})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	err = rt.Run(func(pe *xbrtime.PE) error {
		src, err := pe.Malloc(8) // must be symmetric: peers get from it
		if err != nil {
			return err
		}
		dest, err := pe.PrivateAlloc(8)
		if err != nil {
			return err
		}
		pe.Poke(xbrtime.TypeLong, src, uint64(pe.MyPE()+1))
		if err := core.ReduceSumLong(pe, dest, src, 1, 1, 0); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			fmt.Printf("sum of 1..4 = %d\n", pe.Peek(xbrtime.TypeLong, dest))
		}
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	// Output:
	// sum of 1..4 = 10
}

// ExampleScatter hands each PE its own slice of the root's array,
// then Gather reassembles it.
func ExampleScatter() {
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: 3})
	if err != nil {
		log.Fatal(err)
	}
	defer rt.Close()

	msgs := []int{1, 2, 1} // PE 1 receives two elements
	disp := []int{0, 1, 3}
	var mu sync.Mutex
	var got []string
	err = rt.Run(func(pe *xbrtime.PE) error {
		dest, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8 * 4)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			for i := 0; i < 4; i++ {
				pe.Poke(xbrtime.TypeLong, src+uint64(i*8), uint64(10*(i+1)))
			}
		}
		if err := core.ScatterLong(pe, dest, src, msgs, disp, 4, 0); err != nil {
			return err
		}
		mine := make([]uint64, msgs[pe.MyPE()])
		for i := range mine {
			mine[i] = pe.Peek(xbrtime.TypeLong, dest+uint64(i*8))
		}
		mu.Lock()
		got = append(got, fmt.Sprintf("PE %d received %v", pe.MyPE(), mine))
		mu.Unlock()
		return nil
	})
	if err != nil {
		log.Fatal(err)
	}
	sort.Strings(got)
	for _, line := range got {
		fmt.Println(line)
	}
	// Output:
	// PE 0 received [10]
	// PE 1 received [20 30]
	// PE 2 received [40]
}

// ExampleVirtualRank reproduces paper Table 2: with 7 PEs and root 4,
// the root becomes virtual rank 0.
func ExampleVirtualRank() {
	for logRank := 0; logRank < 7; logRank++ {
		fmt.Printf("log %d -> vir %d\n", logRank, core.VirtualRank(logRank, 4, 7))
	}
	// Output:
	// log 0 -> vir 3
	// log 1 -> vir 4
	// log 2 -> vir 5
	// log 3 -> vir 6
	// log 4 -> vir 0
	// log 5 -> vir 1
	// log 6 -> vir 2
}
