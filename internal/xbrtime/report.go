package xbrtime

import (
	"fmt"
	"sort"
	"strings"
)

// ratioCell renders hits/(hits+misses) as a percentage, or "-" when the
// structure saw no traffic at all — a run that never touched a cache is
// different from one that missed every access, and the seed's report
// printed both as 0.0.
func ratioCell(hits, misses uint64) string {
	total := hits + misses
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f", 100*float64(hits)/float64(total))
}

// StatsReport renders a cluster-wide summary after a run: per-PE
// communication counters and virtual clocks, per-node memory-system hit
// rates, per-NIC fabric contention, and fabric totals. When the runtime
// was built with Config.Obs and tracing enabled, the per-collective
// round breakdown is appended. Benchmarks and examples print it for
// observability; it allocates nothing on the simulation side.
func (rt *Runtime) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: %d PEs, topology %s, makespan %d cycles (%.3f ms at 1 GHz)\n",
		rt.cfg.NumPEs, rt.machine.Fabric.Topology().Name(),
		rt.MaxClock(), float64(rt.MaxClock())/1e6)

	fmt.Fprintf(&b, "%-4s %-12s %-10s %-10s %-10s %-10s %-9s\n",
		"PE", "cycles", "puts", "putElems", "gets", "getElems", "barriers")
	for _, pe := range rt.pes {
		s := pe.Stats()
		fmt.Fprintf(&b, "%-4d %-12d %-10d %-10d %-10d %-10d %-9d\n",
			pe.rank, s.Cycles, s.Puts, s.PutElems, s.Gets, s.GetElems, s.Barriers)
	}

	fmt.Fprintf(&b, "%-4s %-10s %-10s %-10s %-12s %-10s\n",
		"node", "L1 hit%", "L2 hit%", "TLB hit%", "OLB hits", "OLB miss")
	for i, n := range rt.machine.Nodes {
		l1, l2, tlb := n.Hier.L1(), n.Hier.L2(), n.Hier.TLB()
		fmt.Fprintf(&b, "%-4d %-10s %-10s %-10s %-12d %-10d\n",
			i,
			ratioCell(l1.Hits(), l1.Misses()),
			ratioCell(l2.Hits(), l2.Misses()),
			ratioCell(tlb.Hits(), tlb.Misses()),
			n.OLB.Hits(), n.OLB.Misses())
	}

	fab := rt.machine.Fabric
	fmt.Fprintf(&b, "fabric: %d messages, %d payload bytes, %d contention cycles\n",
		fab.Messages(), fab.Bytes(), fab.ContentionCycles())
	if fab.Messages() > 0 {
		if fab.ClassedTopo() {
			// Grouped/dragonfly fabrics have two distinct link classes
			// per NIC; lumping them into one row hides which class the
			// stall cycles came from.
			fmt.Fprintf(&b, "%-4s %-6s %-10s %-12s %-12s %-10s\n",
				"NIC", "class", "msgs", "bytes", "stall", "peakQueue")
			for i, s := range fab.NICStats() {
				fmt.Fprintf(&b, "%-4d %-6s %-10d %-12d %-12d %-10d\n",
					i, "intra", s.Intra.Msgs, s.Intra.Bytes, s.Intra.StallCycles, s.Intra.PeakQueue)
				fmt.Fprintf(&b, "%-4s %-6s %-10d %-12d %-12d %-10d\n",
					"", "inter", s.Inter.Msgs, s.Inter.Bytes, s.Inter.StallCycles, s.Inter.PeakQueue)
			}
		} else {
			fmt.Fprintf(&b, "%-4s %-10s %-12s %-12s %-10s\n",
				"NIC", "msgs", "bytes", "stall", "peakQueue")
			for i, s := range fab.NICStats() {
				fmt.Fprintf(&b, "%-4d %-10d %-12d %-12d %-10d\n",
					i, s.Msgs, s.Bytes, s.StallCycles, s.PeakQueue)
			}
		}
	}
	if pl := rt.plannerLine(); pl != "" {
		b.WriteString(pl)
	}
	if bd := rt.obsRun.RoundBreakdown(); bd != "" {
		b.WriteString(bd)
	}
	if cp := rt.obsRun.CriticalPathTable(); cp != "" {
		b.WriteString(cp)
	}
	return b.String()
}

// plannerLine aggregates the per-PE plan-execution tallies (see
// PE.NotePlanner) into one sorted summary line, e.g.
// "planners: broadcast/binomial x16, reduce/linear x8\n". Empty when no
// plan ran.
func (rt *Runtime) plannerLine() string {
	totals := make(map[string]uint64)
	for _, pe := range rt.pes {
		for label, n := range pe.planners {
			totals[label] += n
		}
	}
	if len(totals) == 0 {
		return ""
	}
	labels := make([]string, 0, len(totals))
	for label := range totals {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	var b strings.Builder
	b.WriteString("planners:")
	for i, label := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, " %s x%d", label, totals[label])
	}
	b.WriteByte('\n')
	return b.String()
}
