package xbrtime

import (
	"fmt"
	"strings"
)

// StatsReport renders a cluster-wide summary after a run: per-PE
// communication counters and virtual clocks, per-node memory-system hit
// rates, and fabric totals. Benchmarks and examples print it for
// observability; it allocates nothing on the simulation side.
func (rt *Runtime) StatsReport() string {
	var b strings.Builder
	fmt.Fprintf(&b, "runtime: %d PEs, topology %s, makespan %d cycles (%.3f ms at 1 GHz)\n",
		rt.cfg.NumPEs, rt.machine.Fabric.Topology().Name(),
		rt.MaxClock(), float64(rt.MaxClock())/1e6)

	fmt.Fprintf(&b, "%-4s %-12s %-10s %-10s %-10s %-10s %-9s\n",
		"PE", "cycles", "puts", "putElems", "gets", "getElems", "barriers")
	for _, pe := range rt.pes {
		s := pe.Stats()
		fmt.Fprintf(&b, "%-4d %-12d %-10d %-10d %-10d %-10d %-9d\n",
			pe.rank, s.Cycles, s.Puts, s.PutElems, s.Gets, s.GetElems, s.Barriers)
	}

	fmt.Fprintf(&b, "%-4s %-10s %-10s %-10s %-12s %-10s\n",
		"node", "L1 hit%", "L2 hit%", "TLB hit%", "OLB hits", "OLB miss")
	for i, n := range rt.machine.Nodes {
		tlb := n.Hier.TLB()
		tlbRate := 0.0
		if total := tlb.Hits() + tlb.Misses(); total > 0 {
			tlbRate = float64(tlb.Hits()) / float64(total)
		}
		fmt.Fprintf(&b, "%-4d %-10.1f %-10.1f %-10.1f %-12d %-10d\n",
			i, 100*n.Hier.L1().HitRate(), 100*n.Hier.L2().HitRate(),
			100*tlbRate, n.OLB.Hits(), n.OLB.Misses())
	}

	fab := rt.machine.Fabric
	fmt.Fprintf(&b, "fabric: %d messages, %d payload bytes, %d contention cycles\n",
		fab.Messages(), fab.Bytes(), fab.ContentionCycles())
	return b.String()
}
