package xbrtime

import "xbgas/internal/mem"

// Timed bulk local accessors: the local-memory analogue of the chunk
// transfer path (chunk.go). The element-at-a-time ReadElem/WriteElem
// model the paper's scalar load/store loops — one hierarchy touch and
// one locked access per element — and the unsegmented plans keep them.
// The bandwidth-optimal plans instead move contiguous payload the way a
// vectorised memcpy would: one touch per 64-byte cache line and one
// locked block transfer for the whole range, so the host prices a line,
// not eight element accesses. Only stride-1 payload coalesces; strided
// layouts stay on the element accessors.

// touchLines charges the hierarchy for a contiguous byte range at cache
// line granularity and returns the total cycle cost including the
// per-line issue cost.
func (pe *PE) touchLines(addr, bytes uint64, write bool) uint64 {
	first, nLines := chunkLines(addr, bytes)
	costs := pe.costs(nLines)
	pe.node.Hier.TouchRange(first, mem.LineSize, mem.LineSize, nLines, write, costs)
	var total uint64
	for _, c := range costs {
		total += c + loadCPU
	}
	return total
}

// CopyChunk copies nelems contiguous elements of type dt from src to
// dst through the timed hierarchy as line-granular bulk traffic.
// Semantically it equals nelems ReadElem/WriteElem pairs; the cost
// model differs as described above.
func (pe *PE) CopyChunk(dt DType, dst, src uint64, nelems int) {
	if nelems <= 0 {
		return
	}
	bytes := uint64(nelems) * uint64(dt.Width)
	cost := pe.touchLines(src, bytes, false)
	cost += pe.touchLines(dst, bytes, true)
	buf := pe.bytes(int(bytes))
	pe.node.LockedReadBytes(src, buf)
	pe.node.LockedWriteBytes(dst, buf)
	pe.Advance(cost)
}

// ReadElemsChunk performs a timed bulk read of len(dst) contiguous
// elements into canonical values, touching the hierarchy once per cache
// line.
func (pe *PE) ReadElemsChunk(dt DType, addr uint64, dst []uint64) {
	if len(dst) == 0 {
		return
	}
	bytes := uint64(len(dst)) * uint64(dt.Width)
	cost := pe.touchLines(addr, bytes, false)
	pe.node.LockedReadElems(addr, dt.Width, uint64(dt.Width), len(dst), dst)
	dt.canonElems(dst)
	pe.Advance(cost)
}

// WriteElemsChunk performs a timed bulk write of len(src) canonical
// elements, touching the hierarchy once per cache line.
func (pe *PE) WriteElemsChunk(dt DType, addr uint64, src []uint64) {
	if len(src) == 0 {
		return
	}
	bytes := uint64(len(src)) * uint64(dt.Width)
	cost := pe.touchLines(addr, bytes, true)
	masked := pe.elems(len(src))
	dt.maskElems(masked, src)
	pe.node.LockedWriteElems(addr, dt.Width, uint64(dt.Width), len(src), masked)
	pe.Advance(cost)
}

// PutChunk is the blocking form of PutChunkNB: it streams nelems
// contiguous elements to PE target as line-granular bulk packets and
// waits for delivery.
func (pe *PE) PutChunk(dt DType, dest, src uint64, nelems, target int) error {
	h, err := pe.PutChunkNB(dt, dest, src, nelems, target)
	if err != nil {
		return err
	}
	pe.Wait(h)
	return nil
}

// BorrowWords returns a []uint64 of length n from the PE's host
// workspace pool (contents unspecified); pair each borrow with
// ReturnWords. The bulk combine path uses it for the per-peer partial
// buffers, so steady-state reductions allocate nothing.
func (pe *PE) BorrowWords(n int) []uint64 {
	pe.wordsOut++
	if k := len(pe.wordPool); k > 0 {
		s := pe.wordPool[k-1]
		pe.wordPool = pe.wordPool[:k-1]
		if cap(s) < n {
			return make([]uint64, n)
		}
		return s[:n]
	}
	return make([]uint64, n)
}

// ReturnWords gives a slice from BorrowWords back to the pool.
func (pe *PE) ReturnWords(s []uint64) {
	pe.wordsOut--
	pe.wordPool = append(pe.wordPool, s)
}
