package xbrtime

import "sync"

// Lockstep execution (Config.Deterministic).
//
// The windowed fabric booking is insensitive to host scheduling up to
// congestion-window granularity, but *within* a window the queueing
// delay a message sees depends on how much service was booked before
// it — and free-running PE goroutines book in host arrival order. For
// exactly reproducible cycle totals the runtime therefore offers a
// lockstep mode: a single execution token circulates among the PEs,
// and at every point where a PE is about to touch shared simulation
// state (a remote transfer, a barrier signal) it re-queues and the
// token goes to the runnable PE with the smallest virtual clock
// (ties to the lowest rank). Every instruction of the PE functions
// executes while holding the token, so the interleaving — and with it
// every booking, every value, every statistic — is a pure function of
// the program, independent of GOMAXPROCS and goroutine scheduling.
//
// PE states. A PE is ready (wants the token), running (holds it),
// blocked (asleep inside a barrier; the token moves on without it),
// or done.
const (
	lsReady uint8 = iota
	lsRunning
	lsBlocked
	lsDone
)

// lockstep is the token scheduler. One instance serves one Run call.
type lockstep struct {
	mu    sync.Mutex
	cond  *sync.Cond
	state []uint8
	clock []uint64
}

// newLockstep creates a scheduler with every PE ready at the given
// clocks, so the choice of the first PE to run is already determined
// before any goroutine is spawned.
func newLockstep(clocks []uint64) *lockstep {
	ls := &lockstep{
		state: make([]uint8, len(clocks)),
		clock: append([]uint64(nil), clocks...),
	}
	ls.cond = sync.NewCond(&ls.mu)
	return ls
}

// chosen reports whether rank should run next: nobody is running and
// rank is the ready PE with the smallest (clock, rank). Callers hold
// ls.mu.
func (ls *lockstep) chosen(rank int) bool {
	best := -1
	for r, st := range ls.state {
		switch st {
		case lsRunning:
			return false
		case lsReady:
			if best == -1 || ls.clock[r] < ls.clock[best] {
				best = r
			}
		}
	}
	return best == rank
}

// waitTurn parks until rank is chosen, then marks it running.
func (ls *lockstep) waitTurn(rank int) {
	ls.mu.Lock()
	for !ls.chosen(rank) {
		ls.cond.Wait()
	}
	ls.state[rank] = lsRunning
	ls.mu.Unlock()
}

// start hands the token to rank for the first time (the PE was marked
// ready by the constructor).
func (ls *lockstep) start(rank int) { ls.waitTurn(rank) }

// yield re-queues rank at the given clock and waits until it is chosen
// again. PEs call it immediately before booking shared resources so
// bookings happen in virtual-clock order.
func (ls *lockstep) yield(rank int, clock uint64) {
	ls.mu.Lock()
	ls.state[rank] = lsReady
	ls.clock[rank] = clock
	ls.cond.Broadcast()
	for !ls.chosen(rank) {
		ls.cond.Wait()
	}
	ls.state[rank] = lsRunning
	ls.mu.Unlock()
}

// block releases the token without re-queuing: the PE is about to
// sleep on a barrier condition and cannot run until a peer wakes it.
// The clock is recorded so the waker can compute the resume clock.
// block never waits, so it is safe to call with other locks held.
func (ls *lockstep) block(rank int, clock uint64) {
	ls.mu.Lock()
	ls.state[rank] = lsBlocked
	ls.clock[rank] = clock
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// wake marks a blocked PE ready at its resume clock (its blocked clock
// advanced to at least at). The *waker* calls it, while holding the
// token, at the moment it satisfies the wakee's wait condition — if the
// scheduler instead learned about the wakeup only when the wakee's
// goroutine got around to re-queuing itself, the token could visit a
// later-clocked PE in the meantime and the booking order would depend
// on host scheduling. No-op unless the PE is actually blocked.
func (ls *lockstep) wake(rank int, at uint64) {
	ls.mu.Lock()
	if ls.state[rank] == lsBlocked {
		ls.state[rank] = lsReady
		if ls.clock[rank] < at {
			ls.clock[rank] = at
		}
		ls.cond.Broadcast()
	}
	ls.mu.Unlock()
}

// unblock re-queues a blocked PE at the given clock and waits for its
// turn. Callers must not hold other locks.
func (ls *lockstep) unblock(rank int, clock uint64) { ls.yield(rank, clock) }

// done retires rank permanently.
func (ls *lockstep) done(rank int) {
	ls.mu.Lock()
	ls.state[rank] = lsDone
	ls.cond.Broadcast()
	ls.mu.Unlock()
}

// lsYield re-queues the PE at its current clock if lockstep mode is
// active; otherwise it is free.
func (pe *PE) lsYield() {
	if ls := pe.rt.ls; ls != nil {
		ls.yield(pe.rank, pe.clock)
	}
}

// lsBlock releases the execution token before the PE sleeps on a
// barrier condition. Safe to call with the barrier lock held.
func (pe *PE) lsBlock() {
	if ls := pe.rt.ls; ls != nil {
		ls.block(pe.rank, pe.clock)
	}
}

// lsWake re-queues a blocked peer at its resume clock. The caller holds
// the execution token and has just satisfied the peer's wait condition.
func (pe *PE) lsWake(rank int, at uint64) {
	if ls := pe.rt.ls; ls != nil {
		ls.wake(rank, at)
	}
}

// lsUnblock reacquires the execution token after a barrier wakeup.
// Must be called without the barrier lock held.
func (pe *PE) lsUnblock() {
	if ls := pe.rt.ls; ls != nil {
		ls.unblock(pe.rank, pe.clock)
	}
}
