package xbrtime

import (
	"fmt"
	"math"
)

// Kind classifies a data type's arithmetic behaviour.
type Kind uint8

// Data-type kinds.
const (
	KindInt   Kind = iota // sign-extended two's-complement
	KindUint              // zero-extended unsigned
	KindFloat             // IEEE-754 binary32/binary64
)

// DType describes one of the matched type names of paper Table 1. Name
// is the TYPENAME used in the C function calls; CName the C TYPE; Width
// the element width in bytes of the Go representation.
type DType struct {
	Name  string
	CName string
	Width int
	Kind  Kind
}

// The 24 matched type names of paper Table 1, in table order.
//
// Go has no distinct long double; the runtime represents TypeLongDouble
// as a 64-bit IEEE double (the substitution is recorded in DESIGN.md).
// Aliased C types (e.g. long / long long / int64_t) intentionally map to
// the same Go width, exactly as they do on the paper's RV64 target.
var (
	TypeFloat      = DType{"float", "float", 4, KindFloat}
	TypeDouble     = DType{"double", "double", 8, KindFloat}
	TypeLongDouble = DType{"longdouble", "long double", 8, KindFloat}
	TypeChar       = DType{"char", "char", 1, KindInt}
	TypeUChar      = DType{"uchar", "unsigned char", 1, KindUint}
	TypeSChar      = DType{"schar", "signed char", 1, KindInt}
	TypeUShort     = DType{"ushort", "unsigned short", 2, KindUint}
	TypeShort      = DType{"short", "short", 2, KindInt}
	TypeUInt       = DType{"uint", "unsigned int", 4, KindUint}
	TypeInt        = DType{"int", "int", 4, KindInt}
	TypeULong      = DType{"ulong", "unsigned long", 8, KindUint}
	TypeLong       = DType{"long", "long", 8, KindInt}
	TypeULongLong  = DType{"ulonglong", "unsigned long long", 8, KindUint}
	TypeLongLong   = DType{"longlong", "long long", 8, KindInt}
	TypeUint8      = DType{"uint8", "uint8_t", 1, KindUint}
	TypeInt8       = DType{"int8", "int8_t", 1, KindInt}
	TypeUint16     = DType{"uint16", "uint16_t", 2, KindUint}
	TypeInt16      = DType{"int16", "int16_t", 2, KindInt}
	TypeUint32     = DType{"uint32", "uint32_t", 4, KindUint}
	TypeInt32      = DType{"int32", "int32_t", 4, KindInt}
	TypeUint64     = DType{"uint64", "uint64_t", 8, KindUint}
	TypeInt64      = DType{"int64", "int64_t", 8, KindInt}
	TypeSize       = DType{"size", "size_t", 8, KindUint}
	TypePtrdiff    = DType{"ptrdiff", "ptrdiff_t", 8, KindInt}
)

// Types lists the full Table 1 surface in table order.
var Types = []DType{
	TypeFloat, TypeDouble, TypeLongDouble,
	TypeChar, TypeUChar, TypeSChar,
	TypeUShort, TypeShort,
	TypeUInt, TypeInt,
	TypeULong, TypeLong,
	TypeULongLong, TypeLongLong,
	TypeUint8, TypeInt8,
	TypeUint16, TypeInt16,
	TypeUint32, TypeInt32,
	TypeUint64, TypeInt64,
	TypeSize, TypePtrdiff,
}

// TypeByName returns the DType with the given TYPENAME.
func TypeByName(name string) (DType, bool) {
	for _, dt := range Types {
		if dt.Name == name {
			return dt, true
		}
	}
	return DType{}, false
}

// Valid reports whether the descriptor is one of the supported shapes.
func (dt DType) Valid() bool {
	switch dt.Width {
	case 1, 2, 4, 8:
	default:
		return false
	}
	if dt.Kind == KindFloat && dt.Width < 4 {
		return false
	}
	return true
}

// String returns the TYPENAME.
func (dt DType) String() string { return dt.Name }

// mask returns the width mask (all ones in the low Width*8 bits).
func (dt DType) mask() uint64 {
	if dt.Width == 8 {
		return ^uint64(0)
	}
	return 1<<(8*dt.Width) - 1
}

// Canon canonicalises a raw little-endian value to the type's natural
// in-register representation: sign-extended for KindInt, zero-extended
// for KindUint, raw IEEE bits for KindFloat.
func (dt DType) Canon(raw uint64) uint64 {
	raw &= dt.mask()
	if dt.Kind == KindInt && dt.Width < 8 {
		shift := uint(64 - 8*dt.Width)
		return uint64(int64(raw<<shift) >> shift)
	}
	return raw
}

// Float converts a canonical value to float64 (KindFloat only).
func (dt DType) Float(canon uint64) float64 {
	if dt.Width == 4 {
		return float64(math.Float32frombits(uint32(canon)))
	}
	return math.Float64frombits(canon)
}

// FromFloat converts a float64 to the type's raw representation.
func (dt DType) FromFloat(f float64) uint64 {
	if dt.Width == 4 {
		return uint64(math.Float32bits(float32(f)))
	}
	return math.Float64bits(f)
}

// FromInt converts an integer to the type's raw representation,
// truncating to the element width.
func (dt DType) FromInt(v int64) uint64 { return uint64(v) & dt.mask() }

// FormatValue renders a canonical value for reports and traces.
func (dt DType) FormatValue(canon uint64) string {
	switch dt.Kind {
	case KindFloat:
		return fmt.Sprintf("%g", dt.Float(canon))
	case KindInt:
		return fmt.Sprintf("%d", int64(canon))
	default:
		return fmt.Sprintf("%d", canon)
	}
}
