package xbrtime

import (
	"sync"
)

// BarrierAlgorithm selects the world-barrier implementation.
type BarrierAlgorithm uint8

// Barrier algorithms.
const (
	// BarrierCentral is the paper's "simple barrier": arrivals gather
	// at PE 0, which releases the group (default).
	BarrierCentral BarrierAlgorithm = iota
	// BarrierDissemination is the classic ⌈log₂N⌉-round dissemination
	// barrier: in round k every PE signals the peer 2^k ranks ahead and
	// waits for the peer 2^k ranks behind. No central bottleneck; an
	// ablation benchmark compares the two.
	BarrierDissemination
)

// String names the algorithm.
func (a BarrierAlgorithm) String() string {
	switch a {
	case BarrierCentral:
		return "central"
	case BarrierDissemination:
		return "dissemination"
	}
	return "unknown"
}

// dissemKey identifies one rendezvous slot: the receiver's rank and
// barrier epoch plus the round.
type dissemKey struct {
	epoch uint64
	round int
	dst   int
}

// dissemState carries the rendezvous slots of the dissemination
// barrier. Senders post their signal's arrival time; receivers wait for
// their slot and consume it.
type dissemState struct {
	mu     sync.Mutex
	cond   *sync.Cond
	slots  map[dissemKey]uint64
	broken bool
	// waiting records, per blocked PE, the exact slot it sleeps on, so
	// in lockstep mode the sender that fills the slot can re-queue the
	// sleeper with the scheduler immediately (see lockstep.wake).
	waiting map[int]dissemKey
}

func newDissemState() *dissemState {
	d := &dissemState{
		slots:   make(map[dissemKey]uint64),
		waiting: make(map[int]dissemKey),
	}
	d.cond = sync.NewCond(&d.mu)
	return d
}

func (d *dissemState) breakBarrier() {
	d.mu.Lock()
	d.broken = true
	d.cond.Broadcast()
	d.mu.Unlock()
}

// dissemBarrier runs one dissemination barrier for pe.
func (pe *PE) dissemBarrier() error {
	d := pe.rt.dissem
	n := pe.rt.cfg.NumPEs
	fab := pe.rt.machine.Fabric

	rounds := 0
	for (1 << rounds) < n {
		rounds++
	}
	epoch := pe.dissemEpoch
	pe.dissemEpoch++

	for k := 0; k < rounds; k++ {
		dst := (pe.rank + (1 << k)) % n
		// In lockstep mode each round's signal books in clock order.
		pe.lsYield()
		arrive, err := fab.Send(pe.rank, dst, 8, pe.clock)
		if err != nil {
			return err
		}
		d.mu.Lock()
		key := dissemKey{epoch, k, dst}
		d.slots[key] = arrive
		if wk, ok := d.waiting[dst]; ok && wk == key {
			// The peer sleeps on exactly this slot: re-queue it with the
			// lockstep scheduler at its resume clock before moving on.
			delete(d.waiting, dst)
			pe.lsWake(dst, arrive)
		}
		d.cond.Broadcast()
		// Wait for the signal addressed to us in this round and epoch.
		me := dissemKey{epoch, k, pe.rank}
		blocked := false
		for {
			if d.broken {
				delete(d.waiting, pe.rank)
				d.mu.Unlock()
				if blocked {
					pe.lsUnblock()
				}
				return ErrBarrierBroken
			}
			if t, ok := d.slots[me]; ok {
				delete(d.slots, me)
				delete(d.waiting, pe.rank)
				d.mu.Unlock()
				pe.advanceTo(t)
				if blocked {
					pe.lsUnblock()
				}
				break
			}
			if !blocked {
				// Hand the execution token back before sleeping; record
				// which slot we sleep on so the sender can wake us.
				d.waiting[pe.rank] = me
				pe.lsBlock()
				blocked = true
			}
			d.cond.Wait()
		}
	}
	return nil
}
