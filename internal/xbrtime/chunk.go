package xbrtime

import (
	"xbgas/internal/fabric"
	"xbgas/internal/mem"
)

// Chunk transfers: the bulk data path of the segmented plan executor.
//
// The element-at-a-time Put/Get model the paper's xBGAS stubs — a
// scalar load, a remote store, one fabric message per element, with
// an 8-byte address header on every element. That is the right model
// for the paper's whole-message rounds, and the unsegmented plans keep
// it. The pipelined executor instead moves each segment as one bulk
// stream, the way a chunked protocol engine would: contiguous payload
// is fetched line-by-line from the hierarchy (one touch per 64-byte
// line, not per element) and injected as line-sized packets, so the
// per-element header and issue overhead disappear and the host prices
// one cache line, not eight element loads. Strided segments fall back
// to the element stream — only stride-1 payload coalesces into lines.

// chunkHeaderBytes is the per-packet address/command header of the
// bulk stream (one header per line instead of one per element).
const chunkHeaderBytes = 8

// chunkLines returns the first line-aligned address covering
// [addr, addr+bytes) and the number of cache lines it spans.
func chunkLines(addr, bytes uint64) (first uint64, n int) {
	first = addr &^ uint64(mem.LineSize-1)
	n = int((addr + bytes - first + mem.LineSize - 1) / mem.LineSize)
	return first, n
}

// PutChunkNB streams nelems contiguous elements of type dt from local
// address src to dest on PE target as line-granular bulk packets and
// returns without waiting for delivery. Semantically it equals
// PutNB(dt, dest, src, nelems, 1, target); the cost model differs as
// described above. Degenerate and diagnostic paths (self target, the
// Spike transport, Config.ReferencePath) delegate to the element
// stream.
func (pe *PE) PutChunkNB(dt DType, dest, src uint64, nelems, target int) (Handle, error) {
	if err := checkTransfer(dt, nelems, 1); err != nil {
		return Handle{}, err
	}
	if err := pe.checkTarget(target); err != nil {
		return Handle{}, err
	}
	if nelems == 0 {
		return Handle{}, nil
	}
	if target == pe.rank || pe.rt.cfg.Transport == TransportSpike || pe.rt.cfg.ReferencePath {
		return pe.put(dt, dest, src, nelems, 1, target, true)
	}
	start := pe.clock
	pe.puts++
	pe.putElems += uint64(nelems)
	pe.traceComm("put", target, nelems)
	pe.lsYield()

	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	bytes := uint64(nelems) * uint64(dt.Width)
	first, nLines := chunkLines(src, bytes)
	costs := pe.costs(nLines)
	pe.node.Hier.TouchRange(first, mem.LineSize, mem.LineSize, nLines, false, costs)
	for i := range costs {
		costs[i] += loadCPU
	}

	gap := issueGap(fab.Config())
	endIssue, lastArrive, err := fab.SendStream(fabric.Stream{
		Src:        pe.rank,
		Dst:        target,
		ElemBytes:  chunkHeaderBytes + mem.LineSize,
		Start:      pe.clock,
		PreCost:    costs,
		Gap:        gap,
		FlowWindow: uint64(pe.rt.cfg.InflightDepth) * gap,
		Unrolled:   true,
	})
	if err != nil {
		return Handle{}, err
	}
	buf := pe.bytes(int(bytes))
	pe.node.LockedReadBytes(src, buf)
	targetNode.LockedWriteBytes(dest, buf)
	pe.advanceTo(endIssue)
	h := Handle{completeAt: lastArrive, active: true}
	if pe.ObsEnabled() {
		pe.obsTransfer(true, start, h.completeAt, target, nelems)
	}
	return h, nil
}

// GetChunk pulls nelems contiguous elements of type dt from address
// src on PE target into local dest as line-granular bulk fetches and
// blocks until the data has landed. Semantically it equals
// Get(dt, dest, src, nelems, 1, target) with the chunk cost model.
func (pe *PE) GetChunk(dt DType, dest, src uint64, nelems, target int) error {
	h, err := pe.getChunkNB(dt, dest, src, nelems, target)
	if err != nil {
		return err
	}
	pe.Wait(h)
	return nil
}

func (pe *PE) getChunkNB(dt DType, dest, src uint64, nelems, target int) (Handle, error) {
	if err := checkTransfer(dt, nelems, 1); err != nil {
		return Handle{}, err
	}
	if err := pe.checkTarget(target); err != nil {
		return Handle{}, err
	}
	if nelems == 0 {
		return Handle{}, nil
	}
	if target == pe.rank || pe.rt.cfg.Transport == TransportSpike || pe.rt.cfg.ReferencePath {
		return pe.get(dt, dest, src, nelems, 1, target, true)
	}
	start := pe.clock
	pe.gets++
	pe.getElems += uint64(nelems)
	pe.traceComm("get", target, nelems)
	pe.lsYield()

	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	bytes := uint64(nelems) * uint64(dt.Width)
	first, nLines := chunkLines(dest, bytes)
	costs := pe.costs(nLines)
	pe.node.Hier.TouchRange(first, mem.LineSize, mem.LineSize, nLines, true, costs)

	gap := issueGap(fab.Config())
	endIssue, lastDone, err := fab.FetchStream(fabric.Fetch{
		Src:        pe.rank,
		Dst:        target,
		ReqBytes:   chunkHeaderBytes,
		RespBytes:  chunkHeaderBytes + mem.LineSize,
		Start:      pe.clock,
		ReqCost:    loadCPU,
		PostCost:   costs,
		Gap:        gap,
		FlowWindow: uint64(pe.rt.cfg.InflightDepth) * gap,
		Unrolled:   true,
	})
	if err != nil {
		return Handle{}, err
	}
	buf := pe.bytes(int(bytes))
	targetNode.LockedReadBytes(src, buf)
	pe.node.LockedWriteBytes(dest, buf)
	pe.advanceTo(endIssue)
	h := Handle{completeAt: lastDone, active: true}
	if pe.ObsEnabled() {
		pe.obsTransfer(false, start, h.completeAt, target, nelems)
	}
	return h, nil
}
