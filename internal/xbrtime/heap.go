package xbrtime

import (
	"fmt"
	"sort"
)

// heapAlign is the allocation granularity of the symmetric heap.
const heapAlign = 16

// span is a free region [addr, addr+size).
type span struct {
	addr, size uint64
}

// heap is a deterministic first-fit allocator. Every PE runs its own
// instance over identical initial state, so identical call sequences
// yield identical offsets on every PE — that is how the runtime keeps
// the shared data segment "fully symmetric with that of its peers"
// (paper §3.3) without any communication, the same trick used by the
// SHMEM-style symmetric heaps the paper builds on.
type heap struct {
	base, size uint64
	free       []span            // sorted by address
	allocs     map[uint64]uint64 // live allocation -> size
	inUse      uint64
}

func newHeap(base, size uint64) *heap {
	return &heap{
		base:   base,
		size:   size,
		free:   []span{{base, size}},
		allocs: make(map[uint64]uint64),
	}
}

func alignUp(n uint64) uint64 {
	return (n + heapAlign - 1) &^ (heapAlign - 1)
}

// alloc reserves n bytes and returns the address.
func (h *heap) alloc(n uint64) (uint64, error) {
	if n == 0 {
		return 0, fmt.Errorf("xbrtime: zero-byte allocation")
	}
	n = alignUp(n)
	for i, s := range h.free {
		if s.size < n {
			continue
		}
		addr := s.addr
		if s.size == n {
			h.free = append(h.free[:i], h.free[i+1:]...)
		} else {
			h.free[i] = span{s.addr + n, s.size - n}
		}
		h.allocs[addr] = n
		h.inUse += n
		return addr, nil
	}
	return 0, fmt.Errorf("xbrtime: symmetric heap exhausted (want %d bytes, %d in use of %d)",
		n, h.inUse, h.size)
}

// release frees a previous allocation, coalescing adjacent free spans.
func (h *heap) release(addr uint64) error {
	n, ok := h.allocs[addr]
	if !ok {
		return fmt.Errorf("xbrtime: free of unallocated address %#x", addr)
	}
	delete(h.allocs, addr)
	h.inUse -= n
	i := sort.Search(len(h.free), func(i int) bool { return h.free[i].addr >= addr })
	h.free = append(h.free, span{})
	copy(h.free[i+1:], h.free[i:])
	h.free[i] = span{addr, n}
	// Coalesce with successor, then predecessor.
	if i+1 < len(h.free) && h.free[i].addr+h.free[i].size == h.free[i+1].addr {
		h.free[i].size += h.free[i+1].size
		h.free = append(h.free[:i+1], h.free[i+2:]...)
	}
	if i > 0 && h.free[i-1].addr+h.free[i-1].size == h.free[i].addr {
		h.free[i-1].size += h.free[i].size
		h.free = append(h.free[:i], h.free[i+1:]...)
	}
	return nil
}

// used returns the number of bytes currently allocated.
func (h *heap) used() uint64 { return h.inUse }

// liveAllocs returns the live allocations sorted by address, for the
// Figure 2 segment-map rendering.
func (h *heap) liveAllocs() []span {
	out := make([]span, 0, len(h.allocs))
	for a, n := range h.allocs {
		out = append(out, span{a, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].addr < out[j].addr })
	return out
}
