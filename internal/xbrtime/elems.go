package xbrtime

import "math/bits"

// Element canonicalise/mask kernels. memaccess.go (PeekElems,
// PokeElems) and bulk.go (ReadElemsChunk, WriteElemsChunk) each used to
// hand-roll the same two loops — canonicalise raw little-endian words
// after a bulk load, width-mask canonical words before a bulk store —
// with a per-element Kind/Width branch inside. One generic body per
// direction, instantiated from the kind × width table below, replaces
// all of them: the conversion through the width type T truncates,
// then sign- or zero-extends, in a single monomorphic loop.

// canonElemsAs canonicalises raw elements in place: the T conversion
// truncates to the element width, and the int64 round trip extends —
// sign-extending for signed T, zero-extending for unsigned T.
func canonElemsAs[T int8 | int16 | int32 | int64 | uint8 | uint16 | uint32 | uint64](s []uint64) {
	for i, raw := range s {
		s[i] = uint64(int64(T(raw)))
	}
}

// maskElemsAs width-masks canonical values into dst (dst and src may
// alias).
func maskElemsAs[T uint8 | uint16 | uint32 | uint64](dst, src []uint64) {
	for i, v := range src {
		dst[i] = uint64(T(v))
	}
}

// elemKernel pairs the two directions for one (kind, width) cell.
type elemKernel struct {
	canon func([]uint64)          // raw → canonical, in place
	mask  func(dst, src []uint64) // canonical → width-masked raw
}

// Width-indexed (log2 of the byte width) kernel tables. Unsigned and
// floating-point types share the zero-extending column: a float's
// canonical form is its raw IEEE bits.
var (
	signedKernels = [4]elemKernel{
		{canonElemsAs[int8], maskElemsAs[uint8]},
		{canonElemsAs[int16], maskElemsAs[uint16]},
		{canonElemsAs[int32], maskElemsAs[uint32]},
		{canonElemsAs[int64], maskElemsAs[uint64]},
	}
	unsignedKernels = [4]elemKernel{
		{canonElemsAs[uint8], maskElemsAs[uint8]},
		{canonElemsAs[uint16], maskElemsAs[uint16]},
		{canonElemsAs[uint32], maskElemsAs[uint32]},
		{canonElemsAs[uint64], maskElemsAs[uint64]},
	}
)

// kernel selects the (kind, width) cell for dt.
func (dt DType) kernel() elemKernel {
	w := bits.TrailingZeros8(uint8(dt.Width)) // 1,2,4,8 → 0..3
	if dt.Kind == KindInt {
		return signedKernels[w]
	}
	return unsignedKernels[w]
}

// canonElems canonicalises a freshly loaded raw slice in place;
// element i ends up as dt.Canon of its raw value.
func (dt DType) canonElems(s []uint64) { dt.kernel().canon(s) }

// maskElems writes the width-masked raw image of src into dst, the
// store-side inverse of canonElems.
func (dt DType) maskElems(dst, src []uint64) { dt.kernel().mask(dst, src) }
