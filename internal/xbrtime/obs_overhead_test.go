package xbrtime

import "testing"

// The overhead guard promised in docs/OBSERVABILITY.md: with no
// recorder in Config.Obs every instrumentation site must reduce to a
// single nil test, so the put/get and barrier hot paths stay at
// 0 allocs/op exactly as before the observability layer existed.

func TestDisabledObsPutGetZeroAllocs(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2})
	defer rt.Close()
	pe := rt.PE(0)
	const nelems = 64
	buf, err := pe.Malloc(8 * nelems * 2)
	if err != nil {
		t.Fatal(err)
	}
	src, dst := buf, buf+8*nelems
	if err := pe.Put(TypeULong, dst, src, nelems, 1, 1); err != nil {
		t.Fatal(err) // warm-up: fault in any lazy state before counting
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := pe.Put(TypeULong, dst, src, nelems, 1, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("put with obs disabled: %.1f allocs/op, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(200, func() {
		if err := pe.Get(TypeULong, dst, src, nelems, 1, 1); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("get with obs disabled: %.1f allocs/op, want 0", allocs)
	}
}

func TestDisabledObsBarrierZeroAllocs(t *testing.T) {
	// A single-PE runtime lets one goroutine drive the barrier entry
	// point (and its ObsEnabled guard) without SPMD partners.
	rt := MustNew(Config{NumPEs: 1})
	defer rt.Close()
	pe := rt.PE(0)
	if err := pe.Barrier(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := pe.Barrier(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("barrier with obs disabled: %.1f allocs/op, want 0", allocs)
	}
}
