package xbrtime

import (
	"fmt"
	"sync"

	"xbgas/internal/fabric"
	"xbgas/internal/mem"
	"xbgas/internal/obs"
	"xbgas/internal/sim"
)

// Memory-map constants shared by every simulated node. Programs loaded
// by the Spike transport live below StackTop; the private and shared
// segments sit above it (Figure 2 of the paper: each PE has a private
// segment and a symmetric shared segment).
const (
	// PrivateBase is the start of the per-PE private data segment.
	PrivateBase uint64 = 0x0050_0000
	// DefaultPrivateSize is the default private segment size.
	DefaultPrivateSize uint64 = 8 << 20
	// SharedBase is the start of the symmetric shared segment. The
	// offset of an allocation from SharedBase is identical on all PEs.
	SharedBase uint64 = 0x0100_0000
	// DefaultSharedSize is the default symmetric segment size.
	DefaultSharedSize uint64 = 48 << 20
	// ClockHz is the nominal core clock used to convert cycles to
	// seconds in reports (1 GHz: 1 cycle = 1 ns).
	ClockHz = 1_000_000_000
)

// DefaultUnrollThreshold is the nelems threshold at or above which the
// put/get inner loops switch to the unrolled (pipelined) form, per the
// implementation note in paper §3.3.
const DefaultUnrollThreshold = 8

// DefaultInflightDepth is the default flow-control window for pipelined
// element transfers (see Config.InflightDepth).
const DefaultInflightDepth = 16

// Transport selects how put/get move bytes.
type Transport uint8

// Transports.
const (
	// TransportNative performs transfers directly in Go with the cycle
	// cost model. It is the default and the fast path for benchmarks.
	TransportNative Transport = iota
	// TransportSpike generates the xBGAS instruction sequence for every
	// transfer and executes it on an internal/sim core, exercising the
	// full ISA path (decode, OLB, e-registers).
	TransportSpike
)

// Config parameterises a runtime instance.
type Config struct {
	// NumPEs is the number of processing elements. Required.
	NumPEs int
	// SharedSize overrides the symmetric segment size (0 = default).
	SharedSize uint64
	// PrivateSize overrides the private segment size (0 = default).
	PrivateSize uint64
	// Mem overrides the per-node memory geometry (zero value = paper
	// defaults: 256-entry TLB, 16KB/8-way L1, 8MB/8-way L2).
	Mem mem.Config
	// Topology overrides the network topology (nil = fully connected).
	Topology fabric.Topology
	// TopoSpec names a topology by spec string ("torus:32x32",
	// "grouped:8x16", ...; see fabric.ParseTopo) and is resolved against
	// NumPEs when Topology is nil. The CLI -topo flags feed through
	// here.
	TopoSpec string
	// Fabric overrides the network cost model (zero value = xBGAS
	// defaults).
	Fabric fabric.Config
	// UnrollThreshold overrides the put/get unrolling threshold
	// (0 = DefaultUnrollThreshold).
	UnrollThreshold int
	// InflightDepth is the flow-control window of pipelined element
	// transfers: at most this many remote element operations may be in
	// flight per transfer stream before the issuing core throttles to
	// the network's drain rate (0 = DefaultInflightDepth).
	InflightDepth int
	// Transport selects the transfer engine.
	Transport Transport
	// OLBEntries overrides the per-node OLB translation-cache size
	// (0 = olb.DefaultEntries).
	OLBEntries int
	// Barrier selects the world-barrier algorithm (default: the
	// paper's simple centralised barrier).
	Barrier BarrierAlgorithm
	// SpikeRawClass makes the Spike transport generate raw-class
	// remote accesses (erld/ersd with an explicit extended register)
	// instead of the default base-class forms (eld/esd through the
	// paired register) — the two addressing classes of paper §3.2.
	SpikeRawClass bool
	// ReferencePath makes the native transport use the original
	// element-at-a-time put/get implementation instead of the batched
	// stream path. The two paths book identical fabric timestamps; the
	// differential tests run both and compare cycle for cycle.
	ReferencePath bool
	// Deterministic runs PEs in lockstep: a single execution token is
	// handed to the runnable PE with the smallest virtual clock
	// (ties to the lowest rank), and PEs yield it at communication
	// points. Cycle totals become exactly reproducible across runs and
	// GOMAXPROCS settings, at the cost of serialising the host
	// execution. Free-running mode (the default) is faster and agrees
	// with lockstep up to contention-window granularity.
	Deterministic bool
	// Obs attaches an observability recorder (internal/obs): spans for
	// every collective call, tree round, transfer, and fabric stream
	// booking, plus counters and latency histograms, all keyed to the
	// virtual clock. Nil (the default) disables observability; the
	// disabled hot paths cost one nil test and zero allocations (see
	// the overhead-guard tests).
	Obs *obs.Recorder
}

func (c *Config) fillDefaults() {
	if c.SharedSize == 0 {
		c.SharedSize = DefaultSharedSize
	}
	if c.PrivateSize == 0 {
		c.PrivateSize = DefaultPrivateSize
	}
	if c.Mem == (mem.Config{}) {
		c.Mem = mem.DefaultConfig()
	}
	if c.Fabric == (fabric.Config{}) {
		c.Fabric = fabric.DefaultConfig()
	}
	if c.Topology == nil {
		c.Topology = fabric.FullyConnected{N: c.NumPEs}
	}
	if c.UnrollThreshold == 0 {
		c.UnrollThreshold = DefaultUnrollThreshold
	}
	if c.InflightDepth == 0 {
		c.InflightDepth = DefaultInflightDepth
	}
}

// Runtime is one initialised xBGAS runtime environment: the Go analogue
// of the state between xbrtime_init() and xbrtime_close().
type Runtime struct {
	cfg     Config
	machine *sim.Machine
	pes     []*PE
	barrier *barrierState
	dissem  *dissemState
	flags   *flagHub
	ls      *lockstep // non-nil while a Deterministic Run is active
	obsRun  *obs.Run  // non-nil when cfg.Obs is set
}

// New initialises a runtime with cfg.NumPEs processing elements.
func New(cfg Config) (*Runtime, error) {
	if cfg.NumPEs <= 0 {
		return nil, fmt.Errorf("xbrtime: NumPEs must be positive, got %d", cfg.NumPEs)
	}
	if cfg.Topology == nil && cfg.TopoSpec != "" {
		topo, err := fabric.ParseTopo(cfg.TopoSpec, cfg.NumPEs)
		if err != nil {
			return nil, fmt.Errorf("xbrtime: %w", err)
		}
		cfg.Topology = topo
	}
	cfg.fillDefaults()
	m, err := sim.NewMachine(sim.Config{
		Nodes:    cfg.NumPEs,
		Mem:      cfg.Mem,
		Topology: cfg.Topology,
		Fabric:   cfg.Fabric,
		OLBSize:  cfg.OLBEntries,
	})
	if err != nil {
		return nil, err
	}
	rt := &Runtime{
		cfg:     cfg,
		machine: m,
		barrier: newBarrierState(cfg.NumPEs),
		dissem:  newDissemState(),
		flags:   newFlagHub(),
	}
	if cfg.Obs != nil {
		rt.obsRun = cfg.Obs.Attach(fmt.Sprintf("%d PEs", cfg.NumPEs), cfg.NumPEs)
		rt.obsRun.SetMeta(obs.RunMeta{
			PEs:           cfg.NumPEs,
			Topo:          topoName(cfg.TopoSpec, cfg.Topology),
			Deterministic: cfg.Deterministic,
		})
		m.SetObs(rt.obsRun)
	}
	for rank := 0; rank < cfg.NumPEs; rank++ {
		rt.pes = append(rt.pes, &PE{
			rt:         rt,
			rank:       rank,
			node:       m.Nodes[rank],
			shared:     newHeap(SharedBase, cfg.SharedSize),
			privBrk:    PrivateBase,
			track:      rt.obsRun.PETrack(rank),
			met:        rt.obsRun.PEMetrics(rank),
			slog:       rt.obsRun.StepLog(rank),
			lastWaitBy: -1,
		})
	}
	return rt, nil
}

// topoName returns the run-metadata topology string: the user's -topo
// spec when one was given (it round-trips through fabric.ParseTopo, so
// analyzers can rebuild the shape), otherwise the topology's display
// name.
func topoName(spec string, topo fabric.Topology) string {
	if spec != "" {
		return spec
	}
	if topo != nil {
		return topo.Name()
	}
	return "flat"
}

// MustNew is New for known-good configurations; it panics on error.
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Close releases the runtime. It exists for symmetry with
// xbrtime_close(); the Go implementation holds no external resources.
func (rt *Runtime) Close() {}

// NumPEs returns the number of processing elements.
func (rt *Runtime) NumPEs() int { return rt.cfg.NumPEs }

// PE returns the processing element with the given rank, for drivers
// that orchestrate PEs manually instead of via Run.
func (rt *Runtime) PE(rank int) *PE { return rt.pes[rank] }

// Machine exposes the underlying simulated cluster (for statistics).
func (rt *Runtime) Machine() *sim.Machine { return rt.machine }

// Observability returns the runtime's attached observability run, or
// nil when Config.Obs was not set.
func (rt *Runtime) Observability() *obs.Run { return rt.obsRun }

// Config returns the effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// MaxClock returns the largest per-PE virtual clock: the simulated
// makespan of the work executed so far.
func (rt *Runtime) MaxClock() uint64 {
	var max uint64
	for _, pe := range rt.pes {
		if c := pe.Now(); c > max {
			max = c
		}
	}
	return max
}

// Run executes fn once per PE, each on its own goroutine (the SPMD
// model). It returns the first non-nil error, after all PEs finish. A
// PE returning an error while others sit in a barrier would deadlock
// the barrier, so Run marks the barrier broken on error, releasing the
// survivors with ErrBarrierBroken.
func (rt *Runtime) Run(fn func(pe *PE) error) error {
	if rt.cfg.Deterministic && rt.cfg.Transport == TransportNative {
		// Lockstep scheduling: every PE is registered ready (at its
		// current clock) before any goroutine starts, so the execution
		// order is fixed regardless of how the host schedules them.
		clocks := make([]uint64, rt.cfg.NumPEs)
		for i, pe := range rt.pes {
			clocks[i] = pe.clock
		}
		rt.ls = newLockstep(clocks)
		defer func() { rt.ls = nil }()
	}
	var wg sync.WaitGroup
	errs := make([]error, rt.cfg.NumPEs)
	for _, pe := range rt.pes {
		wg.Add(1)
		go func(p *PE) {
			defer wg.Done()
			if ls := rt.ls; ls != nil {
				ls.start(p.rank)
				defer ls.done(p.rank)
			}
			if err := fn(p); err != nil {
				errs[p.rank] = err
				rt.barrier.breakBarrier()
				rt.dissem.breakBarrier()
				rt.flags.breakAll()
			}
		}(pe)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// PE is one processing element's runtime context. All methods must be
// called from the PE's own goroutine (the function passed to Run).
type PE struct {
	rt   *Runtime
	rank int
	node *sim.Node

	clock uint64 // virtual time, cycles

	shared      *heap
	privBrk     uint64
	scratchAddr uint64
	scratchLen  uint64
	dissemEpoch uint64
	commTrace   func(TraceEvent)

	// Observability hooks (internal/obs): both nil unless Config.Obs
	// was set, in which case track records timeline spans and met
	// maintains counters and latency histograms. Every hot-path use is
	// behind a nil test so the disabled path stays allocation-free.
	track *obs.Track
	met   *obs.PEMetrics
	slog  *obs.StepLog // per-PE step log for critical-path extraction

	// lastWaitBy is the rank whose action released this PE's most
	// recent barrier or flag wait (-1 when unknown): the causal edge
	// the critical-path extractor follows across PEs.
	lastWaitBy int

	spike *spikeEngine // lazily built for TransportSpike

	// Reusable host-side workspaces for the batched transfer path and
	// the collectives. They grow monotonically and are never returned
	// to the garbage collector, so steady-state put/get streams and
	// collective calls allocate nothing per call.
	costBuf    []uint64
	elemBuf    []uint64
	byteBuf    []byte
	intPool    [][]int
	wordPool   [][]uint64
	handlePool [][]Handle

	// Workspace pool balance: borrows minus returns. Zero whenever no
	// collective is mid-flight; the pool-leak tests assert on it.
	intsOut, wordsOut, handlesOut int

	// planners tallies plan executions by "collective/algorithm" label
	// (core.Execute calls NotePlanner); StatsReport aggregates the
	// per-PE maps.
	planners map[string]uint64

	// Traffic statistics.
	puts, gets         uint64
	putElems, getElems uint64
	barriers           uint64
}

// costs returns the PE's reusable cost workspace, sized to n.
func (pe *PE) costs(n int) []uint64 {
	if cap(pe.costBuf) < n {
		pe.costBuf = make([]uint64, n)
	}
	return pe.costBuf[:n]
}

// elems returns the PE's reusable element workspace, sized to n.
func (pe *PE) elems(n int) []uint64 {
	if cap(pe.elemBuf) < n {
		pe.elemBuf = make([]uint64, n)
	}
	return pe.elemBuf[:n]
}

// bytes returns the PE's reusable byte workspace (the chunk-transfer
// staging buffer), sized to n.
func (pe *PE) bytes(n int) []byte {
	if cap(pe.byteBuf) < n {
		pe.byteBuf = make([]byte, n)
	}
	return pe.byteBuf[:n]
}

// BorrowInts returns a zeroed []int of length n from the PE's host
// workspace pool. Collectives use it for displacement and count
// vectors so steady-state calls allocate nothing; pair each borrow
// with ReturnInts. Like every PE method it must only be called from
// the PE's own goroutine.
func (pe *PE) BorrowInts(n int) []int {
	pe.intsOut++
	if k := len(pe.intPool); k > 0 {
		s := pe.intPool[k-1]
		pe.intPool = pe.intPool[:k-1]
		if cap(s) < n {
			return make([]int, n)
		}
		s = s[:n]
		for i := range s {
			s[i] = 0
		}
		return s
	}
	return make([]int, n)
}

// ReturnInts gives a slice from BorrowInts back to the pool.
func (pe *PE) ReturnInts(s []int) {
	pe.intsOut--
	pe.intPool = append(pe.intPool, s)
}

// BorrowHandles returns an empty Handle slice with capacity ≥ n from
// the PE's workspace pool; pair with ReturnHandles.
func (pe *PE) BorrowHandles(n int) []Handle {
	pe.handlesOut++
	if k := len(pe.handlePool); k > 0 {
		s := pe.handlePool[k-1]
		pe.handlePool = pe.handlePool[:k-1]
		if cap(s) < n {
			return make([]Handle, 0, n)
		}
		return s[:0]
	}
	return make([]Handle, 0, n)
}

// ReturnHandles gives a slice from BorrowHandles back to the pool.
func (pe *PE) ReturnHandles(s []Handle) {
	pe.handlesOut--
	pe.handlePool = append(pe.handlePool, s)
}

// WorkspaceOutstanding reports the PE's workspace pool imbalance:
// borrows minus returns for the int and word pools (first value) and
// the handle pool (second). Both are zero whenever no collective is
// mid-flight; tests assert on it to catch leaked borrows (success and
// error paths alike).
func (pe *PE) WorkspaceOutstanding() (ints, handles int) {
	return pe.intsOut + pe.wordsOut, pe.handlesOut
}

// NotePlanner tallies one collective plan execution under its
// "collective/algorithm" label; StatsReport aggregates the counts. The
// map is keyed by the plan's interned label, so steady-state calls
// allocate nothing.
func (pe *PE) NotePlanner(label string) {
	if pe.planners == nil {
		pe.planners = make(map[string]uint64, 8)
	}
	pe.planners[label]++
}

// MyPE returns the PE's rank: xbrtime_mype().
func (pe *PE) MyPE() int { return pe.rank }

// NumPEs returns the number of PEs: xbrtime_num_pes().
func (pe *PE) NumPEs() int { return pe.rt.cfg.NumPEs }

// PEsPerNode returns the fabric topology's node grouping — how many
// consecutive PE ranks share a node — or 1 when the topology has no
// node structure. The collective planners use it to split schedules
// into intra-node and inter-node phases.
func (pe *PE) PEsPerNode() int {
	if g, ok := pe.rt.machine.Fabric.Topology().(fabric.NodeGrouper); ok {
		return g.PEsPerNode()
	}
	return 1
}

// Runtime returns the owning runtime.
func (pe *PE) Runtime() *Runtime { return pe.rt }

// Now returns the PE's virtual clock in cycles.
func (pe *PE) Now() uint64 { return pe.clock }

// Advance adds compute cycles to the PE's clock. Workloads use it to
// model local computation between communication calls.
func (pe *PE) Advance(cycles uint64) { pe.clock += cycles }

// advanceTo moves the clock forward to t (never backward).
func (pe *PE) advanceTo(t uint64) {
	if t > pe.clock {
		pe.clock = t
	}
}

// Malloc allocates n bytes from the symmetric shared segment and
// returns its address: xbrtime_malloc(). Every PE must call Malloc in
// the same sequence (the SHMEM symmetric-allocation contract); the
// returned address is then valid on every PE and names the peer copy.
func (pe *PE) Malloc(n uint64) (uint64, error) {
	addr, err := pe.shared.alloc(n)
	if err != nil {
		return 0, err
	}
	// A handful of cycles for the allocator itself.
	pe.Advance(20)
	return addr, nil
}

// Free releases a symmetric allocation: xbrtime_free().
func (pe *PE) Free(addr uint64) error {
	pe.Advance(10)
	return pe.shared.release(addr)
}

// PrivateAlloc reserves n bytes of PE-private memory (a bump
// allocator; private memory is never freed, matching static/stack data
// in the C runtime's examples).
func (pe *PE) PrivateAlloc(n uint64) (uint64, error) {
	n = alignUp(n)
	if pe.privBrk+n > PrivateBase+pe.rt.cfg.PrivateSize {
		return 0, fmt.Errorf("xbrtime: private segment exhausted on PE %d", pe.rank)
	}
	addr := pe.privBrk
	pe.privBrk += n
	return addr, nil
}

// Scratch returns a PE-private scratch region of at least n bytes. The
// region is reused across calls (a later Scratch invalidates the data
// of an earlier one) and grows monotonically; collectives use it for
// their per-call landing buffers so that long benchmark loops do not
// consume the private segment.
func (pe *PE) Scratch(n uint64) (uint64, error) {
	if n <= pe.scratchLen && pe.scratchLen > 0 {
		return pe.scratchAddr, nil
	}
	addr, err := pe.PrivateAlloc(n)
	if err != nil {
		return 0, err
	}
	pe.scratchAddr, pe.scratchLen = addr, alignUp(n)
	return addr, nil
}

// SharedUsed reports the bytes currently allocated from the symmetric
// segment.
func (pe *PE) SharedUsed() uint64 { return pe.shared.used() }

// IsShared reports whether addr falls inside the symmetric segment.
func (pe *PE) IsShared(addr uint64) bool {
	return addr >= SharedBase && addr < SharedBase+pe.rt.cfg.SharedSize
}

// Stats is a snapshot of one PE's communication counters.
type Stats struct {
	Puts, Gets         uint64
	PutElems, GetElems uint64
	Barriers           uint64
	Cycles             uint64
}

// Stats returns the PE's traffic counters.
func (pe *PE) Stats() Stats {
	return Stats{
		Puts: pe.puts, Gets: pe.gets,
		PutElems: pe.putElems, GetElems: pe.getElems,
		Barriers: pe.barriers,
		Cycles:   pe.clock,
	}
}

// SegmentMap renders the PE's memory layout in the shape of paper
// Figure 2: private segment, then the symmetric shared segment with its
// live allocations.
func (pe *PE) SegmentMap() string {
	s := fmt.Sprintf("PE %d memory map (PGAS model, paper Figure 2)\n", pe.rank)
	s += fmt.Sprintf("  private  [%#010x, %#010x)  brk=%#x\n",
		PrivateBase, PrivateBase+pe.rt.cfg.PrivateSize, pe.privBrk)
	s += fmt.Sprintf("  shared   [%#010x, %#010x)  symmetric across %d PEs\n",
		SharedBase, SharedBase+pe.rt.cfg.SharedSize, pe.NumPEs())
	for _, a := range pe.shared.liveAllocs() {
		s += fmt.Sprintf("    alloc  [%#010x, %#010x)  offset +%#x  %d bytes\n",
			a.addr, a.addr+a.size, a.addr-SharedBase, a.size)
	}
	return s
}
