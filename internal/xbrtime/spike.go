package xbrtime

import (
	"fmt"
	"strings"

	"xbgas/internal/asm"
	"xbgas/internal/sim"
)

// spikeEngine executes put/get transfers as real xBGAS instruction
// sequences on an internal/sim core bound to the PE's node. It is the
// ISA-fidelity transport: every transfer runs through instruction
// decode, e-register management, and the OLB exactly as the C runtime's
// assembly stubs do on Spike (paper §5.1). Timing follows the core's
// instruction-level cost model, so it differs in detail from the native
// transport's pipelined model; memory contents are identical (asserted
// by the transport-equivalence tests).
type spikeEngine struct {
	core *sim.Core
}

// spikeCodeBase is where transfer stubs are assembled. It lies well
// below the private and shared segments.
const spikeCodeBase uint64 = 0x0000_1000

func (pe *PE) spikeEngineLazy() *spikeEngine {
	if pe.spike == nil {
		pe.spike = &spikeEngine{core: sim.NewCore(pe.rt.machine, pe.rank)}
	}
	return pe.spike
}

// loadOp returns the local load mnemonic that moves one element of
// width w bit-exactly (zero-extending variants: transfers copy raw
// bits, extension is irrelevant once stored back).
func loadOp(w int) string {
	switch w {
	case 1:
		return "lbu"
	case 2:
		return "lhu"
	case 4:
		return "lwu"
	default:
		return "ld"
	}
}

// extStoreOp returns the xBGAS base-class store mnemonic for width w.
func extStoreOp(w int) string {
	switch w {
	case 1:
		return "esb"
	case 2:
		return "esh"
	case 4:
		return "esw"
	default:
		return "esd"
	}
}

// extLoadOp returns the xBGAS base-class load mnemonic for width w.
func extLoadOp(w int) string {
	switch w {
	case 1:
		return "elbu"
	case 2:
		return "elhu"
	case 4:
		return "elwu"
	default:
		return "eld"
	}
}

// storeOp returns the local store mnemonic for width w.
func storeOp(w int) string {
	switch w {
	case 1:
		return "sb"
	case 2:
		return "sh"
	case 4:
		return "sw"
	default:
		return "sd"
	}
}

// rawLoadOp returns the xBGAS raw-class load mnemonic for width w.
func rawLoadOp(w int) string {
	switch w {
	case 1:
		return "erlbu"
	case 2:
		return "erlhu"
	case 4:
		return "erlwu"
	default:
		return "erld"
	}
}

// rawStoreOp returns the xBGAS raw-class store mnemonic for width w.
func rawStoreOp(w int) string {
	switch w {
	case 1:
		return "ersb"
	case 2:
		return "ersh"
	case 4:
		return "ersw"
	default:
		return "ersd"
	}
}

// spikeStub builds the transfer stub. By default the remote cursor
// lives in t5 (x30) whose paired extended register e30 carries the
// object ID — the exact register discipline of the xbrtime assembly
// stubs' base-class accesses. With Config.SpikeRawClass the stub uses
// the raw-class instructions instead, naming e7 explicitly (paper
// §3.2's second instruction class). isPut selects local-load +
// extended-store versus extended-load + local-store. The loop body is
// unrolled by four when nelems meets the runtime's threshold (§3.3).
func (pe *PE) spikeStub(dt DType, remote, local uint64, nelems, stride, target int, isPut bool) string {
	w := dt.Width
	step := stride * w
	objID := sim.ObjectID(target)
	if target == pe.rank {
		objID = 0 // architectural local short-circuit
	}
	raw := pe.rt.cfg.SpikeRawClass

	var b strings.Builder
	fmt.Fprintf(&b, "\tli   t0, %d\n", local)  // local cursor
	fmt.Fprintf(&b, "\tli   t5, %d\n", remote) // remote cursor (pairs e30)
	fmt.Fprintf(&b, "\tli   t1, %d\n", objID)
	if raw {
		fmt.Fprintf(&b, "\teaddie e7, t1, 0\n")
	} else {
		fmt.Fprintf(&b, "\teaddie e30, t1, 0\n")
	}
	fmt.Fprintf(&b, "\tli   t2, %d\n", nelems)

	body := func() {
		switch {
		case isPut && raw:
			fmt.Fprintf(&b, "\t%s t3, 0(t0)\n", loadOp(w))
			fmt.Fprintf(&b, "\t%s t3, t5, e7\n", rawStoreOp(w))
		case isPut:
			fmt.Fprintf(&b, "\t%s t3, 0(t0)\n", loadOp(w))
			fmt.Fprintf(&b, "\t%s t3, 0(t5)\n", extStoreOp(w))
		case raw:
			fmt.Fprintf(&b, "\t%s t3, t5, e7\n", rawLoadOp(w))
			fmt.Fprintf(&b, "\t%s t3, 0(t0)\n", storeOp(w))
		default:
			fmt.Fprintf(&b, "\t%s t3, 0(t5)\n", extLoadOp(w))
			fmt.Fprintf(&b, "\t%s t3, 0(t0)\n", storeOp(w))
		}
		fmt.Fprintf(&b, "\taddi t0, t0, %d\n", step)
		fmt.Fprintf(&b, "\taddi t5, t5, %d\n", step)
	}

	unroll := 1
	if nelems >= pe.rt.cfg.UnrollThreshold {
		unroll = 4
	}
	main := nelems / unroll * unroll
	if main > 0 {
		fmt.Fprintf(&b, "\tli   t4, %d\n", main)
		fmt.Fprintf(&b, "main_loop:\n")
		for u := 0; u < unroll; u++ {
			body()
		}
		fmt.Fprintf(&b, "\taddi t4, t4, %d\n", -unroll)
		fmt.Fprintf(&b, "\tbnez t4, main_loop\n")
	}
	for r := 0; r < nelems-main; r++ {
		body()
	}
	fmt.Fprintf(&b, "\tli   a7, %d\n", sim.EcallExit)
	fmt.Fprintf(&b, "\tecall\n")
	return b.String()
}

// runStub assembles and executes a stub, carrying the PE clock through
// the core.
func (pe *PE) runStub(src string) (Handle, error) {
	eng := pe.spikeEngineLazy()
	prog, err := asm.AssembleAt(src, spikeCodeBase)
	if err != nil {
		return Handle{}, fmt.Errorf("xbrtime: spike transport: %w", err)
	}
	pe.node.LockedWriteBytes(prog.Base, prog.Bytes())
	core := eng.core
	core.Halted = false
	core.PC = prog.Base
	core.Cycles = pe.clock
	if err := core.Run(0); err != nil {
		return Handle{}, fmt.Errorf("xbrtime: spike transport: %w", err)
	}
	pe.advanceTo(core.Cycles)
	return Handle{completeAt: core.Cycles, active: true}, nil
}

func (pe *PE) spikePut(dt DType, dest, src uint64, nelems, stride, target int) (Handle, error) {
	return pe.runStub(pe.spikeStub(dt, dest, src, nelems, stride, target, true))
}

func (pe *PE) spikeGet(dt DType, dest, src uint64, nelems, stride, target int) (Handle, error) {
	return pe.runStub(pe.spikeStub(dt, src, dest, nelems, stride, target, false))
}
