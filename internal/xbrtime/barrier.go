package xbrtime

import (
	"errors"
	"fmt"
	"sync"
)

// ErrBarrierBroken is returned from Barrier when another PE failed and
// the runtime released the barrier to avoid deadlocking the survivors.
var ErrBarrierBroken = errors.New("xbrtime: barrier broken by failing PE")

// barrierCPU is the local bookkeeping cost charged per barrier call.
const barrierCPU = 30

// barrierState implements a sense-reversing centralised barrier over an
// arbitrary member set: every member reports arrival to the first
// member, which releases the group. The paper's runtime ships "a simple
// barrier" (§3.3); the centralised barrier is the simplest correct
// choice and its cost model (gather to root, then a staggered release
// fan-out) matches that structure. The world barrier is the instance
// over all PEs; teams (paper §7 future work) get their own instances.
type barrierState struct {
	mu      sync.Mutex
	cond    *sync.Cond
	members []int // global PE ranks; members[0] collects arrivals
	count   int
	sense   bool
	maxArr  uint64
	maxBy   int            // rank whose arrival set maxArr (this epoch)
	relBy   int            // rank whose arrival gated the last release
	rel     map[int]uint64 // global rank -> release time
	broken  bool
}

func newBarrierState(n int) *barrierState {
	members := make([]int, n)
	for i := range members {
		members[i] = i
	}
	return newTeamBarrierState(members)
}

func newTeamBarrierState(members []int) *barrierState {
	b := &barrierState{members: members, rel: make(map[int]uint64, len(members))}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *barrierState) breakBarrier() {
	b.mu.Lock()
	b.broken = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// Barrier synchronises all PEs: xbrtime_barrier(). On return, every
// PE's virtual clock is at or after the latest arrival time plus the
// release cost of the configured algorithm.
func (pe *PE) Barrier() error {
	if pe.rt.cfg.Barrier == BarrierDissemination {
		start := pe.clock
		pe.lastWaitBy = -1 // dissemination has no single releasing rank
		pe.barriers++
		pe.Advance(barrierCPU)
		var err error
		if pe.rt.cfg.NumPEs > 1 {
			err = pe.dissemBarrier()
		}
		if err == nil && pe.ObsEnabled() {
			pe.obsBarrier(start)
		}
		return err
	}
	return pe.barrierOn(pe.rt.barrier)
}

// barrierOn wraps barrierOnImpl with observability: one "barrier" span
// from arrival to release, plus the barrier latency histogram.
func (pe *PE) barrierOn(b *barrierState) error {
	if !pe.ObsEnabled() {
		return pe.barrierOnImpl(b)
	}
	start := pe.clock
	err := pe.barrierOnImpl(b)
	if err == nil {
		pe.obsBarrier(start)
	}
	return err
}

// barrierOnImpl runs the sense-reversing protocol on one barrier
// instance. The calling PE must be a member.
func (pe *PE) barrierOnImpl(b *barrierState) error {
	pe.barriers++
	pe.Advance(barrierCPU)
	n := len(b.members)
	if n == 1 {
		return nil
	}
	coordinator := b.members[0]

	fab := pe.rt.machine.Fabric
	// Arrival notification to the coordinating PE. In lockstep mode
	// the send happens in virtual-clock order like any other booking.
	pe.lsYield()
	arrive := pe.clock
	if pe.rank != coordinator {
		t, err := fab.Send(pe.rank, coordinator, 8, pe.clock)
		if err != nil {
			return err
		}
		arrive = t
	}

	b.mu.Lock()
	if b.broken {
		b.mu.Unlock()
		return ErrBarrierBroken
	}
	localSense := !b.sense
	b.count++
	if arrive > b.maxArr {
		b.maxArr = arrive
		b.maxBy = pe.rank
	}
	if b.count == n {
		// The coordinator releases everyone; the fan-out staggers at
		// its injection rate and each release message pays fabric
		// transit.
		inject := fab.Config().InjectionOverhead
		release := b.maxArr
		b.relBy = b.maxBy // critical-path attribution: who gated the epoch
		b.rel[coordinator] = release
		for i, m := range b.members {
			if m == coordinator {
				continue
			}
			t, err := fab.Send(coordinator, m, 8, release+uint64(i)*inject)
			if err != nil {
				b.mu.Unlock()
				return err
			}
			b.rel[m] = t
			// In lockstep mode the waiter is asleep inside cond.Wait;
			// hand it back to the scheduler at its release clock now, so
			// the token ordering never depends on how quickly the woken
			// goroutine runs.
			if m != pe.rank {
				pe.lsWake(m, t)
			}
		}
		if coordinator != pe.rank {
			// The last arriver does the release, so the coordinating
			// member itself may be one of the sleepers.
			pe.lsWake(coordinator, release)
		}
		b.count = 0
		b.maxArr = 0
		b.maxBy = 0
		b.sense = localSense
		b.cond.Broadcast()
		rel := b.rel[pe.rank]
		pe.lastWaitBy = b.relBy
		b.mu.Unlock()
		pe.advanceTo(rel)
		return nil
	}
	// Waiter: hand the execution token back before sleeping so the
	// remaining PEs can reach the barrier, reacquire it on wakeup.
	pe.lsBlock()
	for b.sense != localSense && !b.broken {
		b.cond.Wait()
	}
	broken := b.broken
	rel := b.rel[pe.rank]
	pe.lastWaitBy = b.relBy
	b.mu.Unlock()
	pe.advanceTo(rel)
	pe.lsUnblock()
	if broken {
		return ErrBarrierBroken
	}
	return nil
}

// Team is an ordered subset of PEs that can synchronise and communicate
// collectively among themselves — the "integration of collective
// functionality between a subset of PEs" the paper lists as future work
// (§7). Team rank i is the PE at Members()[i]; team rank 0 coordinates
// the team barrier.
type Team struct {
	rt      *Runtime
	members []int
	index   map[int]int // global rank -> team rank
	barrier *barrierState
}

// NewTeam creates a team from the given global PE ranks. Ranks must be
// unique and valid; order defines team ranks.
func (rt *Runtime) NewTeam(members []int) (*Team, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("xbrtime: team needs at least one member")
	}
	index := make(map[int]int, len(members))
	for i, m := range members {
		if m < 0 || m >= rt.cfg.NumPEs {
			return nil, fmt.Errorf("xbrtime: team member %d outside 0..%d", m, rt.cfg.NumPEs-1)
		}
		if _, dup := index[m]; dup {
			return nil, fmt.Errorf("xbrtime: duplicate team member %d", m)
		}
		index[m] = i
	}
	return &Team{
		rt:      rt,
		members: append([]int(nil), members...),
		index:   index,
		barrier: newTeamBarrierState(append([]int(nil), members...)),
	}, nil
}

// WorldTeam returns a team containing every PE in rank order.
func (rt *Runtime) WorldTeam() *Team {
	members := make([]int, rt.cfg.NumPEs)
	for i := range members {
		members[i] = i
	}
	t, err := rt.NewTeam(members)
	if err != nil {
		panic(err) // full member set is always valid
	}
	return t
}

// Size returns the number of team members.
func (t *Team) Size() int { return len(t.members) }

// Member returns the global PE rank of team rank i.
func (t *Team) Member(i int) int { return t.members[i] }

// Rank returns pe's team rank, or false if pe is not a member.
func (t *Team) Rank(pe *PE) (int, bool) {
	r, ok := t.index[pe.rank]
	return r, ok
}

// Contains reports whether the global rank is a team member.
func (t *Team) Contains(globalRank int) bool {
	_, ok := t.index[globalRank]
	return ok
}

// TeamBarrier synchronises the team's members. Only members may call
// it, and every member must.
func (pe *PE) TeamBarrier(t *Team) error {
	if _, ok := t.Rank(pe); !ok {
		return fmt.Errorf("xbrtime: PE %d is not a member of the team", pe.rank)
	}
	return pe.barrierOn(t.barrier)
}
