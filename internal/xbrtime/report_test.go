package xbrtime

import (
	"strings"
	"testing"

	"xbgas/internal/obs"
)

// TestStatsReportZeroTraffic pins the report's zero-traffic form: every
// rate column must render "-" (a run that never touched the memory
// system is not a 0% hit rate), and the per-NIC table is omitted when
// the fabric carried no messages.
func TestStatsReportZeroTraffic(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2})
	got := rt.StatsReport()

	for _, want := range []string{
		"runtime: 2 PEs",
		"fabric: 0 messages, 0 payload bytes, 0 contention cycles",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
	// Both node rows show "-" in L1/L2/TLB rate columns.
	dashRows := 0
	for _, line := range strings.Split(got, "\n") {
		f := strings.Fields(line)
		if len(f) == 6 && f[1] == "-" && f[2] == "-" && f[3] == "-" {
			dashRows++
		}
	}
	if dashRows != 2 {
		t.Errorf("want 2 zero-traffic node rows with '-' rates, got %d:\n%s", dashRows, got)
	}
	if strings.Contains(got, "peakQueue") {
		t.Errorf("zero-traffic report must omit the per-NIC table:\n%s", got)
	}
}

// TestStatsReportSmallRun drives a small GUPS-style exchange and checks
// the report renders numeric rates, the per-NIC contention table, and —
// with observability attached — the collective round breakdown.
func TestStatsReportSmallRun(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
	rt := MustNew(Config{NumPEs: 2, Deterministic: true, Obs: rec})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		peer := 1 - pe.MyPE()
		if err := pe.PutInt64(buf, buf, 4, 1, peer); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.StatsReport()

	if strings.Contains(got, " - ") {
		t.Errorf("traffic run must not render '-' rate cells:\n%s", got)
	}
	for _, want := range []string{"peakQueue", "NIC"} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing per-NIC table marker %q:\n%s", want, got)
		}
	}
	if !strings.Contains(got, "fabric: ") {
		t.Errorf("report missing fabric totals:\n%s", got)
	}
}

// TestStatsReportPlannerLine checks the plan-execution tallies recorded
// by NotePlanner (the executor calls it once per plan run) aggregate
// across PEs into one sorted "planners:" line, and that a run with no
// plans omits the line entirely.
func TestStatsReportPlannerLine(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2})
	if strings.Contains(rt.StatsReport(), "planners:") {
		t.Errorf("plan-free report must omit the planners line:\n%s", rt.StatsReport())
	}
	err := rt.Run(func(pe *PE) error {
		pe.NotePlanner("broadcast/binomial")
		pe.NotePlanner("broadcast/binomial")
		if pe.MyPE() == 0 {
			pe.NotePlanner("reduce/linear")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.StatsReport()
	if !strings.Contains(got, "planners: broadcast/binomial x4, reduce/linear x1\n") {
		t.Errorf("report missing aggregated planners line:\n%s", got)
	}
}

// TestStatsReportRoundBreakdown checks the obs-extended report includes
// the per-collective round table after a broadcast-bearing run. The
// collective itself lives in internal/core; here a put/barrier pattern
// is spanned through the PE helpers directly to keep the dependency
// direction intact.
func TestStatsReportRoundBreakdown(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true, Metrics: true})
	rt := MustNew(Config{NumPEs: 2, Deterministic: true, Obs: rec})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		cs := pe.StartCollective("broadcast", "", 0, 4)
		rs := pe.StartRound("broadcast.round", 0, 1-pe.MyPE(), 4)
		if pe.MyPE() == 0 {
			if err := pe.PutInt64(buf, buf, 4, 1, 1); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		pe.FinishRound(rs)
		pe.FinishCollective(cs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.StatsReport()
	for _, want := range []string{
		"collective round breakdown",
		"broadcast.round",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}
}

// TestStatsReportClassedNICRows checks the per-NIC table splits into
// intra/inter rows on a grouped topology and keeps the flat single-row
// form otherwise.
func TestStatsReportClassedNICRows(t *testing.T) {
	rt := MustNew(Config{NumPEs: 4, TopoSpec: "grouped:2", Deterministic: true})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		// One put to the node-mate, one across nodes.
		if err := pe.PutInt64(buf, buf, 4, 1, pe.MyPE()^1); err != nil {
			return err
		}
		if err := pe.PutInt64(buf, buf, 4, 1, (pe.MyPE()+2)%4); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.StatsReport()
	for _, want := range []string{"class", "intra", "inter"} {
		if !strings.Contains(got, want) {
			t.Errorf("grouped report missing %q:\n%s", want, got)
		}
	}

	// Flat runs keep the unsplit row format.
	rtFlat := MustNew(Config{NumPEs: 2})
	err = rtFlat.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if err := pe.PutInt64(buf, buf, 4, 1, 1-pe.MyPE()); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	gotFlat := rtFlat.StatsReport()
	if strings.Contains(gotFlat, "intra") {
		t.Errorf("flat report must not split NIC rows by class:\n%s", gotFlat)
	}
	if !strings.Contains(gotFlat, "peakQueue") {
		t.Errorf("flat report missing per-NIC table:\n%s", gotFlat)
	}
}

// TestStatsReportCriticalPathTable checks the critical-path table is
// appended when a traced run recorded collective calls through the
// step log, and stays absent with observability disabled.
func TestStatsReportCriticalPathTable(t *testing.T) {
	rec := obs.NewRecorder(obs.Options{Trace: true})
	rt := MustNew(Config{NumPEs: 2, Deterministic: true, Obs: rec})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		cs := pe.StartCollective("broadcast", "broadcast/binomial", 0, 4)
		start := pe.Now()
		if pe.MyPE() == 0 {
			if err := pe.PutInt64(buf, buf, 4, 1, 1); err != nil {
				return err
			}
			pe.StepLog().Note(obs.CatTransfer, start, pe.Now())
		}
		bstart := pe.Now()
		if err := pe.Barrier(); err != nil {
			return err
		}
		pe.StepLog().NoteWait(obs.CatBarrierWait, bstart, pe.Now(), pe.LastWaitBy())
		pe.FinishCollective(cs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	got := rt.StatsReport()
	for _, want := range []string{
		"critical path (share of measured completion time, per collective):",
		"broadcast/binomial",
		"coverage",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("report missing %q:\n%s", want, got)
		}
	}

	rtOff := MustNew(Config{NumPEs: 2})
	if strings.Contains(rtOff.StatsReport(), "critical path") {
		t.Error("untraced report must omit the critical-path table")
	}
}
