package xbrtime

import (
	"math/rand"
	"testing"
)

// TestElemKernelsMatchScalarCanon pins the generic bulk kernels to the
// scalar definitions: for every Table 1 type, canonElems must equal
// element-wise Canon and maskElems element-wise width masking.
func TestElemKernelsMatchScalarCanon(t *testing.T) {
	rng := rand.New(rand.NewSource(0x5eed))
	for _, dt := range Types {
		raw := make([]uint64, 64)
		for i := range raw {
			raw[i] = rng.Uint64()
		}

		canon := append([]uint64(nil), raw...)
		dt.canonElems(canon)
		for i, r := range raw {
			if want := dt.Canon(r); canon[i] != want {
				t.Fatalf("%s canonElems[%d]: %#x, want Canon(%#x) = %#x",
					dt, i, canon[i], r, want)
			}
		}

		// canonElems is idempotent: canonical values re-canonicalise to
		// themselves.
		again := append([]uint64(nil), canon...)
		dt.canonElems(again)
		for i := range again {
			if again[i] != canon[i] {
				t.Fatalf("%s canonElems not idempotent at %d", dt, i)
			}
		}

		masked := make([]uint64, len(canon))
		dt.maskElems(masked, canon)
		for i, v := range canon {
			if want := v & dt.mask(); masked[i] != want {
				t.Fatalf("%s maskElems[%d]: %#x, want %#x", dt, i, masked[i], want)
			}
			// mask ∘ canon round-trips: canonicalising the masked image
			// recovers the canonical value.
			if got := dt.Canon(masked[i]); got != v {
				t.Fatalf("%s mask/canon round trip[%d]: %#x, want %#x", dt, i, got, v)
			}
		}

		// maskElems supports aliased dst == src.
		aliased := append([]uint64(nil), canon...)
		dt.maskElems(aliased, aliased)
		for i := range aliased {
			if aliased[i] != masked[i] {
				t.Fatalf("%s maskElems aliased[%d]: %#x, want %#x",
					dt, i, aliased[i], masked[i])
			}
		}
	}
}

// TestTypedTransferCostParity pins the zero-overhead contract of the
// generated transfer wrappers: same virtual cycles and same allocation
// count as the generic Put/Get entry points.
func TestTypedTransferCostParity(t *testing.T) {
	const nelems = 8
	dt := TypeInt64

	// measure runs one remote round trip on a fresh deterministic
	// runtime and returns PE 0's virtual-clock delta.
	measure := func(call func(pe *PE, dest, src uint64) error) uint64 {
		var delta uint64
		rt := MustNew(Config{NumPEs: 2, Deterministic: true})
		defer rt.Close()
		err := rt.Run(func(pe *PE) error {
			buf, err := pe.Malloc(8 * nelems)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() != 0 {
				return nil
			}
			src, err := pe.PrivateAlloc(8 * nelems)
			if err != nil {
				return err
			}
			start := pe.Now()
			if err := call(pe, buf, src); err != nil {
				return err
			}
			delta = pe.Now() - start
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return delta
	}

	pairs := []struct {
		name    string
		typed   func(pe *PE, dest, src uint64) error
		generic func(pe *PE, dest, src uint64) error
	}{
		{"put", func(pe *PE, dest, src uint64) error {
			return pe.PutInt64(dest, src, nelems, 1, 1)
		}, func(pe *PE, dest, src uint64) error {
			return pe.Put(dt, dest, src, nelems, 1, 1)
		}},
		{"get", func(pe *PE, dest, src uint64) error {
			return pe.GetInt64(src, dest, nelems, 1, 1)
		}, func(pe *PE, dest, src uint64) error {
			return pe.Get(dt, src, dest, nelems, 1, 1)
		}},
	}
	for _, pair := range pairs {
		typed := measure(pair.typed)
		generic := measure(pair.generic)
		if typed != generic {
			t.Errorf("%s: typed wrapper took %d cycles, generic entry %d — wrappers must be free",
				pair.name, typed, generic)
		}
	}

	// Allocation parity on a single-PE runtime (transfers to self run on
	// one goroutine): steady state must be allocation-free for wrapper
	// and generic entry alike.
	rt := MustNew(Config{NumPEs: 1})
	defer rt.Close()
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * nelems)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8 * nelems)
		if err != nil {
			return err
		}
		if err := pe.PutInt64(buf, src, nelems, 1, 0); err != nil {
			return err
		}
		typed := testing.AllocsPerRun(50, func() {
			if err := pe.PutInt64(buf, src, nelems, 1, 0); err != nil {
				t.Error(err)
			}
		})
		generic := testing.AllocsPerRun(50, func() {
			if err := pe.Put(dt, buf, src, nelems, 1, 0); err != nil {
				t.Error(err)
			}
		})
		if typed != generic {
			t.Errorf("put: typed wrapper allocates %v/op, generic entry %v/op", typed, generic)
		}
		if typed != 0 {
			t.Errorf("put: typed wrapper allocates %v/op in steady state, want 0", typed)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
