package xbrtime

import "fmt"

// loadCPU is the pipeline cost of one local load/store instruction on
// top of the memory-hierarchy cost.
const loadCPU = 1

// ReadElem performs a timed local read of one element, returning its
// canonical value (sign-/zero-extended integer or raw IEEE bits).
func (pe *PE) ReadElem(dt DType, addr uint64) uint64 {
	cost := pe.node.Hier.Touch(addr, dt.Width, false)
	raw := pe.node.LockedRead(addr, dt.Width)
	pe.Advance(cost + loadCPU)
	return dt.Canon(raw)
}

// WriteElem performs a timed local write of one element.
func (pe *PE) WriteElem(dt DType, addr uint64, canon uint64) {
	cost := pe.node.Hier.Touch(addr, dt.Width, true)
	pe.node.LockedWrite(addr, dt.Width, canon&dt.mask())
	pe.Advance(cost + loadCPU)
}

// Peek reads one element functionally (no cycle charge, no cache
// perturbation). Benchmarks use it for setup and verification.
func (pe *PE) Peek(dt DType, addr uint64) uint64 {
	return dt.Canon(pe.node.LockedRead(addr, dt.Width))
}

// Poke writes one element functionally (no cycle charge).
func (pe *PE) Poke(dt DType, addr uint64, canon uint64) {
	pe.node.LockedWrite(addr, dt.Width, canon&dt.mask())
}

// PeekElems reads len(dst) contiguous elements functionally (no cycle
// charge): dst[i] is the canonical value at addr + i*width.
func (pe *PE) PeekElems(dt DType, addr uint64, dst []uint64) {
	pe.node.LockedReadElems(addr, dt.Width, uint64(dt.Width), len(dst), dst)
	dt.canonElems(dst)
}

// PokeElems writes len(src) contiguous elements functionally.
func (pe *PE) PokeElems(dt DType, addr uint64, src []uint64) {
	masked := pe.elems(len(src))
	dt.maskElems(masked, src)
	pe.node.LockedWriteElems(addr, dt.Width, uint64(dt.Width), len(src), masked)
}

// PeekBytes copies len(dst) bytes out of the PE's memory functionally.
func (pe *PE) PeekBytes(addr uint64, dst []byte) { pe.node.LockedReadBytes(addr, dst) }

// PokeBytes copies src into the PE's memory functionally.
func (pe *PE) PokeBytes(addr uint64, src []byte) { pe.node.LockedWriteBytes(addr, src) }

// TraceEvent describes one remote transfer issued by a PE, as observed
// by a communication trace hook.
type TraceEvent struct {
	Kind   string // "put" or "get"
	Target int    // peer PE rank
	Nelems int
}

// SetCommTrace installs a hook observing every remote put/get the PE
// issues (nil disables). PE-local transfers and barrier traffic are not
// reported. The hook runs synchronously on the PE's goroutine; the
// schedule-conformance tests use it to check that collectives perform
// exactly the communication their algorithms specify.
func (pe *PE) SetCommTrace(fn func(TraceEvent)) { pe.commTrace = fn }

func (pe *PE) traceComm(kind string, target, nelems int) {
	if pe.commTrace != nil {
		pe.commTrace(TraceEvent{Kind: kind, Target: target, Nelems: nelems})
	}
}

// checkTarget validates a peer rank.
func (pe *PE) checkTarget(target int) error {
	if target < 0 || target >= pe.rt.cfg.NumPEs {
		return fmt.Errorf("xbrtime: PE %d addressed invalid peer %d of %d",
			pe.rank, target, pe.rt.cfg.NumPEs)
	}
	return nil
}

// checkTransfer validates the common put/get argument contract.
func checkTransfer(dt DType, nelems, stride int) error {
	if !dt.Valid() {
		return fmt.Errorf("xbrtime: invalid data type %+v", dt)
	}
	if nelems < 0 {
		return fmt.Errorf("xbrtime: negative element count %d", nelems)
	}
	if stride < 1 {
		return fmt.Errorf("xbrtime: stride %d; must be >= 1 element", stride)
	}
	return nil
}
