package xbrtime

import (
	"testing"
)

// TestEveryGeneratedPutGetWrapper drives all 96 generated typed
// transfer wrappers (Put/Get and their non-blocking forms for every
// Table 1 type) through a remote round trip.
func TestEveryGeneratedPutGetWrapper(t *testing.T) {
	if len(typedPuts) != 24 || len(typedGets) != 24 ||
		len(typedPutNBs) != 24 || len(typedGetNBs) != 24 {
		t.Fatalf("registry sizes %d/%d/%d/%d, want 24 each",
			len(typedPuts), len(typedGets), len(typedPutNBs), len(typedGetNBs))
	}
	for name := range typedPuts {
		name := name
		dt, ok := TypeByName(name)
		if !ok {
			t.Fatalf("registry names unknown type %q", name)
		}
		put, get := typedPuts[name], typedGets[name]
		putNB, getNB := typedPutNBs[name], typedGetNBs[name]
		t.Run(name, func(t *testing.T) {
			rt := MustNew(Config{NumPEs: 2})
			defer rt.Close()
			w := uint64(dt.Width)
			err := rt.Run(func(pe *PE) error {
				buf, err := pe.Malloc(w * 8)
				if err != nil {
					return err
				}
				if err := pe.Barrier(); err != nil {
					return err
				}
				if pe.MyPE() != 0 {
					return nil
				}
				src, err := pe.PrivateAlloc(w * 8)
				if err != nil {
					return err
				}
				val := func(k int) uint64 {
					if dt.Kind == KindFloat {
						return dt.FromFloat(float64(k) + 0.5)
					}
					return dt.Canon(uint64(2*k + 1))
				}
				for i := 0; i < 4; i++ {
					pe.Poke(dt, src+uint64(i)*w, val(i))
				}
				// Blocking put to PE 1, blocking get back.
				if err := put(pe, buf, src, 4, 1, 1); err != nil {
					return err
				}
				back, err := pe.PrivateAlloc(w * 8)
				if err != nil {
					return err
				}
				if err := get(pe, back, buf, 4, 1, 1); err != nil {
					return err
				}
				for i := 0; i < 4; i++ {
					if got := pe.Peek(dt, back+uint64(i)*w); got != val(i) {
						t.Errorf("%s round trip elem %d: %s, want %s",
							name, i, dt.FormatValue(got), dt.FormatValue(val(i)))
					}
				}
				// Non-blocking forms.
				h1, err := putNB(pe, buf+4*w, src, 2, 1, 1)
				if err != nil {
					return err
				}
				pe.Wait(h1)
				h2, err := getNB(pe, back, buf+4*w, 2, 1, 1)
				if err != nil {
					return err
				}
				pe.Wait(h2)
				if got := pe.Peek(dt, back+w); got != val(1) {
					t.Errorf("%s NB round trip: %s", name, dt.FormatValue(got))
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}
