// Package xbrtime is the xBGAS machine-level runtime library of paper
// §3.3: the Go counterpart of github.com/tactcomplabs/xbgas-runtime.
//
// The runtime realises the PGAS memory model of paper Figure 2. Each
// processing element (PE) owns a private segment and a shared segment;
// shared segments are kept fully symmetric — an allocation returns the
// same offset from the segment base on every PE — so that a single
// address names complementary objects on every PE. On top of that sit:
//
//   - initialisation/teardown and PE identity (MyPE, NumPEs),
//   - a symmetric shared-memory allocator (Malloc/Free),
//   - a barrier,
//   - one-sided, typed, strided Put and Get in blocking and
//     non-blocking forms for the 24 data types of paper Table 1.
//
// SPMD programs run through Runtime.Run, which executes the supplied
// function once per PE on its own goroutine:
//
//	rt, _ := xbrtime.New(xbrtime.Config{NumPEs: 4})
//	defer rt.Close()
//	err := rt.Run(func(pe *xbrtime.PE) error {
//		sym, _ := pe.Malloc(8)
//		...
//		return pe.Barrier()
//	})
//
// # Time model
//
// Every PE carries a virtual clock in cycles (1 GHz nominal). Local
// memory traffic is charged through the node's mem.Hierarchy (TLB + L1 +
// L2 per paper §5.1); remote traffic is charged through the shared
// fabric model, which serialises concurrent messages at the receiving
// NIC. Put and Get follow the paper's implementation note that the
// underlying assembly applies "loop unrolling when nelems exceeds a
// given threshold": below the threshold element transfers issue
// strictly one after another; at or above it they pipeline at the
// injection rate.
//
// # Transports
//
// The default native transport performs transfers directly with the cost
// model above. The Spike transport instead generates the actual xBGAS
// instruction sequence for each transfer and executes it on an
// internal/sim core, exercising the full ISA path; both transports
// produce identical memory contents (see the equivalence tests).
//
// The per-type Put/Get surface (typed_gen.go) is generated from the
// //xbgas:typed annotations on Put, Get, PutNB, and GetNB — see
// tools/gen and docs/API_SURFACE.md.
package xbrtime

//go:generate go run ../../tools/gen
