package xbrtime

import "xbgas/internal/obs"

// This file is the PE-side surface of the observability layer
// (internal/obs): span helpers the collective library instruments its
// call and round structure with, and the transfer hook putget.go
// records puts and gets through. Every entry point is a no-op costing
// one or two nil tests when Config.Obs is unset; the overhead-guard
// tests pin the disabled path at zero allocations.

// ObsEnabled reports whether any observability sink (trace or metrics)
// is attached to the PE.
func (pe *PE) ObsEnabled() bool { return pe.track != nil || pe.met != nil }

// StartCollective opens a collective-level span ("broadcast",
// "reduce", ...). root rides in the span's peer slot so the timeline
// shows which PE the tree was rooted at; label is the compiled plan's
// identity ("allreduce/ring[seg=4]", "" when no plan is involved) and
// is exported as the span's "plan" arg for trace analyzers. The
// returned handle is inert when observability is disabled.
//
// When tracing is on, the call also opens a record in the PE's step
// log, under the label (falling back to name), so the critical-path
// extractor can tile the call's interval with attributed steps.
func (pe *PE) StartCollective(name, label string, root, nelems int) obs.Span {
	if pe.slog != nil {
		n := label
		if n == "" {
			n = name
		}
		pe.slog.BeginCall(n, pe.clock)
	}
	if !pe.ObsEnabled() {
		return obs.Span{}
	}
	return obs.Begin(pe.track, name, pe.clock,
		obs.Args{Rank: pe.rank, Peer: root, Round: -1, Nelems: nelems, Label: label})
}

// FinishCollective closes a collective span at the current virtual
// clock and feeds the call's latency into the metrics registry. Safe
// on inert handles (and therefore on every error path).
func (pe *PE) FinishCollective(s obs.Span) {
	if pe.slog != nil {
		pe.slog.EndCall(pe.clock)
	}
	if !s.Open() {
		return
	}
	obs.End(s, pe.clock)
	if pe.met != nil {
		pe.met.Collectives.Add(1)
		pe.met.CollectiveLatency.Observe(pe.clock - s.StartCycle())
	}
}

// StepLog returns the PE's step log (nil when tracing is disabled);
// the executor records per-step wait attribution through it.
func (pe *PE) StepLog() *obs.StepLog { return pe.slog }

// LastWaitBy returns the rank that released the PE's most recent
// barrier or flag wait, -1 when no single rank did (dissemination
// barriers, no wait yet).
func (pe *PE) LastWaitBy() int { return pe.lastWaitBy }

// StartRound opens one tree-round child span inside a collective
// ("broadcast.round", ...). round is the algorithm's round index, peer
// the partner this PE communicates with in the round (-1 when the PE
// only synchronises), nelems the elements it moves.
func (pe *PE) StartRound(name string, round, peer, nelems int) obs.Span {
	if !pe.ObsEnabled() {
		return obs.Span{}
	}
	return obs.Begin(pe.track, name, pe.clock,
		obs.Args{Rank: pe.rank, Peer: peer, Round: round, Nelems: nelems})
}

// FinishRound closes a round span and records its latency.
func (pe *PE) FinishRound(s obs.Span) {
	if !s.Open() {
		return
	}
	obs.End(s, pe.clock)
	if pe.met != nil {
		pe.met.Rounds.Add(1)
		pe.met.RoundLatency.Observe(pe.clock - s.StartCycle())
	}
}

// obsBarrier records one barrier spanning arrival (start) to release
// (the PE's current clock). Callers check ObsEnabled first.
func (pe *PE) obsBarrier(start uint64) {
	if pe.track != nil {
		pe.track.Complete("barrier", start, pe.clock,
			obs.Args{Rank: pe.rank, Peer: -1, Round: -1, Nelems: 0})
	}
	if pe.met != nil {
		pe.met.Barriers.Add(1)
		pe.met.BarrierLatency.Observe(pe.clock - start)
	}
}

// obsTransfer records one put or get: a span on the PE's track from
// the call's start clock to the end of issue (the window the PE was
// occupied), and the full completion latency (start to last element
// arrival) in the latency histogram. Callers check ObsEnabled first.
func (pe *PE) obsTransfer(put bool, start, complete uint64, target, nelems int) {
	if pe.track != nil {
		name := "get"
		if put {
			name = "put"
		}
		pe.track.Complete(name, start, pe.clock,
			obs.Args{Rank: pe.rank, Peer: target, Round: -1, Nelems: nelems})
	}
	if pe.met != nil {
		if put {
			pe.met.Puts.Add(1)
			pe.met.PutElems.Add(uint64(nelems))
			pe.met.PutLatency.Observe(complete - start)
		} else {
			pe.met.Gets.Add(1)
			pe.met.GetElems.Add(uint64(nelems))
			pe.met.GetLatency.Observe(complete - start)
		}
	}
}
