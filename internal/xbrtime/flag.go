package xbrtime

import (
	"errors"
	"sync"
)

// ErrWaitBroken is returned from WaitFlag when another PE failed and
// the runtime released all flag waiters to avoid deadlocking the
// survivors (the flag analogue of ErrBarrierBroken).
var ErrWaitBroken = errors.New("xbrtime: flag wait broken by failing PE")

// flagPollCPU is the local cost of one completion-flag check: a load
// from the symmetric segment plus the branch of the poll loop.
const flagPollCPU = 8

// flagKey identifies one completion-flag word: the owning PE's rank and
// the word's symmetric address. The symmetric-heap contract (identical
// Malloc sequences on every PE) is what makes the address alone
// meaningful across ranks.
type flagKey struct {
	rank int
	addr uint64
}

// flagCell is the host-side state of one flag word. Posts and consumes
// are counted rather than toggled so a cell can be reused across plan
// executions after the heap recycles its address; `at` carries the
// arrival time of the latest unconsumed post (plans pair every post
// with exactly one wait, so at most one post is outstanding per cell).
type flagCell struct {
	posted   uint64
	consumed uint64
	at       uint64
	by       int // rank of the latest poster (critical-path attribution)
}

// flagHub is the rendezvous for point-to-point completion flags, the
// dependency mechanism segmented plans use instead of per-round world
// barriers. It mirrors dissemState: senders post arrival times,
// receivers wait for their cell and consume it, and Run marks the hub
// broken when a PE fails so waiters unwind instead of deadlocking.
type flagHub struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cells  map[flagKey]*flagCell
	broken bool
	// waiting records, per blocked PE, the flag it sleeps on, so in
	// lockstep mode the signaller can re-queue the sleeper with the
	// scheduler immediately (see lockstep.wake).
	waiting map[int]flagKey
}

func newFlagHub() *flagHub {
	fh := &flagHub{
		cells:   make(map[flagKey]*flagCell),
		waiting: make(map[int]flagKey),
	}
	fh.cond = sync.NewCond(&fh.mu)
	return fh
}

func (fh *flagHub) breakAll() {
	fh.mu.Lock()
	fh.broken = true
	fh.cond.Broadcast()
	fh.mu.Unlock()
}

// post records one signal arriving at key at time `at` and wakes the
// waiter sleeping on it, if any.
func (fh *flagHub) post(pe *PE, k flagKey, at uint64) {
	fh.mu.Lock()
	c := fh.cells[k]
	if c == nil {
		c = &flagCell{}
		fh.cells[k] = c
	}
	c.posted++
	c.by = pe.rank
	if at > c.at {
		c.at = at
	}
	if wk, ok := fh.waiting[k.rank]; ok && wk == k {
		delete(fh.waiting, k.rank)
		pe.lsWake(k.rank, at)
	}
	fh.cond.Broadcast()
	fh.mu.Unlock()
}

// SignalAfter stores a completion flag to the word at symmetric address
// addr on PE target, ordered after the transfer behind h: the 8-byte
// flag message rides the fabric but is not delivered before h
// completes, modelling a flag store that trails its payload on the same
// ordered channel. h may be the zero Handle when the signal has no
// payload to trail (the sender's clock is then the only floor).
func (pe *PE) SignalAfter(h Handle, addr uint64, target int) error {
	if err := pe.checkTarget(target); err != nil {
		return err
	}
	fh := pe.rt.flags
	notBefore := pe.clock
	if h.active && h.completeAt > notBefore {
		notBefore = h.completeAt
	}
	if target == pe.rank {
		pe.Advance(loadCPU)
		fh.post(pe, flagKey{target, addr}, notBefore)
		return nil
	}
	// In lockstep mode the flag store books in clock order like any
	// other remote store.
	pe.lsYield()
	fab := pe.rt.machine.Fabric
	arrive, err := fab.SendAfter(pe.rank, target, 8, pe.clock, notBefore)
	if err != nil {
		return err
	}
	pe.Advance(issueGap(fab.Config()))
	fh.post(pe, flagKey{target, addr}, arrive)
	return nil
}

// WaitFlag blocks until the flag word at local symmetric address addr
// has been posted, consumes the post, and advances the clock to the
// signal's arrival time — the WaitUntil-style primitive segmented plans
// use for step-level dependencies.
func (pe *PE) WaitFlag(addr uint64) error {
	fh := pe.rt.flags
	k := flagKey{pe.rank, addr}
	pe.Advance(flagPollCPU)
	fh.mu.Lock()
	c := fh.cells[k]
	if c == nil {
		c = &flagCell{}
		fh.cells[k] = c
	}
	blocked := false
	for {
		if fh.broken {
			delete(fh.waiting, pe.rank)
			fh.mu.Unlock()
			if blocked {
				pe.lsUnblock()
			}
			return ErrWaitBroken
		}
		if c.posted > c.consumed {
			c.consumed++
			t := c.at
			pe.lastWaitBy = c.by
			delete(fh.waiting, pe.rank)
			fh.mu.Unlock()
			pe.advanceTo(t)
			if blocked {
				pe.lsUnblock()
			}
			return nil
		}
		if !blocked {
			// Hand the execution token back before sleeping; record the
			// flag we sleep on so the signaller can wake us.
			fh.waiting[pe.rank] = k
			pe.lsBlock()
			blocked = true
		}
		fh.cond.Wait()
	}
}
