package xbrtime

import (
	"errors"
	"testing"
)

func TestDisseminationBarrierSynchronises(t *testing.T) {
	for _, n := range []int{2, 3, 4, 7, 8} {
		n := n
		rt := MustNew(Config{NumPEs: n, Barrier: BarrierDissemination})
		clocks := make([]uint64, n)
		err := rt.Run(func(pe *PE) error {
			pe.Advance(uint64(pe.MyPE()) * 50_000)
			for round := 0; round < 3; round++ {
				if err := pe.Barrier(); err != nil {
					return err
				}
			}
			clocks[pe.MyPE()] = pe.Now()
			return nil
		})
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		// After a full barrier, every PE's clock is at or beyond the
		// slowest pre-barrier clock (the skew of the slowest PE).
		slowest := uint64((n - 1) * 50_000)
		for rank, c := range clocks {
			if c < slowest {
				t.Errorf("n=%d PE %d released at %d, before slowest skew %d",
					n, rank, c, slowest)
			}
		}
	}
}

func TestDisseminationBarrierOrdering(t *testing.T) {
	// A value written before the barrier must be visible after it: the
	// barrier provides the happens-before edge.
	rt := MustNew(Config{NumPEs: 4, Barrier: BarrierDissemination})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		src, _ := pe.PrivateAlloc(8)
		pe.Poke(TypeInt64, src, uint64(pe.MyPE()+500))
		peer := (pe.MyPE() + 1) % 4
		if err := pe.PutInt64(buf, src, 1, 1, peer); err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		want := uint64((pe.MyPE()+3)%4 + 500)
		if got := pe.Peek(TypeInt64, buf); got != want {
			t.Errorf("PE %d saw %d, want %d", pe.MyPE(), got, want)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDisseminationBarrierBreaks(t *testing.T) {
	rt := MustNew(Config{NumPEs: 3, Barrier: BarrierDissemination})
	boom := errors.New("boom")
	err := rt.Run(func(pe *PE) error {
		if pe.MyPE() == 2 {
			return boom
		}
		err := pe.Barrier()
		if !errors.Is(err, ErrBarrierBroken) {
			t.Errorf("PE %d: barrier returned %v", pe.MyPE(), err)
		}
		return err
	})
	if !errors.Is(err, boom) && !errors.Is(err, ErrBarrierBroken) {
		t.Fatalf("Run = %v", err)
	}
}

func TestBarrierAlgorithmNames(t *testing.T) {
	if BarrierCentral.String() != "central" || BarrierDissemination.String() != "dissemination" {
		t.Error("algorithm names wrong")
	}
	if BarrierAlgorithm(9).String() != "unknown" {
		t.Error("unknown algorithm name")
	}
}

func TestDisseminationCheaperThanCentralAtScale(t *testing.T) {
	// log2(n) parallel rounds versus a 2-phase centralised gather/release:
	// at 8 PEs the dissemination barrier should not be slower.
	lat := func(algo BarrierAlgorithm) uint64 {
		rt := MustNew(Config{NumPEs: 8, Barrier: algo})
		var cycles uint64
		err := rt.Run(func(pe *PE) error {
			if err := pe.Barrier(); err != nil { // warm up
				return err
			}
			start := pe.Now()
			for i := 0; i < 10; i++ {
				if err := pe.Barrier(); err != nil {
					return err
				}
			}
			if pe.MyPE() == 0 {
				cycles = pe.Now() - start
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	central := lat(BarrierCentral)
	dissem := lat(BarrierDissemination)
	if dissem > central {
		t.Errorf("dissemination (%d cyc) slower than central (%d cyc) at 8 PEs",
			dissem, central)
	}
}

func TestCommTraceObservesRemoteOnly(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2})
	var events []TraceEvent
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		pe.SetCommTrace(func(ev TraceEvent) { events = append(events, ev) })
		src, _ := pe.PrivateAlloc(64)
		if err := pe.PutInt64(buf, src, 4, 1, 1); err != nil {
			return err
		}
		if err := pe.GetInt64(src, buf, 2, 1, 1); err != nil {
			return err
		}
		// Self-put must not be traced.
		if err := pe.PutInt64(buf, src, 1, 1, 0); err != nil {
			return err
		}
		pe.SetCommTrace(nil)
		if err := pe.PutInt64(buf, src, 1, 1, 1); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 {
		t.Fatalf("events = %+v", events)
	}
	if events[0] != (TraceEvent{Kind: "put", Target: 1, Nelems: 4}) {
		t.Errorf("event 0 = %+v", events[0])
	}
	if events[1] != (TraceEvent{Kind: "get", Target: 1, Nelems: 2}) {
		t.Errorf("event 1 = %+v", events[1])
	}
}
