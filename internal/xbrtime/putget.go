package xbrtime

import (
	"xbgas/internal/fabric"
	"xbgas/internal/sim"
)

// olbHitCost and olbMissCost charge the object-ID translation performed
// once per transfer when the stub loads the target's object ID into an
// e register.
const (
	olbHitCost  = 2
	olbMissCost = 20
)

// Handle identifies an outstanding non-blocking transfer.
type Handle struct {
	completeAt uint64
	active     bool
}

// Pending reports whether the handle still has an unwaited transfer.
func (h Handle) Pending() bool { return h.active }

// Wait blocks (in virtual time) until the transfer behind h completes:
// the clock advances to the transfer's completion time if it is later
// than now.
func (pe *PE) Wait(h Handle) {
	if h.active {
		pe.advanceTo(h.completeAt)
	}
}

// Put copies nelems elements of type dt from local address src to
// address dest on PE target, reading and writing every stride-th
// element (stride 1 = contiguous; the stride applies at both ends,
// paper §3.3). Put blocks until the last element is delivered.
//
//xbgas:typed transfer
func (pe *PE) Put(dt DType, dest, src uint64, nelems, stride int, target int) error {
	h, err := pe.put(dt, dest, src, nelems, stride, target, false)
	if err != nil {
		return err
	}
	pe.Wait(h)
	return nil
}

// PutNB is the non-blocking form of Put: it returns once the last
// element has been issued; Wait completes the transfer.
//
//xbgas:typed transfer
func (pe *PE) PutNB(dt DType, dest, src uint64, nelems, stride int, target int) (Handle, error) {
	return pe.put(dt, dest, src, nelems, stride, target, true)
}

// Get copies nelems elements of type dt from address src on PE target
// to local address dest, with the same stride contract as Put. Get
// blocks until the last element has arrived.
//
//xbgas:typed transfer
func (pe *PE) Get(dt DType, dest, src uint64, nelems, stride int, target int) error {
	h, err := pe.get(dt, dest, src, nelems, stride, target, false)
	if err != nil {
		return err
	}
	pe.Wait(h)
	return nil
}

// GetNB is the non-blocking form of Get.
//
//xbgas:typed transfer
func (pe *PE) GetNB(dt DType, dest, src uint64, nelems, stride int, target int) (Handle, error) {
	return pe.get(dt, dest, src, nelems, stride, target, true)
}

// put validates, records observability, and dispatches to putImpl. The
// trace span covers the issue window [start, pe.clock]; the latency
// histogram sees the full completion time (start to last arrival).
func (pe *PE) put(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	if !pe.ObsEnabled() {
		return pe.putImpl(dt, dest, src, nelems, stride, target, nonblocking)
	}
	start := pe.clock
	h, err := pe.putImpl(dt, dest, src, nelems, stride, target, nonblocking)
	if err == nil && h.active {
		pe.obsTransfer(true, start, h.completeAt, target, nelems)
	}
	return h, err
}

func (pe *PE) putImpl(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	if err := checkTransfer(dt, nelems, stride); err != nil {
		return Handle{}, err
	}
	if err := pe.checkTarget(target); err != nil {
		return Handle{}, err
	}
	if nelems == 0 {
		return Handle{}, nil
	}
	pe.puts++
	pe.putElems += uint64(nelems)
	if target != pe.rank {
		pe.traceComm("put", target, nelems)
	}

	if pe.rt.cfg.Transport == TransportSpike {
		return pe.spikePut(dt, dest, src, nelems, stride, target)
	}

	w := dt.Width
	step := uint64(stride * w)

	if target == pe.rank {
		// PE-local put: plain loads and stores through the hierarchy.
		// Timing first (the alternating read/write touches drive the
		// same cache transitions as the reference element loop), then
		// the data moves in one locked pass with the reference's
		// element-order overlap semantics.
		for i := 0; i < nelems; i++ {
			off := uint64(i) * step
			pe.Advance(pe.node.Hier.Touch(src+off, w, false) + loadCPU)
			pe.Advance(pe.node.Hier.Touch(dest+off, w, true) + loadCPU)
		}
		pe.node.LockedCopyElems(dest, src, w, step, nelems)
		return Handle{completeAt: pe.clock, active: true}, nil
	}

	// In lockstep mode, transfers book the fabric in virtual-clock
	// order.
	pe.lsYield()

	if pe.rt.cfg.ReferencePath {
		return pe.putReference(dt, dest, src, nelems, stride, target, nonblocking)
	}

	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	unrolled := nonblocking || nelems >= pe.rt.cfg.UnrollThreshold
	gap := issueGap(fab.Config())

	// Price every source-element read on the local hierarchy (owned by
	// this PE's goroutine, so no lock is needed), read the values in
	// one locked pass, and book the whole element stream in one fabric
	// critical section. The per-element issue/arrival recurrence is
	// evaluated inside SendStream and matches the reference loop cycle
	// for cycle.
	costs := pe.costs(nelems)
	pe.node.Hier.TouchRange(src, w, step, nelems, false, costs)
	for i := range costs {
		costs[i] += loadCPU
	}
	vals := pe.elems(nelems)
	pe.node.LockedReadElems(src, w, step, nelems, vals)

	endIssue, lastArrive, err := fab.SendStream(fabric.Stream{
		Src:        pe.rank,
		Dst:        target,
		ElemBytes:  8 + w,
		Start:      pe.clock,
		PreCost:    costs,
		Gap:        gap,
		FlowWindow: uint64(pe.rt.cfg.InflightDepth) * gap,
		Unrolled:   unrolled,
	})
	if err != nil {
		return Handle{}, err
	}
	targetNode.LockedWriteElems(dest, w, step, nelems, vals)
	pe.advanceTo(endIssue)
	return Handle{completeAt: lastArrive, active: true}, nil
}

// putReference is the original element-at-a-time remote put. It books
// the fabric one message per element; the batched path must agree with
// it exactly (see the differential tests). Kept selectable via
// Config.ReferencePath.
func (pe *PE) putReference(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	w := dt.Width
	step := uint64(stride * w)
	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	unrolled := nonblocking || nelems >= pe.rt.cfg.UnrollThreshold
	gap := issueGap(fab.Config())
	transit := fab.TransitCost(pe.rank, target, 8+w)
	window := uint64(pe.rt.cfg.InflightDepth) * gap
	issue := pe.clock
	var lastArrive uint64
	for i := 0; i < nelems; i++ {
		off := uint64(i) * step
		// Source element read on the local hierarchy.
		cost := pe.node.Hier.Touch(src+off, w, false)
		raw := pe.node.LockedRead(src+off, w)
		issue += cost + loadCPU

		arrive, err := fab.Send(pe.rank, target, 8+w, issue)
		if err != nil {
			return Handle{}, err
		}
		if arrive > lastArrive {
			lastArrive = arrive
		}
		targetNode.LockedWrite(dest+off, w, raw)

		if unrolled {
			// Pipelined (unrolled) issue: the next store leaves as soon
			// as the NIC accepts another message — unless flow control
			// throttles the stream because more than InflightDepth
			// element stores are backed up in the network.
			issue += gap
			if backlog := arrive - transit; backlog > issue+window {
				issue = backlog - window
			}
		} else {
			// Strictly ordered element stores below the threshold.
			issue = arrive
		}
	}
	pe.advanceTo(issue)
	return Handle{completeAt: lastArrive, active: true}, nil
}

// get mirrors put's observability wrapper around getImpl.
func (pe *PE) get(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	if !pe.ObsEnabled() {
		return pe.getImpl(dt, dest, src, nelems, stride, target, nonblocking)
	}
	start := pe.clock
	h, err := pe.getImpl(dt, dest, src, nelems, stride, target, nonblocking)
	if err == nil && h.active {
		pe.obsTransfer(false, start, h.completeAt, target, nelems)
	}
	return h, err
}

func (pe *PE) getImpl(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	if err := checkTransfer(dt, nelems, stride); err != nil {
		return Handle{}, err
	}
	if err := pe.checkTarget(target); err != nil {
		return Handle{}, err
	}
	if nelems == 0 {
		return Handle{}, nil
	}
	pe.gets++
	pe.getElems += uint64(nelems)
	if target != pe.rank {
		pe.traceComm("get", target, nelems)
	}

	if pe.rt.cfg.Transport == TransportSpike {
		return pe.spikeGet(dt, dest, src, nelems, stride, target)
	}

	w := dt.Width
	step := uint64(stride * w)

	if target == pe.rank {
		// PE-local get mirrors the PE-local put.
		for i := 0; i < nelems; i++ {
			off := uint64(i) * step
			pe.Advance(pe.node.Hier.Touch(src+off, w, false) + loadCPU)
			pe.Advance(pe.node.Hier.Touch(dest+off, w, true) + loadCPU)
		}
		pe.node.LockedCopyElems(dest, src, w, step, nelems)
		return Handle{completeAt: pe.clock, active: true}, nil
	}

	pe.lsYield()

	if pe.rt.cfg.ReferencePath {
		return pe.getReference(dt, dest, src, nelems, stride, target, nonblocking)
	}

	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	unrolled := nonblocking || nelems >= pe.rt.cfg.UnrollThreshold
	gap := issueGap(fab.Config())

	// Price the destination-element writes up front (the hierarchy is
	// owned by this PE and untouched by the fabric bookings, so the
	// per-element costs are the same the reference loop would compute
	// interleaved), then book every request/response round trip in one
	// fabric critical section and move the data in two locked passes.
	costs := pe.costs(nelems)
	pe.node.Hier.TouchRange(dest, w, step, nelems, true, costs)

	endIssue, lastDone, err := fab.FetchStream(fabric.Fetch{
		Src:        pe.rank,
		Dst:        target,
		ReqBytes:   8,
		RespBytes:  w,
		Start:      pe.clock,
		ReqCost:    loadCPU,
		PostCost:   costs,
		Gap:        gap,
		FlowWindow: uint64(pe.rt.cfg.InflightDepth) * gap,
		Unrolled:   unrolled,
	})
	if err != nil {
		return Handle{}, err
	}
	vals := pe.elems(nelems)
	targetNode.LockedReadElems(src, w, step, nelems, vals)
	pe.node.LockedWriteElems(dest, w, step, nelems, vals)
	pe.advanceTo(endIssue)
	return Handle{completeAt: lastDone, active: true}, nil
}

// getReference is the original element-at-a-time remote get, kept
// selectable via Config.ReferencePath as the differential baseline for
// the batched path.
func (pe *PE) getReference(dt DType, dest, src uint64, nelems, stride int, target int, nonblocking bool) (Handle, error) {
	w := dt.Width
	step := uint64(stride * w)
	fab := pe.rt.machine.Fabric
	targetNode := pe.rt.machine.Nodes[target]
	pe.chargeOLB(target)

	unrolled := nonblocking || nelems >= pe.rt.cfg.UnrollThreshold
	gap := issueGap(fab.Config())
	transit := fab.TransitCost(pe.rank, target, 8) + fab.TransitCost(target, pe.rank, w)
	window := uint64(pe.rt.cfg.InflightDepth) * gap
	issue := pe.clock
	var lastArrive uint64
	for i := 0; i < nelems; i++ {
		off := uint64(i) * step
		// Request out, data back.
		req, err := fab.Send(pe.rank, target, 8, issue+loadCPU)
		if err != nil {
			return Handle{}, err
		}
		data, err := fab.Send(target, pe.rank, w, req)
		if err != nil {
			return Handle{}, err
		}
		raw := targetNode.LockedRead(src+off, w)
		// Destination element write on the local hierarchy.
		cost := pe.node.Hier.Touch(dest+off, w, true)
		pe.node.LockedWrite(dest+off, w, raw)
		done := data + cost
		if done > lastArrive {
			lastArrive = done
		}
		if unrolled {
			// Pipelined requests with the same flow-control window as
			// the put path.
			issue += gap
			if backlog := data - transit; backlog > issue+window {
				issue = backlog - window
			}
		} else {
			issue = done
		}
	}
	pe.advanceTo(issue)
	return Handle{completeAt: lastArrive, active: true}, nil
}

// chargeOLB models the object-ID translation for a remote transfer.
func (pe *PE) chargeOLB(target int) {
	_, hit, err := pe.node.OLB.Translate(sim.ObjectID(target))
	switch {
	case err != nil:
		// Machine construction registers every peer; a fault here is a
		// runtime bug, not a user error.
		panic(err)
	case hit:
		pe.Advance(olbHitCost)
	default:
		pe.Advance(olbMissCost)
	}
}

// issueGap returns the pipelined per-element sender occupancy,
// defaulting to the injection overhead when the fabric model does not
// set a separate throughput gap.
func issueGap(cfg fabric.Config) uint64 {
	if cfg.IssueGap > 0 {
		return cfg.IssueGap
	}
	return cfg.InjectionOverhead
}

// WaitAll completes every pending transfer in hs: the clock advances to
// the latest completion time.
func (pe *PE) WaitAll(hs []Handle) {
	for _, h := range hs {
		pe.Wait(h)
	}
}
