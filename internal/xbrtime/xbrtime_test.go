package xbrtime

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func newRT(t *testing.T, n int) *Runtime {
	t.Helper()
	rt, err := New(Config{NumPEs: n})
	if err != nil {
		t.Fatal(err)
	}
	return rt
}

func TestInitValidation(t *testing.T) {
	if _, err := New(Config{NumPEs: 0}); err == nil {
		t.Error("zero PEs must fail")
	}
	if _, err := New(Config{NumPEs: -3}); err == nil {
		t.Error("negative PEs must fail")
	}
}

func TestIdentity(t *testing.T) {
	rt := newRT(t, 4)
	defer rt.Close()
	seen := make([]bool, 4)
	err := rt.Run(func(pe *PE) error {
		if pe.NumPEs() != 4 {
			t.Errorf("NumPEs = %d", pe.NumPEs())
		}
		seen[pe.MyPE()] = true
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank, ok := range seen {
		if !ok {
			t.Errorf("rank %d never ran", rank)
		}
	}
}

func TestMallocSymmetry(t *testing.T) {
	rt := newRT(t, 4)
	addrs := make([]uint64, 4)
	err := rt.Run(func(pe *PE) error {
		a, err := pe.Malloc(128)
		if err != nil {
			return err
		}
		b, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Free(a); err != nil {
			return err
		}
		c, err := pe.Malloc(32) // reuses the freed span deterministically
		if err != nil {
			return err
		}
		_ = b
		addrs[pe.MyPE()] = c
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for rank := 1; rank < 4; rank++ {
		if addrs[rank] != addrs[0] {
			t.Errorf("asymmetric allocation: PE %d got %#x, PE 0 got %#x",
				rank, addrs[rank], addrs[0])
		}
	}
	if !rt.PE(0).IsShared(addrs[0]) {
		t.Error("allocation must fall in the shared segment")
	}
}

func TestMallocSymmetryQuick(t *testing.T) {
	// Property: any identical sequence of alloc/free operations yields
	// identical addresses on independent heap instances.
	f := func(ops []uint16) bool {
		h1 := newHeap(SharedBase, 1<<20)
		h2 := newHeap(SharedBase, 1<<20)
		var live1, live2 []uint64
		for _, op := range ops {
			if op%3 != 0 || len(live1) == 0 {
				n := uint64(op%1024) + 1
				a1, e1 := h1.alloc(n)
				a2, e2 := h2.alloc(n)
				if (e1 == nil) != (e2 == nil) || a1 != a2 {
					return false
				}
				if e1 == nil {
					live1 = append(live1, a1)
					live2 = append(live2, a2)
				}
			} else {
				i := int(op) % len(live1)
				if h1.release(live1[i]) != nil || h2.release(live2[i]) != nil {
					return false
				}
				live1 = append(live1[:i], live1[i+1:]...)
				live2 = append(live2[:i], live2[i+1:]...)
			}
		}
		return h1.used() == h2.used()
	}
	cfg := &quick.Config{MaxCount: 200, Rand: rand.New(rand.NewSource(2))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestHeapExhaustionAndMisuse(t *testing.T) {
	h := newHeap(SharedBase, 256)
	if _, err := h.alloc(512); err == nil {
		t.Error("oversized alloc must fail")
	}
	if _, err := h.alloc(0); err == nil {
		t.Error("zero alloc must fail")
	}
	a, err := h.alloc(64)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.release(a + 4); err == nil {
		t.Error("freeing an interior pointer must fail")
	}
	if err := h.release(a); err != nil {
		t.Fatal(err)
	}
	if err := h.release(a); err == nil {
		t.Error("double free must fail")
	}
	// After coalescing, the full segment is allocatable again.
	if _, err := h.alloc(256); err != nil {
		t.Errorf("coalescing failed: %v", err)
	}
}

func TestHeapCoalescing(t *testing.T) {
	h := newHeap(0, 4096)
	a, _ := h.alloc(1024)
	b, _ := h.alloc(1024)
	c, _ := h.alloc(1024)
	// Free middle, then neighbours: all must coalesce into one span.
	if err := h.release(b); err != nil {
		t.Fatal(err)
	}
	if err := h.release(a); err != nil {
		t.Fatal(err)
	}
	if err := h.release(c); err != nil {
		t.Fatal(err)
	}
	if len(h.free) != 1 || h.free[0].size != 4096 {
		t.Errorf("free list = %+v", h.free)
	}
}

func TestBarrierSynchronisesClocks(t *testing.T) {
	rt := newRT(t, 4)
	clocks := make([]uint64, 4)
	err := rt.Run(func(pe *PE) error {
		// Skew the clocks wildly.
		pe.Advance(uint64(pe.MyPE()) * 100_000)
		if err := pe.Barrier(); err != nil {
			return err
		}
		clocks[pe.MyPE()] = pe.Now()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Every PE must be released at or after the slowest arrival.
	for rank, c := range clocks {
		if c < 300_000 {
			t.Errorf("PE %d released at %d, before slowest arrival", rank, c)
		}
	}
}

func TestBarrierSinglePE(t *testing.T) {
	rt := newRT(t, 1)
	err := rt.Run(func(pe *PE) error { return pe.Barrier() })
	if err != nil {
		t.Fatal(err)
	}
}

func TestBrokenBarrierReleasesSurvivors(t *testing.T) {
	rt := newRT(t, 3)
	sentinel := errors.New("injected failure")
	err := rt.Run(func(pe *PE) error {
		if pe.MyPE() == 1 {
			return sentinel // dies without entering the barrier
		}
		err := pe.Barrier()
		if !errors.Is(err, ErrBarrierBroken) {
			t.Errorf("PE %d: barrier returned %v, want ErrBarrierBroken", pe.MyPE(), err)
		}
		return err
	})
	if !errors.Is(err, sentinel) && !errors.Is(err, ErrBarrierBroken) {
		t.Fatalf("Run = %v", err)
	}
}

func TestPutGetRoundTrip(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * 16)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(8 * 16)
			for i := 0; i < 16; i++ {
				pe.Poke(TypeUint64, src+uint64(i*8), uint64(1000+i))
			}
			if err := pe.Put(TypeUint64, buf, src, 16, 1, 1); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			for i := 0; i < 16; i++ {
				if got := pe.Peek(TypeUint64, buf+uint64(i*8)); got != uint64(1000+i) {
					t.Errorf("elem %d = %d", i, got)
				}
			}
			// And get it back from PE 0? PE 0 never wrote its own copy;
			// instead get our own values into private space.
			dst, _ := pe.PrivateAlloc(8 * 16)
			if err := pe.Get(TypeUint64, dst, buf, 16, 1, 1); err != nil {
				return err
			}
			if got := pe.Peek(TypeUint64, dst+8); got != 1001 {
				t.Errorf("self get elem 1 = %d", got)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPutWithStride(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(4 * 32)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(4 * 32)
			for i := 0; i < 8; i++ {
				pe.Poke(TypeInt32, src+uint64(i*3*4), uint64(int64(-5-i)))
			}
			// stride 3: every third int32 at both ends.
			if err := pe.Put(TypeInt32, buf, src, 8, 3, 1); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			for i := 0; i < 8; i++ {
				got := int64(pe.Peek(TypeInt32, buf+uint64(i*3*4)))
				if got != int64(-5-i) {
					t.Errorf("strided elem %d = %d, want %d", i, got, -5-i)
				}
			}
			// Gaps must stay zero.
			if gap := pe.Peek(TypeInt32, buf+4); gap != 0 {
				t.Errorf("stride gap clobbered: %d", gap)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGetFromRemote(t *testing.T) {
	rt := newRT(t, 3)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		pe.Poke(TypeInt64, buf, uint64(int64(100*pe.MyPE())))
		if err := pe.Barrier(); err != nil {
			return err
		}
		dst, _ := pe.PrivateAlloc(64)
		peer := (pe.MyPE() + 1) % 3
		if err := pe.Get(TypeInt64, dst, buf, 1, 1, peer); err != nil {
			return err
		}
		if got := int64(pe.Peek(TypeInt64, dst)); got != int64(100*peer) {
			t.Errorf("PE %d got %d from peer %d", pe.MyPE(), got, peer)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSelfPut(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(16)
		if err != nil {
			return err
		}
		src, _ := pe.PrivateAlloc(16)
		pe.Poke(TypeUint64, src, 77)
		if err := pe.Put(TypeUint64, buf, src, 1, 1, pe.MyPE()); err != nil {
			return err
		}
		if got := pe.Peek(TypeUint64, buf); got != 77 {
			t.Errorf("self put = %d", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransferValidation(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		if pe.MyPE() != 0 {
			return nil
		}
		if err := pe.Put(TypeInt, 0, 0, 1, 1, 9); err == nil {
			t.Error("put to invalid PE must fail")
		}
		if err := pe.Put(TypeInt, 0, 0, -1, 1, 1); err == nil {
			t.Error("negative nelems must fail")
		}
		if err := pe.Put(TypeInt, 0, 0, 1, 0, 1); err == nil {
			t.Error("zero stride must fail")
		}
		if err := pe.Get(TypeInt, 0, 0, 1, -2, 1); err == nil {
			t.Error("negative stride must fail")
		}
		bad := DType{Name: "bad", Width: 3}
		if err := pe.Put(bad, 0, 0, 1, 1, 1); err == nil {
			t.Error("invalid dtype must fail")
		}
		// Zero-element transfers are legal no-ops.
		if err := pe.Put(TypeInt, 0, 0, 0, 1, 1); err != nil {
			t.Errorf("zero-element put: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingOverlap(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * 64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(8 * 64)
			h, err := pe.PutNB(TypeUint64, buf, src, 64, 1, 1)
			if err != nil {
				return err
			}
			if !h.Pending() {
				t.Error("handle must be pending")
			}
			issued := pe.Now()
			pe.Wait(h)
			completed := pe.Now()
			if completed < issued {
				t.Error("wait moved the clock backward")
			}
			// The blocking form must not complete before the
			// non-blocking issue time.
			if completed == issued {
				// Acceptable only if delivery beat local issue; with
				// 64 pipelined elements the last arrival is later.
				t.Errorf("no overlap window: issue=%d complete=%d", issued, completed)
			}
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestUnrolledFasterThanElementwise(t *testing.T) {
	// Above the unroll threshold, transfers pipeline and the per-element
	// cost drops — the effect the paper's §3.3 optimisation targets.
	run := func(threshold int) uint64 {
		rt := MustNew(Config{NumPEs: 2, UnrollThreshold: threshold})
		var cycles uint64
		err := rt.Run(func(pe *PE) error {
			buf, err := pe.Malloc(8 * 256)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				src, _ := pe.PrivateAlloc(8 * 256)
				start := pe.Now()
				if err := pe.Put(TypeUint64, buf, src, 256, 1, 1); err != nil {
					return err
				}
				cycles = pe.Now() - start
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return cycles
	}
	unrolled := run(8)          // 256 >= 8: pipelined
	elementwise := run(100_000) // never unrolls: strict ordering
	if unrolled >= elementwise {
		t.Errorf("unrolled put (%d cyc) should beat element-wise (%d cyc)",
			unrolled, elementwise)
	}
}

func TestStatsAccounting(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(80)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(80)
			if err := pe.Put(TypeUint64, buf, src, 10, 1, 1); err != nil {
				return err
			}
			if err := pe.Get(TypeUint64, src, buf, 5, 1, 1); err != nil {
				return err
			}
			s := pe.Stats()
			if s.Puts != 1 || s.PutElems != 10 || s.Gets != 1 || s.GetElems != 5 {
				t.Errorf("stats = %+v", s)
			}
			if s.Barriers != 1 || s.Cycles == 0 {
				t.Errorf("stats = %+v", s)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDTypeTable1(t *testing.T) {
	if len(Types) != 24 {
		t.Fatalf("Table 1 lists 24 types, have %d", len(Types))
	}
	// Spot-check the mapping of paper Table 1.
	checks := map[string]string{
		"float": "float", "double": "double", "longdouble": "long double",
		"uchar": "unsigned char", "ulonglong": "unsigned long long",
		"size": "size_t", "ptrdiff": "ptrdiff_t", "int32": "int32_t",
	}
	for name, cname := range checks {
		dt, ok := TypeByName(name)
		if !ok || dt.CName != cname {
			t.Errorf("TypeByName(%q) = %+v, %v", name, dt, ok)
		}
	}
	if _, ok := TypeByName("quaternion"); ok {
		t.Error("unknown type name must not resolve")
	}
	for _, dt := range Types {
		if !dt.Valid() {
			t.Errorf("%s: invalid descriptor", dt)
		}
	}
}

func TestDTypeCanonAndFloats(t *testing.T) {
	if got := TypeChar.Canon(0xFF); int64(got) != -1 {
		t.Errorf("char canon(0xFF) = %d, want -1", int64(got))
	}
	if got := TypeUChar.Canon(0xFF); got != 255 {
		t.Errorf("uchar canon(0xFF) = %d, want 255", got)
	}
	if got := TypeInt16.Canon(0x8000); int64(got) != -32768 {
		t.Errorf("int16 canon = %d", int64(got))
	}
	f := 3.25
	if got := TypeDouble.Float(TypeDouble.FromFloat(f)); got != f {
		t.Errorf("double round trip = %v", got)
	}
	f32 := float64(float32(1.5e-3))
	if got := TypeFloat.Float(TypeFloat.Canon(TypeFloat.FromFloat(f32))); got != f32 {
		t.Errorf("float round trip = %v", got)
	}
	if got := TypeFloat.Float(TypeFloat.FromFloat(math.Inf(1))); !math.IsInf(got, 1) {
		t.Error("float inf lost")
	}
}

func TestSegmentMapRendersFigure2(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		if _, err := pe.Malloc(4096); err != nil {
			return err
		}
		m := pe.SegmentMap()
		for _, want := range []string{"private", "shared", "symmetric", "alloc"} {
			if !strings.Contains(m, want) {
				t.Errorf("segment map missing %q:\n%s", want, m)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrivateAllocExhaustion(t *testing.T) {
	rt := MustNew(Config{NumPEs: 1, PrivateSize: 4096})
	err := rt.Run(func(pe *PE) error {
		if _, err := pe.PrivateAlloc(2048); err != nil {
			return err
		}
		if _, err := pe.PrivateAlloc(4096); err == nil {
			t.Error("private exhaustion must fail")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestTransportEquivalence(t *testing.T) {
	// The Spike transport (real xBGAS instructions on internal/sim) and
	// the native transport must leave identical memory contents.
	results := make(map[Transport][]uint64)
	for _, tr := range []Transport{TransportNative, TransportSpike} {
		rt := MustNew(Config{NumPEs: 2, Transport: tr})
		vals := make([]uint64, 0, 24)
		err := rt.Run(func(pe *PE) error {
			buf, err := pe.Malloc(8 * 32)
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				src, _ := pe.PrivateAlloc(8 * 32)
				for i := 0; i < 12; i++ {
					pe.Poke(TypeUint64, src+uint64(i*8), uint64(i*i+7))
				}
				// Above threshold (unrolled) and below (element loop).
				if err := pe.Put(TypeUint64, buf, src, 12, 1, 1); err != nil {
					return err
				}
				if err := pe.Put(TypeUint64, buf+8*16, src, 3, 2, 1); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 1 {
				dst, _ := pe.PrivateAlloc(8 * 32)
				if err := pe.Get(TypeUint64, dst, buf, 12, 1, 0); err != nil {
					return err
				}
				_ = dst
				for i := 0; i < 12; i++ {
					vals = append(vals, pe.Peek(TypeUint64, buf+uint64(i*8)))
				}
				for i := 0; i < 3; i++ {
					vals = append(vals, pe.Peek(TypeUint64, buf+8*16+uint64(i*16)))
				}
			}
			return nil
		})
		if err != nil {
			t.Fatalf("transport %d: %v", tr, err)
		}
		results[tr] = vals
	}
	n, s := results[TransportNative], results[TransportSpike]
	if len(n) != len(s) {
		t.Fatalf("result lengths differ: %d vs %d", len(n), len(s))
	}
	for i := range n {
		if n[i] != s[i] {
			t.Errorf("elem %d: native=%d spike=%d", i, n[i], s[i])
		}
	}
	// And the data is actually nonzero (the test moved something).
	if n[0] != 7 || n[11] != 11*11+7 {
		t.Errorf("unexpected data: %v", n)
	}
}

func TestSpikeTransportAllWidths(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2, Transport: TransportSpike})
	err := rt.Run(func(pe *PE) error {
		for _, dt := range []DType{TypeUint8, TypeUint16, TypeUint32, TypeUint64} {
			buf, err := pe.Malloc(uint64(dt.Width * 8))
			if err != nil {
				return err
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				src, _ := pe.PrivateAlloc(uint64(dt.Width * 8))
				for i := 0; i < 8; i++ {
					pe.Poke(dt, src+uint64(i*dt.Width), uint64(40+i))
				}
				if err := pe.Put(dt, buf, src, 8, 1, 1); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 1 {
				for i := 0; i < 8; i++ {
					if got := pe.Peek(dt, buf+uint64(i*dt.Width)); got != uint64(40+i) {
						t.Errorf("%s elem %d = %d", dt, i, got)
					}
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadWriteElemTimed(t *testing.T) {
	rt := newRT(t, 1)
	err := rt.Run(func(pe *PE) error {
		addr, _ := pe.PrivateAlloc(8)
		before := pe.Now()
		minusNine := int64(-9)
		pe.WriteElem(TypeInt64, addr, uint64(minusNine))
		if got := int64(pe.ReadElem(TypeInt64, addr)); got != -9 {
			t.Errorf("ReadElem = %d", got)
		}
		if pe.Now() == before {
			t.Error("timed access did not advance the clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestStatsReport(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, _ := pe.PrivateAlloc(64)
			if err := pe.PutInt64(buf, src, 8, 1, 1); err != nil {
				return err
			}
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	report := rt.StatsReport()
	for _, want := range []string{"runtime: 2 PEs", "fully-connected", "L1 hit%", "OLB hits", "fabric:", "barriers"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}
}

func TestRuntimeAccessorsAndTeamsLocal(t *testing.T) {
	rt := newRT(t, 3)
	defer rt.Close()
	if rt.NumPEs() != 3 || rt.Machine() == nil || rt.Config().NumPEs != 3 {
		t.Error("runtime accessors wrong")
	}
	world := rt.WorldTeam()
	if world.Size() != 3 || world.Member(2) != 2 || !world.Contains(0) {
		t.Error("world team wrong")
	}
	team, err := rt.NewTeam([]int{2, 0})
	if err != nil {
		t.Fatal(err)
	}
	err = rt.Run(func(pe *PE) error {
		if r, ok := team.Rank(pe); pe.MyPE() == 2 && (!ok || r != 0) {
			t.Errorf("PE 2 team rank = %d, %v", r, ok)
		}
		if pe.Runtime() != rt {
			t.Error("Runtime() accessor wrong")
		}
		if team.Contains(pe.MyPE()) {
			return pe.TeamBarrier(team)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScratchReuseAndGrowth(t *testing.T) {
	rt := newRT(t, 1)
	err := rt.Run(func(pe *PE) error {
		a, err := pe.Scratch(64)
		if err != nil {
			return err
		}
		b, err := pe.Scratch(32) // fits: same region
		if err != nil {
			return err
		}
		if a != b {
			t.Errorf("scratch not reused: %#x vs %#x", a, b)
		}
		c, err := pe.Scratch(1 << 12) // grows: new region
		if err != nil {
			return err
		}
		if c == a {
			t.Error("scratch growth returned the old region")
		}
		if pe.SharedUsed() != 0 {
			t.Error("scratch must come from private memory")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeekPokeBytes(t *testing.T) {
	rt := newRT(t, 1)
	err := rt.Run(func(pe *PE) error {
		addr, err := pe.PrivateAlloc(16)
		if err != nil {
			return err
		}
		pe.PokeBytes(addr, []byte("hello xbgas"))
		buf := make([]byte, 11)
		pe.PeekBytes(addr, buf)
		if string(buf) != "hello xbgas" {
			t.Errorf("PeekBytes = %q", buf)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDTypeHelpers(t *testing.T) {
	if TypeInt16.FromInt(-2) != 0xFFFE {
		t.Errorf("FromInt(-2) = %#x", TypeInt16.FromInt(-2))
	}
	if got := TypeInt.FormatValue(TypeInt.Canon(0xFFFFFFFF)); got != "-1" {
		t.Errorf("int format = %q", got)
	}
	if got := TypeUInt.FormatValue(5); got != "5" {
		t.Errorf("uint format = %q", got)
	}
	if got := TypeDouble.FormatValue(TypeDouble.FromFloat(2.5)); got != "2.5" {
		t.Errorf("double format = %q", got)
	}
}

func TestWaitAll(t *testing.T) {
	rt := newRT(t, 2)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * 32)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		src, _ := pe.PrivateAlloc(8 * 32)
		var hs []Handle
		for i := 0; i < 4; i++ {
			h, err := pe.PutNB(TypeUint64, buf+uint64(i*64), src, 8, 1, 1)
			if err != nil {
				return err
			}
			hs = append(hs, h)
		}
		before := pe.Now()
		pe.WaitAll(hs)
		if pe.Now() < before {
			t.Error("WaitAll moved time backward")
		}
		// Waiting again is a no-op.
		pe.WaitAll(hs)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
