package xbrtime

import (
	"testing"
)

// runTransport moves a fixed pattern with put (above and below the
// unroll threshold), strided put, and get, then returns PE 1's buffer
// contents.
func runTransport(t *testing.T, cfg Config) []uint64 {
	t.Helper()
	cfg.NumPEs = 2
	rt := MustNew(cfg)
	defer rt.Close()
	out := make([]uint64, 0, 32)
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * 64)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			src, err := pe.PrivateAlloc(8 * 64)
			if err != nil {
				return err
			}
			for i := 0; i < 32; i++ {
				pe.Poke(TypeUint64, src+uint64(i*8), uint64(i*3+11))
			}
			if err := pe.Put(TypeUint64, buf, src, 16, 1, 1); err != nil { // unrolled
				return err
			}
			if err := pe.Put(TypeUint64, buf+16*8, src, 4, 1, 1); err != nil { // element loop
				return err
			}
			if err := pe.Put(TypeUint64, buf+20*8, src, 4, 3, 1); err != nil { // strided
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() == 1 {
			// Read back some values via get from PE 0's... own buffer is
			// local; instead get from PE 0 to confirm the reverse path.
			dst, err := pe.PrivateAlloc(8 * 8)
			if err != nil {
				return err
			}
			if err := pe.Get(TypeUint64, dst, buf, 8, 1, 1); err != nil { // self
				return err
			}
			for i := 0; i < 32; i++ {
				out = append(out, pe.Peek(TypeUint64, buf+uint64(i*8)))
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSpikeRawClassEquivalence(t *testing.T) {
	native := runTransport(t, Config{})
	spikeBase := runTransport(t, Config{Transport: TransportSpike})
	spikeRaw := runTransport(t, Config{Transport: TransportSpike, SpikeRawClass: true})
	if len(native) == 0 {
		t.Fatal("no data transferred")
	}
	for i := range native {
		if spikeBase[i] != native[i] {
			t.Errorf("elem %d: base-class spike %d != native %d", i, spikeBase[i], native[i])
		}
		if spikeRaw[i] != native[i] {
			t.Errorf("elem %d: raw-class spike %d != native %d", i, spikeRaw[i], native[i])
		}
	}
}

func TestSpikeTransportSelfPut(t *testing.T) {
	// Object ID 0 short-circuits to local even through the spike path.
	rt := MustNew(Config{NumPEs: 2, Transport: TransportSpike})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(16)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(16)
		if err != nil {
			return err
		}
		pe.Poke(TypeUint64, src, uint64(pe.MyPE())+900)
		if err := pe.Put(TypeUint64, buf, src, 1, 1, pe.MyPE()); err != nil {
			return err
		}
		if got := pe.Peek(TypeUint64, buf); got != uint64(pe.MyPE())+900 {
			t.Errorf("PE %d self put = %d", pe.MyPE(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSpikeTransportAdvancesClock(t *testing.T) {
	rt := MustNew(Config{NumPEs: 2, Transport: TransportSpike})
	err := rt.Run(func(pe *PE) error {
		buf, err := pe.Malloc(8 * 32)
		if err != nil {
			return err
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			return nil
		}
		src, _ := pe.PrivateAlloc(8 * 32)
		before := pe.Now()
		if err := pe.Put(TypeUint64, buf, src, 32, 1, 1); err != nil {
			return err
		}
		if pe.Now() <= before {
			t.Error("spike transfer did not advance the virtual clock")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
