package xbrtime

import (
	"fmt"
	"testing"
)

// runEquivWorkload drives a contention-heavy mix of transfers: every PE
// puts and gets against both neighbours with element counts straddling
// the unroll threshold, plus a non-blocking batch and barriers. It runs
// under the deterministic scheduler so the batched and reference paths
// see identical booking orders and must produce identical clocks.
func runEquivWorkload(t *testing.T, cfg Config) ([]Stats, uint64, uint64, uint64) {
	t.Helper()
	cfg.Deterministic = true
	rt := MustNew(cfg)
	defer rt.Close()

	const nelems = 512
	err := rt.Run(func(pe *PE) error {
		n := pe.NumPEs()
		buf, err := pe.Malloc(8 * nelems * 2)
		if err != nil {
			return err
		}
		land, err := pe.PrivateAlloc(8 * nelems * 2)
		if err != nil {
			return err
		}
		for i := 0; i < nelems; i++ {
			pe.Poke(TypeULong, buf+uint64(i)*8, uint64(pe.MyPE()*1000+i))
		}
		right := (pe.MyPE() + 1) % n
		left := (pe.MyPE() + n - 1) % n

		// Blocking puts below and above the unroll threshold.
		for _, cnt := range []int{1, 4, 7, 8, 64, nelems} {
			if err := pe.Put(TypeULong, buf+8*nelems, buf, cnt, 1, right); err != nil {
				return err
			}
		}
		if err := pe.Barrier(); err != nil {
			return err
		}
		// Blocking gets, strided and contiguous.
		for _, cnt := range []int{3, 8, 100} {
			if err := pe.Get(TypeULong, land, buf, cnt, 2, left); err != nil {
				return err
			}
		}
		// Non-blocking batch against both neighbours.
		h1, err := pe.PutNB(TypeUInt, buf+8*nelems, buf, 40, 1, left)
		if err != nil {
			return err
		}
		h2, err := pe.GetNB(TypeULong, land, buf, 40, 1, right)
		if err != nil {
			return err
		}
		pe.Wait(h1)
		pe.Wait(h2)
		// PE-local transfer for the local path.
		if err := pe.Put(TypeULong, land+8*64, buf, 32, 1, pe.MyPE()); err != nil {
			return err
		}
		return pe.Barrier()
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}

	stats := make([]Stats, rt.NumPEs())
	for r := range stats {
		stats[r] = rt.PE(r).Stats()
	}
	fab := rt.Machine().Fabric
	return stats, fab.Messages(), fab.Bytes(), fab.ContentionCycles()
}

// TestStreamMatchesReference checks that the batched stream path books
// exactly the same virtual-time schedule as the original
// element-at-a-time implementation: per-PE cycle totals and fabric
// aggregates agree cycle for cycle under the deterministic scheduler.
func TestStreamMatchesReference(t *testing.T) {
	for _, npes := range []int{2, 4, 8} {
		t.Run(fmt.Sprintf("npes=%d", npes), func(t *testing.T) {
			fast, fMsgs, fBytes, fCont := runEquivWorkload(t, Config{NumPEs: npes})
			ref, rMsgs, rBytes, rCont := runEquivWorkload(t, Config{NumPEs: npes, ReferencePath: true})
			for r := range fast {
				if fast[r] != ref[r] {
					t.Errorf("PE %d stats diverge: stream %+v reference %+v", r, fast[r], ref[r])
				}
			}
			if fMsgs != rMsgs || fBytes != rBytes || fCont != rCont {
				t.Errorf("fabric totals diverge: stream msgs=%d bytes=%d cont=%d, reference msgs=%d bytes=%d cont=%d",
					fMsgs, fBytes, fCont, rMsgs, rBytes, rCont)
			}
		})
	}
}

// TestStreamMatchesReferenceValues checks that the data delivered by
// the batched path is byte-identical to the reference path.
func TestStreamMatchesReferenceValues(t *testing.T) {
	for _, refPath := range []bool{false, true} {
		rt := MustNew(Config{NumPEs: 2, ReferencePath: refPath, Deterministic: true})
		err := rt.Run(func(pe *PE) error {
			buf, err := pe.Malloc(8 * 128)
			if err != nil {
				return err
			}
			for i := 0; i < 64; i++ {
				pe.Poke(TypeULong, buf+uint64(i)*8, uint64(pe.MyPE()+1)*100+uint64(i))
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 0 {
				if err := pe.Put(TypeULong, buf+8*64, buf, 64, 1, 1); err != nil {
					return err
				}
			}
			if err := pe.Barrier(); err != nil {
				return err
			}
			if pe.MyPE() == 1 {
				for i := 0; i < 64; i++ {
					want := uint64(100 + i)
					if got := pe.Peek(TypeULong, buf+8*64+uint64(i)*8); got != want {
						return fmt.Errorf("refPath=%v elem %d: got %d want %d", refPath, i, got, want)
					}
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		rt.Close()
	}
}
