package asm

import (
	"fmt"

	"xbgas/internal/isa"
)

// pseudo expands one pseudo-instruction into concrete items. Expansion
// width is deterministic in pass one (it depends only on operand values),
// which keeps label addresses stable.
func (a *assembler) pseudo(mnemonic string, args []string) ([]item, error) {
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, have %d", mnemonic, n, len(args))
		}
		return nil
	}
	one := func(i isa.Inst) []item { return []item{{inst: i}} }

	switch mnemonic {
	case "nop":
		if err := need(0); err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.ADDI}), nil

	case "mv":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := isa.ParseReg(args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rs}), nil

	case "not":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := isa.ParseReg(args[1])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.XORI, Rd: rd, Rs1: rs, Imm: -1}), nil

	case "neg", "negw":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs, err := isa.ParseReg(args[1])
		if err != nil {
			return nil, err
		}
		op := isa.SUB
		if mnemonic == "negw" {
			op = isa.SUBW
		}
		return one(isa.Inst{Op: op, Rd: rd, Rs2: rs}), nil

	case "seqz":
		return a.cmpZero(args, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTIU, Rd: rd, Rs1: rs, Imm: 1}
		})
	case "snez":
		return a.cmpZero(args, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLTU, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})
	case "sltz":
		return a.cmpZero(args, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLT, Rd: rd, Rs1: rs, Rs2: isa.Zero}
		})
	case "sgtz":
		return a.cmpZero(args, func(rd, rs isa.Reg) isa.Inst {
			return isa.Inst{Op: isa.SLT, Rd: rd, Rs1: isa.Zero, Rs2: rs}
		})

	case "li":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		v, err := parseImm(args[1])
		if err != nil {
			return nil, err
		}
		insts := materialize(rd, v)
		items := make([]item, len(insts))
		for i, in := range insts {
			items[i] = item{inst: in}
		}
		return items, nil

	case "la":
		if err := need(2); err != nil {
			return nil, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		if !isIdent(args[1]) {
			return nil, fmt.Errorf("la: %q is not a label", args[1])
		}
		// Fixed two-word absolute expansion (addresses fit in 31 bits in
		// the simulated machines).
		return []item{
			{inst: isa.Inst{Op: isa.LUI, Rd: rd}, symbol: args[1], mode: patchAbsolute, hiPart: true},
			{inst: isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd}, symbol: args[1], mode: patchAbsolute},
		}, nil

	case "j":
		if err := need(1); err != nil {
			return nil, err
		}
		imm, sym, err := immOrSymbol(args[0])
		if err != nil {
			return nil, err
		}
		it := item{inst: isa.Inst{Op: isa.JAL, Rd: isa.Zero, Imm: imm}}
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return []item{it}, nil

	case "jal":
		// Single-operand form: jal label == jal ra, label.
		if len(args) == 1 {
			imm, sym, err := immOrSymbol(args[0])
			if err != nil {
				return nil, err
			}
			it := item{inst: isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: imm}}
			if sym != "" {
				it.symbol, it.mode = sym, patchRelative
			}
			return []item{it}, nil
		}
		return nil, fmt.Errorf("jal: want 1 operand in pseudo form")

	case "call":
		if err := need(1); err != nil {
			return nil, err
		}
		imm, sym, err := immOrSymbol(args[0])
		if err != nil {
			return nil, err
		}
		it := item{inst: isa.Inst{Op: isa.JAL, Rd: isa.RA, Imm: imm}}
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return []item{it}, nil

	case "jr":
		if err := need(1); err != nil {
			return nil, err
		}
		rs, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: rs}), nil

	case "ret":
		if err := need(0); err != nil {
			return nil, err
		}
		return one(isa.Inst{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA}), nil

	case "beqz", "bnez", "blez", "bgez", "bltz", "bgtz":
		if err := need(2); err != nil {
			return nil, err
		}
		rs, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		imm, sym, err := immOrSymbol(args[1])
		if err != nil {
			return nil, err
		}
		var in isa.Inst
		switch mnemonic {
		case "beqz":
			in = isa.Inst{Op: isa.BEQ, Rs1: rs, Rs2: isa.Zero}
		case "bnez":
			in = isa.Inst{Op: isa.BNE, Rs1: rs, Rs2: isa.Zero}
		case "blez":
			in = isa.Inst{Op: isa.BGE, Rs1: isa.Zero, Rs2: rs}
		case "bgez":
			in = isa.Inst{Op: isa.BGE, Rs1: rs, Rs2: isa.Zero}
		case "bltz":
			in = isa.Inst{Op: isa.BLT, Rs1: rs, Rs2: isa.Zero}
		case "bgtz":
			in = isa.Inst{Op: isa.BLT, Rs1: isa.Zero, Rs2: rs}
		}
		in.Imm = imm
		it := item{inst: in}
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return []item{it}, nil

	case "bgt", "ble", "bgtu", "bleu":
		if err := need(3); err != nil {
			return nil, err
		}
		rs1, err := isa.ParseReg(args[0])
		if err != nil {
			return nil, err
		}
		rs2, err := isa.ParseReg(args[1])
		if err != nil {
			return nil, err
		}
		imm, sym, err := immOrSymbol(args[2])
		if err != nil {
			return nil, err
		}
		var op isa.Op
		switch mnemonic {
		case "bgt":
			op = isa.BLT
		case "ble":
			op = isa.BGE
		case "bgtu":
			op = isa.BLTU
		case "bleu":
			op = isa.BGEU
		}
		// Operands swap: bgt a,b == blt b,a.
		it := item{inst: isa.Inst{Op: op, Rs1: rs2, Rs2: rs1, Imm: imm}}
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return []item{it}, nil
	}
	return nil, fmt.Errorf("unknown mnemonic %q", mnemonic)
}

func (a *assembler) cmpZero(args []string, build func(rd, rs isa.Reg) isa.Inst) ([]item, error) {
	if len(args) != 2 {
		return nil, fmt.Errorf("want 2 operands, have %d", len(args))
	}
	rd, err := isa.ParseReg(args[0])
	if err != nil {
		return nil, err
	}
	rs, err := isa.ParseReg(args[1])
	if err != nil {
		return nil, err
	}
	return []item{{inst: build(rd, rs)}}, nil
}

// materialize produces an instruction sequence loading the 64-bit
// constant v into rd, mirroring what the GNU assembler emits for li.
func materialize(rd isa.Reg, v int64) []isa.Inst {
	// 12-bit immediates: one addi.
	if v >= -2048 && v <= 2047 {
		return []isa.Inst{{Op: isa.ADDI, Rd: rd, Imm: v}}
	}
	// 32-bit values: lui (+ addiw when the low bits are non-zero).
	if v >= -(1<<31) && v < (1<<31) {
		hi := (uint32(v) + 0x800) >> 12
		lo := int64(int32(uint32(v)<<20) >> 20)
		insts := []isa.Inst{{Op: isa.LUI, Rd: rd, Imm: int64(hi & 0xFFFFF)}}
		if lo != 0 {
			insts = append(insts, isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rd, Imm: lo})
		} else {
			// lui sign-extends through addiw semantics anyway; normalise
			// the upper bits explicitly for negative page values.
			insts = append(insts, isa.Inst{Op: isa.ADDIW, Rd: rd, Rs1: rd, Imm: 0})
		}
		return insts
	}
	// General 64-bit: materialise the high 32 bits, shift, or-in the rest
	// 11 bits at a time (sign-safe because each addi chunk is < 2^11).
	// Each addi chunk stays <= 0x7FF so it never sign-extends.
	hi32 := v >> 32
	insts := materialize(rd, hi32)
	insts = append(insts, isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 11})
	insts = append(insts, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64((uint64(v) >> 21) & 0x7FF)})
	insts = append(insts, isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 11})
	insts = append(insts, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64((uint64(v) >> 10) & 0x7FF)})
	insts = append(insts, isa.Inst{Op: isa.SLLI, Rd: rd, Rs1: rd, Imm: 10})
	insts = append(insts, isa.Inst{Op: isa.ADDI, Rd: rd, Rs1: rd, Imm: int64(uint64(v) & 0x3FF)})
	return insts
}
