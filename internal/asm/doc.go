// Package asm implements a two-pass assembler for the RV64I + xBGAS
// instruction subset modelled by internal/isa.
//
// It stands in for the xBGAS RISC-V GNU toolchain
// (riscv64-unknown-elf-gcc) the paper uses to "translate the extended
// xBGAS instructions into binaries that can be recognized by the Spike
// simulator" (paper §5.1): runtime stubs and benchmark kernels are
// written in assembly text, assembled to machine words, and executed by
// internal/sim.
//
// Supported syntax:
//
//	label:                     # labels, local to the program
//	add  a0, a1, a2            # native instructions, ABI register names
//	eld  a0, 8(a1)             # xBGAS base-class extended accesses
//	erld a0, a1, e2            # xBGAS raw-class accesses
//	li   a0, 0x123456789       # pseudo-instructions (li, la, mv, j, ...)
//	.dword 42                  # data directives (.word, .dword, .zero)
//
// Comments run from '#' or "//" to end of line.
package asm
