package asm_test

import (
	"fmt"
	"log"

	"xbgas/internal/asm"
)

// ExampleAssemble assembles a small xBGAS kernel and prints its
// disassembly listing.
func ExampleAssemble() {
	prog, err := asm.Assemble(`
	start:
		li   t1, 2
		eaddie e30, t1, 0
		li   t5, 0x100
		eld  a0, 0(t5)
		ret
	`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(prog.Disasm())
	// Output:
	// start:
	//   0x00001000: addi t1, zero, 2
	//   0x00001004: eaddie e30, t1, 0
	//   0x00001008: addi t5, zero, 256
	//   0x0000100c: eld a0, 0(t5)
	//   0x00001010: jalr zero, 0(ra)
}
