package asm

import (
	"testing"

	"xbgas/internal/isa"
)

// FuzzAssemble asserts the assembler never panics on arbitrary source
// and that whatever it accepts round-trips through the disassembler
// listing without errors.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		"nop",
		"add a0, a1, a2",
		"eld a0, 8(a1)\nersd a0, a1, e3",
		"x: j x",
		"li a0, 0x123456789ABCDEF",
		".word 1, 2, 3\n.dword -1\n.zero 8",
		"label:\n\tbeq a0, a1, label",
		"# comment only",
		"la a0, buf\nbuf: .dword 0",
		"eaddix e1, e2, -2048",
		"bogus !!!",
		"addi a0, a1, 99999",
		".zero -4",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble(src)
		if err != nil {
			return
		}
		// Accepted programs have internally consistent listings.
		_ = p.Disasm()
		if p.Size() != len(p.Words)*isa.InstBytes {
			t.Fatalf("size mismatch: %d vs %d words", p.Size(), len(p.Words))
		}
		for name, addr := range p.Symbols {
			if addr < p.Base || addr > p.Base+uint64(p.Size()) {
				t.Fatalf("symbol %q at %#x outside program [%#x,%#x]",
					name, addr, p.Base, p.Base+uint64(p.Size()))
			}
		}
	})
}
