package asm

import (
	"fmt"
	"strconv"
	"strings"

	"xbgas/internal/isa"
)

// DefaultBase is the load address used when AssembleAt is not called
// explicitly. It leaves the zero page unmapped so that nil-pointer style
// bugs in assembled kernels fault instead of silently reading data.
const DefaultBase uint64 = 0x1000

// Program is the result of assembling one translation unit.
type Program struct {
	Base    uint64            // load address of Words[0]
	Words   []uint32          // encoded instructions and data words
	Symbols map[string]uint64 // label -> absolute address
}

// Size returns the program footprint in bytes.
func (p *Program) Size() int { return len(p.Words) * isa.InstBytes }

// Bytes serialises the program little-endian, ready to be copied into
// simulator memory at p.Base.
func (p *Program) Bytes() []byte {
	out := make([]byte, 0, p.Size())
	for _, w := range p.Words {
		out = append(out, byte(w), byte(w>>8), byte(w>>16), byte(w>>24))
	}
	return out
}

// Disasm renders the program as address-annotated assembly, one line per
// word, for debugging and the xbgas-asm tool.
func (p *Program) Disasm() string {
	var b strings.Builder
	names := make(map[uint64]string)
	for n, a := range p.Symbols {
		names[a] = n
	}
	for i, w := range p.Words {
		addr := p.Base + uint64(i*isa.InstBytes)
		if n, ok := names[addr]; ok {
			fmt.Fprintf(&b, "%s:\n", n)
		}
		inst, err := isa.Decode(w)
		if err != nil {
			fmt.Fprintf(&b, "  %#08x: .word %#08x\n", addr, w)
			continue
		}
		fmt.Fprintf(&b, "  %#08x: %s\n", addr, inst.Disasm())
	}
	return b.String()
}

// Error is an assembly error annotated with its source line.
type Error struct {
	Line int
	Text string
	Err  error
}

func (e *Error) Error() string {
	return fmt.Sprintf("asm: line %d (%q): %v", e.Line, e.Text, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// item is one statement after parsing: either a concrete instruction
// template (possibly label-relative) or a data word.
type item struct {
	line    int
	text    string
	data    bool
	dataVal uint64
	inst    isa.Inst
	// symbol, if non-empty, names a label whose address (for la/absolute
	// use) or pc-relative displacement (branches, jumps) patches Imm in
	// pass two.
	symbol string
	mode   patchMode
	// hiPart marks the LUI half of a la/li expansion pair.
	hiPart bool
}

type patchMode uint8

const (
	patchNone patchMode = iota
	patchRelative
	patchAbsolute
)

// Assemble assembles src at DefaultBase.
func Assemble(src string) (*Program, error) { return AssembleAt(src, DefaultBase) }

// AssembleAt assembles src with the first word placed at base.
func AssembleAt(src string, base uint64) (*Program, error) {
	if base%isa.InstBytes != 0 {
		return nil, fmt.Errorf("asm: base address %#x not word aligned", base)
	}
	a := &assembler{base: base, symbols: make(map[string]uint64)}
	if err := a.passOne(src); err != nil {
		return nil, err
	}
	return a.passTwo()
}

type assembler struct {
	base    uint64
	items   []item
	symbols map[string]uint64
}

func stripComment(line string) string {
	if i := strings.IndexByte(line, '#'); i >= 0 {
		line = line[:i]
	}
	if i := strings.Index(line, "//"); i >= 0 {
		line = line[:i]
	}
	return strings.TrimSpace(line)
}

func (a *assembler) passOne(src string) error {
	lineNo := 0
	for _, raw := range strings.Split(src, "\n") {
		lineNo++
		line := stripComment(raw)
		if line == "" {
			continue
		}
		// Leading labels, possibly several on one line.
		for {
			i := strings.IndexByte(line, ':')
			if i < 0 {
				break
			}
			label := strings.TrimSpace(line[:i])
			if !isIdent(label) {
				break
			}
			if _, dup := a.symbols[label]; dup {
				return &Error{lineNo, raw, fmt.Errorf("duplicate label %q", label)}
			}
			a.symbols[label] = a.base + uint64(len(a.items)*isa.InstBytes)
			line = strings.TrimSpace(line[i+1:])
		}
		if line == "" {
			continue
		}
		if err := a.statement(lineNo, line); err != nil {
			return err
		}
	}
	return nil
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == '.':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// statement parses one directive, native instruction, or pseudo-op and
// appends the resulting items.
func (a *assembler) statement(lineNo int, line string) error {
	mnemonic, rest, _ := strings.Cut(line, " ")
	mnemonic = strings.ToLower(strings.TrimSpace(mnemonic))
	rest = strings.TrimSpace(rest)

	fail := func(err error) error { return &Error{lineNo, line, err} }
	emit := func(insts ...item) {
		for i := range insts {
			insts[i].line = lineNo
			insts[i].text = line
		}
		a.items = append(a.items, insts...)
	}

	if strings.HasPrefix(mnemonic, ".") {
		return a.directive(lineNo, line, mnemonic, rest)
	}

	args := splitArgs(rest)

	if op, ok := isa.OpByName(mnemonic); ok {
		it, nativeErr := a.native(op, args)
		if nativeErr == nil {
			emit(it)
			return nil
		}
		// Some native mnemonics also have pseudo forms ("jal label");
		// fall through to the pseudo expander before reporting.
		if items, err := a.pseudo(mnemonic, args); err == nil {
			emit(items...)
			return nil
		}
		return fail(nativeErr)
	}

	items, err := a.pseudo(mnemonic, args)
	if err != nil {
		return fail(err)
	}
	emit(items...)
	return nil
}

func (a *assembler) directive(lineNo int, line, mnemonic, rest string) error {
	fail := func(err error) error { return &Error{lineNo, line, err} }
	switch mnemonic {
	case ".text", ".data", ".globl", ".global", ".align":
		return nil // accepted and ignored: single flat section
	case ".word":
		for _, f := range splitArgs(rest) {
			v, err := parseImm(f)
			if err != nil {
				return fail(err)
			}
			a.items = append(a.items, item{line: lineNo, text: line, data: true, dataVal: uint64(uint32(v))})
		}
		return nil
	case ".dword":
		for _, f := range splitArgs(rest) {
			v, err := parseImm(f)
			if err != nil {
				return fail(err)
			}
			a.items = append(a.items,
				item{line: lineNo, text: line, data: true, dataVal: uint64(v) & 0xFFFFFFFF},
				item{line: lineNo, text: line, data: true, dataVal: uint64(v) >> 32})
		}
		return nil
	case ".ascii", ".asciz":
		str, err := strconv.Unquote(strings.TrimSpace(rest))
		if err != nil {
			return fail(fmt.Errorf("%s needs a quoted Go string: %v", mnemonic, err))
		}
		data := []byte(str)
		if mnemonic == ".asciz" {
			data = append(data, 0)
		}
		// Pad to word granularity (the flat image is word-addressed).
		for len(data)%isa.InstBytes != 0 {
			data = append(data, 0)
		}
		for i := 0; i < len(data); i += isa.InstBytes {
			word := uint64(data[i]) | uint64(data[i+1])<<8 |
				uint64(data[i+2])<<16 | uint64(data[i+3])<<24
			a.items = append(a.items, item{line: lineNo, text: line, data: true, dataVal: word})
		}
		return nil
	case ".zero":
		n, err := parseImm(rest)
		if err != nil {
			return fail(err)
		}
		if n < 0 || n%isa.InstBytes != 0 {
			return fail(fmt.Errorf(".zero size %d must be a non-negative multiple of %d", n, isa.InstBytes))
		}
		for i := int64(0); i < n/isa.InstBytes; i++ {
			a.items = append(a.items, item{line: lineNo, text: line, data: true})
		}
		return nil
	}
	return fail(fmt.Errorf("unknown directive %q", mnemonic))
}

func splitArgs(s string) []string {
	if s == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func parseImm(s string) (int64, error) {
	s = strings.TrimSpace(s)
	v, err := strconv.ParseInt(s, 0, 64)
	if err != nil {
		// Allow large unsigned constants (e.g. 0xFFFFFFFFFFFFFFFF).
		if u, uerr := strconv.ParseUint(s, 0, 64); uerr == nil {
			return int64(u), nil
		}
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return v, nil
}

// parseMemOperand parses "imm(reg)" or "(reg)".
func parseMemOperand(s string) (imm int64, base isa.Reg, err error) {
	open := strings.IndexByte(s, '(')
	close := strings.LastIndexByte(s, ')')
	if open < 0 || close < open {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	immStr := strings.TrimSpace(s[:open])
	if immStr != "" {
		imm, err = parseImm(immStr)
		if err != nil {
			return 0, 0, err
		}
	}
	base, err = isa.ParseReg(s[open+1 : close])
	return imm, base, err
}

// immOrSymbol parses an argument that may be a literal immediate or a
// label reference.
func immOrSymbol(s string) (imm int64, symbol string, err error) {
	if v, e := parseImm(s); e == nil {
		return v, "", nil
	}
	if isIdent(s) {
		return 0, s, nil
	}
	return 0, "", fmt.Errorf("bad immediate or label %q", s)
}

// native parses operands for a concrete ISA operation.
func (a *assembler) native(op isa.Op, args []string) (item, error) {
	it := item{inst: isa.Inst{Op: op}}
	need := func(n int) error {
		if len(args) != n {
			return fmt.Errorf("%s: want %d operands, have %d", op, n, len(args))
		}
		return nil
	}

	switch op {
	case isa.FENCE, isa.ECALL, isa.EBREAK:
		if len(args) != 0 {
			return it, fmt.Errorf("%s takes no operands", op)
		}
		if op == isa.EBREAK {
			it.inst.Imm = 1
		}
		return it, nil

	case isa.EADDI: // eaddi rd, ext1, imm
		if err := need(3); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		e, err := isa.ParseEReg(args[1])
		if err != nil {
			return it, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Imm = rd, isa.Reg(e), imm
		return it, nil

	case isa.EADDIE: // eaddie ext1, rs1, imm
		if err := need(3); err != nil {
			return it, err
		}
		e, err := isa.ParseEReg(args[0])
		if err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Imm = isa.Reg(e), rs1, imm
		return it, nil

	case isa.EADDIX: // eaddix ext1, ext2, imm
		if err := need(3); err != nil {
			return it, err
		}
		e1, err := isa.ParseEReg(args[0])
		if err != nil {
			return it, err
		}
		e2, err := isa.ParseEReg(args[1])
		if err != nil {
			return it, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Imm = isa.Reg(e1), isa.Reg(e2), imm
		return it, nil
	}

	// Extended-register spill/fill take an e register plus a memory
	// operand: ele e1, 8(a0) / ese e1, 8(a0).
	if op == isa.ELE || op == isa.ESE {
		if err := need(2); err != nil {
			return it, err
		}
		e, err := isa.ParseEReg(args[0])
		if err != nil {
			return it, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return it, err
		}
		if op == isa.ELE {
			it.inst.Rd = isa.Reg(e)
		} else {
			it.inst.Rs2 = isa.Reg(e)
		}
		it.inst.Rs1, it.inst.Imm = base, imm
		return it, nil
	}

	format := op.Format()

	// Raw-class xBGAS operations are R-format with an extended register
	// operand in assembly syntax.
	if op.IsRemoteLoad() && format == isa.FormatR { // erld rd, rs1, ext2
		if err := need(3); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		e, err := isa.ParseEReg(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Rs2 = rd, rs1, isa.Reg(e)
		return it, nil
	}
	if op.IsRemoteStore() && format == isa.FormatR { // ersd rs1, rs2, ext3
		if err := need(3); err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		rs2, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		e, err := isa.ParseEReg(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Rs2 = isa.Reg(e), rs1, rs2
		return it, nil
	}

	switch format {
	case isa.FormatR:
		if err := need(3); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		rs2, err := isa.ParseReg(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Rs2 = rd, rs1, rs2
		return it, nil

	case isa.FormatI:
		if err := need(2 + 0); err == nil && (op == isa.JALR || op.MemWidth() > 0) {
			// "ld rd, imm(rs1)" / "jalr rd, imm(rs1)"
			rd, err := isa.ParseReg(args[0])
			if err != nil {
				return it, err
			}
			imm, base, err := parseMemOperand(args[1])
			if err != nil {
				return it, err
			}
			it.inst.Rd, it.inst.Rs1, it.inst.Imm = rd, base, imm
			return it, nil
		}
		if err := need(3); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		imm, err := parseImm(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Rs1, it.inst.Imm = rd, rs1, imm
		return it, nil

	case isa.FormatS:
		if err := need(2); err != nil {
			return it, err
		}
		rs2, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		imm, base, err := parseMemOperand(args[1])
		if err != nil {
			return it, err
		}
		it.inst.Rs1, it.inst.Rs2, it.inst.Imm = base, rs2, imm
		return it, nil

	case isa.FormatB:
		if err := need(3); err != nil {
			return it, err
		}
		rs1, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		rs2, err := isa.ParseReg(args[1])
		if err != nil {
			return it, err
		}
		imm, sym, err := immOrSymbol(args[2])
		if err != nil {
			return it, err
		}
		it.inst.Rs1, it.inst.Rs2, it.inst.Imm = rs1, rs2, imm
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return it, nil

	case isa.FormatU:
		if err := need(2); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		imm, err := parseImm(args[1])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Imm = rd, imm
		return it, nil

	case isa.FormatJ:
		if err := need(2); err != nil {
			return it, err
		}
		rd, err := isa.ParseReg(args[0])
		if err != nil {
			return it, err
		}
		imm, sym, err := immOrSymbol(args[1])
		if err != nil {
			return it, err
		}
		it.inst.Rd, it.inst.Imm = rd, imm
		if sym != "" {
			it.symbol, it.mode = sym, patchRelative
		}
		return it, nil
	}
	return it, fmt.Errorf("unsupported format for %s", op)
}

func (a *assembler) passTwo() (*Program, error) {
	p := &Program{Base: a.base, Symbols: a.symbols, Words: make([]uint32, 0, len(a.items))}
	for idx, it := range a.items {
		if it.data {
			p.Words = append(p.Words, uint32(it.dataVal))
			continue
		}
		inst := it.inst
		if it.symbol != "" {
			target, ok := a.symbols[it.symbol]
			if !ok {
				return nil, &Error{it.line, it.text, fmt.Errorf("undefined label %q", it.symbol)}
			}
			pc := a.base + uint64(idx*isa.InstBytes)
			switch it.mode {
			case patchRelative:
				inst.Imm = int64(target) - int64(pc)
			case patchAbsolute:
				if it.hiPart {
					// Round-to-nearest upper 20 bits so the low addi
					// (sign-extended) lands exactly on target.
					inst.Imm = int64((uint32(target) + 0x800) >> 12)
				} else {
					inst.Imm = int64(int32(uint32(target)<<20) >> 20)
				}
			}
		}
		w, err := inst.Encode()
		if err != nil {
			return nil, &Error{it.line, it.text, err}
		}
		p.Words = append(p.Words, w)
	}
	return p, nil
}
