package asm

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"xbgas/internal/isa"
)

func mustAssemble(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Assemble(src)
	if err != nil {
		t.Fatalf("Assemble: %v", err)
	}
	return p
}

func decodeAll(t *testing.T, p *Program) []isa.Inst {
	t.Helper()
	out := make([]isa.Inst, len(p.Words))
	for i, w := range p.Words {
		inst, err := isa.Decode(w)
		if err != nil {
			t.Fatalf("word %d (%#08x): %v", i, w, err)
		}
		out[i] = inst
	}
	return out
}

func TestAssembleBasicInstructions(t *testing.T) {
	p := mustAssemble(t, `
		add  a0, a1, a2
		addi t0, t1, -42
		ld   a0, 16(sp)
		sd   ra, -8(sp)
		lui  a0, 0x12345
		xor  s1, s2, s3
	`)
	insts := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.ADD, Rd: isa.A0, Rs1: isa.A1, Rs2: isa.A2},
		{Op: isa.ADDI, Rd: isa.T0, Rs1: isa.T1, Imm: -42},
		{Op: isa.LD, Rd: isa.A0, Rs1: isa.SP, Imm: 16},
		{Op: isa.SD, Rs1: isa.SP, Rs2: isa.RA, Imm: -8},
		{Op: isa.LUI, Rd: isa.A0, Imm: 0x12345},
		{Op: isa.XOR, Rd: isa.S1, Rs1: isa.S2, Rs2: isa.S3},
	}
	if len(insts) != len(want) {
		t.Fatalf("got %d instructions, want %d", len(insts), len(want))
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, insts[i], want[i])
		}
	}
}

func TestAssembleXBGASInstructions(t *testing.T) {
	p := mustAssemble(t, `
		eld    a0, 8(a1)
		esd    a0, 0(a2)
		elw    t0, -4(t1)
		erld   a0, a1, e2
		ersd   a0, a1, e3
		eaddi  a0, e5, 4
		eaddie e7, a2, 0
		eaddix e1, e2, 12
	`)
	insts := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.ELD, Rd: isa.A0, Rs1: isa.A1, Imm: 8},
		{Op: isa.ESD, Rs1: isa.A2, Rs2: isa.A0},
		{Op: isa.ELW, Rd: isa.T0, Rs1: isa.T1, Imm: -4},
		{Op: isa.ERLD, Rd: isa.A0, Rs1: isa.A1, Rs2: 2},
		{Op: isa.ERSD, Rd: 3, Rs1: isa.A0, Rs2: isa.A1},
		{Op: isa.EADDI, Rd: isa.A0, Rs1: 5, Imm: 4},
		{Op: isa.EADDIE, Rd: 7, Rs1: isa.A2},
		{Op: isa.EADDIX, Rd: 1, Rs1: 2, Imm: 12},
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, insts[i], want[i])
		}
	}
}

func TestLabelsAndBranches(t *testing.T) {
	p := mustAssemble(t, `
	start:
		addi a0, zero, 10
	loop:
		addi a0, a0, -1
		bnez a0, loop
		beq  a0, zero, done
		j    loop
	done:
		ret
	`)
	insts := decodeAll(t, p)
	// bnez at word 2 targets loop at word 1 -> offset -4.
	if insts[2].Op != isa.BNE || insts[2].Imm != -4 {
		t.Errorf("bnez: got %+v", insts[2])
	}
	// beq at word 3 targets done at word 5 -> offset +8.
	if insts[3].Op != isa.BEQ || insts[3].Imm != 8 {
		t.Errorf("beq: got %+v", insts[3])
	}
	// j at word 4 targets loop at word 1 -> offset -12.
	if insts[4].Op != isa.JAL || insts[4].Rd != isa.Zero || insts[4].Imm != -12 {
		t.Errorf("j: got %+v", insts[4])
	}
	if got := p.Symbols["start"]; got != DefaultBase {
		t.Errorf("start = %#x, want %#x", got, DefaultBase)
	}
	if got := p.Symbols["done"]; got != DefaultBase+5*4 {
		t.Errorf("done = %#x, want %#x", got, DefaultBase+5*4)
	}
}

func TestJalPseudoForm(t *testing.T) {
	p := mustAssemble(t, `
		jal fn
		ret
	fn:
		ret
	`)
	insts := decodeAll(t, p)
	if insts[0].Op != isa.JAL || insts[0].Rd != isa.RA || insts[0].Imm != 8 {
		t.Errorf("jal fn: got %+v", insts[0])
	}
	// Two-operand native form still works.
	p2 := mustAssemble(t, "jal ra, 16")
	insts2 := decodeAll(t, p2)
	if insts2[0].Op != isa.JAL || insts2[0].Rd != isa.RA || insts2[0].Imm != 16 {
		t.Errorf("jal ra, 16: got %+v", insts2[0])
	}
}

// simulate executes only ALU/shift instructions for li-expansion testing.
func evalALU(t *testing.T, insts []isa.Inst) map[isa.Reg]int64 {
	t.Helper()
	regs := map[isa.Reg]int64{}
	get := func(r isa.Reg) int64 {
		if r == isa.Zero {
			return 0
		}
		return regs[r]
	}
	for _, in := range insts {
		var v int64
		switch in.Op {
		case isa.ADDI:
			v = get(in.Rs1) + in.Imm
		case isa.ADDIW:
			v = int64(int32(get(in.Rs1) + in.Imm))
		case isa.LUI:
			v = int64(int32(uint32(in.Imm) << 12))
		case isa.SLLI:
			v = get(in.Rs1) << uint(in.Imm)
		default:
			t.Fatalf("unexpected op in li expansion: %s", in.Op)
		}
		if in.Rd != isa.Zero {
			regs[in.Rd] = v
		}
	}
	return regs
}

func TestLiMaterializesExactValues(t *testing.T) {
	values := []int64{
		0, 1, -1, 2047, -2048, 2048, -2049, 4096, 123456, -123456,
		1 << 20, (1 << 31) - 1, -(1 << 31), 1 << 31, 1 << 40,
		-(1 << 40), 0x123456789ABCDEF0, -0x123456789ABCDEF0,
		(1 << 63) - 1, -(1 << 63), 0x7FFFF800, 0x7FFFFFFF,
	}
	for _, v := range values {
		insts := materialize(isa.A0, v)
		got := evalALU(t, insts)[isa.A0]
		if got != v {
			t.Errorf("li a0, %d: materialized %d (insts: %v)", v, got, insts)
		}
	}
}

func TestLiQuick(t *testing.T) {
	f := func(v int64) bool {
		insts := materialize(isa.T3, v)
		regs := map[isa.Reg]int64{}
		for _, in := range insts {
			var x int64
			r1 := regs[in.Rs1]
			if in.Rs1 == isa.Zero {
				r1 = 0
			}
			switch in.Op {
			case isa.ADDI:
				x = r1 + in.Imm
			case isa.ADDIW:
				x = int64(int32(r1 + in.Imm))
			case isa.LUI:
				x = int64(int32(uint32(in.Imm) << 12))
			case isa.SLLI:
				x = r1 << uint(in.Imm)
			default:
				return false
			}
			regs[in.Rd] = x
		}
		return regs[isa.T3] == v
	}
	cfg := &quick.Config{MaxCount: 3000, Rand: rand.New(rand.NewSource(3))}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestPseudoInstructions(t *testing.T) {
	p := mustAssemble(t, `
		nop
		mv   a0, a1
		not  a2, a3
		neg  a4, a5
		seqz a0, a1
		snez a0, a1
		jr   a0
		ret
		beqz a0, 8
		bgt  a0, a1, 8
	`)
	insts := decodeAll(t, p)
	want := []isa.Inst{
		{Op: isa.ADDI},
		{Op: isa.ADDI, Rd: isa.A0, Rs1: isa.A1},
		{Op: isa.XORI, Rd: isa.A2, Rs1: isa.A3, Imm: -1},
		{Op: isa.SUB, Rd: isa.A4, Rs2: isa.A5},
		{Op: isa.SLTIU, Rd: isa.A0, Rs1: isa.A1, Imm: 1},
		{Op: isa.SLTU, Rd: isa.A0, Rs2: isa.A1},
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.A0},
		{Op: isa.JALR, Rd: isa.Zero, Rs1: isa.RA},
		{Op: isa.BEQ, Rs1: isa.A0, Imm: 8},
		{Op: isa.BLT, Rs1: isa.A1, Rs2: isa.A0, Imm: 8},
	}
	for i := range want {
		if insts[i] != want[i] {
			t.Errorf("inst %d: got %+v, want %+v", i, insts[i], want[i])
		}
	}
}

func TestDataDirectives(t *testing.T) {
	p := mustAssemble(t, `
		j over
	table:
		.word 1, 2, 3
		.dword 0x1122334455667788
		.zero 8
	over:
		nop
	`)
	if p.Words[1] != 1 || p.Words[2] != 2 || p.Words[3] != 3 {
		t.Errorf(".word: got %v", p.Words[1:4])
	}
	if p.Words[4] != 0x55667788 || p.Words[5] != 0x11223344 {
		t.Errorf(".dword: got %#x %#x", p.Words[4], p.Words[5])
	}
	if p.Words[6] != 0 || p.Words[7] != 0 {
		t.Errorf(".zero: got %v", p.Words[6:8])
	}
	if got := p.Symbols["table"]; got != DefaultBase+4 {
		t.Errorf("table = %#x", got)
	}
	// j over must skip the 7 data words.
	inst, _ := isa.Decode(p.Words[0])
	if inst.Imm != 8*4 {
		t.Errorf("j over: imm %d, want 32", inst.Imm)
	}
}

func TestLaAbsoluteAddressing(t *testing.T) {
	p, err := AssembleAt(`
		la a0, buf
		ret
	buf:
		.dword 0
	`, 0x10000)
	if err != nil {
		t.Fatal(err)
	}
	lui, err := isa.Decode(p.Words[0])
	if err != nil {
		t.Fatal(err)
	}
	addi, err := isa.Decode(p.Words[1])
	if err != nil {
		t.Fatal(err)
	}
	if lui.Op != isa.LUI || addi.Op != isa.ADDI {
		t.Fatalf("la expansion: %v %v", lui.Op, addi.Op)
	}
	got := int64(int32(uint32(lui.Imm)<<12)) + addi.Imm
	want := int64(p.Symbols["buf"])
	if got != want {
		t.Errorf("la: address %#x, want %#x", got, want)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"bogus a0, a1",        // unknown mnemonic
		"add a0, a1",          // missing operand
		"addi a0, a1, 99999",  // immediate out of range
		"ld a0, 8(q9)",        // bad register
		"beq a0, a1, nowhere", // undefined label
		"erld a0, a1, a2",     // raw class needs an e register
		"eaddix e1, a2, 0",    // second operand must be an e register
		"x: nop\nx: nop",      // duplicate label
		".bogus 4",            // unknown directive
		".zero 3",             // misaligned zero fill
		"la a0, 42",           // la needs a label
		"esd a0, a1, a2",      // base-class store takes mem operand
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("Assemble(%q): expected error", src)
		} else if _, ok := err.(*Error); !ok {
			t.Errorf("Assemble(%q): error %v is not *asm.Error", src, err)
		}
	}
}

func TestProgramBytesLittleEndian(t *testing.T) {
	p := mustAssemble(t, ".word 0x11223344")
	b := p.Bytes()
	want := []byte{0x44, 0x33, 0x22, 0x11}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("Bytes() = % x, want % x", b, want)
		}
	}
	if p.Size() != 4 {
		t.Errorf("Size() = %d", p.Size())
	}
}

func TestDisasmListing(t *testing.T) {
	p := mustAssemble(t, `
	main:
		addi a0, zero, 5
		eld  a1, 0(a0)
		ret
	`)
	listing := p.Disasm()
	for _, want := range []string{"main:", "addi a0, zero, 5", "eld a1, 0(a0)", "jalr zero, 0(ra)"} {
		if !strings.Contains(listing, want) {
			t.Errorf("listing missing %q:\n%s", want, listing)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p := mustAssemble(t, `
		# full line comment
		nop        # trailing comment
		nop        // c++ style

		.text
	`)
	if len(p.Words) != 2 {
		t.Errorf("got %d words, want 2", len(p.Words))
	}
}

func TestAssembleAtRejectsMisalignedBase(t *testing.T) {
	if _, err := AssembleAt("nop", 0x1002); err == nil {
		t.Error("expected error for misaligned base")
	}
}

func TestErrorTypeCarriesLineInfo(t *testing.T) {
	_, err := Assemble("nop\nbogus a0\nnop")
	if err == nil {
		t.Fatal("expected error")
	}
	var ae *Error
	if !errors.As(err, &ae) {
		t.Fatalf("error %T is not *asm.Error", err)
	}
	if ae.Line != 2 || !strings.Contains(ae.Error(), "line 2") {
		t.Errorf("error = %v (line %d)", ae, ae.Line)
	}
	if ae.Unwrap() == nil {
		t.Error("Unwrap returned nil")
	}
}

func TestAsciiDirectives(t *testing.T) {
	p := mustAssemble(t, `
	msg:
		.asciz "Hi!"
	raw:
		.ascii "ABCD"
	`)
	// "Hi!" + NUL fills exactly one word.
	if p.Words[0] != 0x00216948 {
		t.Errorf(".asciz word = %#08x", p.Words[0])
	}
	if p.Words[1] != 0x44434241 {
		t.Errorf(".ascii word = %#08x", p.Words[1])
	}
	if p.Symbols["raw"] != DefaultBase+4 {
		t.Errorf("raw at %#x", p.Symbols["raw"])
	}
	if _, err := Assemble(`.ascii unquoted`); err == nil {
		t.Error("unquoted .ascii must fail")
	}
}
