// Package shmem is an OpenSHMEM-style collective library built on the
// same runtime substrate as the xBGAS collectives, reproducing the
// comparison surface of paper §4.7:
//
//   - calls are "distinguished by the underlying data type size"
//     (Broadcast32/Broadcast64, Collect64, ...) rather than by explicit
//     type name;
//   - broadcast and reduction take no stride argument (OpenSHMEM "does
//     not support a non-default stride size for these operations");
//   - there is no scatter ("this functionality is not provided in the
//     OpenSHMEM API");
//   - reductions and collect/fcollect deliver their results to every PE
//     in the calling set, where the xBGAS library delivers to the root
//     and "must instead ... use ... a broadcast operation following the
//     original call".
//
// Matching OpenSHMEM ≤ 1.4 semantics, Broadcast32/Broadcast64 do NOT
// write the root's own dest buffer.
//
// The quantitative §4.7/§3.1 comparison — microarchitectural one-sided
// transfers versus a software message-passing transport — is expressed
// through the fabric cost model: benchmarks run this same library over
// fabric.DefaultConfig (xBGAS-style user-space injection) and
// fabric.MessageConfig (two-sided software stack overheads).
package shmem

import (
	"fmt"

	"xbgas/internal/core"
	"xbgas/internal/xbrtime"
)

// dtypeForWidth returns the raw-bits element type for a size-
// distinguished call.
func dtypeForWidth(bits int) (xbrtime.DType, error) {
	switch bits {
	case 32:
		return xbrtime.TypeUint32, nil
	case 64:
		return xbrtime.TypeUint64, nil
	}
	return xbrtime.DType{}, fmt.Errorf("shmem: unsupported element size %d bits", bits)
}

// broadcastSized implements shmem_broadcast32/64: the root's source
// buffer is copied to dest on every PE except the root.
func broadcastSized(pe *xbrtime.PE, bits int, dest, src uint64, nelems, root int) error {
	dt, err := dtypeForWidth(bits)
	if err != nil {
		return err
	}
	// Stage through a symmetric scratch so the root's dest stays
	// untouched (the OpenSHMEM quirk).
	w := uint64(dt.Width)
	n := uint64(nelems) * w
	if n == 0 {
		n = w
	}
	stage, err := pe.Malloc(n)
	if err != nil {
		return err
	}
	if err := core.Broadcast(pe, dt, stage, src, nelems, 1, root); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	if pe.MyPE() != root {
		for i := 0; i < nelems; i++ {
			v := pe.ReadElem(dt, stage+uint64(i)*w)
			pe.WriteElem(dt, dest+uint64(i)*w, v)
		}
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	return pe.Free(stage)
}

// Broadcast32 is shmem_broadcast32.
func Broadcast32(pe *xbrtime.PE, dest, src uint64, nelems, root int) error {
	return broadcastSized(pe, 32, dest, src, nelems, root)
}

// Broadcast64 is shmem_broadcast64.
func Broadcast64(pe *xbrtime.PE, dest, src uint64, nelems, root int) error {
	return broadcastSized(pe, 64, dest, src, nelems, root)
}

// collectSized implements collect (varying contribution sizes) and
// fcollect (fixed sizes): the concatenation of every PE's contribution,
// in rank order, lands at dest on every PE.
func collectSized(pe *xbrtime.PE, bits int, dest, src uint64, myElems int) error {
	dt, err := dtypeForWidth(bits)
	if err != nil {
		return err
	}
	if myElems < 0 {
		return fmt.Errorf("shmem: negative element count %d", myElems)
	}
	n := pe.NumPEs()
	w := uint64(dt.Width)

	// Exchange contribution counts (an fcollect of one value), then
	// gather to PE 0 and broadcast the concatenation — the standard
	// two-phase realisation.
	counts := make([]int, n)
	cntBuf, err := pe.Malloc(uint64(n) * 8)
	if err != nil {
		return err
	}
	ones := make([]int, n)
	disps := make([]int, n)
	for i := range ones {
		ones[i] = 1
		disps[i] = i
	}
	myCnt, err := pe.PrivateAlloc(8)
	if err != nil {
		pe.Free(cntBuf) //nolint:errcheck
		return err
	}
	pe.Poke(xbrtime.TypeInt64, myCnt, uint64(int64(myElems)))
	if err := core.Gather(pe, xbrtime.TypeInt64, cntBuf, myCnt, ones, disps, n, 0); err != nil {
		pe.Free(cntBuf) //nolint:errcheck
		return err
	}
	if err := core.Broadcast(pe, xbrtime.TypeInt64, cntBuf, cntBuf, n, 1, 0); err != nil {
		pe.Free(cntBuf) //nolint:errcheck
		return err
	}
	total := 0
	for i := 0; i < n; i++ {
		counts[i] = int(int64(pe.Peek(xbrtime.TypeInt64, cntBuf+uint64(i)*8)))
		if counts[i] < 0 {
			pe.Free(cntBuf) //nolint:errcheck
			return fmt.Errorf("shmem: PE %d advertised negative count %d", i, counts[i])
		}
		total += counts[i]
	}
	if err := pe.Free(cntBuf); err != nil {
		return err
	}

	gatherDisp := make([]int, n)
	off := 0
	for i := 0; i < n; i++ {
		gatherDisp[i] = off
		off += counts[i]
	}
	stage, err := pe.Malloc(uint64(max(total, 1)) * w)
	if err != nil {
		return err
	}
	if err := core.Gather(pe, dt, stage, src, counts, gatherDisp, total, 0); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	if err := core.Broadcast(pe, dt, stage, stage, total, 1, 0); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	for i := 0; i < total; i++ {
		v := pe.ReadElem(dt, stage+uint64(i)*w)
		pe.WriteElem(dt, dest+uint64(i)*w, v)
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	return pe.Free(stage)
}

// Collect32 is shmem_collect32: concatenates varying-size 32-bit
// contributions onto every PE.
func Collect32(pe *xbrtime.PE, dest, src uint64, myElems int) error {
	return collectSized(pe, 32, dest, src, myElems)
}

// Collect64 is shmem_collect64.
func Collect64(pe *xbrtime.PE, dest, src uint64, myElems int) error {
	return collectSized(pe, 64, dest, src, myElems)
}

// FCollect32 is shmem_fcollect32: like Collect32 with the same element
// count on every PE.
func FCollect32(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return collectSized(pe, 32, dest, src, nelems)
}

// FCollect64 is shmem_fcollect64.
func FCollect64(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return collectSized(pe, 64, dest, src, nelems)
}

// toAll reduces src into dest on every PE: reduce to PE 0, then
// broadcast — the composition the paper notes an xBGAS user must write
// by hand, packaged as the single OpenSHMEM-style call.
func toAll(pe *xbrtime.PE, dt xbrtime.DType, op core.ReduceOp, dest, src uint64, nelems int) error {
	w := uint64(dt.Width)
	n := uint64(nelems) * w
	if n == 0 {
		n = w
	}
	stage, err := pe.Malloc(n)
	if err != nil {
		return err
	}
	if err := core.Reduce(pe, dt, op, stage, src, nelems, 1, 0); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	if err := core.Broadcast(pe, dt, stage, stage, nelems, 1, 0); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	for i := 0; i < nelems; i++ {
		v := pe.ReadElem(dt, stage+uint64(i)*w)
		pe.WriteElem(dt, dest+uint64(i)*w, v)
	}
	if err := pe.Barrier(); err != nil {
		pe.Free(stage) //nolint:errcheck
		return err
	}
	return pe.Free(stage)
}

// LongSumToAll is shmem_long_sum_to_all.
func LongSumToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpSum, dest, src, nelems)
}

// LongProdToAll is shmem_long_prod_to_all.
func LongProdToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpProd, dest, src, nelems)
}

// LongMinToAll is shmem_long_min_to_all.
func LongMinToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpMin, dest, src, nelems)
}

// LongMaxToAll is shmem_long_max_to_all.
func LongMaxToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpMax, dest, src, nelems)
}

// LongAndToAll is shmem_long_and_to_all.
func LongAndToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpBand, dest, src, nelems)
}

// LongOrToAll is shmem_long_or_to_all.
func LongOrToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpBor, dest, src, nelems)
}

// LongXorToAll is shmem_long_xor_to_all.
func LongXorToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeLong, core.OpBxor, dest, src, nelems)
}

// IntSumToAll is shmem_int_sum_to_all.
func IntSumToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeInt, core.OpSum, dest, src, nelems)
}

// DoubleSumToAll is shmem_double_sum_to_all.
func DoubleSumToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeDouble, core.OpSum, dest, src, nelems)
}

// DoubleMinToAll is shmem_double_min_to_all.
func DoubleMinToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeDouble, core.OpMin, dest, src, nelems)
}

// DoubleMaxToAll is shmem_double_max_to_all.
func DoubleMaxToAll(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return toAll(pe, xbrtime.TypeDouble, core.OpMax, dest, src, nelems)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Alltoall64 is shmem_alltoall64: every PE contributes nelems 64-bit
// elements for every other PE; block j of source on PE i arrives as
// block i of dest on PE j. Both buffers must be symmetric and hold
// nelems*NumPEs elements.
func Alltoall64(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return core.Alltoall(pe, xbrtime.TypeUint64, dest, src, nelems)
}

// Alltoall32 is shmem_alltoall32.
func Alltoall32(pe *xbrtime.PE, dest, src uint64, nelems int) error {
	return core.Alltoall(pe, xbrtime.TypeUint32, dest, src, nelems)
}

// BarrierAll is shmem_barrier_all.
func BarrierAll(pe *xbrtime.PE) error { return pe.Barrier() }
