package shmem

import (
	"testing"

	"xbgas/internal/xbrtime"
)

func runSPMD(t *testing.T, nPEs int, fn func(pe *xbrtime.PE) error) {
	t.Helper()
	rt, err := xbrtime.New(xbrtime.Config{NumPEs: nPEs})
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.Run(fn); err != nil {
		t.Fatal(err)
	}
}

func TestBroadcast64SkipsRootDest(t *testing.T) {
	// OpenSHMEM <= 1.4 semantics: the root's dest is not written.
	const nPEs, root = 4, 1
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint64
		dest, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(8 * 4)
		if err != nil {
			return err
		}
		pe.Poke(dt, dest, 0xDEAD) // sentinel
		if pe.MyPE() == root {
			for i := 0; i < 4; i++ {
				pe.Poke(dt, src+uint64(i*8), uint64(70+i))
			}
		}
		if err := Broadcast64(pe, dest, src, 4, root); err != nil {
			return err
		}
		if pe.MyPE() == root {
			if got := pe.Peek(dt, dest); got != 0xDEAD {
				t.Errorf("root dest overwritten: %#x", got)
			}
		} else {
			for i := 0; i < 4; i++ {
				if got := pe.Peek(dt, dest+uint64(i*8)); got != uint64(70+i) {
					t.Errorf("PE %d elem %d = %d", pe.MyPE(), i, got)
				}
			}
		}
		return pe.Free(dest)
	})
}

func TestBroadcast32(t *testing.T) {
	runSPMD(t, 3, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint32
		dest, err := pe.Malloc(4 * 2)
		if err != nil {
			return err
		}
		src, err := pe.PrivateAlloc(4 * 2)
		if err != nil {
			return err
		}
		if pe.MyPE() == 0 {
			pe.Poke(dt, src, 123)
			pe.Poke(dt, src+4, 456)
		}
		if err := Broadcast32(pe, dest, src, 2, 0); err != nil {
			return err
		}
		if pe.MyPE() != 0 {
			if pe.Peek(dt, dest) != 123 || pe.Peek(dt, dest+4) != 456 {
				t.Errorf("PE %d: %d %d", pe.MyPE(), pe.Peek(dt, dest), pe.Peek(dt, dest+4))
			}
		}
		return pe.Free(dest)
	})
}

func TestFCollect64DistributesToAll(t *testing.T) {
	// Paper §4.7: the results of collect/fcollect "are automatically
	// distributed to each PE within the calling set".
	const nPEs, per = 4, 3
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint64
		dest, err := pe.Malloc(8 * nPEs * per)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(8 * per)
		if err != nil {
			return err
		}
		for i := 0; i < per; i++ {
			pe.Poke(dt, src+uint64(i*8), uint64(100*pe.MyPE()+i))
		}
		if err := FCollect64(pe, dest, src, per); err != nil {
			return err
		}
		for p := 0; p < nPEs; p++ {
			for i := 0; i < per; i++ {
				want := uint64(100*p + i)
				got := pe.Peek(dt, dest+uint64((p*per+i)*8))
				if got != want {
					t.Errorf("PE %d slot (%d,%d) = %d, want %d", pe.MyPE(), p, i, got, want)
				}
			}
		}
		if err := pe.Free(dest); err != nil {
			return err
		}
		return pe.Free(src)
	})
}

func TestCollect64VaryingSizes(t *testing.T) {
	const nPEs = 3
	sizes := []int{2, 0, 3}
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint64
		dest, err := pe.Malloc(8 * 8)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(8 * 4)
		if err != nil {
			return err
		}
		mine := sizes[pe.MyPE()]
		for i := 0; i < mine; i++ {
			pe.Poke(dt, src+uint64(i*8), uint64(10*pe.MyPE()+i))
		}
		if err := Collect64(pe, dest, src, mine); err != nil {
			return err
		}
		want := []uint64{0, 1, 20, 21, 22} // PE0: 0,1; PE1: none; PE2: 20,21,22
		for i, w := range want {
			if got := pe.Peek(dt, dest+uint64(i*8)); got != w {
				t.Errorf("PE %d slot %d = %d, want %d", pe.MyPE(), i, got, w)
			}
		}
		if err := pe.Free(dest); err != nil {
			return err
		}
		return pe.Free(src)
	})
}

func TestToAllReductions(t *testing.T) {
	const nPEs = 4
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dtL := xbrtime.TypeLong
		dest, err := pe.Malloc(8 * 2)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(8 * 2)
		if err != nil {
			return err
		}
		me := int64(pe.MyPE())
		pe.Poke(dtL, src, uint64(me+1))
		pe.Poke(dtL, src+8, uint64(2*(me+1)))

		if err := LongSumToAll(pe, dest, src, 2); err != nil {
			return err
		}
		// Result must land on EVERY PE (1+2+3+4=10, 2+4+6+8=20).
		if got := int64(pe.Peek(dtL, dest)); got != 10 {
			t.Errorf("PE %d sum[0] = %d, want 10", pe.MyPE(), got)
		}
		if got := int64(pe.Peek(dtL, dest+8)); got != 20 {
			t.Errorf("PE %d sum[1] = %d, want 20", pe.MyPE(), got)
		}

		if err := LongMaxToAll(pe, dest, src, 2); err != nil {
			return err
		}
		if got := int64(pe.Peek(dtL, dest)); got != 4 {
			t.Errorf("PE %d max = %d, want 4", pe.MyPE(), got)
		}
		if err := LongMinToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := int64(pe.Peek(dtL, dest)); got != 1 {
			t.Errorf("PE %d min = %d, want 1", pe.MyPE(), got)
		}
		if err := LongProdToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := int64(pe.Peek(dtL, dest)); got != 24 {
			t.Errorf("PE %d prod = %d, want 24", pe.MyPE(), got)
		}

		// Bitwise: or of 1<<me over 4 PEs is 0b1111.
		pe.Poke(dtL, src, 1<<uint(pe.MyPE()))
		if err := LongOrToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := pe.Peek(dtL, dest); got != 0b1111 {
			t.Errorf("PE %d or = %#b", pe.MyPE(), got)
		}
		if err := LongAndToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := pe.Peek(dtL, dest); got != 0 {
			t.Errorf("PE %d and = %#b, want 0", pe.MyPE(), got)
		}
		if err := LongXorToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := pe.Peek(dtL, dest); got != 0b1111 {
			t.Errorf("PE %d xor = %#b", pe.MyPE(), got)
		}

		dtD := xbrtime.TypeDouble
		pe.Poke(dtD, src, dtD.FromFloat(float64(pe.MyPE())+0.5))
		if err := DoubleSumToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := dtD.Float(pe.Peek(dtD, dest)); got != 8 { // 0.5+1.5+2.5+3.5
			t.Errorf("PE %d double sum = %v, want 8", pe.MyPE(), got)
		}
		if err := DoubleMaxToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := dtD.Float(pe.Peek(dtD, dest)); got != 3.5 {
			t.Errorf("PE %d double max = %v", pe.MyPE(), got)
		}
		if err := DoubleMinToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := dtD.Float(pe.Peek(dtD, dest)); got != 0.5 {
			t.Errorf("PE %d double min = %v", pe.MyPE(), got)
		}

		dtI := xbrtime.TypeInt
		pe.Poke(dtI, src, uint64(pe.MyPE()))
		if err := IntSumToAll(pe, dest, src, 1); err != nil {
			return err
		}
		if got := int64(pe.Peek(dtI, dest)); got != 6 {
			t.Errorf("PE %d int sum = %d, want 6", pe.MyPE(), got)
		}

		if err := pe.Free(dest); err != nil {
			return err
		}
		return pe.Free(src)
	})
}

func TestSizeValidation(t *testing.T) {
	runSPMD(t, 2, func(pe *xbrtime.PE) error {
		if err := broadcastSized(pe, 17, 0, 0, 1, 0); err == nil {
			t.Error("unsupported element size must fail")
		}
		if pe.MyPE() == 0 {
			if err := Collect64(pe, 0, 0, -1); err == nil {
				t.Error("negative count must fail")
			}
		}
		return nil
	})
}

func TestAlltoall64(t *testing.T) {
	const nPEs, nelems = 3, 2
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint64
		block := uint64(nelems * 8)
		src, err := pe.Malloc(uint64(nPEs) * block)
		if err != nil {
			return err
		}
		dest, err := pe.Malloc(uint64(nPEs) * block)
		if err != nil {
			return err
		}
		for j := 0; j < nPEs; j++ {
			for e := 0; e < nelems; e++ {
				pe.Poke(dt, src+uint64(j)*block+uint64(e*8), uint64(100*pe.MyPE()+10*j+e))
			}
		}
		if err := Alltoall64(pe, dest, src, nelems); err != nil {
			return err
		}
		for i := 0; i < nPEs; i++ {
			for e := 0; e < nelems; e++ {
				want := uint64(100*i + 10*pe.MyPE() + e)
				got := pe.Peek(dt, dest+uint64(i)*block+uint64(e*8))
				if got != want {
					t.Errorf("PE %d block %d elem %d = %d, want %d", pe.MyPE(), i, e, got, want)
				}
			}
		}
		if err := BarrierAll(pe); err != nil {
			return err
		}
		if err := pe.Free(src); err != nil {
			return err
		}
		return pe.Free(dest)
	})
}

func TestThirtyTwoBitVariants(t *testing.T) {
	const nPEs = 3
	runSPMD(t, nPEs, func(pe *xbrtime.PE) error {
		dt := xbrtime.TypeUint32
		dest, err := pe.Malloc(4 * 16)
		if err != nil {
			return err
		}
		src, err := pe.Malloc(4 * 8)
		if err != nil {
			return err
		}
		pe.Poke(dt, src, uint64(pe.MyPE()+40))
		if err := FCollect32(pe, dest, src, 1); err != nil {
			return err
		}
		for p := 0; p < nPEs; p++ {
			if got := pe.Peek(dt, dest+uint64(p*4)); got != uint64(p+40) {
				t.Errorf("PE %d fcollect32 slot %d = %d", pe.MyPE(), p, got)
			}
		}
		if err := pe.Barrier(); err != nil { // checks done before reuse
			return err
		}
		// Varying-size 32-bit collect.
		mine := pe.MyPE() // 0, 1, 2 elements
		for i := 0; i < mine; i++ {
			pe.Poke(dt, src+uint64(i*4), uint64(100*pe.MyPE()+i))
		}
		if err := Collect32(pe, dest, src, mine); err != nil {
			return err
		}
		want := []uint64{100, 200, 201}
		for i, w := range want {
			if got := pe.Peek(dt, dest+uint64(i*4)); got != w {
				t.Errorf("PE %d collect32 slot %d = %d, want %d", pe.MyPE(), i, got, w)
			}
		}
		if err := pe.Barrier(); err != nil { // checks done before reuse
			return err
		}
		// 32-bit all-to-all.
		for j := 0; j < nPEs; j++ {
			pe.Poke(dt, src+uint64(j*4), uint64(10*pe.MyPE()+j))
		}
		if err := Alltoall32(pe, dest, src, 1); err != nil {
			return err
		}
		for i := 0; i < nPEs; i++ {
			want := uint64(10*i + pe.MyPE())
			if got := pe.Peek(dt, dest+uint64(i*4)); got != want {
				t.Errorf("PE %d alltoall32 block %d = %d, want %d", pe.MyPE(), i, got, want)
			}
		}
		if err := pe.Free(dest); err != nil {
			return err
		}
		return pe.Free(src)
	})
}
