package isa

import "fmt"

// Disasm renders i using the assembler syntax accepted by internal/asm
// and used in the paper (e.g. "eld a0, 8(a1)", "erld a0, a1, e2").
func (i Inst) Disasm() string {
	info := opTable[i.Op]
	switch i.Op {
	case OpInvalid:
		return "invalid"
	case FENCE, ECALL, EBREAK:
		return i.Op.String()
	case ELE: // ele ext1, imm(rs1)
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.ExtRd(), i.Imm, i.Rs1)
	case ESE: // ese ext1, imm(rs1)
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.ExtRs2(), i.Imm, i.Rs1)
	case EADDI: // eaddi rd, ext1, imm
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.ExtRs1(), i.Imm)
	case EADDIE: // eaddie ext1, rs1, imm
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.ExtRd(), i.Rs1, i.Imm)
	case EADDIX: // eaddix ext1, ext2, imm
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.ExtRd(), i.ExtRs1(), i.Imm)
	}
	if i.Op.IsRemoteLoad() && info.format == FormatR { // raw loads
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.ExtRs2())
	}
	if i.Op.IsRemoteStore() && info.format == FormatR { // raw stores
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rs1, i.Rs2, i.ExtRd())
	}
	switch info.format {
	case FormatR:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	case FormatI:
		if info.opcode == opcLoad || info.opcode == opcXLoad || i.Op == JALR {
			return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rd, i.Imm, i.Rs1)
		}
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	case FormatS:
		return fmt.Sprintf("%s %s, %d(%s)", i.Op, i.Rs2, i.Imm, i.Rs1)
	case FormatB:
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rs1, i.Rs2, i.Imm)
	case FormatU:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case FormatJ:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	}
	return "invalid"
}
