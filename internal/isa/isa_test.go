package isa

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// normalize zeroes the fields of i that the encoding of its format does
// not carry, so that encode→decode round-trips compare equal.
func normalize(i Inst) Inst {
	info := opTable[i.Op]
	switch i.Op {
	case FENCE:
		return Inst{Op: FENCE}
	case ECALL:
		return Inst{Op: ECALL}
	case EBREAK:
		return Inst{Op: EBREAK, Imm: 1}
	}
	switch info.format {
	case FormatR:
		i.Imm = 0
	case FormatI:
		i.Rs2 = 0
	case FormatS, FormatB:
		i.Rd = 0
	case FormatU, FormatJ:
		i.Rs1, i.Rs2 = 0, 0
	}
	return i
}

// randomInst builds a random valid instruction for op.
func randomInst(op Op, rng *rand.Rand) Inst {
	i := Inst{
		Op:  op,
		Rd:  Reg(rng.Intn(NumRegs)),
		Rs1: Reg(rng.Intn(NumRegs)),
		Rs2: Reg(rng.Intn(NumRegs)),
	}
	lo, hi, mul := immRange(op)
	if hi > lo {
		i.Imm = lo + rng.Int63n((hi-lo)/mul+1)*mul
	}
	return normalize(i)
}

func TestEncodeDecodeRoundTripAllOps(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, op := range AllOps() {
		for trial := 0; trial < 200; trial++ {
			want := randomInst(op, rng)
			w, err := want.Encode()
			if err != nil {
				t.Fatalf("%s: encode %+v: %v", op, want, err)
			}
			got, err := Decode(w)
			if err != nil {
				t.Fatalf("%s: decode %#08x: %v", op, w, err)
			}
			if got != want {
				t.Fatalf("%s: round trip mismatch\nword %#08x\nwant %+v\ngot  %+v",
					op, w, want, got)
			}
		}
	}
}

func TestEncodeDecodeQuick(t *testing.T) {
	ops := AllOps()
	f := func(opIdx uint16, rd, rs1, rs2 uint8, rawImm int64) bool {
		op := ops[int(opIdx)%len(ops)]
		lo, hi, mul := immRange(op)
		i := Inst{Op: op, Rd: Reg(rd % NumRegs), Rs1: Reg(rs1 % NumRegs), Rs2: Reg(rs2 % NumRegs)}
		if hi > lo {
			span := (hi-lo)/mul + 1
			v := rawImm % span
			if v < 0 {
				v += span
			}
			i.Imm = lo + v*mul
		}
		i = normalize(i)
		w, err := i.Encode()
		if err != nil {
			return false
		}
		got, err := Decode(w)
		return err == nil && got == i
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadImmediates(t *testing.T) {
	cases := []Inst{
		{Op: ADDI, Rd: A0, Rs1: A1, Imm: 4096},
		{Op: ADDI, Rd: A0, Rs1: A1, Imm: -4097},
		{Op: SLLI, Rd: A0, Rs1: A1, Imm: 64},
		{Op: SLLIW, Rd: A0, Rs1: A1, Imm: 32},
		{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 3},      // misaligned branch target
		{Op: JAL, Rd: RA, Imm: 1 << 21},          // out of range
		{Op: ELD, Rd: A0, Rs1: A1, Imm: 2048},    // xBGAS immediate range
		{Op: EADDIE, Rd: 1, Rs1: A0, Imm: -2049}, // address management range
	}
	for _, c := range cases {
		if _, err := c.Encode(); err == nil {
			t.Errorf("%s imm=%d: expected encode error", c.Op, c.Imm)
		}
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	bad := []uint32{
		0x00000000,             // all zeros: not a defined encoding
		0xFFFFFFFF,             // all ones
		0x00007063,             // branch with funct3=7? (bgeu valid) -> use funct3=2
		0x0000A063,             // branch funct3=2: undefined
		0x0000602B,             // xBGAS store funct3=6: undefined
		0x0000307B,             // address management funct3=3: undefined
		0x0200802B>>0 | 0x7000, // xstore funct3=7
	}
	for _, w := range bad {
		inst, err := Decode(w)
		if err == nil && inst.Op != BLTU && inst.Op != BGEU {
			// a couple of entries above are deliberately near-valid; only
			// fail when decode accepted a word it should not have
			if inst.Op == OpInvalid {
				continue
			}
			if w == 0x00000000 || w == 0xFFFFFFFF || w == 0x0000A063 ||
				w == 0x0000602B || w == 0x0000307B {
				t.Errorf("Decode(%#08x) = %v, want error", w, inst)
			}
		}
	}
}

func TestRegisterParsing(t *testing.T) {
	cases := map[string]Reg{
		"zero": Zero, "ra": RA, "sp": SP, "fp": S0, "s0": S0,
		"a0": A0, "a7": A7, "t6": T6, "x0": Zero, "x31": T6, "X10": A0,
	}
	for in, want := range cases {
		got, err := ParseReg(in)
		if err != nil || got != want {
			t.Errorf("ParseReg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseReg("x32"); err == nil {
		t.Error("ParseReg(x32): expected error")
	}
	if _, err := ParseReg("q7"); err == nil {
		t.Error("ParseReg(q7): expected error")
	}
	for in, want := range map[string]EReg{"e0": 0, "e31": 31, "E10": 10} {
		got, err := ParseEReg(in)
		if err != nil || got != want {
			t.Errorf("ParseEReg(%q) = %v, %v; want %v", in, got, err, want)
		}
	}
	if _, err := ParseEReg("e32"); err == nil {
		t.Error("ParseEReg(e32): expected error")
	}
}

func TestRegPairing(t *testing.T) {
	// Paper §3.2: base-class operations use the extended register that
	// naturally corresponds to the base register.
	for r := Reg(0); r < NumRegs; r++ {
		if got := r.Pair(); got != EReg(r) {
			t.Fatalf("Pair(%v) = %v", r, got)
		}
	}
}

func TestDisasmMnemonics(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ELD, Rd: A0, Rs1: A1, Imm: 8}, "eld a0, 8(a1)"},
		{Inst{Op: ESD, Rs1: A1, Rs2: A0, Imm: -16}, "esd a0, -16(a1)"},
		{Inst{Op: ERLD, Rd: A0, Rs1: A1, Rs2: 2}, "erld a0, a1, e2"},
		{Inst{Op: ERSD, Rd: 3, Rs1: A0, Rs2: A1}, "ersd a0, a1, e3"},
		{Inst{Op: EADDI, Rd: A0, Rs1: 5, Imm: 4}, "eaddi a0, e5, 4"},
		{Inst{Op: EADDIE, Rd: 7, Rs1: A2, Imm: 0}, "eaddie e7, a2, 0"},
		{Inst{Op: EADDIX, Rd: 1, Rs1: 2, Imm: 12}, "eaddix e1, e2, 12"},
		{Inst{Op: ADD, Rd: A0, Rs1: A1, Rs2: A2}, "add a0, a1, a2"},
		{Inst{Op: ADDI, Rd: A0, Rs1: A1, Imm: -1}, "addi a0, a1, -1"},
		{Inst{Op: LW, Rd: T0, Rs1: SP, Imm: 4}, "lw t0, 4(sp)"},
		{Inst{Op: SD, Rs1: SP, Rs2: RA, Imm: 8}, "sd ra, 8(sp)"},
		{Inst{Op: BEQ, Rs1: A0, Rs2: A1, Imm: 16}, "beq a0, a1, 16"},
		{Inst{Op: JAL, Rd: RA, Imm: 2048}, "jal ra, 2048"},
		{Inst{Op: JALR, Rd: RA, Rs1: A0, Imm: 0}, "jalr ra, 0(a0)"},
		{Inst{Op: LUI, Rd: A0, Imm: 0x12345}, "lui a0, 74565"},
		{Inst{Op: ECALL}, "ecall"},
		{Inst{Op: FENCE}, "fence"},
	}
	for _, c := range cases {
		if got := c.in.Disasm(); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestDisasmDecodeAgree(t *testing.T) {
	// Disassembly of a decoded word names the decoded operation.
	rng := rand.New(rand.NewSource(7))
	for _, op := range AllOps() {
		i := randomInst(op, rng)
		w := i.MustEncode()
		d, err := Decode(w)
		if err != nil {
			t.Fatalf("%s: %v", op, err)
		}
		if !strings.HasPrefix(d.Disasm()+" ", op.String()+" ") {
			t.Errorf("%s: disasm %q does not start with mnemonic", op, d.Disasm())
		}
	}
}

func TestOpClassification(t *testing.T) {
	remoteLoads := []Op{ELB, ELH, ELW, ELD, ELBU, ELHU, ELWU, ERLB, ERLH, ERLW, ERLD, ERLBU, ERLHU, ERLWU}
	remoteStores := []Op{ESB, ESH, ESW, ESD, ERSB, ERSH, ERSW, ERSD}
	addrMgmt := []Op{EADDI, EADDIE, EADDIX}
	for _, op := range remoteLoads {
		if !op.IsRemoteLoad() || op.IsRemoteStore() || !op.IsXBGAS() {
			t.Errorf("%s: wrong classification", op)
		}
	}
	for _, op := range remoteStores {
		if !op.IsRemoteStore() || op.IsRemoteLoad() || !op.IsXBGAS() {
			t.Errorf("%s: wrong classification", op)
		}
	}
	for _, op := range addrMgmt {
		if !op.IsXBGAS() || op.IsRemoteLoad() || op.IsRemoteStore() {
			t.Errorf("%s: wrong classification", op)
		}
		if op.MemWidth() != 0 {
			t.Errorf("%s: address management must not access memory", op)
		}
	}
	for _, op := range []Op{ADD, LW, SD, JAL, ECALL} {
		if op.IsXBGAS() {
			t.Errorf("%s: misclassified as xBGAS", op)
		}
	}
}

func TestMemWidths(t *testing.T) {
	widths := map[Op]int{
		LB: 1, LH: 2, LW: 4, LD: 8, SB: 1, SH: 2, SW: 4, SD: 8,
		ELB: 1, ELH: 2, ELW: 4, ELD: 8, ESB: 1, ESH: 2, ESW: 4, ESD: 8,
		ERLB: 1, ERLH: 2, ERLW: 4, ERLD: 8, ERSB: 1, ERSH: 2, ERSW: 4, ERSD: 8,
		ADD: 0, EADDIX: 0,
	}
	for op, want := range widths {
		if got := op.MemWidth(); got != want {
			t.Errorf("%s.MemWidth() = %d, want %d", op, got, want)
		}
	}
	unsigned := []Op{LBU, LHU, LWU, ELBU, ELHU, ELWU, ERLBU, ERLHU, ERLWU}
	for _, op := range unsigned {
		if !op.MemUnsigned() {
			t.Errorf("%s: should be unsigned", op)
		}
	}
	if LD.MemUnsigned() || ELD.MemUnsigned() {
		t.Error("64-bit loads have no unsigned variant")
	}
}

func TestOpByName(t *testing.T) {
	for _, op := range AllOps() {
		got, ok := OpByName(op.String())
		if !ok || got != op {
			t.Errorf("OpByName(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if _, ok := OpByName("bogus"); ok {
		t.Error("OpByName(bogus) should fail")
	}
}

func TestRegisterFileLayout(t *testing.T) {
	layout := RegisterFileLayout()
	for _, want := range []string{"x0", "e0", "x31", "e31", "128-bit", "object ID"} {
		if !strings.Contains(layout, want) {
			t.Errorf("layout missing %q", want)
		}
	}
}

func TestOpcodeTableListsEveryOp(t *testing.T) {
	table := OpcodeTable()
	for _, op := range AllOps() {
		if !strings.Contains(table, op.String()) {
			t.Errorf("opcode table missing %s", op)
		}
	}
	if !strings.Contains(table, "xBGAS extension") {
		t.Error("opcode table missing the xBGAS section header")
	}
}

func TestELEESEDisasm(t *testing.T) {
	cases := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: ELE, Rd: 5, Rs1: A0, Imm: 16}, "ele e5, 16(a0)"},
		{Inst{Op: ESE, Rs2: 7, Rs1: SP, Imm: -8}, "ese e7, -8(sp)"},
	}
	for _, c := range cases {
		if got := c.in.Disasm(); got != c.want {
			t.Errorf("Disasm(%+v) = %q, want %q", c.in, got, c.want)
		}
	}
}
